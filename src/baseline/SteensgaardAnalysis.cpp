//===- baseline/SteensgaardAnalysis.cpp -----------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "baseline/SteensgaardAnalysis.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace vdga;

namespace {
constexpr unsigned NoPointee = UINT32_MAX;
} // namespace

SteensgaardResult SteensgaardResult::top(const PathTable &Paths) {
  SteensgaardResult R;
  R.IsTop = true;
  R.AllBases.reserve(Paths.numBases());
  for (size_t B = 0; B < Paths.numBases(); ++B)
    R.AllBases.push_back(static_cast<BaseLocId>(B));
  R.NumClasses = 1;
  return R;
}

unsigned SteensgaardSolver::find(unsigned X) {
  while (Parent[X] != X) {
    Parent[X] = Parent[Parent[X]];
    X = Parent[X];
  }
  return X;
}

void SteensgaardSolver::unite(unsigned A, unsigned B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return;
  if (Members[A].size() < Members[B].size())
    std::swap(A, B);
  Parent[B] = A;
  Members[A].insert(Members[A].end(), Members[B].begin(), Members[B].end());
  Members[B].clear();

  unsigned PA = Pointee[A];
  unsigned PB = Pointee[B];
  Pointee[B] = NoPointee;
  if (PA == NoPointee) {
    Pointee[A] = PB;
    return;
  }
  if (PB != NoPointee)
    unite(PA, PB); // Steensgaard's recursive join.
}

unsigned SteensgaardSolver::pointeeOf(unsigned Class) {
  Class = find(Class);
  if (Pointee[Class] == NoPointee) {
    unsigned Fresh = static_cast<unsigned>(Parent.size());
    Parent.push_back(Fresh);
    Pointee.push_back(NoPointee);
    Members.emplace_back();
    Pointee[Class] = Fresh;
  }
  return find(Pointee[Class]);
}

void SteensgaardSolver::joinPointees(unsigned A, unsigned B) {
  unite(pointeeOf(A), pointeeOf(B));
}

SteensgaardResult SteensgaardSolver::solve() {
  // There is no worklist here; the meter is polled once per constraint
  // processed. A half-unified solution misses aliases (equality
  // constraints not yet applied), so on any trip this solver degrades
  // directly to its own ladder rung — the conservative top result — with
  // the trip recorded. Callers may always serve a SteensgaardResult.
  BudgetMeter Meter(Budget);
  uint64_t Work = 0;
  auto Tripped = [&](BudgetTrip T) {
    SteensgaardResult R = SteensgaardResult::top(Paths);
    R.Status = statusForTrip(T);
    R.Trip = T;
    if (Obs.Metrics)
      Obs.Metrics->add("steens.budget_trips", 1);
    if (Obs.Events)
      Obs.Events->event("budget_trip")
          .field("solver", "steens")
          .field("trip", budgetTripName(T))
          .field("status", solveStatusName(R.Status))
          .field("constraints", Work);
    return R;
  };

  size_t NumOutputs = G.numOutputs();
  size_t NumBases = Paths.numBases();
  Members.assign(NumOutputs + NumBases, {});

  Parent.assign(NumOutputs + NumBases, 0);
  Pointee.assign(NumOutputs + NumBases, NoPointee);
  for (unsigned I = 0; I < Parent.size(); ++I)
    Parent[I] = I;
  for (size_t B = 0; B < NumBases; ++B)
    Members[NumOutputs + B].push_back(static_cast<BaseLocId>(B));

  // Intraprocedural constraints.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    if (BudgetTrip T = Meter.poll(++Work, 0); T != BudgetTrip::None)
      return Tripped(T);
    const Node &Node = G.node(N);
    switch (Node.Kind) {
    case NodeKind::ConstPath: {
      BaseLocId B = Paths.baseOf(Node.Path);
      unite(pointeeOf(outputNode(G.outputOf(N))), baseNode(B));
      break;
    }
    case NodeKind::Lookup: {
      unsigned Loc = outputNode(G.producerOf(N, 0));
      unsigned Obj = pointeeOf(Loc);
      joinPointees(outputNode(G.outputOf(N)), Obj);
      break;
    }
    case NodeKind::Update: {
      unsigned Loc = outputNode(G.producerOf(N, 0));
      unsigned Obj = pointeeOf(Loc);
      joinPointees(Obj, outputNode(G.producerOf(N, 2)));
      break;
    }
    case NodeKind::Offset:
    case NodeKind::PtrArith:
      joinPointees(outputNode(G.outputOf(N)),
                   outputNode(G.producerOf(N, 0)));
      break;
    case NodeKind::Merge:
      for (size_t I = 0; I < Node.Inputs.size(); ++I)
        joinPointees(outputNode(G.outputOf(N)),
                     outputNode(G.producerOf(N, static_cast<unsigned>(I))));
      break;
    default:
      break;
    }
  }

  // Interprocedural constraints, iterated because unification may reveal
  // new indirect callees.
  std::map<NodeId, std::set<const FuncDecl *>> Done;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      const Node &CallNode = G.node(N);
      if (CallNode.Kind != NodeKind::Call)
        continue;
      if (BudgetTrip T = Meter.poll(++Work, 0); T != BudgetTrip::None)
        return Tripped(T);
      unsigned FnClass =
          pointeeOf(outputNode(G.producerOf(N, 0)));
      // Copy: unite below may grow/merge member lists.
      std::vector<BaseLocId> Fns = Members[find(FnClass)];
      for (BaseLocId B : Fns) {
        const BaseLocation &Base = Paths.base(B);
        if (Base.Kind != BaseLocKind::Function)
          continue;
        const FunctionInfo *Info = G.functionInfo(Base.Fn);
        if (!Info || !Done[N].insert(Base.Fn).second)
          continue;
        Changed = true;
        unsigned NumActuals =
            static_cast<unsigned>(CallNode.Inputs.size()) - 2;
        for (unsigned I = 0; I < std::min(NumActuals, Info->NumParams); ++I)
          joinPointees(outputNode(G.outputOf(Info->EntryNode, I)),
                       outputNode(G.producerOf(N, I + 1)));
        const Node &RetNode = G.node(Info->ReturnNode);
        if (RetNode.HasValue && CallNode.HasResult)
          joinPointees(outputNode(G.outputOf(N, 0)),
                       outputNode(G.producerOf(Info->ReturnNode, 0)));
      }
    }
  }

  // Extract per-output pointee sets.
  SteensgaardResult R;
  R.Pointees.resize(NumOutputs);
  std::set<unsigned> Classes;
  for (OutputId O = 0; O < NumOutputs; ++O) {
    if (BudgetTrip T = Meter.poll(++Work, 0); T != BudgetTrip::None)
      return Tripped(T);
    unsigned C = find(outputNode(O));
    Classes.insert(C);
    if (Pointee[C] == NoPointee)
      continue;
    std::vector<BaseLocId> Ptees = Members[find(Pointee[C])];
    std::sort(Ptees.begin(), Ptees.end(),
              [](BaseLocId A, BaseLocId B) { return index(A) < index(B); });
    R.Pointees[O] = std::move(Ptees);
  }
  // And per-base pointee sets: what the pointers stored inside each
  // abstract object may reference (the query service's degraded tier).
  R.BasePointees.resize(NumBases);
  for (size_t B = 0; B < NumBases; ++B) {
    if (BudgetTrip T = Meter.poll(++Work, 0); T != BudgetTrip::None)
      return Tripped(T);
    unsigned C = find(baseNode(static_cast<BaseLocId>(B)));
    if (Pointee[C] == NoPointee)
      continue;
    std::vector<BaseLocId> Ptees = Members[find(Pointee[C])];
    std::sort(Ptees.begin(), Ptees.end(),
              [](BaseLocId A, BaseLocId Bid) { return index(A) < index(Bid); });
    R.BasePointees[B] = std::move(Ptees);
  }
  R.NumClasses = Classes.size();
  if (Obs.Metrics)
    Obs.Metrics->add("steens.classes", R.NumClasses);
  return R;
}
