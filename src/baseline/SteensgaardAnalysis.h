//===- baseline/SteensgaardAnalysis.h - Unification baseline ---*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Steensgaard-style unification points-to analysis: near-linear,
/// flow- and field-insensitive, with equality constraints instead of
/// subset constraints. Included as the fast-and-coarse end of the
/// precision spectrum the paper's benchmarks sit on; the baseline bench
/// contrasts its per-operation location counts against Weihl, CI and CS.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_BASELINE_STEENSGAARDANALYSIS_H
#define VDGA_BASELINE_STEENSGAARDANALYSIS_H

#include "pointsto/Solver.h"
#include "support/Budget.h"
#include "support/Observability.h"

namespace vdga {

/// Result of the unification analysis: for every VDG output, the set of
/// base locations its class may point to.
class SteensgaardResult {
public:
  /// Base locations the value on \p Out may reference (collapsed to whole
  /// objects: the analysis is field-insensitive). A top result answers
  /// "every base location" for every output.
  const std::vector<BaseLocId> &pointees(OutputId Out) const {
    static const std::vector<BaseLocId> Empty;
    if (IsTop)
      return AllBases;
    return Out < Pointees.size() ? Pointees[Out] : Empty;
  }

  /// Base locations the pointers *stored in* base \p B may reference —
  /// the query service's degraded-tier `pointsTo` answer. Same collapse
  /// rules as pointees(): field-insensitive, whole objects.
  const std::vector<BaseLocId> &basePointees(BaseLocId B) const {
    static const std::vector<BaseLocId> Empty;
    if (IsTop)
      return AllBases;
    return index(B) < BasePointees.size() ? BasePointees[index(B)] : Empty;
  }

  /// The maximally conservative result — every output may point to every
  /// base location. The last rung of the degradation ladder: trivially
  /// sound (it covers any trace the interpreter can produce) and free to
  /// construct, for when even unification blows its budget or the run is
  /// cancelled.
  static SteensgaardResult top(const PathTable &Paths);

  /// Number of distinct equivalence classes built (a size metric).
  size_t NumClasses = 0;
  /// True for the conservative all-locations result.
  bool IsTop = false;
  SolveStatus Status = SolveStatus::Complete;
  BudgetTrip Trip = BudgetTrip::None;
  bool complete() const { return Status == SolveStatus::Complete; }

private:
  friend class SteensgaardSolver;
  std::vector<std::vector<BaseLocId>> Pointees;
  std::vector<std::vector<BaseLocId>> BasePointees; ///< Indexed by base id.
  std::vector<BaseLocId> AllBases; ///< Populated for top results only.
};

/// Runs the unification analysis over a built VDG.
class SteensgaardSolver {
public:
  SteensgaardSolver(const Graph &G, const PathTable &Paths,
                    SolverObserver Obs = {},
                    const ResourceBudget &Budget = {})
      : G(G), Paths(Paths), Obs(Obs), Budget(Budget) {}

  SteensgaardResult solve();

private:
  // Union-find over abstract nodes: one per VDG output, one per base
  // location, plus lazily created pointee placeholders.
  unsigned find(unsigned X);
  void unite(unsigned A, unsigned B);
  /// The class a class points to, creating a placeholder when absent.
  unsigned pointeeOf(unsigned Class);
  /// join of Steensgaard: unify the pointees of two classes.
  void joinPointees(unsigned A, unsigned B);

  unsigned outputNode(OutputId O) const { return O; }
  unsigned baseNode(BaseLocId B) const {
    return static_cast<unsigned>(G.numOutputs()) + index(B);
  }

  const Graph &G;
  const PathTable &Paths;
  SolverObserver Obs;
  ResourceBudget Budget;
  std::vector<unsigned> Parent;
  std::vector<unsigned> Pointee; ///< Per class representative, or ~0u.
  /// Base-location members per class, merged small-into-large on union.
  std::vector<std::vector<BaseLocId>> Members;
};

} // namespace vdga

#endif // VDGA_BASELINE_STEENSGAARDANALYSIS_H
