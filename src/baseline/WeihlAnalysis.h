//===- baseline/WeihlAnalysis.h - Flow-insensitive baseline ----*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Weihl-style program-wide, flow-insensitive points-to analysis
/// [Wei80]: the baseline the paper's introduction contrasts against. One
/// global store set serves every memory operation (no kill, no strong
/// updates, no program-point distinction for memory facts); value outputs
/// keep their expression structure. Strictly coarser than the Figure 1
/// analysis, and cheap.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_BASELINE_WEIHLANALYSIS_H
#define VDGA_BASELINE_WEIHLANALYSIS_H

#include "pointsto/Solver.h"
#include "support/DenseBitSet.h"
#include "support/Observability.h"

#include <unordered_map>

namespace vdga {

/// Result of the flow-insensitive analysis: per-output value pair sets plus
/// the single program-wide store set.
class WeihlResult {
public:
  explicit WeihlResult(size_t NumOutputs) : Values(NumOutputs) {}

  const std::vector<PairId> &valuePairs(OutputId Out) const {
    return Values.pairs(Out);
  }
  const std::vector<PairId> &globalStore() const { return StoreList; }

  /// Distinct referent locations a lookup/update at \p LocOut may touch.
  std::vector<PathId> pointerReferents(OutputId LocOut,
                                       const PairTable &PT) const {
    return Values.pointerReferents(LocOut, PT);
  }

  SolveStats Stats;
  /// Non-Complete means the value/store sets are a partial prefix of the
  /// fixed point; the governance ladder must not serve them.
  SolveStatus Status = SolveStatus::Complete;
  BudgetTrip Trip = BudgetTrip::None;
  bool complete() const { return Status == SolveStatus::Complete; }

private:
  friend class WeihlSolver;
  PointsToResult Values;
  std::vector<PairId> StoreList;
};

/// Runs the flow-insensitive analysis over a built VDG.
class WeihlSolver {
public:
  WeihlSolver(const Graph &G, PathTable &Paths, PairTable &PT,
              SolverObserver Obs = {}, const ResourceBudget &Budget = {})
      : G(G), Paths(Paths), PT(PT), Obs(Obs), Budget(Budget),
        Result(G.numOutputs()) {}

  WeihlResult solve();

private:
  void flowValue(OutputId Out, PairId Pair);
  void flowStore(PairId Pair);
  void flowIn(InputId In, PairId Pair);
  void registerCallee(NodeId Call, const FunctionInfo *Info);

  const Graph &G;
  PathTable &Paths;
  PairTable &PT;
  SolverObserver Obs;
  ResourceBudget Budget;
  WeihlResult Result;

  DenseBitSet StoreSet;
  std::deque<std::pair<InputId, PairId>> Worklist;
  /// Store-pair events replayed against every lookup in the program.
  std::deque<PairId> StoreWorklist;
  std::vector<NodeId> Lookups;
  /// Looked up by key only (never iterated): hashing stays deterministic.
  std::unordered_map<NodeId, std::vector<const FunctionInfo *>> CalleesOf;
  std::unordered_map<const FuncDecl *, std::vector<NodeId>> CallersOf;
};

} // namespace vdga

#endif // VDGA_BASELINE_WEIHLANALYSIS_H
