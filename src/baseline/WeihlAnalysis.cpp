//===- baseline/WeihlAnalysis.cpp -----------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "baseline/WeihlAnalysis.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace vdga;

WeihlResult WeihlSolver::solve() {
  for (NodeId N = 0; N < G.numNodes(); ++N)
    if (G.node(N).Kind == NodeKind::Lookup)
      Lookups.push_back(N);

  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Kind != NodeKind::ConstPath)
      continue;
    flowValue(G.outputOf(N), PT.intern(PathTable::emptyPath(), Node.Path));
  }

  BudgetMeter Meter(Budget);
  while (!Worklist.empty() || !StoreWorklist.empty()) {
    // Poll at the dequeue boundary shared by both worklists; all facts
    // accumulated so far are in the fixed point (monotone, no kill).
    BudgetTrip T = Meter.poll(Result.Stats.TransferFns,
                              Result.Stats.PairsInserted);
    if (T != BudgetTrip::None) {
      Result.Status = statusForTrip(T);
      Result.Trip = T;
      break;
    }
    if (!StoreWorklist.empty()) {
      PairId Pair = StoreWorklist.front();
      StoreWorklist.pop_front();
      ++Result.Stats.TransferFns;
      // A new store fact is visible at every lookup in the program.
      for (NodeId L : Lookups) {
        const PointsToPair &S = PT.pair(Pair);
        for (PairId LId : Result.Values.pairs(G.producerOf(L, 0))) {
          const PointsToPair &LP = PT.pair(LId);
          if (LP.Path != PathTable::emptyPath())
            continue;
          if (Paths.dom(LP.Referent, S.Path))
            flowValue(G.outputOf(L),
                      PT.intern(Paths.subtractPrefix(S.Path, LP.Referent).value(),
                                S.Referent));
        }
      }
      continue;
    }

    auto [In, Pair] = Worklist.front();
    Worklist.pop_front();
    ++Result.Stats.TransferFns;
    flowIn(In, Pair);
  }

  if (!Result.complete()) {
    if (Obs.Metrics)
      Obs.Metrics->add("weihl.budget_trips", 1);
    if (Obs.Events)
      Obs.Events->event("budget_trip")
          .field("solver", "weihl")
          .field("trip", budgetTripName(Result.Trip))
          .field("status", solveStatusName(Result.Status))
          .field("transfer_fns", Result.Stats.TransferFns)
          .field("pairs_inserted", Result.Stats.PairsInserted);
  }
  if (Obs.Metrics) {
    Obs.Metrics->add("weihl.transfer_fns", Result.Stats.TransferFns);
    Obs.Metrics->add("weihl.meet_ops", Result.Stats.MeetOps);
    Obs.Metrics->add("weihl.pairs_inserted", Result.Stats.PairsInserted);
    Obs.Metrics->add("weihl.store_pairs", Result.StoreList.size());
  }
  return std::move(Result);
}

void WeihlSolver::flowValue(OutputId Out, PairId Pair) {
  ++Result.Stats.MeetOps;
  if (!Result.Values.insert(Out, Pair))
    return;
  ++Result.Stats.PairsInserted;
  for (InputId Consumer : G.output(Out).Consumers)
    Worklist.emplace_back(Consumer, Pair);
}

void WeihlSolver::flowStore(PairId Pair) {
  ++Result.Stats.MeetOps;
  if (!StoreSet.insert(Pair))
    return;
  ++Result.Stats.PairsInserted;
  Result.StoreList.push_back(Pair);
  StoreWorklist.push_back(Pair);
}

void WeihlSolver::registerCallee(NodeId Call, const FunctionInfo *Info) {
  auto &List = CalleesOf[Call];
  if (std::find(List.begin(), List.end(), Info) != List.end())
    return;
  List.push_back(Info);
  CallersOf[Info->Fn].push_back(Call);

  const Node &CallNode = G.node(Call);
  unsigned NumActuals = static_cast<unsigned>(CallNode.Inputs.size()) - 2;
  for (unsigned I = 0; I < std::min(NumActuals, Info->NumParams); ++I)
    for (PairId Pair : Result.Values.pairs(G.producerOf(Call, I + 1)))
      flowValue(G.outputOf(Info->EntryNode, I), Pair);

  const Node &RetNode = G.node(Info->ReturnNode);
  if (RetNode.HasValue && CallNode.HasResult)
    for (PairId Pair : Result.Values.pairs(G.producerOf(Info->ReturnNode, 0)))
      flowValue(G.outputOf(Call, 0), Pair);
}

void WeihlSolver::flowIn(InputId In, PairId Pair) {
  const InputInfo &Info = G.input(In);
  NodeId N = Info.Node;
  unsigned Idx = Info.Index;
  const Node &Node = G.node(N);
  const PointsToPair &P = PT.pair(Pair);

  switch (Node.Kind) {
  case NodeKind::Lookup: {
    if (Idx != 0 || P.Path != PathTable::emptyPath())
      return; // Store edges are ignored; the global store is program-wide.
    for (PairId SId : Result.StoreList) {
      const PointsToPair &S = PT.pair(SId);
      if (Paths.dom(P.Referent, S.Path))
        flowValue(G.outputOf(N),
                  PT.intern(Paths.subtractPrefix(S.Path, P.Referent).value(),
                            S.Referent));
    }
    return;
  }
  case NodeKind::Update: {
    // loc (0) x value (2) pairs generate global store facts; store input
    // (1) is ignored (there is no kill and no threading).
    if (Idx == 0) {
      if (P.Path != PathTable::emptyPath())
        return;
      for (PairId VId : Result.Values.pairs(G.producerOf(N, 2))) {
        const PointsToPair &V = PT.pair(VId);
        flowStore(PT.intern(Paths.appendPath(P.Referent, V.Path),
                            V.Referent));
      }
      return;
    }
    if (Idx == 2) {
      for (PairId LId : Result.Values.pairs(G.producerOf(N, 0))) {
        const PointsToPair &L = PT.pair(LId);
        if (L.Path != PathTable::emptyPath())
          continue;
        flowStore(PT.intern(Paths.appendPath(L.Referent, P.Path),
                            P.Referent));
      }
      return;
    }
    return;
  }
  case NodeKind::Offset: {
    if (P.Path != PathTable::emptyPath())
      return;
    if (Node.OpIsNoop) {
      flowValue(G.outputOf(N), Pair);
      return;
    }
    flowValue(G.outputOf(N),
              PT.intern(PathTable::emptyPath(),
                        Paths.append(P.Referent, Node.Op)));
    return;
  }
  case NodeKind::Merge:
    flowValue(G.outputOf(N), Pair);
    return;
  case NodeKind::PtrArith:
    if (Idx == 0)
      flowValue(G.outputOf(N), Pair);
    return;
  case NodeKind::ScalarOp:
    return;
  case NodeKind::Call: {
    unsigned LastIdx = static_cast<unsigned>(Node.Inputs.size()) - 1;
    if (Idx == 0) {
      if (P.Path != PathTable::emptyPath() || !Paths.isLocation(P.Referent))
        return;
      const BaseLocation &Base = Paths.base(Paths.baseOf(P.Referent));
      if (Base.Kind != BaseLocKind::Function)
        return;
      if (const FunctionInfo *FInfo = G.functionInfo(Base.Fn))
        registerCallee(N, FInfo);
      return;
    }
    if (Idx == LastIdx)
      return; // Store edges carry nothing here.
    unsigned ActualIdx = Idx - 1;
    for (const FunctionInfo *FInfo : CalleesOf[N])
      if (ActualIdx < FInfo->NumParams)
        flowValue(G.outputOf(FInfo->EntryNode, ActualIdx), Pair);
    return;
  }
  case NodeKind::Return: {
    if (!Node.HasValue || Idx != 0)
      return;
    auto It = CallersOf.find(Node.Owner);
    if (It == CallersOf.end())
      return;
    for (NodeId Call : It->second)
      if (G.node(Call).HasResult)
        flowValue(G.outputOf(Call, 0), Pair);
    return;
  }
  case NodeKind::ConstScalar:
  case NodeKind::ConstPath:
  case NodeKind::Entry:
  case NodeKind::InitStore:
    return;
  }
}
