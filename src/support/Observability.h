//===- support/Observability.h - Solver observability hooks ----*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bundle of observability hooks threaded through every solver:
/// a metrics registry to publish counters/timers into, an optional
/// structured event trace, and the provenance-recording switch. All
/// default to off; a default-constructed observer makes every hook a
/// no-op, so solver behaviour (results, work counters, schedules) is
/// bit-identical with and without observation.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_OBSERVABILITY_H
#define VDGA_SUPPORT_OBSERVABILITY_H

namespace vdga {

class MetricsRegistry;
class Trace;

/// Observability hooks handed to a solver run; see the file comment.
struct SolverObserver {
  /// Registry the solver publishes its counters into, or null.
  MetricsRegistry *Metrics = nullptr;
  /// Structured event sink, or null (tracing disabled).
  Trace *Events = nullptr;
  /// When true, the result records one Derivation per pair instance so
  /// `vdga-analyze --explain` can print derivation chains.
  bool RecordProvenance = false;
};

} // namespace vdga

#endif // VDGA_SUPPORT_OBSERVABILITY_H
