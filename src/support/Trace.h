//===- support/Trace.h - Opt-in structured event trace ---------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An opt-in structured solver trace: one JSON object per line (JSONL).
/// The solvers emit events through a nullable `Trace *` — when tracing is
/// disabled the pointer is null and every event site is a single
/// predicted-not-taken branch, so the disabled cost is near zero (the
/// trace tests assert results and work counters are bit-identical either
/// way).
///
/// Enabling:
///   * process-wide: set `VDGA_TRACE=<path>` ("-" for stderr); the
///     pipeline picks the shared sink up via `Trace::fromEnv()`;
///   * per pipeline: `AnalyzedProgram::setTrace(&T)` with a trace from
///     `Trace::open` or the in-memory string constructor (tests).
///
/// Event kinds emitted today (see docs/ARCHITECTURE.md for the field
/// tables): `pair_introduced`, `strong_update`, `assumption_pruned`,
/// `worklist_dedup`. Writes are mutex-guarded per line, so one sink can
/// serve the parallel corpus driver without interleaving lines.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_TRACE_H
#define VDGA_SUPPORT_TRACE_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

namespace vdga {

/// A JSONL trace sink; see the file comment.
class Trace {
public:
  /// A trace capturing into \p Buffer (tests, programmatic consumers).
  explicit Trace(std::string *Buffer) : Buffer(Buffer) {}

  ~Trace();
  Trace(const Trace &) = delete;
  Trace &operator=(const Trace &) = delete;

  /// Opens a file sink ("-" means stderr). Returns null and fills
  /// \p Error when the file cannot be opened.
  static std::unique_ptr<Trace> open(const std::string &Path,
                                     std::string *Error);

  /// The process-wide sink named by the `VDGA_TRACE` environment
  /// variable, or null when unset (tracing disabled). Opened once; shared
  /// by every pipeline in the process.
  static Trace *fromEnv();

  /// One event under construction. Appends `"key":value` fields and
  /// writes the finished line to the trace when destroyed (end of the
  /// full expression at the emit site).
  class Event {
  public:
    Event(Trace &T, const char *Kind);
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    ~Event();

    Event &field(const char *Key, uint64_t V);
    Event &field(const char *Key, const char *V);
    Event &field(const char *Key, const std::string &V) {
      return field(Key, V.c_str());
    }

  private:
    Trace &T;
    std::string Line;
  };

  /// Starts an event of the given kind; chain `.field(...)` calls on the
  /// returned temporary.
  Event event(const char *Kind) { return Event(*this, Kind); }

private:
  friend class Event;
  Trace(std::FILE *File, bool CloseOnDestroy)
      : File(File), CloseOnDestroy(CloseOnDestroy) {}

  /// Appends one finished line (mutex-guarded).
  void write(const std::string &Line);

  std::FILE *File = nullptr;
  bool CloseOnDestroy = false;
  std::string *Buffer = nullptr;
  std::mutex Mu;
};

} // namespace vdga

#endif // VDGA_SUPPORT_TRACE_H
