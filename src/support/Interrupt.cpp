//===- support/Interrupt.cpp ----------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Interrupt.h"

#include <atomic>
#include <csignal>

using namespace vdga;

namespace {
std::atomic<int> GSignal{0};
CancellationToken GToken;

extern "C" void vdgaInterruptHandler(int Sig) {
  // Both operations are relaxed atomic stores — async-signal-safe.
  GSignal.store(Sig, std::memory_order_relaxed);
  GToken.cancel();
}
} // namespace

void vdga::installInterruptHandlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction SA;
  sigemptyset(&SA.sa_mask);
  SA.sa_handler = vdgaInterruptHandler;
  SA.sa_flags = 0; // Deliberately no SA_RESTART: blocking reads EINTR.
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
#else
  std::signal(SIGINT, vdgaInterruptHandler);
  std::signal(SIGTERM, vdgaInterruptHandler);
#endif
}

bool vdga::interruptRequested() {
  return GSignal.load(std::memory_order_relaxed) != 0;
}

const CancellationToken *vdga::interruptToken() { return &GToken; }

int vdga::interruptSignal() {
  return GSignal.load(std::memory_order_relaxed);
}

void vdga::simulateInterruptForTest(int Signal) {
  vdgaInterruptHandler(Signal);
}

void vdga::resetInterruptForTest() {
  GSignal.store(0, std::memory_order_relaxed);
  // The token has no reset by design (solves must never resume after a
  // cancel); tests that need a fresh token run in a fresh process. The
  // latch reset only serves flag-polling tests.
}
