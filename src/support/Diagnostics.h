//===- support/Diagnostics.h - Error reporting -----------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by the frontend and the IR verifier.
/// Library code never aborts or throws on malformed input; it records
/// diagnostics here and the caller decides what to do.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_DIAGNOSTICS_H
#define VDGA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace vdga {

/// Severity of a diagnostic.
enum class DiagLevel { Note, Warning, Error };

/// One reported problem, tied to a source location when known.
struct Diagnostic {
  DiagLevel Level = DiagLevel::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one program.
class DiagnosticEngine {
public:
  /// Records an error at \p Loc. Messages follow the LLVM style: start
  /// lowercase, no trailing period.
  void error(SourceLoc Loc, std::string Message);

  /// Records a warning at \p Loc.
  void warning(SourceLoc Loc, std::string Message);

  /// Records a note at \p Loc.
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: level: message" lines.
  std::string render() const;

  /// Drops all recorded diagnostics.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace vdga

#endif // VDGA_SUPPORT_DIAGNOSTICS_H
