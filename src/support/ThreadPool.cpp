//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cstdlib>

using namespace vdga;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads <= 1)
    return; // Inline fallback: no workers, no queue.
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::dispatch(std::function<void()> Task) {
  if (Workers.empty()) {
    Task(); // packaged_task captures any exception for the future.
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Tasks.push(std::move(Task));
  }
  Ready.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stopping || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Stopping with a drained queue.
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    Task();
  }
}

unsigned ThreadPool::defaultJobs() {
  if (const char *Env = std::getenv("VDGA_JOBS")) {
    long Requested = std::strtol(Env, nullptr, 10);
    return Requested < 1 ? 1u : static_cast<unsigned>(Requested);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1u;
}
