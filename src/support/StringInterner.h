//===- support/StringInterner.h - Symbol interning -------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense 32-bit symbol ids. Ids are handed out in
/// first-intern order, which keeps every downstream iteration deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_STRINGINTERNER_H
#define VDGA_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace vdga {

/// A dense id for an interned string. Symbol 0 is reserved for the empty
/// string, so a default-constructed Symbol is valid and prints as "".
class Symbol {
public:
  Symbol() = default;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  uint32_t id() const { return Id; }
  bool empty() const { return Id == 0; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  uint32_t Id = 0;
};

/// Owns interned string storage and the symbol <-> text mapping.
///
/// Storage is a deque so element references stay stable as the table grows;
/// the lookup index keys string_views into that stable storage.
class StringInterner {
public:
  StringInterner();

  /// Interns \p Text, returning its (possibly pre-existing) symbol.
  Symbol intern(std::string_view Text);

  /// Returns the text of \p Sym. The reference stays valid for the
  /// interner's lifetime.
  const std::string &text(Symbol Sym) const {
    assert(Sym.id() < Storage.size() && "symbol from another interner");
    return Storage[Sym.id()];
  }

  /// Number of distinct symbols (including the reserved empty symbol).
  size_t size() const { return Storage.size(); }

private:
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace vdga

#endif // VDGA_SUPPORT_STRINGINTERNER_H
