//===- support/SCC.h - Online strongly connected components ----*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental SCC maintenance over a dense-id directed graph, for the
/// wave/deep solver strategies (pointsto/Solver.h): components are tracked
/// in a union-find, each live component carries a topological rank, and
/// edges may keep arriving after the initial batch (the solvers discover
/// call/return wiring dynamically).
///
/// The initial graph is condensed with one batch pass (Pearce's iterative
/// Tarjan variant) that also assigns ranks; subsequent `insertEdge` calls
/// use the Pearce–Kelly affected-region algorithm: an edge that respects
/// the current ranks is O(1), otherwise only components whose ranks lie
/// between the endpoints are re-ordered, and any cycle that forms is
/// collapsed by unioning its components (firing `OnMerge` so the owner can
/// reconcile per-component solver state).
///
/// Everything is deterministic given the node count and the edge sequence:
/// ties are broken by dense id, and no hashing or pointer identity is
/// involved.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_SCC_H
#define VDGA_SUPPORT_SCC_H

#include "support/DenseBitSet.h"

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace vdga {

/// See the file comment. Typical use:
///
///   OnlineSCC S(NumOutputs);
///   for (static edges) S.addInitialEdge(From, To);
///   S.OnMerge = [&](uint32_t Winner, uint32_t Loser) { ... };
///   S.build();                       // condense + rank the static graph
///   ...
///   S.insertEdge(From, To);          // dynamic call/return wiring
///
/// After build(), `find(V)` names V's component representative and
/// `rank(V)` its topological position: for every edge (U, V) with
/// `find(U) != find(V)`, `rank(U) < rank(V)`. Ranks are unique per live
/// component but not contiguous (merges retire ranks).
class OnlineSCC {
public:
  /// \p Sealed builds a static-only condensation: insertEdge() is
  /// disallowed, and the per-representative adjacency (needed only for
  /// online repair) is never materialized. The wave scheduler's rank
  /// source is sealed — it condenses the dense value-flow graph once per
  /// solve, and skipping the adjacency churn is a measurable win there.
  explicit OnlineSCC(uint32_t NumNodes, bool Sealed = false);

  /// Invoked as OnMerge(Winner, Loser) each time component Loser is
  /// unioned into Winner — both during build() (one call per non-root
  /// member of a static SCC) and on a cycle closed by insertEdge(). The
  /// callback must not re-enter this OnlineSCC.
  std::function<void(uint32_t Winner, uint32_t Loser)> OnMerge;

  /// Records a static edge; only valid before build(). Self-edges and
  /// duplicates are allowed.
  void addInitialEdge(uint32_t From, uint32_t To);

  /// Condenses the static graph and assigns topological ranks. Must be
  /// called exactly once, before any insertEdge().
  void build();

  /// Inserts an edge online, restoring topological ranks and collapsing
  /// any cycle it closes. Returns the number of component merges this
  /// edge caused (0 for rank-respecting edges). Invalid on a sealed
  /// instance.
  unsigned insertEdge(uint32_t From, uint32_t To);

  /// Representative of \p V's component (path-compressing).
  uint32_t find(uint32_t V) const;

  /// Topological rank of \p V's component.
  uint32_t rank(uint32_t V) const { return Ranks[find(V)]; }

  bool sameComponent(uint32_t A, uint32_t B) const {
    return find(A) == find(B);
  }

  /// Total components merged away so far (build-time + online).
  size_t numMerges() const { return Merges; }

  size_t numNodes() const { return Parent.size(); }

private:
  void mergeInto(uint32_t Winner, uint32_t Loser);

  /// Union-find parents; mutable for path compression in const find().
  mutable std::vector<uint32_t> Parent;
  /// Topological rank, valid for representatives only.
  std::vector<uint32_t> Ranks;
  /// Per-representative adjacency, empty in sealed instances. Endpoints
  /// may be stale (merged-away) ids; traversals map them through find().
  std::vector<std::vector<uint32_t>> OutEdges;
  std::vector<std::vector<uint32_t>> InEdges;
  std::vector<std::pair<uint32_t, uint32_t>> InitialEdges;
  size_t Merges = 0;
  bool Built = false;
  bool Sealed = false;

  // insertEdge() scratch, kept allocated across calls.
  std::vector<uint32_t> Fwd, Bwd, Stack, Order, Pool;
  DenseBitSet FwdMark, BwdMark;
};

} // namespace vdga

#endif // VDGA_SUPPORT_SCC_H
