//===- support/Digest.h - Canonical FNV-1a digest --------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical digest accumulator shared by the fuzz oracle stack
/// (fingerprinting everything observable about one program's analysis)
/// and the query service's artifact store (keying solved programs so a
/// corpus member is re-served without re-solving). FNV-1a over strings
/// with a separator byte, so "ab"+"c" and "a"+"bc" digest differently.
/// Stringly canonical inputs only: callers must render and sort anything
/// whose in-memory order is schedule-dependent before feeding it in.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_DIGEST_H
#define VDGA_SUPPORT_DIGEST_H

#include <cstdint>
#include <string>
#include <string_view>

namespace vdga {

/// FNV-1a digest accumulator.
class Fnv64 {
public:
  void add(std::string_view S) {
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001B3ULL;
    }
    // Separator so "ab"+"c" and "a"+"bc" differ.
    H ^= 0xFF;
    H *= 0x100000001B3ULL;
  }

  uint64_t value() const { return H; }

  std::string hex() const {
    static const char *Digits = "0123456789abcdef";
    std::string S(16, '0');
    uint64_t V = H;
    for (int I = 15; I >= 0; --I, V >>= 4)
      S[I] = Digits[V & 0xF];
    return S;
  }

private:
  uint64_t H = 0xCBF29CE484222325ULL;
};

/// The canonical digest of one program's source text — the artifact-store
/// key. Deliberately byte-exact (no whitespace canonicalization): two
/// sources that differ at all may analyze differently, and a false cache
/// miss only costs a re-solve while a false hit serves wrong answers.
inline std::string sourceDigest(std::string_view Source) {
  Fnv64 D;
  D.add("vdga-src");
  D.add(Source);
  return D.hex();
}

} // namespace vdga

#endif // VDGA_SUPPORT_DIGEST_H
