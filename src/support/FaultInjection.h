//===- support/FaultInjection.h - Deterministic fault probes ---*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, reproducible fault injection for the corpus pipeline's
/// recovery paths. Production code plants named probe points
/// (`faultPoint("worker.crash", Digest)`); a probe decides *whether* the
/// fault fires — the call site decides *what* the fault does (throw,
/// abort, stall, tear a write). With no configuration every probe is a
/// single relaxed atomic load returning false.
///
/// Configuration comes from the `VDGA_FAULT` environment variable (or
/// programmatically, for tests): a comma-separated list of specs
///
///     <site>[@<key>]:<seed>:<rate>[!]
///
///   - `site`  — probe name, e.g. `worker.crash` (see the site table in
///     docs/ARCHITECTURE.md).
///   - `@key`  — optional filter: fire only when the probe's key (usually
///     a program name or digest) equals `key` exactly.
///   - `seed`  — decimal seed mixed into the decision hash, so two sweeps
///     with different seeds pick different victims.
///   - `rate`  — firing probability in [0,1]; 1 fires on every matching
///     probe, 0.01 on ~1% of distinct (site,key) pairs.
///   - `!`     — sticky: the decision ignores the retry epoch, so the
///     fault re-fires on every retry of the same program (models a
///     deterministic poison program rather than a transient fault).
///
/// Decisions hash (site, key, seed, epoch): for a fixed configuration and
/// epoch the same probe always decides the same way, in every process —
/// that is what makes multi-process recovery tests reproducible. The
/// *epoch* is a retry generation counter (env `VDGA_FAULT_EPOCH`, set by
/// the shard supervisor on each worker respawn) so a non-sticky fault
/// injected on attempt 0 heals on attempt 1, exactly like the transient
/// crashes it models.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_FAULTINJECTION_H
#define VDGA_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vdga {

/// One parsed fault spec; see the file comment for the syntax.
struct FaultSpec {
  std::string Site;
  std::string Key;     ///< Empty = match any key.
  uint64_t Seed = 0;
  double Rate = 0.0;   ///< Firing probability in [0,1].
  bool Sticky = false; ///< Epoch excluded from the decision hash.
};

/// Process-wide probe registry. Configure once at startup (main, or a
/// test fixture) before any probed code runs on other threads; probes
/// themselves are lock-free reads.
class FaultInjection {
public:
  static FaultInjection &instance();

  /// Replaces the configuration with the parsed \p SpecText (empty text
  /// clears). Returns false and fills \p Error on a malformed spec,
  /// leaving the previous configuration in place.
  bool configure(const std::string &SpecText, std::string *Error = nullptr);

  /// Removes every spec (probes go back to the single-load fast path).
  void clear();

  /// Retry generation; see the file comment.
  void setEpoch(uint64_t E) { Epoch = E; }
  uint64_t epoch() const { return Epoch; }

  bool enabled() const { return Armed.load(std::memory_order_relaxed); }

  /// The decision: true when any configured spec for \p Site (and
  /// matching \p Key filter) hashes under its rate.
  bool shouldFire(std::string_view Site, std::string_view Key) const;

  /// Loads `VDGA_FAULT` / `VDGA_FAULT_EPOCH` (no-op when unset). Every
  /// tool calls this early in main and treats false — a malformed value —
  /// as a usage error, so a typo'd sweep never silently runs fault-free.
  /// The environment is parsed once; repeat calls re-report the first
  /// outcome.
  bool initFromEnv(std::string *Error = nullptr);

private:
  FaultInjection() = default;

  std::vector<FaultSpec> Specs;
  uint64_t Epoch = 0;
  std::atomic<bool> Armed{false};
  std::atomic<bool> EnvLoaded{false};
};

/// The probe production code plants: true when the fault at \p Site fires
/// for \p Key. Cost when unconfigured: one relaxed load.
inline bool faultPoint(std::string_view Site, std::string_view Key) {
  FaultInjection &FI = FaultInjection::instance();
  if (!FI.enabled())
    return false;
  return FI.shouldFire(Site, Key);
}

/// Parses one `site[@key]:seed:rate[!]` spec. Exposed for tests.
bool parseFaultSpec(std::string_view Text, FaultSpec &Out,
                    std::string *Error = nullptr);

} // namespace vdga

#endif // VDGA_SUPPORT_FAULTINJECTION_H
