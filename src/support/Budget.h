//===- support/Budget.h - Solver resource budgets --------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance for the worklist solvers: a `ResourceBudget` caps
/// how much wall clock, how many points-to pair insertions, how large an
/// assumption-set table and how many worklist iterations one solve may
/// consume, and a lock-free `CancellationToken` lets another thread ask a
/// running solve to stop. Solvers poll a `BudgetMeter` once per dequeue
/// and exit with `SolveStatus::BudgetExceeded`/`Cancelled` instead of
/// looping unboundedly; the pipeline then degrades to a coarser-but-sound
/// tier (see driver/Governance.h) instead of stalling or dying.
///
/// Polling cadence: the counter limits and the cancellation flag are a
/// handful of integer compares and one relaxed atomic load, cheap enough
/// to evaluate on every dequeue; the deadline needs a clock read, so it is
/// only consulted every `ClockStride` polls. A tripped deadline is thus
/// detected within one stride of solver work (microseconds), which is the
/// "within one polling interval" slack the corpus watchdog quotes. A
/// default-constructed (unlimited) budget short-circuits to a single
/// branch per poll, so ungoverned solves are bit-identical and
/// within-noise of pre-governance builds.
///
/// Determinism: iteration and pair limits are compared against the
/// solver's own deterministic work counters at dequeue boundaries, so a
/// trip (and everything downstream of it) is reproducible across job
/// counts and — for budgets that trip well before convergence — across
/// worklist schedules. Deadlines and cancellation are inherently
/// wall-clock and carry no such guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_BUDGET_H
#define VDGA_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace vdga {

/// How a governed solve ended.
enum class SolveStatus : uint8_t {
  Complete,       ///< Reached its fixed point; the result is exact.
  BudgetExceeded, ///< A resource limit tripped; the result is partial.
  Cancelled,      ///< The cancellation token fired; the result is partial.
};

const char *solveStatusName(SolveStatus S);

/// Which budget dimension ended a solve early.
enum class BudgetTrip : uint8_t {
  None,
  Deadline,   ///< Wall-clock deadline passed.
  Pairs,      ///< Points-to pair insertion cap.
  AssumSets,  ///< Assumption-set table size cap (CS only).
  Iterations, ///< Worklist dequeue cap.
  Cancelled,  ///< CancellationToken fired.
};

const char *budgetTripName(BudgetTrip T);

/// Lock-free cooperative cancellation: any thread may cancel(), solvers
/// observe it at their next poll. Tokens outlive every solve they govern
/// (the corpus driver owns one per run).
class CancellationToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Resource limits for one solver run. Every field defaults to
/// "unlimited"; a default-constructed budget makes governance free.
struct ResourceBudget {
  /// Relative wall-clock budget in milliseconds, turned into an absolute
  /// deadline when the solve starts. 0 means none.
  double SoftMs = 0;
  /// Absolute wall-clock deadline (steady clock), for corpus-level
  /// budgets shared across programs. Default-constructed means none.
  /// When both deadlines apply, the earlier one wins.
  std::chrono::steady_clock::time_point Deadline{};
  /// Max points-to pair instances the solve may insert. 0 = unlimited.
  uint64_t MaxPairs = 0;
  /// Max assumption-set table size (context-sensitive solver only).
  /// 0 = unlimited.
  uint64_t MaxAssumSets = 0;
  /// Max worklist dequeues (transfer-function applications).
  /// 0 = unlimited.
  uint64_t MaxIterations = 0;
  /// Cooperative cancellation, or null. Not owned.
  const CancellationToken *Cancel = nullptr;

  bool hasDeadline() const {
    return SoftMs > 0 ||
           Deadline != std::chrono::steady_clock::time_point{};
  }

  /// True when no limit of any kind is set (polling short-circuits).
  bool unlimited() const {
    return !hasDeadline() && MaxPairs == 0 && MaxAssumSets == 0 &&
           MaxIterations == 0 && Cancel == nullptr;
  }

  static ResourceBudget deadlineMs(double Ms) {
    ResourceBudget B;
    B.SoftMs = Ms;
    return B;
  }
  static ResourceBudget maxPairs(uint64_t N) {
    ResourceBudget B;
    B.MaxPairs = N;
    return B;
  }
  static ResourceBudget maxIterations(uint64_t N) {
    ResourceBudget B;
    B.MaxIterations = N;
    return B;
  }
};

/// The in-loop poller a solver embeds: constructed once per solve (this
/// is where SoftMs becomes an absolute deadline), polled once per
/// dequeue with the solver's current work counters.
class BudgetMeter {
public:
  explicit BudgetMeter(const ResourceBudget &B) : B(B) {
    Enabled = !B.unlimited();
    if (!Enabled)
      return;
    if (B.SoftMs > 0) {
      auto Soft = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(B.SoftMs));
      EffectiveDeadline = Soft;
    }
    if (B.Deadline != std::chrono::steady_clock::time_point{} &&
        (EffectiveDeadline == std::chrono::steady_clock::time_point{} ||
         B.Deadline < EffectiveDeadline))
      EffectiveDeadline = B.Deadline;
    HasDeadline =
        EffectiveDeadline != std::chrono::steady_clock::time_point{};
  }

  /// Checks every limit against the caller's counters; BudgetTrip::None
  /// means keep going. The deadline is only consulted every ClockStride
  /// calls (see the file comment).
  BudgetTrip poll(uint64_t Iterations, uint64_t Pairs,
                  uint64_t AssumSets = 0) {
    if (!Enabled)
      return BudgetTrip::None;
    if (B.Cancel && B.Cancel->cancelled())
      return BudgetTrip::Cancelled;
    if (B.MaxIterations && Iterations >= B.MaxIterations)
      return BudgetTrip::Iterations;
    if (B.MaxPairs && Pairs >= B.MaxPairs)
      return BudgetTrip::Pairs;
    if (B.MaxAssumSets && AssumSets >= B.MaxAssumSets)
      return BudgetTrip::AssumSets;
    if (HasDeadline && ++PollsSinceClock >= ClockStride) {
      PollsSinceClock = 0;
      if (std::chrono::steady_clock::now() >= EffectiveDeadline)
        return BudgetTrip::Deadline;
    }
    return BudgetTrip::None;
  }

  /// Deadline detection slack, in polls (documented for the watchdog).
  static constexpr unsigned ClockStride = 256;

private:
  ResourceBudget B;
  std::chrono::steady_clock::time_point EffectiveDeadline{};
  bool Enabled = false;
  bool HasDeadline = false;
  unsigned PollsSinceClock = 0;
};

/// Maps a trip to the status a solver reports for it.
inline SolveStatus statusForTrip(BudgetTrip T) {
  if (T == BudgetTrip::None)
    return SolveStatus::Complete;
  return T == BudgetTrip::Cancelled ? SolveStatus::Cancelled
                                    : SolveStatus::BudgetExceeded;
}

} // namespace vdga

#endif // VDGA_SUPPORT_BUDGET_H
