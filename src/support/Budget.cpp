//===- support/Budget.cpp -------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

using namespace vdga;

const char *vdga::solveStatusName(SolveStatus S) {
  switch (S) {
  case SolveStatus::Complete:
    return "complete";
  case SolveStatus::BudgetExceeded:
    return "budget-exceeded";
  case SolveStatus::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

const char *vdga::budgetTripName(BudgetTrip T) {
  switch (T) {
  case BudgetTrip::None:
    return "none";
  case BudgetTrip::Deadline:
    return "deadline";
  case BudgetTrip::Pairs:
    return "pairs";
  case BudgetTrip::AssumSets:
    return "assum-sets";
  case BudgetTrip::Iterations:
    return "iterations";
  case BudgetTrip::Cancelled:
    return "cancelled";
  }
  return "unknown";
}
