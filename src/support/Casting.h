//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. A hierarchy opts in by providing a
/// static `classof(const Base *)` predicate on each derived class; `isa<>`,
/// `cast<>` and `dyn_cast<>` then work without compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_CASTING_H
#define VDGA_SUPPORT_CASTING_H

#include <cassert>

namespace vdga {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace vdga

#endif // VDGA_SUPPORT_CASTING_H
