//===- support/SCC.cpp - Online strongly connected components -------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SCC.h"

#include <algorithm>
#include <cassert>

using namespace vdga;

OnlineSCC::OnlineSCC(uint32_t NumNodes, bool Sealed) : Sealed(Sealed) {
  Parent.resize(NumNodes);
  Ranks.assign(NumNodes, 0);
  if (!Sealed) {
    OutEdges.resize(NumNodes);
    InEdges.resize(NumNodes);
  }
  for (uint32_t V = 0; V < NumNodes; ++V)
    Parent[V] = V;
}

uint32_t OnlineSCC::find(uint32_t V) const {
  uint32_t Root = V;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  while (Parent[V] != Root) {
    uint32_t Next = Parent[V];
    Parent[V] = Root;
    V = Next;
  }
  return Root;
}

void OnlineSCC::addInitialEdge(uint32_t From, uint32_t To) {
  assert(!Built && "addInitialEdge after build()");
  InitialEdges.push_back({From, To});
}

void OnlineSCC::mergeInto(uint32_t Winner, uint32_t Loser) {
  assert(Winner != Loser);
  Parent[Loser] = Winner;
  if (!Sealed) {
    OutEdges[Winner].insert(OutEdges[Winner].end(), OutEdges[Loser].begin(),
                            OutEdges[Loser].end());
    InEdges[Winner].insert(InEdges[Winner].end(), InEdges[Loser].begin(),
                           InEdges[Loser].end());
    OutEdges[Loser].clear();
    OutEdges[Loser].shrink_to_fit();
    InEdges[Loser].clear();
    InEdges[Loser].shrink_to_fit();
  }
  ++Merges;
  if (OnMerge)
    OnMerge(Winner, Loser);
}

void OnlineSCC::build() {
  assert(!Built && "build() called twice");
  Built = true;
  uint32_t N = static_cast<uint32_t>(Parent.size());

  // CSR adjacency for the batch pass (the per-representative lists are
  // only populated afterwards, once components are known).
  std::vector<uint32_t> Head(N + 1, 0);
  for (auto &E : InitialEdges)
    ++Head[E.first + 1];
  for (uint32_t V = 0; V < N; ++V)
    Head[V + 1] += Head[V];
  std::vector<uint32_t> Adj(InitialEdges.size());
  {
    std::vector<uint32_t> Next(Head.begin(), Head.end() - 1);
    for (auto &E : InitialEdges)
      Adj[Next[E.first]++] = E.second;
  }

  // Iterative Tarjan. Components are emitted in reverse topological
  // order, so emission index C gets rank (NumComponents - 1 - C) — but we
  // don't know NumComponents up front, so record the emission index and
  // flip at the end.
  constexpr uint32_t Unvisited = UINT32_MAX;
  std::vector<uint32_t> Index(N, Unvisited), Low(N, 0);
  std::vector<uint32_t> CompIdx(N, Unvisited);
  DenseBitSet OnStack;
  std::vector<uint32_t> TarjanStack;
  // DFS frame: (node, next out-edge position in Adj).
  std::vector<std::pair<uint32_t, uint32_t>> Frames;
  uint32_t NextIndex = 0, NumComps = 0;

  // Nodes no edge touches are singleton components whose rank is
  // unconstrained; emitting them inline (in id order, interleaved with the
  // DFS components) skips the Tarjan machinery. On the sparse copy graphs
  // most nodes take this path.
  DenseBitSet Touched;
  for (auto &E : InitialEdges) {
    Touched.insert(E.first);
    Touched.insert(E.second);
  }

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    if (!Touched.contains(Root)) {
      CompIdx[Root] = NumComps++;
      continue;
    }
    Frames.push_back({Root, Head[Root]});
    Index[Root] = Low[Root] = NextIndex++;
    TarjanStack.push_back(Root);
    OnStack.insert(Root);
    while (!Frames.empty()) {
      uint32_t V = Frames.back().first;
      if (Frames.back().second < Head[V + 1]) {
        uint32_t W = Adj[Frames.back().second++];
        if (Index[W] == Unvisited) {
          Frames.push_back({W, Head[W]});
          Index[W] = Low[W] = NextIndex++;
          TarjanStack.push_back(W);
          OnStack.insert(W);
        } else if (OnStack.contains(W)) {
          Low[V] = std::min(Low[V], Index[W]);
        }
        continue;
      }
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().first] =
            std::min(Low[Frames.back().first], Low[V]);
      if (Low[V] != Index[V])
        continue;
      // V roots a component: pop its members. The root (lowest dense id
      // reached first) becomes the union-find representative.
      uint32_t Member;
      do {
        Member = TarjanStack.back();
        TarjanStack.pop_back();
        OnStack.erase(Member);
        CompIdx[Member] = NumComps;
        if (Member != V)
          mergeInto(V, Member);
      } while (Member != V);
      ++NumComps;
    }
  }

  for (uint32_t V = 0; V < N; ++V)
    if (find(V) == V)
      Ranks[V] = NumComps - 1 - CompIdx[V];

  // Populate the per-representative adjacency with cross-component edges
  // (intra-component edges are already satisfied by the collapse). Sealed
  // instances never traverse again, so they skip this entirely.
  if (!Sealed) {
    for (auto &E : InitialEdges) {
      uint32_t F = find(E.first), T = find(E.second);
      if (F == T)
        continue;
      OutEdges[F].push_back(T);
      InEdges[T].push_back(F);
    }
  }
  InitialEdges.clear();
  InitialEdges.shrink_to_fit();
}

unsigned OnlineSCC::insertEdge(uint32_t From, uint32_t To) {
  assert(Built && "insertEdge before build()");
  assert(!Sealed && "insertEdge on a sealed condensation");
  uint32_t F = find(From), T = find(To);
  if (F == T)
    return 0;
  OutEdges[F].push_back(T);
  InEdges[T].push_back(F);
  if (Ranks[F] < Ranks[T])
    return 0;

  // Pearce–Kelly: only components with ranks inside [rank(T), rank(F)]
  // can be affected. Fwd collects what T reaches inside the window, Bwd
  // what reaches F; membership in both means the new edge closed a cycle.
  uint32_t Lo = Ranks[T], Hi = Ranks[F];
  Fwd.clear();
  Bwd.clear();

  Stack.clear();
  Stack.push_back(T);
  FwdMark.insert(T);
  while (!Stack.empty()) {
    uint32_t V = Stack.back();
    Stack.pop_back();
    Fwd.push_back(V);
    for (uint32_t Raw : OutEdges[V]) {
      uint32_t W = find(Raw);
      if (W == V || FwdMark.contains(W) || Ranks[W] > Hi)
        continue;
      FwdMark.insert(W);
      Stack.push_back(W);
    }
  }

  Stack.clear();
  Stack.push_back(F);
  BwdMark.insert(F);
  while (!Stack.empty()) {
    uint32_t V = Stack.back();
    Stack.pop_back();
    Bwd.push_back(V);
    for (uint32_t Raw : InEdges[V]) {
      uint32_t W = find(Raw);
      if (W == V || BwdMark.contains(W) || Ranks[W] < Lo)
        continue;
      BwdMark.insert(W);
      Stack.push_back(W);
    }
  }

  // Acyclic two-singleton repair — the overwhelmingly common case for
  // dynamic call wiring, where a freshly reached formal sits below the
  // actual feeding it: nothing else occupies the affected window, so
  // swapping the endpoint ranks restores the invariant directly.
  if (Fwd.size() == 1 && Bwd.size() == 1 && !FwdMark.contains(F)) {
    Ranks[F] = Lo;
    Ranks[T] = Hi;
    FwdMark.erase(T);
    BwdMark.erase(F);
    return 0;
  }

  // The rank pool of every affected component, reassigned below in the
  // repaired order. Collected before any merge retires ranks.
  Pool.clear();
  for (uint32_t V : Fwd)
    Pool.push_back(Ranks[V]);
  for (uint32_t V : Bwd)
    if (!FwdMark.contains(V))
      Pool.push_back(Ranks[V]);
  std::sort(Pool.begin(), Pool.end());

  unsigned MergeCount = 0;
  uint32_t CycleRep = UINT32_MAX;
  if (FwdMark.contains(F)) {
    // Cycle: every component in Fwd ∩ Bwd is on a path T ->* F -> T.
    // The member with the lowest pre-insertion rank wins, keeping the
    // choice deterministic.
    for (uint32_t V : Fwd) {
      if (!BwdMark.contains(V))
        continue;
      if (CycleRep == UINT32_MAX || Ranks[V] < Ranks[CycleRep] ||
          (Ranks[V] == Ranks[CycleRep] && V < CycleRep))
        CycleRep = V;
    }
    for (uint32_t V : Fwd) {
      if (V == CycleRep || !BwdMark.contains(V))
        continue;
      mergeInto(CycleRep, V);
      ++MergeCount;
    }
  }

  // Repaired order: components that reach F (minus the merged cycle)
  // keep their relative order and come first, then the cycle component,
  // then components reachable from T. Survivors take ranks from the
  // sorted pool; retired ranks at the tail simply go unused.
  Order.clear();
  for (uint32_t V : Bwd)
    if (find(V) == V && V != CycleRep && !FwdMark.contains(V))
      Order.push_back(V);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](uint32_t A, uint32_t B) { return Ranks[A] < Ranks[B]; });
  size_t BwdCount = Order.size();
  if (CycleRep != UINT32_MAX)
    Order.push_back(CycleRep);
  size_t FwdStart = Order.size();
  for (uint32_t V : Fwd)
    if (find(V) == V && V != CycleRep)
      Order.push_back(V);
  std::stable_sort(Order.begin() + FwdStart, Order.end(),
                   [&](uint32_t A, uint32_t B) { return Ranks[A] < Ranks[B]; });
  (void)BwdCount;
  for (size_t I = 0; I < Order.size(); ++I)
    Ranks[Order[I]] = Pool[I];

  for (uint32_t V : Fwd)
    FwdMark.erase(V);
  for (uint32_t V : Bwd)
    BwdMark.erase(V);
  return MergeCount;
}
