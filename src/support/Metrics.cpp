//===- support/Metrics.cpp ------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <cassert>

using namespace vdga;

MetricsRegistry::ScopedTimer::~ScopedTimer() {
  auto End = std::chrono::steady_clock::now();
  Registry.addTime(
      Name, std::chrono::duration<double, std::milli>(End - Start).count());
}

Metric &MetricsRegistry::get(std::string_view Name, bool IsTimer) {
  auto It = Index.find(std::string(Name));
  if (It != Index.end()) {
    Metric &M = Metrics[It->second];
    assert(M.IsTimer == IsTimer && "metric reused with a different kind");
    return M;
  }
  Index.emplace(std::string(Name), Metrics.size());
  Metrics.push_back(Metric{std::string(Name), IsTimer, 0, 0.0});
  return Metrics.back();
}

void MetricsRegistry::add(std::string_view Name, uint64_t Delta) {
  get(Name, /*IsTimer=*/false).Count += Delta;
}

void MetricsRegistry::set(std::string_view Name, uint64_t Value) {
  get(Name, /*IsTimer=*/false).Count = Value;
}

void MetricsRegistry::addTime(std::string_view Name, double Millis) {
  get(Name, /*IsTimer=*/true).Millis += Millis;
}

const Metric *MetricsRegistry::find(std::string_view Name) const {
  auto It = Index.find(std::string(Name));
  return It == Index.end() ? nullptr : &Metrics[It->second];
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  for (const Metric &M : Other.Metrics) {
    Metric &Mine = get(M.Name, M.IsTimer);
    Mine.Count += M.Count;
    Mine.Millis += M.Millis;
  }
}

void MetricsRegistry::clear() {
  Metrics.clear();
  Index.clear();
}
