//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace vdga;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagLevel::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagLevel::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagLevel::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
    switch (D.Level) {
    case DiagLevel::Note:
      OS << "note: ";
      break;
    case DiagLevel::Warning:
      OS << "warning: ";
      break;
    case DiagLevel::Error:
      OS << "error: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}
