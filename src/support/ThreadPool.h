//===- support/ThreadPool.h - Small task executor --------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool for the corpus driver. Each corpus program's
/// frontend/CI/CS pipeline is independent (per-AnalyzedProgram tables), so
/// `analyzeCorpus` fans the programs out over this pool and joins the
/// reports back in corpus order.
///
/// Semantics chosen for determinism and testability:
///   * `submit` returns a std::future; exceptions thrown by the task
///     surface at `future::get`, never on the worker thread;
///   * a pool built with 0 or 1 threads runs every task inline at submit
///     time — the serial fallback is the exact serial execution, not a
///     one-worker queue;
///   * tasks are dispatched in submission order (single FIFO queue).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_THREADPOOL_H
#define VDGA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace vdga {

class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 or 1 means inline (serial) execution.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads (0 in the inline fallback).
  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Schedules \p Fn; the returned future yields its result or rethrows
  /// its exception. Inline pools run it before returning.
  template <typename Fn> auto submit(Fn &&F) {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto Task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(F));
    std::future<Result> Future = Task->get_future();
    dispatch([Task] { (*Task)(); });
    return Future;
  }

  /// The job count `analyzeCorpus` uses when none is requested: the
  /// VDGA_JOBS environment variable if set (clamped to >= 1), otherwise
  /// std::thread::hardware_concurrency().
  static unsigned defaultJobs();

private:
  void dispatch(std::function<void()> Task);
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable Ready;
  bool Stopping = false;
};

} // namespace vdga

#endif // VDGA_SUPPORT_THREADPOOL_H
