//===- support/SourceLoc.h - Source positions ------------------*- C++ -*-===//
//
// Part of the vdg-alias project: a reproduction of Erik Ruf,
// "Context-Insensitive Alias Analysis Reconsidered", PLDI 1995.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column positions used by the MiniC frontend for
/// diagnostics and for mapping analysis facts back to source text.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_SOURCELOC_H
#define VDGA_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace vdga {

/// A position in a MiniC source buffer. Lines and columns are 1-based;
/// a default-constructed location (0, 0) means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
  friend bool operator!=(const SourceLoc &A, const SourceLoc &B) {
    return !(A == B);
  }
  friend bool operator<(const SourceLoc &A, const SourceLoc &B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Column < B.Column;
  }
};

} // namespace vdga

#endif // VDGA_SUPPORT_SOURCELOC_H
