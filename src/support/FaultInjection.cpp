//===- support/FaultInjection.cpp -----------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Digest.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace vdga;

FaultInjection &FaultInjection::instance() {
  static FaultInjection FI;
  return FI;
}

bool vdga::parseFaultSpec(std::string_view Text, FaultSpec &Out,
                          std::string *Error) {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = "bad fault spec '" + std::string(Text) + "': " + Why;
    return false;
  };
  FaultSpec S;
  if (!Text.empty() && Text.back() == '!') {
    S.Sticky = true;
    Text.remove_suffix(1);
  }
  // site[@key]:seed:rate — split from the right so keys may contain '@'
  // but not ':' (digests and program names never do).
  size_t RateColon = Text.rfind(':');
  if (RateColon == std::string_view::npos)
    return Fail("expected site[@key]:seed:rate[!]");
  size_t SeedColon = Text.rfind(':', RateColon - 1);
  if (SeedColon == std::string_view::npos || SeedColon == 0)
    return Fail("expected site[@key]:seed:rate[!]");
  std::string SiteKey(Text.substr(0, SeedColon));
  std::string SeedText(Text.substr(SeedColon + 1, RateColon - SeedColon - 1));
  std::string RateText(Text.substr(RateColon + 1));

  size_t At = SiteKey.find('@');
  if (At != std::string::npos) {
    S.Site = SiteKey.substr(0, At);
    S.Key = SiteKey.substr(At + 1);
    if (S.Key.empty())
      return Fail("empty key after '@'");
  } else {
    S.Site = SiteKey;
  }
  if (S.Site.empty())
    return Fail("empty site");

  char *End = nullptr;
  S.Seed = std::strtoull(SeedText.c_str(), &End, 10);
  if (SeedText.empty() || *End != '\0')
    return Fail("seed must be a decimal integer, got '" + SeedText + "'");
  End = nullptr;
  S.Rate = std::strtod(RateText.c_str(), &End);
  if (RateText.empty() || *End != '\0' || std::isnan(S.Rate) ||
      S.Rate < 0.0 || S.Rate > 1.0)
    return Fail("rate must be a number in [0,1], got '" + RateText + "'");
  Out = std::move(S);
  return true;
}

bool FaultInjection::configure(const std::string &SpecText,
                               std::string *Error) {
  std::vector<FaultSpec> Parsed;
  size_t Pos = 0;
  while (Pos <= SpecText.size()) {
    size_t Comma = SpecText.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = SpecText.size();
    std::string_view Piece(SpecText.data() + Pos, Comma - Pos);
    if (!Piece.empty()) {
      FaultSpec S;
      if (!parseFaultSpec(Piece, S, Error))
        return false;
      Parsed.push_back(std::move(S));
    }
    Pos = Comma + 1;
  }
  Specs = std::move(Parsed);
  Armed.store(!Specs.empty(), std::memory_order_relaxed);
  return true;
}

void FaultInjection::clear() {
  Specs.clear();
  Armed.store(false, std::memory_order_relaxed);
}

bool FaultInjection::shouldFire(std::string_view Site,
                                std::string_view Key) const {
  for (const FaultSpec &S : Specs) {
    if (S.Site != Site)
      continue;
    if (!S.Key.empty() && S.Key != Key)
      continue;
    if (S.Rate <= 0.0)
      continue;
    if (S.Rate >= 1.0)
      return true;
    // Deterministic decision: hash (site, key, seed, epoch) and compare
    // the top 53 bits against the rate. Epoch participation is what lets
    // a non-sticky fault heal on retry.
    Fnv64 H;
    H.add("vdga-fault");
    H.add(S.Site);
    H.add(Key);
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(S.Seed));
    H.add(Buf);
    if (!S.Sticky) {
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(Epoch));
      H.add(Buf);
    }
    // FNV-1a diffuses trailing bytes (the epoch) into the *low* bits far
    // more than the high ones — without a finalizer, bumping the epoch
    // moves the top-53-bit unit by only ~1e-4 and transient faults never
    // heal on retry. Avalanche the value first (murmur-style fmix64).
    uint64_t X = H.value();
    X ^= X >> 33;
    X *= 0xFF51AFD7ED558CCDULL;
    X ^= X >> 33;
    X *= 0xC4CEB9FE1A85EC53ULL;
    X ^= X >> 33;
    double Unit =
        static_cast<double>(X >> 11) / static_cast<double>(1ULL << 53);
    if (Unit < S.Rate)
      return true;
  }
  return false;
}

bool FaultInjection::initFromEnv(std::string *Error) {
  // Parse the environment exactly once; later calls re-report the first
  // outcome so every tool that validates sees the same verdict.
  static std::string CachedError;
  static bool CachedOk = true;
  if (!EnvLoaded.exchange(true)) {
    if (const char *E = std::getenv("VDGA_FAULT_EPOCH"))
      Epoch = std::strtoull(E, nullptr, 10);
    if (const char *Spec = std::getenv("VDGA_FAULT"))
      CachedOk = configure(Spec, &CachedError);
  }
  if (!CachedOk && Error)
    *Error = CachedError;
  return CachedOk;
}
