//===- support/Trace.cpp --------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cstdlib>

using namespace vdga;

Trace::~Trace() {
  if (File && CloseOnDestroy)
    std::fclose(File);
}

std::unique_ptr<Trace> Trace::open(const std::string &Path,
                                   std::string *Error) {
  if (Path == "-")
    return std::unique_ptr<Trace>(new Trace(stderr, /*CloseOnDestroy=*/false));
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Error)
      *Error = "cannot open trace file '" + Path + "'";
    return nullptr;
  }
  return std::unique_ptr<Trace>(new Trace(F, /*CloseOnDestroy=*/true));
}

Trace *Trace::fromEnv() {
  // Opened at most once per process; every pipeline shares the sink
  // (writes are line-atomic under the mutex).
  static std::unique_ptr<Trace> Env = [] {
    const char *Path = std::getenv("VDGA_TRACE");
    if (!Path || !*Path)
      return std::unique_ptr<Trace>();
    std::string Error;
    std::unique_ptr<Trace> T = open(Path, &Error);
    if (!T)
      std::fprintf(stderr, "VDGA_TRACE: %s; tracing disabled\n",
                   Error.c_str());
    return T;
  }();
  return Env.get();
}

void Trace::write(const std::string &Line) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Buffer) {
    *Buffer += Line;
    Buffer->push_back('\n');
    return;
  }
  std::fputs(Line.c_str(), File);
  std::fputc('\n', File);
}

//===----------------------------------------------------------------------===//
// Event builder
//===----------------------------------------------------------------------===//

Trace::Event::Event(Trace &T, const char *Kind) : T(T) {
  Line = "{\"event\":\"";
  Line += Kind;
  Line += '"';
}

Trace::Event::~Event() {
  Line += '}';
  T.write(Line);
}

Trace::Event &Trace::Event::field(const char *Key, uint64_t V) {
  Line += ",\"";
  Line += Key;
  Line += "\":";
  Line += std::to_string(V);
  return *this;
}

Trace::Event &Trace::Event::field(const char *Key, const char *V) {
  Line += ",\"";
  Line += Key;
  Line += "\":\"";
  for (const char *P = V; *P; ++P) {
    char C = *P;
    if (C == '"' || C == '\\')
      Line += '\\';
    // Control characters do not occur in the identifiers and kind names
    // we emit; keep the escaper minimal.
    Line += C;
  }
  Line += '"';
  return *this;
}
