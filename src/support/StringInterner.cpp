//===- support/StringInterner.cpp -----------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace vdga;

StringInterner::StringInterner() {
  Storage.emplace_back(); // Symbol 0 is the empty string.
  Index.emplace(std::string_view(Storage.back()), 0u);
}

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return Symbol(It->second);

  uint32_t Id = static_cast<uint32_t>(Storage.size());
  Storage.emplace_back(Text);
  Index.emplace(std::string_view(Storage.back()), Id);
  return Symbol(Id);
}
