//===- support/Interrupt.h - Graceful SIGINT/SIGTERM handling --*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One process-wide interrupt latch shared by every tool. Installing the
/// handlers routes SIGINT/SIGTERM into (a) an async-signal-safe flag the
/// tool's loops poll between units of work and (b) a `CancellationToken`
/// wired into solver budgets, so an in-flight solve stops within one
/// polling stride instead of at its fixed point. Handlers are installed
/// *without* SA_RESTART: a blocking read (vdga-serve's stdin/getline,
/// the supervisor's waitpid) returns EINTR and its loop observes the
/// flag.
///
/// The contract every tool documents: an interrupted run flushes
/// whatever partial artifacts/checkpoints it owns and exits with code
/// `ExitInterrupted` (5).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_INTERRUPT_H
#define VDGA_SUPPORT_INTERRUPT_H

#include "support/Budget.h"

namespace vdga {

/// Exit code for "interrupted by SIGINT/SIGTERM after a clean flush" —
/// the extension of the 0/2/3/4 tool contract (README, Exit codes).
constexpr int ExitInterrupted = 5;

/// Installs SIGINT and SIGTERM handlers (idempotent). No SA_RESTART; see
/// the file comment.
void installInterruptHandlers();

/// True once either signal was delivered.
bool interruptRequested();

/// The token the handlers cancel; wire it into GovernancePolicy/
/// ResourceBudget `Cancel` fields so running solves stop promptly.
const CancellationToken *interruptToken();

/// Which signal arrived (0 when none) — for log messages.
int interruptSignal();

/// Test hook: pretends a signal arrived / clears the latch.
void simulateInterruptForTest(int Signal);
void resetInterruptForTest();

} // namespace vdga

#endif // VDGA_SUPPORT_INTERRUPT_H
