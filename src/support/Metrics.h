//===- support/Metrics.h - Named counter/timer registry --------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight registry of named metrics: monotone counters and
/// wall-clock timers accumulating milliseconds. The solvers (CI, CS,
/// Weihl, Steensgaard) and the pipeline publish into the registry owned by
/// their `AnalyzedProgram`; `renderBenchJson` exports the registry as the
/// `metrics` section of the vdga-bench-v1 artifact.
///
/// Iteration order is first-registration order, so exported artifacts are
/// deterministic. The registry is intentionally not thread-safe: the
/// parallel corpus driver gives every program its own pipeline (and thus
/// its own registry), matching the one-pipeline-per-thread split.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_METRICS_H
#define VDGA_SUPPORT_METRICS_H

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vdga {

/// One named metric. Counters hold an integer count; timers hold
/// accumulated wall-clock milliseconds. By convention timer names end in
/// ".ms" (tools/bench_diff.py keys off the suffix).
struct Metric {
  std::string Name;
  bool IsTimer = false;
  uint64_t Count = 0;
  double Millis = 0.0;
};

/// Registry of named counters and timers; see the file comment.
class MetricsRegistry {
public:
  /// Adds \p Delta to the named counter, creating it at zero first.
  void add(std::string_view Name, uint64_t Delta);

  /// Sets the named counter to \p Value (gauge semantics).
  void set(std::string_view Name, uint64_t Value);

  /// Accumulates wall-clock milliseconds on the named timer.
  void addTime(std::string_view Name, double Millis);

  /// RAII scope accumulating its lifetime into a named timer.
  class ScopedTimer {
  public:
    ScopedTimer(MetricsRegistry &Registry, std::string_view Name)
        : Registry(Registry), Name(Name),
          Start(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;
    ~ScopedTimer();

  private:
    MetricsRegistry &Registry;
    std::string Name;
    std::chrono::steady_clock::time_point Start;
  };

  /// Times the enclosing scope into the named timer.
  ScopedTimer time(std::string_view Name) { return {*this, Name}; }

  /// All metrics in first-registration order.
  const std::vector<Metric> &metrics() const { return Metrics; }

  /// The named metric, or null if never registered.
  const Metric *find(std::string_view Name) const;

  /// Folds \p Other into this registry (counters add, timers accumulate);
  /// names new to this registry append in \p Other's order.
  void merge(const MetricsRegistry &Other);

  size_t size() const { return Metrics.size(); }
  bool empty() const { return Metrics.empty(); }
  void clear();

private:
  Metric &get(std::string_view Name, bool IsTimer);

  std::vector<Metric> Metrics;
  std::unordered_map<std::string, size_t> Index;
};

} // namespace vdga

#endif // VDGA_SUPPORT_METRICS_H
