//===- support/DenseBitSet.h - Growable dense bitset -----------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A growable bitset over dense 32-bit ids. The solvers intern pairs,
/// paths and assumption sets to small consecutive integers, so membership
/// indices over them are one bit per id instead of a hash-set node: the
/// hot `insert`/`contains` on every meet operation become a shift, a mask
/// and (rarely) a vector growth.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SUPPORT_DENSEBITSET_H
#define VDGA_SUPPORT_DENSEBITSET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vdga {

class DenseBitSet {
public:
  /// Sets bit \p Id; returns true if it was previously clear.
  bool insert(uint32_t Id) {
    size_t Word = Id >> 6;
    uint64_t Mask = uint64_t(1) << (Id & 63);
    if (Word >= Words.size())
      Words.resize(Word + 1, 0);
    else if (Words[Word] & Mask)
      return false;
    Words[Word] |= Mask;
    ++Population;
    return true;
  }

  bool contains(uint32_t Id) const {
    size_t Word = Id >> 6;
    return Word < Words.size() &&
           (Words[Word] & (uint64_t(1) << (Id & 63))) != 0;
  }

  /// Clears bit \p Id; returns true if it was previously set.
  bool erase(uint32_t Id) {
    size_t Word = Id >> 6;
    uint64_t Mask = uint64_t(1) << (Id & 63);
    if (Word >= Words.size() || !(Words[Word] & Mask))
      return false;
    Words[Word] &= ~Mask;
    --Population;
    return true;
  }

  size_t count() const { return Population; }
  bool empty() const { return Population == 0; }

  /// Invokes \p Fn(Id) for every set bit in ascending order, scanning a
  /// word at a time with count-trailing-zeros instead of testing each of
  /// the 64 bits. This is the delta-flush hot loop of the wave/deep
  /// solver strategies (pointsto/Solver.h), where deltas are sparse
  /// relative to the id space.
  template <typename Callback> void forEachSetBit(Callback Fn) const {
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t Word = Words[W];
      while (Word) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
        Fn(static_cast<uint32_t>((W << 6) + Bit));
        Word &= Word - 1;
      }
    }
  }

  void clear() {
    Words.clear();
    Population = 0;
  }

private:
  std::vector<uint64_t> Words;
  size_t Population = 0;
};

} // namespace vdga

#endif // VDGA_SUPPORT_DENSEBITSET_H
