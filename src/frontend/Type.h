//===- frontend/Type.h - MiniC type system ---------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC type system: scalars (int, char, double), void, pointers,
/// fixed-size arrays, struct/union records and function types. Types are
/// interned by a TypeContext, so pointer equality is type equality.
///
/// Types drive three things downstream: (1) which VDG outputs are
/// "alias-related" (Figure 2), (2) the aggregate access-operator structure of
/// access paths (Section 2), and (3) must-alias modeling of unions.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FRONTEND_TYPE_H
#define VDGA_FRONTEND_TYPE_H

#include "support/Casting.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vdga {

class Type;
class RecordType;

/// Discriminator for the Type hierarchy.
enum class TypeKind : uint8_t {
  Void,
  Int,
  Char,
  Double,
  Pointer,
  Array,
  Record,
  Function,
};

/// Base class of all MiniC types. Instances are owned and uniqued by a
/// TypeContext; clients hold `const Type *` and compare with `==`.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isChar() const { return Kind == TypeKind::Char; }
  bool isDouble() const { return Kind == TypeKind::Double; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isRecord() const { return Kind == TypeKind::Record; }
  bool isFunction() const { return Kind == TypeKind::Function; }

  /// Integer-like types usable in arithmetic and conditions.
  bool isIntegral() const { return isInt() || isChar(); }
  /// Any arithmetic scalar.
  bool isArithmetic() const { return isIntegral() || isDouble(); }
  /// Scalar = arithmetic or pointer (assignable by value copy).
  bool isScalar() const { return isArithmetic() || isPointer(); }
  /// Aggregate = array or record.
  bool isAggregate() const { return isArray() || isRecord(); }

  /// True if a value of this type can carry pointer or function values,
  /// directly or inside an aggregate. This is the paper's "alias-related"
  /// predicate from Figure 2 (store values are handled separately).
  bool isAliasRelated() const;

  /// Byte size under the MiniC ABI (char 1, int 4, double 8, pointer 8).
  /// Functions and void have size 0.
  uint64_t size() const;

  /// Renders a C-like spelling, e.g. "struct node *".
  std::string str(const StringInterner &Names) const;

protected:
  explicit Type(TypeKind Kind) : Kind(Kind) {}
  ~Type() = default;

private:
  friend class TypeContext;
  TypeKind Kind;
};

/// One of the four non-composite types (void, int, char, double).
class BuiltinType : public Type {
public:
  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Void || T->kind() == TypeKind::Int ||
           T->kind() == TypeKind::Char || T->kind() == TypeKind::Double;
  }

private:
  friend class TypeContext;
  explicit BuiltinType(TypeKind Kind) : Type(Kind) {}
};

/// A pointer type `T *`.
class PointerType : public Type {
public:
  const Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Pointer;
  }

private:
  friend class TypeContext;
  explicit PointerType(const Type *Pointee)
      : Type(TypeKind::Pointer), Pointee(Pointee) {}
  const Type *Pointee;
};

/// A fixed-size array type `T [N]`.
class ArrayType : public Type {
public:
  const Type *element() const { return Element; }
  uint64_t length() const { return Length; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Array; }

private:
  friend class TypeContext;
  ArrayType(const Type *Element, uint64_t Length)
      : Type(TypeKind::Array), Element(Element), Length(Length) {}
  const Type *Element;
  uint64_t Length;
};

/// One member of a struct or union.
struct RecordField {
  Symbol Name;
  const Type *Ty = nullptr;
  uint64_t Offset = 0; ///< Byte offset (0 for every union member).
};

/// A struct or union type. Records are nominal: each declaration creates a
/// distinct RecordType, completed once its body is parsed.
class RecordType : public Type {
public:
  Symbol tag() const { return Tag; }
  bool isUnion() const { return Union; }
  bool isComplete() const { return Complete; }
  const std::vector<RecordField> &fields() const {
    assert(Complete && "querying fields of an incomplete record");
    return Fields;
  }

  /// Finds a field by name; returns its index or -1.
  int fieldIndex(Symbol Name) const;

  /// Completes the record with its member list; computes offsets and size.
  void complete(std::vector<RecordField> Fields);

  uint64_t byteSize() const { return Size; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Record; }

private:
  friend class TypeContext;
  RecordType(Symbol Tag, bool Union)
      : Type(TypeKind::Record), Tag(Tag), Union(Union) {}

  Symbol Tag;
  bool Union;
  bool Complete = false;
  std::vector<RecordField> Fields;
  uint64_t Size = 0;
};

/// A function type `Ret (P0, P1, ...)`. Variadic functions (printf) carry
/// the IsVariadic flag.
class FunctionType : public Type {
public:
  const Type *returnType() const { return Return; }
  const std::vector<const Type *> &params() const { return Params; }
  bool isVariadic() const { return Variadic; }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Function;
  }

private:
  friend class TypeContext;
  FunctionType(const Type *Return, std::vector<const Type *> Params,
               bool Variadic)
      : Type(TypeKind::Function), Return(Return), Params(std::move(Params)),
        Variadic(Variadic) {}

  const Type *Return;
  std::vector<const Type *> Params;
  bool Variadic;
};

/// Owns and uniques all types of one program.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *voidType() const { return VoidTy.get(); }
  const Type *intType() const { return IntTy.get(); }
  const Type *charType() const { return CharTy.get(); }
  const Type *doubleType() const { return DoubleTy.get(); }

  const PointerType *pointerTo(const Type *Pointee);
  const ArrayType *arrayOf(const Type *Element, uint64_t Length);
  const FunctionType *function(const Type *Return,
                               std::vector<const Type *> Params,
                               bool Variadic);

  /// Creates a fresh, incomplete record type. Nominal typing: every call
  /// makes a new type even for a repeated tag; Sema enforces unique tags.
  RecordType *createRecord(Symbol Tag, bool Union);

  /// All record types in creation order.
  const std::vector<RecordType *> &records() const { return RecordList; }

private:
  std::unique_ptr<BuiltinType> VoidTy, IntTy, CharTy, DoubleTy;
  std::map<const Type *, std::unique_ptr<PointerType>> Pointers;
  std::map<std::pair<const Type *, uint64_t>, std::unique_ptr<ArrayType>>
      Arrays;
  std::map<std::tuple<const Type *, std::vector<const Type *>, bool>,
           std::unique_ptr<FunctionType>>
      Functions;
  std::vector<std::unique_ptr<RecordType>> Records;
  std::vector<RecordType *> RecordList;
};

} // namespace vdga

#endif // VDGA_FRONTEND_TYPE_H
