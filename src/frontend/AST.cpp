//===- frontend/AST.cpp ---------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/AST.h"

using namespace vdga;

FuncDecl *CallExpr::directCallee() const {
  const auto *Ref = dyn_cast<DeclRefExpr>(Callee);
  if (!Ref || !Ref->decl())
    return nullptr;
  return dyn_cast<FuncDecl>(Ref->decl());
}

FuncDecl *Program::findFunction(std::string_view Name) const {
  for (FuncDecl *F : Functions)
    if (Names.text(F->name()) == Name)
      return F;
  return nullptr;
}

VarDecl *Program::findGlobal(std::string_view Name) const {
  for (VarDecl *G : Globals)
    if (Names.text(G->name()) == Name)
      return G;
  return nullptr;
}
