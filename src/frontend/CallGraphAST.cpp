//===- frontend/CallGraphAST.cpp ------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/CallGraphAST.h"

#include <cassert>

using namespace vdga;

CallGraphAST::CallGraphAST(const Program &P) {
  for (const FuncDecl *Fn : P.Functions)
    if (Fn->isAddressTaken() && Fn->isDefined())
      AddressTaken.push_back(Fn);
  for (const FuncDecl *Fn : P.Functions) {
    Callees[Fn]; // Ensure every function has an entry.
    if (Fn->isDefined())
      collectCalls(Fn, Fn->body());
  }
  for (const auto &[Caller, Fns] : Callees)
    for (const FuncDecl *Callee : Fns)
      Callers[Callee].insert(Caller);
  computeRecursion();
}

void CallGraphAST::collectCallsExpr(const FuncDecl *Caller, const Expr *E) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::IntLiteral:
  case ExprKind::FloatLiteral:
  case ExprKind::StringLiteral:
  case ExprKind::DeclRef:
  case ExprKind::SizeOf:
    return;
  case ExprKind::Unary:
    collectCallsExpr(Caller, cast<UnaryExpr>(E)->operand());
    return;
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectCallsExpr(Caller, B->lhs());
    collectCallsExpr(Caller, B->rhs());
    return;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    collectCallsExpr(Caller, A->target());
    collectCallsExpr(Caller, A->value());
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    for (const Expr *Arg : C->args())
      collectCallsExpr(Caller, Arg);
    if (C->builtin() != BuiltinKind::None)
      return;
    if (const FuncDecl *Direct = C->directCallee()) {
      Callees[Caller].insert(Direct);
      return;
    }
    collectCallsExpr(Caller, C->callee());
    // Indirect call: any address-taken defined function may be invoked.
    for (const FuncDecl *Candidate : AddressTaken)
      Callees[Caller].insert(Candidate);
    return;
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    collectCallsExpr(Caller, I->base());
    collectCallsExpr(Caller, I->index());
    return;
  }
  case ExprKind::Member:
    collectCallsExpr(Caller, cast<MemberExpr>(E)->base());
    return;
  case ExprKind::Cast:
    collectCallsExpr(Caller, cast<CastExpr>(E)->operand());
    return;
  case ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    collectCallsExpr(Caller, C->cond());
    collectCallsExpr(Caller, C->thenExpr());
    collectCallsExpr(Caller, C->elseExpr());
    return;
  }
  }
}

void CallGraphAST::collectCalls(const FuncDecl *Caller, const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      collectCalls(Caller, Child);
    return;
  case StmtKind::Expr:
    collectCallsExpr(Caller, cast<ExprStmt>(S)->expr());
    return;
  case StmtKind::Decl: {
    const VarDecl *Var = cast<DeclStmt>(S)->var();
    collectCallsExpr(Caller, Var->init());
    return;
  }
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    collectCallsExpr(Caller, If->cond());
    collectCalls(Caller, If->thenStmt());
    collectCalls(Caller, If->elseStmt());
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    collectCallsExpr(Caller, W->cond());
    collectCalls(Caller, W->body());
    return;
  }
  case StmtKind::DoWhile: {
    const auto *D = cast<DoWhileStmt>(S);
    collectCalls(Caller, D->body());
    collectCallsExpr(Caller, D->cond());
    return;
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    collectCalls(Caller, F->init());
    collectCallsExpr(Caller, F->cond());
    collectCallsExpr(Caller, F->step());
    collectCalls(Caller, F->body());
    return;
  }
  case StmtKind::Return:
    collectCallsExpr(Caller, cast<ReturnStmt>(S)->value());
    return;
  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

void CallGraphAST::computeRecursion() {
  // A function is recursive iff it can reach itself. The graphs are small,
  // so a per-function DFS is plenty.
  for (const auto &[Fn, _] : Callees) {
    std::vector<const FuncDecl *> Stack(Callees[Fn].begin(),
                                        Callees[Fn].end());
    std::set<const FuncDecl *> Seen;
    bool Found = false;
    while (!Stack.empty() && !Found) {
      const FuncDecl *Cur = Stack.back();
      Stack.pop_back();
      if (Cur == Fn) {
        Found = true;
        break;
      }
      if (!Seen.insert(Cur).second)
        continue;
      auto It = Callees.find(Cur);
      if (It == Callees.end())
        continue;
      for (const FuncDecl *Next : It->second)
        Stack.push_back(Next);
    }
    if (Found)
      Recursive.insert(Fn);
  }
}

const std::set<const FuncDecl *> &
CallGraphAST::callees(const FuncDecl *Caller) const {
  auto It = Callees.find(Caller);
  return It == Callees.end() ? EmptySet : It->second;
}

void CallGraphAST::annotate(Program &P) const {
  for (FuncDecl *Fn : P.Functions)
    if (isRecursive(Fn))
      Fn->setRecursive();
}

double CallGraphAST::averageCallers() const {
  unsigned Defined = 0;
  unsigned TotalCallers = 0;
  for (const auto &[Fn, _] : Callees) {
    if (!Fn->isDefined())
      continue;
    ++Defined;
    auto It = Callers.find(Fn);
    if (It != Callers.end())
      TotalCallers += It->second.size();
  }
  return Defined ? static_cast<double>(TotalCallers) / Defined : 0.0;
}

double CallGraphAST::singleCallerFraction() const {
  unsigned Defined = 0;
  unsigned Single = 0;
  for (const auto &[Fn, _] : Callees) {
    if (!Fn->isDefined())
      continue;
    ++Defined;
    auto It = Callers.find(Fn);
    if (It != Callers.end() && It->second.size() == 1)
      ++Single;
  }
  return Defined ? static_cast<double>(Single) / Defined : 0.0;
}
