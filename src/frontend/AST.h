//===- frontend/AST.h - MiniC abstract syntax ------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node classes for MiniC. Nodes are created by the parser, annotated by
/// Sema (types, decl bindings, address-taken flags, builtin recognition) and
/// then consumed by the VDG builder and the concrete interpreter.
///
/// All nodes are owned by an ASTContext and referenced by raw pointer; the
/// hierarchy uses LLVM-style `classof` dispatch (support/Casting.h).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FRONTEND_AST_H
#define VDGA_FRONTEND_AST_H

#include "frontend/Type.h"
#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace vdga {

class Decl;
class Expr;
class FuncDecl;
class Stmt;
class VarDecl;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLiteral,
  FloatLiteral,
  StringLiteral,
  DeclRef,
  Unary,
  Binary,
  Assign,
  Call,
  Index,
  Member,
  Cast,
  Conditional,
  SizeOf,
};

enum class UnaryOp : uint8_t {
  Neg,      ///< -x
  Not,      ///< !x
  BitNot,   ///< ~x
  AddrOf,   ///< &x
  Deref,    ///< *x
  PreInc,   ///< ++x
  PreDec,   ///< --x
  PostInc,  ///< x++
  PostDec,  ///< x--
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  LogAnd,
  LogOr,
};

enum class AssignOp : uint8_t { Assign, Add, Sub, Mul, Div, Rem };

/// Builtin library routines recognized by Sema. Following the paper, most
/// are modeled as the identity on stores; malloc/calloc introduce one heap
/// base-location per static call site.
enum class BuiltinKind : uint8_t {
  None,
  Malloc,
  Calloc,
  Free,
  Printf,
  Putchar,
  Getchar,
  Strlen,
  Strcmp,
  Strcpy,
  Strcat,
  Memset,
  Atoi,
  Abs,
  Fabs,
  Sqrt,
  Exp,
  Rand,
  Srand,
  Exit,
};

/// Base of all expressions. `type()` and `isLValue()` are set by Sema.
class Expr {
public:
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  bool isLValue() const { return LValue; }
  void setLValue(bool V) { LValue = V; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
  const Type *Ty = nullptr;
  bool LValue = false;
};

/// Integer or character literal (characters are just small ints).
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::IntLiteral, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IntLiteral;
  }

private:
  int64_t Value;
};

/// Floating literal.
class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(SourceLoc Loc, double Value)
      : Expr(ExprKind::FloatLiteral, Loc), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FloatLiteral;
  }

private:
  double Value;
};

/// String literal. Each literal denotes anonymous global char-array
/// storage; Sema assigns a dense id used to name its base-location.
class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(SourceLoc Loc, std::string Value)
      : Expr(ExprKind::StringLiteral, Loc), Value(std::move(Value)) {}

  const std::string &value() const { return Value; }

  unsigned literalId() const { return LiteralId; }
  void setLiteralId(unsigned Id) { LiteralId = Id; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::StringLiteral;
  }

private:
  std::string Value;
  unsigned LiteralId = 0;
};

/// A use of a declared name. Sema binds it to a VarDecl or FuncDecl.
class DeclRefExpr : public Expr {
public:
  DeclRefExpr(SourceLoc Loc, Symbol Name)
      : Expr(ExprKind::DeclRef, Loc), Name(Name) {}

  Symbol name() const { return Name; }

  Decl *decl() const { return D; }
  void setDecl(Decl *NewD) { D = NewD; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::DeclRef; }

private:
  Symbol Name;
  Decl *D = nullptr;
};

/// Unary operators, including &, *, and the four inc/dec forms.
class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, Expr *Operand)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOp Op;
  Expr *Operand;
};

/// Binary operators (no assignment; see AssignExpr).
class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, Expr *LHS, Expr *RHS)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// Assignment, simple or compound.
class AssignExpr : public Expr {
public:
  AssignExpr(SourceLoc Loc, AssignOp Op, Expr *Target, Expr *Value)
      : Expr(ExprKind::Assign, Loc), Op(Op), Target(Target), Value(Value) {}

  AssignOp op() const { return Op; }
  Expr *target() const { return Target; }
  Expr *value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Assign; }

private:
  AssignOp Op;
  Expr *Target;
  Expr *Value;
};

/// A call, direct (`f(x)`), indirect (`(*fp)(x)` / `fp(x)`) or builtin.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, Expr *Callee, std::vector<Expr *> Args)
      : Expr(ExprKind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}

  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

  BuiltinKind builtin() const { return Builtin; }
  void setBuiltin(BuiltinKind K) { Builtin = K; }

  /// Dense id assigned by Sema to heap-allocating calls; names the
  /// per-call-site heap base-location.
  unsigned allocSiteId() const { return AllocSiteId; }
  void setAllocSiteId(unsigned Id) { AllocSiteId = Id; }

  /// The called FuncDecl when the callee is a direct function reference,
  /// null otherwise (indirect call through a pointer).
  FuncDecl *directCallee() const;

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
  BuiltinKind Builtin = BuiltinKind::None;
  unsigned AllocSiteId = 0;
};

/// Array subscript `base[index]`.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, Expr *Base, Expr *Index)
      : Expr(ExprKind::Index, Loc), Base(Base), Index(Index) {}

  Expr *base() const { return Base; }
  Expr *index() const { return Index; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Index; }

private:
  Expr *Base;
  Expr *Index;
};

/// Member access `base.field` or `base->field`.
class MemberExpr : public Expr {
public:
  MemberExpr(SourceLoc Loc, Expr *Base, Symbol Field, bool Arrow)
      : Expr(ExprKind::Member, Loc), Base(Base), Field(Field), Arrow(Arrow) {}

  Expr *base() const { return Base; }
  Symbol field() const { return Field; }
  bool isArrow() const { return Arrow; }

  /// Resolved by Sema: the record the field lives in, and its index.
  const RecordType *record() const { return Record; }
  unsigned fieldIndex() const { return FieldIdx; }
  void resolve(const RecordType *R, unsigned Idx) {
    Record = R;
    FieldIdx = Idx;
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Member; }

private:
  Expr *Base;
  Symbol Field;
  bool Arrow;
  const RecordType *Record = nullptr;
  unsigned FieldIdx = 0;
};

/// Explicit cast `(T)expr`. Sema rejects pointer<->non-pointer casts, per
/// the paper's stated restrictions (void* <-> T* is allowed).
class CastExpr : public Expr {
public:
  CastExpr(SourceLoc Loc, const Type *Target, Expr *Operand)
      : Expr(ExprKind::Cast, Loc), Target(Target), Operand(Operand) {}

  const Type *target() const { return Target; }
  Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Cast; }

private:
  const Type *Target;
  Expr *Operand;
};

/// Conditional `cond ? then : else`.
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLoc Loc, Expr *Cond, Expr *Then, Expr *Else)
      : Expr(ExprKind::Conditional, Loc), Cond(Cond), Then(Then), Else(Else) {
  }

  Expr *cond() const { return Cond; }
  Expr *thenExpr() const { return Then; }
  Expr *elseExpr() const { return Else; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Conditional;
  }

private:
  Expr *Cond;
  Expr *Then;
  Expr *Else;
};

/// `sizeof(type)` — resolved to a constant by Sema.
class SizeOfExpr : public Expr {
public:
  SizeOfExpr(SourceLoc Loc, const Type *Queried)
      : Expr(ExprKind::SizeOf, Loc), Queried(Queried) {}

  const Type *queried() const { return Queried; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::SizeOf; }

private:
  const Type *Queried;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Compound,
  Expr,
  Decl,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
};

/// Base of all statements.
class Stmt {
public:
  virtual ~Stmt() = default;

  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
};

/// `{ ... }`
class CompoundStmt : public Stmt {
public:
  CompoundStmt(SourceLoc Loc, std::vector<Stmt *> Body)
      : Stmt(StmtKind::Compound, Loc), Body(std::move(Body)) {}

  const std::vector<Stmt *> &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Compound; }

private:
  std::vector<Stmt *> Body;
};

/// An expression evaluated for effect.
class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, Expr *E) : Stmt(StmtKind::Expr, Loc), E(E) {}

  Expr *expr() const { return E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Expr; }

private:
  Expr *E;
};

/// A local variable declaration (one VarDecl per DeclStmt).
class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLoc Loc, VarDecl *Var) : Stmt(StmtKind::Decl, Loc), Var(Var) {}

  VarDecl *var() const { return Var; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }

private:
  VarDecl *Var;
};

/// `if (cond) then else?`
class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; ///< May be null.
};

/// `while (cond) body`
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}

  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

/// `do body while (cond);`
class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(SourceLoc Loc, Stmt *Body, Expr *Cond)
      : Stmt(StmtKind::DoWhile, Loc), Body(Body), Cond(Cond) {}

  Stmt *body() const { return Body; }
  Expr *cond() const { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::DoWhile; }

private:
  Stmt *Body;
  Expr *Cond;
};

/// `for (init; cond; step) body` — any of the three headers may be null.
class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, Stmt *Init, Expr *Cond, Expr *Step, Stmt *Body)
      : Stmt(StmtKind::For, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}

  Stmt *init() const { return Init; }
  Expr *cond() const { return Cond; }
  Expr *step() const { return Step; }
  Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  Stmt *Init; ///< ExprStmt or DeclStmt; may be null.
  Expr *Cond; ///< May be null (infinite loop).
  Expr *Step; ///< May be null.
  Stmt *Body;
};

/// `return expr?;`
class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, Expr *Value)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}

  Expr *value() const { return Value; } ///< May be null.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  Expr *Value;
};

/// `break;`
class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

/// `continue;`
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

enum class DeclKind : uint8_t { Var, Func };

/// Base of named declarations.
class Decl {
public:
  virtual ~Decl() = default;

  DeclKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  Symbol name() const { return Name; }
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  /// Creation ordinal within the ASTContext. Gives pointer-keyed
  /// containers a deterministic order (the analyses and the VDG builder
  /// must not depend on heap addresses).
  unsigned uid() const { return Uid; }
  void setUid(unsigned U) { Uid = U; }

protected:
  Decl(DeclKind Kind, SourceLoc Loc, Symbol Name, const Type *Ty)
      : Kind(Kind), Loc(Loc), Name(Name), Ty(Ty) {}

private:
  DeclKind Kind;
  SourceLoc Loc;
  Symbol Name;
  const Type *Ty;
  unsigned Uid = 0;
};

/// Orders declarations by creation ordinal; use for any map keyed by
/// Decl pointers whose iteration order feeds deterministic output.
struct DeclOrder {
  template <typename T> bool operator()(const T *A, const T *B) const {
    return A->uid() < B->uid();
  }
};

/// Storage class of a variable.
enum class StorageKind : uint8_t { Global, Local, Param };

/// A variable: global, local, or parameter.
class VarDecl : public Decl {
public:
  VarDecl(SourceLoc Loc, Symbol Name, const Type *Ty, StorageKind Storage)
      : Decl(DeclKind::Var, Loc, Name, Ty), Storage(Storage) {}

  StorageKind storage() const { return Storage; }
  bool isGlobal() const { return Storage == StorageKind::Global; }
  bool isParam() const { return Storage == StorageKind::Param; }

  Expr *init() const { return Init; }
  void setInit(Expr *E) { Init = E; }

  /// Brace-list initializer elements for global arrays ({1, 2, 3}); empty
  /// when Init is used instead.
  const std::vector<Expr *> &initList() const { return InitList; }
  void setInitList(std::vector<Expr *> Elems) { InitList = std::move(Elems); }

  /// True if `&var` appears anywhere (set by Sema). Only address-taken
  /// variables live in the store; others bind directly to value edges,
  /// mirroring the paper's SSA-like store scalarization.
  bool isAddressTaken() const { return AddressTaken; }
  void setAddressTaken() { AddressTaken = true; }

  /// The function this local/param belongs to (null for globals).
  FuncDecl *owner() const { return Owner; }
  void setOwner(FuncDecl *F) { Owner = F; }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Var; }

private:
  StorageKind Storage;
  Expr *Init = nullptr;
  std::vector<Expr *> InitList;
  bool AddressTaken = false;
  FuncDecl *Owner = nullptr;
};

/// A function declaration or definition.
class FuncDecl : public Decl {
public:
  FuncDecl(SourceLoc Loc, Symbol Name, const FunctionType *Ty,
           std::vector<VarDecl *> Params)
      : Decl(DeclKind::Func, Loc, Name, Ty), Params(std::move(Params)) {}

  const FunctionType *functionType() const {
    return cast<FunctionType>(type());
  }
  const std::vector<VarDecl *> &params() const { return Params; }

  CompoundStmt *body() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }
  bool isDefined() const { return Body != nullptr; }

  /// True if the function's address is taken (possible indirect callee).
  bool isAddressTaken() const { return AddressTaken; }
  void setAddressTaken() { AddressTaken = true; }

  /// Locals declared anywhere in the body, in declaration order (set by
  /// Sema); used by the VDG builder and the interpreter.
  const std::vector<VarDecl *> &locals() const { return Locals; }
  void addLocal(VarDecl *V) { Locals.push_back(V); }

  /// True if this function participates in a call-graph cycle under the
  /// conservative call graph (set by the CallGraph pass).
  bool isRecursive() const { return Recursive; }
  void setRecursive() { Recursive = true; }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Func; }

private:
  std::vector<VarDecl *> Params;
  CompoundStmt *Body = nullptr;
  bool AddressTaken = false;
  bool Recursive = false;
  std::vector<VarDecl *> Locals;
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// Owns every AST node of one translation unit.
class ASTContext {
public:
  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Node.get();
    if constexpr (std::is_base_of_v<Expr, T>) {
      Exprs.push_back(std::move(Node));
    } else if constexpr (std::is_base_of_v<Stmt, T>) {
      Stmts.push_back(std::move(Node));
    } else {
      Raw->setUid(static_cast<unsigned>(Decls.size()));
      Decls.push_back(std::move(Node));
    }
    return Raw;
  }

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::vector<std::unique_ptr<Decl>> Decls;
};

/// A parsed-and-checked MiniC translation unit plus its identifier and type
/// tables. Non-copyable; produced by Parser + Sema, consumed by everything
/// else.
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  StringInterner Names;
  TypeContext Types;
  ASTContext Ctx;

  std::vector<VarDecl *> Globals;
  std::vector<FuncDecl *> Functions;
  std::vector<StringLiteralExpr *> StringLiterals;
  unsigned NumAllocSites = 0;
  unsigned SourceLines = 0;

  /// Finds a function by name; null if absent.
  FuncDecl *findFunction(std::string_view Name) const;
  /// Finds a global by name; null if absent.
  VarDecl *findGlobal(std::string_view Name) const;
};

} // namespace vdga

#endif // VDGA_FRONTEND_AST_H
