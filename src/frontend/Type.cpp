//===- frontend/Type.cpp --------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Type.h"

#include <algorithm>

using namespace vdga;

bool Type::isAliasRelated() const {
  switch (Kind) {
  case TypeKind::Void:
  case TypeKind::Int:
  case TypeKind::Char:
  case TypeKind::Double:
    return false;
  case TypeKind::Pointer:
  case TypeKind::Function:
    return true;
  case TypeKind::Array:
    return cast<ArrayType>(this)->element()->isAliasRelated();
  case TypeKind::Record: {
    const auto *Rec = cast<RecordType>(this);
    if (!Rec->isComplete())
      return false;
    for (const RecordField &F : Rec->fields())
      if (F.Ty->isAliasRelated())
        return true;
    return false;
  }
  }
  return false;
}

uint64_t Type::size() const {
  switch (Kind) {
  case TypeKind::Void:
  case TypeKind::Function:
    return 0;
  case TypeKind::Char:
    return 1;
  case TypeKind::Int:
    return 4;
  case TypeKind::Double:
  case TypeKind::Pointer:
    return 8;
  case TypeKind::Array: {
    const auto *Arr = cast<ArrayType>(this);
    return Arr->element()->size() * Arr->length();
  }
  case TypeKind::Record:
    return cast<RecordType>(this)->byteSize();
  }
  return 0;
}

std::string Type::str(const StringInterner &Names) const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "int";
  case TypeKind::Char:
    return "char";
  case TypeKind::Double:
    return "double";
  case TypeKind::Pointer:
    return cast<PointerType>(this)->pointee()->str(Names) + " *";
  case TypeKind::Array: {
    const auto *Arr = cast<ArrayType>(this);
    return Arr->element()->str(Names) + " [" +
           std::to_string(Arr->length()) + "]";
  }
  case TypeKind::Record: {
    const auto *Rec = cast<RecordType>(this);
    return std::string(Rec->isUnion() ? "union " : "struct ") +
           Names.text(Rec->tag());
  }
  case TypeKind::Function: {
    const auto *Fn = cast<FunctionType>(this);
    std::string S = Fn->returnType()->str(Names) + " (";
    for (size_t I = 0; I < Fn->params().size(); ++I) {
      if (I)
        S += ", ";
      S += Fn->params()[I]->str(Names);
    }
    if (Fn->isVariadic())
      S += Fn->params().empty() ? "..." : ", ...";
    S += ")";
    return S;
  }
  }
  return "<invalid type>";
}

int RecordType::fieldIndex(Symbol Name) const {
  assert(Complete && "looking up a field in an incomplete record");
  for (size_t I = 0; I < Fields.size(); ++I)
    if (Fields[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

void RecordType::complete(std::vector<RecordField> NewFields) {
  assert(!Complete && "record completed twice");
  Fields = std::move(NewFields);
  uint64_t Offset = 0;
  uint64_t MaxSize = 0;
  for (RecordField &F : Fields) {
    if (Union) {
      F.Offset = 0;
      MaxSize = std::max(MaxSize, F.Ty->size());
    } else {
      F.Offset = Offset;
      Offset += F.Ty->size();
    }
  }
  Size = Union ? MaxSize : Offset;
  Complete = true;
}

TypeContext::TypeContext() {
  VoidTy.reset(new BuiltinType(TypeKind::Void));
  IntTy.reset(new BuiltinType(TypeKind::Int));
  CharTy.reset(new BuiltinType(TypeKind::Char));
  DoubleTy.reset(new BuiltinType(TypeKind::Double));
}

const PointerType *TypeContext::pointerTo(const Type *Pointee) {
  assert(Pointee && "pointer to null type");
  auto &Slot = Pointers[Pointee];
  if (!Slot)
    Slot.reset(new PointerType(Pointee));
  return Slot.get();
}

const ArrayType *TypeContext::arrayOf(const Type *Element, uint64_t Length) {
  assert(Element && "array of null type");
  auto &Slot = Arrays[{Element, Length}];
  if (!Slot)
    Slot.reset(new ArrayType(Element, Length));
  return Slot.get();
}

const FunctionType *TypeContext::function(const Type *Return,
                                          std::vector<const Type *> Params,
                                          bool Variadic) {
  auto Key = std::make_tuple(Return, Params, Variadic);
  auto &Slot = Functions[Key];
  if (!Slot)
    Slot.reset(new FunctionType(Return, std::move(Params), Variadic));
  return Slot.get();
}

RecordType *TypeContext::createRecord(Symbol Tag, bool Union) {
  Records.emplace_back(new RecordType(Tag, Union));
  RecordList.push_back(Records.back().get());
  return Records.back().get();
}
