//===- frontend/Lexer.cpp -------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace vdga;

const char *vdga::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "floating literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwUnion:
    return "'union'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::LessLess:
    return "'<<'";
  case TokenKind::GreaterGreater:
    return "'>>'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::PlusEqual:
    return "'+='";
  case TokenKind::MinusEqual:
    return "'-='";
  case TokenKind::StarEqual:
    return "'*='";
  case TokenKind::SlashEqual:
    return "'/='";
  case TokenKind::PercentEqual:
    return "'%='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Ellipsis:
    return "'...'";
  }
  return "<unknown token>";
}

static TokenKind keywordKind(std::string_view Text) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},         {"char", TokenKind::KwChar},
      {"double", TokenKind::KwDouble},   {"void", TokenKind::KwVoid},
      {"struct", TokenKind::KwStruct},   {"union", TokenKind::KwUnion},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},     {"for", TokenKind::KwFor},
      {"do", TokenKind::KwDo},           {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
      {"sizeof", TokenKind::KwSizeof},   {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},       {"default", TokenKind::KwDefault},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

char Lexer::advance() {
  assert(Pos < Source.size() && "advancing past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      bool Closed = false;
      while (peek() != '\0') {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, size_t Start, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = Source.substr(Start, Pos - Start);
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  size_t Start = Pos;
  SourceLoc Loc = loc();
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  Token T = makeToken(TokenKind::Identifier, Start, Loc);
  T.Kind = keywordKind(T.Text);
  return T;
}

Token Lexer::lexNumber() {
  size_t Start = Pos;
  SourceLoc Loc = loc();
  bool IsFloat = false;
  // Hexadecimal literals.
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
    return makeToken(TokenKind::IntLiteral, Start, Loc);
  }
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsFloat = true;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      // Not an exponent after all (e.g. "3eof" cannot happen, but be safe).
      Pos = Save;
    }
  }
  return makeToken(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                   Start, Loc);
}

Token Lexer::lexCharLiteral() {
  size_t Start = Pos;
  SourceLoc Loc = loc();
  advance(); // opening quote
  while (peek() != '\'' && peek() != '\0' && peek() != '\n') {
    if (peek() == '\\' && peek(1) != '\0')
      advance();
    advance();
  }
  if (!match('\''))
    Diags.error(Loc, "unterminated character literal");
  return makeToken(TokenKind::CharLiteral, Start, Loc);
}

Token Lexer::lexStringLiteral() {
  size_t Start = Pos;
  SourceLoc Loc = loc();
  advance(); // opening quote
  while (peek() != '"' && peek() != '\0' && peek() != '\n') {
    if (peek() == '\\' && peek(1) != '\0')
      advance();
    advance();
  }
  if (!match('"'))
    Diags.error(Loc, "unterminated string literal");
  return makeToken(TokenKind::StringLiteral, Start, Loc);
}

Token Lexer::lexToken() {
  // Loops (rather than recursing) past unexpected characters: a long run
  // of garbage bytes must not grow the host stack.
  for (;;) {
    skipTrivia();
    SourceLoc Loc = loc();
    size_t Start = Pos;
    char C = peek();

    if (C == '\0')
      return makeToken(TokenKind::EndOfFile, Start, Loc);
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdentifierOrKeyword();
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber();
    if (C == '\'')
      return lexCharLiteral();
    if (C == '"')
      return lexStringLiteral();

    advance();
    switch (C) {
    case '(':
      return makeToken(TokenKind::LParen, Start, Loc);
    case ')':
      return makeToken(TokenKind::RParen, Start, Loc);
    case '{':
      return makeToken(TokenKind::LBrace, Start, Loc);
    case '}':
      return makeToken(TokenKind::RBrace, Start, Loc);
    case '[':
      return makeToken(TokenKind::LBracket, Start, Loc);
    case ']':
      return makeToken(TokenKind::RBracket, Start, Loc);
    case ';':
      return makeToken(TokenKind::Semi, Start, Loc);
    case ',':
      return makeToken(TokenKind::Comma, Start, Loc);
    case ':':
      return makeToken(TokenKind::Colon, Start, Loc);
    case '?':
      return makeToken(TokenKind::Question, Start, Loc);
    case '~':
      return makeToken(TokenKind::Tilde, Start, Loc);
    case '^':
      return makeToken(TokenKind::Caret, Start, Loc);
    case '.':
      if (peek() == '.' && peek(1) == '.') {
        advance();
        advance();
        return makeToken(TokenKind::Ellipsis, Start, Loc);
      }
      return makeToken(TokenKind::Dot, Start, Loc);
    case '+':
      if (match('+'))
        return makeToken(TokenKind::PlusPlus, Start, Loc);
      if (match('='))
        return makeToken(TokenKind::PlusEqual, Start, Loc);
      return makeToken(TokenKind::Plus, Start, Loc);
    case '-':
      if (match('-'))
        return makeToken(TokenKind::MinusMinus, Start, Loc);
      if (match('='))
        return makeToken(TokenKind::MinusEqual, Start, Loc);
      if (match('>'))
        return makeToken(TokenKind::Arrow, Start, Loc);
      return makeToken(TokenKind::Minus, Start, Loc);
    case '*':
      if (match('='))
        return makeToken(TokenKind::StarEqual, Start, Loc);
      return makeToken(TokenKind::Star, Start, Loc);
    case '/':
      if (match('='))
        return makeToken(TokenKind::SlashEqual, Start, Loc);
      return makeToken(TokenKind::Slash, Start, Loc);
    case '%':
      if (match('='))
        return makeToken(TokenKind::PercentEqual, Start, Loc);
      return makeToken(TokenKind::Percent, Start, Loc);
    case '&':
      if (match('&'))
        return makeToken(TokenKind::AmpAmp, Start, Loc);
      return makeToken(TokenKind::Amp, Start, Loc);
    case '|':
      if (match('|'))
        return makeToken(TokenKind::PipePipe, Start, Loc);
      return makeToken(TokenKind::Pipe, Start, Loc);
    case '<':
      if (match('='))
        return makeToken(TokenKind::LessEqual, Start, Loc);
      if (match('<'))
        return makeToken(TokenKind::LessLess, Start, Loc);
      return makeToken(TokenKind::Less, Start, Loc);
    case '>':
      if (match('='))
        return makeToken(TokenKind::GreaterEqual, Start, Loc);
      if (match('>'))
        return makeToken(TokenKind::GreaterGreater, Start, Loc);
      return makeToken(TokenKind::Greater, Start, Loc);
    case '=':
      if (match('='))
        return makeToken(TokenKind::EqualEqual, Start, Loc);
      return makeToken(TokenKind::Equal, Start, Loc);
    case '!':
      if (match('='))
        return makeToken(TokenKind::BangEqual, Start, Loc);
      return makeToken(TokenKind::Bang, Start, Loc);
    default:
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      break; // Re-enter the loop past the bad byte.
    }
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = lexToken();
    Tokens.push_back(T);
    if (T.is(TokenKind::EndOfFile))
      return Tokens;
  }
}

std::string Lexer::decodeLiteral(std::string_view Text) {
  // Strip the surrounding quotes if present.
  if (Text.size() >= 2 && (Text.front() == '"' || Text.front() == '\''))
    Text = Text.substr(1, Text.size() - 2);
  std::string Result;
  Result.reserve(Text.size());
  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (C != '\\' || I + 1 >= Text.size()) {
      Result.push_back(C);
      continue;
    }
    ++I;
    switch (Text[I]) {
    case 'n':
      Result.push_back('\n');
      break;
    case 't':
      Result.push_back('\t');
      break;
    case 'r':
      Result.push_back('\r');
      break;
    case '0':
      Result.push_back('\0');
      break;
    case '\\':
      Result.push_back('\\');
      break;
    case '\'':
      Result.push_back('\'');
      break;
    case '"':
      Result.push_back('"');
      break;
    default:
      Result.push_back('\\');
      Result.push_back(Text[I]);
      break;
    }
  }
  return Result;
}

unsigned Lexer::countCodeLines(std::string_view Source) {
  unsigned Count = 0;
  bool InBlockComment = false;
  bool LineHasCode = false;
  for (size_t I = 0; I < Source.size(); ++I) {
    char C = Source[I];
    if (C == '\n') {
      if (LineHasCode)
        ++Count;
      LineHasCode = false;
      continue;
    }
    if (InBlockComment) {
      if (C == '*' && I + 1 < Source.size() && Source[I + 1] == '/') {
        InBlockComment = false;
        ++I;
      }
      continue;
    }
    if (C == '/' && I + 1 < Source.size() && Source[I + 1] == '*') {
      InBlockComment = true;
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < Source.size() && Source[I + 1] == '/') {
      // Skip to end of line.
      while (I + 1 < Source.size() && Source[I + 1] != '\n')
        ++I;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(C)))
      LineHasCode = true;
  }
  if (LineHasCode)
    ++Count;
  return Count;
}
