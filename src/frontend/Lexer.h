//===- frontend/Lexer.h - MiniC lexer --------------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Produces the whole token stream up front;
/// programs are small enough (the paper's largest is ~6.8k lines) that this
/// is simpler and faster than lazy lexing.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FRONTEND_LEXER_H
#define VDGA_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace vdga {

/// Lexes a MiniC source buffer into tokens.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes the entire buffer. The returned vector always ends with an
  /// EndOfFile token. Lexical errors are reported to the diagnostic engine
  /// and the offending characters skipped.
  std::vector<Token> lexAll();

  /// Decodes the escapes in a string or char literal token's text (which
  /// includes the surrounding quotes). Invalid escapes are passed through
  /// verbatim.
  static std::string decodeLiteral(std::string_view Text);

  /// Counts the newline-separated lines of \p Source that contain at least
  /// one non-whitespace, non-comment character. Used for the Figure 2
  /// "source lines" statistic.
  static unsigned countCodeLines(std::string_view Source);

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  SourceLoc loc() const { return SourceLoc(Line, Column); }

  void skipTrivia();
  Token lexToken();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexStringLiteral();
  Token makeToken(TokenKind Kind, size_t Start, SourceLoc Loc) const;

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace vdga

#endif // VDGA_FRONTEND_LEXER_H
