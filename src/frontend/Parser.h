//===- frontend/Parser.h - MiniC parser ------------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC. Produces an unchecked AST; Sema
/// performs name binding and type checking afterwards. Parse errors are
/// reported to the DiagnosticEngine and recovery skips to the next ';' or
/// '}' so that multiple errors surface in one run.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FRONTEND_PARSER_H
#define VDGA_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"

#include <map>
#include <vector>

namespace vdga {

/// Parses a token stream into a Program's AST.
class Parser {
public:
  Parser(std::vector<Token> Tokens, Program &P, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), P(P), Diags(Diags) {}

  /// Parses the whole translation unit. Returns false if any syntax error
  /// was reported.
  bool parseProgram();

private:
  // Token cursor.
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  Token consume() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool tryConsume(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToRecoveryPoint();

  /// Bounds the combined statement/expression recursion depth so that
  /// adversarial inputs (`((((...`, `{{{{...`) produce a diagnostic and
  /// panic-mode recovery instead of exhausting the host stack.
  static constexpr unsigned MaxNestingDepth = 256;
  /// RAII depth accounting around every recursive parse entry point.
  struct NestingScope {
    Parser &P;
    explicit NestingScope(Parser &P) : P(P) { ++P.NestingDepth; }
    ~NestingScope() { --P.NestingDepth; }
  };
  /// When the nesting limit is hit: diagnoses (once per recovery region),
  /// skips to a recovery point and returns true.
  bool atNestingLimit(const char *What);

  bool atTypeStart() const;

  // Declarations.
  void parseTopLevel();
  void parseRecordDef(bool IsUnion);
  const Type *parseDeclSpec();
  struct Declarator {
    Symbol Name;
    SourceLoc Loc;
    const Type *Ty = nullptr;
    bool IsFunctionDeclarator = false;
    std::vector<VarDecl *> Params;
    bool Variadic = false;
  };
  /// Parses a declarator. When \p AllowAbstract is true (parameter
  /// lists), the identifier may be omitted.
  Declarator parseDeclarator(const Type *Base, bool AllowAbstract = false);
  std::vector<VarDecl *> parseParamList(bool &Variadic);
  void parseFunctionRest(Declarator D);
  void parseGlobalVarRest(const Type *Base, Declarator First);
  VarDecl *makeVarDecl(const Declarator &D, StorageKind Storage);
  void parseInitializer(VarDecl *Var);

  // Statements.
  Stmt *parseStmt();
  CompoundStmt *parseCompound();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseDoWhile();
  Stmt *parseFor();
  Stmt *parseReturn();
  Stmt *parseDeclStmtList(std::vector<Stmt *> &Out);

  // Expressions.
  Expr *parseExpr();
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinaryRHS(int MinPrec, Expr *LHS);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  std::vector<Expr *> parseCallArgs();

  /// Parses one integer literal token, diagnosing out-of-range values.
  int64_t parseIntLiteralValue(const Token &T);
  /// Parses one constant array length, diagnosing overflow and lengths
  /// beyond the MiniC per-dimension cap.
  uint64_t parseArrayLength();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Program &P;
  DiagnosticEngine &Diags;
  std::map<Symbol, RecordType *> RecordsByTag;
  unsigned NestingDepth = 0;
};

} // namespace vdga

#endif // VDGA_FRONTEND_PARSER_H
