//===- frontend/Sema.cpp --------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include <cassert>

using namespace vdga;

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::pushScope() { Scopes.emplace_back(); }

void Sema::popScope() {
  assert(!Scopes.empty() && "popping an empty scope stack");
  Scopes.pop_back();
}

VarDecl *Sema::lookupVar(Symbol Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

void Sema::declareVar(VarDecl *Var) {
  assert(!Scopes.empty() && "declaring outside any scope");
  auto &Scope = Scopes.back();
  auto [It, Inserted] = Scope.emplace(Var->name(), Var);
  if (!Inserted)
    Diags.error(Var->loc(), "redeclaration of '" +
                                P.Names.text(Var->name()) + "'");
}

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

BuiltinKind Sema::builtinKindForName(std::string_view Name) {
  if (Name == "malloc")
    return BuiltinKind::Malloc;
  if (Name == "calloc")
    return BuiltinKind::Calloc;
  if (Name == "free")
    return BuiltinKind::Free;
  if (Name == "printf")
    return BuiltinKind::Printf;
  if (Name == "putchar")
    return BuiltinKind::Putchar;
  if (Name == "getchar")
    return BuiltinKind::Getchar;
  if (Name == "strlen")
    return BuiltinKind::Strlen;
  if (Name == "strcmp")
    return BuiltinKind::Strcmp;
  if (Name == "strcpy")
    return BuiltinKind::Strcpy;
  if (Name == "strcat")
    return BuiltinKind::Strcat;
  if (Name == "memset")
    return BuiltinKind::Memset;
  if (Name == "atoi")
    return BuiltinKind::Atoi;
  if (Name == "abs")
    return BuiltinKind::Abs;
  if (Name == "fabs")
    return BuiltinKind::Fabs;
  if (Name == "sqrt")
    return BuiltinKind::Sqrt;
  if (Name == "exp")
    return BuiltinKind::Exp;
  if (Name == "rand")
    return BuiltinKind::Rand;
  if (Name == "srand")
    return BuiltinKind::Srand;
  if (Name == "exit")
    return BuiltinKind::Exit;
  return BuiltinKind::None;
}

const FunctionType *Sema::builtinType(BuiltinKind K) {
  const Type *IntTy = P.Types.intType();
  const Type *VoidTy = P.Types.voidType();
  const Type *DoubleTy = P.Types.doubleType();
  const Type *VoidPtr = P.Types.pointerTo(VoidTy);
  const Type *CharPtr = P.Types.pointerTo(P.Types.charType());

  switch (K) {
  case BuiltinKind::None:
    return nullptr;
  case BuiltinKind::Malloc:
    return P.Types.function(VoidPtr, {IntTy}, false);
  case BuiltinKind::Calloc:
    return P.Types.function(VoidPtr, {IntTy, IntTy}, false);
  case BuiltinKind::Free:
    return P.Types.function(VoidTy, {VoidPtr}, false);
  case BuiltinKind::Printf:
    return P.Types.function(IntTy, {CharPtr}, true);
  case BuiltinKind::Putchar:
    return P.Types.function(IntTy, {IntTy}, false);
  case BuiltinKind::Getchar:
    return P.Types.function(IntTy, {}, false);
  case BuiltinKind::Strlen:
    return P.Types.function(IntTy, {CharPtr}, false);
  case BuiltinKind::Strcmp:
    return P.Types.function(IntTy, {CharPtr, CharPtr}, false);
  case BuiltinKind::Strcpy:
  case BuiltinKind::Strcat:
    return P.Types.function(CharPtr, {CharPtr, CharPtr}, false);
  case BuiltinKind::Memset:
    return P.Types.function(VoidPtr, {VoidPtr, IntTy, IntTy}, false);
  case BuiltinKind::Atoi:
    return P.Types.function(IntTy, {CharPtr}, false);
  case BuiltinKind::Abs:
    return P.Types.function(IntTy, {IntTy}, false);
  case BuiltinKind::Fabs:
  case BuiltinKind::Sqrt:
  case BuiltinKind::Exp:
    return P.Types.function(DoubleTy, {DoubleTy}, false);
  case BuiltinKind::Rand:
    return P.Types.function(IntTy, {}, false);
  case BuiltinKind::Srand:
    return P.Types.function(VoidTy, {IntTy}, false);
  case BuiltinKind::Exit:
    return P.Types.function(VoidTy, {IntTy}, false);
  }
  return nullptr;
}

void Sema::noteAllocSite(CallExpr *E) {
  E->setAllocSiteId(P.NumAllocSites++);
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

bool Sema::run() {
  ErrorTy = P.Types.intType();
  mergeFunctionDecls();

  pushScope(); // Global scope.
  for (VarDecl *G : P.Globals)
    declareVar(G);
  for (VarDecl *G : P.Globals)
    checkGlobal(G);
  for (FuncDecl *Fn : P.Functions)
    if (Fn->isDefined())
      checkFunction(Fn);
  popScope();
  return !Diags.hasErrors();
}

void Sema::mergeFunctionDecls() {
  std::vector<FuncDecl *> Canonical;
  for (FuncDecl *Fn : P.Functions) {
    auto It = FunctionsByName.find(Fn->name());
    if (It == FunctionsByName.end()) {
      FunctionsByName.emplace(Fn->name(), Fn);
      Canonical.push_back(Fn);
      continue;
    }
    FuncDecl *Prev = It->second;
    if (Prev->type() != Fn->type())
      Diags.error(Fn->loc(), "conflicting declarations of '" +
                                 P.Names.text(Fn->name()) + "'");
    if (Fn->isDefined()) {
      if (Prev->isDefined()) {
        Diags.error(Fn->loc(), "redefinition of '" +
                                   P.Names.text(Fn->name()) + "'");
        continue;
      }
      // Replace the prototype with the definition in place, preserving
      // declaration order.
      for (FuncDecl *&Slot : Canonical)
        if (Slot == Prev)
          Slot = Fn;
      It->second = Fn;
    }
  }
  P.Functions = std::move(Canonical);
}

void Sema::checkGlobal(VarDecl *Var) {
  if (Var->type()->isVoid() || Var->type()->isFunction()) {
    Diags.error(Var->loc(), "variable '" + P.Names.text(Var->name()) +
                                "' has invalid type");
    Var->setType(ErrorTy);
  }
  if (Expr *Init = Var->init()) {
    const Type *InitTy = checkExpr(Init);
    checkAssignable(Var->type(), InitTy, Init, Var->loc(),
                    "in global initializer");
  }
  for (Expr *Elem : Var->initList()) {
    const Type *ElemTy = checkExpr(Elem);
    const auto *Arr = dyn_cast<ArrayType>(Var->type());
    if (!Arr) {
      Diags.error(Var->loc(), "initializer list requires an array type");
      break;
    }
    checkAssignable(Arr->element(), ElemTy, Elem, Elem->loc(),
                    "in array initializer");
  }
  if (const auto *Arr = dyn_cast<ArrayType>(Var->type()))
    if (Var->initList().size() > Arr->length())
      Diags.error(Var->loc(), "too many initializers for array");
}

void Sema::checkFunction(FuncDecl *Fn) {
  CurrentFn = Fn;
  pushScope();
  for (VarDecl *Param : Fn->params()) {
    Param->setOwner(Fn);
    if (Param->name().empty())
      Diags.error(Param->loc(), "parameters of a function definition must "
                                "be named");
    else
      declareVar(Param);
  }
  checkStmt(Fn->body());
  popScope();
  CurrentFn = nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Compound: {
    pushScope();
    for (Stmt *Child : cast<CompoundStmt>(S)->body())
      checkStmt(Child);
    popScope();
    return;
  }
  case StmtKind::Expr:
    checkExpr(cast<ExprStmt>(S)->expr());
    return;
  case StmtKind::Decl: {
    VarDecl *Var = cast<DeclStmt>(S)->var();
    if (Var->type()->isVoid() || Var->type()->isFunction()) {
      Diags.error(Var->loc(), "variable '" + P.Names.text(Var->name()) +
                                  "' has invalid type");
      Var->setType(ErrorTy);
    }
    Var->setOwner(CurrentFn);
    if (CurrentFn)
      CurrentFn->addLocal(Var);
    if (!Var->initList().empty())
      Diags.error(Var->loc(),
                  "initializer lists are only supported on globals");
    declareVar(Var);
    if (Expr *Init = Var->init()) {
      const Type *InitTy = checkExpr(Init);
      checkAssignable(Var->type(), InitTy, Init, Var->loc(),
                      "in initializer");
    }
    return;
  }
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    checkExpr(If->cond());
    checkStmt(If->thenStmt());
    checkStmt(If->elseStmt());
    return;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    checkExpr(W->cond());
    checkStmt(W->body());
    return;
  }
  case StmtKind::DoWhile: {
    auto *D = cast<DoWhileStmt>(S);
    checkStmt(D->body());
    checkExpr(D->cond());
    return;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    pushScope();
    checkStmt(F->init());
    if (F->cond())
      checkExpr(F->cond());
    if (F->step())
      checkExpr(F->step());
    checkStmt(F->body());
    popScope();
    return;
  }
  case StmtKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    assert(CurrentFn && "return outside of a function");
    const Type *RetTy = CurrentFn->functionType()->returnType();
    if (Expr *V = R->value()) {
      const Type *ValTy = checkExpr(V);
      if (RetTy->isVoid())
        Diags.error(S->loc(), "void function returns a value");
      else
        checkAssignable(RetTy, ValTy, V, S->loc(), "in return");
    } else if (!RetTy->isVoid()) {
      Diags.error(S->loc(), "non-void function returns without a value");
    }
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Type *Sema::decayed(const Type *T) {
  if (const auto *Arr = dyn_cast<ArrayType>(T))
    return P.Types.pointerTo(Arr->element());
  if (T->isFunction())
    return P.Types.pointerTo(T);
  return T;
}

void Sema::markAddressTaken(Expr *E) {
  // Walk down lvalue structure to the storage root. Only roots that are
  // variables need marking: everything else (derefs, heap objects) is
  // already store-resident.
  while (true) {
    if (auto *M = dyn_cast<MemberExpr>(E)) {
      if (M->isArrow())
        return; // Base is a pointer; the storage is behind it.
      E = M->base();
      continue;
    }
    if (auto *I = dyn_cast<IndexExpr>(E)) {
      if (I->base()->type() && I->base()->type()->isPointer())
        return;
      E = I->base();
      continue;
    }
    break;
  }
  if (auto *Ref = dyn_cast<DeclRefExpr>(E)) {
    if (auto *Var = dyn_cast<VarDecl>(Ref->decl()))
      Var->setAddressTaken();
    else if (auto *Fn = dyn_cast<FuncDecl>(Ref->decl()))
      Fn->setAddressTaken();
  }
}

const Type *Sema::checkExpr(Expr *E) {
  if (!E)
    return ErrorTy;
  const Type *Ty = nullptr;
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    Ty = P.Types.intType();
    break;
  case ExprKind::FloatLiteral:
    Ty = P.Types.doubleType();
    break;
  case ExprKind::StringLiteral: {
    auto *S = cast<StringLiteralExpr>(E);
    S->setLiteralId(static_cast<unsigned>(P.StringLiterals.size()));
    P.StringLiterals.push_back(S);
    Ty = P.Types.pointerTo(P.Types.charType());
    break;
  }
  case ExprKind::DeclRef:
    Ty = checkDeclRef(cast<DeclRefExpr>(E));
    break;
  case ExprKind::Unary:
    Ty = checkUnary(cast<UnaryExpr>(E));
    break;
  case ExprKind::Binary:
    Ty = checkBinary(cast<BinaryExpr>(E));
    break;
  case ExprKind::Assign:
    Ty = checkAssign(cast<AssignExpr>(E));
    break;
  case ExprKind::Call:
    Ty = checkCall(cast<CallExpr>(E));
    break;
  case ExprKind::Index:
    Ty = checkIndex(cast<IndexExpr>(E));
    break;
  case ExprKind::Member:
    Ty = checkMember(cast<MemberExpr>(E));
    break;
  case ExprKind::Cast:
    Ty = checkCast(cast<CastExpr>(E));
    break;
  case ExprKind::Conditional:
    Ty = checkConditional(cast<ConditionalExpr>(E));
    break;
  case ExprKind::SizeOf: {
    auto *S = cast<SizeOfExpr>(E);
    Ty = P.Types.intType();
    if (!S->queried())
      Ty = ErrorTy;
    break;
  }
  }
  if (!Ty)
    Ty = ErrorTy;
  E->setType(Ty);
  return Ty;
}

const Type *Sema::checkDeclRef(DeclRefExpr *E) {
  if (VarDecl *Var = lookupVar(E->name())) {
    E->setDecl(Var);
    E->setLValue(true);
    return Var->type();
  }
  auto It = FunctionsByName.find(E->name());
  if (It != FunctionsByName.end()) {
    E->setDecl(It->second);
    // A function name used anywhere but as the callee of a direct call is a
    // function value: the function becomes an indirect-call candidate.
    if (!InCalleePosition)
      It->second->setAddressTaken();
    return It->second->type();
  }
  Diags.error(E->loc(),
              "use of undeclared identifier '" + P.Names.text(E->name()) +
                  "'");
  return ErrorTy;
}

const Type *Sema::checkUnary(UnaryExpr *E) {
  const Type *OpTy = checkExpr(E->operand());
  switch (E->op()) {
  case UnaryOp::Neg:
    if (!OpTy->isArithmetic())
      Diags.error(E->loc(), "operand of unary '-' must be arithmetic");
    return OpTy->isDouble() ? OpTy : P.Types.intType();
  case UnaryOp::Not:
    if (!decayed(OpTy)->isScalar())
      Diags.error(E->loc(), "operand of '!' must be scalar");
    return P.Types.intType();
  case UnaryOp::BitNot:
    if (!OpTy->isIntegral())
      Diags.error(E->loc(), "operand of '~' must be integral");
    return P.Types.intType();
  case UnaryOp::AddrOf: {
    if (!E->operand()->isLValue() && !OpTy->isFunction()) {
      Diags.error(E->loc(), "cannot take the address of an rvalue");
      return P.Types.pointerTo(OpTy);
    }
    markAddressTaken(E->operand());
    if (OpTy->isFunction())
      return P.Types.pointerTo(OpTy);
    return P.Types.pointerTo(OpTy);
  }
  case UnaryOp::Deref: {
    const Type *DecTy = decayed(OpTy);
    if (const auto *Ptr = dyn_cast<PointerType>(DecTy)) {
      if (Ptr->pointee()->isVoid()) {
        Diags.error(E->loc(), "cannot dereference 'void *'");
        return ErrorTy;
      }
      if (!Ptr->pointee()->isFunction())
        E->setLValue(true);
      return Ptr->pointee();
    }
    Diags.error(E->loc(), "cannot dereference a non-pointer");
    return ErrorTy;
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    if (!E->operand()->isLValue())
      Diags.error(E->loc(), "operand of increment/decrement must be an "
                            "lvalue");
    const Type *DecTy = decayed(OpTy);
    if (!DecTy->isArithmetic() && !DecTy->isPointer())
      Diags.error(E->loc(), "operand of increment/decrement must be scalar");
    return OpTy;
  }
  }
  return ErrorTy;
}

const Type *Sema::checkBinary(BinaryExpr *E) {
  const Type *L = decayed(checkExpr(E->lhs()));
  const Type *R = decayed(checkExpr(E->rhs()));
  switch (E->op()) {
  case BinaryOp::Add:
  case BinaryOp::Sub: {
    // Pointer arithmetic: ptr +- int, and ptr - ptr.
    if (L->isPointer() && R->isIntegral())
      return L;
    if (E->op() == BinaryOp::Add && L->isIntegral() && R->isPointer())
      return R;
    if (E->op() == BinaryOp::Sub && L->isPointer() && R->isPointer())
      return P.Types.intType();
    if (L->isArithmetic() && R->isArithmetic())
      return L->isDouble() || R->isDouble() ? P.Types.doubleType()
                                            : P.Types.intType();
    Diags.error(E->loc(), "invalid operands to '+'/'-'");
    return ErrorTy;
  }
  case BinaryOp::Mul:
  case BinaryOp::Div:
    if (L->isArithmetic() && R->isArithmetic())
      return L->isDouble() || R->isDouble() ? P.Types.doubleType()
                                            : P.Types.intType();
    Diags.error(E->loc(), "invalid operands to multiplicative operator");
    return ErrorTy;
  case BinaryOp::Rem:
  case BinaryOp::Shl:
  case BinaryOp::Shr:
  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor:
    if (L->isIntegral() && R->isIntegral())
      return P.Types.intType();
    Diags.error(E->loc(), "invalid operands to integer operator");
    return ErrorTy;
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
    if ((L->isArithmetic() && R->isArithmetic()) ||
        (L->isPointer() && R->isPointer()))
      return P.Types.intType();
    Diags.error(E->loc(), "invalid operands to comparison");
    return ErrorTy;
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool LNull = isa<IntLiteralExpr>(E->lhs()) &&
                 cast<IntLiteralExpr>(E->lhs())->value() == 0;
    bool RNull = isa<IntLiteralExpr>(E->rhs()) &&
                 cast<IntLiteralExpr>(E->rhs())->value() == 0;
    if ((L->isArithmetic() && R->isArithmetic()) ||
        (L->isPointer() && (R->isPointer() || RNull)) ||
        (R->isPointer() && (L->isPointer() || LNull)))
      return P.Types.intType();
    Diags.error(E->loc(), "invalid operands to equality comparison");
    return ErrorTy;
  }
  case BinaryOp::LogAnd:
  case BinaryOp::LogOr:
    if (L->isScalar() && R->isScalar())
      return P.Types.intType();
    Diags.error(E->loc(), "invalid operands to logical operator");
    return ErrorTy;
  }
  return ErrorTy;
}

bool Sema::checkAssignable(const Type *Dst, const Type *Src,
                           const Expr *SrcExpr, SourceLoc Loc,
                           const char *Context) {
  const Type *SrcDec = decayed(Src);
  if (Dst->isArithmetic() && SrcDec->isArithmetic())
    return true;
  if (Dst->isPointer()) {
    if (const auto *SrcPtr = dyn_cast<PointerType>(SrcDec)) {
      const Type *DP = cast<PointerType>(Dst)->pointee();
      const Type *SP = SrcPtr->pointee();
      if (DP == SP || DP->isVoid() || SP->isVoid())
        return true;
      Diags.error(Loc, std::string("incompatible pointer types ") + Context);
      return false;
    }
    // Null pointer constant.
    if (SrcExpr && isa<IntLiteralExpr>(SrcExpr) &&
        cast<IntLiteralExpr>(SrcExpr)->value() == 0)
      return true;
    Diags.error(Loc,
                std::string("cannot assign a non-pointer to a pointer ") +
                    Context);
    return false;
  }
  if (Dst->isRecord()) {
    if (Dst == SrcDec)
      return true;
    Diags.error(Loc, std::string("incompatible record types ") + Context);
    return false;
  }
  Diags.error(Loc, std::string("invalid assignment ") + Context);
  return false;
}

const Type *Sema::checkAssign(AssignExpr *E) {
  const Type *TargetTy = checkExpr(E->target());
  const Type *ValueTy = checkExpr(E->value());
  if (!E->target()->isLValue())
    Diags.error(E->loc(), "assignment target is not an lvalue");
  if (TargetTy->isArray())
    Diags.error(E->loc(), "cannot assign to an array");
  if (E->op() == AssignOp::Assign) {
    checkAssignable(TargetTy, ValueTy, E->value(), E->loc(),
                    "in assignment");
  } else {
    // Compound assignment: target must be arithmetic, or pointer +=/-= int.
    const Type *DecVal = decayed(ValueTy);
    bool PtrAdjust = TargetTy->isPointer() && DecVal->isIntegral() &&
                     (E->op() == AssignOp::Add || E->op() == AssignOp::Sub);
    if (!PtrAdjust && !(TargetTy->isArithmetic() && DecVal->isArithmetic()))
      Diags.error(E->loc(), "invalid compound assignment operands");
  }
  return TargetTy;
}

const Type *Sema::checkCall(CallExpr *E) {
  // Builtin recognition: a direct call to an otherwise-undeclared name.
  if (auto *Ref = dyn_cast<DeclRefExpr>(E->callee())) {
    bool Declared = lookupVar(Ref->name()) ||
                    FunctionsByName.count(Ref->name());
    if (!Declared) {
      BuiltinKind BK = builtinKindForName(P.Names.text(Ref->name()));
      if (BK != BuiltinKind::None) {
        E->setBuiltin(BK);
        const FunctionType *FnTy = builtinType(BK);
        Ref->setType(FnTy);
        if (BK == BuiltinKind::Malloc || BK == BuiltinKind::Calloc)
          noteAllocSite(E);
        size_t NumFixed = FnTy->params().size();
        if (E->args().size() < NumFixed ||
            (!FnTy->isVariadic() && E->args().size() > NumFixed))
          Diags.error(E->loc(), "wrong number of arguments to builtin");
        for (size_t I = 0; I < E->args().size(); ++I) {
          const Type *ArgTy = checkExpr(E->args()[I]);
          if (I < NumFixed)
            checkAssignable(FnTy->params()[I], ArgTy, E->args()[I],
                            E->args()[I]->loc(), "in builtin argument");
        }
        return FnTy->returnType();
      }
    }
  }

  bool DirectName = isa<DeclRefExpr>(E->callee());
  InCalleePosition = DirectName;
  const Type *CalleeTy = checkExpr(E->callee());
  InCalleePosition = false;
  const FunctionType *FnTy = nullptr;
  if (const auto *F = dyn_cast<FunctionType>(CalleeTy))
    FnTy = F;
  else if (const auto *Ptr = dyn_cast<PointerType>(CalleeTy))
    FnTy = dyn_cast<FunctionType>(Ptr->pointee());
  if (!FnTy) {
    Diags.error(E->loc(), "called object is not a function or function "
                          "pointer");
    for (Expr *Arg : E->args())
      checkExpr(Arg);
    return ErrorTy;
  }

  if (E->args().size() != FnTy->params().size() && !FnTy->isVariadic())
    Diags.error(E->loc(), "wrong number of arguments in call");
  for (size_t I = 0; I < E->args().size(); ++I) {
    const Type *ArgTy = checkExpr(E->args()[I]);
    if (I < FnTy->params().size())
      checkAssignable(FnTy->params()[I], ArgTy, E->args()[I],
                      E->args()[I]->loc(), "in call argument");
  }
  return FnTy->returnType();
}

const Type *Sema::checkIndex(IndexExpr *E) {
  const Type *BaseTy = checkExpr(E->base());
  const Type *IndexTy = checkExpr(E->index());
  if (!decayed(IndexTy)->isIntegral())
    Diags.error(E->loc(), "array subscript must be integral");
  if (const auto *Arr = dyn_cast<ArrayType>(BaseTy)) {
    E->setLValue(true);
    return Arr->element();
  }
  if (const auto *Ptr = dyn_cast<PointerType>(decayed(BaseTy))) {
    if (Ptr->pointee()->isVoid() || Ptr->pointee()->isFunction()) {
      Diags.error(E->loc(), "cannot index this pointer type");
      return ErrorTy;
    }
    E->setLValue(true);
    return Ptr->pointee();
  }
  Diags.error(E->loc(), "subscripted value is not an array or pointer");
  return ErrorTy;
}

const Type *Sema::checkMember(MemberExpr *E) {
  const Type *BaseTy = checkExpr(E->base());
  const RecordType *Rec = nullptr;
  if (E->isArrow()) {
    if (const auto *Ptr = dyn_cast<PointerType>(decayed(BaseTy)))
      Rec = dyn_cast<RecordType>(Ptr->pointee());
    if (!Rec) {
      Diags.error(E->loc(), "'->' requires a pointer to a record");
      return ErrorTy;
    }
  } else {
    Rec = dyn_cast<RecordType>(BaseTy);
    if (!Rec) {
      Diags.error(E->loc(), "'.' requires a record");
      return ErrorTy;
    }
    if (!E->base()->isLValue())
      Diags.error(E->loc(), "member access on an rvalue record is not "
                            "supported");
  }
  if (!Rec->isComplete()) {
    Diags.error(E->loc(), "use of incomplete record 'struct " +
                              P.Names.text(Rec->tag()) + "'");
    return ErrorTy;
  }
  int Idx = Rec->fieldIndex(E->field());
  if (Idx < 0) {
    Diags.error(E->loc(), "no field named '" + P.Names.text(E->field()) +
                              "' in record");
    return ErrorTy;
  }
  E->resolve(Rec, static_cast<unsigned>(Idx));
  E->setLValue(true);
  return Rec->fields()[Idx].Ty;
}

const Type *Sema::checkCast(CastExpr *E) {
  const Type *SrcTy = decayed(checkExpr(E->operand()));
  const Type *DstTy = E->target();
  if (DstTy->isArithmetic() && SrcTy->isArithmetic())
    return DstTy;
  if (DstTy->isPointer() && SrcTy->isPointer())
    return DstTy;
  if (DstTy->isVoid())
    return DstTy;
  // Null pointer constants may be cast to pointers.
  if (DstTy->isPointer() && isa<IntLiteralExpr>(E->operand()) &&
      cast<IntLiteralExpr>(E->operand())->value() == 0)
    return DstTy;
  // The paper's analysis does not model pointer<->integer casts; MiniC
  // rejects them outright.
  Diags.error(E->loc(), "casts between pointer and non-pointer types are "
                        "not allowed in MiniC");
  return DstTy;
}

const Type *Sema::checkConditional(ConditionalExpr *E) {
  const Type *CondTy = decayed(checkExpr(E->cond()));
  if (!CondTy->isScalar())
    Diags.error(E->loc(), "conditional predicate must be scalar");
  const Type *T = decayed(checkExpr(E->thenExpr()));
  const Type *F = decayed(checkExpr(E->elseExpr()));
  if (T == F)
    return T;
  if (T->isArithmetic() && F->isArithmetic())
    return T->isDouble() || F->isDouble() ? P.Types.doubleType()
                                          : P.Types.intType();
  if (T->isPointer() && F->isPointer())
    return T; // void* mixing collapses arbitrarily to the then-type.
  bool TNull = isa<IntLiteralExpr>(E->thenExpr()) &&
               cast<IntLiteralExpr>(E->thenExpr())->value() == 0;
  bool FNull = isa<IntLiteralExpr>(E->elseExpr()) &&
               cast<IntLiteralExpr>(E->elseExpr())->value() == 0;
  if (T->isPointer() && FNull)
    return T;
  if (F->isPointer() && TNull)
    return F;
  Diags.error(E->loc(), "incompatible branches in conditional expression");
  return ErrorTy;
}
