//===- frontend/Parser.cpp ------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <cerrno>
#include <cstdlib>

using namespace vdga;

/// Per-dimension array length cap. MiniC is an analysis subject language,
/// not a systems language: a fuzzer-sized dimension like `int a[1 << 40]`
/// would otherwise make the interpreter's cell allocation explode.
static constexpr uint64_t MaxArrayLength = 1u << 20;

bool Parser::tryConsume(TokenKind Kind) {
  if (cur().isNot(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (tryConsume(Kind))
    return true;
  Diags.error(cur().Loc, std::string("expected ") + tokenKindName(Kind) +
                             " " + Context + ", found " +
                             tokenKindName(cur().Kind));
  return false;
}

void Parser::skipToRecoveryPoint() {
  unsigned Depth = 0;
  while (cur().isNot(TokenKind::EndOfFile)) {
    if (cur().is(TokenKind::LBrace))
      ++Depth;
    if (cur().is(TokenKind::RBrace)) {
      if (Depth == 0) {
        consume();
        return;
      }
      --Depth;
    }
    if (cur().is(TokenKind::Semi) && Depth == 0) {
      consume();
      return;
    }
    consume();
  }
}

bool Parser::atNestingLimit(const char *What) {
  if (NestingDepth < MaxNestingDepth)
    return false;
  // Diagnose once per recovery region: skipToRecoveryPoint consumes up to
  // the enclosing ';' or '}', so the callers unwinding above us see a
  // different cursor and do not re-trigger.
  Diags.error(cur().Loc,
              std::string(What) + " nesting exceeds the maximum depth of " +
                  std::to_string(MaxNestingDepth));
  skipToRecoveryPoint();
  return true;
}

int64_t Parser::parseIntLiteralValue(const Token &T) {
  errno = 0;
  int64_t Value = std::strtoll(std::string(T.Text).c_str(), nullptr, 0);
  if (errno == ERANGE)
    Diags.error(T.Loc, "integer literal '" + std::string(T.Text) +
                           "' is out of range");
  return Value;
}

uint64_t Parser::parseArrayLength() {
  Token N = consume();
  errno = 0;
  uint64_t Value = std::strtoull(std::string(N.Text).c_str(), nullptr, 0);
  if (errno == ERANGE || Value > MaxArrayLength) {
    Diags.error(N.Loc, "array length '" + std::string(N.Text) +
                           "' exceeds the maximum of " +
                           std::to_string(MaxArrayLength));
    return 1;
  }
  return Value;
}

bool Parser::atTypeStart() const {
  switch (cur().Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwChar:
  case TokenKind::KwDouble:
  case TokenKind::KwVoid:
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Parser::parseProgram() {
  while (cur().isNot(TokenKind::EndOfFile)) {
    size_t Before = Pos;
    parseTopLevel();
    // Same progress guarantee as parseCompound: never spin on a token
    // that error recovery failed to consume.
    if (Pos == Before)
      consume();
  }
  return !Diags.hasErrors();
}

void Parser::parseTopLevel() {
  if (cur().is(TokenKind::KwStruct) || cur().is(TokenKind::KwUnion)) {
    // `struct X { ... };` defines a record; `struct X name ...` declares a
    // variable or function of record type.
    bool IsUnion = cur().is(TokenKind::KwUnion);
    if (peek().is(TokenKind::Identifier) && peek(2).is(TokenKind::LBrace)) {
      parseRecordDef(IsUnion);
      return;
    }
  }

  if (!atTypeStart()) {
    Diags.error(cur().Loc, std::string("expected a declaration, found ") +
                               tokenKindName(cur().Kind));
    skipToRecoveryPoint();
    return;
  }

  const Type *Base = parseDeclSpec();
  if (!Base) {
    skipToRecoveryPoint();
    return;
  }

  // `struct X;` style forward declarations degenerate to nothing.
  if (tryConsume(TokenKind::Semi))
    return;

  Declarator D = parseDeclarator(Base);
  if (!D.Ty) {
    skipToRecoveryPoint();
    return;
  }

  if (D.IsFunctionDeclarator &&
      (cur().is(TokenKind::LBrace) || cur().is(TokenKind::Semi))) {
    parseFunctionRest(std::move(D));
    return;
  }
  parseGlobalVarRest(Base, std::move(D));
}

void Parser::parseRecordDef(bool IsUnion) {
  consume(); // struct/union
  Token Tag = consume();
  Symbol TagSym = P.Names.intern(Tag.Text);
  expect(TokenKind::LBrace, "to open record body");

  RecordType *Rec;
  auto It = RecordsByTag.find(TagSym);
  if (It != RecordsByTag.end()) {
    Rec = It->second;
    if (Rec->isComplete()) {
      Diags.error(Tag.Loc, "redefinition of record '" +
                               std::string(Tag.Text) + "'");
      skipToRecoveryPoint();
      return;
    }
    if (Rec->isUnion() != IsUnion)
      Diags.error(Tag.Loc, "record '" + std::string(Tag.Text) +
                               "' redeclared with a different kind");
  } else {
    Rec = P.Types.createRecord(TagSym, IsUnion);
    RecordsByTag[TagSym] = Rec;
  }

  std::vector<RecordField> Fields;
  while (cur().isNot(TokenKind::RBrace) &&
         cur().isNot(TokenKind::EndOfFile)) {
    const Type *FieldBase = parseDeclSpec();
    if (!FieldBase) {
      skipToRecoveryPoint();
      return;
    }
    for (;;) {
      Declarator D = parseDeclarator(FieldBase);
      if (!D.Ty)
        break;
      if (D.IsFunctionDeclarator) {
        Diags.error(D.Loc, "record fields cannot be functions; use a "
                           "function pointer");
        break;
      }
      RecordField F;
      F.Name = D.Name;
      F.Ty = D.Ty;
      Fields.push_back(F);
      if (!tryConsume(TokenKind::Comma))
        break;
    }
    expect(TokenKind::Semi, "after record field");
  }
  expect(TokenKind::RBrace, "to close record body");
  expect(TokenKind::Semi, "after record definition");
  Rec->complete(std::move(Fields));
}

const Type *Parser::parseDeclSpec() {
  switch (cur().Kind) {
  case TokenKind::KwInt:
    consume();
    return P.Types.intType();
  case TokenKind::KwChar:
    consume();
    return P.Types.charType();
  case TokenKind::KwDouble:
    consume();
    return P.Types.doubleType();
  case TokenKind::KwVoid:
    consume();
    return P.Types.voidType();
  case TokenKind::KwStruct:
  case TokenKind::KwUnion: {
    bool IsUnion = cur().is(TokenKind::KwUnion);
    consume();
    if (cur().isNot(TokenKind::Identifier)) {
      Diags.error(cur().Loc, "expected record tag");
      return nullptr;
    }
    Token Tag = consume();
    Symbol TagSym = P.Names.intern(Tag.Text);
    auto It = RecordsByTag.find(TagSym);
    if (It != RecordsByTag.end())
      return It->second;
    // Forward reference: create an incomplete record (usable behind a
    // pointer, e.g. `struct node *next`).
    RecordType *Rec = P.Types.createRecord(TagSym, IsUnion);
    RecordsByTag[TagSym] = Rec;
    return Rec;
  }
  default:
    Diags.error(cur().Loc, std::string("expected a type, found ") +
                               tokenKindName(cur().Kind));
    return nullptr;
  }
}

Parser::Declarator Parser::parseDeclarator(const Type *Base,
                                           bool AllowAbstract) {
  Declarator D;
  const Type *Ty = Base;
  while (tryConsume(TokenKind::Star))
    Ty = P.Types.pointerTo(Ty);

  // Function-pointer declarator: `(*name)(params)` or, with an array
  // suffix, `(*name[N])(params)` (an array of function pointers).
  if (cur().is(TokenKind::LParen) && peek().is(TokenKind::Star)) {
    consume(); // (
    consume(); // *
    unsigned ExtraStars = 0;
    while (tryConsume(TokenKind::Star))
      ++ExtraStars;
    Token Name;
    bool HasName = cur().is(TokenKind::Identifier);
    if (HasName) {
      Name = consume();
    } else if (!AllowAbstract) {
      Diags.error(cur().Loc, "expected identifier in function pointer "
                             "declarator");
      return D;
    } else {
      Name.Loc = cur().Loc;
    }
    std::vector<uint64_t> FnDims;
    while (tryConsume(TokenKind::LBracket)) {
      if (cur().is(TokenKind::IntLiteral)) {
        FnDims.push_back(parseArrayLength());
      } else {
        Diags.error(cur().Loc, "expected constant array length");
        FnDims.push_back(1);
      }
      expect(TokenKind::RBracket, "to close array length");
    }
    expect(TokenKind::RParen, "after function pointer name");
    expect(TokenKind::LParen, "to open function pointer parameter list");
    bool Variadic = false;
    std::vector<VarDecl *> Params = parseParamList(Variadic);
    std::vector<const Type *> ParamTys;
    ParamTys.reserve(Params.size());
    for (VarDecl *V : Params)
      ParamTys.push_back(V->type());
    const Type *FnTy = P.Types.function(Ty, std::move(ParamTys), Variadic);
    const Type *PtrTy = P.Types.pointerTo(FnTy);
    for (unsigned I = 0; I < ExtraStars; ++I)
      PtrTy = P.Types.pointerTo(PtrTy);
    for (size_t I = FnDims.size(); I > 0; --I)
      PtrTy = P.Types.arrayOf(PtrTy, FnDims[I - 1]);
    if (HasName)
      D.Name = P.Names.intern(Name.Text);
    D.Loc = Name.Loc;
    D.Ty = PtrTy;
    return D;
  }

  Token Name;
  bool HasName = cur().is(TokenKind::Identifier);
  if (HasName) {
    Name = consume();
    D.Name = P.Names.intern(Name.Text);
    D.Loc = Name.Loc;
  } else if (!AllowAbstract) {
    Diags.error(cur().Loc, std::string("expected identifier in declarator, "
                                       "found ") +
                               tokenKindName(cur().Kind));
    return D;
  } else {
    D.Loc = cur().Loc;
  }

  // Function declarator `name(params)`.
  if (cur().is(TokenKind::LParen)) {
    consume();
    D.IsFunctionDeclarator = true;
    D.Params = parseParamList(D.Variadic);
    std::vector<const Type *> ParamTys;
    ParamTys.reserve(D.Params.size());
    for (VarDecl *V : D.Params)
      ParamTys.push_back(V->type());
    D.Ty = P.Types.function(Ty, std::move(ParamTys), D.Variadic);
    return D;
  }

  // Array suffixes `[N]...`, innermost last.
  std::vector<uint64_t> Dims;
  while (tryConsume(TokenKind::LBracket)) {
    if (cur().is(TokenKind::IntLiteral)) {
      Dims.push_back(parseArrayLength());
    } else {
      Diags.error(cur().Loc, "expected constant array length");
      Dims.push_back(1);
    }
    expect(TokenKind::RBracket, "to close array length");
  }
  for (size_t I = Dims.size(); I > 0; --I)
    Ty = P.Types.arrayOf(Ty, Dims[I - 1]);

  D.Ty = Ty;
  return D;
}

std::vector<VarDecl *> Parser::parseParamList(bool &Variadic) {
  std::vector<VarDecl *> Params;
  Variadic = false;
  if (tryConsume(TokenKind::RParen))
    return Params;
  // `(void)` means no parameters.
  if (cur().is(TokenKind::KwVoid) && peek().is(TokenKind::RParen)) {
    consume();
    consume();
    return Params;
  }
  for (;;) {
    if (tryConsume(TokenKind::Ellipsis)) {
      Variadic = true;
      break;
    }
    const Type *Base = parseDeclSpec();
    if (!Base)
      break;
    Declarator D = parseDeclarator(Base, /*AllowAbstract=*/true);
    if (!D.Ty)
      break;
    if (D.IsFunctionDeclarator) {
      Diags.error(D.Loc, "function parameters of function type are not "
                         "supported; use a function pointer");
      break;
    }
    // Array parameters decay to pointers, as in C.
    if (const auto *Arr = dyn_cast<ArrayType>(D.Ty))
      D.Ty = P.Types.pointerTo(Arr->element());
    Params.push_back(makeVarDecl(D, StorageKind::Param));
    if (!tryConsume(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RParen, "to close parameter list");
  return Params;
}

VarDecl *Parser::makeVarDecl(const Declarator &D, StorageKind Storage) {
  return P.Ctx.create<VarDecl>(D.Loc, D.Name, D.Ty, Storage);
}

void Parser::parseFunctionRest(Declarator D) {
  const auto *FnTy = cast<FunctionType>(D.Ty);
  auto *Fn =
      P.Ctx.create<FuncDecl>(D.Loc, D.Name, FnTy, std::move(D.Params));
  P.Functions.push_back(Fn);
  if (tryConsume(TokenKind::Semi))
    return; // Prototype only.
  Fn->setBody(parseCompound());
}

void Parser::parseGlobalVarRest(const Type *Base, Declarator First) {
  Declarator D = std::move(First);
  for (;;) {
    if (D.IsFunctionDeclarator) {
      Diags.error(D.Loc, "unexpected function declarator in variable "
                         "declaration");
      skipToRecoveryPoint();
      return;
    }
    VarDecl *Var = makeVarDecl(D, StorageKind::Global);
    parseInitializer(Var);
    P.Globals.push_back(Var);
    if (!tryConsume(TokenKind::Comma))
      break;
    D = parseDeclarator(Base);
    if (!D.Ty) {
      skipToRecoveryPoint();
      return;
    }
  }
  expect(TokenKind::Semi, "after variable declaration");
}

void Parser::parseInitializer(VarDecl *Var) {
  if (!tryConsume(TokenKind::Equal))
    return;
  if (tryConsume(TokenKind::LBrace)) {
    std::vector<Expr *> Elems;
    if (cur().isNot(TokenKind::RBrace)) {
      for (;;) {
        Elems.push_back(parseAssignment());
        if (!tryConsume(TokenKind::Comma))
          break;
        if (cur().is(TokenKind::RBrace))
          break; // Trailing comma.
      }
    }
    expect(TokenKind::RBrace, "to close initializer list");
    Var->setInitList(std::move(Elems));
    return;
  }
  Var->setInit(parseAssignment());
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseCompound() {
  SourceLoc Loc = cur().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<Stmt *> Body;
  while (cur().isNot(TokenKind::RBrace) &&
         cur().isNot(TokenKind::EndOfFile)) {
    size_t Before = Pos;
    if (atTypeStart()) {
      parseDeclStmtList(Body);
    } else if (Stmt *S = parseStmt()) {
      Body.push_back(S);
    }
    // Error recovery must always make progress; a parse that consumed
    // nothing (e.g. a lone stray token) would otherwise loop forever.
    if (Pos == Before)
      consume();
  }
  expect(TokenKind::RBrace, "to close block");
  return P.Ctx.create<CompoundStmt>(Loc, std::move(Body));
}

Stmt *Parser::parseDeclStmtList(std::vector<Stmt *> &Out) {
  SourceLoc Loc = cur().Loc;
  const Type *Base = parseDeclSpec();
  if (!Base) {
    skipToRecoveryPoint();
    return nullptr;
  }
  for (;;) {
    Declarator D = parseDeclarator(Base);
    if (!D.Ty) {
      skipToRecoveryPoint();
      return nullptr;
    }
    if (D.IsFunctionDeclarator) {
      Diags.error(D.Loc, "local function declarations are not supported");
      skipToRecoveryPoint();
      return nullptr;
    }
    VarDecl *Var = makeVarDecl(D, StorageKind::Local);
    parseInitializer(Var);
    Out.push_back(P.Ctx.create<DeclStmt>(Loc, Var));
    if (!tryConsume(TokenKind::Comma))
      break;
  }
  expect(TokenKind::Semi, "after declaration");
  return nullptr;
}

Stmt *Parser::parseStmt() {
  if (atNestingLimit("statement"))
    return nullptr;
  NestingScope Scope(*this);
  switch (cur().Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwBreak: {
    SourceLoc Loc = consume().Loc;
    expect(TokenKind::Semi, "after 'break'");
    return P.Ctx.create<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = consume().Loc;
    expect(TokenKind::Semi, "after 'continue'");
    return P.Ctx.create<ContinueStmt>(Loc);
  }
  case TokenKind::KwSwitch:
    Diags.error(cur().Loc,
                "'switch' is not part of MiniC; use an if/else chain");
    skipToRecoveryPoint();
    return nullptr;
  case TokenKind::Semi:
    consume(); // Empty statement.
    return nullptr;
  default: {
    SourceLoc Loc = cur().Loc;
    Expr *E = parseExpr();
    expect(TokenKind::Semi, "after expression statement");
    return E ? P.Ctx.create<ExprStmt>(Loc, E) : nullptr;
  }
  }
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = consume().Loc;
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "to close 'if' condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (tryConsume(TokenKind::KwElse))
    Else = parseStmt();
  return P.Ctx.create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = consume().Loc;
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "to close 'while' condition");
  Stmt *Body = parseStmt();
  return P.Ctx.create<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseDoWhile() {
  SourceLoc Loc = consume().Loc;
  Stmt *Body = parseStmt();
  expect(TokenKind::KwWhile, "after 'do' body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "to close 'do-while' condition");
  expect(TokenKind::Semi, "after 'do-while'");
  return P.Ctx.create<DoWhileStmt>(Loc, Body, Cond);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = consume().Loc;
  expect(TokenKind::LParen, "after 'for'");

  Stmt *Init = nullptr;
  if (atTypeStart()) {
    std::vector<Stmt *> Decls;
    parseDeclStmtList(Decls);
    if (Decls.size() == 1) {
      Init = Decls[0];
    } else if (!Decls.empty()) {
      Init = P.Ctx.create<CompoundStmt>(Loc, std::move(Decls));
    }
  } else if (cur().isNot(TokenKind::Semi)) {
    Expr *E = parseExpr();
    Init = P.Ctx.create<ExprStmt>(Loc, E);
    expect(TokenKind::Semi, "after 'for' initializer");
  } else {
    consume();
  }

  Expr *Cond = nullptr;
  if (cur().isNot(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after 'for' condition");

  Expr *Step = nullptr;
  if (cur().isNot(TokenKind::RParen))
    Step = parseExpr();
  expect(TokenKind::RParen, "to close 'for' header");

  Stmt *Body = parseStmt();
  return P.Ctx.create<ForStmt>(Loc, Init, Cond, Step, Body);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = consume().Loc;
  Expr *Value = nullptr;
  if (cur().isNot(TokenKind::Semi))
    Value = parseExpr();
  expect(TokenKind::Semi, "after 'return'");
  return P.Ctx.create<ReturnStmt>(Loc, Value);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() { return parseAssignment(); }

Expr *Parser::parseAssignment() {
  // Chained assignments (`a = b = c = ...`) recurse without passing
  // through parseUnary at increasing depth, so they need their own guard.
  if (atNestingLimit("expression"))
    return nullptr;
  NestingScope Scope(*this);
  Expr *LHS = parseConditional();
  if (!LHS)
    return nullptr;
  AssignOp Op;
  switch (cur().Kind) {
  case TokenKind::Equal:
    Op = AssignOp::Assign;
    break;
  case TokenKind::PlusEqual:
    Op = AssignOp::Add;
    break;
  case TokenKind::MinusEqual:
    Op = AssignOp::Sub;
    break;
  case TokenKind::StarEqual:
    Op = AssignOp::Mul;
    break;
  case TokenKind::SlashEqual:
    Op = AssignOp::Div;
    break;
  case TokenKind::PercentEqual:
    Op = AssignOp::Rem;
    break;
  default:
    return LHS;
  }
  SourceLoc Loc = consume().Loc;
  Expr *RHS = parseAssignment();
  return P.Ctx.create<AssignExpr>(Loc, Op, LHS, RHS);
}

Expr *Parser::parseConditional() {
  // `a ? b : c ? d : ...` chains recurse flatly too; see parseAssignment.
  if (atNestingLimit("expression"))
    return nullptr;
  NestingScope Scope(*this);
  Expr *Cond = parseBinaryRHS(/*MinPrec=*/0, parseUnary());
  if (!Cond || cur().isNot(TokenKind::Question))
    return Cond;
  SourceLoc Loc = consume().Loc;
  Expr *Then = parseExpr();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *Else = parseConditional();
  return P.Ctx.create<ConditionalExpr>(Loc, Cond, Then, Else);
}

namespace {
struct BinOpInfo {
  BinaryOp Op;
  int Prec;
};
} // namespace

static bool binaryOpInfo(TokenKind Kind, BinOpInfo &Info) {
  switch (Kind) {
  case TokenKind::PipePipe:
    Info = {BinaryOp::LogOr, 1};
    return true;
  case TokenKind::AmpAmp:
    Info = {BinaryOp::LogAnd, 2};
    return true;
  case TokenKind::Pipe:
    Info = {BinaryOp::BitOr, 3};
    return true;
  case TokenKind::Caret:
    Info = {BinaryOp::BitXor, 4};
    return true;
  case TokenKind::Amp:
    Info = {BinaryOp::BitAnd, 5};
    return true;
  case TokenKind::EqualEqual:
    Info = {BinaryOp::Eq, 6};
    return true;
  case TokenKind::BangEqual:
    Info = {BinaryOp::Ne, 6};
    return true;
  case TokenKind::Less:
    Info = {BinaryOp::Lt, 7};
    return true;
  case TokenKind::Greater:
    Info = {BinaryOp::Gt, 7};
    return true;
  case TokenKind::LessEqual:
    Info = {BinaryOp::Le, 7};
    return true;
  case TokenKind::GreaterEqual:
    Info = {BinaryOp::Ge, 7};
    return true;
  case TokenKind::LessLess:
    Info = {BinaryOp::Shl, 8};
    return true;
  case TokenKind::GreaterGreater:
    Info = {BinaryOp::Shr, 8};
    return true;
  case TokenKind::Plus:
    Info = {BinaryOp::Add, 9};
    return true;
  case TokenKind::Minus:
    Info = {BinaryOp::Sub, 9};
    return true;
  case TokenKind::Star:
    Info = {BinaryOp::Mul, 10};
    return true;
  case TokenKind::Slash:
    Info = {BinaryOp::Div, 10};
    return true;
  case TokenKind::Percent:
    Info = {BinaryOp::Rem, 10};
    return true;
  default:
    return false;
  }
}

Expr *Parser::parseBinaryRHS(int MinPrec, Expr *LHS) {
  if (!LHS)
    return nullptr;
  for (;;) {
    BinOpInfo Info;
    if (!binaryOpInfo(cur().Kind, Info) || Info.Prec < MinPrec)
      return LHS;
    SourceLoc Loc = consume().Loc;
    Expr *RHS = parseUnary();
    BinOpInfo Next;
    while (RHS && binaryOpInfo(cur().Kind, Next) && Next.Prec > Info.Prec)
      RHS = parseBinaryRHS(Next.Prec, RHS);
    LHS = P.Ctx.create<BinaryExpr>(Loc, Info.Op, LHS, RHS);
  }
}

Expr *Parser::parseUnary() {
  // Every expression nesting level passes through here (unary chains
  // directly, parenthesized and conditional subexpressions via
  // parsePrimary/parseExpr), so this single guard bounds them all.
  if (atNestingLimit("expression"))
    return nullptr;
  NestingScope Scope(*this);
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::Plus:
    consume();
    return parseUnary(); // Unary plus is the identity.
  case TokenKind::Minus:
    consume();
    return P.Ctx.create<UnaryExpr>(Loc, UnaryOp::Neg, parseUnary());
  case TokenKind::Bang:
    consume();
    return P.Ctx.create<UnaryExpr>(Loc, UnaryOp::Not, parseUnary());
  case TokenKind::Tilde:
    consume();
    return P.Ctx.create<UnaryExpr>(Loc, UnaryOp::BitNot, parseUnary());
  case TokenKind::Star:
    consume();
    return P.Ctx.create<UnaryExpr>(Loc, UnaryOp::Deref, parseUnary());
  case TokenKind::Amp:
    consume();
    return P.Ctx.create<UnaryExpr>(Loc, UnaryOp::AddrOf, parseUnary());
  case TokenKind::PlusPlus:
    consume();
    return P.Ctx.create<UnaryExpr>(Loc, UnaryOp::PreInc, parseUnary());
  case TokenKind::MinusMinus:
    consume();
    return P.Ctx.create<UnaryExpr>(Loc, UnaryOp::PreDec, parseUnary());
  case TokenKind::KwSizeof: {
    consume();
    expect(TokenKind::LParen, "after 'sizeof'");
    if (atTypeStart()) {
      const Type *Base = parseDeclSpec();
      const Type *Ty = Base;
      while (Ty && tryConsume(TokenKind::Star))
        Ty = P.Types.pointerTo(Ty);
      expect(TokenKind::RParen, "to close 'sizeof'");
      return P.Ctx.create<SizeOfExpr>(Loc, Ty);
    }
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "to close 'sizeof'");
    // sizeof(expr): Sema resolves via the operand's type.
    auto *S = P.Ctx.create<SizeOfExpr>(Loc, nullptr);
    (void)E; // The operand's value is never needed.
    // Represent sizeof(expr) as a cast-like wrapper: keep it simple by
    // reusing SizeOfExpr with a null type and attaching the operand via a
    // conditional — instead, just disallow it.
    Diags.error(Loc, "sizeof(expression) is not supported; use sizeof(type)");
    return S;
  }
  case TokenKind::LParen:
    // Cast if a type name follows.
    if (peek().Kind == TokenKind::KwInt || peek().Kind == TokenKind::KwChar ||
        peek().Kind == TokenKind::KwDouble ||
        peek().Kind == TokenKind::KwVoid ||
        peek().Kind == TokenKind::KwStruct ||
        peek().Kind == TokenKind::KwUnion) {
      consume(); // (
      const Type *Base = parseDeclSpec();
      const Type *Ty = Base;
      while (Ty && tryConsume(TokenKind::Star))
        Ty = P.Types.pointerTo(Ty);
      expect(TokenKind::RParen, "to close cast");
      Expr *Operand = parseUnary();
      if (!Ty || !Operand)
        return nullptr;
      return P.Ctx.create<CastExpr>(Loc, Ty, Operand);
    }
    return parsePostfix();
  default:
    return parsePostfix();
  }
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  for (;;) {
    if (!E)
      return nullptr;
    SourceLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokenKind::LBracket: {
      consume();
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "to close subscript");
      E = P.Ctx.create<IndexExpr>(Loc, E, Index);
      break;
    }
    case TokenKind::LParen: {
      consume();
      std::vector<Expr *> Args = parseCallArgs();
      E = P.Ctx.create<CallExpr>(Loc, E, std::move(Args));
      break;
    }
    case TokenKind::Dot: {
      consume();
      if (cur().isNot(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected field name after '.'");
        return E;
      }
      Token Field = consume();
      E = P.Ctx.create<MemberExpr>(Loc, E, P.Names.intern(Field.Text),
                                   /*Arrow=*/false);
      break;
    }
    case TokenKind::Arrow: {
      consume();
      if (cur().isNot(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected field name after '->'");
        return E;
      }
      Token Field = consume();
      E = P.Ctx.create<MemberExpr>(Loc, E, P.Names.intern(Field.Text),
                                   /*Arrow=*/true);
      break;
    }
    case TokenKind::PlusPlus:
      consume();
      E = P.Ctx.create<UnaryExpr>(Loc, UnaryOp::PostInc, E);
      break;
    case TokenKind::MinusMinus:
      consume();
      E = P.Ctx.create<UnaryExpr>(Loc, UnaryOp::PostDec, E);
      break;
    default:
      return E;
    }
  }
}

std::vector<Expr *> Parser::parseCallArgs() {
  std::vector<Expr *> Args;
  if (tryConsume(TokenKind::RParen))
    return Args;
  for (;;) {
    Args.push_back(parseAssignment());
    if (!tryConsume(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RParen, "to close call arguments");
  return Args;
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntLiteral: {
    Token T = consume();
    return P.Ctx.create<IntLiteralExpr>(Loc, parseIntLiteralValue(T));
  }
  case TokenKind::FloatLiteral: {
    Token T = consume();
    double Value = std::strtod(std::string(T.Text).c_str(), nullptr);
    return P.Ctx.create<FloatLiteralExpr>(Loc, Value);
  }
  case TokenKind::CharLiteral: {
    Token T = consume();
    std::string Decoded = Lexer::decodeLiteral(T.Text);
    int64_t Value = Decoded.empty() ? 0 : static_cast<unsigned char>(
                                              Decoded[0]);
    return P.Ctx.create<IntLiteralExpr>(Loc, Value);
  }
  case TokenKind::StringLiteral: {
    // Adjacent string literals concatenate, as in C.
    std::string Value;
    while (cur().is(TokenKind::StringLiteral))
      Value += Lexer::decodeLiteral(consume().Text);
    return P.Ctx.create<StringLiteralExpr>(Loc, std::move(Value));
  }
  case TokenKind::Identifier: {
    Token T = consume();
    return P.Ctx.create<DeclRefExpr>(Loc, P.Names.intern(T.Text));
  }
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    if (!E) {
      // The subexpression already diagnosed and recovered; a cascade of
      // "expected ')'" errors from every enclosing paren helps nobody.
      tryConsume(TokenKind::RParen);
      return nullptr;
    }
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(cur().Kind));
    consume();
    return nullptr;
  }
}
