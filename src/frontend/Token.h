//===- frontend/Token.h - MiniC tokens -------------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the MiniC language: the C subset Ruf's analysis handles
/// (no preprocessor, no pointer/non-pointer casts, no setjmp/signals).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FRONTEND_TOKEN_H
#define VDGA_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <string_view>

namespace vdga {

enum class TokenKind : uint8_t {
  EndOfFile,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwInt,
  KwChar,
  KwDouble,
  KwVoid,
  KwStruct,
  KwUnion,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,
  KwSwitch,
  KwCase,
  KwDefault,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Question,
  Dot,
  Arrow,

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  AmpAmp,
  PipePipe,
  LessLess,
  GreaterGreater,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  PlusPlus,
  MinusMinus,
  Ellipsis,
};

/// Returns a human-readable spelling for diagnostics ("'+='", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Text views into the source buffer and stays valid
/// for the buffer's lifetime.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string_view Text;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace vdga

#endif // VDGA_FRONTEND_TOKEN_H
