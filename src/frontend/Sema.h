//===- frontend/Sema.h - MiniC semantic analysis ---------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name binding and type checking for MiniC, plus the annotations the later
/// phases need: address-taken flags (which decide store residency, mirroring
/// the paper's SSA-like store scalarization), builtin recognition with
/// per-call-site heap allocation ids, string literal numbering, and local
/// variable registration.
///
/// MiniC enforces the paper's stated restrictions: casts may not convert
/// between pointer and non-pointer types, and there are no signals or
/// longjmp. Pointer arithmetic is permitted (the analysis assumes it stays
/// within the array, as the paper does).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FRONTEND_SEMA_H
#define VDGA_FRONTEND_SEMA_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <vector>

namespace vdga {

/// Binds names and checks types over a parsed Program.
class Sema {
public:
  Sema(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  /// Runs all checks. Returns false if any error was reported.
  bool run();

  /// Returns the builtin kind for \p Name, or BuiltinKind::None.
  static BuiltinKind builtinKindForName(std::string_view Name);

private:
  // Scope management.
  void pushScope();
  void popScope();
  VarDecl *lookupVar(Symbol Name) const;
  void declareVar(VarDecl *Var);

  // Declaration checking.
  void mergeFunctionDecls();
  void checkGlobal(VarDecl *Var);
  void checkFunction(FuncDecl *Fn);

  // Statement checking.
  void checkStmt(Stmt *S);

  // Expression checking. Returns the (possibly error-recovered) type and
  // annotates the node.
  const Type *checkExpr(Expr *E);
  const Type *checkDeclRef(DeclRefExpr *E);
  const Type *checkUnary(UnaryExpr *E);
  const Type *checkBinary(BinaryExpr *E);
  const Type *checkAssign(AssignExpr *E);
  const Type *checkCall(CallExpr *E);
  const Type *checkIndex(IndexExpr *E);
  const Type *checkMember(MemberExpr *E);
  const Type *checkCast(CastExpr *E);
  const Type *checkConditional(ConditionalExpr *E);

  /// Checks that a value of type \p Src (from \p SrcExpr) may initialize or
  /// assign an object of type \p Dst; reports an error at \p Loc otherwise.
  bool checkAssignable(const Type *Dst, const Type *Src, const Expr *SrcExpr,
                       SourceLoc Loc, const char *Context);

  /// The type \p E contributes as a value: arrays decay to element
  /// pointers, functions to function pointers.
  const Type *decayed(const Type *T);

  /// Marks storage reached by taking \p E's address (explicitly via '&' or
  /// implicitly via array decay) as address-taken.
  void markAddressTaken(Expr *E);

  /// Gives calls to heap allocators their per-site ids.
  void noteAllocSite(CallExpr *E);

  /// Signature for a recognized builtin.
  const FunctionType *builtinType(BuiltinKind K);

  Program &P;
  DiagnosticEngine &Diags;
  std::vector<std::map<Symbol, VarDecl *>> Scopes;
  std::map<Symbol, FuncDecl *> FunctionsByName;
  FuncDecl *CurrentFn = nullptr;
  bool InCalleePosition = false;
  const Type *ErrorTy = nullptr; ///< Stand-in after an error (int).
};

} // namespace vdga

#endif // VDGA_FRONTEND_SEMA_H
