//===- frontend/CallGraphAST.h - Conservative AST call graph ---*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative call graph computed directly from the AST: direct calls
/// plus, for every indirect call site, all address-taken functions. Its only
/// analysis role is detecting (possible) recursion, which decides whether
/// address-taken locals get strongly-updateable base locations (the paper's
/// footnote 4). The points-to solvers discover their own, more precise call
/// graphs on the fly, as in Figure 1's `call` rule.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FRONTEND_CALLGRAPHAST_H
#define VDGA_FRONTEND_CALLGRAPHAST_H

#include "frontend/AST.h"

#include <map>
#include <set>
#include <vector>

namespace vdga {

/// Conservative may-call relation over a checked Program.
class CallGraphAST {
public:
  explicit CallGraphAST(const Program &P);

  /// Functions possibly called (directly or indirectly) by \p Caller.
  const std::set<const FuncDecl *> &callees(const FuncDecl *Caller) const;

  /// True if \p Fn sits on a call-graph cycle (including self-recursion).
  bool isRecursive(const FuncDecl *Fn) const {
    return Recursive.count(Fn) != 0;
  }

  /// Stamps FuncDecl::setRecursive on every recursive function.
  void annotate(Program &P) const;

  /// Average number of callers per defined function and the fraction of
  /// functions with exactly one caller — the Section 5 structure metrics.
  double averageCallers() const;
  double singleCallerFraction() const;

private:
  void collectCalls(const FuncDecl *Caller, const Stmt *S);
  void collectCallsExpr(const FuncDecl *Caller, const Expr *E);
  void computeRecursion();

  std::map<const FuncDecl *, std::set<const FuncDecl *>> Callees;
  std::map<const FuncDecl *, std::set<const FuncDecl *>> Callers;
  std::vector<const FuncDecl *> AddressTaken;
  std::set<const FuncDecl *> Recursive;
  std::set<const FuncDecl *> EmptySet;
};

} // namespace vdga

#endif // VDGA_FRONTEND_CALLGRAPHAST_H
