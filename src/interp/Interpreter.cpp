//===- interp/Interpreter.cpp ---------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

using namespace vdga;

//===----------------------------------------------------------------------===//
// Infrastructure
//===----------------------------------------------------------------------===//

void Interpreter::fail(SourceLoc Loc, const std::string &Message) {
  if (Aborted)
    return;
  Aborted = true;
  std::string Where;
  if (Loc.isValid())
    Where = std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column) +
            ": ";
  Result.Error = Where + Message;
}

void Interpreter::truncate(SourceLoc Loc, const std::string &Reason) {
  if (Aborted)
    return;
  Aborted = true;
  Result.Truncated = true;
  std::string Where;
  if (Loc.isValid())
    Where = std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column) +
            ": ";
  Result.TruncationReason = Where + Reason;
}

bool Interpreter::step() {
  if (Aborted)
    return false;
  if (++Result.StepsExecuted > MaxSteps) {
    truncate(SourceLoc(), "interpreter step limit exceeded");
    return false;
  }
  return true;
}

uint32_t Interpreter::allocObject(BaseLocId Base, uint64_t Size,
                                  std::string Name) {
  MemoryObject O;
  O.Base = Base;
  O.Size = Size;
  O.Name = std::move(Name);
  Objects.push_back(std::move(O));
  return static_cast<uint32_t>(Objects.size() - 1);
}

/// Integer arithmetic in the interpreted language wraps like two's
/// complement (the corpus PRNGs multiply by 1103515245 and rely on it),
/// so compute in uint64_t where the signed operation would be UB.
static int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
static int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
static int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
static int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

static Value zeroOf(const Type *Ty) {
  if (!Ty)
    return Value::makeInt(0);
  if (Ty->isDouble())
    return Value::makeDouble(0.0);
  if (Ty->isPointer())
    return Value::makeNull();
  return Value::makeInt(0);
}

Value Interpreter::load(const LV &L, const Expr *Site) {
  if (L.Addr.isNull()) {
    fail(Site ? Site->loc() : SourceLoc(), "load through a null pointer");
    return Value::undef();
  }
  if (L.Addr.Object >= Objects.size()) {
    fail(Site ? Site->loc() : SourceLoc(), "load from an invalid address");
    return Value::undef();
  }
  MemoryObject &O = Objects[L.Addr.Object];
  if (O.Freed) {
    fail(Site ? Site->loc() : SourceLoc(),
         "load from freed heap object " + O.Name);
    return Value::undef();
  }
  if (Site)
    Result.Trace.Reads[Site].insert(L.Abs);
  auto It = O.Cells.find(L.Addr.Offset);
  if (It != O.Cells.end())
    return It->second;
  return O.ZeroInit ? zeroOf(L.Ty) : Value::undef();
}

void Interpreter::store(const LV &L, Value V, const Expr *Site) {
  if (L.Addr.isNull()) {
    fail(Site ? Site->loc() : SourceLoc(), "store through a null pointer");
    return;
  }
  if (L.Addr.Object >= Objects.size()) {
    fail(Site ? Site->loc() : SourceLoc(), "store to an invalid address");
    return;
  }
  MemoryObject &O = Objects[L.Addr.Object];
  if (O.Freed) {
    fail(Site ? Site->loc() : SourceLoc(),
         "store to freed heap object " + O.Name);
    return;
  }
  if (O.Size && L.Addr.Offset >= O.Size) {
    fail(Site ? Site->loc() : SourceLoc(),
         "out-of-bounds store to " + O.Name);
    return;
  }
  if (Site)
    Result.Trace.Writes[Site].insert(L.Abs);
  O.Cells[L.Addr.Offset] = V;
}

void Interpreter::copyCells(Address Dst, Address Src, uint64_t Size) {
  if (Dst.isNull() || Src.isNull() || Dst.Object >= Objects.size() ||
      Src.Object >= Objects.size()) {
    fail(SourceLoc(), "aggregate copy through an invalid address");
    return;
  }
  // Snapshot the source cells first: source and destination may be the
  // same object with overlapping ranges (array element shuffles), where
  // erasing the destination would invalidate live source iterators.
  const MemoryObject &SrcO = Objects[Src.Object];
  std::vector<std::pair<uint32_t, Value>> Snapshot;
  {
    auto SLo = SrcO.Cells.lower_bound(Src.Offset);
    auto SHi =
        SrcO.Cells.lower_bound(Src.Offset + static_cast<uint32_t>(Size));
    Snapshot.assign(SLo, SHi);
  }
  MemoryObject &DstO = Objects[Dst.Object];
  auto Lo = DstO.Cells.lower_bound(Dst.Offset);
  auto Hi = DstO.Cells.lower_bound(Dst.Offset + static_cast<uint32_t>(Size));
  DstO.Cells.erase(Lo, Hi);
  for (const auto &[Offset, V] : Snapshot)
    DstO.Cells[Dst.Offset + (Offset - Src.Offset)] = V;
}

uint32_t Interpreter::objectFor(const VarDecl *Var) {
  if (!Frames.empty()) {
    auto It = Frames.back().Objects.find(Var);
    if (It != Frames.back().Objects.end())
      return It->second;
  }
  auto It = GlobalObjects.find(Var);
  if (It != GlobalObjects.end())
    return It->second;
  fail(Var->loc(), "use of unallocated variable '" +
                       P.Names.text(Var->name()) + "'");
  return UINT32_MAX;
}

uint32_t Interpreter::stringObject(const StringLiteralExpr *S) {
  auto It = StringObjects.find(S->literalId());
  if (It != StringObjects.end())
    return It->second;
  BaseLocId Base = Locs.stringBase(S->literalId());
  uint32_t Obj = allocObject(Base, S->value().size() + 1,
                             "str#" + std::to_string(S->literalId()));
  for (size_t I = 0; I < S->value().size(); ++I)
    Objects[Obj].Cells[static_cast<uint32_t>(I)] =
        Value::makeInt(static_cast<unsigned char>(S->value()[I]));
  Objects[Obj].Cells[static_cast<uint32_t>(S->value().size())] =
      Value::makeInt(0);
  StringObjects.emplace(S->literalId(), Obj);
  return Obj;
}

//===----------------------------------------------------------------------===//
// LValues
//===----------------------------------------------------------------------===//

Interpreter::LV Interpreter::evalLValue(const Expr *E, Flow &F) {
  LV L;
  L.Ty = E->type();
  if (!step()) {
    F = Flow::Abort;
    return L;
  }
  switch (E->kind()) {
  case ExprKind::DeclRef: {
    const auto *Var = cast<VarDecl>(cast<DeclRefExpr>(E)->decl());
    uint32_t Obj = objectFor(Var);
    if (Obj == UINT32_MAX) {
      F = Flow::Abort;
      return L;
    }
    L.Addr = {Obj, 0};
    L.Abs = LocationTable::isStoreResident(Var)
                ? Paths.basePath(Locs.varBase(Var))
                : PathTable::emptyPath();
    return L;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    assert(U->op() == UnaryOp::Deref && "not an lvalue unary");
    Value V = evalExpr(U->operand(), F);
    if (F != Flow::Normal)
      return L;
    if (V.K != Value::Kind::Ptr || V.isNullPtr()) {
      fail(E->loc(), "dereference of a non-pointer or null value");
      F = Flow::Abort;
      return L;
    }
    L.Addr = V.A;
    L.Abs = V.AbsPath;
    return L;
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    const Type *BaseTy = I->base()->type();
    uint64_t Stride = E->type()->size();
    if (BaseTy->isArray()) {
      LV Base = evalLValue(I->base(), F);
      if (F != Flow::Normal)
        return L;
      Value Idx = evalExpr(I->index(), F);
      if (F != Flow::Normal)
        return L;
      int64_t IV = Idx.asInt();
      uint64_t Len = cast<ArrayType>(BaseTy)->length();
      if (IV < 0 || static_cast<uint64_t>(IV) >= Len) {
        fail(E->loc(), "array index out of bounds");
        F = Flow::Abort;
        return L;
      }
      L.Addr = {Base.Addr.Object,
                Base.Addr.Offset + static_cast<uint32_t>(IV * Stride)};
      L.Abs = Paths.appendArray(Base.Abs);
      return L;
    }
    Value Ptr = evalExpr(I->base(), F);
    if (F != Flow::Normal)
      return L;
    Value Idx = evalExpr(I->index(), F);
    if (F != Flow::Normal)
      return L;
    if (Ptr.K != Value::Kind::Ptr || Ptr.isNullPtr()) {
      fail(E->loc(), "subscript of a non-pointer or null value");
      F = Flow::Abort;
      return L;
    }
    int64_t NewOff = wrapAdd(static_cast<int64_t>(Ptr.A.Offset),
                             wrapMul(Idx.asInt(),
                                     static_cast<int64_t>(Stride)));
    if (NewOff < 0) {
      fail(E->loc(), "pointer subscript before object start");
      F = Flow::Abort;
      return L;
    }
    L.Addr = {Ptr.A.Object, static_cast<uint32_t>(NewOff)};
    L.Abs = Ptr.AbsPath;
    return L;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    const RecordField &Field = M->record()->fields()[M->fieldIndex()];
    if (M->isArrow()) {
      Value Ptr = evalExpr(M->base(), F);
      if (F != Flow::Normal)
        return L;
      if (Ptr.K != Value::Kind::Ptr || Ptr.isNullPtr()) {
        fail(E->loc(), "member access through a non-pointer or null value");
        F = Flow::Abort;
        return L;
      }
      L.Addr = {Ptr.A.Object,
                Ptr.A.Offset + static_cast<uint32_t>(Field.Offset)};
      L.Abs = Paths.appendField(Ptr.AbsPath, M->record(), M->fieldIndex());
      return L;
    }
    LV Base = evalLValue(M->base(), F);
    if (F != Flow::Normal)
      return L;
    L.Addr = {Base.Addr.Object,
              Base.Addr.Offset + static_cast<uint32_t>(Field.Offset)};
    L.Abs = Paths.appendField(Base.Abs, M->record(), M->fieldIndex());
    return L;
  }
  default:
    fail(E->loc(), "expression is not an lvalue at runtime");
    F = Flow::Abort;
    return L;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Value Interpreter::evalExpr(const Expr *E, Flow &F) {
  if (!step()) {
    F = Flow::Abort;
    return Value::undef();
  }
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    return Value::makeInt(cast<IntLiteralExpr>(E)->value());
  case ExprKind::FloatLiteral:
    return Value::makeDouble(cast<FloatLiteralExpr>(E)->value());
  case ExprKind::SizeOf:
    return Value::makeInt(
        static_cast<int64_t>(cast<SizeOfExpr>(E)->queried()->size()));
  case ExprKind::StringLiteral: {
    const auto *S = cast<StringLiteralExpr>(E);
    uint32_t Obj = stringObject(S);
    return Value::makePtr({Obj, 0},
                          Paths.basePath(Locs.stringBase(S->literalId())));
  }
  case ExprKind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    if (const auto *Fn = dyn_cast<FuncDecl>(Ref->decl()))
      return Value::makeFn(Fn, Paths.basePath(Locs.functionBase(Fn)));
    const auto *Var = cast<VarDecl>(Ref->decl());
    if (Var->type()->isArray()) {
      uint32_t Obj = objectFor(Var);
      if (Obj == UINT32_MAX) {
        F = Flow::Abort;
        return Value::undef();
      }
      return Value::makePtr(
          {Obj, 0},
          Paths.appendArray(Paths.basePath(Locs.varBase(Var))));
    }
    LV L = evalLValue(E, F);
    if (F != Flow::Normal)
      return Value::undef();
    if (Var->type()->isRecord()) {
      // Aggregate rvalue: a reference to the storage, with the read
      // recorded (the builder emits a lookup here).
      Result.Trace.Reads[E].insert(L.Abs);
      return Value::makePtr(L.Addr, L.Abs);
    }
    return load(L, E);
  }
  case ExprKind::Unary:
    return evalUnary(cast<UnaryExpr>(E), F);
  case ExprKind::Binary:
    return evalBinary(cast<BinaryExpr>(E), F);
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    if (A->op() == AssignOp::Assign) {
      if (A->target()->type()->isRecord()) {
        Value Src = evalExpr(A->value(), F);
        if (F != Flow::Normal)
          return Value::undef();
        LV Dst = evalLValue(A->target(), F);
        if (F != Flow::Normal)
          return Value::undef();
        Result.Trace.Writes[E].insert(Dst.Abs);
        copyCells(Dst.Addr, Src.A, A->target()->type()->size());
        return Src;
      }
      Value V = evalExpr(A->value(), F);
      if (F != Flow::Normal)
        return Value::undef();
      LV Dst = evalLValue(A->target(), F);
      if (F != Flow::Normal)
        return Value::undef();
      store(Dst, V, E);
      return V;
    }
    // Compound assignment.
    Value V = evalExpr(A->value(), F);
    if (F != Flow::Normal)
      return Value::undef();
    LV Dst = evalLValue(A->target(), F);
    if (F != Flow::Normal)
      return Value::undef();
    Value Old = load(Dst, A->target());
    Value New;
    const Type *Ty = A->target()->type();
    if (Ty->isPointer()) {
      uint64_t Stride = cast<PointerType>(Ty)->pointee()->size();
      int64_t Delta = wrapMul(V.asInt(), static_cast<int64_t>(Stride));
      if (A->op() == AssignOp::Sub)
        Delta = wrapNeg(Delta);
      if (Old.K != Value::Kind::Ptr || Old.isNullPtr()) {
        fail(E->loc(), "pointer arithmetic on a non-pointer value");
        F = Flow::Abort;
        return Value::undef();
      }
      New = Value::makePtr(
          {Old.A.Object,
           static_cast<uint32_t>(static_cast<int64_t>(Old.A.Offset) +
                                 Delta)},
          Old.AbsPath);
    } else if (Ty->isDouble() || Old.K == Value::Kind::Double ||
               V.K == Value::Kind::Double) {
      double L = Old.asDouble(), R = V.asDouble(), Res = 0;
      switch (A->op()) {
      case AssignOp::Add:
        Res = L + R;
        break;
      case AssignOp::Sub:
        Res = L - R;
        break;
      case AssignOp::Mul:
        Res = L * R;
        break;
      case AssignOp::Div:
        Res = R != 0 ? L / R : 0;
        break;
      default:
        Res = 0;
        break;
      }
      New = Ty->isDouble() ? Value::makeDouble(Res)
                           : Value::makeInt(static_cast<int64_t>(Res));
    } else {
      // Mirror evalBinary: wrap like two's complement where the raw
      // signed operation would be UB, including INT64_MIN / -1.
      int64_t L = Old.asInt(), R = V.asInt(), Res = 0;
      switch (A->op()) {
      case AssignOp::Add:
        Res = wrapAdd(L, R);
        break;
      case AssignOp::Sub:
        Res = wrapSub(L, R);
        break;
      case AssignOp::Mul:
        Res = wrapMul(L, R);
        break;
      case AssignOp::Div:
        if (R == 0) {
          fail(E->loc(), "division by zero");
          F = Flow::Abort;
          return Value::undef();
        }
        Res = (L == INT64_MIN && R == -1) ? L : L / R;
        break;
      case AssignOp::Rem:
        if (R == 0) {
          fail(E->loc(), "remainder by zero");
          F = Flow::Abort;
          return Value::undef();
        }
        Res = (L == INT64_MIN && R == -1) ? 0 : L % R;
        break;
      default:
        break;
      }
      New = Value::makeInt(Res);
    }
    store(Dst, New, E);
    return New;
  }
  case ExprKind::Call:
    return evalCall(cast<CallExpr>(E), F);
  case ExprKind::Index:
  case ExprKind::Member: {
    LV L = evalLValue(E, F);
    if (F != Flow::Normal)
      return Value::undef();
    if (E->type()->isArray())
      return Value::makePtr(L.Addr, Paths.appendArray(L.Abs));
    if (E->type()->isRecord()) {
      Result.Trace.Reads[E].insert(L.Abs);
      return Value::makePtr(L.Addr, L.Abs);
    }
    return load(L, E);
  }
  case ExprKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    Value V = evalExpr(C->operand(), F);
    if (F != Flow::Normal)
      return Value::undef();
    const Type *T = C->target();
    if (T->isIntegral() && V.K == Value::Kind::Double)
      return Value::makeInt(static_cast<int64_t>(V.D));
    if (T->isDouble() && V.K == Value::Kind::Int)
      return Value::makeDouble(static_cast<double>(V.I));
    if (T->isChar() && V.K == Value::Kind::Int)
      return Value::makeInt(static_cast<int64_t>(
          static_cast<unsigned char>(V.I)));
    return V;
  }
  case ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    Value Cond = evalExpr(C->cond(), F);
    if (F != Flow::Normal)
      return Value::undef();
    if (Cond.K == Value::Kind::Undef) {
      fail(E->loc(), "branch on an undefined value");
      F = Flow::Abort;
      return Value::undef();
    }
    return evalExpr(Cond.truthy() ? C->thenExpr() : C->elseExpr(), F);
  }
  }
  fail(E->loc(), "unhandled expression kind at runtime");
  F = Flow::Abort;
  return Value::undef();
}

Value Interpreter::evalUnary(const UnaryExpr *E, Flow &F) {
  switch (E->op()) {
  case UnaryOp::Neg: {
    Value V = evalExpr(E->operand(), F);
    if (F != Flow::Normal)
      return Value::undef();
    if (V.K == Value::Kind::Double)
      return Value::makeDouble(-V.D);
    return Value::makeInt(wrapNeg(V.asInt()));
  }
  case UnaryOp::Not: {
    Value V = evalExpr(E->operand(), F);
    if (F != Flow::Normal)
      return Value::undef();
    return Value::makeInt(V.truthy() ? 0 : 1);
  }
  case UnaryOp::BitNot: {
    Value V = evalExpr(E->operand(), F);
    if (F != Flow::Normal)
      return Value::undef();
    return Value::makeInt(~V.asInt());
  }
  case UnaryOp::AddrOf: {
    if (const auto *Ref = dyn_cast<DeclRefExpr>(E->operand()))
      if (const auto *Fn = dyn_cast<FuncDecl>(Ref->decl()))
        return Value::makeFn(Fn, Paths.basePath(Locs.functionBase(Fn)));
    LV L = evalLValue(E->operand(), F);
    if (F != Flow::Normal)
      return Value::undef();
    return Value::makePtr(L.Addr, L.Abs);
  }
  case UnaryOp::Deref: {
    const Type *OpTy = E->operand()->type();
    if (const auto *Ptr = dyn_cast<PointerType>(OpTy))
      if (Ptr->pointee()->isFunction())
        return evalExpr(E->operand(), F);
    LV L = evalLValue(E, F);
    if (F != Flow::Normal)
      return Value::undef();
    if (E->type()->isArray())
      return Value::makePtr(L.Addr, Paths.appendArray(L.Abs));
    if (E->type()->isRecord()) {
      Result.Trace.Reads[E].insert(L.Abs);
      return Value::makePtr(L.Addr, L.Abs);
    }
    return load(L, E);
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    LV L = evalLValue(E->operand(), F);
    if (F != Flow::Normal)
      return Value::undef();
    Value Old = load(L, E->operand());
    bool Inc = E->op() == UnaryOp::PreInc || E->op() == UnaryOp::PostInc;
    Value New;
    const Type *Ty = E->operand()->type();
    if (Ty->isPointer()) {
      if (Old.K != Value::Kind::Ptr || Old.isNullPtr()) {
        fail(E->loc(), "increment of a non-pointer value");
        F = Flow::Abort;
        return Value::undef();
      }
      int64_t Stride =
          static_cast<int64_t>(cast<PointerType>(Ty)->pointee()->size());
      int64_t NewOff = static_cast<int64_t>(Old.A.Offset) +
                       (Inc ? Stride : -Stride);
      New = Value::makePtr({Old.A.Object, static_cast<uint32_t>(NewOff)},
                           Old.AbsPath);
    } else if (Old.K == Value::Kind::Double) {
      New = Value::makeDouble(Old.D + (Inc ? 1.0 : -1.0));
    } else {
      New = Value::makeInt(wrapAdd(Old.asInt(), Inc ? 1 : -1));
    }
    store(L, New, E);
    bool IsPre = E->op() == UnaryOp::PreInc || E->op() == UnaryOp::PreDec;
    return IsPre ? New : Old;
  }
  }
  return Value::undef();
}

Value Interpreter::evalBinary(const BinaryExpr *E, Flow &F) {
  if (E->op() == BinaryOp::LogAnd || E->op() == BinaryOp::LogOr) {
    Value L = evalExpr(E->lhs(), F);
    if (F != Flow::Normal)
      return Value::undef();
    if (E->op() == BinaryOp::LogAnd && !L.truthy())
      return Value::makeInt(0);
    if (E->op() == BinaryOp::LogOr && L.truthy())
      return Value::makeInt(1);
    Value R = evalExpr(E->rhs(), F);
    if (F != Flow::Normal)
      return Value::undef();
    return Value::makeInt(R.truthy() ? 1 : 0);
  }

  Value L = evalExpr(E->lhs(), F);
  if (F != Flow::Normal)
    return Value::undef();
  Value R = evalExpr(E->rhs(), F);
  if (F != Flow::Normal)
    return Value::undef();

  // Pointer arithmetic and comparisons.
  bool LP = L.K == Value::Kind::Ptr;
  bool RP = R.K == Value::Kind::Ptr;
  if (LP || RP) {
    switch (E->op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      if (LP && RP && E->op() == BinaryOp::Sub) {
        const auto *PT = dyn_cast<PointerType>(E->lhs()->type());
        uint64_t Stride = PT ? PT->pointee()->size() : 1;
        if (L.A.Object != R.A.Object) {
          fail(E->loc(), "subtraction of pointers into different objects");
          F = Flow::Abort;
          return Value::undef();
        }
        return Value::makeInt(
            (static_cast<int64_t>(L.A.Offset) -
             static_cast<int64_t>(R.A.Offset)) /
            static_cast<int64_t>(Stride ? Stride : 1));
      }
      Value Ptr = LP ? L : R;
      Value Int = LP ? R : L;
      const auto *PT = dyn_cast<PointerType>(E->type());
      uint64_t Stride = PT ? PT->pointee()->size() : 1;
      if (Ptr.isNullPtr()) {
        fail(E->loc(), "arithmetic on a null pointer");
        F = Flow::Abort;
        return Value::undef();
      }
      int64_t Delta = wrapMul(Int.asInt(), static_cast<int64_t>(Stride));
      if (E->op() == BinaryOp::Sub)
        Delta = wrapNeg(Delta);
      int64_t NewOff = wrapAdd(static_cast<int64_t>(Ptr.A.Offset), Delta);
      if (NewOff < 0) {
        fail(E->loc(), "pointer arithmetic before object start");
        F = Flow::Abort;
        return Value::undef();
      }
      return Value::makePtr({Ptr.A.Object, static_cast<uint32_t>(NewOff)},
                            Ptr.AbsPath);
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool Equal = false;
      if (LP && RP)
        Equal = L.A == R.A;
      else if (LP)
        Equal = L.isNullPtr() && R.asInt() == 0;
      else
        Equal = R.isNullPtr() && L.asInt() == 0;
      return Value::makeInt((E->op() == BinaryOp::Eq) == Equal ? 1 : 0);
    }
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge: {
      uint64_t LK = LP ? (static_cast<uint64_t>(L.A.Object) << 32) +
                             L.A.Offset
                       : 0;
      uint64_t RK = RP ? (static_cast<uint64_t>(R.A.Object) << 32) +
                             R.A.Offset
                       : 0;
      bool Res = false;
      switch (E->op()) {
      case BinaryOp::Lt:
        Res = LK < RK;
        break;
      case BinaryOp::Gt:
        Res = LK > RK;
        break;
      case BinaryOp::Le:
        Res = LK <= RK;
        break;
      default:
        Res = LK >= RK;
        break;
      }
      return Value::makeInt(Res ? 1 : 0);
    }
    default:
      fail(E->loc(), "invalid pointer operation at runtime");
      F = Flow::Abort;
      return Value::undef();
    }
  }

  if (L.K == Value::Kind::Undef || R.K == Value::Kind::Undef) {
    fail(E->loc(), "arithmetic on an undefined value");
    F = Flow::Abort;
    return Value::undef();
  }

  bool UseDouble = L.K == Value::Kind::Double || R.K == Value::Kind::Double;
  if (UseDouble) {
    double A = L.asDouble(), B = R.asDouble();
    switch (E->op()) {
    case BinaryOp::Add:
      return Value::makeDouble(A + B);
    case BinaryOp::Sub:
      return Value::makeDouble(A - B);
    case BinaryOp::Mul:
      return Value::makeDouble(A * B);
    case BinaryOp::Div:
      return Value::makeDouble(B != 0 ? A / B : 0);
    case BinaryOp::Lt:
      return Value::makeInt(A < B);
    case BinaryOp::Gt:
      return Value::makeInt(A > B);
    case BinaryOp::Le:
      return Value::makeInt(A <= B);
    case BinaryOp::Ge:
      return Value::makeInt(A >= B);
    case BinaryOp::Eq:
      return Value::makeInt(A == B);
    case BinaryOp::Ne:
      return Value::makeInt(A != B);
    default:
      fail(E->loc(), "invalid double operation");
      F = Flow::Abort;
      return Value::undef();
    }
  }

  int64_t A = L.asInt(), B = R.asInt();
  switch (E->op()) {
  case BinaryOp::Add:
    return Value::makeInt(wrapAdd(A, B));
  case BinaryOp::Sub:
    return Value::makeInt(wrapSub(A, B));
  case BinaryOp::Mul:
    return Value::makeInt(wrapMul(A, B));
  case BinaryOp::Div:
    if (B == 0) {
      fail(E->loc(), "division by zero");
      F = Flow::Abort;
      return Value::undef();
    }
    if (A == INT64_MIN && B == -1)
      return Value::makeInt(A); // Quotient wraps back to INT64_MIN.
    return Value::makeInt(A / B);
  case BinaryOp::Rem:
    if (B == 0) {
      fail(E->loc(), "remainder by zero");
      F = Flow::Abort;
      return Value::undef();
    }
    if (A == INT64_MIN && B == -1)
      return Value::makeInt(0);
    return Value::makeInt(A % B);
  case BinaryOp::Shl:
    return Value::makeInt(A << (B & 63));
  case BinaryOp::Shr:
    return Value::makeInt(A >> (B & 63));
  case BinaryOp::BitAnd:
    return Value::makeInt(A & B);
  case BinaryOp::BitOr:
    return Value::makeInt(A | B);
  case BinaryOp::BitXor:
    return Value::makeInt(A ^ B);
  case BinaryOp::Lt:
    return Value::makeInt(A < B);
  case BinaryOp::Gt:
    return Value::makeInt(A > B);
  case BinaryOp::Le:
    return Value::makeInt(A <= B);
  case BinaryOp::Ge:
    return Value::makeInt(A >= B);
  case BinaryOp::Eq:
    return Value::makeInt(A == B);
  case BinaryOp::Ne:
    return Value::makeInt(A != B);
  default:
    return Value::undef();
  }
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

Value Interpreter::readString(const Value &Ptr, std::string &Out) {
  if (Ptr.K != Value::Kind::Ptr || Ptr.isNullPtr() ||
      Ptr.A.Object >= Objects.size()) {
    fail(SourceLoc(), "string routine applied to an invalid pointer");
    return Value::undef();
  }
  const MemoryObject &O = Objects[Ptr.A.Object];
  uint32_t Off = Ptr.A.Offset;
  for (;;) {
    auto It = O.Cells.find(Off);
    int64_t C = It != O.Cells.end() ? It->second.asInt()
                                    : (O.ZeroInit ? 0 : -1);
    if (C < 0) {
      fail(SourceLoc(), "unterminated string in " + O.Name);
      return Value::undef();
    }
    if (C == 0)
      break;
    Out.push_back(static_cast<char>(C));
    ++Off;
    if (Off - Ptr.A.Offset > 1'000'000) {
      fail(SourceLoc(), "runaway string in " + O.Name);
      return Value::undef();
    }
  }
  return Value::makeInt(0);
}

Value Interpreter::evalBuiltin(const CallExpr *E, std::vector<Value> Args,
                               Flow &F) {
  switch (E->builtin()) {
  case BuiltinKind::Malloc:
  case BuiltinKind::Calloc: {
    uint64_t Size = static_cast<uint64_t>(Args[0].asInt());
    if (E->builtin() == BuiltinKind::Calloc)
      Size *= static_cast<uint64_t>(Args[1].asInt());
    BaseLocId Base = Locs.heapBase(E->allocSiteId());
    uint32_t Obj = allocObject(Base, Size,
                               "heap@" + std::to_string(E->allocSiteId()));
    if (E->builtin() == BuiltinKind::Calloc)
      Objects[Obj].ZeroInit = true;
    return Value::makePtr({Obj, 0}, Paths.basePath(Base));
  }
  case BuiltinKind::Free: {
    if (Args[0].K == Value::Kind::Ptr && !Args[0].isNullPtr() &&
        Args[0].A.Object < Objects.size()) {
      MemoryObject &Obj = Objects[Args[0].A.Object];
      // The trace distinguishes first frees from repeat frees so the lint
      // oracle can refute must-double-free findings against dynamic runs.
      if (Obj.Freed)
        Result.Trace.DoubleFrees.insert(E);
      else
        Result.Trace.Frees[E].insert(Paths.basePath(Obj.Base));
      Obj.Freed = true;
    }
    return Value::makeInt(0);
  }
  case BuiltinKind::Printf: {
    std::string Fmt;
    if (readString(Args[0], Fmt).K == Value::Kind::Undef) {
      F = Flow::Abort;
      return Value::undef();
    }
    size_t ArgIdx = 1;
    std::string Out;
    for (size_t I = 0; I < Fmt.size(); ++I) {
      if (Fmt[I] != '%') {
        Out.push_back(Fmt[I]);
        continue;
      }
      ++I;
      if (I >= Fmt.size())
        break;
      // Skip width/flags.
      while (I < Fmt.size() &&
             (std::isdigit(static_cast<unsigned char>(Fmt[I])) ||
              Fmt[I] == '-' || Fmt[I] == '.' || Fmt[I] == 'l'))
        ++I;
      if (I >= Fmt.size())
        break;
      char Conv = Fmt[I];
      char Buf[64];
      switch (Conv) {
      case '%':
        Out.push_back('%');
        break;
      case 'd':
      case 'u':
        if (ArgIdx < Args.size()) {
          std::snprintf(Buf, sizeof(Buf), "%lld",
                        static_cast<long long>(Args[ArgIdx++].asInt()));
          Out += Buf;
        }
        break;
      case 'x':
        if (ArgIdx < Args.size()) {
          std::snprintf(Buf, sizeof(Buf), "%llx",
                        static_cast<long long>(Args[ArgIdx++].asInt()));
          Out += Buf;
        }
        break;
      case 'c':
        if (ArgIdx < Args.size())
          Out.push_back(static_cast<char>(Args[ArgIdx++].asInt()));
        break;
      case 'f':
      case 'g':
      case 'e':
        if (ArgIdx < Args.size()) {
          std::snprintf(Buf, sizeof(Buf), Conv == 'f' ? "%f" : "%g",
                        Args[ArgIdx++].asDouble());
          Out += Buf;
        }
        break;
      case 's':
        if (ArgIdx < Args.size()) {
          std::string S;
          if (readString(Args[ArgIdx++], S).K == Value::Kind::Undef) {
            F = Flow::Abort;
            return Value::undef();
          }
          Out += S;
        }
        break;
      default:
        Out.push_back(Conv);
        break;
      }
    }
    Result.Output += Out;
    return Value::makeInt(static_cast<int64_t>(Out.size()));
  }
  case BuiltinKind::Putchar:
    Result.Output.push_back(static_cast<char>(Args[0].asInt()));
    return Args[0];
  case BuiltinKind::Getchar: {
    if (InputPos >= Input.size())
      return Value::makeInt(-1);
    return Value::makeInt(
        static_cast<unsigned char>(Input[InputPos++]));
  }
  case BuiltinKind::Strlen: {
    std::string S;
    if (readString(Args[0], S).K == Value::Kind::Undef) {
      F = Flow::Abort;
      return Value::undef();
    }
    return Value::makeInt(static_cast<int64_t>(S.size()));
  }
  case BuiltinKind::Strcmp: {
    std::string A, B;
    if (readString(Args[0], A).K == Value::Kind::Undef ||
        readString(Args[1], B).K == Value::Kind::Undef) {
      F = Flow::Abort;
      return Value::undef();
    }
    return Value::makeInt(A < B ? -1 : (A == B ? 0 : 1));
  }
  case BuiltinKind::Strcpy:
  case BuiltinKind::Strcat: {
    std::string Src;
    if (readString(Args[1], Src).K == Value::Kind::Undef) {
      F = Flow::Abort;
      return Value::undef();
    }
    Value Dst = Args[0];
    if (Dst.K != Value::Kind::Ptr || Dst.isNullPtr() ||
        Dst.A.Object >= Objects.size()) {
      fail(E->loc(), "string copy to an invalid pointer");
      F = Flow::Abort;
      return Value::undef();
    }
    uint32_t Off = Dst.A.Offset;
    if (E->builtin() == BuiltinKind::Strcat) {
      std::string Existing;
      if (readString(Dst, Existing).K == Value::Kind::Undef) {
        F = Flow::Abort;
        return Value::undef();
      }
      Off += static_cast<uint32_t>(Existing.size());
    }
    MemoryObject &O = Objects[Dst.A.Object];
    if (O.Size && Off + Src.size() + 1 > O.Size) {
      fail(E->loc(), "string copy overflows " + O.Name);
      F = Flow::Abort;
      return Value::undef();
    }
    for (size_t I = 0; I < Src.size(); ++I)
      O.Cells[Off + static_cast<uint32_t>(I)] =
          Value::makeInt(static_cast<unsigned char>(Src[I]));
    O.Cells[Off + static_cast<uint32_t>(Src.size())] = Value::makeInt(0);
    return Args[0];
  }
  case BuiltinKind::Memset: {
    Value Dst = Args[0];
    int64_t Byte = Args[1].asInt();
    uint64_t N = static_cast<uint64_t>(Args[2].asInt());
    if (Dst.K != Value::Kind::Ptr || Dst.isNullPtr() ||
        Dst.A.Object >= Objects.size()) {
      fail(E->loc(), "memset to an invalid pointer");
      F = Flow::Abort;
      return Value::undef();
    }
    MemoryObject &O = Objects[Dst.A.Object];
    auto Lo = O.Cells.lower_bound(Dst.A.Offset);
    auto Hi = O.Cells.lower_bound(Dst.A.Offset + static_cast<uint32_t>(N));
    O.Cells.erase(Lo, Hi);
    if (Byte == 0 && Dst.A.Offset == 0 && N >= O.Size)
      O.ZeroInit = true;
    return Args[0];
  }
  case BuiltinKind::Atoi: {
    std::string S;
    if (readString(Args[0], S).K == Value::Kind::Undef) {
      F = Flow::Abort;
      return Value::undef();
    }
    return Value::makeInt(std::strtoll(S.c_str(), nullptr, 10));
  }
  case BuiltinKind::Abs:
    return Value::makeInt(std::llabs(Args[0].asInt()));
  case BuiltinKind::Fabs:
    return Value::makeDouble(std::fabs(Args[0].asDouble()));
  case BuiltinKind::Sqrt:
    return Value::makeDouble(std::sqrt(Args[0].asDouble()));
  case BuiltinKind::Exp:
    return Value::makeDouble(std::exp(Args[0].asDouble()));
  case BuiltinKind::Rand:
    RandState = RandState * 6364136223846793005ULL + 1442695040888963407ULL;
    return Value::makeInt(static_cast<int64_t>((RandState >> 33) &
                                               0x7FFFFFFF));
  case BuiltinKind::Srand:
    RandState = static_cast<uint64_t>(Args[0].asInt()) * 2654435761ULL + 1;
    return Value::makeInt(0);
  case BuiltinKind::Exit:
    Result.ExitCode = Args.empty() ? 0 : Args[0].asInt();
    F = Flow::Abort; // Unwind everything; run() treats clean exits as Ok.
    CleanExit = true;
    return Value::makeInt(0);
  case BuiltinKind::None:
    break;
  }
  fail(E->loc(), "unknown builtin at runtime");
  F = Flow::Abort;
  return Value::undef();
}

Value Interpreter::evalCall(const CallExpr *E, Flow &F) {
  std::vector<Value> Args;
  Args.reserve(E->args().size());
  for (const Expr *Arg : E->args()) {
    Args.push_back(evalExpr(Arg, F));
    if (F != Flow::Normal)
      return Value::undef();
  }

  if (E->builtin() != BuiltinKind::None)
    return evalBuiltin(E, std::move(Args), F);

  const FuncDecl *Callee = E->directCallee();
  if (!Callee) {
    Value FnVal = evalExpr(E->callee(), F);
    if (F != Flow::Normal)
      return Value::undef();
    if (FnVal.K != Value::Kind::Fn || !FnVal.Fn) {
      fail(E->loc(), "indirect call through a non-function value");
      F = Flow::Abort;
      return Value::undef();
    }
    Callee = FnVal.Fn;
  }
  if (!Callee->isDefined()) {
    fail(E->loc(), "call to undefined function '" +
                       P.Names.text(Callee->name()) + "'");
    F = Flow::Abort;
    return Value::undef();
  }
  return callFunction(Callee, std::move(Args), F);
}

Value Interpreter::callFunction(const FuncDecl *Fn, std::vector<Value> Args,
                                Flow &F) {
  if (Frames.size() >= MaxCallDepth) {
    truncate(Fn->loc(), "call stack depth limit exceeded");
    F = Flow::Abort;
    return Value::undef();
  }

  Frame NewFrame;
  NewFrame.Fn = Fn;
  for (size_t I = 0; I < Fn->params().size(); ++I) {
    const VarDecl *Param = Fn->params()[I];
    BaseLocId Base = LocationTable::isStoreResident(Param)
                         ? Locs.varBase(Param)
                         : BaseLocId{0};
    uint32_t Obj = allocObject(Base, Param->type()->size(),
                               P.Names.text(Fn->name()) + "." +
                                   P.Names.text(Param->name()));
    if (I < Args.size()) {
      if (Param->type()->isRecord()) {
        if (Args[I].K == Value::Kind::Ptr)
          copyCells({Obj, 0}, Args[I].A, Param->type()->size());
      } else {
        Objects[Obj].Cells[0] = Args[I];
      }
    }
    NewFrame.Objects.emplace(Param, Obj);
  }
  Frames.push_back(std::move(NewFrame));

  Flow BodyFlow = execStmt(Fn->body());
  Value Ret = Frames.back().ReturnValue;
  Frames.pop_back();

  if (BodyFlow == Flow::Abort) {
    F = Flow::Abort;
    return Value::undef();
  }
  return Ret;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Interpreter::Flow Interpreter::execStmt(const Stmt *S) {
  if (!S)
    return Flow::Normal;
  if (!step())
    return Flow::Abort;

  switch (S->kind()) {
  case StmtKind::Compound: {
    for (const Stmt *Child : cast<CompoundStmt>(S)->body()) {
      Flow F = execStmt(Child);
      if (F != Flow::Normal)
        return F;
    }
    return Flow::Normal;
  }
  case StmtKind::Expr: {
    Flow F = Flow::Normal;
    evalExpr(cast<ExprStmt>(S)->expr(), F);
    return F;
  }
  case StmtKind::Decl: {
    const VarDecl *Var = cast<DeclStmt>(S)->var();
    BaseLocId Base = LocationTable::isStoreResident(Var)
                         ? Locs.varBase(Var)
                         : BaseLocId{0};
    uint32_t Obj =
        allocObject(Base, Var->type()->size(), P.Names.text(Var->name()));
    Frames.back().Objects[Var] = Obj;
    if (const Expr *Init = Var->init()) {
      Flow F = Flow::Normal;
      Value V = evalExpr(Init, F);
      if (F != Flow::Normal)
        return F;
      if (Var->type()->isRecord()) {
        if (V.K == Value::Kind::Ptr)
          copyCells({Obj, 0}, V.A, Var->type()->size());
      } else {
        LV L;
        L.Addr = {Obj, 0};
        L.Ty = Var->type();
        L.Abs = LocationTable::isStoreResident(Var)
                    ? Paths.basePath(Locs.varBase(Var))
                    : PathTable::emptyPath();
        store(L, V,
              LocationTable::isStoreResident(Var) ? Init : nullptr);
      }
    }
    return Flow::Normal;
  }
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    Flow F = Flow::Normal;
    Value Cond = evalExpr(If->cond(), F);
    if (F != Flow::Normal)
      return F;
    if (Cond.K == Value::Kind::Undef) {
      fail(S->loc(), "branch on an undefined value");
      return Flow::Abort;
    }
    return execStmt(Cond.truthy() ? If->thenStmt() : If->elseStmt());
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    for (;;) {
      Flow F = Flow::Normal;
      Value Cond = evalExpr(W->cond(), F);
      if (F != Flow::Normal)
        return F;
      if (Cond.K == Value::Kind::Undef) {
        fail(S->loc(), "branch on an undefined value");
        return Flow::Abort;
      }
      if (!Cond.truthy())
        return Flow::Normal;
      Flow Body = execStmt(W->body());
      if (Body == Flow::Break)
        return Flow::Normal;
      if (Body == Flow::Return || Body == Flow::Abort)
        return Body;
    }
  }
  case StmtKind::DoWhile: {
    const auto *D = cast<DoWhileStmt>(S);
    for (;;) {
      Flow Body = execStmt(D->body());
      if (Body == Flow::Break)
        return Flow::Normal;
      if (Body == Flow::Return || Body == Flow::Abort)
        return Body;
      Flow F = Flow::Normal;
      Value Cond = evalExpr(D->cond(), F);
      if (F != Flow::Normal)
        return F;
      if (!Cond.truthy())
        return Flow::Normal;
    }
  }
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->init()) {
      Flow F = execStmt(For->init());
      if (F != Flow::Normal)
        return F;
    }
    for (;;) {
      if (For->cond()) {
        Flow F = Flow::Normal;
        Value Cond = evalExpr(For->cond(), F);
        if (F != Flow::Normal)
          return F;
        if (Cond.K == Value::Kind::Undef) {
          fail(S->loc(), "branch on an undefined value");
          return Flow::Abort;
        }
        if (!Cond.truthy())
          return Flow::Normal;
      }
      Flow Body = execStmt(For->body());
      if (Body == Flow::Break)
        return Flow::Normal;
      if (Body == Flow::Return || Body == Flow::Abort)
        return Body;
      if (For->step()) {
        Flow F = Flow::Normal;
        evalExpr(For->step(), F);
        if (F != Flow::Normal)
          return F;
      }
    }
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    if (R->value()) {
      Flow F = Flow::Normal;
      Value V = evalExpr(R->value(), F);
      if (F != Flow::Normal)
        return F;
      Frames.back().ReturnValue = V;
    }
    return Flow::Return;
  }
  case StmtKind::Break:
    return Flow::Break;
  case StmtKind::Continue:
    return Flow::Continue;
  }
  return Flow::Normal;
}

//===----------------------------------------------------------------------===//
// Program entry
//===----------------------------------------------------------------------===//

void Interpreter::initGlobals() {
  for (const VarDecl *G : P.Globals) {
    uint32_t Obj = allocObject(Locs.varBase(G), G->type()->size(),
                               P.Names.text(G->name()));
    Objects[Obj].ZeroInit = true; // C zero-initializes globals.
    GlobalObjects.emplace(G, Obj);
  }
  // Initializers run after all globals exist (forward references to
  // function addresses etc. are fine; MiniC initializers are simple).
  for (const VarDecl *G : P.Globals) {
    uint32_t Obj = GlobalObjects[G];
    Flow F = Flow::Normal;
    if (const Expr *Init = G->init()) {
      Value V = evalExpr(Init, F);
      if (F != Flow::Normal)
        return;
      LV L;
      L.Addr = {Obj, 0};
      L.Ty = G->type();
      L.Abs = Paths.basePath(Locs.varBase(G));
      store(L, V, Init);
    }
    uint32_t Offset = 0;
    for (const Expr *Elem : G->initList()) {
      Value V = evalExpr(Elem, F);
      if (F != Flow::Normal)
        return;
      const auto *Arr = dyn_cast<ArrayType>(G->type());
      uint64_t Stride = Arr ? Arr->element()->size() : 1;
      LV L;
      L.Addr = {Obj, Offset};
      L.Ty = Arr ? Arr->element() : G->type();
      L.Abs = Paths.appendArray(Paths.basePath(Locs.varBase(G)));
      store(L, V, Elem);
      Offset += static_cast<uint32_t>(Stride);
    }
  }
}

RunResult Interpreter::run() {
  Result = RunResult();
  Aborted = false;
  CleanExit = false;
  Objects.clear();
  GlobalObjects.clear();
  StringObjects.clear();
  Frames.clear();
  InputPos = 0;

  const FuncDecl *Main = P.findFunction("main");
  if (!Main || !Main->isDefined()) {
    Result.Error = "program has no main function";
    return Result;
  }

  initGlobals();
  if (Aborted) {
    if (Result.Truncated) {
      Result.Ok = true;
      Result.Error.clear();
    }
    return Result;
  }

  Flow F = Flow::Normal;
  std::vector<Value> Args(Main->params().size(), Value::makeInt(0));
  Value Ret = callFunction(Main, std::move(Args), F);

  // A run that hit a resource budget ends cleanly: the executed prefix is
  // well-defined and its trace is usable, so it is Ok + Truncated rather
  // than an error.
  if (Aborted && !CleanExit && !Result.Truncated)
    return Result;
  Result.Ok = true;
  Result.Error.clear();
  if (!CleanExit && !Result.Truncated && Ret.K == Value::Kind::Int)
    Result.ExitCode = Ret.I;
  return Result;
}
