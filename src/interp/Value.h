//===- interp/Value.h - Concrete runtime values ----------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the MiniC concrete interpreter. Memory is a set of
/// byte-addressed objects holding tagged scalar cells. Every pointer value
/// carries, alongside its concrete address, the *abstract access path* the
/// analysis would use for the storage it designates — computed by the same
/// path algebra (base, append field, append array summary). This is what
/// makes the interpreter a soundness oracle: at every memory access the
/// dynamic abstract path must be contained in the analysis' referent set.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_INTERP_VALUE_H
#define VDGA_INTERP_VALUE_H

#include "memory/AccessPath.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vdga {

class FuncDecl;

/// A concrete address: object id plus byte offset.
struct Address {
  uint32_t Object = UINT32_MAX;
  uint32_t Offset = 0;

  bool isNull() const { return Object == UINT32_MAX; }
  friend bool operator==(const Address &A, const Address &B) {
    return A.Object == B.Object && A.Offset == B.Offset;
  }
};

/// One scalar runtime value.
struct Value {
  enum class Kind : uint8_t { Undef, Int, Double, Ptr, Fn } K = Kind::Undef;
  int64_t I = 0;
  double D = 0.0;
  Address A;
  const FuncDecl *Fn = nullptr;
  /// Abstract path of the storage a Ptr designates (meaningless
  /// otherwise). Null pointers use the empty offset path.
  PathId AbsPath = PathId::EmptyOffset;

  static Value undef() { return Value(); }
  static Value makeInt(int64_t V) {
    Value R;
    R.K = Kind::Int;
    R.I = V;
    return R;
  }
  static Value makeDouble(double V) {
    Value R;
    R.K = Kind::Double;
    R.D = V;
    return R;
  }
  static Value makePtr(Address A, PathId Abs) {
    Value R;
    R.K = Kind::Ptr;
    R.A = A;
    R.AbsPath = Abs;
    return R;
  }
  static Value makeNull() {
    Value R;
    R.K = Kind::Ptr;
    return R;
  }
  static Value makeFn(const FuncDecl *Fn, PathId Abs) {
    Value R;
    R.K = Kind::Fn;
    R.Fn = Fn;
    R.AbsPath = Abs;
    return R;
  }

  bool isNullPtr() const { return K == Kind::Ptr && A.isNull(); }
  /// Truthiness for conditions; Undef is an interpreter error (checked by
  /// the caller).
  bool truthy() const;
  /// Numeric views with integer/double coercion.
  int64_t asInt() const;
  double asDouble() const;
};

/// One runtime object: a byte-addressed bag of scalar cells.
struct MemoryObject {
  /// Cells keyed by byte offset. A scalar occupies the cell at its offset;
  /// reads of never-written offsets yield Undef.
  std::map<uint32_t, Value> Cells;
  uint64_t Size = 0;          ///< Extent in bytes (0 = unknown/heap-exact).
  BaseLocId Base{0};          ///< The abstract base location it instantiates.
  bool Freed = false;
  /// Reads of never-written cells yield a typed zero instead of Undef
  /// (globals, calloc, full memset-to-zero).
  bool ZeroInit = false;
  std::string Name;           ///< For diagnostics.
};

} // namespace vdga

#endif // VDGA_INTERP_VALUE_H
