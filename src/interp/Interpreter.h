//===- interp/Interpreter.h - MiniC concrete interpreter -------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete AST interpreter for MiniC. Its role in this project is
/// twofold: it makes the corpus programs runnable (examples), and it is the
/// soundness oracle for the analyses — it records, for every memory read
/// and write expression, the abstract access path actually touched, which
/// property tests then check against the analysis' referent sets.
///
/// Execution is deterministic: rand() is a fixed LCG, getchar() reads from
/// a caller-supplied input string, and printf writes to a captured buffer.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_INTERP_INTERPRETER_H
#define VDGA_INTERP_INTERPRETER_H

#include "frontend/AST.h"
#include "interp/Value.h"
#include "memory/LocationTable.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vdga {

/// What the interpreter observed at memory-access expressions.
struct AccessTrace {
  /// Abstract paths read/written, keyed by the expression performing the
  /// access. The keys align with vdg::Node::Origin.
  std::map<const Expr *, std::set<PathId>> Reads;
  std::map<const Expr *, std::set<PathId>> Writes;
  /// free() call sites that released a live object, with the base path of
  /// the object each dynamic execution released. A site in Frees but not
  /// DoubleFrees only ever freed live objects, so a must-double-free
  /// claim at that site is concretely refuted.
  std::map<const Expr *, std::set<PathId>> Frees;
  /// free() call sites that were handed an already-freed object.
  std::set<const Expr *> DoubleFrees;
};

/// Result of one program run.
struct RunResult {
  bool Ok = false;
  int64_t ExitCode = 0;
  std::string Output;      ///< Captured printf/putchar text.
  std::string Error;       ///< First runtime error, if any.
  uint64_t StepsExecuted = 0;
  /// True when a resource budget (step or call-depth limit) ended the run
  /// early. The run still counts as Ok: everything executed so far was
  /// well-defined and Trace holds a valid prefix, so oracles can check it
  /// without reporting a spurious failure. TruncationReason says which
  /// budget fired.
  bool Truncated = false;
  std::string TruncationReason;
  AccessTrace Trace;
};

/// Interprets a checked Program. Requires the same PathTable/LocationTable
/// the analyses use, so that recorded paths are comparable.
class Interpreter {
public:
  Interpreter(const Program &P, PathTable &Paths, const LocationTable &Locs)
      : P(P), Paths(Paths), Locs(Locs) {}

  /// Caps interpretation work; exceeding it truncates the run cleanly
  /// (RunResult::Truncated) rather than failing it.
  void setMaxSteps(uint64_t N) { MaxSteps = N; }
  /// Caps the interpreted call-stack depth; exceeding it truncates the
  /// run cleanly. The default leaves ample headroom between interpreted
  /// frames and the host stack frames that implement them, so deeply
  /// recursive subject programs cannot exhaust the host stack.
  void setMaxCallDepth(unsigned N) { MaxCallDepth = N; }
  /// Provides stdin content for getchar().
  void setInput(std::string In) { Input = std::move(In); }

  /// Runs main() (after global initialization). Fails when main is
  /// missing.
  RunResult run();

private:
  /// An evaluated lvalue: concrete address + the abstract path the
  /// analysis would use + the accessed type.
  struct LV {
    Address Addr;
    PathId Abs = PathId::EmptyOffset;
    const Type *Ty = nullptr;
  };

  enum class Flow : uint8_t { Normal, Break, Continue, Return, Abort };

  // Memory.
  uint32_t allocObject(BaseLocId Base, uint64_t Size, std::string Name);
  Value load(const LV &L, const Expr *Site);
  void store(const LV &L, Value V, const Expr *Site);
  /// Copies Size bytes of cells (aggregate assignment).
  void copyCells(Address Dst, Address Src, uint64_t Size);

  // Frames.
  struct Frame {
    std::map<const VarDecl *, uint32_t> Objects;
    Value ReturnValue;
    const FuncDecl *Fn = nullptr;
  };
  uint32_t objectFor(const VarDecl *Var);

  // Execution.
  void initGlobals();
  Value callFunction(const FuncDecl *Fn, std::vector<Value> Args,
                     Flow &F);
  Flow execStmt(const Stmt *S);
  Value evalExpr(const Expr *E, Flow &F);
  LV evalLValue(const Expr *E, Flow &F);
  Value evalCall(const CallExpr *E, Flow &F);
  Value evalBuiltin(const CallExpr *E, std::vector<Value> Args, Flow &F);
  Value evalBinary(const BinaryExpr *E, Flow &F);
  Value evalUnary(const UnaryExpr *E, Flow &F);
  Value readString(const Value &Ptr, std::string &Out);
  uint32_t stringObject(const StringLiteralExpr *S);

  void fail(SourceLoc Loc, const std::string &Message);
  /// Ends the run cleanly at a resource budget: unwinds like fail(), but
  /// marks the result truncated-Ok instead of failed.
  void truncate(SourceLoc Loc, const std::string &Reason);
  bool step();

  const Program &P;
  PathTable &Paths;
  const LocationTable &Locs;

  std::vector<MemoryObject> Objects;
  std::map<const VarDecl *, uint32_t> GlobalObjects;
  std::map<unsigned, uint32_t> StringObjects; ///< literal id -> object.
  std::vector<Frame> Frames;
  RunResult Result;
  uint64_t MaxSteps = 50'000'000;
  unsigned MaxCallDepth = 1024;
  std::string Input;
  size_t InputPos = 0;
  uint64_t RandState = 0x2545F4914F6CDD1DULL;
  bool Aborted = false;
  /// Set when exit() unwinds the program; the run still counts as Ok.
  bool CleanExit = false;
};

} // namespace vdga

#endif // VDGA_INTERP_INTERPRETER_H
