//===- interp/Value.cpp ---------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

using namespace vdga;

bool Value::truthy() const {
  switch (K) {
  case Kind::Undef:
    return false;
  case Kind::Int:
    return I != 0;
  case Kind::Double:
    return D != 0.0;
  case Kind::Ptr:
    return !A.isNull();
  case Kind::Fn:
    return Fn != nullptr;
  }
  return false;
}

int64_t Value::asInt() const {
  switch (K) {
  case Kind::Int:
    return I;
  case Kind::Double:
    return static_cast<int64_t>(D);
  default:
    return 0;
  }
}

double Value::asDouble() const {
  switch (K) {
  case Kind::Int:
    return static_cast<double>(I);
  case Kind::Double:
    return D;
  default:
    return 0.0;
  }
}
