//===- contextsens/Solver.h - Context-sensitive analysis -------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The maximally context-sensitive version of the points-to analysis
/// (Section 4, Figure 5). It propagates qualified points-to pairs whose
/// assumption sets bind pairs to formal-parameter outputs; assumptions are
/// introduced at calls, chained (unioned) at lookups/updates, and
/// discharged at returns via a Cartesian product over the assumption sets
/// of satisfying actual pairs.
///
/// Three efficiency techniques from Section 4.2 are implemented and
/// individually toggleable for the ablation bench:
///   * subsumption  — (p, B) is discarded where (p, A), A subset-of B holds;
///   * single-location pruning — no location assumptions at memory
///     operations the CI analysis proved single-target;
///   * strong-update pruning — store pairs the CI analysis proves
///     unmodified by an update pass through without new assumptions.
///
/// Function-pointer handling stays context-insensitive, as in the paper
/// (Section 4.1's last paragraph).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CONTEXTSENS_SOLVER_H
#define VDGA_CONTEXTSENS_SOLVER_H

#include "contextsens/AssumptionSet.h"
#include "pointsto/Solver.h"
#include "support/DenseBitSet.h"
#include "support/SCC.h"

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

namespace vdga {

/// Toggles for the Section 4.2 efficiency techniques.
struct ContextSensOptions {
  bool UseSubsumption = true;
  bool PruneSingleLocation = true;
  bool PruneStrongUpdates = true;
  /// Safety valve for the ablation bench: abort (Completed = false) after
  /// this many transfer-function applications. 0 means unlimited.
  /// Equivalent to Budget.MaxIterations; kept for ablation-bench callers.
  uint64_t MaxTransferFns = 0;
  /// Resource governance (support/Budget.h). The CS solver additionally
  /// reports its assumption-set table size to the meter, so MaxAssumSets
  /// is meaningful here.
  ResourceBudget Budget;
  /// Solver engine (pointsto/Solver.h): Basic is the reference event
  /// worklist; Wave batches per-output (pair, assumption) deltas in
  /// topological waves; Deep additionally collapses *static* copy cycles
  /// (merge / pointer-arithmetic identities — call/return flows introduce
  /// or discharge assumptions here, so they are never copy edges).
  SolverStrategy Strategy = SolverStrategy::Basic;
};

/// The context-sensitive solution.
class ContextSensResult {
public:
  explicit ContextSensResult(size_t NumOutputs) : QP(NumOutputs) {}

  /// Qualified pairs on an output: pair -> minimal assumption sets.
  const std::map<PairId, std::vector<AssumSetId>> &
  qualified(OutputId Out) const {
    return QP[Out];
  }

  bool containsPair(OutputId Out, PairId Pair) const {
    return QP[Out].count(Pair) != 0;
  }

  /// Strips assumption sets, yielding an ordinary per-output points-to
  /// solution comparable against the context-insensitive one (Section 4.1's
  /// final paragraph).
  PointsToResult stripAssumptions() const;

  /// Turns on derivation recording; call before the first insert.
  void enableProvenance() {
    RecordProvenance = true;
    Derivs.resize(QP.size());
  }
  bool provenanceEnabled() const { return RecordProvenance; }

  /// The derivation recorded when \p Pair first appeared on \p Out (any
  /// assumption set), or null when absent or provenance was not enabled.
  const Derivation *derivation(OutputId Out, PairId Pair) const {
    if (!RecordProvenance || Out >= Derivs.size())
      return nullptr;
    auto It = Derivs[Out].find(Pair);
    return It == Derivs[Out].end() ? nullptr : &It->second;
  }

  /// Renders the qualified pairs on \p Out, one per line:
  /// "(p -> a) if {f0: (q -> b)}". Section 4.1 notes that some clients
  /// [PLR92, LRZ93] prefer to consume the qualified information directly;
  /// this is that access path (the structured data is `qualified()`).
  std::string renderQualified(OutputId Out, const PairTable &PT,
                              const PathTable &Paths,
                              const StringInterner &Names,
                              const AssumptionSetTable &AT) const;

  SolveStats Stats;
  /// False when any budget (including the legacy MaxTransferFns valve)
  /// ended the solve early; kept in sync with Status for old callers.
  bool Completed = true;
  SolveStatus Status = SolveStatus::Complete;
  BudgetTrip Trip = BudgetTrip::None;
  bool complete() const { return Status == SolveStatus::Complete; }

private:
  friend class ContextSensSolver;
  std::vector<std::map<PairId, std::vector<AssumSetId>>> QP;
  /// First derivation per (output, pair), recorded when the pair's first
  /// qualified instance arrives; empty unless provenance is enabled.
  std::vector<std::map<PairId, Derivation>> Derivs;
  bool RecordProvenance = false;
};

/// Runs the Figure 5 analysis. Requires the context-insensitive solution
/// (for the pruning optimizations; pass the same result with the prunings
/// disabled for the unoptimized ablation).
class ContextSensSolver {
public:
  ContextSensSolver(const Graph &G, PathTable &Paths, PairTable &PT,
                    AssumptionSetTable &AT, const PointsToResult &CI,
                    ContextSensOptions Options = {},
                    SolverObserver Obs = {});

  ContextSensResult solve();

private:
  struct Event {
    InputId In;
    PairId Pair;
    AssumSetId Assum;
  };

  void runBasic();
  void runWave();

  /// Representative output whose map stores \p Out's qualified pairs:
  /// identity except for static copy components under Deep.
  OutputId rep(OutputId Out) const {
    return Copies ? Copies->find(Out) : Out;
  }

  // Wave/Deep machinery (mirrors the CI engine; see pointsto/Solver.cpp).
  // There is no dynamic-edge path: dynamic call wiring is delivered
  // through the worklist, and the scheduling ranks stay the static
  // condensation (online rank repair costs more than it saves — see the
  // CI addDynamicEdge comment).
  void buildFlowGraphs();
  void scheduleOutput(OutputId Rep);
  bool deliverBatch(InputId In, OutputId SrcRep,
                    const std::vector<std::pair<PairId, AssumSetId>> &Batch);
  void finalizeCollapse();

  bool insert(OutputId Out, PairId Pair, AssumSetId Assum,
              const Derivation &D);
  void flowOut(OutputId Out, PairId Pair, AssumSetId Assum,
               const Derivation &D = {});
  void flowIn(const Event &E);

  /// Trace helpers; single null check when tracing is disabled.
  void tracePair(OutputId Out, PairId Pair);
  void tracePruned(const char *Rule, NodeId N, PairId Pair);

  void flowLookup(NodeId N, unsigned InIdx, PairId Pair, AssumSetId A);
  void flowUpdate(NodeId N, unsigned InIdx, PairId Pair, AssumSetId A);
  void flowOffset(NodeId N, PairId Pair, AssumSetId A);
  void flowCall(NodeId N, unsigned InIdx, PairId Pair, AssumSetId A);
  void flowReturn(NodeId N, unsigned InIdx, PairId Pair, AssumSetId A);

  void registerCallee(NodeId Call, const FunctionInfo *Info);
  void propagateActualsToCallee(NodeId Call, const FunctionInfo *Info);
  void replayCalleeReturns(NodeId Call, const FunctionInfo *Info);

  /// Figure 5's propagate-return: discharges \p Assum against the pairs on
  /// the call's actuals and emits requalified facts at \p Target.
  void propagateReturn(NodeId Call, OutputId Target, PairId Pair,
                       AssumSetId Assum, const Derivation &D = {});

  /// Maps a callee formal output to the caller-side producing output at
  /// this call site, or InvalidId when out of range.
  OutputId actualForFormal(NodeId Call, OutputId Formal) const;

  /// True if optimization (a) applies at memory node \p N: the CI
  /// analysis proved its location input single-target.
  bool dropLocAssumptions(NodeId N) const;
  /// True if optimization (b) proves store-pair path \p P untouched by the
  /// strong updates of node \p N.
  bool ciNeverStronglyOverwrites(NodeId N, PathId P) const;

  const std::map<PairId, std::vector<AssumSetId>> &
  qualifiedAtInput(NodeId N, unsigned Index) const {
    return Result.QP[rep(G.producerOf(N, Index))];
  }

  const Graph &G;
  PathTable &Paths;
  PairTable &PT;
  AssumptionSetTable &AT;
  const PointsToResult &CI;
  ContextSensOptions Options;
  SolverObserver Obs;
  ContextSensResult Result;
  /// Section 4.2 pruning activity, published as cs.* metrics.
  uint64_t SubsumptionDiscards = 0;
  uint64_t SingleLocPrunes = 0;
  uint64_t StrongUpdatePrunes = 0;

  std::deque<Event> Worklist;
  /// Hashed call-graph side tables; looked up by key only (never
  /// iterated), so hashing keeps runs deterministic.
  std::unordered_map<NodeId, std::vector<const FunctionInfo *>> CalleesOf;
  std::unordered_map<const FuncDecl *, std::vector<NodeId>> CallersOf;
  DenseBitSet IdentityCalls;
  /// Per memory node: CI referent set of the location input. Node ids are
  /// dense, so this is a flat vector gated by a membership bitset.
  std::vector<std::vector<PathId>> CILocSets;
  DenseBitSet HasCILocSet;

  //===--------------------------------------------------------------------===
  // Wave/Deep state (null / empty under Basic)
  //===--------------------------------------------------------------------===

  /// Topological rank of each output in the condensed value-flow graph,
  /// flattened out of a throwaway OnlineSCC at buildFlowGraphs() time
  /// (ranks never change: there is no dynamic-edge path here).
  std::vector<uint32_t> FlowRank;
  /// Deep only: static copy components sharing one qualified-pair map.
  /// Built once (no online merges: dynamic flows are never copies here).
  std::unique_ptr<OnlineSCC> Copies;
  /// Per-representative (pair, assumption set) facts inserted since that
  /// output's last flush. A vector, not a bitset: the delta is keyed by
  /// the (pair, assumption) product.
  std::vector<std::vector<std::pair<PairId, AssumSetId>>> DeltaQ;
  std::vector<std::pair<uint32_t, OutputId>> OutHeap;
  DenseBitSet QueuedOut;
  /// Deep only: consumers inherited from collapsed member outputs.
  std::vector<std::vector<InputId>> ExtraConsumers;
  uint64_t DeltaPairsFlowed = 0;
  uint64_t SccCollapsed = 0;
};

} // namespace vdga

#endif // VDGA_CONTEXTSENS_SOLVER_H
