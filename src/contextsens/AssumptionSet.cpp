//===- contextsens/AssumptionSet.cpp --------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "contextsens/AssumptionSet.h"

#include <algorithm>

using namespace vdga;

AssumptionSetTable::AssumptionSetTable() {
  Sets.emplace_back(); // Id 0: the empty set.
  Index.emplace(std::vector<Assumption>(), EmptyAssumSet);
}

AssumSetId AssumptionSetTable::intern(std::vector<Assumption> Elems) {
  std::sort(Elems.begin(), Elems.end());
  Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
  auto It = Index.find(Elems);
  if (It != Index.end())
    return It->second;
  auto Id = static_cast<AssumSetId>(Sets.size());
  Index.emplace(Elems, Id);
  Sets.push_back(std::move(Elems));
  return Id;
}

AssumSetId AssumptionSetTable::singleton(OutputId Formal, PairId Pair) {
  return intern({Assumption{Formal, Pair}});
}

AssumSetId AssumptionSetTable::unionSets(AssumSetId A, AssumSetId B) {
  if (A == B || B == EmptyAssumSet)
    return A;
  if (A == EmptyAssumSet)
    return B;
  if (A > B)
    std::swap(A, B);
  uint64_t Key = (uint64_t(A) << 32) | B;
  auto It = UnionCache.find(Key);
  if (It != UnionCache.end())
    return It->second;

  std::vector<Assumption> Merged;
  Merged.reserve(Sets[A].size() + Sets[B].size());
  std::set_union(Sets[A].begin(), Sets[A].end(), Sets[B].begin(),
                 Sets[B].end(), std::back_inserter(Merged));
  AssumSetId Id = intern(std::move(Merged));
  UnionCache.emplace(Key, Id);
  return Id;
}

bool AssumptionSetTable::isSubset(AssumSetId A, AssumSetId B) const {
  if (A == B || A == EmptyAssumSet)
    return true;
  const auto &SA = Sets[A];
  const auto &SB = Sets[B];
  if (SA.size() > SB.size())
    return false;
  return std::includes(SB.begin(), SB.end(), SA.begin(), SA.end());
}
