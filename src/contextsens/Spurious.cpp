//===- contextsens/Spurious.cpp -------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "contextsens/Spurious.h"

using namespace vdga;

SpuriousStats vdga::computeSpuriousStats(const Graph &G,
                                         const PointsToResult &CI,
                                         const PointsToResult &CSStripped,
                                         const PairTable &PT,
                                         const PathTable &Paths,
                                         const LocationTable &Locs) {
  SpuriousStats S;
  S.CITotals = computePairTotals(G, CI);
  S.CSTotals = computePairTotals(G, CSStripped);
  S.AllBreakdown = computePairBreakdown(G, CI, PT, Paths, Locs);

  for (OutputId O = 0; O < G.numOutputs(); ++O) {
    for (PairId Pair : CI.pairs(O)) {
      if (CSStripped.contains(O, Pair))
        continue;
      ++S.SpuriousTotal;
      const PointsToPair &P = PT.pair(Pair);
      auto PC = [&] {
        switch (Locs.classify(P.Path, Paths)) {
        case StorageClass::Offset:
          return PairBreakdown::POffset;
        case StorageClass::Local:
          return PairBreakdown::PLocal;
        case StorageClass::Heap:
          return PairBreakdown::PHeap;
        default:
          return PairBreakdown::PGlobal;
        }
      }();
      auto RC = [&] {
        switch (Locs.classify(P.Referent, Paths)) {
        case StorageClass::Function:
          return PairBreakdown::RFunction;
        case StorageClass::Local:
          return PairBreakdown::RLocal;
        case StorageClass::Heap:
          return PairBreakdown::RHeap;
        default:
          return PairBreakdown::RGlobal;
        }
      }();
      ++S.SpuriousBreakdown.Counts[PC][RC];
    }
    for (PairId Pair : CSStripped.pairs(O))
      if (!CI.contains(O, Pair))
        ++S.ContainmentViolations;
  }

  uint64_t CITotal = S.CITotals.total();
  S.SpuriousPercent =
      CITotal ? 100.0 * static_cast<double>(S.SpuriousTotal) / CITotal : 0.0;
  return S;
}

unsigned vdga::countIndirectOpsWhereCSWins(const Graph &G,
                                           const PointsToResult &CI,
                                           const PointsToResult &CSStripped,
                                           const PairTable &PT) {
  unsigned Wins = 0;
  for (bool Writes : {false, true}) {
    auto CISites = indirectOpLocations(G, CI, PT, Writes);
    auto CSSites = indirectOpLocations(G, CSStripped, PT, Writes);
    assert(CISites.size() == CSSites.size() &&
           "site enumeration must be deterministic");
    for (size_t I = 0; I < CISites.size(); ++I)
      if (CSSites[I].second.size() < CISites[I].second.size())
        ++Wins;
  }
  return Wins;
}
