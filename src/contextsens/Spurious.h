//===- contextsens/Spurious.h - CI vs CS comparison ------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Comparison of the context-insensitive and (stripped) context-sensitive
/// solutions: the pairs found only by the CI analysis are *spurious*
/// (Section 4.3, Figures 6 and 7). Also checks the containment invariant
/// CS subset-of CI that makes "spurious" well-defined, and compares the two
/// solutions at the location inputs of indirect memory operations — the
/// paper's headline measurement.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CONTEXTSENS_SPURIOUS_H
#define VDGA_CONTEXTSENS_SPURIOUS_H

#include "contextsens/Solver.h"
#include "pointsto/Statistics.h"

namespace vdga {

/// Figure 6 row plus the Figure 7 spurious matrix for one program.
struct SpuriousStats {
  PairTotals CITotals;
  PairTotals CSTotals;
  uint64_t SpuriousTotal = 0;
  double SpuriousPercent = 0.0;
  /// Pair instances found by CS but not CI: must be zero (containment).
  uint64_t ContainmentViolations = 0;
  PairBreakdown AllBreakdown;      ///< Figure 7, top half (all CI pairs).
  PairBreakdown SpuriousBreakdown; ///< Figure 7, bottom half.
};

SpuriousStats computeSpuriousStats(const Graph &G, const PointsToResult &CI,
                                   const PointsToResult &CSStripped,
                                   const PairTable &PT,
                                   const PathTable &Paths,
                                   const LocationTable &Locs);

/// The paper's headline check: do CI and CS agree on the location sets of
/// every indirect memory operation? Returns the number of indirect ops
/// where CS is strictly more precise (0 reproduces the paper's result).
unsigned countIndirectOpsWhereCSWins(const Graph &G,
                                     const PointsToResult &CI,
                                     const PointsToResult &CSStripped,
                                     const PairTable &PT);

} // namespace vdga

#endif // VDGA_CONTEXTSENS_SPURIOUS_H
