//===- contextsens/Solver.cpp ---------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "contextsens/Solver.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace vdga;

std::string ContextSensResult::renderQualified(
    OutputId Out, const PairTable &PT, const PathTable &Paths,
    const StringInterner &Names, const AssumptionSetTable &AT) const {
  std::string S;
  for (const auto &[Pair, Sets] : QP[Out]) {
    for (AssumSetId A : Sets) {
      S += PT.str(Pair, Paths, Names);
      const auto &Elems = AT.elements(A);
      if (!Elems.empty()) {
        S += " if {";
        for (size_t I = 0; I < Elems.size(); ++I) {
          if (I)
            S += ", ";
          S += "o" + std::to_string(Elems[I].Formal) + ": " +
               PT.str(Elems[I].Pair, Paths, Names);
        }
        S += "}";
      }
      S += "\n";
    }
  }
  return S;
}

PointsToResult ContextSensResult::stripAssumptions() const {
  PointsToResult R(QP.size());
  for (OutputId O = 0; O < QP.size(); ++O)
    for (const auto &[Pair, Sets] : QP[O])
      R.insert(O, Pair);
  return R;
}

ContextSensSolver::ContextSensSolver(const Graph &G, PathTable &Paths,
                                     PairTable &PT, AssumptionSetTable &AT,
                                     const PointsToResult &CI,
                                     ContextSensOptions Options,
                                     SolverObserver Obs)
    : G(G), Paths(Paths), PT(PT), AT(AT), CI(CI), Options(Options), Obs(Obs),
      Result(G.numOutputs()) {
  if (Obs.RecordProvenance)
    Result.enableProvenance();
  // Precompute the CI location sets of every memory operation for the
  // Section 4.2 prunings.
  if (Options.PruneSingleLocation || Options.PruneStrongUpdates) {
    CILocSets.resize(G.numNodes());
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      NodeKind K = G.node(N).Kind;
      if (K != NodeKind::Lookup && K != NodeKind::Update)
        continue;
      CILocSets[N] = CI.pointerReferents(G.producerOf(N, 0), PT);
      HasCILocSet.insert(N);
    }
  }
}

bool ContextSensSolver::dropLocAssumptions(NodeId N) const {
  if (!Options.PruneSingleLocation)
    return false;
  return HasCILocSet.contains(N) && CILocSets[N].size() <= 1;
}

bool ContextSensSolver::ciNeverStronglyOverwrites(NodeId N, PathId P) const {
  if (!Options.PruneStrongUpdates || !HasCILocSet.contains(N))
    return false;
  // An empty CI location set means the reference analysis never passes any
  // store pair through this update at all (the write has no modeled
  // target, e.g. in a function that is never called). The assumption-free
  // shortcut below is justified by CI having already propagated the pair;
  // taking it here would manufacture pairs CI lacks and break the
  // CS ⊆ CI containment invariant.
  if (CILocSets[N].empty())
    return false;
  for (PathId Loc : CILocSets[N])
    if (Paths.strongDom(Loc, P))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

ContextSensResult ContextSensSolver::solve() {
  if (Options.Strategy == SolverStrategy::Basic)
    runBasic();
  else
    runWave();

  if (!Result.complete()) {
    if (Obs.Metrics)
      Obs.Metrics->add("cs.budget_trips", 1);
    if (Obs.Events)
      Obs.Events->event("budget_trip")
          .field("solver", "cs")
          .field("trip", budgetTripName(Result.Trip))
          .field("status", solveStatusName(Result.Status))
          .field("transfer_fns", Result.Stats.TransferFns)
          .field("pairs_inserted", Result.Stats.PairsInserted)
          .field("assum_sets", uint64_t(AT.numSets()));
  }
  if (Obs.Metrics) {
    Obs.Metrics->add("cs.transfer_fns", Result.Stats.TransferFns);
    Obs.Metrics->add("cs.meet_ops", Result.Stats.MeetOps);
    Obs.Metrics->add("cs.pairs_inserted", Result.Stats.PairsInserted);
    Obs.Metrics->add("cs.subsumption_discards", SubsumptionDiscards);
    Obs.Metrics->add("cs.single_loc_prunes", SingleLocPrunes);
    Obs.Metrics->add("cs.strong_update_prunes", StrongUpdatePrunes);
    Obs.Metrics->set("cs.solver.strategy", uint64_t(Options.Strategy));
    Obs.Metrics->add("cs.delta_pairs_flowed", DeltaPairsFlowed);
    Obs.Metrics->add("cs.scc_collapsed", SccCollapsed);
  }
  return std::move(Result);
}

void ContextSensSolver::runBasic() {
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Kind != NodeKind::ConstPath)
      continue;
    flowOut(G.outputOf(N),
            PT.intern(PathTable::emptyPath(), Node.Path), EmptyAssumSet,
            {N});
  }

  BudgetMeter Meter(Options.Budget);
  while (!Worklist.empty()) {
    // Poll at the event boundary (before the pop): qualified pairs are
    // only ever added, so everything inserted so far belongs to the fixed
    // point; the assumption-set table size is this solver's dominant
    // memory axis and is reported to the meter alongside the counters.
    BudgetTrip T = Meter.poll(Result.Stats.TransferFns,
                              Result.Stats.PairsInserted, AT.numSets());
    if (T != BudgetTrip::None) {
      Result.Status = statusForTrip(T);
      Result.Trip = T;
      Result.Completed = false;
      break;
    }
    Event E = Worklist.front();
    Worklist.pop_front();
    ++Result.Stats.TransferFns;
    if (Options.MaxTransferFns &&
        Result.Stats.TransferFns > Options.MaxTransferFns) {
      Result.Completed = false;
      Result.Status = SolveStatus::BudgetExceeded;
      Result.Trip = BudgetTrip::Iterations;
      break;
    }
    flowIn(E);
  }
}

//===----------------------------------------------------------------------===//
// Wave/Deep engine
//===----------------------------------------------------------------------===//
//
// The context-sensitive mirror of the CI wave engine (pointsto/Solver.cpp):
// outputs queue in topological rank of the value-flow condensation, and a
// dequeued output flushes the (pair, assumption-set) facts inserted since
// its last flush to every consumer as one batch. Two CS-specific twists:
//
//   * The delta is a vector of (PairId, AssumSetId) records, not a pair
//     bitset — the propagated fact is the qualified instance, and the same
//     pair legitimately recurs with different assumption sets.
//   * The copy condensation (Deep) is purely static. Call and return
//     flows *change* the fact — actuals-to-formals introduces a fresh
//     singleton assumption and propagate-return discharges assumptions —
//     so only merge / no-op pointer-arithmetic identities qualify, all of
//     which are known before the first insert. No online merges means no
//     reconcile step: the components are condensed on empty maps.
//
// The fixed point (the minimal assumption antichain per output and pair)
// is schedule-independent, so all strategies agree; the strategy fuzz
// oracle and the equivalence suite enforce this.

void ContextSensSolver::runWave() {
  DeltaQ.resize(G.numOutputs());
  buildFlowGraphs();

  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Kind != NodeKind::ConstPath)
      continue;
    flowOut(G.outputOf(N),
            PT.intern(PathTable::emptyPath(), Node.Path), EmptyAssumSet,
            {N});
  }

  BudgetMeter Meter(Options.Budget);
  std::vector<std::pair<PairId, AssumSetId>> Batch;
  bool KeepGoing = true;
  while (KeepGoing && !OutHeap.empty()) {
    BudgetTrip T = Meter.poll(Result.Stats.TransferFns,
                              Result.Stats.PairsInserted, AT.numSets());
    if (T != BudgetTrip::None) {
      Result.Status = statusForTrip(T);
      Result.Trip = T;
      Result.Completed = false;
      break;
    }
    std::pop_heap(OutHeap.begin(), OutHeap.end(),
                  std::greater<std::pair<uint32_t, OutputId>>());
    OutputId Out = OutHeap.back().second;
    OutHeap.pop_back();
    // A clear QueuedOut bit marks a stale heap entry.
    if (!QueuedOut.erase(Out))
      continue;
    Batch.clear();
    Batch.swap(DeltaQ[Out]);
    DeltaPairsFlowed += Batch.size();
    const std::vector<InputId> &Consumers = G.output(Out).Consumers;
    for (size_t I = 0; KeepGoing && I < Consumers.size(); ++I)
      KeepGoing = deliverBatch(Consumers[I], Out, Batch);
    if (Copies) {
      const std::vector<InputId> &Extra = ExtraConsumers[Out];
      for (size_t I = 0; KeepGoing && I < Extra.size(); ++I)
        KeepGoing = deliverBatch(Extra[I], Out, Batch);
    }
  }
  finalizeCollapse();
}

void ContextSensSolver::buildFlowGraphs() {
  // Both condensations are sealed here: no dynamic edge ever arrives (see
  // the class comment), so neither needs the online-repair adjacency.
  OnlineSCC Flow(static_cast<uint32_t>(G.numOutputs()), /*Sealed=*/true);
  if (Options.Strategy == SolverStrategy::Deep)
    Copies = std::make_unique<OnlineSCC>(
        static_cast<uint32_t>(G.numOutputs()), /*Sealed=*/true);
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    // Same static edge set as the CI engine; see the copy-edge rationale
    // there and in the engine comment above.
    auto Add = [&](unsigned Idx, bool Copy) {
      OutputId P = G.producerOf(N, Idx);
      if (P == InvalidId)
        return;
      Flow.addInitialEdge(P, G.outputOf(N));
      if (Copy && Copies)
        Copies->addInitialEdge(P, G.outputOf(N));
    };
    switch (Node.Kind) {
    case NodeKind::Lookup:
      Add(0, false);
      Add(1, false);
      break;
    case NodeKind::Update:
      Add(0, false);
      Add(1, false);
      Add(2, false);
      break;
    case NodeKind::Offset:
      Add(0, false);
      break;
    case NodeKind::Merge:
      for (unsigned I = 0; I < Node.Inputs.size(); ++I)
        Add(I, true);
      break;
    case NodeKind::PtrArith:
      Add(0, true);
      break;
    default:
      break;
    }
  }
  Flow.build();
  FlowRank.resize(G.numOutputs());
  for (OutputId O = 0; O < G.numOutputs(); ++O)
    FlowRank[O] = Flow.rank(O);
  if (Copies) {
    Copies->build();
    // Collapse happens before the first insert, so there is nothing to
    // reconcile — just teach each representative about the consumers of
    // the members it absorbed.
    ExtraConsumers.resize(G.numOutputs());
    for (OutputId O = 0; O < G.numOutputs(); ++O) {
      OutputId R = Copies->find(O);
      if (R == O)
        continue;
      ++SccCollapsed;
      std::vector<InputId> &EW = ExtraConsumers[R];
      const std::vector<InputId> &C = G.output(O).Consumers;
      EW.insert(EW.end(), C.begin(), C.end());
    }
  }
}

void ContextSensSolver::scheduleOutput(OutputId Rep) {
  if (!QueuedOut.insert(Rep))
    return;
  OutHeap.push_back({FlowRank[Rep], Rep});
  std::push_heap(OutHeap.begin(), OutHeap.end(),
                 std::greater<std::pair<uint32_t, OutputId>>());
}

bool ContextSensSolver::deliverBatch(
    InputId In, OutputId SrcRep,
    const std::vector<std::pair<PairId, AssumSetId>> &Batch) {
  if (Copies) {
    // Intra-component copy consumer: source and target share one map, so
    // every qualified instance would be subsumption-discarded verbatim.
    const InputInfo &Info = G.input(In);
    const Node &Node = G.node(Info.Node);
    bool PureCopy = Node.Kind == NodeKind::Merge ||
                    (Node.Kind == NodeKind::PtrArith && Info.Index == 0);
    if (PureCopy && Copies->find(G.outputOf(Info.Node)) == SrcRep)
      return true;
  }
  for (const auto &[Pair, Assum] : Batch) {
    ++Result.Stats.TransferFns;
    // The legacy ablation valve counts deliveries, matching Basic's
    // per-event accounting; the tripped fact stays unprocessed.
    if (Options.MaxTransferFns &&
        Result.Stats.TransferFns > Options.MaxTransferFns) {
      Result.Completed = false;
      Result.Status = SolveStatus::BudgetExceeded;
      Result.Trip = BudgetTrip::Iterations;
      return false;
    }
    flowIn({In, Pair, Assum});
  }
  return true;
}

void ContextSensSolver::finalizeCollapse() {
  if (!Copies)
    return;
  // Materialize each member's view of its component's shared qualified
  // map, preserving the per-output contract of qualified()/derivation().
  for (OutputId O = 0; O < G.numOutputs(); ++O) {
    OutputId R = Copies->find(O);
    if (R == O)
      continue;
    Result.QP[O] = Result.QP[R];
    if (Result.provenanceEnabled())
      Result.Derivs[O] = Result.Derivs[R];
  }
}

bool ContextSensSolver::insert(OutputId Out, PairId Pair, AssumSetId Assum,
                               const Derivation &D) {
  auto &Sets = Result.QP[Out][Pair];
  bool NewPair = Sets.empty();
  if (Options.UseSubsumption) {
    for (AssumSetId Existing : Sets)
      if (AT.isSubset(Existing, Assum)) {
        ++SubsumptionDiscards;
        if (Obs.Events)
          tracePruned("subsumption", G.output(Out).Node, Pair);
        return false;
      }
    // Remove supersets of the incoming set.
    Sets.erase(std::remove_if(Sets.begin(), Sets.end(),
                              [&](AssumSetId Existing) {
                                return AT.isSubset(Assum, Existing);
                              }),
               Sets.end());
  } else if (std::find(Sets.begin(), Sets.end(), Assum) != Sets.end()) {
    return false;
  }
  Sets.push_back(Assum);
  if (NewPair) {
    if (Result.provenanceEnabled())
      Result.Derivs[Out].emplace(Pair, D);
    if (Obs.Events)
      tracePair(Out, Pair);
  }
  return true;
}

void ContextSensSolver::flowOut(OutputId Out, PairId Pair, AssumSetId Assum,
                                const Derivation &D) {
  ++Result.Stats.MeetOps;
  if (Options.Strategy == SolverStrategy::Basic) {
    if (!insert(Out, Pair, Assum, D))
      return;
    ++Result.Stats.PairsInserted;
    for (InputId Consumer : G.output(Out).Consumers)
      Worklist.push_back({Consumer, Pair, Assum});
    return;
  }
  // Wave/Deep: record the surviving instance in the (representative)
  // output's delta and queue the output itself.
  OutputId R = rep(Out);
  if (!insert(R, Pair, Assum, D))
    return;
  ++Result.Stats.PairsInserted;
  DeltaQ[R].push_back({Pair, Assum});
  scheduleOutput(R);
}

void ContextSensSolver::tracePair(OutputId Out, PairId Pair) {
  const OutputInfo &Info = G.output(Out);
  const Node &N = G.node(Info.Node);
  const PointsToPair &P = PT.pair(Pair);
  Trace::Event E = Obs.Events->event("pair_introduced");
  E.field("solver", "cs")
      .field("out", uint64_t(Out))
      .field("node", uint64_t(Info.Node))
      .field("kind", nodeKindName(N.Kind))
      .field("line", uint64_t(N.Loc.Line))
      .field("pair", uint64_t(Pair))
      .field("path", uint64_t(index(P.Path)))
      .field("referent", uint64_t(index(P.Referent)));
  if (Paths.isLocation(P.Referent))
    E.field("referent_base", Paths.base(Paths.baseOf(P.Referent)).Name);
}

void ContextSensSolver::tracePruned(const char *Rule, NodeId N, PairId Pair) {
  Obs.Events->event("assumption_pruned")
      .field("solver", "cs")
      .field("rule", Rule)
      .field("node", uint64_t(N))
      .field("line", uint64_t(G.node(N).Loc.Line))
      .field("pair", uint64_t(Pair));
}

void ContextSensSolver::flowIn(const Event &E) {
  const InputInfo &Info = G.input(E.In);
  NodeId N = Info.Node;
  unsigned Idx = Info.Index;

  switch (G.node(N).Kind) {
  case NodeKind::Lookup:
    flowLookup(N, Idx, E.Pair, E.Assum);
    return;
  case NodeKind::Update:
    flowUpdate(N, Idx, E.Pair, E.Assum);
    return;
  case NodeKind::Offset:
    flowOffset(N, E.Pair, E.Assum);
    return;
  case NodeKind::Merge:
    flowOut(G.outputOf(N), E.Pair, E.Assum,
            {N, G.producerOf(N, Idx), E.Pair});
    return;
  case NodeKind::PtrArith:
    if (Idx == 0)
      flowOut(G.outputOf(N), E.Pair, E.Assum,
              {N, G.producerOf(N, 0), E.Pair});
    return;
  case NodeKind::ScalarOp:
    return;
  case NodeKind::Call:
    flowCall(N, Idx, E.Pair, E.Assum);
    return;
  case NodeKind::Return:
    flowReturn(N, Idx, E.Pair, E.Assum);
    return;
  case NodeKind::ConstScalar:
  case NodeKind::ConstPath:
  case NodeKind::Entry:
  case NodeKind::InitStore:
    assert(false && "node kind takes no inputs");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Memory operations (Figure 5)
//===----------------------------------------------------------------------===//

void ContextSensSolver::flowLookup(NodeId N, unsigned InIdx, PairId Pair,
                                   AssumSetId A) {
  OutputId Out = G.outputOf(N);
  const PointsToPair &P = PT.pair(Pair);
  bool DropLoc = dropLocAssumptions(N);

  if (InIdx == 0) {
    if (P.Path != PathTable::emptyPath())
      return;
    PathId Loc = P.Referent;
    AssumSetId AL = DropLoc ? EmptyAssumSet : A;
    if (DropLoc && A != EmptyAssumSet) {
      ++SingleLocPrunes;
      if (Obs.Events)
        tracePruned("single_loc", N, Pair);
    }
    for (const auto &[SPairId, SSets] : qualifiedAtInput(N, 1)) {
      const PointsToPair &S = PT.pair(SPairId);
      if (!Paths.dom(Loc, S.Path))
        continue;
      PairId OutPair =
          PT.intern(Paths.subtractPrefix(S.Path, Loc).value(), S.Referent);
      for (AssumSetId AS : SSets)
        flowOut(Out, OutPair, AT.unionSets(AL, AS),
                {N, G.producerOf(N, 1), SPairId, G.producerOf(N, 0), Pair});
    }
    return;
  }

  assert(InIdx == 1 && "lookup has two inputs");
  for (const auto &[LPairId, LSets] : qualifiedAtInput(N, 0)) {
    const PointsToPair &L = PT.pair(LPairId);
    if (L.Path != PathTable::emptyPath())
      continue;
    if (!Paths.dom(L.Referent, P.Path))
      continue;
    PairId OutPair =
        PT.intern(Paths.subtractPrefix(P.Path, L.Referent).value(), P.Referent);
    Derivation D{N, G.producerOf(N, 1), Pair, G.producerOf(N, 0), LPairId};
    if (DropLoc) {
      ++SingleLocPrunes;
      if (Obs.Events)
        tracePruned("single_loc", N, LPairId);
      flowOut(Out, OutPair, A, D);
      continue;
    }
    for (AssumSetId AL : LSets)
      flowOut(Out, OutPair, AT.unionSets(AL, A), D);
  }
}

void ContextSensSolver::flowUpdate(NodeId N, unsigned InIdx, PairId Pair,
                                   AssumSetId A) {
  OutputId Out = G.outputOf(N);
  const PointsToPair &P = PT.pair(Pair);
  bool DropLoc = dropLocAssumptions(N);

  switch (InIdx) {
  case 0: {
    if (P.Path != PathTable::emptyPath())
      return;
    PathId Loc = P.Referent;
    AssumSetId AL = DropLoc ? EmptyAssumSet : A;
    if (DropLoc && A != EmptyAssumSet) {
      ++SingleLocPrunes;
      if (Obs.Events)
        tracePruned("single_loc", N, Pair);
    }
    // (a) Write every known value at this location.
    for (const auto &[VPairId, VSets] : qualifiedAtInput(N, 2)) {
      const PointsToPair &V = PT.pair(VPairId);
      PairId OutPair =
          PT.intern(Paths.appendPath(Loc, V.Path), V.Referent);
      for (AssumSetId AV : VSets)
        flowOut(Out, OutPair, AT.unionSets(AL, AV),
                {N, G.producerOf(N, 2), VPairId, G.producerOf(N, 0), Pair});
    }
    // (b) Pass through store pairs this location does not strongly
    // overwrite. Pairs the CI analysis proves never strongly overwritten
    // here were already propagated assumption-free by the store rule.
    for (const auto &[SPairId, SSets] : qualifiedAtInput(N, 1)) {
      const PointsToPair &S = PT.pair(SPairId);
      if (ciNeverStronglyOverwrites(N, S.Path))
        continue; // Handled without location assumptions.
      if (Paths.strongDom(Loc, S.Path))
        continue;
      for (AssumSetId AS : SSets)
        flowOut(Out, SPairId, AT.unionSets(AL, AS),
                {N, G.producerOf(N, 1), SPairId, G.producerOf(N, 0), Pair});
    }
    return;
  }
  case 1: {
    // New store pair.
    if (ciNeverStronglyOverwrites(N, P.Path)) {
      // Optimization (b): provably unmodified; no location assumptions.
      ++StrongUpdatePrunes;
      if (Obs.Events)
        tracePruned("strong_update", N, Pair);
      flowOut(Out, Pair, A, {N, G.producerOf(N, 1), Pair});
      return;
    }
    AssumSetId AS = A;
    for (const auto &[LPairId, LSets] : qualifiedAtInput(N, 0)) {
      const PointsToPair &L = PT.pair(LPairId);
      if (L.Path != PathTable::emptyPath())
        continue;
      if (Paths.strongDom(L.Referent, P.Path))
        continue;
      Derivation D{N, G.producerOf(N, 1), Pair, G.producerOf(N, 0),
                   LPairId};
      if (DropLoc) {
        ++SingleLocPrunes;
        if (Obs.Events)
          tracePruned("single_loc", N, LPairId);
        flowOut(Out, Pair, AS, D);
        continue;
      }
      for (AssumSetId AL : LSets)
        flowOut(Out, Pair, AT.unionSets(AL, AS), D);
    }
    return;
  }
  case 2: {
    // New value pair.
    AssumSetId AV = A;
    for (const auto &[LPairId, LSets] : qualifiedAtInput(N, 0)) {
      const PointsToPair &L = PT.pair(LPairId);
      if (L.Path != PathTable::emptyPath())
        continue;
      PairId OutPair =
          PT.intern(Paths.appendPath(L.Referent, P.Path), P.Referent);
      Derivation D{N, G.producerOf(N, 2), Pair, G.producerOf(N, 0),
                   LPairId};
      if (DropLoc) {
        ++SingleLocPrunes;
        if (Obs.Events)
          tracePruned("single_loc", N, LPairId);
        flowOut(Out, OutPair, AV, D);
        continue;
      }
      for (AssumSetId AL : LSets)
        flowOut(Out, OutPair, AT.unionSets(AL, AV), D);
    }
    return;
  }
  default:
    assert(false && "update has three inputs");
  }
}

void ContextSensSolver::flowOffset(NodeId N, PairId Pair, AssumSetId A) {
  const Node &Node = G.node(N);
  const PointsToPair &P = PT.pair(Pair);
  if (P.Path != PathTable::emptyPath())
    return;
  if (Node.OpIsNoop) {
    flowOut(G.outputOf(N), Pair, A, {N, G.producerOf(N, 0), Pair});
    return;
  }
  PathId NewRef = Paths.append(P.Referent, Node.Op);
  flowOut(G.outputOf(N), PT.intern(PathTable::emptyPath(), NewRef), A,
          {N, G.producerOf(N, 0), Pair});
}

//===----------------------------------------------------------------------===//
// Calls and returns (Figure 5)
//===----------------------------------------------------------------------===//

OutputId ContextSensSolver::actualForFormal(NodeId Call,
                                            OutputId Formal) const {
  const OutputInfo &Info = G.output(Formal);
  const Node &EntryNode = G.node(Info.Node);
  assert(EntryNode.Kind == NodeKind::Entry &&
         "assumption formal is not an entry output");
  const Node &CallNode = G.node(Call);
  unsigned NumFormals =
      static_cast<unsigned>(EntryNode.Outputs.size()) - 1;
  unsigned NumActuals = static_cast<unsigned>(CallNode.Inputs.size()) - 2;
  if (Info.Index == NumFormals) // Store formal <- call's store input.
    return G.producerOf(Call,
                        static_cast<unsigned>(CallNode.Inputs.size()) - 1);
  if (Info.Index >= NumActuals)
    return InvalidId;
  return G.producerOf(Call, Info.Index + 1);
}

void ContextSensSolver::propagateReturn(NodeId Call, OutputId Target,
                                        PairId Pair, AssumSetId Assum,
                                        const Derivation &D) {
  const std::vector<Assumption> &Elems = AT.elements(Assum);
  if (Elems.empty()) {
    flowOut(Target, Pair, EmptyAssumSet, D);
    return;
  }

  // For each assumption, the candidate caller-side assumption sets that
  // satisfy it at this call site.
  std::vector<const std::vector<AssumSetId> *> Choices;
  Choices.reserve(Elems.size());
  for (const Assumption &Asm : Elems) {
    OutputId Actual = actualForFormal(Call, Asm.Formal);
    if (Actual == InvalidId)
      return; // Arity mismatch: cannot be satisfied here.
    const auto &QPActual = Result.QP[rep(Actual)];
    auto It = QPActual.find(Asm.Pair);
    if (It == QPActual.end())
      return; // Assumption not satisfied at this call site (yet).
    Choices.push_back(&It->second);
  }

  // Cartesian product of the choices; union each combination.
  std::vector<AssumSetId> Produced;
  std::vector<size_t> Cursor(Choices.size(), 0);
  for (;;) {
    AssumSetId Combined = EmptyAssumSet;
    for (size_t I = 0; I < Choices.size(); ++I)
      Combined = AT.unionSets(Combined, (*Choices[I])[Cursor[I]]);
    if (std::find(Produced.begin(), Produced.end(), Combined) ==
        Produced.end()) {
      Produced.push_back(Combined);
      flowOut(Target, Pair, Combined, D);
    }
    // Advance the mixed-radix cursor.
    size_t I = 0;
    for (; I < Cursor.size(); ++I) {
      if (++Cursor[I] < Choices[I]->size())
        break;
      Cursor[I] = 0;
    }
    if (I == Cursor.size())
      return;
  }
}

void ContextSensSolver::replayCalleeReturns(NodeId Call,
                                            const FunctionInfo *Info) {
  const Node &CallNode = G.node(Call);
  const Node &RetNode = G.node(Info->ReturnNode);

  if (RetNode.HasValue && CallNode.HasResult) {
    OutputId Target = G.outputOf(Call, 0);
    for (const auto &[Pair, Sets] :
         qualifiedAtInput(Info->ReturnNode, 0))
      for (AssumSetId A : Sets)
        propagateReturn(Call, Target, Pair, A,
                        {Call, G.producerOf(Info->ReturnNode, 0), Pair});
  }
  unsigned RetStoreIdx = RetNode.HasValue ? 1 : 0;
  OutputId StoreTarget = G.outputOf(Call, CallNode.HasResult ? 1 : 0);
  for (const auto &[Pair, Sets] :
       qualifiedAtInput(Info->ReturnNode, RetStoreIdx))
    for (AssumSetId A : Sets)
      propagateReturn(
          Call, StoreTarget, Pair, A,
          {Call, G.producerOf(Info->ReturnNode, RetStoreIdx), Pair});
}

void ContextSensSolver::propagateActualsToCallee(NodeId Call,
                                                 const FunctionInfo *Info) {
  const Node &CallNode = G.node(Call);
  unsigned NumActuals = static_cast<unsigned>(CallNode.Inputs.size()) - 2;
  NodeId Entry = Info->EntryNode;
  unsigned NumFormals = Info->NumParams;

  for (unsigned I = 0; I < std::min(NumActuals, NumFormals); ++I) {
    OutputId Formal = G.outputOf(Entry, I);
    for (const auto &[Pair, Sets] : qualifiedAtInput(Call, I + 1)) {
      (void)Sets;
      flowOut(Formal, Pair, AT.singleton(Formal, Pair),
              {Call, G.producerOf(Call, I + 1), Pair});
    }
  }
  OutputId StoreFormal = G.outputOf(Entry, NumFormals);
  unsigned StoreIdx = static_cast<unsigned>(CallNode.Inputs.size()) - 1;
  for (const auto &[Pair, Sets] : qualifiedAtInput(Call, StoreIdx)) {
    (void)Sets;
    flowOut(StoreFormal, Pair, AT.singleton(StoreFormal, Pair),
            {Call, G.producerOf(Call, StoreIdx), Pair});
  }
}

void ContextSensSolver::registerCallee(NodeId Call,
                                       const FunctionInfo *Info) {
  auto &List = CalleesOf[Call];
  if (std::find(List.begin(), List.end(), Info) != List.end())
    return;
  List.push_back(Info);
  CallersOf[Info->Fn].push_back(Call);
  propagateActualsToCallee(Call, Info);
  replayCalleeReturns(Call, Info);
}

void ContextSensSolver::flowCall(NodeId N, unsigned InIdx, PairId Pair,
                                 AssumSetId A) {
  const Node &CallNode = G.node(N);
  unsigned LastIdx = static_cast<unsigned>(CallNode.Inputs.size()) - 1;
  const PointsToPair &P = PT.pair(Pair);

  if (InIdx == 0) {
    // Function values are handled context-insensitively, as in the paper:
    // any function pair names a callee regardless of its assumptions.
    if (P.Path != PathTable::emptyPath() || !Paths.isLocation(P.Referent))
      return;
    const BaseLocation &Base = Paths.base(Paths.baseOf(P.Referent));
    if (Base.Kind != BaseLocKind::Function)
      return;
    const FunctionInfo *Info = G.functionInfo(Base.Fn);
    if (!Info) {
      if (IdentityCalls.insert(N)) {
        OutputId StoreOut = G.outputOf(N, CallNode.HasResult ? 1 : 0);
        for (const auto &[SPair, SSets] : qualifiedAtInput(N, LastIdx))
          for (AssumSetId SA : SSets)
            flowOut(StoreOut, SPair, SA,
                    {N, G.producerOf(N, LastIdx), SPair});
      }
      return;
    }
    registerCallee(N, Info);
    return;
  }

  if (InIdx == LastIdx) {
    for (const FunctionInfo *Info : CalleesOf[N]) {
      OutputId StoreFormal =
          G.outputOf(Info->EntryNode, Info->NumParams);
      flowOut(StoreFormal, Pair, AT.singleton(StoreFormal, Pair),
              {N, G.producerOf(N, InIdx), Pair});
      // A new actual pair may satisfy return assumptions that previously
      // failed; replay the callee's returned pairs.
      replayCalleeReturns(N, Info);
    }
    if (IdentityCalls.contains(N))
      flowOut(G.outputOf(N, CallNode.HasResult ? 1 : 0), Pair, A,
              {N, G.producerOf(N, InIdx), Pair});
    return;
  }

  unsigned ActualIdx = InIdx - 1;
  for (const FunctionInfo *Info : CalleesOf[N]) {
    if (ActualIdx < Info->NumParams) {
      OutputId Formal = G.outputOf(Info->EntryNode, ActualIdx);
      flowOut(Formal, Pair, AT.singleton(Formal, Pair),
              {N, G.producerOf(N, InIdx), Pair});
    }
    replayCalleeReturns(N, Info);
  }
}

void ContextSensSolver::flowReturn(NodeId N, unsigned InIdx, PairId Pair,
                                   AssumSetId A) {
  const Node &RetNode = G.node(N);
  auto It = CallersOf.find(RetNode.Owner);
  if (It == CallersOf.end())
    return;
  bool IsValue = RetNode.HasValue && InIdx == 0;
  for (NodeId Call : It->second) {
    const Node &CallNode = G.node(Call);
    if (IsValue) {
      if (CallNode.HasResult)
        propagateReturn(Call, G.outputOf(Call, 0), Pair, A,
                        {Call, G.producerOf(N, InIdx), Pair});
    } else {
      propagateReturn(Call, G.outputOf(Call, CallNode.HasResult ? 1 : 0),
                      Pair, A, {Call, G.producerOf(N, InIdx), Pair});
    }
  }
}
