//===- contextsens/AssumptionSet.h - Qualified-pair assumptions -*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The context-sensitive analysis (Section 4) propagates *qualified*
/// points-to pairs: an ordinary pair plus a set of assumptions, each of
/// which binds a points-to pair to a formal-parameter output of the
/// enclosing procedure ("this pair holds here if, on entry, pair q held on
/// formal f"). Assumption sets are interned as sorted id vectors; set id 0
/// is the empty set, so unqualified facts are cheap.
///
/// The subsumption rule of Section 4.2 — a qualified pair (p, B) is
/// redundant wherever (p, A) with A subset-of B already holds — is
/// implemented by the per-output stores in the solver; this file provides
/// the set algebra (union, subset, singleton).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CONTEXTSENS_ASSUMPTIONSET_H
#define VDGA_CONTEXTSENS_ASSUMPTIONSET_H

#include "pointsto/PointsToPair.h"
#include "vdg/Graph.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vdga {

/// One assumption: points-to pair \c Pair holds on formal output \c Formal
/// at procedure entry.
struct Assumption {
  OutputId Formal = InvalidId;
  PairId Pair = 0;

  friend bool operator<(const Assumption &A, const Assumption &B) {
    return A.Formal != B.Formal ? A.Formal < B.Formal : A.Pair < B.Pair;
  }
  friend bool operator==(const Assumption &A, const Assumption &B) {
    return A.Formal == B.Formal && A.Pair == B.Pair;
  }
};

/// Dense id of an interned assumption set; 0 is the empty set.
using AssumSetId = uint32_t;
inline constexpr AssumSetId EmptyAssumSet = 0;

/// Interns assumption sets as sorted, deduplicated vectors.
class AssumptionSetTable {
public:
  AssumptionSetTable();

  /// Interns the set containing exactly \p Elems (need not be sorted).
  AssumSetId intern(std::vector<Assumption> Elems);

  /// The singleton {(Formal, Pair)}.
  AssumSetId singleton(OutputId Formal, PairId Pair);

  /// Set union, interned and memoized.
  AssumSetId unionSets(AssumSetId A, AssumSetId B);

  /// True if A is a subset of B.
  bool isSubset(AssumSetId A, AssumSetId B) const;

  const std::vector<Assumption> &elements(AssumSetId Id) const {
    return Sets[Id];
  }
  size_t sizeOf(AssumSetId Id) const { return Sets[Id].size(); }
  size_t numSets() const { return Sets.size(); }

private:
  /// FNV-1a over the (formal, pair) words of a sorted element vector.
  struct ElementsHash {
    size_t operator()(const std::vector<Assumption> &Elems) const {
      uint64_t H = 1469598103934665603ull;
      auto Mix = [&H](uint32_t V) {
        H = (H ^ V) * 1099511628211ull;
      };
      for (const Assumption &A : Elems) {
        Mix(A.Formal);
        Mix(A.Pair);
      }
      return static_cast<size_t>(H);
    }
  };

  std::vector<std::vector<Assumption>> Sets;
  std::unordered_map<std::vector<Assumption>, AssumSetId, ElementsHash>
      Index;
  /// Memoized unions keyed by the packed (smaller, larger) id pair.
  std::unordered_map<uint64_t, AssumSetId> UnionCache;
};

} // namespace vdga

#endif // VDGA_CONTEXTSENS_ASSUMPTIONSET_H
