//===- query/AliasSummary.h - Query-level program summary ------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data model the query service answers from: a canonical,
/// serializable summary of one solved program, collapsed to the
/// granularity clients actually query at — named abstract locations
/// (store-resident variables, heap allocation sites) rather than VDG
/// outputs. Building one runs the governed pipeline (the service's
/// admission-control point); loading one from the artifact store skips
/// the solve entirely. Either way the summary is immutable afterwards,
/// so any number of `QuerySession`s can share it without locks.
///
/// The summary deliberately serves *context-insensitive* answers: the
/// paper's central result is that they are almost always as precise as
/// the context-sensitive ones, which is exactly what makes a cheap,
/// cacheable query layer viable. When the solve degraded under budget
/// the summary is built from the coarser tier that actually completed
/// (Steensgaard or top) and every answer carries that tier marker.
///
/// Serialization is the versioned `vdga-summary-v1` line format: all
/// lists sorted, all names rendered, so the bytes are independent of
/// interning order and worklist schedule — two builds of the same
/// program serialize identically, and a store round-trip is exact.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_QUERY_ALIASSUMMARY_H
#define VDGA_QUERY_ALIASSUMMARY_H

#include "driver/Governance.h"

#include <string>
#include <string_view>
#include <vector>

namespace vdga {

class AnalyzedProgram;

/// Canonical query-level summary of one solved program; see file comment.
struct AliasSummary {
  /// The serialization format this code writes and accepts.
  static constexpr const char *Schema = "vdga-summary-v1";

  /// Canonical digest of the program's source text (support/Digest.h);
  /// the artifact-store key.
  std::string Digest;

  /// The precision tier every answer from this summary carries:
  /// ContextInsens for a complete solve, Steensgaard or Top when the
  /// solve degraded under its admission budget.
  PrecisionTier Tier = PrecisionTier::ContextInsens;

  /// True when any ladder rung tripped while building.
  bool Degraded = false;

  /// Compact rendering of the degradation steps ("ci->steens(deadline)");
  /// empty when !Degraded.
  std::string Degradation;

  /// One queryable abstract location: a store-resident variable (global,
  /// address-taken local/param, aggregate — named "g" or "fn.local") or a
  /// heap allocation site ("heap@N").
  struct Variable {
    std::string Name;
    /// Locations any pointer stored inside this object may reference;
    /// rendered access paths, sorted and deduplicated.
    std::vector<std::string> Pointees;
  };
  /// Sorted by name.
  std::vector<Variable> Variables;

  /// Per-function transitive mod/ref summary.
  struct Function {
    std::string Name;
    /// Degraded tiers cannot compute mod/ref: the sound answer is "may
    /// touch anything", carried as this flag with empty lists.
    bool TopModRef = false;
    std::vector<std::string> Mod; ///< Sorted rendered locations.
    std::vector<std::string> Ref; ///< Sorted rendered locations.
  };
  /// Sorted by name; defined functions only.
  std::vector<Function> Functions;

  /// One call site and the callees the solver discovered there.
  struct Callsite {
    std::string Site; ///< "line:col" of the call node.
    std::vector<std::string> Callees; ///< Sorted function names.
  };
  /// Sorted by site string. Under a degraded tier callee sets are
  /// unknown; sites are still listed (resolution is structural) with
  /// empty callee lists.
  std::vector<Callsite> Callsites;

  //===--------------------------------------------------------------------===
  // Lookup
  //===--------------------------------------------------------------------===

  /// Resolution outcomes for operand lookup.
  enum : int { NotFound = -1, Ambiguous = -2 };

  /// Resolves a variable operand: exact display-name match first, then —
  /// for bare names without a '.' — a unique "fn.name" local. Returns the
  /// index into Variables, or NotFound / Ambiguous.
  int resolveVariable(std::string_view Name) const;

  /// Index into Functions, or NotFound.
  int resolveFunction(std::string_view Name) const;

  /// Index into Callsites ("line:col"), or NotFound.
  int resolveCallsite(std::string_view Site) const;

  //===--------------------------------------------------------------------===
  // Serialization (vdga-summary-v1)
  //===--------------------------------------------------------------------===

  std::string serialize() const;

  /// Strict parse of the v1 format; on failure returns false and fills
  /// \p Error. A parsed summary serializes back byte-identically.
  static bool parse(std::string_view Text, AliasSummary &Out,
                    std::string *Error);
};

/// Builds the summary for \p AP by running the governed pipeline under
/// \p Policy (the admission-control point: budget trips degrade the tier
/// instead of stalling the service). \p Source is digested for the
/// artifact-store key. Publishes solve timings into AP's registry.
AliasSummary buildAliasSummary(AnalyzedProgram &AP, std::string_view Source,
                               const GovernancePolicy &Policy = {});

} // namespace vdga

#endif // VDGA_QUERY_ALIASSUMMARY_H
