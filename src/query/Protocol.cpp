//===- query/Protocol.cpp -------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "query/Protocol.h"

#include <charconv>

using namespace vdga;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string vdga::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonObject::key(std::string_view K) {
  if (!First)
    Buf += ',';
  First = false;
  Buf += '"';
  Buf += jsonEscape(K);
  Buf += "\":";
}

JsonObject &JsonObject::field(std::string_view Key, std::string_view Value) {
  key(Key);
  Buf += '"';
  Buf += jsonEscape(Value);
  Buf += '"';
  return *this;
}

JsonObject &JsonObject::field(std::string_view Key, int64_t Value) {
  key(Key);
  Buf += std::to_string(Value);
  return *this;
}

JsonObject &JsonObject::field(std::string_view Key, bool Value) {
  key(Key);
  Buf += Value ? "true" : "false";
  return *this;
}

JsonObject &JsonObject::raw(std::string_view Key, std::string_view Json) {
  key(Key);
  Buf += Json;
  return *this;
}

JsonObject &JsonObject::list(std::string_view Key,
                             const std::vector<std::string> &V) {
  key(Key);
  Buf += '[';
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Buf += ',';
    Buf += '"';
    Buf += jsonEscape(V[I]);
    Buf += '"';
  }
  Buf += ']';
  return *this;
}

std::string JsonObject::str() {
  Buf += '}';
  return std::move(Buf);
}

std::string QueryRequest::idJson() const {
  if (!HasId)
    return "null";
  if (IdIsString)
    return "\"" + jsonEscape(Id) + "\"";
  return Id;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Hand-rolled scanner for one flat JSON object. Positions are byte
/// offsets into the line, reported in errors.
class Scanner {
public:
  Scanner(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool parse(QueryRequest &Out);

private:
  bool fail(const std::string &Msg) {
    if (Error)
      *Error = Msg + " at byte " + std::to_string(Pos);
    return false;
  }
  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t'))
      ++Pos;
  }
  bool eat(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool parseString(std::string &Out);
  bool parseValue(const std::string &Key, QueryRequest &Out);

  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
};

bool Scanner::parseString(std::string &Out) {
  if (!eat('"'))
    return fail("expected string");
  Out.clear();
  while (Pos < Text.size()) {
    char C = Text[Pos++];
    if (C == '"')
      return true;
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (Pos >= Text.size())
      return fail("dangling escape");
    char E = Text[Pos++];
    switch (E) {
    case '"':
    case '\\':
    case '/':
      Out += E;
      break;
    case 'b':
      Out += '\b';
      break;
    case 'f':
      Out += '\f';
      break;
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case 't':
      Out += '\t';
      break;
    case 'u': {
      if (Pos + 4 > Text.size())
        return fail("truncated \\u escape");
      unsigned V = 0;
      for (int I = 0; I < 4; ++I) {
        char H = Text[Pos++];
        V <<= 4;
        if (H >= '0' && H <= '9')
          V |= H - '0';
        else if (H >= 'a' && H <= 'f')
          V |= H - 'a' + 10;
        else if (H >= 'A' && H <= 'F')
          V |= H - 'A' + 10;
        else
          return fail("bad \\u escape digit");
      }
      // BMP code point to UTF-8 (surrogates pass through as-is bytes of
      // the replacement pattern are unnecessary for this protocol).
      if (V < 0x80) {
        Out += static_cast<char>(V);
      } else if (V < 0x800) {
        Out += static_cast<char>(0xC0 | (V >> 6));
        Out += static_cast<char>(0x80 | (V & 0x3F));
      } else {
        Out += static_cast<char>(0xE0 | (V >> 12));
        Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
        Out += static_cast<char>(0x80 | (V & 0x3F));
      }
      break;
    }
    default:
      return fail(std::string("unknown escape \\") + E);
    }
  }
  return fail("unterminated string");
}

bool Scanner::parseValue(const std::string &Key, QueryRequest &Out) {
  skipWs();
  if (Pos >= Text.size())
    return fail("missing value");
  char C = Text[Pos];
  auto SetId = [&](std::string V, bool IsString) {
    Out.HasId = true;
    Out.IdIsString = IsString;
    Out.Id = std::move(V);
  };
  if (C == '"') {
    std::string V;
    if (!parseString(V))
      return false;
    if (Key == "id")
      SetId(std::move(V), true);
    else if (Key == "op")
      Out.Op = std::move(V);
    else
      Out.Strings[Key] = std::move(V);
    return true;
  }
  if (C == '-' || (C >= '0' && C <= '9')) {
    size_t Start = Pos;
    if (C == '-')
      ++Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (Pos < Text.size() &&
        (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E'))
      return fail("non-integer numbers are not part of vdga-query-v1");
    std::string Tok(Text.substr(Start, Pos - Start));
    if (Tok == "-")
      return fail("bad number");
    if (Key == "id") {
      SetId(std::move(Tok), false);
      return true;
    }
    int64_t V = 0;
    auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), V);
    if (Ec != std::errc() || Ptr != Tok.data() + Tok.size())
      return fail("integer out of range");
    Out.Ints[Key] = V;
    return true;
  }
  auto Lit = [&](std::string_view W) {
    if (Text.substr(Pos, W.size()) != W)
      return false;
    Pos += W.size();
    return true;
  };
  if (Lit("true")) {
    Out.Bools[Key] = true;
    return true;
  }
  if (Lit("false")) {
    Out.Bools[Key] = false;
    return true;
  }
  if (Lit("null"))
    return true; // Tolerated and ignored (an explicit "id": null).
  if (C == '{' || C == '[')
    return fail("nested values are not part of vdga-query-v1 requests");
  return fail("unrecognized value");
}

bool Scanner::parse(QueryRequest &Out) {
  if (!eat('{'))
    return fail("request line must be a JSON object");
  skipWs();
  if (eat('}')) {
    skipWs();
    return Pos == Text.size() ? true : fail("trailing bytes after object");
  }
  while (true) {
    std::string Key;
    if (!parseString(Key))
      return false;
    if (!eat(':'))
      return fail("expected ':' after key");
    if (!parseValue(Key, Out))
      return false;
    if (eat(','))
      continue;
    if (eat('}'))
      break;
    return fail("expected ',' or '}'");
  }
  skipWs();
  if (Pos != Text.size())
    return fail("trailing bytes after object");
  return true;
}

} // namespace

bool vdga::parseQueryRequest(std::string_view Line, QueryRequest &Out,
                             std::string *Error) {
  Out = QueryRequest();
  Scanner Sc(Line, Error);
  return Sc.parse(Out);
}
