//===- query/Protocol.h - vdga-query-v1 wire protocol ----------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned `vdga-query-v1` wire protocol: newline-delimited JSON,
/// one request object per line in, one response object per line out.
/// Requests are *flat* — every value is a string, integer, or boolean;
/// nested objects/arrays are rejected as `parse-error` — which keeps the
/// embedded parser small and the protocol trivially generatable from
/// any language. Responses may carry string arrays (pointsTo results).
/// The full field-by-field specification, error-code table, and a
/// worked transcript live in docs/QUERY_PROTOCOL.md; this header is the
/// single implementation of both directions, shared by the server, the
/// load generator, and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_QUERY_PROTOCOL_H
#define VDGA_QUERY_PROTOCOL_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vdga {

/// The protocol revision this code speaks; echoed by `hello`.
inline constexpr const char *QueryProtocolVersion = "vdga-query-v1";

/// One parsed request line. Fields are stored by kind; `str`/`integer`/
/// `boolean` are the typed accessors ops use to pull their operands.
struct QueryRequest {
  /// The client's correlation id, echoed verbatim (with its original
  /// JSON type) on the response. Optional; responses to id-less requests
  /// carry "id": null.
  bool HasId = false;
  bool IdIsString = false;
  std::string Id;

  /// The operation name ("hello", "mayAlias", ...). Required.
  std::string Op;

  std::map<std::string, std::string> Strings;
  std::map<std::string, int64_t> Ints;
  std::map<std::string, bool> Bools;

  const std::string *str(const std::string &Key) const {
    auto It = Strings.find(Key);
    return It == Strings.end() ? nullptr : &It->second;
  }
  std::optional<int64_t> integer(const std::string &Key) const {
    auto It = Ints.find(Key);
    return It == Ints.end() ? std::nullopt : std::optional<int64_t>(It->second);
  }
  std::optional<bool> boolean(const std::string &Key) const {
    auto It = Bools.find(Key);
    return It == Bools.end() ? std::nullopt : std::optional<bool>(It->second);
  }

  /// The id rendered as a JSON value for echoing ("null" when absent).
  std::string idJson() const;
};

/// Strict parse of one request line. On failure returns false and fills
/// \p Error with a position-carrying message (the server turns it into a
/// `parse-error` response).
bool parseQueryRequest(std::string_view Line, QueryRequest &Out,
                       std::string *Error);

/// JSON string escaping (quotes not included).
std::string jsonEscape(std::string_view S);

/// Minimal single-object JSON writer for response lines. Fields render
/// in insertion order; call str() exactly once to close the object.
class JsonObject {
public:
  JsonObject &field(std::string_view Key, std::string_view Value);
  /// Without this overload a string literal would bind to the bool one.
  JsonObject &field(std::string_view Key, const char *Value) {
    return field(Key, std::string_view(Value));
  }
  JsonObject &field(std::string_view Key, int64_t Value);
  JsonObject &field(std::string_view Key, bool Value);
  /// A pre-rendered JSON value (the echoed id, a nested array).
  JsonObject &raw(std::string_view Key, std::string_view Json);
  JsonObject &list(std::string_view Key, const std::vector<std::string> &V);
  std::string str();

private:
  void key(std::string_view K);
  std::string Buf = "{";
  bool First = true;
};

} // namespace vdga

#endif // VDGA_QUERY_PROTOCOL_H
