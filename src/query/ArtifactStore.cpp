//===- query/ArtifactStore.cpp --------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "query/ArtifactStore.h"

#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vdga;

namespace {

/// Reads a whole file; false on open failure.
bool slurp(const std::filesystem::path &P, std::string &Out) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// True when the artifact at \p P parses and is keyed under the digest
/// its filename claims.
bool artifactHealthy(const std::filesystem::path &P) {
  std::string Text;
  if (!slurp(P, Text))
    return false;
  AliasSummary S;
  if (!AliasSummary::parse(Text, S, nullptr))
    return false;
  return P.filename().string() == S.Digest + ".vdga-summary";
}

} // namespace

std::string ArtifactStore::pathFor(const std::string &Digest) const {
  std::filesystem::path P(Directory);
  P /= Digest + ".vdga-summary";
  return P.string();
}

std::optional<AliasSummary>
ArtifactStore::load(const std::string &Digest,
                    MetricsRegistry *Metrics) const {
  auto Miss = [&]() -> std::optional<AliasSummary> {
    if (Metrics)
      Metrics->add("query.store_misses", 1);
    return std::nullopt;
  };
  if (!enabled())
    return Miss();
  std::ifstream In(pathFor(Digest), std::ios::binary);
  if (!In)
    return Miss();
  std::ostringstream Text;
  Text << In.rdbuf();
  AliasSummary S;
  if (!AliasSummary::parse(Text.str(), S, nullptr) || S.Digest != Digest)
    return Miss();
  if (Metrics)
    Metrics->add("query.store_hits", 1);
  return S;
}

bool ArtifactStore::save(const AliasSummary &Summary,
                         std::string *Error) const {
  if (!enabled())
    return true;
  std::error_code EC;
  std::filesystem::create_directories(Directory, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create store directory " + Directory + ": " +
               EC.message();
    return false;
  }
  std::string Final = pathFor(Summary.Digest);
  std::string Tmp = Final + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      if (Error)
        *Error = "cannot open " + Tmp + " for writing";
      return false;
    }
    Out << Summary.serialize();
    if (!Out) {
      if (Error)
        *Error = "short write to " + Tmp;
      return false;
    }
  }
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    if (Error)
      *Error = "cannot rename " + Tmp + ": " + EC.message();
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

StoreFsckReport ArtifactStore::fsck(bool Remove) const {
  StoreFsckReport R;
  if (!enabled())
    return R;
  std::error_code EC;
  std::filesystem::directory_iterator It(Directory, EC);
  if (EC)
    return R;
  for (const auto &Entry : It) {
    if (!Entry.is_regular_file(EC))
      continue;
    const std::filesystem::path &P = Entry.path();
    if (P.extension() == ".tmp") {
      ++R.StaleTmp;
      if (Remove)
        std::filesystem::remove(P, EC);
      continue;
    }
    if (P.extension() != ".vdga-summary")
      continue;
    ++R.Scanned;
    if (artifactHealthy(P)) {
      ++R.Healthy;
      continue;
    }
    R.Corrupt.push_back(P.string());
    if (Remove) {
      std::filesystem::remove(P, EC);
      if (!EC)
        ++R.Removed;
    }
  }
  std::sort(R.Corrupt.begin(), R.Corrupt.end());
  return R;
}

StoreGCReport ArtifactStore::gc(const StoreGCOptions &Opts) const {
  StoreGCReport R;
  if (!enabled())
    return R;
  std::error_code EC;
  std::filesystem::directory_iterator It(Directory, EC);
  if (EC)
    return R;
  struct Artifact {
    std::filesystem::path Path;
    std::filesystem::file_time_type Mtime;
    uint64_t Size = 0;
  };
  std::vector<Artifact> All;
  for (const auto &Entry : It) {
    if (!Entry.is_regular_file(EC))
      continue;
    const std::filesystem::path &P = Entry.path();
    if (P.extension() != ".vdga-summary")
      continue;
    Artifact A;
    A.Path = P;
    A.Mtime = std::filesystem::last_write_time(P, EC);
    if (EC)
      continue;
    A.Size = std::filesystem::file_size(P, EC);
    if (EC)
      continue;
    All.push_back(std::move(A));
  }
  R.Scanned = All.size();
  for (const Artifact &A : All)
    R.BytesBefore += A.Size;
  R.BytesAfter = R.BytesBefore;

  // Oldest first, so the age pass and the size pass both walk forward.
  std::sort(All.begin(), All.end(), [](const Artifact &L, const Artifact &R2) {
    return L.Mtime != R2.Mtime ? L.Mtime < R2.Mtime : L.Path < R2.Path;
  });

  auto Evict = [&](const Artifact &A) {
    std::error_code RemEC;
    std::filesystem::remove(A.Path, RemEC);
    if (RemEC)
      return false;
    ++R.Removed;
    R.BytesAfter -= A.Size;
    return true;
  };

  std::vector<Artifact> Kept;
  if (Opts.MaxAgeSeconds > 0) {
    auto Cutoff = std::filesystem::file_time_type::clock::now() -
                  std::chrono::seconds(Opts.MaxAgeSeconds);
    for (const Artifact &A : All) {
      if (A.Mtime < Cutoff)
        Evict(A);
      else
        Kept.push_back(A);
    }
  } else {
    Kept = std::move(All);
  }

  if (Opts.MaxBytes > 0)
    for (const Artifact &A : Kept) {
      if (R.BytesAfter <= Opts.MaxBytes)
        break;
      Evict(A);
    }
  return R;
}
