//===- query/ArtifactStore.cpp --------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "query/ArtifactStore.h"

#include "support/Metrics.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vdga;

std::string ArtifactStore::pathFor(const std::string &Digest) const {
  std::filesystem::path P(Directory);
  P /= Digest + ".vdga-summary";
  return P.string();
}

std::optional<AliasSummary>
ArtifactStore::load(const std::string &Digest,
                    MetricsRegistry *Metrics) const {
  auto Miss = [&]() -> std::optional<AliasSummary> {
    if (Metrics)
      Metrics->add("query.store_misses", 1);
    return std::nullopt;
  };
  if (!enabled())
    return Miss();
  std::ifstream In(pathFor(Digest), std::ios::binary);
  if (!In)
    return Miss();
  std::ostringstream Text;
  Text << In.rdbuf();
  AliasSummary S;
  if (!AliasSummary::parse(Text.str(), S, nullptr) || S.Digest != Digest)
    return Miss();
  if (Metrics)
    Metrics->add("query.store_hits", 1);
  return S;
}

bool ArtifactStore::save(const AliasSummary &Summary,
                         std::string *Error) const {
  if (!enabled())
    return true;
  std::error_code EC;
  std::filesystem::create_directories(Directory, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create store directory " + Directory + ": " +
               EC.message();
    return false;
  }
  std::string Final = pathFor(Summary.Digest);
  std::string Tmp = Final + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      if (Error)
        *Error = "cannot open " + Tmp + " for writing";
      return false;
    }
    Out << Summary.serialize();
    if (!Out) {
      if (Error)
        *Error = "short write to " + Tmp;
      return false;
    }
  }
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    if (Error)
      *Error = "cannot rename " + Tmp + ": " + EC.message();
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}
