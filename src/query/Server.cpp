//===- query/Server.cpp ---------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "query/Server.h"

#include "driver/Pipeline.h"
#include "support/Digest.h"

#include <chrono>
#include <istream>
#include <ostream>

using namespace vdga;

QueryServer::QueryServer(std::string Source, QueryServerOptions Opts,
                         std::unique_ptr<AnalyzedProgram> AP)
    : Source(std::move(Source)), Opts(std::move(Opts)), AP(std::move(AP)),
      Store(this->Opts.StoreDir) {}

QueryServer::~QueryServer() = default;

std::unique_ptr<QueryServer> QueryServer::create(std::string Source,
                                                 QueryServerOptions Opts,
                                                 std::string *Error) {
  auto AP = AnalyzedProgram::create(Source, Error);
  if (!AP)
    return nullptr;
  return std::unique_ptr<QueryServer>(
      new QueryServer(std::move(Source), std::move(Opts), std::move(AP)));
}

MetricsRegistry &QueryServer::metrics() { return AP->Metrics; }

void QueryServer::ensureSummary(const QueryRequest *Req) {
  if (Summary)
    return;
  GovernancePolicy Policy = Opts.Policy;
  if (Req) {
    // Per-request admission control: a budget_ms on the triggering
    // request tightens the solve's wall-clock budget, never loosens it.
    if (auto Ms = Req->integer("budget_ms"); Ms && *Ms > 0)
      if (Policy.SolveMs == 0 || static_cast<double>(*Ms) < Policy.SolveMs)
        Policy.SolveMs = static_cast<double>(*Ms);
  }
  std::string Digest = sourceDigest(Source);
  if (Store.enabled())
    if (auto Loaded = Store.load(Digest, &AP->Metrics)) {
      Summary = std::move(*Loaded);
      Session.emplace(*Summary, AP->Metrics);
      return;
    }
  Summary = buildAliasSummary(*AP, Source, Policy);
  if (Store.enabled())
    Store.save(*Summary); // Best-effort: a failed save never fails a query.
  Session.emplace(*Summary, AP->Metrics);
}

const AliasSummary &QueryServer::summary() {
  ensureSummary(nullptr);
  return *Summary;
}

namespace {

std::string errorResponse(const std::string &IdJson, std::string_view Op,
                          std::string_view Code, std::string_view Detail,
                          int64_t LatencyUs) {
  JsonObject O;
  O.raw("id", IdJson).field("ok", false);
  if (!Op.empty())
    O.field("op", Op);
  O.field("error", Code).field("detail", Detail);
  O.field("latency_us", LatencyUs);
  return O.str();
}

} // namespace

std::string QueryServer::handleLine(std::string_view Line, bool &Shutdown) {
  auto Start = std::chrono::steady_clock::now();
  auto LatencyUs = [&]() -> int64_t {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };

  QueryRequest Req;
  std::string ParseError;
  if (!parseQueryRequest(Line, Req, &ParseError))
    return errorResponse("null", "", "parse-error", ParseError, LatencyUs());
  if (Req.Op.empty())
    return errorResponse(Req.idJson(), "", "bad-request",
                         "request has no \"op\" field", LatencyUs());

  const std::string &Op = Req.Op;
  auto Missing = [&](const char *Field) {
    return errorResponse(Req.idJson(), Op, "missing-operand",
                         std::string("op \"") + Op +
                             "\" requires the \"" + Field + "\" field",
                         LatencyUs());
  };

  // Cache-control field, shared by the three query ops.
  CacheMode Mode = CacheMode::Use;
  if (const std::string *C = Req.str("cache")) {
    if (*C == "bypass")
      Mode = CacheMode::Bypass;
    else if (*C != "use")
      return errorResponse(Req.idJson(), Op, "bad-request",
                           "\"cache\" must be \"use\" or \"bypass\", got \"" +
                               *C + "\"",
                           LatencyUs());
  }

  auto RenderAnswer = [&](const QueryAnswer &A) {
    if (!A.Ok)
      return errorResponse(Req.idJson(), Op, A.Error, A.Detail, LatencyUs());
    JsonObject O;
    O.raw("id", Req.idJson()).field("ok", true).field("op", Op);
    if (Op == "mayAlias")
      O.field("verdict", A.Verdict);
    else if (Op == "pointsTo")
      O.list("locations", A.Locations);
    else if (Op == "modref") {
      O.field("top", A.TopModRef);
      O.list("mod", A.Mod).list("ref", A.Ref);
    }
    O.field("tier", precisionTierName(A.Tier))
        .field("degraded", A.Degraded)
        .field("cached", A.Cached)
        .field("latency_us", LatencyUs());
    return O.str();
  };

  if (Op == "hello") {
    JsonObject O;
    O.raw("id", Req.idJson())
        .field("ok", true)
        .field("op", Op)
        .field("protocol", QueryProtocolVersion)
        .field("digest", sourceDigest(Source))
        .field("solved", Summary.has_value())
        .field("latency_us", LatencyUs());
    return O.str();
  }
  if (Op == "shutdown") {
    Shutdown = true;
    JsonObject O;
    O.raw("id", Req.idJson())
        .field("ok", true)
        .field("op", Op)
        .field("shutdown", true)
        .field("latency_us", LatencyUs());
    return O.str();
  }
  if (Op == "stats") {
    auto Count = [&](const char *Name) -> int64_t {
      const Metric *M = AP->Metrics.find(Name);
      return M ? static_cast<int64_t>(M->Count) : 0;
    };
    JsonObject O;
    O.raw("id", Req.idJson()).field("ok", true).field("op", Op);
    O.field("solved", Summary.has_value());
    for (const char *Name :
         {"query.requests", "query.errors", "query.degraded_answers",
          "query.alias_hits", "query.alias_misses", "query.pointee_hits",
          "query.pointee_misses", "query.modref_hits", "query.modref_misses",
          "query.store_hits", "query.store_misses", "query.lint_hits",
          "query.lint_misses"})
      O.field(Name, Count(Name));
    O.field("latency_us", LatencyUs());
    return O.str();
  }

  if (Op == "mayAlias") {
    const std::string *A = Req.str("a"), *B = Req.str("b");
    if (!A)
      return Missing("a");
    if (!B)
      return Missing("b");
    ensureSummary(&Req);
    return RenderAnswer(Session->mayAlias(*A, *B, Mode));
  }
  if (Op == "pointsTo") {
    const std::string *Var = Req.str("var");
    if (!Var)
      return Missing("var");
    ensureSummary(&Req);
    return RenderAnswer(Session->pointsTo(*Var, Mode));
  }
  if (Op == "modref") {
    const std::string *Target = Req.str("target");
    if (!Target)
      return Missing("target");
    ensureSummary(&Req);
    return RenderAnswer(Session->modref(*Target, Mode));
  }
  if (Op == "lint") {
    LintTier Tier = LintTier::ContextInsens;
    if (const std::string *T = Req.str("tier"))
      if (!parseLintTier(*T, Tier))
        return errorResponse(Req.idJson(), Op, "bad-request",
                             "\"tier\" must be \"steens\", \"ci\" or "
                             "\"cs\", got \"" +
                                 *T + "\"",
                             LatencyUs());
    const char *TierName = lintTierName(Tier);
    bool Cached = LintCache.count(TierName) != 0;
    if (!Cached) {
      LintOptions LO;
      LO.Tier = Tier;
      LO.Policy = Opts.Policy;
      // Same admission control as the summary solve: a request budget
      // tightens, never loosens.
      if (auto Ms = Req.integer("budget_ms"); Ms && *Ms > 0)
        if (LO.Policy.SolveMs == 0 ||
            static_cast<double>(*Ms) < LO.Policy.SolveMs)
          LO.Policy.SolveMs = static_cast<double>(*Ms);
      LintCache.emplace(TierName, runLint(*AP, LO));
      AP->Metrics.add("query.lint_misses", 1);
    } else {
      AP->Metrics.add("query.lint_hits", 1);
    }
    AP->Metrics.add("query.requests", 1);
    const LintReport &R = LintCache.at(TierName);
    JsonObject Counts;
    for (const char *Pass : {"use-after-free", "double-free", "memory-leak",
                             "dead-store", "null-deref"})
      Counts.field(Pass, static_cast<int64_t>(R.countPass(Pass)));
    JsonObject O;
    O.raw("id", Req.idJson())
        .field("ok", true)
        .field("op", Op)
        .field("tier", R.Tier)
        .field("degraded", R.Degraded)
        .field("findings", static_cast<int64_t>(R.Findings.size()))
        .field("must",
               static_cast<int64_t>(R.countConfidence(LintConfidence::Must)))
        .field("errors", static_cast<int64_t>(R.errorCount()))
        .raw("counts", Counts.str())
        .field("cached", Cached)
        .field("latency_us", LatencyUs());
    return O.str();
  }

  return errorResponse(Req.idJson(), Op, "unknown-op",
                       "\"" + Op + "\" is not a vdga-query-v1 operation",
                       LatencyUs());
}

int QueryServer::runPipe(std::istream &In, std::ostream &Out) {
  std::string Line;
  bool Shutdown = false;
  while (!Shutdown && std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue; // Blank lines are keep-alive no-ops.
    Out << handleLine(Line, Shutdown) << "\n" << std::flush;
  }
  return 0;
}
