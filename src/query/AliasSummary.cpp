//===- query/AliasSummary.cpp ---------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "query/AliasSummary.h"

#include "clients/ModRef.h"
#include "driver/Pipeline.h"
#include "support/Digest.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace vdga;

namespace {

/// True for the base-location kinds clients can name as query operands.
bool queryableBase(BaseLocKind K) {
  return K == BaseLocKind::Global || K == BaseLocKind::Local ||
         K == BaseLocKind::Heap;
}

std::string siteString(const SourceLoc &Loc) {
  return std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column);
}

/// Sorted, deduplicated vector from a string set.
std::vector<std::string> sortedList(std::set<std::string> &S) {
  return {S.begin(), S.end()};
}

/// Enumerates every call node's site; callee names when \p CI is given.
std::vector<AliasSummary::Callsite>
collectCallsites(AnalyzedProgram &AP, const PointsToResult *CI) {
  std::map<std::string, std::set<std::string>> Sites;
  const Graph &G = AP.G;
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    if (G.node(N).Kind != NodeKind::Call)
      continue;
    auto &Callees = Sites[siteString(G.node(N).Loc)];
    if (CI)
      for (const FunctionInfo *Info : CI->callees(N))
        Callees.insert(AP.program().Names.text(Info->Fn->name()));
  }
  std::vector<AliasSummary::Callsite> Out;
  Out.reserve(Sites.size());
  for (auto &[Site, Callees] : Sites)
    Out.push_back({Site, sortedList(Callees)});
  return Out;
}

} // namespace

AliasSummary vdga::buildAliasSummary(AnalyzedProgram &AP,
                                     std::string_view Source,
                                     const GovernancePolicy &Policy) {
  MetricsRegistry::ScopedTimer T = AP.Metrics.time("query.summary_build.ms");
  AliasSummary S;
  S.Digest = sourceDigest(Source);

  GovernedAnalysis GA = AP.runGoverned(Policy);
  S.Tier = GA.Degradation.CITier;
  S.Degraded = GA.degraded();
  S.Degradation = GA.Degradation.summary();

  const PathTable &Paths = AP.Paths;
  const StringInterner &Names = AP.program().Names;

  // Every queryable base gets a Variables slot, even with no pointees, so
  // pointsTo on a non-pointer object answers "empty" rather than
  // "unknown operand".
  std::map<std::string, std::set<std::string>> Pointees;
  for (size_t B = 0; B < Paths.numBases(); ++B)
    if (queryableBase(Paths.base(static_cast<BaseLocId>(B)).Kind))
      Pointees[Paths.base(static_cast<BaseLocId>(B)).Name];

  const PointsToResult *CI = GA.completeCI();
  if (CI) {
    // Complete CI tier: a pair (P, R) on any output means the value
    // stored at location P may reference R; collapse to P's base.
    for (OutputId O = 0; O < AP.G.numOutputs(); ++O)
      for (PairId Pair : CI->pairs(O)) {
        PointsToPair P = AP.PT.pair(Pair);
        if (!Paths.isLocation(P.Path) || !Paths.isLocation(P.Referent))
          continue;
        const BaseLocation &Base = Paths.base(Paths.baseOf(P.Path));
        if (!queryableBase(Base.Kind))
          continue;
        Pointees[Base.Name].insert(Paths.str(P.Referent, Names));
      }

    ModRefInfo MR = computeModRef(AP.G, *CI, AP.PT, Paths);
    for (const FuncDecl *Fn : AP.program().Functions) {
      if (!Fn->isDefined())
        continue;
      AliasSummary::Function F;
      F.Name = Names.text(Fn->name());
      for (bool Mod : {true, false}) {
        const auto &Sets = Mod ? MR.Mod : MR.Ref;
        std::set<std::string> Rendered;
        if (auto It = Sets.find(Fn); It != Sets.end())
          for (PathId Loc : It->second)
            Rendered.insert(Paths.str(Loc, Names));
        (Mod ? F.Mod : F.Ref) = sortedList(Rendered);
      }
      S.Functions.push_back(std::move(F));
    }
    S.Callsites = collectCallsites(AP, CI);
  } else {
    // Degraded tier: the Steensgaard rung (or its internal top fallback)
    // is serving CI clients. Per-base pointee sets come from the
    // unification classes; mod/ref collapses to "may touch anything".
    const SteensgaardResult *Steens = GA.Steens ? &*GA.Steens : nullptr;
    SteensgaardResult Fallback = SteensgaardResult::top(Paths);
    if (!Steens)
      Steens = &Fallback;
    for (size_t B = 0; B < Paths.numBases(); ++B) {
      const BaseLocation &Base = Paths.base(static_cast<BaseLocId>(B));
      if (!queryableBase(Base.Kind))
        continue;
      auto &Set = Pointees[Base.Name];
      for (BaseLocId Ref : Steens->basePointees(static_cast<BaseLocId>(B)))
        Set.insert(Paths.str(Paths.basePath(Ref), Names));
    }
    for (const FuncDecl *Fn : AP.program().Functions) {
      if (!Fn->isDefined())
        continue;
      AliasSummary::Function F;
      F.Name = Names.text(Fn->name());
      F.TopModRef = true;
      S.Functions.push_back(std::move(F));
    }
    S.Callsites = collectCallsites(AP, nullptr);
  }

  S.Variables.reserve(Pointees.size());
  for (auto &[Name, Refs] : Pointees)
    S.Variables.push_back({Name, sortedList(Refs)});
  std::sort(S.Functions.begin(), S.Functions.end(),
            [](const auto &A, const auto &B) { return A.Name < B.Name; });
  return S;
}

//===----------------------------------------------------------------------===//
// Lookup
//===----------------------------------------------------------------------===//

int AliasSummary::resolveVariable(std::string_view Name) const {
  auto It = std::lower_bound(
      Variables.begin(), Variables.end(), Name,
      [](const Variable &V, std::string_view N) { return V.Name < N; });
  if (It != Variables.end() && It->Name == Name)
    return static_cast<int>(It - Variables.begin());
  // Bare local name: unique "fn.name" match.
  if (Name.find('.') != std::string_view::npos)
    return NotFound;
  int Found = NotFound;
  std::string Suffix(".");
  Suffix += Name;
  for (size_t I = 0; I < Variables.size(); ++I) {
    const std::string &V = Variables[I].Name;
    if (V.size() > Suffix.size() &&
        V.compare(V.size() - Suffix.size(), Suffix.size(), Suffix) == 0) {
      if (Found != NotFound)
        return Ambiguous;
      Found = static_cast<int>(I);
    }
  }
  return Found;
}

int AliasSummary::resolveFunction(std::string_view Name) const {
  auto It = std::lower_bound(
      Functions.begin(), Functions.end(), Name,
      [](const Function &F, std::string_view N) { return F.Name < N; });
  if (It != Functions.end() && It->Name == Name)
    return static_cast<int>(It - Functions.begin());
  return NotFound;
}

int AliasSummary::resolveCallsite(std::string_view Site) const {
  auto It = std::lower_bound(
      Callsites.begin(), Callsites.end(), Site,
      [](const Callsite &C, std::string_view S) { return C.Site < S; });
  if (It != Callsites.end() && It->Site == Site)
    return static_cast<int>(It - Callsites.begin());
  return NotFound;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string AliasSummary::serialize() const {
  std::ostringstream OS;
  OS << Schema << "\n";
  OS << "digest " << Digest << "\n";
  OS << "tier " << precisionTierName(Tier) << "\n";
  OS << "degraded " << (Degraded ? 1 : 0) << "\n";
  if (Degraded)
    OS << "degradation " << Degradation << "\n";
  for (const Variable &V : Variables) {
    OS << "var " << V.Name;
    for (const std::string &P : V.Pointees)
      OS << ' ' << P;
    OS << "\n";
  }
  for (const Function &F : Functions) {
    OS << "fn " << F.Name << ' ' << (F.TopModRef ? "top" : "exact") << "\n";
    OS << "mod";
    for (const std::string &L : F.Mod)
      OS << ' ' << L;
    OS << "\nref";
    for (const std::string &L : F.Ref)
      OS << ' ' << L;
    OS << "\n";
  }
  for (const Callsite &C : Callsites) {
    OS << "call " << C.Site;
    for (const std::string &F : C.Callees)
      OS << ' ' << F;
    OS << "\n";
  }
  OS << "end\n";
  return OS.str();
}

namespace {

std::vector<std::string> splitTokens(std::string_view Line) {
  std::vector<std::string> Tok;
  size_t I = 0;
  while (I < Line.size()) {
    size_t J = Line.find(' ', I);
    if (J == std::string_view::npos)
      J = Line.size();
    if (J > I)
      Tok.emplace_back(Line.substr(I, J - I));
    I = J + 1;
  }
  return Tok;
}

bool fail(std::string *Error, size_t LineNo, const std::string &Msg) {
  if (Error)
    *Error = "vdga-summary-v1 line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

} // namespace

bool AliasSummary::parse(std::string_view Text, AliasSummary &Out,
                         std::string *Error) {
  Out = AliasSummary();
  std::vector<std::string_view> Lines;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string_view::npos)
      Nl = Text.size();
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  if (Lines.empty() || Lines[0] != Schema)
    return fail(Error, 1, "missing or unsupported schema header");

  bool SawEnd = false;
  Function *OpenFn = nullptr;
  int FnPart = 0; // 0 = want fn/other, 1 = want mod, 2 = want ref.
  for (size_t I = 1; I < Lines.size(); ++I) {
    std::string_view Line = Lines[I];
    if (Line.empty())
      continue;
    if (SawEnd)
      return fail(Error, I + 1, "content after end marker");
    std::vector<std::string> Tok = splitTokens(Line);
    if (Tok.empty()) // Whitespace-only line: same as blank.
      continue;
    const std::string &Kw = Tok[0];
    if (FnPart == 1) {
      if (Kw != "mod")
        return fail(Error, I + 1, "expected mod line after fn");
      OpenFn->Mod.assign(Tok.begin() + 1, Tok.end());
      FnPart = 2;
      continue;
    }
    if (FnPart == 2) {
      if (Kw != "ref")
        return fail(Error, I + 1, "expected ref line after mod");
      OpenFn->Ref.assign(Tok.begin() + 1, Tok.end());
      FnPart = 0;
      OpenFn = nullptr;
      continue;
    }
    if (Kw == "digest" && Tok.size() == 2) {
      Out.Digest = Tok[1];
    } else if (Kw == "tier" && Tok.size() == 2) {
      bool Known = false;
      for (PrecisionTier T :
           {PrecisionTier::ContextSens, PrecisionTier::ContextInsens,
            PrecisionTier::Steensgaard, PrecisionTier::Top})
        if (Tok[1] == precisionTierName(T)) {
          Out.Tier = T;
          Known = true;
        }
      if (!Known)
        return fail(Error, I + 1, "unknown tier '" + Tok[1] + "'");
    } else if (Kw == "degraded" && Tok.size() == 2) {
      Out.Degraded = Tok[1] == "1";
    } else if (Kw == "degradation") {
      // Free text: everything after the keyword, spaces preserved.
      Out.Degradation = std::string(
          Line.substr(std::min(Line.size(), Kw.size() + 1)));
    } else if (Kw == "var" && Tok.size() >= 2) {
      // The resolvers binary-search these vectors, so records must arrive
      // strictly sorted — exactly what serialize() emits.
      if (!Out.Variables.empty() && Out.Variables.back().Name >= Tok[1])
        return fail(Error, I + 1, "var records out of order");
      Variable V;
      V.Name = Tok[1];
      V.Pointees.assign(Tok.begin() + 2, Tok.end());
      Out.Variables.push_back(std::move(V));
    } else if (Kw == "fn" && Tok.size() == 3) {
      if (Tok[2] != "top" && Tok[2] != "exact")
        return fail(Error, I + 1, "fn mode must be top or exact");
      if (!Out.Functions.empty() && Out.Functions.back().Name >= Tok[1])
        return fail(Error, I + 1, "fn records out of order");
      Function F;
      F.Name = Tok[1];
      F.TopModRef = Tok[2] == "top";
      Out.Functions.push_back(std::move(F));
      OpenFn = &Out.Functions.back();
      FnPart = 1;
    } else if (Kw == "call" && Tok.size() >= 2) {
      if (!Out.Callsites.empty() && Out.Callsites.back().Site >= Tok[1])
        return fail(Error, I + 1, "call records out of order");
      Callsite C;
      C.Site = Tok[1];
      C.Callees.assign(Tok.begin() + 2, Tok.end());
      Out.Callsites.push_back(std::move(C));
    } else if (Kw == "end" && Tok.size() == 1) {
      SawEnd = true;
    } else {
      return fail(Error, I + 1, "unrecognized directive '" + Kw + "'");
    }
  }
  if (FnPart != 0)
    return fail(Error, Lines.size(), "truncated fn record");
  if (!SawEnd)
    return fail(Error, Lines.size(), "missing end marker");
  if (Out.Digest.empty())
    return fail(Error, 1, "missing digest");
  return true;
}
