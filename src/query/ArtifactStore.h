//===- query/ArtifactStore.h - Digest-keyed summary store ------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, digest-keyed store of serialized `AliasSummary`
/// artifacts: one `<digest>.vdga-summary` file per solved program. The
/// query service consults it before solving, so a program analysed once
/// — by any earlier server run, or by a warm-up job — is re-served
/// without re-running the solver at all. Keys are the canonical source
/// digest from support/Digest.h (the same FNV the fuzz oracle stack
/// uses), so hits are content-addressed: formatting-identical sources
/// share one artifact, any byte change misses.
///
/// Writes are tmp-file + rename so concurrent servers sharing a store
/// directory never observe a torn artifact. A load that fails to parse
/// (truncated file, foreign schema version) is treated as a miss, never
/// an error — the store is strictly an accelerator.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_QUERY_ARTIFACTSTORE_H
#define VDGA_QUERY_ARTIFACTSTORE_H

#include "query/AliasSummary.h"

#include <optional>
#include <string>

namespace vdga {

class MetricsRegistry;

/// Filesystem-backed summary cache; see file comment. A default-constructed
/// store is disabled: every load misses, every save is a no-op.
class ArtifactStore {
public:
  ArtifactStore() = default;
  explicit ArtifactStore(std::string Directory)
      : Directory(std::move(Directory)) {}

  bool enabled() const { return !Directory.empty(); }

  /// Looks up the artifact for \p Digest. Returns the parsed summary on a
  /// hit; nullopt on a miss (absent, unreadable, or unparseable file).
  /// Counts `query.store_hits` / `query.store_misses` in \p Metrics.
  std::optional<AliasSummary> load(const std::string &Digest,
                                   MetricsRegistry *Metrics = nullptr) const;

  /// Persists \p Summary under its own digest, creating the store
  /// directory on first use. Returns false (with \p Error filled) only on
  /// I/O failure; a disabled store returns true without writing.
  bool save(const AliasSummary &Summary, std::string *Error = nullptr) const;

  /// The artifact path a digest maps to (valid even when disabled; used
  /// by tests and diagnostics).
  std::string pathFor(const std::string &Digest) const;

private:
  std::string Directory;
};

} // namespace vdga

#endif // VDGA_QUERY_ARTIFACTSTORE_H
