//===- query/ArtifactStore.h - Digest-keyed summary store ------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, digest-keyed store of serialized `AliasSummary`
/// artifacts: one `<digest>.vdga-summary` file per solved program. The
/// query service consults it before solving, so a program analysed once
/// — by any earlier server run, or by a warm-up job — is re-served
/// without re-running the solver at all. Keys are the canonical source
/// digest from support/Digest.h (the same FNV the fuzz oracle stack
/// uses), so hits are content-addressed: formatting-identical sources
/// share one artifact, any byte change misses.
///
/// Writes are tmp-file + rename so concurrent servers sharing a store
/// directory never observe a torn artifact. A load that fails to parse
/// (truncated file, foreign schema version) is treated as a miss, never
/// an error — the store is strictly an accelerator.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_QUERY_ARTIFACTSTORE_H
#define VDGA_QUERY_ARTIFACTSTORE_H

#include "query/AliasSummary.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vdga {

class MetricsRegistry;

/// What a store integrity scan found. `Corrupt` lists artifacts that are
/// unreadable, unparseable, or keyed under the wrong digest; `Stale`
/// counts leftover `.tmp` files from writers that died mid-save.
struct StoreFsckReport {
  size_t Scanned = 0; ///< `.vdga-summary` files examined.
  size_t Healthy = 0;
  size_t Removed = 0; ///< Corrupt artifacts deleted (Remove mode only).
  size_t StaleTmp = 0; ///< Orphaned `.tmp` files (always deleted in Remove mode).
  std::vector<std::string> Corrupt; ///< Paths of bad artifacts.
};

struct StoreGCOptions {
  uint64_t MaxBytes = 0;   ///< Total-size cap; 0 = unlimited.
  uint64_t MaxAgeSeconds = 0; ///< Per-artifact age cap; 0 = unlimited.
};

struct StoreGCReport {
  size_t Scanned = 0;
  size_t Removed = 0;
  uint64_t BytesBefore = 0;
  uint64_t BytesAfter = 0;
};

/// Filesystem-backed summary cache; see file comment. A default-constructed
/// store is disabled: every load misses, every save is a no-op.
class ArtifactStore {
public:
  ArtifactStore() = default;
  explicit ArtifactStore(std::string Directory)
      : Directory(std::move(Directory)) {}

  bool enabled() const { return !Directory.empty(); }

  /// Looks up the artifact for \p Digest. Returns the parsed summary on a
  /// hit; nullopt on a miss (absent, unreadable, or unparseable file).
  /// Counts `query.store_hits` / `query.store_misses` in \p Metrics.
  std::optional<AliasSummary> load(const std::string &Digest,
                                   MetricsRegistry *Metrics = nullptr) const;

  /// Persists \p Summary under its own digest, creating the store
  /// directory on first use. Returns false (with \p Error filled) only on
  /// I/O failure; a disabled store returns true without writing.
  bool save(const AliasSummary &Summary, std::string *Error = nullptr) const;

  /// The artifact path a digest maps to (valid even when disabled; used
  /// by tests and diagnostics).
  std::string pathFor(const std::string &Digest) const;

  /// Integrity-scans every artifact in the store: each `.vdga-summary`
  /// must parse and its content digest must match its filename. With
  /// \p Remove, corrupt artifacts and orphaned `.tmp` files are deleted
  /// (safe — a removed artifact is just a future cache miss). A disabled
  /// or absent store yields an empty report.
  StoreFsckReport fsck(bool Remove) const;

  /// Evicts artifacts past \p Opts.MaxAgeSeconds, then — if the store
  /// still exceeds \p Opts.MaxBytes — evicts oldest-first until under
  /// the cap. Eviction is always safe: the store is an accelerator, so
  /// GC only costs future solves, never correctness.
  StoreGCReport gc(const StoreGCOptions &Opts) const;

private:
  std::string Directory;
};

} // namespace vdga

#endif // VDGA_QUERY_ARTIFACTSTORE_H
