//===- query/QuerySession.h - Memoizing query sessions ---------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand side of the query service: a `QuerySession` answers
/// `mayAlias` / `pointsTo` / `modref` questions against one immutable
/// `AliasSummary`, memoizing each answer so repeated questions — the
/// common case for compiler clients, which probe the same few pairs from
/// many transformation sites — are served from O(1) cache lookups
/// instead of recomputed set intersections.
///
/// Three caches, mirroring the classic alias-manager shape:
///  - the alias-pair cache, keyed on the *canonical* (min,max) pair of
///    resolved variable ids so mayAlias(a,b) and mayAlias(b,a) share one
///    entry (the relation is symmetric);
///  - the pointee cache, keyed on the resolved variable id;
///  - the mod/ref cache, keyed on the resolved function id.
/// Every entry records the precision tier it was computed at — a
/// degraded (Steensgaard/top) answer is never cached as if it were a
/// complete context-insensitive one, and re-serving it re-marks it.
/// Hit/miss counters land in the session's MetricsRegistry under
/// `query.alias_hits`, `query.pointee_misses`, etc.
///
/// Sessions are single-threaded by design (MetricsRegistry is too);
/// concurrency comes from running one session per client thread over
/// the shared summary, then merging registries.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_QUERY_QUERYSESSION_H
#define VDGA_QUERY_QUERYSESSION_H

#include "query/AliasSummary.h"
#include "support/Metrics.h"

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vdga {

/// One answer from the service. `Ok` distinguishes answered queries from
/// operand/usage errors; everything else is op-specific payload.
struct QueryAnswer {
  bool Ok = true;
  /// Machine-readable error code when !Ok ("unknown-operand",
  /// "ambiguous-operand", "bad-request"); see docs/QUERY_PROTOCOL.md.
  std::string Error;
  /// Human-readable error detail when !Ok.
  std::string Detail;

  /// mayAlias: "may-alias" or "no-alias".
  std::string Verdict;
  /// pointsTo: rendered locations, sorted.
  std::vector<std::string> Locations;
  /// modref: rendered location lists, sorted (empty when TopModRef).
  std::vector<std::string> Mod, Ref;
  /// modref: the degraded "may touch anything" answer.
  bool TopModRef = false;

  /// The precision tier the answer was computed at ("ci", "steens", "top").
  PrecisionTier Tier = PrecisionTier::ContextInsens;
  /// True when Tier is coarser than the full context-insensitive solve.
  bool Degraded = false;
  /// True when served from this session's memo cache.
  bool Cached = false;

  friend bool operator==(const QueryAnswer &A, const QueryAnswer &B) {
    // Cached is deliberately excluded: a cached answer must be
    // *bit-identical in content* to the uncached one.
    return A.Ok == B.Ok && A.Error == B.Error && A.Verdict == B.Verdict &&
           A.Locations == B.Locations && A.Mod == B.Mod && A.Ref == B.Ref &&
           A.TopModRef == B.TopModRef && A.Tier == B.Tier &&
           A.Degraded == B.Degraded;
  }
};

/// Cache behaviour for one request (the protocol's "cache" field).
enum class CacheMode {
  Use,    ///< Normal: consult and populate the memo caches.
  Bypass, ///< Recompute; neither consult nor populate (for validation).
};

/// See file comment. Holds only references — the summary must outlive
/// the session; the registry is typically AnalyzedProgram::Metrics or a
/// per-thread one merged later.
class QuerySession {
public:
  QuerySession(const AliasSummary &Summary, MetricsRegistry &Metrics)
      : S(Summary), M(Metrics) {}

  /// May the objects named \p A and \p B hold pointers to overlapping
  /// storage? Symmetric; the same operand twice is trivially may-alias.
  QueryAnswer mayAlias(std::string_view A, std::string_view B,
                       CacheMode Mode = CacheMode::Use);

  /// The locations any pointer stored in \p Var may reference.
  QueryAnswer pointsTo(std::string_view Var, CacheMode Mode = CacheMode::Use);

  /// Transitive mod/ref of a function (by name) or of every callee the
  /// solver discovered at a call site (by "line:col").
  QueryAnswer modref(std::string_view Operand,
                     CacheMode Mode = CacheMode::Use);

  const AliasSummary &summary() const { return S; }
  MetricsRegistry &metrics() { return M; }

  /// Do two rendered access paths denote potentially overlapping
  /// storage?  Equal, or one a strict prefix of the other at a '.' / '['
  /// component boundary (path domination at the rendered level).
  static bool locationsOverlap(std::string_view A, std::string_view B);

private:
  /// A memoized answer plus the tier it was computed at.
  template <typename V> struct Entry {
    V Value;
    PrecisionTier Tier;
  };

  QueryAnswer operandError(int Resolution, std::string_view Operand,
                           const char *What);
  void finish(QueryAnswer &A, bool Cached);

  const AliasSummary &S;
  MetricsRegistry &M;
  /// Alias-pair cache; key is canonical (min,max) variable-id pair.
  std::map<std::pair<int, int>, Entry<bool>> AliasCache;
  /// Pointee cache; key is the variable id.
  std::map<int, Entry<std::vector<std::string>>> PointeeCache;
  /// Mod/ref cache; key is the function id (callsite queries fan out to
  /// per-function entries, so they share hits with direct queries).
  std::map<int, Entry<QueryAnswer>> ModRefCache;
};

} // namespace vdga

#endif // VDGA_QUERY_QUERYSESSION_H
