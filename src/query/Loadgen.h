//===- query/Loadgen.h - Query-service load generator ----------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic load generator for the query service: replays a
/// seeded stream of mixed `mayAlias` / `pointsTo` / `modref` queries
/// against one shared `AliasSummary` from N concurrent client threads
/// (one `QuerySession` per thread — the summary is immutable, so no
/// locks), and reports latency percentiles plus the aggregate cache hit
/// rate. This is the measurement behind the `query` section of the
/// vdga-bench-v1 artifact (docs/BENCH_FORMAT.md) and the `query-smoke`
/// ctest fixture; bench/query_loadgen.cpp is its CLI.
///
/// Operands are drawn uniformly from the summary's own universe
/// (variables, functions, call sites), so every generated query is
/// well-formed and the hit rate converges to 1 - U/Q for U distinct
/// questions in Q queries — a small universe replayed at volume is
/// exactly the compiler-client workload the caches exist for.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_QUERY_LOADGEN_H
#define VDGA_QUERY_LOADGEN_H

#include "query/QuerySession.h"

namespace vdga {

struct LoadgenOptions {
  /// Client threads; 0 or 1 runs serially (support/ThreadPool.h).
  unsigned Threads = 4;
  /// Total queries, split evenly across threads.
  uint64_t Queries = 100000;
  /// Stream seed; same seed + same summary = same query stream.
  uint64_t Seed = 1;
};

/// What one load run measured.
struct QueryLoadReport {
  uint64_t Queries = 0; ///< Answered (== requested unless summary empty).
  uint64_t Errors = 0;  ///< Operand/usage errors (0 for generated streams).
  unsigned Threads = 0;
  double MeanUs = 0;
  double P50Us = 0;
  double P99Us = 0;
  uint64_t CacheHits = 0;   ///< Sum over the alias/pointee/modref caches.
  uint64_t CacheMisses = 0;
  /// CacheHits / (CacheHits + CacheMisses); 0 when no lookups ran.
  double HitRate = 0;
  /// Per-thread registries merged (query.* counters, per-op latencies).
  MetricsRegistry Metrics;
};

/// Runs the load; see file comment. Deterministic in everything except
/// the latency figures.
QueryLoadReport runQueryLoad(const AliasSummary &Summary,
                             const LoadgenOptions &Opts);

} // namespace vdga

#endif // VDGA_QUERY_LOADGEN_H
