//===- query/Loadgen.cpp --------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "query/Loadgen.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <future>

using namespace vdga;

namespace {

/// SplitMix64: tiny, seedable, and good enough for operand selection.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }

private:
  uint64_t State;
};

struct ThreadResult {
  uint64_t Queries = 0;
  uint64_t Errors = 0;
  std::vector<uint32_t> LatenciesUs;
  MetricsRegistry Metrics;
};

ThreadResult runClient(const AliasSummary &S, uint64_t Seed,
                       uint64_t Queries) {
  ThreadResult R;
  QuerySession Session(S, R.Metrics);
  Rng Rand(Seed);
  R.LatenciesUs.reserve(Queries);
  size_t NumVars = S.Variables.size();
  size_t NumFns = S.Functions.size();
  size_t NumSites = S.Callsites.size();
  for (uint64_t Q = 0; Q < Queries; ++Q) {
    auto Start = std::chrono::steady_clock::now();
    QueryAnswer A;
    // Mix: roughly half alias-pair probes (the compiler-client hot
    // path), the rest split between pointsTo and modref.
    uint64_t Roll = Rand.below(100);
    if (Roll < 50 && NumVars) {
      const std::string &VA = S.Variables[Rand.below(NumVars)].Name;
      const std::string &VB = S.Variables[Rand.below(NumVars)].Name;
      A = Session.mayAlias(VA, VB);
    } else if (Roll < 80 && NumVars) {
      A = Session.pointsTo(S.Variables[Rand.below(NumVars)].Name);
    } else if (Roll < 90 && NumFns) {
      A = Session.modref(S.Functions[Rand.below(NumFns)].Name);
    } else if (NumSites) {
      A = Session.modref(S.Callsites[Rand.below(NumSites)].Site);
    } else if (NumVars) {
      A = Session.pointsTo(S.Variables[Rand.below(NumVars)].Name);
    } else {
      continue; // Nothing queryable in this summary.
    }
    auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    R.LatenciesUs.push_back(static_cast<uint32_t>(
        std::min<int64_t>(Us, UINT32_MAX)));
    ++R.Queries;
    if (!A.Ok)
      ++R.Errors;
  }
  return R;
}

double percentile(const std::vector<uint32_t> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  return Sorted[Idx];
}

} // namespace

QueryLoadReport vdga::runQueryLoad(const AliasSummary &Summary,
                                   const LoadgenOptions &Opts) {
  QueryLoadReport Report;
  unsigned Threads = std::max(1u, Opts.Threads);
  Report.Threads = Threads;

  uint64_t PerThread = Opts.Queries / Threads;
  uint64_t Extra = Opts.Queries % Threads;

  ThreadPool Pool(Threads);
  std::vector<std::future<ThreadResult>> Futures;
  Futures.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T) {
    uint64_t N = PerThread + (T < Extra ? 1 : 0);
    uint64_t Seed = Opts.Seed * 0x9E3779B9ULL + T + 1;
    Futures.push_back(
        Pool.submit([&Summary, Seed, N] { return runClient(Summary, Seed, N); }));
  }

  std::vector<uint32_t> AllUs;
  AllUs.reserve(Opts.Queries);
  uint64_t SumUs = 0;
  for (auto &F : Futures) {
    ThreadResult R = F.get();
    Report.Queries += R.Queries;
    Report.Errors += R.Errors;
    for (uint32_t Us : R.LatenciesUs) {
      AllUs.push_back(Us);
      SumUs += Us;
    }
    Report.Metrics.merge(R.Metrics);
  }

  std::sort(AllUs.begin(), AllUs.end());
  Report.MeanUs = AllUs.empty()
                      ? 0
                      : static_cast<double>(SumUs) /
                            static_cast<double>(AllUs.size());
  Report.P50Us = percentile(AllUs, 0.50);
  Report.P99Us = percentile(AllUs, 0.99);

  auto Count = [&](const char *Name) -> uint64_t {
    const Metric *M = Report.Metrics.find(Name);
    return M ? M->Count : 0;
  };
  Report.CacheHits = Count("query.alias_hits") + Count("query.pointee_hits") +
                     Count("query.modref_hits");
  Report.CacheMisses = Count("query.alias_misses") +
                       Count("query.pointee_misses") +
                       Count("query.modref_misses");
  uint64_t Lookups = Report.CacheHits + Report.CacheMisses;
  Report.HitRate = Lookups ? static_cast<double>(Report.CacheHits) /
                                 static_cast<double>(Lookups)
                           : 0;
  return Report;
}
