//===- query/QuerySession.cpp ---------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "query/QuerySession.h"

#include <algorithm>
#include <set>

using namespace vdga;

bool QuerySession::locationsOverlap(std::string_view A, std::string_view B) {
  if (A == B)
    return true;
  if (A.size() > B.size())
    std::swap(A, B);
  // A strictly shorter: overlap iff B extends A at a component boundary
  // ("p" dominates "p.f" and "p[*]", but not "p2").
  return B.substr(0, A.size()) == A && (B[A.size()] == '.' || B[A.size()] == '[');
}

QueryAnswer QuerySession::operandError(int Resolution,
                                       std::string_view Operand,
                                       const char *What) {
  QueryAnswer A;
  A.Ok = false;
  std::string Name(Operand);
  if (Resolution == AliasSummary::Ambiguous) {
    A.Error = "ambiguous-operand";
    A.Detail = "'" + Name + "' names a local in more than one function; "
               "qualify it as fn." + Name;
  } else {
    A.Error = "unknown-operand";
    A.Detail = "no " + std::string(What) + " named '" + Name +
               "' (non-address-taken scalars are not store-resident and "
               "cannot be queried)";
  }
  return A;
}

void QuerySession::finish(QueryAnswer &A, bool Cached) {
  A.Cached = Cached;
  if (A.Ok) {
    A.Tier = S.Tier;
    A.Degraded = S.Tier != PrecisionTier::ContextInsens;
    if (A.Degraded)
      M.add("query.degraded_answers", 1);
  } else {
    M.add("query.errors", 1);
  }
  M.add("query.requests", 1);
}

QueryAnswer QuerySession::mayAlias(std::string_view NameA,
                                   std::string_view NameB, CacheMode Mode) {
  int IA = S.resolveVariable(NameA);
  if (IA < 0) {
    QueryAnswer A = operandError(IA, NameA, "variable");
    finish(A, false);
    return A;
  }
  int IB = S.resolveVariable(NameB);
  if (IB < 0) {
    QueryAnswer A = operandError(IB, NameB, "variable");
    finish(A, false);
    return A;
  }

  // Canonical symmetric key: mayAlias(a,b) and mayAlias(b,a) are the
  // same question and share one cache entry.
  std::pair<int, int> Key{std::min(IA, IB), std::max(IA, IB)};
  QueryAnswer A;
  if (Mode == CacheMode::Use) {
    if (auto It = AliasCache.find(Key); It != AliasCache.end()) {
      M.add("query.alias_hits", 1);
      A.Verdict = It->second.Value ? "may-alias" : "no-alias";
      finish(A, true);
      return A;
    }
    M.add("query.alias_misses", 1);
  }

  bool May = false;
  if (IA == IB) {
    May = true; // The same object trivially overlaps itself.
  } else {
    const auto &PA = S.Variables[IA].Pointees;
    const auto &PB = S.Variables[IB].Pointees;
    for (const std::string &LA : PA) {
      for (const std::string &LB : PB)
        if (locationsOverlap(LA, LB)) {
          May = true;
          break;
        }
      if (May)
        break;
    }
  }
  if (Mode == CacheMode::Use)
    AliasCache[Key] = {May, S.Tier};
  A.Verdict = May ? "may-alias" : "no-alias";
  finish(A, false);
  return A;
}

QueryAnswer QuerySession::pointsTo(std::string_view Var, CacheMode Mode) {
  int I = S.resolveVariable(Var);
  if (I < 0) {
    QueryAnswer A = operandError(I, Var, "variable");
    finish(A, false);
    return A;
  }
  QueryAnswer A;
  if (Mode == CacheMode::Use) {
    if (auto It = PointeeCache.find(I); It != PointeeCache.end()) {
      M.add("query.pointee_hits", 1);
      A.Locations = It->second.Value;
      finish(A, true);
      return A;
    }
    M.add("query.pointee_misses", 1);
    PointeeCache[I] = {S.Variables[I].Pointees, S.Tier};
  }
  A.Locations = S.Variables[I].Pointees;
  finish(A, false);
  return A;
}

QueryAnswer QuerySession::modref(std::string_view Operand, CacheMode Mode) {
  // A "line:col" operand is a call site; anything else is a function name.
  bool IsSite = Operand.find(':') != std::string_view::npos;

  // Per-function answer, memoized by function id.
  auto FunctionAnswer = [&](int Fn, bool &WasCached) -> QueryAnswer {
    if (Mode == CacheMode::Use) {
      if (auto It = ModRefCache.find(Fn); It != ModRefCache.end()) {
        M.add("query.modref_hits", 1);
        WasCached = true;
        return It->second.Value;
      }
      M.add("query.modref_misses", 1);
    }
    WasCached = false;
    const AliasSummary::Function &F = S.Functions[Fn];
    QueryAnswer A;
    A.TopModRef = F.TopModRef;
    if (!F.TopModRef) {
      A.Mod = F.Mod;
      A.Ref = F.Ref;
    }
    if (Mode == CacheMode::Use)
      ModRefCache[Fn] = {A, S.Tier};
    return A;
  };

  if (!IsSite) {
    int Fn = S.resolveFunction(Operand);
    if (Fn < 0) {
      QueryAnswer A = operandError(Fn, Operand, "defined function");
      finish(A, false);
      return A;
    }
    bool Cached = false;
    QueryAnswer A = FunctionAnswer(Fn, Cached);
    finish(A, Cached);
    return A;
  }

  int Site = S.resolveCallsite(Operand);
  if (Site < 0) {
    QueryAnswer A = operandError(Site, Operand, "call site");
    finish(A, false);
    return A;
  }
  const AliasSummary::Callsite &C = S.Callsites[Site];
  QueryAnswer A;
  bool AllCached = !C.Callees.empty();
  if (C.Callees.empty()) {
    // Under a degraded tier callee sets are unknown — the sound answer
    // is top. Under the complete tier an empty set means the solver
    // proved no callable value reaches this site: nothing is touched.
    A.TopModRef = S.Tier != PrecisionTier::ContextInsens;
  } else {
    std::set<std::string> Mod, Ref;
    for (const std::string &Callee : C.Callees) {
      int Fn = S.resolveFunction(Callee);
      if (Fn < 0) {
        // A discovered callee without a body: conservatively top.
        A.TopModRef = true;
        break;
      }
      bool Cached = false;
      QueryAnswer FA = FunctionAnswer(Fn, Cached);
      AllCached = AllCached && Cached;
      if (FA.TopModRef) {
        A.TopModRef = true;
        break;
      }
      Mod.insert(FA.Mod.begin(), FA.Mod.end());
      Ref.insert(FA.Ref.begin(), FA.Ref.end());
    }
    if (!A.TopModRef) {
      A.Mod.assign(Mod.begin(), Mod.end());
      A.Ref.assign(Ref.begin(), Ref.end());
    } else {
      AllCached = false;
    }
  }
  finish(A, AllCached);
  return A;
}
