//===- query/Server.h - vdga-query-v1 request handling ---------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server side of the query service: owns one analyzed program,
/// builds (or store-loads) its `AliasSummary` lazily on the first query,
/// and maps protocol request lines to `QuerySession` answers. The
/// transport is deliberately out of scope — `handleLine` is the whole
/// protocol state machine, so the same object serves the stdin/stdout
/// pipe mode (CI tests), the socket loop in tools/vdga-serve.cpp, and
/// in-process tests over stringstreams.
///
/// Admission control: the governed solve happens at most once, under the
/// server's GovernancePolicy; a `budget_ms` field on the triggering
/// request tightens (never loosens) that solve's wall-clock budget. If
/// the solve degrades, the server stays up and every answer carries the
/// degraded tier marker — a slow program costs precision, not liveness.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_QUERY_SERVER_H
#define VDGA_QUERY_SERVER_H

#include "lint/Lint.h"
#include "query/ArtifactStore.h"
#include "query/Protocol.h"
#include "query/QuerySession.h"

#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>

namespace vdga {

class AnalyzedProgram;

struct QueryServerOptions {
  /// Admission-control budgets for the one governed solve.
  GovernancePolicy Policy;
  /// Artifact-store directory; empty disables the store.
  std::string StoreDir;
};

/// See file comment. One server = one program; create() fails (frontend
/// diagnostics in \p Error) when the source does not analyze.
class QueryServer {
public:
  static std::unique_ptr<QueryServer> create(std::string Source,
                                             QueryServerOptions Opts,
                                             std::string *Error);
  ~QueryServer();

  /// Handles one request line (no trailing newline) and returns the
  /// response line (no trailing newline). Sets \p Shutdown on a
  /// `shutdown` request. Never throws; malformed input becomes a
  /// `parse-error` response.
  std::string handleLine(std::string_view Line, bool &Shutdown);

  /// Pipe mode: serve newline-delimited requests from \p In to \p Out
  /// until EOF or `shutdown`. Returns the process exit code (0).
  int runPipe(std::istream &In, std::ostream &Out);

  /// The analyzed program's registry (query.* counters land here).
  MetricsRegistry &metrics();

  /// The summary, solving it now if no query has triggered that yet.
  const AliasSummary &summary();

private:
  QueryServer(std::string Source, QueryServerOptions Opts,
              std::unique_ptr<AnalyzedProgram> AP);

  /// Builds or store-loads the summary once; \p Req may tighten the
  /// solve budget via "budget_ms".
  void ensureSummary(const QueryRequest *Req);

  std::string Source;
  QueryServerOptions Opts;
  std::unique_ptr<AnalyzedProgram> AP;
  ArtifactStore Store;
  std::optional<AliasSummary> Summary;
  std::optional<QuerySession> Session;
  /// Lint reports memoized per tier name: the pass battery runs at most
  /// once per tier over the server's lifetime.
  std::map<std::string, LintReport> LintCache;
};

} // namespace vdga

#endif // VDGA_QUERY_SERVER_H
