//===- corpus/Compiler.cpp - toy compiler benchmark ------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `compiler` benchmark domain (Landi suite):
// parse arithmetic expressions into heap AST nodes, constant-fold the
// tree, emit stack-machine code, run a peephole pass, then execute both
// the optimized and unoptimized programs and compare against direct
// evaluation. The paper reports no multi-location indirect operations
// for this program.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusCompiler() {
  return R"minic(
/* compiler: recursive-descent parser -> AST -> constant folder -> code
 * generator -> peephole optimizer -> VM, all cross-checked. */

struct node {
  int kind;            /* 0 literal, 1 var, 2 binop */
  int value;           /* literal value or variable index */
  int op;              /* '+', '-', '*', '/' */
  struct node *lhs;
  struct node *rhs;
};

struct instr {
  int opcode;          /* 0 push, 1 load, 2 add, 3 sub, 4 mul, 5 div */
  int operand;
};

char src[128];
int pos;
struct instr code[256];
int ncode;
int vars[8];
int nodes_allocated;
int folds_performed;
int peepholes_applied;

struct node *parse_expr();

/* ---------- parser ---------- */

struct node *new_node(int kind) {
  struct node *n;
  n = (struct node *) malloc(sizeof(struct node));
  n->kind = kind;
  n->value = 0;
  n->op = 0;
  n->lhs = 0;
  n->rhs = 0;
  nodes_allocated = nodes_allocated + 1;
  return n;
}

int peek_char() {
  return src[pos];
}

int next_char() {
  int c = src[pos];
  pos = pos + 1;
  return c;
}

struct node *parse_primary() {
  int c = peek_char();
  if (c == '(') {
    struct node *inner;
    next_char();
    inner = parse_expr();
    next_char(); /* ')' */
    return inner;
  }
  if (c >= 'a' && c <= 'h') {
    struct node *v = new_node(1);
    v->value = next_char() - 'a';
    return v;
  }
  {
    struct node *lit = new_node(0);
    int acc = 0;
    while (peek_char() >= '0' && peek_char() <= '9')
      acc = acc * 10 + (next_char() - '0');
    lit->value = acc;
    return lit;
  }
}

struct node *parse_term() {
  struct node *left = parse_primary();
  while (peek_char() == '*' || peek_char() == '/') {
    struct node *bin = new_node(2);
    bin->op = next_char();
    bin->lhs = left;
    bin->rhs = parse_primary();
    left = bin;
  }
  return left;
}

struct node *parse_expr() {
  struct node *left = parse_term();
  while (peek_char() == '+' || peek_char() == '-') {
    struct node *bin = new_node(2);
    bin->op = next_char();
    bin->lhs = left;
    bin->rhs = parse_term();
    left = bin;
  }
  return left;
}

/* ---------- constant folding (rewrites the tree in place) ---------- */

int apply_op(int op, int a, int b) {
  if (op == '+')
    return a + b;
  if (op == '-')
    return a - b;
  if (op == '*')
    return a * b;
  return b != 0 ? a / b : 0;
}

struct node *fold_tree(struct node *n) {
  if (n->kind != 2)
    return n;
  n->lhs = fold_tree(n->lhs);
  n->rhs = fold_tree(n->rhs);
  if (n->lhs->kind == 0 && n->rhs->kind == 0) {
    n->kind = 0;
    n->value = apply_op(n->op, n->lhs->value, n->rhs->value);
    n->lhs = 0;
    n->rhs = 0;
    folds_performed = folds_performed + 1;
    return n;
  }
  /* x * 1, x + 0, x - 0 simplify to x */
  if (n->rhs->kind == 0 &&
      ((n->op == '*' && n->rhs->value == 1) ||
       (n->op == '+' && n->rhs->value == 0) ||
       (n->op == '-' && n->rhs->value == 0))) {
    folds_performed = folds_performed + 1;
    return n->lhs;
  }
  if (n->lhs->kind == 0 &&
      ((n->op == '*' && n->lhs->value == 1) ||
       (n->op == '+' && n->lhs->value == 0))) {
    folds_performed = folds_performed + 1;
    return n->rhs;
  }
  return n;
}

/* ---------- code generation ---------- */

void emit(int opcode, int operand) {
  code[ncode].opcode = opcode;
  code[ncode].operand = operand;
  ncode = ncode + 1;
}

void gen(struct node *n) {
  if (n->kind == 0) {
    emit(0, n->value);
    return;
  }
  if (n->kind == 1) {
    emit(1, n->value);
    return;
  }
  gen(n->lhs);
  gen(n->rhs);
  if (n->op == '+')
    emit(2, 0);
  else if (n->op == '-')
    emit(3, 0);
  else if (n->op == '*')
    emit(4, 0);
  else
    emit(5, 0);
}

/* ---------- peephole: fold push;push;op triples ---------- */

int peephole() {
  int changed = 0;
  int i = 0;
  while (i + 2 < ncode) {
    struct instr *a = &code[i];
    struct instr *b = &code[i + 1];
    struct instr *c = &code[i + 2];
    if (a->opcode == 0 && b->opcode == 0 && c->opcode >= 2 &&
        c->opcode <= 5) {
      int op = c->opcode == 2 ? '+'
             : c->opcode == 3 ? '-'
             : c->opcode == 4 ? '*' : '/';
      int folded = apply_op(op, a->operand, b->operand);
      int j;
      a->operand = folded;
      for (j = i + 1; j + 2 < ncode; j++)
        code[j] = code[j + 2];
      ncode = ncode - 2;
      changed = 1;
      peepholes_applied = peepholes_applied + 1;
    } else {
      i = i + 1;
    }
  }
  return changed;
}

/* ---------- VM ---------- */

int run_vm() {
  int stack[64];
  int sp = 0;
  int pc;
  for (pc = 0; pc < ncode; pc++) {
    struct instr *ins = &code[pc];
    if (ins->opcode == 0) {
      stack[sp] = ins->operand;
      sp = sp + 1;
    } else if (ins->opcode == 1) {
      stack[sp] = vars[ins->operand];
      sp = sp + 1;
    } else {
      int b = stack[sp - 1];
      int a = stack[sp - 2];
      int op = ins->opcode == 2 ? '+'
             : ins->opcode == 3 ? '-'
             : ins->opcode == 4 ? '*' : '/';
      sp = sp - 1;
      stack[sp - 1] = apply_op(op, a, b);
    }
  }
  return stack[0];
}

/* ---------- reference: direct tree evaluation ---------- */

int eval_tree(struct node *n) {
  if (n->kind == 0)
    return n->value;
  if (n->kind == 1)
    return vars[n->value];
  return apply_op(n->op, eval_tree(n->lhs), eval_tree(n->rhs));
}

/* ---------- driver ---------- */

int mismatches;

int compile_and_run(char *text) {
  struct node *ast;
  struct node *folded;
  int direct;
  int unopt;
  int peeped;
  int opt;
  strcpy(src, text);
  pos = 0;
  ncode = 0;
  ast = parse_expr();
  direct = eval_tree(ast);

  gen(ast);
  unopt = run_vm();

  /* Peephole over the unoptimized code: push;push;op triples fold. */
  while (peephole()) {
  }
  peeped = run_vm();

  folded = fold_tree(ast);
  ncode = 0;
  gen(folded);
  opt = run_vm();

  if (direct != unopt || direct != opt || direct != peeped) {
    mismatches = mismatches + 1;
    printf("compiler: MISMATCH %d/%d/%d/%d on %s\n", direct, unopt,
           peeped, opt, text);
  }
  return opt;
}

int main() {
  int total = 0;
  mismatches = 0;
  nodes_allocated = 0;
  folds_performed = 0;
  peepholes_applied = 0;
  vars[0] = 10;
  vars[1] = 3;
  vars[2] = 7;
  total = total + compile_and_run("1+2*3");
  total = total + compile_and_run("(1+2)*3");
  total = total + compile_and_run("a*b+c");
  total = total + compile_and_run("(a+b)*(c-2)");
  total = total + compile_and_run("100/(b+2)-4");
  total = total + compile_and_run("a*1+0*b+c-0");
  total = total + compile_and_run("2*3*4+a");
  total = total + compile_and_run("((((1+1))))*((a))");
  printf("compiler: total %d, %d nodes, %d folds, %d peepholes, "
         "%d mismatches\n",
         total, nodes_allocated, folds_performed, peepholes_applied,
         mismatches);
  return mismatches;
}
)minic";
}
