//===- corpus/Allroots.cpp - polynomial root finder benchmark --------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `allroots` benchmark domain (Landi suite):
// find all real roots of polynomials by bisection plus deflation.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusAllroots() {
  return R"minic(
/* allroots: evaluate polynomials through coefficient pointers, locate
 * sign changes by scanning, refine each root by bisection, then deflate
 * the polynomial and repeat. */

struct poly {
  int degree;
  double coef[16];
};

struct poly work;
struct poly deflated;
double roots[16];
int nroots;

double eval_poly(struct poly *p, double x) {
  double acc = 0.0;
  int i;
  for (i = p->degree; i >= 0; i--)
    acc = acc * x + p->coef[i];
  return acc;
}

double bisect(struct poly *p, double lo, double hi) {
  double flo = eval_poly(p, lo);
  int iter;
  for (iter = 0; iter < 60; iter++) {
    double mid = (lo + hi) / 2.0;
    double fmid = eval_poly(p, mid);
    if ((flo < 0.0 && fmid < 0.0) || (flo >= 0.0 && fmid >= 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

/* Divide p by (x - r), writing the quotient into q. */
void deflate(struct poly *p, double r, struct poly *q) {
  int i;
  double carry = p->coef[p->degree];
  q->degree = p->degree - 1;
  for (i = p->degree - 1; i >= 0; i--) {
    q->coef[i] = carry;
    carry = p->coef[i] + r * carry;
  }
}

void copy_poly(struct poly *dst, struct poly *src) {
  int i;
  dst->degree = src->degree;
  for (i = 0; i <= src->degree; i++)
    dst->coef[i] = src->coef[i];
}

int find_bracket(struct poly *p, double *lo_out, double *hi_out) {
  double x = -16.0;
  double fx = eval_poly(p, x);
  while (x < 16.0) {
    double nx = x + 0.25;
    double fnx = eval_poly(p, nx);
    if ((fx < 0.0 && fnx >= 0.0) || (fx >= 0.0 && fnx < 0.0)) {
      *lo_out = x;
      *hi_out = nx;
      return 1;
    }
    x = nx;
    fx = fnx;
  }
  return 0;
}

void all_roots(struct poly *p) {
  double lo;
  double hi;
  nroots = 0;
  copy_poly(&work, p);
  while (work.degree > 0 && find_bracket(&work, &lo, &hi)) {
    double r = bisect(&work, lo, hi);
    roots[nroots] = r;
    nroots = nroots + 1;
    deflate(&work, r, &deflated);
    copy_poly(&work, &deflated);
  }
}

/* Formal derivative p' of p, written into d. */
void derive(struct poly *p, struct poly *d) {
  int i;
  d->degree = p->degree > 0 ? p->degree - 1 : 0;
  for (i = 1; i <= p->degree; i++)
    d->coef[i - 1] = p->coef[i] * i;
  if (p->degree == 0)
    d->coef[0] = 0.0;
}

/* Newton refinement from a bisection estimate; falls back to the
 * original estimate when the derivative is too flat. */
double newton_polish(struct poly *p, double x0) {
  struct poly d;
  double x = x0;
  int iter;
  derive(p, &d);
  for (iter = 0; iter < 12; iter++) {
    double fx = eval_poly(p, x);
    double dfx = eval_poly(&d, x);
    if (fabs(dfx) < 0.000001)
      return x0;
    x = x - fx / dfx;
  }
  return x;
}

/* Residual check: max |p(root)| over all found roots, in millionths. */
int max_residual(struct poly *p) {
  int i;
  double worst = 0.0;
  for (i = 0; i < nroots; i++) {
    double r = fabs(eval_poly(p, roots[i]));
    if (r > worst)
      worst = r;
  }
  return (int) (worst * 1000000.0);
}

void set_poly_cubic(struct poly *p, double a, double b, double c, double d) {
  p->degree = 3;
  p->coef[0] = d;
  p->coef[1] = c;
  p->coef[2] = b;
  p->coef[3] = a;
}

void set_poly_quartic(struct poly *p, double a, double b, double c,
                      double d, double e) {
  p->degree = 4;
  p->coef[0] = e;
  p->coef[1] = d;
  p->coef[2] = c;
  p->coef[3] = b;
  p->coef[4] = a;
}

void report(char *name, struct poly *p) {
  int i;
  all_roots(p);
  for (i = 0; i < nroots; i++)
    roots[i] = newton_polish(p, roots[i]);
  printf("allroots: %s has %d real roots:", name, nroots);
  for (i = 0; i < nroots; i++)
    printf(" %g", roots[i]);
  printf(" (residual %d/1e6)\n", max_residual(p));
}

int main() {
  struct poly cubic;
  struct poly quartic;
  struct poly line;
  /* (x - 1)(x - 2)(x + 3) = x^3 - 7x + 6 */
  set_poly_cubic(&cubic, 1.0, 0.0, -7.0, 6.0);
  report("cubic", &cubic);
  /* (x-1)(x+1)(x-2)(x+2) = x^4 - 5x^2 + 4 */
  set_poly_quartic(&quartic, 1.0, 0.0, -5.0, 0.0, 4.0);
  report("quartic", &quartic);
  /* 2x - 5 */
  line.degree = 1;
  line.coef[0] = -5.0;
  line.coef[1] = 2.0;
  report("line", &line);
  return 0;
}
)minic";
}
