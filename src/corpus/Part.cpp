//===- corpus/Part.cpp - particle partitioner benchmark --------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `part` benchmark domain (Austin suite).
// The paper singles this program out: it builds two linked lists that are
// manipulated by the same routines and exchanges elements between them
// early on, so any points-to pair aiming at the "wrong" list still
// references values the list really holds (Section 5.2's serendipity
// case).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusPart() {
  return R"minic(
/* part: partition particles into two boxes by coordinate, using one set
 * of list routines for both boxes, and migrate particles between boxes
 * as they drift. */

struct particle {
  double x;
  double y;
  double vx;
  double vy;
  int id;
  struct particle *next;
};

struct box {
  struct particle *head;
  int count;
};

struct box left_box;
struct box right_box;
int seed;
int migrations;

double frand() {
  seed = seed * 1103515245 + 12345;
  if (seed < 0)
    seed = -seed;
  return (seed % 1000) / 1000.0;
}

/* Shared list routines: both boxes flow through here, which is what
 * cross-pollutes the two lists under context-insensitive analysis. */
void box_push(struct box *b, struct particle *p) {
  p->next = b->head;
  b->head = p;
  b->count = b->count + 1;
}

struct particle *box_pop(struct box *b) {
  struct particle *p = b->head;
  if (p != 0) {
    b->head = p->next;
    b->count = b->count - 1;
  }
  return p;
}

struct particle *make_particle(int id) {
  struct particle *p;
  p = (struct particle *) malloc(sizeof(struct particle));
  p->id = id;
  p->x = frand();
  p->y = frand();
  p->vx = frand() - 0.5;
  p->vy = frand() - 0.5;
  p->next = 0;
  return p;
}

void seed_particles(int n) {
  int i;
  for (i = 0; i < n; i++) {
    struct particle *p = make_particle(i);
    if (p->x < 0.5)
      box_push(&left_box, p);
    else
      box_push(&right_box, p);
  }
}

/* Advance every particle in a box; return a list of escapers. */
struct particle *advance_box(struct box *b, int leftside) {
  struct particle *escaped = 0;
  struct particle *kept = 0;
  struct particle *p;
  while ((p = box_pop(b)) != 0) {
    p->x = p->x + p->vx * 0.1;
    p->y = p->y + p->vy * 0.1;
    if (p->x < 0.0) {
      p->x = -p->x;
      p->vx = -p->vx;
    }
    if (p->x > 1.0) {
      p->x = 2.0 - p->x;
      p->vx = -p->vx;
    }
    if ((leftside && p->x >= 0.5) || (!leftside && p->x < 0.5)) {
      p->next = escaped;
      escaped = p;
    } else {
      p->next = kept;
      kept = p;
    }
  }
  while (kept != 0) {
    struct particle *q = kept;
    kept = kept->next;
    box_push(b, q);
  }
  return escaped;
}

void migrate(struct particle *movers, struct box *dst) {
  while (movers != 0) {
    struct particle *q = movers;
    movers = movers->next;
    box_push(dst, q);
    migrations = migrations + 1;
  }
}

/* ---------- diagnostics over the shared lists ---------- */

/* Spatial 4x4 occupancy grid computed from both boxes. */
int grid[16];

void bin_box(struct box *b) {
  struct particle *p = b->head;
  while (p != 0) {
    int gx = (int) (p->x * 4.0);
    int gy = (int) (p->y * 4.0);
    if (gx < 0)
      gx = 0;
    if (gx > 3)
      gx = 3;
    if (gy < 0)
      gy = 0;
    if (gy > 3)
      gy = 3;
    grid[gy * 4 + gx] = grid[gy * 4 + gx] + 1;
    p = p->next;
  }
}

int busiest_cell() {
  int i;
  int best = 0;
  for (i = 0; i < 16; i++)
    grid[i] = 0;
  bin_box(&left_box);
  bin_box(&right_box);
  for (i = 1; i < 16; i++)
    if (grid[i] > grid[best])
      best = i;
  return best;
}

/* Total kinetic energy, in thousandths. */
int total_energy() {
  double e = 0.0;
  struct box *boxes[2];
  int bi;
  boxes[0] = &left_box;
  boxes[1] = &right_box;
  for (bi = 0; bi < 2; bi++) {
    struct particle *p = boxes[bi]->head;
    while (p != 0) {
      e = e + (p->vx * p->vx + p->vy * p->vy) / 2.0;
      p = p->next;
    }
  }
  return (int) (e * 1000.0);
}

/* The paper's element-exchange behaviour, made explicit: swap the first
 * particles of the two boxes through the shared routines. */
void exchange_heads() {
  struct particle *l = box_pop(&left_box);
  struct particle *r = box_pop(&right_box);
  if (l != 0)
    box_push(&right_box, l);
  if (r != 0)
    box_push(&left_box, r);
}

int main() {
  int step;
  seed = 99;
  migrations = 0;
  left_box.head = 0;
  left_box.count = 0;
  right_box.head = 0;
  right_box.count = 0;
  seed_particles(60);
  exchange_heads(); /* early cross-pollution, as the paper describes */
  for (step = 0; step < 20; step++) {
    struct particle *ltr = advance_box(&left_box, 1);
    struct particle *rtl = advance_box(&right_box, 0);
    migrate(ltr, &right_box);
    migrate(rtl, &left_box);
  }
  printf("part: left=%d right=%d migrations=%d\n", left_box.count,
         right_box.count, migrations);
  printf("part: busiest cell %d, energy %d/1000\n", busiest_cell(),
         total_energy());
  return 0;
}
)minic";
}
