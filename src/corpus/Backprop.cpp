//===- corpus/Backprop.cpp - neural network benchmark ----------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `backprop` benchmark domain (Austin
// suite): a small feed-forward network trained by backpropagation on XOR.
// The paper reports this program has no indirect operation referencing
// more than one location.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusBackprop() {
  return R"minic(
/* backprop: 2-4-1 network on the XOR task, weights in heap-allocated
 * layer objects reached through single-level pointers. */

struct layer {
  int nin;
  int nout;
  double weight[40];   /* nout x (nin + 1), bias folded in */
  double out[8];
  double delta[8];
};

struct layer *hidden;
struct layer *output;
int seed;

double frand() {
  seed = seed * 1103515245 + 12345;
  if (seed < 0)
    seed = -seed;
  return (seed % 2000) / 1000.0 - 1.0;
}

double sigmoid(double x) {
  return 1.0 / (1.0 + exp(-x));
}

struct layer *make_layer(int nin, int nout) {
  struct layer *l;
  int i;
  l = (struct layer *) malloc(sizeof(struct layer));
  l->nin = nin;
  l->nout = nout;
  for (i = 0; i < nout * (nin + 1); i++)
    l->weight[i] = frand() * 0.5;
  return l;
}

void forward(struct layer *l, double *in) {
  int o;
  int i;
  for (o = 0; o < l->nout; o++) {
    double sum = l->weight[o * (l->nin + 1) + l->nin];
    for (i = 0; i < l->nin; i++)
      sum = sum + l->weight[o * (l->nin + 1) + i] * in[i];
    l->out[o] = sigmoid(sum);
  }
}

void backward_output(struct layer *l, double target) {
  double y = l->out[0];
  l->delta[0] = y * (1.0 - y) * (target - y);
}

void backward_hidden(struct layer *l, struct layer *up) {
  int i;
  int o;
  for (i = 0; i < l->nout; i++) {
    double err = 0.0;
    for (o = 0; o < up->nout; o++)
      err = err + up->delta[o] * up->weight[o * (up->nin + 1) + i];
    l->delta[i] = l->out[i] * (1.0 - l->out[i]) * err;
  }
}

void adjust(struct layer *l, double *in, double rate) {
  int o;
  int i;
  for (o = 0; o < l->nout; o++) {
    for (i = 0; i < l->nin; i++)
      l->weight[o * (l->nin + 1) + i] =
          l->weight[o * (l->nin + 1) + i] + rate * l->delta[o] * in[i];
    l->weight[o * (l->nin + 1) + l->nin] =
        l->weight[o * (l->nin + 1) + l->nin] + rate * l->delta[o];
  }
}

double train_one(double a, double b, double target, double rate) {
  double in[2];
  in[0] = a;
  in[1] = b;
  forward(hidden, in);
  forward(output, hidden->out);
  backward_output(output, target);
  backward_hidden(hidden, output);
  adjust(output, hidden->out, rate);
  adjust(hidden, in, rate);
  return target - output->out[0];
}

double predict(double a, double b) {
  double in[2];
  in[0] = a;
  in[1] = b;
  forward(hidden, in);
  forward(output, hidden->out);
  return output->out[0];
}

/* Fraction (in percent) of the four corners classified correctly with a
 * 0.5 threshold against the given truth table. */
int accuracy(double t00, double t01, double t10, double t11) {
  int right = 0;
  if ((predict(0.0, 0.0) >= 0.5) == (t00 >= 0.5))
    right = right + 1;
  if ((predict(0.0, 1.0) >= 0.5) == (t01 >= 0.5))
    right = right + 1;
  if ((predict(1.0, 0.0) >= 0.5) == (t10 >= 0.5))
    right = right + 1;
  if ((predict(1.0, 1.0) >= 0.5) == (t11 >= 0.5))
    right = right + 1;
  return right * 25;
}

/* Weight checksum in thousandths, for reproducibility tracking. */
int weight_checksum(struct layer *l) {
  int i;
  double sum = 0.0;
  for (i = 0; i < l->nout * (l->nin + 1); i++)
    sum = sum + l->weight[i];
  return (int) (sum * 1000.0);
}

double train_task(double t00, double t01, double t10, double t11,
                  int epochs) {
  int epoch;
  double err = 0.0;
  for (epoch = 0; epoch < epochs; epoch++) {
    err = 0.0;
    err = err + fabs(train_one(0.0, 0.0, t00, 2.0));
    err = err + fabs(train_one(0.0, 1.0, t01, 2.0));
    err = err + fabs(train_one(1.0, 0.0, t10, 2.0));
    err = err + fabs(train_one(1.0, 1.0, t11, 2.0));
  }
  return err;
}

int main() {
  double xor_err;
  double and_err;
  int xor_acc;
  int and_acc;

  /* Task 1: XOR (the classic non-linearly-separable case). */
  seed = 7;
  hidden = make_layer(2, 4);
  output = make_layer(4, 1);
  xor_err = train_task(0.0, 1.0, 1.0, 0.0, 1200);
  xor_acc = accuracy(0.0, 1.0, 1.0, 0.0);
  printf("backprop: xor error %g, accuracy %d%%, checksum %d\n", xor_err,
         xor_acc, weight_checksum(hidden));

  /* Task 2: AND, retraining fresh layers. */
  seed = 11;
  hidden = make_layer(2, 4);
  output = make_layer(4, 1);
  and_err = train_task(0.0, 0.0, 0.0, 1.0, 120);
  and_acc = accuracy(0.0, 0.0, 0.0, 1.0);
  printf("backprop: and error %g, accuracy %d%%, checksum %d\n", and_err,
         and_acc, weight_checksum(hidden));
  return 0;
}
)minic";
}
