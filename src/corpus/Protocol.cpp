//===- corpus/Protocol.cpp - layered forwarding ring stress ----------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// Solver-scale stress program (not part of Figure 2): a layered
// protocol whose handler states form a call ring, so every actual ->
// formal copy discovered at solve time lands on one large dynamic
// cycle. The Figure 2 suite has no such structure; this program is
// where the wave/deep solver strategies earn their keep (and what the
// bench gate in BENCH_FORMAT.md measures).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusProtocol() {
  return R"minic(
/* protocol: a layered packet pipeline modeled as a ring of
 * forwarding states. Each stage inspects nothing but the TTL,
 * stages the message through local bookkeeping pointers, and
 * hands it to the next layer; delivery loops back to rx_sync
 * until the TTL runs out. The test vector below feeds the ring
 * messages from every allocation site at once. */

struct msg {
  int tag;
  int len;
  int hops;
  struct msg *link;
};

int delivered;
int dropped;

struct msg *rx_sync(struct msg *m, int ttl);
struct msg *rx_parse(struct msg *m, int ttl);
struct msg *validate(struct msg *m, int ttl);
struct msg *classify(struct msg *m, int ttl);
struct msg *route(struct msg *m, int ttl);
struct msg *shape(struct msg *m, int ttl);
struct msg *enqueue(struct msg *m, int ttl);
struct msg *schedule(struct msg *m, int ttl);
struct msg *tx_encode(struct msg *m, int ttl);
struct msg *tx_frame(struct msg *m, int ttl);
struct msg *tx_send(struct msg *m, int ttl);
struct msg *account(struct msg *m, int ttl);

struct msg *rx_sync(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return rx_parse(fwd, ttl - 1);
}

struct msg *rx_parse(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return validate(fwd, ttl - 1);
}

struct msg *validate(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return classify(fwd, ttl - 1);
}

struct msg *classify(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return route(fwd, ttl - 1);
}

struct msg *route(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return shape(fwd, ttl - 1);
}

struct msg *shape(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return enqueue(fwd, ttl - 1);
}

struct msg *enqueue(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return schedule(fwd, ttl - 1);
}

struct msg *schedule(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return tx_encode(fwd, ttl - 1);
}

struct msg *tx_encode(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return tx_frame(fwd, ttl - 1);
}

struct msg *tx_frame(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return tx_send(fwd, ttl - 1);
}

struct msg *tx_send(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return account(fwd, ttl - 1);
}

struct msg *account(struct msg *m, int ttl) {
  struct msg *cur = m;
  struct msg *audit = cur;
  struct msg *fwd = audit;
  if (ttl <= 0) {
    delivered = delivered + 1;
    return fwd;
  }
  return rx_sync(fwd, ttl - 1);
}

int main() {
  struct msg *inbox = 0;
  struct msg *m = 0;
  struct msg *out = 0;
  int total = 0;
  delivered = 0;
  dropped = 0;
  /* Test vector: one message per protocol class. A message
   * with a non-positive length is malformed and dropped on
   * the floor instead of being linked into the inbox. */
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 11;
  m->len = 4;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 48;
  m->len = 17;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 85;
  m->len = 30;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 22;
  m->len = 43;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 59;
  m->len = 56;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 96;
  m->len = 8;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 33;
  m->len = 21;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 70;
  m->len = 34;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 7;
  m->len = 47;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 44;
  m->len = 60;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 81;
  m->len = 12;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 18;
  m->len = 25;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 55;
  m->len = 38;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 92;
  m->len = 51;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 29;
  m->len = 64;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 66;
  m->len = 16;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 3;
  m->len = 29;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 40;
  m->len = 42;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 77;
  m->len = 55;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 14;
  m->len = 7;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 51;
  m->len = 20;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 88;
  m->len = 33;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 25;
  m->len = 46;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  m = (struct msg *) malloc(sizeof(struct msg));
  m->tag = 62;
  m->len = 59;
  m->hops = 0;
  m->link = inbox;
  if (m->len > 0)
    inbox = m;
  else
    dropped = dropped + 1;
  /* Drive every queued message around the ring. */
  m = inbox;
  while (m != 0) {
    out = rx_sync(m, 40);
    total = total + out->len;
    m = m->link;
  }
  printf("protocol: %d delivered, %d dropped, %d bytes\n",
         delivered, dropped, total);
  return 0;
}
)minic";
}
