//===- corpus/Anagram.cpp - anagram finder benchmark -----------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `anagram` benchmark domain (Austin suite):
// group the words of an embedded dictionary by their letter signatures.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusAnagram() {
  return R"minic(
/* anagram: hash each word by its sorted-letter signature and collect
 * anagram classes on heap-allocated chains. */

struct word {
  char text[16];
  char sig[16];
  struct word *next;   /* next word in the same bucket */
  struct word *peer;   /* next member of the same anagram class */
};

struct word *buckets[64];
int nwords;
int nclasses;
int biggest;

void make_signature(char *text, char *sig) {
  int i;
  int j;
  int n = strlen(text);
  for (i = 0; i < n; i++)
    sig[i] = text[i];
  sig[n] = '\0';
  /* insertion sort of the letters */
  for (i = 1; i < n; i++) {
    char c = sig[i];
    j = i - 1;
    while (j >= 0 && sig[j] > c) {
      sig[j + 1] = sig[j];
      j = j - 1;
    }
    sig[j + 1] = c;
  }
}

int hash_signature(char *sig) {
  int h = 0;
  int i = 0;
  while (sig[i] != '\0') {
    h = h * 31 + sig[i];
    i = i + 1;
  }
  if (h < 0)
    h = -h;
  return h % 64;
}

void add_word(char *text) {
  struct word *w;
  struct word *scan;
  int h;
  w = (struct word *) malloc(sizeof(struct word));
  strcpy(w->text, text);
  make_signature(w->text, w->sig);
  w->peer = 0;
  h = hash_signature(w->sig);
  /* look for an existing class with the same signature */
  scan = buckets[h];
  while (scan != 0) {
    if (strcmp(scan->sig, w->sig) == 0) {
      w->peer = scan->peer;
      scan->peer = w;
      nwords = nwords + 1;
      return;
    }
    scan = scan->next;
  }
  w->next = buckets[h];
  buckets[h] = w;
  nwords = nwords + 1;
  nclasses = nclasses + 1;
}

int class_size(struct word *w) {
  int n = 0;
  while (w != 0) {
    n = n + 1;
    w = w->peer;
  }
  return n;
}

void scan_classes() {
  int i;
  biggest = 0;
  for (i = 0; i < 64; i++) {
    struct word *w = buckets[i];
    while (w != 0) {
      int n = class_size(w);
      if (n > biggest)
        biggest = n;
      w = w->next;
    }
  }
}

/* Longest chain in the hash table (load diagnostics). */
int longest_chain() {
  int i;
  int best = 0;
  for (i = 0; i < 64; i++) {
    int n = 0;
    struct word *w = buckets[i];
    while (w != 0) {
      n = n + 1;
      w = w->next;
    }
    if (n > best)
      best = n;
  }
  return best;
}

/* Count classes with at least `k` members. */
int classes_of_size(int k) {
  int i;
  int n = 0;
  for (i = 0; i < 64; i++) {
    struct word *w = buckets[i];
    while (w != 0) {
      if (class_size(w) >= k)
        n = n + 1;
      w = w->next;
    }
  }
  return n;
}

/* Find a word and return the size of its anagram class. */
int lookup_class(char *text) {
  char sig[16];
  int h;
  struct word *w;
  make_signature(text, sig);
  h = hash_signature(sig);
  w = buckets[h];
  while (w != 0) {
    if (strcmp(w->sig, sig) == 0)
      return class_size(w);
    w = w->next;
  }
  return 0;
}

int main() {
  int i;
  for (i = 0; i < 64; i++)
    buckets[i] = 0;
  nwords = 0;
  nclasses = 0;

  add_word("listen");
  add_word("silent");
  add_word("enlist");
  add_word("google");
  add_word("gogole");
  add_word("banana");
  add_word("cat");
  add_word("act");
  add_word("tac");
  add_word("dog");
  add_word("god");
  add_word("sting");
  add_word("tings");
  add_word("night");
  add_word("thing");
  add_word("below");
  add_word("elbow");
  add_word("study");
  add_word("dusty");
  add_word("care");
  add_word("race");
  add_word("acre");
  add_word("stop");
  add_word("tops");
  add_word("pots");
  add_word("opts");
  add_word("spot");
  add_word("post");
  add_word("east");
  add_word("eats");
  add_word("seat");
  add_word("teas");
  add_word("stale");
  add_word("least");
  add_word("steal");
  add_word("tales");
  add_word("peach");
  add_word("cheap");
  add_word("lemon");
  add_word("melon");
  add_word("brag");
  add_word("grab");

  scan_classes();
  printf("anagram: %d words, %d classes, largest class %d\n", nwords,
         nclasses, biggest);
  printf("anagram: longest chain %d, classes>=3 %d, stop-class %d\n",
         longest_chain(), classes_of_size(3), lookup_class("spot"));
  return 0;
}
)minic";
}
