//===- corpus/Bc.cpp - calculator benchmark --------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `bc` benchmark domain (FSF): a calculator
// with named variables, user-defined one-argument functions, and two
// independent evaluation engines (direct precedence climbing and an RPN
// compiler + stack machine) that cross-check each other. In the paper's
// suite bc is the largest and the least single-location program; this
// reimplementation keeps that character: it is the corpus' heaviest user
// of multi-target pointers (`char **` cursors, shared symbol chains).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusBc() {
  return R"minic(
/* bc: statements over named variables and one-parameter functions.
 *
 *   stmt  := name '=' expr | 'def' name body | expr
 *   expr  := term (('+'|'-') term)*
 *   term  := unary (('*'|'/'|'%') unary)*
 *   unary := '-' unary | primary
 *   primary := number | name | name '(' expr ')' | '(' expr ')'
 *
 * Engine 1 evaluates the text directly; engine 2 compiles to RPN and runs
 * a stack machine. Both share the symbol table. */

struct symbol {
  char name[12];
  int value;
  char *body;          /* function body text, or 0 for plain variables */
  int calls;           /* how often the function was invoked */
  struct symbol *next;
};

struct rpn_op {
  int kind;            /* 0 push-const, 1 load-var, 2 call, 3..7 + - * / %, 8 neg */
  int operand;
  struct symbol *sym;  /* for loads and calls */
};

struct symbol *symtab;
int depth;
int engine_mismatches;
struct rpn_op rpn_code[128];
int rpn_len;
int rpn_stack[64];
int rpn_sp;

/* ---------- symbol table ---------- */

struct symbol *sym_lookup(char *name) {
  struct symbol *s = symtab;
  while (s != 0) {
    if (strcmp(s->name, name) == 0)
      return s;
    s = s->next;
  }
  return 0;
}

struct symbol *sym_define(char *name) {
  struct symbol *s = sym_lookup(name);
  if (s != 0)
    return s;
  s = (struct symbol *) malloc(sizeof(struct symbol));
  strcpy(s->name, name);
  s->value = 0;
  s->body = 0;
  s->calls = 0;
  s->next = symtab;
  symtab = s;
  return s;
}

int count_symbols() {
  int n = 0;
  struct symbol *s = symtab;
  while (s != 0) {
    n = n + 1;
    s = s->next;
  }
  return n;
}

/* ---------- shared lexical helpers (cursor passed by reference) ---------- */

void skip_spaces(char **cur) {
  while (**cur == ' ')
    *cur = *cur + 1;
}

int read_name(char **cur, char *out) {
  int n = 0;
  skip_spaces(cur);
  while (**cur >= 'a' && **cur <= 'z' && n < 11) {
    out[n] = **cur;
    n = n + 1;
    *cur = *cur + 1;
  }
  out[n] = '\0';
  return n;
}

int read_number(char **cur) {
  int acc = 0;
  skip_spaces(cur);
  while (**cur >= '0' && **cur <= '9') {
    acc = acc * 10 + (**cur - '0');
    *cur = *cur + 1;
  }
  return acc;
}

/* ---------- engine 1: direct evaluation ---------- */

int eval_expr(char **cur);

int eval_call(struct symbol *fn, int arg) {
  struct symbol *param;
  int saved;
  int result;
  char *body;
  if (fn == 0 || fn->body == 0 || depth > 16)
    return 0;
  fn->calls = fn->calls + 1;
  param = sym_define("x");
  saved = param->value;
  param->value = arg;
  body = fn->body;
  depth = depth + 1;
  result = eval_expr(&body);
  depth = depth - 1;
  param->value = saved;
  return result;
}

int eval_primary(char **cur) {
  skip_spaces(cur);
  if (**cur == '(') {
    int v;
    *cur = *cur + 1;
    v = eval_expr(cur);
    skip_spaces(cur);
    if (**cur == ')')
      *cur = *cur + 1;
    return v;
  }
  if (**cur == '-') {
    *cur = *cur + 1;
    return -eval_primary(cur);
  }
  if (**cur >= 'a' && **cur <= 'z') {
    char name[12];
    struct symbol *s;
    read_name(cur, name);
    skip_spaces(cur);
    s = sym_lookup(name);
    if (**cur == '(') {
      int arg;
      *cur = *cur + 1;
      arg = eval_expr(cur);
      skip_spaces(cur);
      if (**cur == ')')
        *cur = *cur + 1;
      return eval_call(s, arg);
    }
    if (s == 0)
      return 0;
    return s->value;
  }
  return read_number(cur);
}

int eval_term(char **cur) {
  int v = eval_primary(cur);
  for (;;) {
    skip_spaces(cur);
    if (**cur == '*') {
      *cur = *cur + 1;
      v = v * eval_primary(cur);
    } else if (**cur == '/') {
      int d;
      *cur = *cur + 1;
      d = eval_primary(cur);
      v = d != 0 ? v / d : 0;
    } else if (**cur == '%') {
      int d;
      *cur = *cur + 1;
      d = eval_primary(cur);
      v = d != 0 ? v % d : 0;
    } else {
      return v;
    }
  }
}

int eval_expr(char **cur) {
  int v = eval_term(cur);
  for (;;) {
    skip_spaces(cur);
    if (**cur == '+') {
      *cur = *cur + 1;
      v = v + eval_term(cur);
    } else if (**cur == '-') {
      *cur = *cur + 1;
      v = v - eval_term(cur);
    } else {
      return v;
    }
  }
}

/* ---------- engine 2: RPN compiler + stack machine ---------- */

void rpn_emit(int kind, int operand, struct symbol *sym) {
  rpn_code[rpn_len].kind = kind;
  rpn_code[rpn_len].operand = operand;
  rpn_code[rpn_len].sym = sym;
  rpn_len = rpn_len + 1;
}

void compile_expr(char **cur);

void compile_primary(char **cur) {
  skip_spaces(cur);
  if (**cur == '(') {
    *cur = *cur + 1;
    compile_expr(cur);
    skip_spaces(cur);
    if (**cur == ')')
      *cur = *cur + 1;
    return;
  }
  if (**cur == '-') {
    *cur = *cur + 1;
    compile_primary(cur);
    rpn_emit(8, 0, 0);
    return;
  }
  if (**cur >= 'a' && **cur <= 'z') {
    char name[12];
    struct symbol *s;
    read_name(cur, name);
    skip_spaces(cur);
    s = sym_define(name);
    if (**cur == '(') {
      *cur = *cur + 1;
      compile_expr(cur);
      skip_spaces(cur);
      if (**cur == ')')
        *cur = *cur + 1;
      rpn_emit(2, 0, s);
      return;
    }
    rpn_emit(1, 0, s);
    return;
  }
  rpn_emit(0, read_number(cur), 0);
}

void compile_term(char **cur) {
  compile_primary(cur);
  for (;;) {
    skip_spaces(cur);
    if (**cur == '*') {
      *cur = *cur + 1;
      compile_primary(cur);
      rpn_emit(5, 0, 0);
    } else if (**cur == '/') {
      *cur = *cur + 1;
      compile_primary(cur);
      rpn_emit(6, 0, 0);
    } else if (**cur == '%') {
      *cur = *cur + 1;
      compile_primary(cur);
      rpn_emit(7, 0, 0);
    } else {
      return;
    }
  }
}

void compile_expr(char **cur) {
  compile_term(cur);
  for (;;) {
    skip_spaces(cur);
    if (**cur == '+') {
      *cur = *cur + 1;
      compile_term(cur);
      rpn_emit(3, 0, 0);
    } else if (**cur == '-') {
      *cur = *cur + 1;
      compile_term(cur);
      rpn_emit(4, 0, 0);
    } else {
      return;
    }
  }
}

void rpn_push(int v) {
  rpn_stack[rpn_sp] = v;
  rpn_sp = rpn_sp + 1;
}

int rpn_pop() {
  rpn_sp = rpn_sp - 1;
  return rpn_stack[rpn_sp];
}

int run_rpn() {
  int pc;
  rpn_sp = 0;
  for (pc = 0; pc < rpn_len; pc++) {
    struct rpn_op *op = &rpn_code[pc];
    if (op->kind == 0) {
      rpn_push(op->operand);
    } else if (op->kind == 1) {
      rpn_push(op->sym->value);
    } else if (op->kind == 2) {
      rpn_push(eval_call(op->sym, rpn_pop()));
    } else if (op->kind == 8) {
      rpn_push(-rpn_pop());
    } else {
      int b = rpn_pop();
      int a = rpn_pop();
      if (op->kind == 3)
        rpn_push(a + b);
      else if (op->kind == 4)
        rpn_push(a - b);
      else if (op->kind == 5)
        rpn_push(a * b);
      else if (op->kind == 6)
        rpn_push(b != 0 ? a / b : 0);
      else
        rpn_push(b != 0 ? a % b : 0);
    }
  }
  return rpn_sp > 0 ? rpn_stack[rpn_sp - 1] : 0;
}

/* Evaluate with both engines and cross-check. */
int eval_checked(char *text) {
  char *cur1 = text;
  char *cur2 = text;
  int direct = eval_expr(&cur1);
  int compiled;
  rpn_len = 0;
  compile_expr(&cur2);
  compiled = run_rpn();
  if (direct != compiled) {
    engine_mismatches = engine_mismatches + 1;
    printf("bc: ENGINE MISMATCH %d vs %d on %s\n", direct, compiled, text);
  }
  return direct;
}

/* Copy statement text into owned heap storage, like bc's line reader;
 * cursors and function bodies then point into the pool rather than at
 * the caller's storage. */
char *intern_text(char *s) {
  char *p = (char *) malloc(strlen(s) + 1);
  strcpy(p, s);
  return p;
}

/* statement := name '=' expr | 'def' name body | expr */
int exec_statement(char *stmt) {
  char name[12];
  char *text = intern_text(stmt);
  char *cur = text;
  char *probe;
  read_name(&cur, name);
  skip_spaces(&cur);
  if (name[0] != '\0' && strcmp(name, "def") == 0) {
    char fname[12];
    struct symbol *s;
    read_name(&cur, fname);
    s = sym_define(fname);
    skip_spaces(&cur);
    s->body = cur;
    return 0;
  }
  probe = cur;
  if (name[0] != '\0' && *probe == '=') {
    struct symbol *s = sym_define(name);
    cur = probe + 1;
    s->value = eval_checked(cur);
    return s->value;
  }
  return eval_checked(text);
}

int call_count(char *fname) {
  struct symbol *s = sym_lookup(fname);
  return s != 0 ? s->calls : 0;
}

int main() {
  int r1;
  int r2;
  int r3;
  symtab = 0;
  depth = 0;
  engine_mismatches = 0;

  exec_statement("a = 6");
  exec_statement("b = 7");
  exec_statement("c = a * b");
  exec_statement("scale = 100");
  exec_statement("def square x * x");
  exec_statement("def cube x * square(x)");
  exec_statement("def twice x + x");
  exec_statement("def poly square(x) + twice(x) + 1");

  r1 = exec_statement("square(a) + cube(b) + c");
  r2 = exec_statement("(a + b) % 5 - square(2)");
  r3 = exec_statement("poly(a) - poly(b) + scale / (a - 2)");
  exec_statement("total = square(a+b) + cube(a-b)");

  printf("bc: r1=%d r2=%d r3=%d total=%d\n", r1, r2, r3,
         exec_statement("total"));
  printf("bc: %d symbols, square called %d times, mismatches=%d\n",
         count_symbols(), call_count("square"), engine_mismatches);
  return engine_mismatches;
}
)minic";
}
