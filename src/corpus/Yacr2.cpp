//===- corpus/Yacr2.cpp - channel router benchmark --------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `yacr2` benchmark domain (Austin suite):
// VLSI channel routing — assign nets to horizontal tracks subject to
// vertical and horizontal constraints.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusYacr2() {
  return R"minic(
/* yacr2: nets connect a top pin column to a bottom pin column; two nets
 * sharing a column impose a vertical order, overlapping spans cannot
 * share a track. Assign greedy track numbers honoring both constraint
 * graphs. */

struct net {
  int id;
  int left;            /* leftmost column */
  int right;           /* rightmost column */
  int track;           /* assigned track, 0 = unassigned */
  struct net *next;    /* chain of nets ordered by left edge */
};

struct vedge {
  int above;           /* net id that must be above */
  int below;           /* net id that must be below */
  struct vedge *next;
};

struct net *nets[24];
struct net *by_left;
struct vedge *vconstraints;
int nnets;
int top_pins[32];
int bottom_pins[32];
int ncols;
int ntracks;
int failures;

struct net *make_net(int id) {
  struct net *n;
  n = (struct net *) malloc(sizeof(struct net));
  n->id = id;
  n->left = 1000;
  n->right = -1;
  n->track = 0;
  n->next = 0;
  nets[id] = n;
  return n;
}

void touch_column(struct net *n, int col) {
  if (col < n->left)
    n->left = col;
  if (col > n->right)
    n->right = col;
}

void scan_pins() {
  int col;
  for (col = 0; col < ncols; col++) {
    int t = top_pins[col];
    int b = bottom_pins[col];
    if (t > 0) {
      if (nets[t] == 0)
        make_net(t);
      touch_column(nets[t], col);
    }
    if (b > 0) {
      if (nets[b] == 0)
        make_net(b);
      touch_column(nets[b], col);
    }
    if (t > 0 && b > 0 && t != b) {
      /* net at the top pin must route above the bottom one */
      struct vedge *e;
      e = (struct vedge *) malloc(sizeof(struct vedge));
      e->above = t;
      e->below = b;
      e->next = vconstraints;
      vconstraints = e;
    }
  }
}

void order_by_left() {
  int id;
  by_left = 0;
  for (id = 23; id >= 1; id--) {
    struct net *n = nets[id];
    struct net **slot;
    if (n == 0)
      continue;
    slot = &by_left;
    while (*slot != 0 && (*slot)->left < n->left)
      slot = &(*slot)->next;
    n->next = *slot;
    *slot = n;
  }
}

int spans_overlap(struct net *a, struct net *b) {
  return a->left <= b->right && b->left <= a->right;
}

int violates_vertical(struct net *n, int track) {
  struct vedge *e = vconstraints;
  while (e != 0) {
    struct net *other;
    if (e->above == n->id) {
      other = nets[e->below];
      if (other != 0 && other->track != 0 && other->track <= track &&
          spans_overlap(n, other) == 0) {
        /* non-overlapping spans never conflict */
      } else if (other != 0 && other->track != 0 && other->track <= track &&
                 spans_overlap(n, other)) {
        return 1;
      }
    }
    if (e->below == n->id) {
      other = nets[e->above];
      if (other != 0 && other->track != 0 && other->track >= track &&
          spans_overlap(n, other))
        return 1;
    }
    e = e->next;
  }
  return 0;
}

int track_free(struct net *n, int track) {
  int id;
  for (id = 1; id < 24; id++) {
    struct net *o = nets[id];
    if (o == 0 || o == n || o->track != track)
      continue;
    if (spans_overlap(n, o))
      return 0;
  }
  return 1;
}

void assign_tracks() {
  struct net *n = by_left;
  ntracks = 0;
  while (n != 0) {
    int t = 1;
    int placed = 0;
    while (t <= 24 && !placed) {
      if (track_free(n, t) && !violates_vertical(n, t)) {
        n->track = t;
        placed = 1;
        if (t > ntracks)
          ntracks = t;
      }
      t = t + 1;
    }
    if (!placed)
      failures = failures + 1;
    n = n->next;
  }
}

void set_pin(int col, int top, int bottom) {
  top_pins[col] = top;
  bottom_pins[col] = bottom;
  if (col >= ncols)
    ncols = col + 1;
}

/* ---------- constraint diagnostics ---------- */

/* Depth-first search for a cycle in the vertical-constraint graph; a
 * cycle means the channel is unroutable without doglegs. */
int visit_state[24];

int vc_dfs(int id) {
  struct vedge *e;
  if (visit_state[id] == 1)
    return 1; /* back edge: cycle */
  if (visit_state[id] == 2)
    return 0;
  visit_state[id] = 1;
  e = vconstraints;
  while (e != 0) {
    if (e->above == id && vc_dfs(e->below))
      return 1;
    e = e->next;
  }
  visit_state[id] = 2;
  return 0;
}

int has_constraint_cycle() {
  int id;
  for (id = 0; id < 24; id++)
    visit_state[id] = 0;
  for (id = 1; id < 24; id++)
    if (nets[id] != 0 && visit_state[id] == 0 && vc_dfs(id))
      return 1;
  return 0;
}

int count_constraints() {
  int n = 0;
  struct vedge *e = vconstraints;
  while (e != 0) {
    n = n + 1;
    e = e->next;
  }
  return n;
}

/* Channel utilization: per track, how many columns are covered. */
int track_utilization(int track) {
  int id;
  int used = 0;
  for (id = 1; id < 24; id++) {
    struct net *n = nets[id];
    if (n != 0 && n->track == track)
      used = used + (n->right - n->left + 1);
  }
  return used;
}

/* Lower bound on tracks: maximum column density. */
int density_bound() {
  int col;
  int best = 0;
  for (col = 0; col < ncols; col++) {
    int id;
    int here = 0;
    for (id = 1; id < 24; id++) {
      struct net *n = nets[id];
      if (n != 0 && n->left <= col && col <= n->right)
        here = here + 1;
    }
    if (here > best)
      best = here;
  }
  return best;
}

int main() {
  int i;
  for (i = 0; i < 24; i++)
    nets[i] = 0;
  for (i = 0; i < 32; i++) {
    top_pins[i] = 0;
    bottom_pins[i] = 0;
  }
  ncols = 0;
  nnets = 0;
  failures = 0;
  vconstraints = 0;

  set_pin(0, 1, 2);
  set_pin(1, 3, 1);
  set_pin(2, 2, 4);
  set_pin(3, 4, 3);
  set_pin(4, 5, 1);
  set_pin(5, 3, 5);
  set_pin(6, 6, 2);
  set_pin(7, 5, 6);
  set_pin(8, 7, 4);
  set_pin(9, 6, 7);

  scan_pins();
  order_by_left();
  assign_tracks();

  printf("yacr2: %d columns, %d tracks used, %d failures\n", ncols,
         ntracks, failures);
  printf("yacr2: %d vertical constraints, cycle=%d, density bound %d\n",
         count_constraints(), has_constraint_cycle(), density_bound());
  {
    int t;
    int busiest = 1;
    for (t = 2; t <= ntracks; t++)
      if (track_utilization(t) > track_utilization(busiest))
        busiest = t;
    printf("yacr2: busiest track %d covers %d columns\n", busiest,
           track_utilization(busiest));
  }
  return 0;
}
)minic";
}
