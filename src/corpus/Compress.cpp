//===- corpus/Compress.cpp - LZW compressor benchmark ----------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `compress` benchmark domain (SPEC92):
// LZW-style compression and decompression of an in-memory buffer with a
// round-trip check, plus a run-length codec and a frequency model for
// ratio comparison.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusCompress() {
  return R"minic(
/* compress: dictionary-based compression with chained hash buckets and a
 * decoder that rebuilds strings through parent pointers; an RLE codec
 * and an order-0 frequency model serve as comparison points. */

struct entry {
  int prefix;      /* code of the prefix string, -1 for roots */
  int ch;          /* appended character */
  int code;        /* this entry's code */
  struct entry *next;
};

char input[512];
int input_len;
int codes[600];
int ncodes;
char expanded[1024];
int expanded_len;

struct entry *table[128];
struct entry *by_code[600];
int next_code;

/* ---------- LZW dictionary ---------- */

void dict_reset() {
  int i;
  for (i = 0; i < 128; i++)
    table[i] = 0;
  for (i = 0; i < 600; i++)
    by_code[i] = 0;
  next_code = 0;
}

int dict_hash(int prefix, int ch) {
  int h = prefix * 31 + ch;
  if (h < 0)
    h = -h;
  return h % 128;
}

int dict_find(int prefix, int ch) {
  struct entry *e = table[dict_hash(prefix, ch)];
  while (e != 0) {
    if (e->prefix == prefix && e->ch == ch)
      return e->code;
    e = e->next;
  }
  return -1;
}

int dict_add(int prefix, int ch) {
  struct entry *e;
  int h = dict_hash(prefix, ch);
  if (next_code >= 600)
    return -1;
  e = (struct entry *) malloc(sizeof(struct entry));
  e->prefix = prefix;
  e->ch = ch;
  e->code = next_code;
  e->next = table[h];
  table[h] = e;
  by_code[next_code] = e;
  next_code = next_code + 1;
  return e->code;
}

int dict_depth(int code) {
  int d = 0;
  struct entry *e = by_code[code];
  while (e != 0 && e->prefix >= 0) {
    d = d + 1;
    e = by_code[e->prefix];
  }
  return d;
}

/* ---------- LZW encode/decode ---------- */

void emit_code(int code) {
  codes[ncodes] = code;
  ncodes = ncodes + 1;
}

void compress_buffer() {
  int i;
  int cur;
  ncodes = 0;
  dict_reset();
  for (i = 0; i < 128; i++)
    dict_add(-1, i);
  cur = dict_find(-1, input[0]);
  for (i = 1; i < input_len; i++) {
    int ch = input[i];
    int found = dict_find(cur, ch);
    if (found >= 0) {
      cur = found;
    } else {
      emit_code(cur);
      dict_add(cur, ch);
      cur = dict_find(-1, ch);
    }
  }
  emit_code(cur);
}

/* Expand one code by walking prefix links; returns the first char. */
int expand_code(int code) {
  char buf[64];
  int n = 0;
  int first;
  struct entry *e = by_code[code];
  while (e != 0) {
    buf[n] = e->ch;
    n = n + 1;
    if (e->prefix < 0)
      e = 0;
    else
      e = by_code[e->prefix];
  }
  first = buf[n - 1];
  while (n > 0) {
    n = n - 1;
    expanded[expanded_len] = buf[n];
    expanded_len = expanded_len + 1;
  }
  return first;
}

void decompress_buffer() {
  int i;
  int prev;
  expanded_len = 0;
  dict_reset();
  for (i = 0; i < 128; i++)
    dict_add(-1, i);
  prev = codes[0];
  expand_code(prev);
  for (i = 1; i < ncodes; i++) {
    int code = codes[i];
    int first;
    if (by_code[code] != 0) {
      first = expand_code(code);
      dict_add(prev, first);
    } else {
      /* the tricky KwKwK case */
      struct entry *pe = by_code[prev];
      int pfirst;
      while (pe->prefix >= 0)
        pe = by_code[pe->prefix];
      pfirst = pe->ch;
      dict_add(prev, pfirst);
      first = expand_code(code);
    }
    prev = code;
  }
}

/* ---------- RLE codec (comparison point) ---------- */

int rle_out[1024];
int rle_len;
char rle_expanded[1024];
int rle_expanded_len;

void rle_compress() {
  int i = 0;
  rle_len = 0;
  while (i < input_len) {
    int run = 1;
    while (i + run < input_len && input[i + run] == input[i] && run < 255)
      run = run + 1;
    rle_out[rle_len] = run;
    rle_out[rle_len + 1] = input[i];
    rle_len = rle_len + 2;
    i = i + run;
  }
}

void rle_decompress() {
  int i;
  rle_expanded_len = 0;
  for (i = 0; i < rle_len; i = i + 2) {
    int run = rle_out[i];
    int ch = rle_out[i + 1];
    int j;
    for (j = 0; j < run; j++) {
      rle_expanded[rle_expanded_len] = ch;
      rle_expanded_len = rle_expanded_len + 1;
    }
  }
}

/* ---------- order-0 model: ideal entropy-ish cost in tenths of bits ---- */

int freq[128];

int model_cost() {
  int i;
  int distinct = 0;
  int cost = 0;
  for (i = 0; i < 128; i++)
    freq[i] = 0;
  for (i = 0; i < input_len; i++)
    freq[input[i]] = freq[input[i]] + 1;
  for (i = 0; i < 128; i++)
    if (freq[i] > 0)
      distinct = distinct + 1;
  /* crude: log2(distinct) bits per symbol, scaled by 10 */
  {
    int bits10 = 0;
    int d = distinct;
    while (d > 1) {
      bits10 = bits10 + 10;
      d = d / 2;
    }
    cost = input_len * bits10;
  }
  return cost;
}

/* ---------- driver ---------- */

void fill_input() {
  char *pattern = "the quick brown fox jumps over the lazy dog ";
  int plen = strlen(pattern);
  int i;
  input_len = 440;
  for (i = 0; i < input_len; i++)
    input[i] = pattern[i % plen];
  input[input_len] = '\0';
}

int verify(char *got, int gotlen) {
  int i;
  if (gotlen != input_len)
    return 0;
  for (i = 0; i < input_len; i++)
    if (got[i] != input[i])
      return 0;
  return 1;
}

int main() {
  int lzw_ok;
  int rle_ok;
  int deepest;
  int i;
  fill_input();

  compress_buffer();
  decompress_buffer();
  lzw_ok = verify(expanded, expanded_len);

  rle_compress();
  rle_decompress();
  rle_ok = verify(rle_expanded, rle_expanded_len);

  deepest = 0;
  for (i = 0; i < ncodes; i++) {
    int d = dict_depth(codes[i]);
    if (d > deepest)
      deepest = d;
  }

  printf("compress: %d bytes -> lzw %d codes (deepest %d), rle %d pairs\n",
         input_len, ncodes, deepest, rle_len / 2);
  printf("compress: lzw %s, rle %s, model cost %d tenth-bits\n",
         lzw_ok ? "ok" : "FAILED", rle_ok ? "ok" : "FAILED",
         model_cost());
  return (lzw_ok && rle_ok) ? 0 : 1;
}
)minic";
}
