//===- corpus/Simulator.cpp - CPU simulator benchmark ----------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `simulator` benchmark domain (Landi
// suite): a word-addressed accumulator CPU with decoded instruction
// records, a function-pointer dispatch table (the suite's light use of
// indirect calls, Section 4.1), a direct-mapped data cache model and
// per-opcode execution statistics.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusSimulator() {
  return R"minic(
/* simulator: fetch/decode/execute over a word memory, with per-opcode
 * handler functions reached through a dispatch table, plus a cache model
 * observing every data access. */

struct cpu {
  int acc;
  int pc;
  int flags;
  int halted;
  int cycles;
};

struct decoded {
  int opcode;
  int operand;
};

struct cacheline {
  int valid;
  int tag;
  int accesses;
};

struct cache {
  struct cacheline lines[16];
  int hits;
  int misses;
};

int memory[128];
struct cpu machine;
struct cache dcache;
int op_counts[10];
void (*dispatch[10])(struct cpu *, struct decoded *);

/* ---------- cache model ---------- */

void cache_reset(struct cache *c) {
  int i;
  for (i = 0; i < 16; i++) {
    c->lines[i].valid = 0;
    c->lines[i].tag = 0;
    c->lines[i].accesses = 0;
  }
  c->hits = 0;
  c->misses = 0;
}

void cache_access(struct cache *c, int addr) {
  struct cacheline *line = &c->lines[addr % 16];
  int tag = addr / 16;
  line->accesses = line->accesses + 1;
  if (line->valid && line->tag == tag) {
    c->hits = c->hits + 1;
  } else {
    c->misses = c->misses + 1;
    line->valid = 1;
    line->tag = tag;
  }
}

int cache_busiest_line(struct cache *c) {
  int i;
  int best = 0;
  for (i = 1; i < 16; i++)
    if (c->lines[i].accesses > c->lines[best].accesses)
      best = i;
  return best;
}

/* ---------- data access through the cache ---------- */

int read_mem(int addr) {
  cache_access(&dcache, addr);
  return memory[addr];
}

void write_mem(int addr, int value) {
  cache_access(&dcache, addr);
  memory[addr] = value;
}

/* ---------- opcode handlers ---------- */

void op_load(struct cpu *c, struct decoded *d) {
  c->acc = read_mem(d->operand);
}

void op_store(struct cpu *c, struct decoded *d) {
  write_mem(d->operand, c->acc);
}

void op_add(struct cpu *c, struct decoded *d) {
  c->acc = c->acc + read_mem(d->operand);
  c->flags = c->acc == 0 ? 1 : 0;
}

void op_sub(struct cpu *c, struct decoded *d) {
  c->acc = c->acc - read_mem(d->operand);
  c->flags = c->acc == 0 ? 1 : 0;
}

void op_jmp(struct cpu *c, struct decoded *d) {
  c->pc = d->operand;
}

void op_jz(struct cpu *c, struct decoded *d) {
  if (c->flags)
    c->pc = d->operand;
}

void op_loadi(struct cpu *c, struct decoded *d) {
  c->acc = d->operand;
}

void op_halt(struct cpu *c, struct decoded *d) {
  c->halted = 1;
}

/* ---------- fetch/decode/execute ---------- */

void decode(int word, struct decoded *d) {
  d->opcode = word / 256;
  d->operand = word % 256;
}

void step_cpu(struct cpu *c) {
  struct decoded d;
  int word = memory[c->pc];
  c->pc = c->pc + 1;
  decode(word, &d);
  if (d.opcode >= 1 && d.opcode <= 8) {
    op_counts[d.opcode] = op_counts[d.opcode] + 1;
    dispatch[d.opcode](c, &d);
  } else {
    c->halted = 1;
  }
  c->cycles = c->cycles + 1;
}

void run_cpu(struct cpu *c, int fuel) {
  while (!c->halted && fuel > 0) {
    step_cpu(c);
    fuel = fuel - 1;
  }
}

void reset_cpu(struct cpu *c) {
  c->acc = 0;
  c->pc = 0;
  c->flags = 0;
  c->halted = 0;
  c->cycles = 0;
}

void install_handlers() {
  dispatch[1] = op_load;
  dispatch[2] = op_store;
  dispatch[3] = op_add;
  dispatch[4] = op_sub;
  dispatch[5] = op_jmp;
  dispatch[6] = op_jz;
  dispatch[7] = op_loadi;
  dispatch[8] = op_halt;
}

/* ---------- workloads ---------- */

int asmw(int opcode, int operand) {
  return opcode * 256 + operand;
}

/* sum the integers 1..n with a countdown loop */
void load_sum_program(int n) {
  int pc = 0;
  memory[100] = n;   /* counter */
  memory[101] = 0;   /* total */
  memory[102] = 1;   /* the constant one */
  memory[pc] = asmw(1, 100); pc = pc + 1;   /* load counter */
  memory[pc] = asmw(6, 9);   pc = pc + 1;   /* jz end */
  memory[pc] = asmw(1, 101); pc = pc + 1;   /* load total */
  memory[pc] = asmw(3, 100); pc = pc + 1;   /* add counter */
  memory[pc] = asmw(2, 101); pc = pc + 1;   /* store total */
  memory[pc] = asmw(1, 100); pc = pc + 1;   /* load counter */
  memory[pc] = asmw(4, 102); pc = pc + 1;   /* sub one */
  memory[pc] = asmw(2, 100); pc = pc + 1;   /* store counter */
  memory[pc] = asmw(5, 0);   pc = pc + 1;   /* jmp top */
  memory[pc] = asmw(8, 0);   pc = pc + 1;   /* halt */
}

/* fibonacci: iterate f(n) with three memory cells */
void load_fib_program(int n) {
  int pc = 0;
  memory[100] = n;   /* counter */
  memory[101] = 0;   /* f(i-1) */
  memory[102] = 1;   /* f(i) */
  memory[103] = 0;   /* scratch */
  memory[104] = 1;   /* the constant one */
  memory[pc] = asmw(1, 100); pc = pc + 1;   /* load counter */
  memory[pc] = asmw(6, 13);  pc = pc + 1;   /* jz end */
  memory[pc] = asmw(1, 101); pc = pc + 1;   /* load f(i-1) */
  memory[pc] = asmw(3, 102); pc = pc + 1;   /* add f(i) */
  memory[pc] = asmw(2, 103); pc = pc + 1;   /* scratch = f(i+1) */
  memory[pc] = asmw(1, 102); pc = pc + 1;   /* shift down */
  memory[pc] = asmw(2, 101); pc = pc + 1;
  memory[pc] = asmw(1, 103); pc = pc + 1;
  memory[pc] = asmw(2, 102); pc = pc + 1;
  memory[pc] = asmw(1, 100); pc = pc + 1;   /* counter-- */
  memory[pc] = asmw(4, 104); pc = pc + 1;
  memory[pc] = asmw(2, 100); pc = pc + 1;
  memory[pc] = asmw(5, 0);   pc = pc + 1;   /* loop */
  memory[pc] = asmw(8, 0);   pc = pc + 1;   /* halt (pc 13) */
}

int run_workload(int which, int n) {
  int i;
  for (i = 0; i < 10; i++)
    op_counts[i] = 0;
  cache_reset(&dcache);
  if (which == 0)
    load_sum_program(n);
  else
    load_fib_program(n);
  reset_cpu(&machine);
  run_cpu(&machine, 100000);
  if (which == 0)
    return memory[101];
  return memory[102];
}

int main() {
  int sum25;
  int fib10;
  install_handlers();

  sum25 = run_workload(0, 25);
  printf("simulator: sum(1..25)=%d in %d cycles, cache %d/%d\n", sum25,
         machine.cycles, dcache.hits, dcache.hits + dcache.misses);

  fib10 = run_workload(1, 10);
  printf("simulator: fib(11)=%d in %d cycles, cache %d/%d, busy line %d\n",
         fib10, machine.cycles, dcache.hits,
         dcache.hits + dcache.misses, cache_busiest_line(&dcache));

  printf("simulator: loads=%d stores=%d adds=%d\n", op_counts[1],
         op_counts[2], op_counts[3]);
  return 0;
}
)minic";
}
