//===- corpus/Corpus.cpp --------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace vdga;

const std::vector<CorpusProgram> &vdga::corpus() {
  static const std::vector<CorpusProgram> Programs = {
      {"allroots", "polynomial root finder (Laguerre iteration, deflation)",
       corpusAllroots(), true},
      {"anagram", "anagram finder over an embedded word list",
       corpusAnagram(), true},
      {"assembler", "two-pass assembler with symbol table and fixups",
       corpusAssembler(), true},
      {"backprop", "feed-forward neural network trained by backpropagation",
       corpusBackprop(), true},
      {"bc", "arbitrary-expression calculator with variables and functions",
       corpusBc(), true},
      {"compiler", "expression compiler to a stack machine, with evaluator",
       corpusCompiler(), true},
      {"compress", "LZW-style compressor/decompressor round trip",
       corpusCompress(), true},
      {"lex315", "lexer generator: NFA construction from regex fragments",
       corpusLex315(), true},
      {"loader", "object-file loader with relocation and symbol binding",
       corpusLoader(), true},
      {"part", "particle partitioner: two lists exchanging elements",
       corpusPart(), true},
      {"simulator", "word-addressed CPU simulator with decoded dispatch",
       corpusSimulator(), true},
      {"span", "spanning tree construction over an adjacency graph",
       corpusSpan(), true},
      {"yacr2", "channel router: track assignment with constraint graphs",
       corpusYacr2(), true},
      // Solver-scale stress programs (not in Figure 2); excluded from the
      // unoptimized-CS ablation, which is quadratic in their set sizes.
      {"protocol", "layered packet pipeline: forwarding ring of handler states",
       corpusProtocol(), false},
      {"pipeline", "reorder-buffer model: unrolled slot rotation per cycle",
       corpusPipeline(), false},
  };
  return Programs;
}

const CorpusProgram *vdga::findCorpusProgram(std::string_view Name) {
  for (const CorpusProgram &P : corpus())
    if (Name == P.Name)
      return &P;
  return nullptr;
}
