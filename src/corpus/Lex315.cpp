//===- corpus/Lex315.cpp - lexer generator benchmark -----------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `lex315` benchmark domain (Landi suite,
// CS315 course lexer): build NFAs for simple regular expressions with
// concatenation, alternation and star, then simulate them over inputs.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusLex315() {
  return R"minic(
/* lex315: Thompson-style NFA construction over heap states, plus a
 * set-based simulation loop. */

struct nstate {
  int id;
  int ch;                 /* transition character, 0 = epsilon */
  struct nstate *out1;
  struct nstate *out2;
  int accepting;
};

struct frag {
  struct nstate *start;
  struct nstate *accept;
};

struct nstate *all_states[128];
int nstates;
char *regex;
int rpos;

struct nstate *new_state(int ch) {
  struct nstate *s;
  s = (struct nstate *) malloc(sizeof(struct nstate));
  s->id = nstates;
  s->ch = ch;
  s->out1 = 0;
  s->out2 = 0;
  s->accepting = 0;
  all_states[nstates] = s;
  nstates = nstates + 1;
  return s;
}

struct frag parse_alt();

/* literal or parenthesized group, with optional star */
struct frag parse_atom() {
  struct frag f;
  if (regex[rpos] == '(') {
    rpos = rpos + 1;
    f = parse_alt();
    rpos = rpos + 1; /* ')' */
  } else {
    struct nstate *s = new_state(regex[rpos]);
    struct nstate *a = new_state(0);
    rpos = rpos + 1;
    s->out1 = a;
    f.start = s;
    f.accept = a;
  }
  if (regex[rpos] == '*') {
    struct nstate *enter = new_state(0);
    struct nstate *leave = new_state(0);
    rpos = rpos + 1;
    enter->out1 = f.start;
    enter->out2 = leave;
    f.accept->out1 = f.start;
    f.accept->out2 = leave;
    f.start = enter;
    f.accept = leave;
  }
  return f;
}

struct frag parse_cat() {
  struct frag left = parse_atom();
  while (regex[rpos] != '\0' && regex[rpos] != ')' && regex[rpos] != '|') {
    struct frag right = parse_atom();
    left.accept->out1 = right.start;
    left.accept = right.accept;
  }
  return left;
}

struct frag parse_alt() {
  struct frag left = parse_cat();
  while (regex[rpos] == '|') {
    struct frag right;
    struct nstate *fork;
    struct nstate *join;
    rpos = rpos + 1;
    right = parse_cat();
    fork = new_state(0);
    join = new_state(0);
    fork->out1 = left.start;
    fork->out2 = right.start;
    left.accept->out1 = join;
    right.accept->out1 = join;
    left.start = fork;
    left.accept = join;
  }
  return left;
}

struct nstate *compile_regex(char *r) {
  struct frag f;
  regex = r;
  rpos = 0;
  f = parse_alt();
  f.accept->accepting = 1;
  return f.start;
}

int in_set[128];
int cur_mark;

void add_state(struct nstate *s) {
  if (s == 0 || in_set[s->id] == cur_mark)
    return;
  in_set[s->id] = cur_mark;
  if (s->ch == 0 && !s->accepting) {
    add_state(s->out1);
    add_state(s->out2);
  }
}

int simulate(struct nstate *start, char *text) {
  int set_a[128];
  int na;
  int i;
  int t;
  cur_mark = cur_mark + 1;
  add_state(start);
  na = 0;
  for (i = 0; i < nstates; i++)
    if (in_set[i] == cur_mark) {
      set_a[na] = i;
      na = na + 1;
    }
  for (t = 0; text[t] != '\0'; t++) {
    int nb = 0;
    int next_list[128];
    for (i = 0; i < na; i++) {
      struct nstate *s = all_states[set_a[i]];
      if (s->ch == text[t] && s->out1 != 0) {
        next_list[nb] = s->out1->id;
        nb = nb + 1;
      }
    }
    cur_mark = cur_mark + 1;
    for (i = 0; i < nb; i++)
      add_state(all_states[next_list[i]]);
    na = 0;
    for (i = 0; i < nstates; i++)
      if (in_set[i] == cur_mark) {
        set_a[na] = i;
        na = na + 1;
      }
  }
  for (i = 0; i < na; i++)
    if (all_states[set_a[i]]->accepting)
      return 1;
  return 0;
}

/* ---------- DFA via subset construction over a small alphabet ---------- */

struct dstate {
  int nfa_ids[32];       /* sorted member NFA states */
  int nmembers;
  int accepting;
  int trans[4];          /* transitions on 'a'..'d', -1 = none */
};

struct dstate dfa[64];
int ndfa;

/* Epsilon-closure of a working set held in closure_buf. */
int closure_buf[128];
int closure_n;

void closure_add(struct nstate *s) {
  int i;
  if (s == 0)
    return;
  for (i = 0; i < closure_n; i++)
    if (closure_buf[i] == s->id)
      return;
  closure_buf[closure_n] = s->id;
  closure_n = closure_n + 1;
  if (s->ch == 0 && !s->accepting) {
    closure_add(s->out1);
    closure_add(s->out2);
  }
}

void sort_closure() {
  int i;
  for (i = 1; i < closure_n; i++) {
    int key = closure_buf[i];
    int j = i - 1;
    while (j >= 0 && closure_buf[j] > key) {
      closure_buf[j + 1] = closure_buf[j];
      j = j - 1;
    }
    closure_buf[j + 1] = key;
  }
}

/* Finds or creates the DFA state for the current closure set. */
int dfa_intern() {
  int d;
  int i;
  sort_closure();
  for (d = 0; d < ndfa; d++) {
    if (dfa[d].nmembers != closure_n)
      continue;
    {
      int same = 1;
      for (i = 0; i < closure_n; i++)
        if (dfa[d].nfa_ids[i] != closure_buf[i])
          same = 0;
      if (same)
        return d;
    }
  }
  d = ndfa;
  ndfa = ndfa + 1;
  dfa[d].nmembers = closure_n;
  dfa[d].accepting = 0;
  for (i = 0; i < closure_n; i++) {
    dfa[d].nfa_ids[i] = closure_buf[i];
    if (all_states[closure_buf[i]]->accepting)
      dfa[d].accepting = 1;
  }
  for (i = 0; i < 4; i++)
    dfa[d].trans[i] = -1;
  return d;
}

int subset_construct(struct nstate *start) {
  int d;
  int c;
  ndfa = 0;
  closure_n = 0;
  closure_add(start);
  dfa_intern();
  /* Process DFA states in creation order; new targets append. */
  for (d = 0; d < ndfa; d++) {
    for (c = 0; c < 4; c++) {
      int i;
      closure_n = 0;
      for (i = 0; i < dfa[d].nmembers; i++) {
        struct nstate *s = all_states[dfa[d].nfa_ids[i]];
        if (s->ch == 'a' + c)
          closure_add(s->out1);
      }
      if (closure_n > 0)
        dfa[d].trans[c] = dfa_intern();
    }
  }
  return 0; /* start state index */
}

int dfa_match(char *text) {
  int d = 0;
  int t;
  for (t = 0; text[t] != '\0'; t++) {
    int c = text[t] - 'a';
    if (c < 0 || c >= 4)
      return 0;
    d = dfa[d].trans[c];
    if (d < 0)
      return 0;
  }
  return dfa[d].accepting;
}

/* ---------- driver: both engines must agree on every probe ---------- */

int engine_mismatches;

void check(struct nstate *nfa, char *text, int expect) {
  int got = simulate(nfa, text);
  int got_dfa = dfa_match(text);
  if (got != expect)
    printf("lex315: NFA MISMATCH on %s\n", text);
  if (got_dfa != got) {
    engine_mismatches = engine_mismatches + 1;
    printf("lex315: DFA/NFA disagree on %s (%d vs %d)\n", text, got_dfa,
           got);
  }
}

int main() {
  struct nstate *ab_star;
  struct nstate *alts;
  struct nstate *nested;
  int i;
  int total_dfa = 0;
  nstates = 0;
  cur_mark = 0;
  engine_mismatches = 0;
  for (i = 0; i < 128; i++)
    in_set[i] = 0;

  ab_star = compile_regex("a(ab)*b");
  subset_construct(ab_star);
  total_dfa = total_dfa + ndfa;
  check(ab_star, "ab", 1);
  check(ab_star, "aabb", 1);
  check(ab_star, "aababb", 1);
  check(ab_star, "aa", 0);
  check(ab_star, "b", 0);

  alts = compile_regex("(a|b)*c");
  subset_construct(alts);
  total_dfa = total_dfa + ndfa;
  check(alts, "c", 1);
  check(alts, "abbac", 1);
  check(alts, "abab", 0);
  check(alts, "bbbbbc", 1);

  nested = compile_regex("a(b|c(a|b)*)d");
  subset_construct(nested);
  total_dfa = total_dfa + ndfa;
  check(nested, "abd", 1);
  check(nested, "acd", 1);
  check(nested, "acababd", 1);
  check(nested, "ad", 0);
  check(nested, "abbd", 0);

  printf("lex315: %d NFA states, %d DFA states, %d engine mismatches\n",
         nstates, total_dfa, engine_mismatches);
  return engine_mismatches;
}
)minic";
}
