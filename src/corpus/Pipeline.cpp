//===- corpus/Pipeline.cpp - reorder-buffer rotation stress ----------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// Solver-scale stress program (not part of Figure 2): a reorder-buffer
// model whose unrolled slot rotation inside the cycle loop forms one
// long static copy cycle carrying every decoded record. Exercises the
// batch (build-time) SCC collapse and delta-wave scheduling on a scale
// the Figure 2 programs never reach.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusPipeline() {
  return R"minic(
/* pipeline: a reorder-buffer model. Decoded instruction records
 * occupy a 100-slot circular scoreboard; every cycle each slot's
 * occupant advances one position (an unrolled rotation, the way
 * a hardware shift structure is written out), and the retire
 * slot re-issues the oldest record. Only the decode table and
 * the final drain walk ever dereference a record. */

struct inst {
  int opcode;
  int dest;
  int latency;
  struct inst *dep;
};

int retired;

int main() {
  struct inst *decoded = 0;
  struct inst *r = 0;
  int cycle = 0;
  int issued = 0;
  int weight = 0;
  retired = 0;
  /* Decode table: one record per static instruction. Records
   * with a real destination register join the issue list. */
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 3;
  r->dest = 3;
  r->latency = 1;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 10;
  r->dest = 14;
  r->latency = 2;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 1;
  r->dest = 25;
  r->latency = 3;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 8;
  r->dest = 4;
  r->latency = 4;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 15;
  r->dest = 15;
  r->latency = 5;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 6;
  r->dest = 26;
  r->latency = 1;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 13;
  r->dest = 5;
  r->latency = 2;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 4;
  r->dest = 16;
  r->latency = 3;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 11;
  r->dest = 27;
  r->latency = 4;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 2;
  r->dest = 6;
  r->latency = 5;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 9;
  r->dest = 17;
  r->latency = 1;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 0;
  r->dest = 28;
  r->latency = 2;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 7;
  r->dest = 7;
  r->latency = 3;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 14;
  r->dest = 18;
  r->latency = 4;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 5;
  r->dest = 29;
  r->latency = 5;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 12;
  r->dest = 8;
  r->latency = 1;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 3;
  r->dest = 19;
  r->latency = 2;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 10;
  r->dest = -2;
  r->latency = 3;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 1;
  r->dest = 9;
  r->latency = 4;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 8;
  r->dest = 20;
  r->latency = 5;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 15;
  r->dest = -1;
  r->latency = 1;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 6;
  r->dest = 10;
  r->latency = 2;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 13;
  r->dest = 21;
  r->latency = 3;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 4;
  r->dest = 0;
  r->latency = 4;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 11;
  r->dest = 11;
  r->latency = 5;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 2;
  r->dest = 22;
  r->latency = 1;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 9;
  r->dest = 1;
  r->latency = 2;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 0;
  r->dest = 12;
  r->latency = 3;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 7;
  r->dest = 23;
  r->latency = 4;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 14;
  r->dest = 2;
  r->latency = 5;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 5;
  r->dest = 13;
  r->latency = 1;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 12;
  r->dest = 24;
  r->latency = 2;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 3;
  r->dest = 3;
  r->latency = 3;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 10;
  r->dest = 14;
  r->latency = 4;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 1;
  r->dest = 25;
  r->latency = 5;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 8;
  r->dest = 4;
  r->latency = 1;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 15;
  r->dest = 15;
  r->latency = 2;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 6;
  r->dest = 26;
  r->latency = 3;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 13;
  r->dest = 5;
  r->latency = 4;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;
  r = (struct inst *) malloc(sizeof(struct inst));
  r->opcode = 4;
  r->dest = 16;
  r->latency = 5;
  r->dep = decoded;
  if (r->dest >= 0)
    decoded = r;
  else
    issued = issued + 1;

  struct inst *rob0 = decoded;
  struct inst *rob1 = decoded;
  struct inst *rob2 = decoded;
  struct inst *rob3 = decoded;
  struct inst *rob4 = decoded;
  struct inst *rob5 = decoded;
  struct inst *rob6 = decoded;
  struct inst *rob7 = decoded;
  struct inst *rob8 = decoded;
  struct inst *rob9 = decoded;
  struct inst *rob10 = decoded;
  struct inst *rob11 = decoded;
  struct inst *rob12 = decoded;
  struct inst *rob13 = decoded;
  struct inst *rob14 = decoded;
  struct inst *rob15 = decoded;
  struct inst *rob16 = decoded;
  struct inst *rob17 = decoded;
  struct inst *rob18 = decoded;
  struct inst *rob19 = decoded;
  struct inst *rob20 = decoded;
  struct inst *rob21 = decoded;
  struct inst *rob22 = decoded;
  struct inst *rob23 = decoded;
  struct inst *rob24 = decoded;
  struct inst *rob25 = decoded;
  struct inst *rob26 = decoded;
  struct inst *rob27 = decoded;
  struct inst *rob28 = decoded;
  struct inst *rob29 = decoded;
  struct inst *rob30 = decoded;
  struct inst *rob31 = decoded;
  struct inst *rob32 = decoded;
  struct inst *rob33 = decoded;
  struct inst *rob34 = decoded;
  struct inst *rob35 = decoded;
  struct inst *rob36 = decoded;
  struct inst *rob37 = decoded;
  struct inst *rob38 = decoded;
  struct inst *rob39 = decoded;
  struct inst *rob40 = decoded;
  struct inst *rob41 = decoded;
  struct inst *rob42 = decoded;
  struct inst *rob43 = decoded;
  struct inst *rob44 = decoded;
  struct inst *rob45 = decoded;
  struct inst *rob46 = decoded;
  struct inst *rob47 = decoded;
  struct inst *rob48 = decoded;
  struct inst *rob49 = decoded;
  struct inst *rob50 = decoded;
  struct inst *rob51 = decoded;
  struct inst *rob52 = decoded;
  struct inst *rob53 = decoded;
  struct inst *rob54 = decoded;
  struct inst *rob55 = decoded;
  struct inst *rob56 = decoded;
  struct inst *rob57 = decoded;
  struct inst *rob58 = decoded;
  struct inst *rob59 = decoded;
  struct inst *rob60 = decoded;
  struct inst *rob61 = decoded;
  struct inst *rob62 = decoded;
  struct inst *rob63 = decoded;
  struct inst *rob64 = decoded;
  struct inst *rob65 = decoded;
  struct inst *rob66 = decoded;
  struct inst *rob67 = decoded;
  struct inst *rob68 = decoded;
  struct inst *rob69 = decoded;
  struct inst *rob70 = decoded;
  struct inst *rob71 = decoded;
  struct inst *rob72 = decoded;
  struct inst *rob73 = decoded;
  struct inst *rob74 = decoded;
  struct inst *rob75 = decoded;
  struct inst *rob76 = decoded;
  struct inst *rob77 = decoded;
  struct inst *rob78 = decoded;
  struct inst *rob79 = decoded;
  struct inst *rob80 = decoded;
  struct inst *rob81 = decoded;
  struct inst *rob82 = decoded;
  struct inst *rob83 = decoded;
  struct inst *rob84 = decoded;
  struct inst *rob85 = decoded;
  struct inst *rob86 = decoded;
  struct inst *rob87 = decoded;
  struct inst *rob88 = decoded;
  struct inst *rob89 = decoded;
  struct inst *rob90 = decoded;
  struct inst *rob91 = decoded;
  struct inst *rob92 = decoded;
  struct inst *rob93 = decoded;
  struct inst *rob94 = decoded;
  struct inst *rob95 = decoded;
  struct inst *rob96 = decoded;
  struct inst *rob97 = decoded;
  struct inst *rob98 = decoded;
  struct inst *rob99 = decoded;
  struct inst *rob100 = decoded;

  for (cycle = 0; cycle < 3; cycle = cycle + 1) {
    /* Advance: the youngest slot recycles the retiring record,
     * then every occupant shifts one slot toward retirement. */
    rob0 = rob100;
    rob1 = rob0;
    rob2 = rob1;
    rob3 = rob2;
    rob4 = rob3;
    rob5 = rob4;
    rob6 = rob5;
    rob7 = rob6;
    rob8 = rob7;
    rob9 = rob8;
    rob10 = rob9;
    rob11 = rob10;
    rob12 = rob11;
    rob13 = rob12;
    rob14 = rob13;
    rob15 = rob14;
    rob16 = rob15;
    rob17 = rob16;
    rob18 = rob17;
    rob19 = rob18;
    rob20 = rob19;
    rob21 = rob20;
    rob22 = rob21;
    rob23 = rob22;
    rob24 = rob23;
    rob25 = rob24;
    rob26 = rob25;
    rob27 = rob26;
    rob28 = rob27;
    rob29 = rob28;
    rob30 = rob29;
    rob31 = rob30;
    rob32 = rob31;
    rob33 = rob32;
    rob34 = rob33;
    rob35 = rob34;
    rob36 = rob35;
    rob37 = rob36;
    rob38 = rob37;
    rob39 = rob38;
    rob40 = rob39;
    rob41 = rob40;
    rob42 = rob41;
    rob43 = rob42;
    rob44 = rob43;
    rob45 = rob44;
    rob46 = rob45;
    rob47 = rob46;
    rob48 = rob47;
    rob49 = rob48;
    rob50 = rob49;
    rob51 = rob50;
    rob52 = rob51;
    rob53 = rob52;
    rob54 = rob53;
    rob55 = rob54;
    rob56 = rob55;
    rob57 = rob56;
    rob58 = rob57;
    rob59 = rob58;
    rob60 = rob59;
    rob61 = rob60;
    rob62 = rob61;
    rob63 = rob62;
    rob64 = rob63;
    rob65 = rob64;
    rob66 = rob65;
    rob67 = rob66;
    rob68 = rob67;
    rob69 = rob68;
    rob70 = rob69;
    rob71 = rob70;
    rob72 = rob71;
    rob73 = rob72;
    rob74 = rob73;
    rob75 = rob74;
    rob76 = rob75;
    rob77 = rob76;
    rob78 = rob77;
    rob79 = rob78;
    rob80 = rob79;
    rob81 = rob80;
    rob82 = rob81;
    rob83 = rob82;
    rob84 = rob83;
    rob85 = rob84;
    rob86 = rob85;
    rob87 = rob86;
    rob88 = rob87;
    rob89 = rob88;
    rob90 = rob89;
    rob91 = rob90;
    rob92 = rob91;
    rob93 = rob92;
    rob94 = rob93;
    rob95 = rob94;
    rob96 = rob95;
    rob97 = rob96;
    rob98 = rob97;
    rob99 = rob98;
    rob100 = rob99;
    if (cycle == 0)
      rob100 = decoded;
    retired = retired + 1;
  }

  /* Drain the issue list; this is the only walk that loads
   * through the record pointers. */
  while (decoded != 0) {
    weight = weight + decoded->latency;
    decoded = decoded->dep;
  }
  printf("pipeline: %d cycles, %d skipped, weight %d\n",
         retired, issued, weight);
  return 0;
}
)minic";
}
