//===- corpus/Loader.cpp - object loader benchmark -------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `loader` benchmark domain (Landi suite):
// link several synthetic object modules: merge sections, bind symbols,
// apply relocations.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusLoader() {
  return R"minic(
/* loader: modules carry code words, exported symbols and relocation
 * records; linking lays modules out, resolves symbols through a global
 * table and patches code words. */

struct sym {
  char name[12];
  int offset;          /* within the module */
  int bound;           /* absolute address after layout */
  struct sym *next;
};

struct reloc {
  int site;            /* code index to patch */
  char target[12];     /* symbol name */
  struct reloc *next;
};

struct module {
  char name[12];
  int code[32];
  int codelen;
  int base;            /* layout address */
  struct sym *exports;
  struct reloc *relocs;
  struct module *next;
};

struct module *modules;
struct sym *global_syms;
int image[256];
int image_len;
int errors;

struct module *new_module(char *name) {
  struct module *m;
  m = (struct module *) malloc(sizeof(struct module));
  strcpy(m->name, name);
  m->codelen = 0;
  m->base = 0;
  m->exports = 0;
  m->relocs = 0;
  m->next = modules;
  modules = m;
  return m;
}

void add_code(struct module *m, int word) {
  m->code[m->codelen] = word;
  m->codelen = m->codelen + 1;
}

void add_export(struct module *m, char *name, int offset) {
  struct sym *s;
  s = (struct sym *) malloc(sizeof(struct sym));
  strcpy(s->name, name);
  s->offset = offset;
  s->bound = -1;
  s->next = m->exports;
  m->exports = s;
}

void add_reloc(struct module *m, int site, char *target) {
  struct reloc *r;
  r = (struct reloc *) malloc(sizeof(struct reloc));
  r->site = site;
  strcpy(r->target, target);
  r->next = m->relocs;
  m->relocs = r;
}

/* Pass 1: lay out modules and bind exported symbols to addresses. */
void layout() {
  struct module *m = modules;
  int addr = 0;
  while (m != 0) {
    struct sym *s;
    m->base = addr;
    addr = addr + m->codelen;
    s = m->exports;
    while (s != 0) {
      s->bound = m->base + s->offset;
      s = s->next;
    }
    m = m->next;
  }
  image_len = addr;
}

/* Duplicate-definition detection across modules. */
int count_duplicates() {
  int dups = 0;
  struct module *m = modules;
  while (m != 0) {
    struct sym *s = m->exports;
    while (s != 0) {
      struct module *m2 = m->next;
      while (m2 != 0) {
        struct sym *s2 = m2->exports;
        while (s2 != 0) {
          if (strcmp(s->name, s2->name) == 0)
            dups = dups + 1;
          s2 = s2->next;
        }
        m2 = m2->next;
      }
      s = s->next;
    }
    m = m->next;
  }
  return dups;
}

void publish_symbols() {
  struct module *m = modules;
  while (m != 0) {
    struct sym *s = m->exports;
    while (s != 0) {
      struct sym *g;
      g = (struct sym *) malloc(sizeof(struct sym));
      strcpy(g->name, s->name);
      g->offset = s->offset;
      g->bound = s->bound;
      g->next = global_syms;
      global_syms = g;
      s = s->next;
    }
    m = m->next;
  }
}

struct sym *find_symbol(char *name) {
  struct sym *g = global_syms;
  while (g != 0) {
    if (strcmp(g->name, name) == 0)
      return g;
    g = g->next;
  }
  return 0;
}

/* Pass 2: copy code and apply relocations. */
void relocate() {
  struct module *m = modules;
  while (m != 0) {
    int i;
    struct reloc *r;
    for (i = 0; i < m->codelen; i++)
      image[m->base + i] = m->code[i];
    r = m->relocs;
    while (r != 0) {
      struct sym *target = find_symbol(r->target);
      if (target == 0) {
        errors = errors + 1;
      } else {
        image[m->base + r->site] = image[m->base + r->site] + target->bound;
      }
      r = r->next;
    }
    m = m->next;
  }
}

int checksum() {
  int i;
  int sum = 0;
  for (i = 0; i < image_len; i++)
    sum = sum * 3 + image[i];
  return sum;
}

/* ---------- map "file": per-module extents and symbol bindings ---------- */

char mapbuf[512];
int maplen;

void map_emit_str(char *s) {
  int i = 0;
  while (s[i] != '\0' && maplen < 510) {
    mapbuf[maplen] = s[i];
    maplen = maplen + 1;
    i = i + 1;
  }
}

void map_emit_int(int v) {
  char digits[12];
  int n = 0;
  if (v < 0) {
    map_emit_str("-");
    v = -v;
  }
  if (v == 0) {
    map_emit_str("0");
    return;
  }
  while (v > 0) {
    digits[n] = '0' + v % 10;
    n = n + 1;
    v = v / 10;
  }
  while (n > 0) {
    n = n - 1;
    if (maplen < 510) {
      mapbuf[maplen] = digits[n];
      maplen = maplen + 1;
    }
  }
}

void build_map() {
  struct module *m = modules;
  maplen = 0;
  while (m != 0) {
    struct sym *s;
    map_emit_str(m->name);
    map_emit_str("@");
    map_emit_int(m->base);
    map_emit_str("+");
    map_emit_int(m->codelen);
    s = m->exports;
    while (s != 0) {
      map_emit_str(" ");
      map_emit_str(s->name);
      map_emit_str("=");
      map_emit_int(s->bound);
      s = s->next;
    }
    map_emit_str(";");
    m = m->next;
  }
  mapbuf[maplen] = '\0';
}

/* Weak binding: look a symbol up, falling back to a default address. */
int bind_or_default(char *name, int fallback) {
  struct sym *g = find_symbol(name);
  return g != 0 ? g->bound : fallback;
}

int main() {
  struct module *a;
  struct module *b;
  struct module *c;
  int i;
  modules = 0;
  global_syms = 0;
  errors = 0;

  a = new_module("alpha");
  for (i = 0; i < 8; i++)
    add_code(a, 100 + i);
  add_export(a, "alpha_fn", 2);
  add_reloc(a, 5, "beta_fn");

  b = new_module("beta");
  for (i = 0; i < 12; i++)
    add_code(b, 200 + i);
  add_export(b, "beta_fn", 0);
  add_export(b, "beta_tab", 6);
  add_reloc(b, 3, "alpha_fn");
  add_reloc(b, 9, "gamma_fn");

  c = new_module("gamma");
  for (i = 0; i < 6; i++)
    add_code(c, 300 + i);
  add_export(c, "gamma_fn", 1);
  add_reloc(c, 2, "beta_tab");

  layout();
  publish_symbols();
  relocate();
  build_map();
  printf("loader: image %d words, %d unresolved, %d duplicate syms, "
         "checksum %d\n",
         image_len, errors, count_duplicates(), checksum());
  printf("loader: entry=%d map=%s\n",
         bind_or_default("alpha_fn", -1), mapbuf);
  return 0;
}
)minic";
}
