//===- corpus/Assembler.cpp - two-pass assembler benchmark -----------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `assembler` benchmark domain (Landi
// suite): assemble a small accumulator machine's source text in two
// passes with a chained-hash label table, disassemble the result, and
// execute it on a reference machine to validate the encoding.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusAssembler() {
  return R"minic(
/* assembler: pass 1 collects labels, pass 2 emits words; mnemonics are
 * matched by table scan; forward references resolved via the label
 * table; a disassembler and a tiny accumulator VM check the output. */

struct label {
  char name[12];
  int address;
  int defined;
  int uses;
  struct label *next;
};

struct mnemonic {
  char name[8];
  int opcode;
  int has_operand;
};

struct fixup {
  int site;                /* word index whose operand needs patching */
  struct label *target;
  struct fixup *next;
};

struct label *labels[32];
struct mnemonic mnemonics[16];
int nmnemonics;
int words[128];
int nwords;
int errors;
int forward_refs;
char *source;
int spos;
char token[16];
struct fixup *fixups;

/* ---------- label table ---------- */

int label_hash(char *name) {
  int h = 0;
  int i = 0;
  while (name[i] != '\0') {
    h = h * 17 + name[i];
    i = i + 1;
  }
  if (h < 0)
    h = -h;
  return h % 32;
}

struct label *label_get(char *name) {
  int h = label_hash(name);
  struct label *l = labels[h];
  while (l != 0) {
    if (strcmp(l->name, name) == 0)
      return l;
    l = l->next;
  }
  l = (struct label *) malloc(sizeof(struct label));
  strcpy(l->name, name);
  l->address = 0;
  l->defined = 0;
  l->uses = 0;
  l->next = labels[h];
  labels[h] = l;
  return l;
}

int count_labels() {
  int i;
  int n = 0;
  for (i = 0; i < 32; i++) {
    struct label *l = labels[i];
    while (l != 0) {
      n = n + 1;
      l = l->next;
    }
  }
  return n;
}

/* ---------- mnemonic table ---------- */

void add_mnemonic(char *name, int opcode, int has_operand) {
  struct mnemonic *m = &mnemonics[nmnemonics];
  strcpy(m->name, name);
  m->opcode = opcode;
  m->has_operand = has_operand;
  nmnemonics = nmnemonics + 1;
}

struct mnemonic *find_mnemonic(char *name) {
  int i;
  for (i = 0; i < nmnemonics; i++)
    if (strcmp(mnemonics[i].name, name) == 0)
      return &mnemonics[i];
  return 0;
}

struct mnemonic *mnemonic_for_opcode(int opcode) {
  int i;
  for (i = 0; i < nmnemonics; i++)
    if (mnemonics[i].opcode == opcode)
      return &mnemonics[i];
  return 0;
}

/* ---------- tokenizer ---------- */

int next_token() {
  int n = 0;
  while (source[spos] == ' ')
    spos = spos + 1;
  if (source[spos] == '\0' || source[spos] == '\n')
    return 0;
  while (source[spos] != ' ' && source[spos] != '\n' &&
         source[spos] != '\0' && n < 15) {
    token[n] = source[spos];
    n = n + 1;
    spos = spos + 1;
  }
  token[n] = '\0';
  return 1;
}

void skip_line() {
  while (source[spos] != '\0' && source[spos] != '\n')
    spos = spos + 1;
  if (source[spos] == '\n')
    spos = spos + 1;
}

int token_is_label() {
  int n = strlen(token);
  return n > 0 && token[n - 1] == ':';
}

int token_number(char *t) {
  int acc = 0;
  int i = 0;
  int neg = 0;
  if (t[0] == '-') {
    neg = 1;
    i = 1;
  }
  while (t[i] >= '0' && t[i] <= '9') {
    acc = acc * 10 + (t[i] - '0');
    i = i + 1;
  }
  return neg ? -acc : acc;
}

/* ---------- the two passes ---------- */

void record_fixup(int site, struct label *target) {
  struct fixup *f = (struct fixup *) malloc(sizeof(struct fixup));
  f->site = site;
  f->target = target;
  f->next = fixups;
  fixups = f;
  forward_refs = forward_refs + 1;
}

int onepass; /* 1 = define labels while emitting, using fixups */

void assemble_pass(char *text, int pass) {
  int pc = 0;
  source = text;
  spos = 0;
  while (source[spos] != '\0') {
    while (next_token()) {
      if (token_is_label()) {
        if (pass == 1 || onepass) {
          struct label *l;
          token[strlen(token) - 1] = '\0';
          l = label_get(token);
          if (l->defined && pass == 1)
            errors = errors + 1; /* duplicate definition */
          l->address = pc;
          l->defined = 1;
        }
      } else {
        struct mnemonic *m = find_mnemonic(token);
        if (m == 0) {
          if (pass == 2)
            errors = errors + 1;
          continue;
        }
        if (m->has_operand) {
          if (!next_token()) {
            if (pass == 2)
              errors = errors + 1;
            continue;
          }
          if (pass == 2) {
            int operand;
            if ((token[0] >= '0' && token[0] <= '9') || token[0] == '-') {
              operand = token_number(token);
            } else {
              struct label *l = label_get(token);
              l->uses = l->uses + 1;
              if (!l->defined)
                record_fixup(pc, l);
              operand = l->address;
            }
            words[pc] = m->opcode * 256 + (operand & 255);
          }
          pc = pc + 1;
        } else {
          if (pass == 2)
            words[pc] = m->opcode * 256;
          pc = pc + 1;
        }
      }
    }
    skip_line();
  }
  if (pass == 2)
    nwords = pc;
}

/* Resolve fixups recorded for labels that were defined after use. */
void apply_fixups() {
  struct fixup *f = fixups;
  while (f != 0) {
    if (f->target->defined)
      words[f->site] =
          (words[f->site] / 256) * 256 + (f->target->address & 255);
    else
      errors = errors + 1;
    f = f->next;
  }
}

/* ---------- disassembler (round-trip sanity) ---------- */

int disassemble_checksum() {
  int pc;
  int sum = 0;
  for (pc = 0; pc < nwords; pc++) {
    struct mnemonic *m = mnemonic_for_opcode(words[pc] / 256);
    if (m == 0) {
      sum = sum * 31 + 999;
      continue;
    }
    sum = sum * 31 + strlen(m->name);
    if (m->has_operand)
      sum = sum + (words[pc] % 256);
  }
  return sum;
}

/* ---------- reference machine ---------- */

struct machine {
  int acc;
  int pc;
  int halted;
  int data[256];
};

struct machine vm;

void vm_step() {
  int word = words[vm.pc];
  int opcode = word / 256;
  int operand = word % 256;
  vm.pc = vm.pc + 1;
  if (opcode == 1)
    vm.acc = vm.data[operand];
  else if (opcode == 2)
    vm.data[operand] = vm.acc;
  else if (opcode == 3)
    vm.acc = vm.acc + vm.data[operand];
  else if (opcode == 4)
    vm.acc = vm.acc - vm.data[operand];
  else if (opcode == 5)
    vm.pc = operand;
  else if (opcode == 6) {
    if (vm.acc == 0)
      vm.pc = operand;
  } else if (opcode == 9)
    vm.acc = operand;
  else
    vm.halted = 1;
}

int run_program(int fuel) {
  vm.acc = 0;
  vm.pc = 0;
  vm.halted = 0;
  while (!vm.halted && fuel > 0) {
    vm_step();
    fuel = fuel - 1;
  }
  return vm.acc;
}

/* ---------- driver ---------- */

void init_mnemonics() {
  nmnemonics = 0;
  add_mnemonic("load", 1, 1);
  add_mnemonic("store", 2, 1);
  add_mnemonic("add", 3, 1);
  add_mnemonic("sub", 4, 1);
  add_mnemonic("jmp", 5, 1);
  add_mnemonic("jz", 6, 1);
  add_mnemonic("halt", 7, 0);
  add_mnemonic("nop", 8, 0);
  add_mnemonic("loadi", 9, 1);
}

int checksum() {
  int i;
  int sum = 0;
  for (i = 0; i < nwords; i++)
    sum = sum * 7 + words[i];
  return sum;
}

void reset_tables() {
  int i;
  for (i = 0; i < 32; i++)
    labels[i] = 0;
  fixups = 0;
  forward_refs = 0;
  nwords = 0;
}

int main() {
  /* sum 1..10 into data[101]: the 'done' label is a forward reference,
   * exercising the fixup chain in one-pass mode. */
  char *program = "start: loadi 10\n store 100\n loadi 0\n store 101\nloop: load 100\n jz done\n load 101\n add 100\n store 101\n load 100\n sub 102\n store 100\n jmp loop\ndone: load 101\n halt\n";
  int result;
  int sum_twopass;
  int sum_onepass;
  errors = 0;
  init_mnemonics();

  /* Strategy 1: classic two passes; no fixups ever needed. */
  reset_tables();
  onepass = 0;
  assemble_pass(program, 1);
  assemble_pass(program, 2);
  apply_fixups();
  sum_twopass = checksum();
  vm.data[102] = 1; /* the constant one */
  result = run_program(10000);

  /* Strategy 2: single pass with forward-reference fixups. */
  reset_tables();
  onepass = 1;
  assemble_pass(program, 2);
  apply_fixups();
  sum_onepass = checksum();
  if (sum_onepass != sum_twopass)
    errors = errors + 1;

  printf("assembler: %d words, %d labels, %d forward refs, %d errors\n",
         nwords, count_labels(), forward_refs, errors);
  printf("assembler: vm result %d, checksums %d/%d, dis %d\n", result,
         sum_twopass, sum_onepass, disassemble_checksum());
  return errors;
}
)minic";
}
