//===- corpus/Span.cpp - spanning tree benchmark ---------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// MiniC reimplementation of the `span` benchmark domain (Austin suite):
// spanning-tree construction over an adjacency-list graph.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

const char *vdga::corpusSpan() {
  return R"minic(
/* span: build a random-ish graph as adjacency lists, then compute a
 * spanning tree with an explicit worklist.  Pointer profile matches the
 * paper's description of the suite: single-level pointers into heap
 * nodes, one abstract data type (the adjacency list) with one client. */

struct edge {
  int to;
  struct edge *next;
};

struct vertex {
  int id;
  int mark;
  int parent;
  struct edge *adj;
};

int nvertices;
struct vertex verts[64];
int stack[64];
int sp;
int tree_edges;
int seed;

int next_random() {
  seed = seed * 1103515245 + 12345;
  if (seed < 0)
    seed = -seed;
  return seed % 1024;
}

void add_edge(int from, int to) {
  struct edge *e;
  e = (struct edge *) malloc(sizeof(struct edge));
  e->to = to;
  e->next = verts[from].adj;
  verts[from].adj = e;
}

void init_graph(int n) {
  int i;
  nvertices = n;
  for (i = 0; i < n; i++) {
    verts[i].id = i;
    verts[i].mark = 0;
    verts[i].parent = -1;
    verts[i].adj = 0;
  }
  for (i = 1; i < n; i++) {
    add_edge(i, next_random() % i);
    add_edge(next_random() % i, i);
  }
  for (i = 0; i < n; i++) {
    int a = next_random() % n;
    int b = next_random() % n;
    if (a != b) {
      add_edge(a, b);
      add_edge(b, a);
    }
  }
}

void push_vertex(int v) {
  stack[sp] = v;
  sp = sp + 1;
}

int pop_vertex() {
  sp = sp - 1;
  return stack[sp];
}

void span_from(int root) {
  struct vertex *v;
  struct edge *e;
  verts[root].mark = 1;
  push_vertex(root);
  while (sp > 0) {
    int cur = pop_vertex();
    v = &verts[cur];
    e = v->adj;
    while (e != 0) {
      struct vertex *w = &verts[e->to];
      if (w->mark == 0) {
        w->mark = 1;
        w->parent = cur;
        tree_edges = tree_edges + 1;
        push_vertex(e->to);
      }
      e = e->next;
    }
  }
}

int check_tree() {
  int i;
  int roots = 0;
  for (i = 0; i < nvertices; i++) {
    if (verts[i].parent < 0)
      roots = roots + 1;
    if (verts[i].mark == 0)
      return 0;
  }
  return roots;
}

/* ---------- second algorithm: Kruskal over an edge array ---------- */

struct wedge {
  int from;
  int to;
  int weight;
};

struct wedge all_edges[512];
int nedges;
int uf_parent[64];

void collect_edges() {
  int v;
  nedges = 0;
  for (v = 0; v < nvertices; v++) {
    struct edge *e = verts[v].adj;
    while (e != 0) {
      if (v < e->to) { /* record each undirected edge once */
        all_edges[nedges].from = v;
        all_edges[nedges].to = e->to;
        all_edges[nedges].weight = (v * 7 + e->to * 13) % 100;
        nedges = nedges + 1;
      }
      e = e->next;
    }
  }
}

void sort_edges() {
  /* insertion sort by weight: small n, stable, deterministic */
  int i;
  for (i = 1; i < nedges; i++) {
    struct wedge key = all_edges[i];
    int j = i - 1;
    while (j >= 0 && all_edges[j].weight > key.weight) {
      all_edges[j + 1] = all_edges[j];
      j = j - 1;
    }
    all_edges[j + 1] = key;
  }
}

int uf_find(int x) {
  while (uf_parent[x] != x) {
    uf_parent[x] = uf_parent[uf_parent[x]];
    x = uf_parent[x];
  }
  return x;
}

int kruskal() {
  int i;
  int taken = 0;
  int weight = 0;
  for (i = 0; i < nvertices; i++)
    uf_parent[i] = i;
  for (i = 0; i < nedges && taken < nvertices - 1; i++) {
    int a = uf_find(all_edges[i].from);
    int b = uf_find(all_edges[i].to);
    if (a != b) {
      uf_parent[a] = b;
      taken = taken + 1;
      weight = weight + all_edges[i].weight;
    }
  }
  return taken == nvertices - 1 ? weight : -1;
}

/* degree histogram of the adjacency lists */
int degree_of(int v) {
  int d = 0;
  struct edge *e = verts[v].adj;
  while (e != 0) {
    d = d + 1;
    e = e->next;
  }
  return d;
}

int max_degree() {
  int v;
  int best = 0;
  for (v = 0; v < nvertices; v++) {
    int d = degree_of(v);
    if (d > best)
      best = d;
  }
  return best;
}

int main() {
  int mst_weight;
  seed = 17;
  sp = 0;
  tree_edges = 0;
  init_graph(48);
  span_from(0);
  collect_edges();
  sort_edges();
  mst_weight = kruskal();
  printf("span: %d vertices, %d tree edges, %d roots\n", nvertices,
         tree_edges, check_tree());
  printf("span: %d undirected edges, mst weight %d, max degree %d\n",
         nedges, mst_weight, max_degree());
  return 0;
}
)minic";
}
