//===- corpus/Corpus.h - Benchmark programs --------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite. The paper (Figure 2) analyzes thirteen
/// pointer-intensive C programs from Landi's, Austin's, FSF and SPEC92
/// suites; those sources are not redistributable, so this corpus contains
/// freshly written MiniC programs with the same names, domains and the
/// structural traits Section 5 credits for the results: mostly single-level
/// pointers, abstract data types with a single client, sparse call graphs,
/// and (in `part`) two linked lists that exchange elements through shared
/// routines. Every program is closed (no inputs) and runnable under the
/// concrete interpreter, which the soundness property tests exploit.
///
/// Two solver-scale stress programs (`protocol`, `pipeline`) extend the
/// Figure 2 set. Their long pointer-copy cycles — a forwarding-call ring
/// and an unrolled reorder-buffer rotation — are the structures where the
/// wave/deep solver strategies pay off; the tiny Figure 2 programs never
/// build such cycles, so the bench gate measures these two.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CORPUS_CORPUS_H
#define VDGA_CORPUS_CORPUS_H

#include <string_view>
#include <vector>

namespace vdga {

/// One benchmark program.
struct CorpusProgram {
  const char *Name;        ///< Figure 2 benchmark name.
  const char *Description; ///< What the program computes.
  const char *Source;      ///< MiniC source text.
  /// True when the program is cheap enough for the maximally
  /// context-sensitive analysis in test runs (all are; the flag lets the
  /// slow ablation select a subset).
  bool SmallEnoughForUnoptimizedCS;
};

/// The thirteen Figure 2 benchmarks in Figure 2 order, followed by the
/// two solver-scale stress programs.
const std::vector<CorpusProgram> &corpus();

/// Finds a benchmark by name; null when absent.
const CorpusProgram *findCorpusProgram(std::string_view Name);

// Per-program source accessors (one translation unit each).
const char *corpusAllroots();
const char *corpusAnagram();
const char *corpusAssembler();
const char *corpusBackprop();
const char *corpusBc();
const char *corpusCompiler();
const char *corpusCompress();
const char *corpusLex315();
const char *corpusLoader();
const char *corpusPart();
const char *corpusPipeline();
const char *corpusProtocol();
const char *corpusSimulator();
const char *corpusSpan();
const char *corpusYacr2();

} // namespace vdga

#endif // VDGA_CORPUS_CORPUS_H
