//===- pointsto/PointsToPair.h - Interned points-to pairs ------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A points-to pair (Section 2) is `(path, referent)`: "in the value
/// produced by this output, indirecting through any location (or offset)
/// denoted by `path` may return any location denoted by `referent`".
/// Pointer values carry pairs with the empty offset path; aggregate values
/// carry pairs whose path is the offset of the pointer field inside the
/// value; store values carry pairs whose path is a full location.
///
/// Pairs are interned program-wide to dense 32-bit ids so per-output sets
/// are flat id vectors.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_POINTSTO_POINTSTOPAIR_H
#define VDGA_POINTSTO_POINTSTOPAIR_H

#include "memory/AccessPath.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vdga {

using PairId = uint32_t;

/// One (path, referent) pair.
struct PointsToPair {
  PathId Path = PathId::EmptyOffset;
  PathId Referent = PathId::EmptyOffset;

  friend bool operator==(const PointsToPair &A, const PointsToPair &B) {
    return A.Path == B.Path && A.Referent == B.Referent;
  }
};

/// Program-wide pair interner.
class PairTable {
public:
  PairId intern(PathId Path, PathId Referent);
  /// Returns by value (the pair is 8 bytes): intern() may grow the backing
  /// vector, so a returned reference would dangle across any interleaved
  /// intern call — the solvers intern new pairs while iterating pairs they
  /// previously fetched.
  PointsToPair pair(PairId Id) const { return Pairs[Id]; }
  size_t size() const { return Pairs.size(); }

  /// Renders "(path -> referent)" for diagnostics.
  std::string str(PairId Id, const PathTable &Paths,
                  const StringInterner &Names) const;

private:
  std::vector<PointsToPair> Pairs;
  /// (path, referent) packed into one word; ids are dense so the hashed
  /// index replaces the old tree map on the hottest interning path.
  std::unordered_map<uint64_t, PairId> Index;
};

} // namespace vdga

#endif // VDGA_POINTSTO_POINTSTOPAIR_H
