//===- pointsto/Solver.cpp ------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pointsto/Solver.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>

using namespace vdga;

const char *vdga::solverStrategyName(SolverStrategy S) {
  switch (S) {
  case SolverStrategy::Basic:
    return "basic";
  case SolverStrategy::Wave:
    return "wave";
  case SolverStrategy::Deep:
    return "deep";
  }
  return "unknown";
}

bool vdga::parseSolverStrategy(const char *Text, SolverStrategy &Out) {
  if (std::strcmp(Text, "basic") == 0)
    Out = SolverStrategy::Basic;
  else if (std::strcmp(Text, "wave") == 0)
    Out = SolverStrategy::Wave;
  else if (std::strcmp(Text, "deep") == 0)
    Out = SolverStrategy::Deep;
  else
    return false;
  return true;
}

const std::vector<const FunctionInfo *> PointsToResult::NoCallees;

const Derivation *PointsToResult::derivation(OutputId Out,
                                             PairId Pair) const {
  if (!RecordProvenance || Out >= Derivations.size())
    return nullptr;
  const std::vector<PairId> &Pairs = PairsByOutput[Out];
  for (size_t I = 0; I < Pairs.size(); ++I)
    if (Pairs[I] == Pair)
      return &Derivations[Out][I];
  return nullptr;
}

std::vector<PathId> PointsToResult::pointerReferents(OutputId Out,
                                                     const PairTable &PT)
    const {
  std::vector<PathId> Refs;
  for (PairId Id : PairsByOutput[Out]) {
    const PointsToPair &P = PT.pair(Id);
    if (P.Path == PathTable::emptyPath())
      Refs.push_back(P.Referent);
  }
  std::sort(Refs.begin(), Refs.end(),
            [](PathId A, PathId B) { return index(A) < index(B); });
  Refs.erase(std::unique(Refs.begin(), Refs.end()), Refs.end());
  return Refs;
}

uint64_t PointsToResult::totalPairInstances() const {
  uint64_t Total = 0;
  for (const auto &Pairs : PairsByOutput)
    Total += Pairs.size();
  return Total;
}

const std::vector<const FunctionInfo *> &
PointsToResult::callees(NodeId Call) const {
  auto It = CalleesOf.find(Call);
  return It == CalleesOf.end() ? NoCallees : It->second;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

PointsToResult ContextInsensitiveSolver::solve() {
  if (Strategy == SolverStrategy::Basic)
    runBasic();
  else
    runWave();

  if (!Result.complete()) {
    if (Obs.Metrics)
      Obs.Metrics->add("ci.budget_trips", 1);
    if (Obs.Events)
      Obs.Events->event("budget_trip")
          .field("solver", "ci")
          .field("trip", budgetTripName(Result.Trip))
          .field("status", solveStatusName(Result.Status))
          .field("transfer_fns", Result.Stats.TransferFns)
          .field("pairs_inserted", Result.Stats.PairsInserted);
  }
  if (Obs.Metrics) {
    Obs.Metrics->add("ci.transfer_fns", Result.Stats.TransferFns);
    Obs.Metrics->add("ci.meet_ops", Result.Stats.MeetOps);
    Obs.Metrics->add("ci.pairs_inserted", Result.Stats.PairsInserted);
    Obs.Metrics->add("ci.deduped_events", Result.Stats.DedupedEvents);
    Obs.Metrics->add("ci.strong_updates", StrongUpdates);
    Obs.Metrics->set("ci.solver.strategy", uint64_t(Strategy));
    Obs.Metrics->add("ci.delta_pairs_flowed", DeltaPairsFlowed);
    Obs.Metrics->add("ci.scc_collapsed", SccCollapsed);
  }
  return std::move(Result);
}

void ContextInsensitiveSolver::runBasic() {
  Queued.resize(G.numInputs());

  // Initialization (Figure 1): every location-valued constant seeds the
  // pair (empty, path) on its output.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Kind != NodeKind::ConstPath)
      continue;
    flowOut(G.outputOf(N), PT.intern(PathTable::emptyPath(), Node.Path),
            {N});
  }

  BudgetMeter Meter(Budget);
  while (!Worklist.empty()) {
    // Poll before the dequeue so the trip point is a clean event boundary:
    // every pair inserted so far is in the final fixed point (the worklist
    // algorithm is monotone), and the tripped event stays unprocessed.
    BudgetTrip T = Meter.poll(Result.Stats.TransferFns,
                              Result.Stats.PairsInserted);
    if (T != BudgetTrip::None) {
      Result.Status = statusForTrip(T);
      Result.Trip = T;
      break;
    }
    auto [In, Pair] = dequeue();
    ++Result.Stats.TransferFns;
    flowIn(In, Pair);
  }
}

//===----------------------------------------------------------------------===//
// Wave/Deep engine: delta-set difference propagation over a condensed
// value-flow graph
//===----------------------------------------------------------------------===//
//
// Instead of one worklist event per (input, pair), the wave engine queues
// *outputs*: an output owes its consumers exactly the pairs inserted since
// its last flush (its Delta bitset — the difference-propagation
// invariant), and the queue drains in topological-rank order of the
// value-flow condensation so information crosses each region of the graph
// in waves rather than thrashing around cycles. Deep additionally
// collapses cycles of pair-preserving edges onto one representative set:
// all members of such a cycle provably converge to identical sets, so
// inserts and reads redirect to rep() and the members are materialized
// once at the end (finalizeCollapse). Both engines reach the same fixed
// point as Basic — the fixed point of Figure 1 is schedule-independent,
// which the strategy fuzz oracle and the equivalence suite enforce.

void ContextInsensitiveSolver::runWave() {
  // Delta must exist before buildFlowGraphs(): condensing the static copy
  // graph fires reconcileMerge for build-time components.
  Delta.resize(G.numOutputs());
  buildFlowGraphs();

  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Kind != NodeKind::ConstPath)
      continue;
    flowOut(G.outputOf(N), PT.intern(PathTable::emptyPath(), Node.Path),
            {N});
  }

  BudgetMeter Meter(Budget);
  std::vector<PairId> Batch;
  while (!OutHeap.empty() || PendingMergeHead < PendingMerges.size()) {
    BudgetTrip T = Meter.poll(Result.Stats.TransferFns,
                              Result.Stats.PairsInserted);
    if (T != BudgetTrip::None) {
      Result.Status = statusForTrip(T);
      Result.Trip = T;
      break;
    }
    // Targeted merge deliveries first: they carry pairs the regular delta
    // flushes deliberately skip (see reconcileMerge). Moved out because
    // a delivery can discover a callee and append further merges.
    if (PendingMergeHead < PendingMerges.size()) {
      MergeDelivery MD = std::move(PendingMerges[PendingMergeHead++]);
      if (PendingMergeHead == PendingMerges.size()) {
        PendingMerges.clear();
        PendingMergeHead = 0;
      }
      DeltaPairsFlowed += MD.Batch.size();
      OutputId SrcRep = rep(MD.Rep);
      for (size_t I = 0; I < MD.Consumers.size(); ++I)
        deliverBatch(MD.Consumers[I], SrcRep, MD.Batch);
      continue;
    }
    std::pop_heap(OutHeap.begin(), OutHeap.end(),
                  std::greater<std::pair<uint32_t, OutputId>>());
    OutputId Out = OutHeap.back().second;
    OutHeap.pop_back();
    // A clear QueuedOut bit marks a stale heap entry: the output was
    // flushed via a fresher entry, or merged into another representative.
    if (!QueuedOut.erase(Out))
      continue;
    Batch.clear();
    Delta[Out].forEachSetBit([&](uint32_t Pair) { Batch.push_back(Pair); });
    Delta[Out].clear();
    DeltaPairsFlowed += Batch.size();
    // Consumer lists may grow mid-flush (a merge funnels the loser's
    // consumers here), so iterate by index; the batch is a local copy.
    const std::vector<InputId> &Consumers = G.output(Out).Consumers;
    for (size_t I = 0; I < Consumers.size(); ++I)
      deliverBatch(Consumers[I], Out, Batch);
    if (Copies) {
      std::vector<InputId> &Extra = ExtraConsumers[Out];
      for (size_t I = 0; I < Extra.size(); ++I)
        deliverBatch(Extra[I], Out, Batch);
    }
  }
  finalizeCollapse();
}

void ContextInsensitiveSolver::buildFlowGraphs() {
  // Sealed: Flow only ever supplies scheduling ranks (see addDynamicEdge),
  // so it lives just long enough to be flattened into FlowRank below.
  OnlineSCC Flow(static_cast<uint32_t>(G.numOutputs()), /*Sealed=*/true);
  if (Strategy == SolverStrategy::Deep) {
    Copies = std::make_unique<OnlineSCC>(static_cast<uint32_t>(G.numOutputs()));
    ExtraConsumers.resize(G.numOutputs());
    Copies->OnMerge = [this](uint32_t W, uint32_t L) {
      reconcileMerge(W, L);
    };
  }
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    // Copy edges propagate every pair unchanged — only those may take
    // part in collapse. Offset is excluded even when OpIsNoop (it filters
    // non-empty-path pairs), as are lookup/update (transformers) and all
    // call/return plumbing (added dynamically as callees are discovered).
    auto Add = [&](unsigned Idx, bool Copy) {
      OutputId P = G.producerOf(N, Idx);
      if (P == InvalidId)
        return;
      Flow.addInitialEdge(P, G.outputOf(N));
      if (Copy && Copies)
        Copies->addInitialEdge(P, G.outputOf(N));
    };
    switch (Node.Kind) {
    case NodeKind::Lookup:
      Add(0, false);
      Add(1, false);
      break;
    case NodeKind::Update:
      Add(0, false);
      Add(1, false);
      Add(2, false);
      break;
    case NodeKind::Offset:
      Add(0, false);
      break;
    case NodeKind::Merge:
      for (unsigned I = 0; I < Node.Inputs.size(); ++I)
        Add(I, true);
      break;
    case NodeKind::PtrArith:
      Add(0, true);
      break;
    default:
      break;
    }
  }
  Flow.build();
  FlowRank.resize(G.numOutputs());
  for (OutputId O = 0; O < G.numOutputs(); ++O)
    FlowRank[O] = Flow.rank(O);
  if (Copies)
    Copies->build();
}

/// Registers a dynamically discovered copy edge with the Deep collapse
/// graph. Note the edge is *not* added to Flow: the scheduling rank is a
/// heuristic (the worklist re-flushes out-of-rank deliveries soundly), and
/// profiling showed Pearce–Kelly rank repair on the dense value-flow graph
/// — where a late-ranked return feeding an early-ranked call output drags
/// a huge affected region — costs several times more than the few extra
/// flushes it avoids. The sparse copy graph keeps exact online
/// maintenance because collapse there is semantic, not heuristic.
void ContextInsensitiveSolver::addDynamicEdge(OutputId From, OutputId To,
                                              bool Copy) {
  if (From == InvalidId || To == InvalidId || From == To)
    return;
  if (Copy && Copies)
    Copies->insertEdge(From, To);
}

/// The copy edges a newly registered callee adds: actuals to formals,
/// return value/store back to the call's outputs. All of them propagate
/// pairs unchanged, so they are copy edges and a recursion cycle through
/// them may collapse.
void ContextInsensitiveSolver::addDynamicCallEdges(NodeId Call,
                                                   const FunctionInfo *Info) {
  const Node &CallNode = G.node(Call);
  unsigned NumActuals = static_cast<unsigned>(CallNode.Inputs.size()) - 2;
  NodeId Entry = Info->EntryNode;
  unsigned NumFormals = Info->NumParams;
  for (unsigned I = 0; I < std::min(NumActuals, NumFormals); ++I)
    addDynamicEdge(G.producerOf(Call, I + 1), G.outputOf(Entry, I), true);
  unsigned StoreIdx = static_cast<unsigned>(CallNode.Inputs.size()) - 1;
  addDynamicEdge(G.producerOf(Call, StoreIdx),
                 G.outputOf(Entry, NumFormals), true);

  const Node &RetNode = G.node(Info->ReturnNode);
  if (RetNode.HasValue && CallNode.HasResult)
    addDynamicEdge(G.producerOf(Info->ReturnNode, 0), G.outputOf(Call, 0),
                   true);
  unsigned RetStoreIdx = RetNode.HasValue ? 1 : 0;
  addDynamicEdge(G.producerOf(Info->ReturnNode, RetStoreIdx),
                 G.outputOf(Call, CallNode.HasResult ? 1 : 0), true);
}

void ContextInsensitiveSolver::scheduleOutput(OutputId Rep) {
  if (!QueuedOut.insert(Rep))
    return;
  OutHeap.push_back({FlowRank[Rep], Rep});
  std::push_heap(OutHeap.begin(), OutHeap.end(),
                 std::greater<std::pair<uint32_t, OutputId>>());
}

void ContextInsensitiveSolver::deliverBatch(InputId In, OutputId SrcRep,
                                            const std::vector<PairId> &Batch) {
  if (Copies) {
    // An intra-component copy consumer is the collapse win: source and
    // target share one set, so the whole batch would no-op.
    const InputInfo &Info = G.input(In);
    const Node &Node = G.node(Info.Node);
    bool PureCopy = Node.Kind == NodeKind::Merge ||
                    (Node.Kind == NodeKind::PtrArith && Info.Index == 0);
    if (PureCopy && Copies->find(G.outputOf(Info.Node)) == SrcRep)
      return;
  }
  for (PairId Pair : Batch) {
    ++Result.Stats.TransferFns;
    flowIn(In, Pair);
  }
}

void ContextInsensitiveSolver::reconcileMerge(OutputId Winner,
                                              OutputId Loser) {
  ++SccCollapsed;
  // Unify the sets: the winner's becomes the union, keeping the loser's
  // first derivations for pairs the winner lacked. Only the *differences*
  // flow onward — each side's consumers already saw (or have pending)
  // their own side's pairs, so the intersection owes nobody anything.
  // Re-queuing the whole union into Delta[Winner] instead was measured to
  // add ~40% lookup/update transfer work on recursion-heavy programs:
  // online merges happen between sets that have been flowing into each
  // other and overlap almost entirely, and Delta[Winner] over-delivers to
  // the winner's own consumers.
  // Each difference is owed to exactly the *other* side's consumers:
  // loser-minus-winner to the winner's old consumers, winner-minus-loser
  // (plus the loser's still-pending delta) to the loser's. Both go out as
  // targeted deferred batches whose consumer snapshots are taken before
  // the rehoming below — routing either difference through Delta[Winner]
  // would replay it at consumers that already saw it, and pairs pending
  // in Delta[Winner] still reach everyone through its next flush.
  size_t WinnerOld = Result.PairsByOutput[Winner].size();
  MergeDelivery ToWinnerSide, ToLoserSide;
  ToWinnerSide.Rep = ToLoserSide.Rep = Winner;
  const std::vector<PairId> &LoserPairs = Result.PairsByOutput[Loser];
  for (size_t I = 0; I < LoserPairs.size(); ++I) {
    Derivation D;
    if (Result.RecordProvenance)
      D = Result.Derivations[Loser][I];
    if (Result.insert(Winner, LoserPairs[I], D)) {
      ++Result.Stats.PairsInserted;
      ToWinnerSide.Batch.push_back(LoserPairs[I]);
    }
  }
  for (size_t I = 0; I < WinnerOld; ++I) {
    PairId Pair = Result.PairsByOutput[Winner][I];
    if (!Result.SetsByOutput[Loser].contains(Pair))
      ToLoserSide.Batch.push_back(Pair);
  }
  Delta[Loser].forEachSetBit([&](uint32_t Pair) {
    // The loser's undelivered delta: its own consumers still need it.
    // Pairs the winner lacked are in ToWinnerSide already (they are
    // loser pairs the insert above accepted), pairs pending at the winner
    // too will arrive via Delta[Winner]'s flush; the rest of the winner
    // side saw them long ago.
    if (!Delta[Winner].contains(Pair))
      ToLoserSide.Batch.push_back(Pair);
  });
  Delta[Loser].clear();
  if (!ToWinnerSide.Batch.empty()) {
    const std::vector<InputId> &WC = G.output(Winner).Consumers;
    ToWinnerSide.Consumers.assign(WC.begin(), WC.end());
    const std::vector<InputId> &EW0 = ExtraConsumers[Winner];
    ToWinnerSide.Consumers.insert(ToWinnerSide.Consumers.end(), EW0.begin(),
                                  EW0.end());
    if (!ToWinnerSide.Consumers.empty())
      PendingMerges.push_back(std::move(ToWinnerSide));
  }
  if (!ToLoserSide.Batch.empty()) {
    const std::vector<InputId> &LC0 = G.output(Loser).Consumers;
    ToLoserSide.Consumers.assign(LC0.begin(), LC0.end());
    const std::vector<InputId> &EL0 = ExtraConsumers[Loser];
    ToLoserSide.Consumers.insert(ToLoserSide.Consumers.end(), EL0.begin(),
                                 EL0.end());
    if (!ToLoserSide.Consumers.empty())
      PendingMerges.push_back(std::move(ToLoserSide));
  }
  // The loser's consumers now hear from the winner. The loser's own lists
  // are left intact in case it is mid-flush; duplicates are harmless.
  std::vector<InputId> &EW = ExtraConsumers[Winner];
  const std::vector<InputId> &LC = G.output(Loser).Consumers;
  EW.insert(EW.end(), LC.begin(), LC.end());
  const std::vector<InputId> &EL = ExtraConsumers[Loser];
  EW.insert(EW.end(), EL.begin(), EL.end());
  QueuedOut.erase(Loser);
  if (!Delta[Winner].empty())
    scheduleOutput(Winner);
}

void ContextInsensitiveSolver::finalizeCollapse() {
  if (!Copies)
    return;
  // Materialize each member's view of its component's shared set, so
  // pairs()/contains()/derivation() keep their per-output contract.
  for (OutputId O = 0; O < G.numOutputs(); ++O) {
    OutputId R = Copies->find(O);
    if (R == O)
      continue;
    Result.PairsByOutput[O] = Result.PairsByOutput[R];
    Result.SetsByOutput[O] = Result.SetsByOutput[R];
    if (Result.RecordProvenance)
      Result.Derivations[O] = Result.Derivations[R];
  }
}

void ContextInsensitiveSolver::enqueue(InputId In, PairId Pair) {
  if (!Queued[In].insert(Pair)) {
    ++Result.Stats.DedupedEvents;
    if (Obs.Events)
      Obs.Events->event("worklist_dedup")
          .field("solver", "ci")
          .field("input", uint64_t(In))
          .field("pair", uint64_t(Pair));
    return;
  }
  Worklist.emplace_back(In, Pair);
}

void ContextInsensitiveSolver::tracePair(OutputId Out, PairId Pair) {
  const OutputInfo &Info = G.output(Out);
  const Node &N = G.node(Info.Node);
  const PointsToPair &P = PT.pair(Pair);
  Trace::Event E = Obs.Events->event("pair_introduced");
  E.field("solver", "ci")
      .field("out", uint64_t(Out))
      .field("node", uint64_t(Info.Node))
      .field("kind", nodeKindName(N.Kind))
      .field("line", uint64_t(N.Loc.Line))
      .field("pair", uint64_t(Pair))
      .field("path", uint64_t(index(P.Path)))
      .field("referent", uint64_t(index(P.Referent)));
  if (Paths.isLocation(P.Referent))
    E.field("referent_base", Paths.base(Paths.baseOf(P.Referent)).Name);
}

void ContextInsensitiveSolver::traceStrongUpdate(NodeId N, PathId Loc,
                                                 PairId Killed) {
  Obs.Events->event("strong_update")
      .field("solver", "ci")
      .field("node", uint64_t(N))
      .field("line", uint64_t(G.node(N).Loc.Line))
      .field("loc", uint64_t(index(Loc)))
      .field("killed_pair", uint64_t(Killed));
}

std::pair<InputId, PairId> ContextInsensitiveSolver::dequeue() {
  std::pair<InputId, PairId> Event;
  if (Order == WorklistOrder::FIFO) {
    Event = Worklist.front();
    Worklist.pop_front();
  } else {
    Event = Worklist.back();
    Worklist.pop_back();
  }
  Queued[Event.first].erase(Event.second);
  return Event;
}

void ContextInsensitiveSolver::flowOut(OutputId Out, PairId Pair,
                                       const Derivation &D) {
  ++Result.Stats.MeetOps;
  if (Strategy == SolverStrategy::Basic) {
    if (!Result.insert(Out, Pair, D))
      return;
    ++Result.Stats.PairsInserted;
    if (Obs.Events)
      tracePair(Out, Pair);
    for (InputId Consumer : G.output(Out).Consumers)
      enqueue(Consumer, Pair);
    return;
  }
  // Wave/Deep: record the pair in the (representative) output's delta and
  // queue the output itself; consumers see the whole batch at its flush.
  OutputId R = rep(Out);
  if (!Result.insert(R, Pair, D))
    return;
  ++Result.Stats.PairsInserted;
  if (Obs.Events)
    tracePair(R, Pair);
  Delta[R].insert(Pair);
  scheduleOutput(R);
}

void ContextInsensitiveSolver::flowIn(InputId In, PairId Pair) {
  const InputInfo &Info = G.input(In);
  NodeId N = Info.Node;
  unsigned Idx = Info.Index;
  const Node &Node = G.node(N);

  switch (Node.Kind) {
  case NodeKind::Lookup:
    flowLookup(N, Idx, Pair);
    return;
  case NodeKind::Update:
    flowUpdate(N, Idx, Pair);
    return;
  case NodeKind::Offset:
    flowOffset(N, Pair);
    return;
  case NodeKind::Merge:
    flowOut(G.outputOf(N), Pair, {N, G.producerOf(N, Idx), Pair});
    return;
  case NodeKind::PtrArith:
    // Identity on the first operand's pairs; scalar operands are inert.
    if (Idx == 0)
      flowOut(G.outputOf(N), Pair, {N, G.producerOf(N, 0), Pair});
    return;
  case NodeKind::ScalarOp:
    return; // Scalar results carry no pairs.
  case NodeKind::Call:
    flowCall(N, Idx, Pair);
    return;
  case NodeKind::Return:
    flowReturn(N, Idx, Pair);
    return;
  case NodeKind::ConstScalar:
  case NodeKind::ConstPath:
  case NodeKind::Entry:
  case NodeKind::InitStore:
    assert(false && "node kind takes no inputs");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Memory operations (Figure 1's lookup/update rules)
//===----------------------------------------------------------------------===//

void ContextInsensitiveSolver::flowLookup(NodeId N, unsigned InIdx,
                                          PairId Pair) {
  OutputId Out = G.outputOf(N);
  const PointsToPair &P = PT.pair(Pair);

  if (InIdx == 0) {
    // New location pair (must be a pointer value: empty path).
    if (P.Path != PathTable::emptyPath())
      return;
    PathId Loc = P.Referent;
    for (PairId SId : pairsAtInput(N, 1)) {
      const PointsToPair &S = PT.pair(SId);
      if (Paths.dom(Loc, S.Path))
        flowOut(Out,
                PT.intern(Paths.subtractPrefix(S.Path, Loc).value(), S.Referent),
                {N, G.producerOf(N, 1), SId, G.producerOf(N, 0), Pair});
    }
    return;
  }

  // New store pair: dereference against every known location.
  assert(InIdx == 1 && "lookup has two inputs");
  for (PairId LId : pairsAtInput(N, 0)) {
    const PointsToPair &L = PT.pair(LId);
    if (L.Path != PathTable::emptyPath())
      continue;
    if (Paths.dom(L.Referent, P.Path))
      flowOut(Out,
              PT.intern(Paths.subtractPrefix(P.Path, L.Referent).value(),
                        P.Referent),
              {N, G.producerOf(N, 1), Pair, G.producerOf(N, 0), LId});
  }
}

void ContextInsensitiveSolver::flowUpdate(NodeId N, unsigned InIdx,
                                          PairId Pair) {
  OutputId Out = G.outputOf(N);
  const PointsToPair &P = PT.pair(Pair);

  switch (InIdx) {
  case 0: {
    // New location pair.
    if (P.Path != PathTable::emptyPath())
      return;
    PathId Loc = P.Referent;
    // (a) It writes every known value there.
    for (PairId VId : pairsAtInput(N, 2)) {
      const PointsToPair &V = PT.pair(VId);
      flowOut(Out, PT.intern(Paths.appendPath(Loc, V.Path), V.Referent),
              {N, G.producerOf(N, 2), VId, G.producerOf(N, 0), Pair});
    }
    // (b) Store pairs this location does not strongly overwrite pass
    // through (CWZ90 strong updates: a pair blocked by one location is
    // re-examined when other locations arrive).
    for (PairId SId : pairsAtInput(N, 1)) {
      const PointsToPair &S = PT.pair(SId);
      if (!Paths.strongDom(Loc, S.Path)) {
        flowOut(Out, SId,
                {N, G.producerOf(N, 1), SId, G.producerOf(N, 0), Pair});
      } else {
        ++StrongUpdates;
        if (Obs.Events)
          traceStrongUpdate(N, Loc, SId);
      }
    }
    return;
  }
  case 1: {
    // New store pair: passes through if at least one location fails to
    // strongly overwrite it. With no locations yet, it stays blocked; the
    // location rule above replays it later.
    bool Blocked = false;
    PathId BlockingLoc = PathTable::emptyPath();
    for (PairId LId : pairsAtInput(N, 0)) {
      const PointsToPair &L = PT.pair(LId);
      if (L.Path != PathTable::emptyPath())
        continue;
      if (!Paths.strongDom(L.Referent, P.Path)) {
        flowOut(Out, Pair,
                {N, G.producerOf(N, 1), Pair, G.producerOf(N, 0), LId});
        return;
      }
      Blocked = true;
      BlockingLoc = L.Referent;
    }
    if (Blocked) {
      ++StrongUpdates;
      if (Obs.Events)
        traceStrongUpdate(N, BlockingLoc, Pair);
    }
    return;
  }
  case 2: {
    // New value pair: written at every known location.
    for (PairId LId : pairsAtInput(N, 0)) {
      const PointsToPair &L = PT.pair(LId);
      if (L.Path != PathTable::emptyPath())
        continue;
      flowOut(Out,
              PT.intern(Paths.appendPath(L.Referent, P.Path), P.Referent),
              {N, G.producerOf(N, 2), Pair, G.producerOf(N, 0), LId});
    }
    return;
  }
  default:
    assert(false && "update has three inputs");
  }
}

void ContextInsensitiveSolver::flowOffset(NodeId N, PairId Pair) {
  const Node &Node = G.node(N);
  const PointsToPair &P = PT.pair(Pair);
  if (P.Path != PathTable::emptyPath())
    return; // Only pointer values are meaningful here.
  if (Node.OpIsNoop) {
    flowOut(G.outputOf(N), Pair, {N, G.producerOf(N, 0), Pair});
    return;
  }
  PathId NewRef = Paths.append(P.Referent, Node.Op);
  flowOut(G.outputOf(N), PT.intern(PathTable::emptyPath(), NewRef),
          {N, G.producerOf(N, 0), Pair});
}

//===----------------------------------------------------------------------===//
// Calls and returns (treated as jumps, with a discovered call graph)
//===----------------------------------------------------------------------===//

void ContextInsensitiveSolver::registerCallee(NodeId Call,
                                              const FunctionInfo *Info) {
  auto &List = Result.CalleesOf[Call];
  if (std::find(List.begin(), List.end(), Info) != List.end())
    return;
  List.push_back(Info);
  CallersOf[Info->Fn].push_back(Call);
  // Deep first extends the copy graph (possibly collapsing a freshly
  // closed recursion cycle) so the repropagation below lands on the right
  // representatives.
  if (Strategy == SolverStrategy::Deep)
    addDynamicCallEdges(Call, Info);
  // Repropagation: everything already sitting on the call's inputs flows
  // into the new callee, and everything at the callee's return flows back.
  propagateActualsToCallee(Call, Info);
  propagateReturnToCaller(Call, Info);
}

void ContextInsensitiveSolver::propagateActualsToCallee(
    NodeId Call, const FunctionInfo *Info) {
  const Node &CallNode = G.node(Call);
  unsigned NumActuals = static_cast<unsigned>(CallNode.Inputs.size()) - 2;
  NodeId Entry = Info->EntryNode;
  unsigned NumFormals = Info->NumParams;

  for (unsigned I = 0; I < std::min(NumActuals, NumFormals); ++I)
    for (PairId Pair : pairsAtInput(Call, I + 1))
      flowOut(G.outputOf(Entry, I), Pair,
              {Call, G.producerOf(Call, I + 1), Pair});

  // Store: the call's last input feeds the entry's store formal.
  unsigned StoreIdx = static_cast<unsigned>(CallNode.Inputs.size()) - 1;
  for (PairId Pair : pairsAtInput(Call, StoreIdx))
    flowOut(G.outputOf(Entry, NumFormals), Pair,
            {Call, G.producerOf(Call, StoreIdx), Pair});
}

void ContextInsensitiveSolver::propagateReturnToCaller(
    NodeId Call, const FunctionInfo *Info) {
  const Node &CallNode = G.node(Call);
  const Node &RetNode = G.node(Info->ReturnNode);

  if (RetNode.HasValue && CallNode.HasResult)
    for (PairId Pair : pairsAtInput(Info->ReturnNode, 0))
      flowOut(G.outputOf(Call, 0), Pair,
              {Call, G.producerOf(Info->ReturnNode, 0), Pair});

  unsigned RetStoreIdx = RetNode.HasValue ? 1 : 0;
  OutputId CallStoreOut = G.outputOf(Call, CallNode.HasResult ? 1 : 0);
  for (PairId Pair : pairsAtInput(Info->ReturnNode, RetStoreIdx))
    flowOut(CallStoreOut, Pair,
            {Call, G.producerOf(Info->ReturnNode, RetStoreIdx), Pair});
}

void ContextInsensitiveSolver::flowCall(NodeId N, unsigned InIdx,
                                        PairId Pair) {
  const Node &CallNode = G.node(N);
  unsigned LastIdx = static_cast<unsigned>(CallNode.Inputs.size()) - 1;
  const PointsToPair &P = PT.pair(Pair);

  if (InIdx == 0) {
    // New function value: extend the call graph.
    if (P.Path != PathTable::emptyPath())
      return;
    if (!Paths.isLocation(P.Referent))
      return;
    const BaseLocation &Base = Paths.base(Paths.baseOf(P.Referent));
    if (Base.Kind != BaseLocKind::Function)
      return; // Calling a non-function value: ignored (runtime error).
    const FunctionInfo *Info = G.functionInfo(Base.Fn);
    if (!Info) {
      // Undefined callee: the call is the identity on the store.
      if (IdentityCalls.insert(N)) {
        OutputId StoreOut =
            G.outputOf(N, CallNode.HasResult ? 1 : 0);
        if (Strategy == SolverStrategy::Deep)
          addDynamicEdge(G.producerOf(N, LastIdx), StoreOut, true);
        for (PairId SPair : pairsAtInput(N, LastIdx))
          flowOut(StoreOut, SPair,
                  {N, G.producerOf(N, LastIdx), SPair});
      }
      return;
    }
    registerCallee(N, Info);
    return;
  }

  if (InIdx == LastIdx) {
    // New store pair: flows into every callee's store formal.
    for (const FunctionInfo *Info : Result.callees(N))
      flowOut(G.outputOf(Info->EntryNode, Info->NumParams), Pair,
              {N, G.producerOf(N, InIdx), Pair});
    if (IdentityCalls.contains(N))
      flowOut(G.outputOf(N, CallNode.HasResult ? 1 : 0), Pair,
              {N, G.producerOf(N, InIdx), Pair});
    return;
  }

  // New actual pair: flows into the corresponding formal of every callee.
  unsigned ActualIdx = InIdx - 1;
  for (const FunctionInfo *Info : Result.callees(N))
    if (ActualIdx < Info->NumParams)
      flowOut(G.outputOf(Info->EntryNode, ActualIdx), Pair,
              {N, G.producerOf(N, InIdx), Pair});
}

void ContextInsensitiveSolver::flowReturn(NodeId N, unsigned InIdx,
                                          PairId Pair) {
  const Node &RetNode = G.node(N);
  const FuncDecl *Fn = RetNode.Owner;
  auto It = CallersOf.find(Fn);
  if (It == CallersOf.end())
    return;

  bool IsValue = RetNode.HasValue && InIdx == 0;
  for (NodeId Call : It->second) {
    const Node &CallNode = G.node(Call);
    if (IsValue) {
      if (CallNode.HasResult)
        flowOut(G.outputOf(Call, 0), Pair,
                {Call, G.producerOf(N, InIdx), Pair});
    } else {
      flowOut(G.outputOf(Call, CallNode.HasResult ? 1 : 0), Pair,
              {Call, G.producerOf(N, InIdx), Pair});
    }
  }
}
