//===- pointsto/Solver.cpp ------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pointsto/Solver.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace vdga;

const std::vector<const FunctionInfo *> PointsToResult::NoCallees;

const Derivation *PointsToResult::derivation(OutputId Out,
                                             PairId Pair) const {
  if (!RecordProvenance || Out >= Derivations.size())
    return nullptr;
  const std::vector<PairId> &Pairs = PairsByOutput[Out];
  for (size_t I = 0; I < Pairs.size(); ++I)
    if (Pairs[I] == Pair)
      return &Derivations[Out][I];
  return nullptr;
}

std::vector<PathId> PointsToResult::pointerReferents(OutputId Out,
                                                     const PairTable &PT)
    const {
  std::vector<PathId> Refs;
  for (PairId Id : PairsByOutput[Out]) {
    const PointsToPair &P = PT.pair(Id);
    if (P.Path == PathTable::emptyPath())
      Refs.push_back(P.Referent);
  }
  std::sort(Refs.begin(), Refs.end(),
            [](PathId A, PathId B) { return index(A) < index(B); });
  Refs.erase(std::unique(Refs.begin(), Refs.end()), Refs.end());
  return Refs;
}

uint64_t PointsToResult::totalPairInstances() const {
  uint64_t Total = 0;
  for (const auto &Pairs : PairsByOutput)
    Total += Pairs.size();
  return Total;
}

const std::vector<const FunctionInfo *> &
PointsToResult::callees(NodeId Call) const {
  auto It = CalleesOf.find(Call);
  return It == CalleesOf.end() ? NoCallees : It->second;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

PointsToResult ContextInsensitiveSolver::solve() {
  Queued.resize(G.numInputs());

  // Initialization (Figure 1): every location-valued constant seeds the
  // pair (empty, path) on its output.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Kind != NodeKind::ConstPath)
      continue;
    flowOut(G.outputOf(N), PT.intern(PathTable::emptyPath(), Node.Path),
            {N});
  }

  BudgetMeter Meter(Budget);
  while (!Worklist.empty()) {
    // Poll before the dequeue so the trip point is a clean event boundary:
    // every pair inserted so far is in the final fixed point (the worklist
    // algorithm is monotone), and the tripped event stays unprocessed.
    BudgetTrip T = Meter.poll(Result.Stats.TransferFns,
                              Result.Stats.PairsInserted);
    if (T != BudgetTrip::None) {
      Result.Status = statusForTrip(T);
      Result.Trip = T;
      break;
    }
    auto [In, Pair] = dequeue();
    ++Result.Stats.TransferFns;
    flowIn(In, Pair);
  }

  if (!Result.complete()) {
    if (Obs.Metrics)
      Obs.Metrics->add("ci.budget_trips", 1);
    if (Obs.Events)
      Obs.Events->event("budget_trip")
          .field("solver", "ci")
          .field("trip", budgetTripName(Result.Trip))
          .field("status", solveStatusName(Result.Status))
          .field("transfer_fns", Result.Stats.TransferFns)
          .field("pairs_inserted", Result.Stats.PairsInserted);
  }
  if (Obs.Metrics) {
    Obs.Metrics->add("ci.transfer_fns", Result.Stats.TransferFns);
    Obs.Metrics->add("ci.meet_ops", Result.Stats.MeetOps);
    Obs.Metrics->add("ci.pairs_inserted", Result.Stats.PairsInserted);
    Obs.Metrics->add("ci.deduped_events", Result.Stats.DedupedEvents);
    Obs.Metrics->add("ci.strong_updates", StrongUpdates);
  }
  return std::move(Result);
}

void ContextInsensitiveSolver::enqueue(InputId In, PairId Pair) {
  if (!Queued[In].insert(Pair)) {
    ++Result.Stats.DedupedEvents;
    if (Obs.Events)
      Obs.Events->event("worklist_dedup")
          .field("solver", "ci")
          .field("input", uint64_t(In))
          .field("pair", uint64_t(Pair));
    return;
  }
  Worklist.emplace_back(In, Pair);
}

void ContextInsensitiveSolver::tracePair(OutputId Out, PairId Pair) {
  const OutputInfo &Info = G.output(Out);
  const Node &N = G.node(Info.Node);
  const PointsToPair &P = PT.pair(Pair);
  Trace::Event E = Obs.Events->event("pair_introduced");
  E.field("solver", "ci")
      .field("out", uint64_t(Out))
      .field("node", uint64_t(Info.Node))
      .field("kind", nodeKindName(N.Kind))
      .field("line", uint64_t(N.Loc.Line))
      .field("pair", uint64_t(Pair))
      .field("path", uint64_t(index(P.Path)))
      .field("referent", uint64_t(index(P.Referent)));
  if (Paths.isLocation(P.Referent))
    E.field("referent_base", Paths.base(Paths.baseOf(P.Referent)).Name);
}

void ContextInsensitiveSolver::traceStrongUpdate(NodeId N, PathId Loc,
                                                 PairId Killed) {
  Obs.Events->event("strong_update")
      .field("solver", "ci")
      .field("node", uint64_t(N))
      .field("line", uint64_t(G.node(N).Loc.Line))
      .field("loc", uint64_t(index(Loc)))
      .field("killed_pair", uint64_t(Killed));
}

std::pair<InputId, PairId> ContextInsensitiveSolver::dequeue() {
  std::pair<InputId, PairId> Event;
  if (Order == WorklistOrder::FIFO) {
    Event = Worklist.front();
    Worklist.pop_front();
  } else {
    Event = Worklist.back();
    Worklist.pop_back();
  }
  Queued[Event.first].erase(Event.second);
  return Event;
}

void ContextInsensitiveSolver::flowOut(OutputId Out, PairId Pair,
                                       const Derivation &D) {
  ++Result.Stats.MeetOps;
  if (!Result.insert(Out, Pair, D))
    return;
  ++Result.Stats.PairsInserted;
  if (Obs.Events)
    tracePair(Out, Pair);
  for (InputId Consumer : G.output(Out).Consumers)
    enqueue(Consumer, Pair);
}

void ContextInsensitiveSolver::flowIn(InputId In, PairId Pair) {
  const InputInfo &Info = G.input(In);
  NodeId N = Info.Node;
  unsigned Idx = Info.Index;
  const Node &Node = G.node(N);

  switch (Node.Kind) {
  case NodeKind::Lookup:
    flowLookup(N, Idx, Pair);
    return;
  case NodeKind::Update:
    flowUpdate(N, Idx, Pair);
    return;
  case NodeKind::Offset:
    flowOffset(N, Pair);
    return;
  case NodeKind::Merge:
    flowOut(G.outputOf(N), Pair, {N, G.producerOf(N, Idx), Pair});
    return;
  case NodeKind::PtrArith:
    // Identity on the first operand's pairs; scalar operands are inert.
    if (Idx == 0)
      flowOut(G.outputOf(N), Pair, {N, G.producerOf(N, 0), Pair});
    return;
  case NodeKind::ScalarOp:
    return; // Scalar results carry no pairs.
  case NodeKind::Call:
    flowCall(N, Idx, Pair);
    return;
  case NodeKind::Return:
    flowReturn(N, Idx, Pair);
    return;
  case NodeKind::ConstScalar:
  case NodeKind::ConstPath:
  case NodeKind::Entry:
  case NodeKind::InitStore:
    assert(false && "node kind takes no inputs");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Memory operations (Figure 1's lookup/update rules)
//===----------------------------------------------------------------------===//

void ContextInsensitiveSolver::flowLookup(NodeId N, unsigned InIdx,
                                          PairId Pair) {
  OutputId Out = G.outputOf(N);
  const PointsToPair &P = PT.pair(Pair);

  if (InIdx == 0) {
    // New location pair (must be a pointer value: empty path).
    if (P.Path != PathTable::emptyPath())
      return;
    PathId Loc = P.Referent;
    for (PairId SId : pairsAtInput(N, 1)) {
      const PointsToPair &S = PT.pair(SId);
      if (Paths.dom(Loc, S.Path))
        flowOut(Out,
                PT.intern(Paths.subtractPrefix(S.Path, Loc).value(), S.Referent),
                {N, G.producerOf(N, 1), SId, G.producerOf(N, 0), Pair});
    }
    return;
  }

  // New store pair: dereference against every known location.
  assert(InIdx == 1 && "lookup has two inputs");
  for (PairId LId : pairsAtInput(N, 0)) {
    const PointsToPair &L = PT.pair(LId);
    if (L.Path != PathTable::emptyPath())
      continue;
    if (Paths.dom(L.Referent, P.Path))
      flowOut(Out,
              PT.intern(Paths.subtractPrefix(P.Path, L.Referent).value(),
                        P.Referent),
              {N, G.producerOf(N, 1), Pair, G.producerOf(N, 0), LId});
  }
}

void ContextInsensitiveSolver::flowUpdate(NodeId N, unsigned InIdx,
                                          PairId Pair) {
  OutputId Out = G.outputOf(N);
  const PointsToPair &P = PT.pair(Pair);

  switch (InIdx) {
  case 0: {
    // New location pair.
    if (P.Path != PathTable::emptyPath())
      return;
    PathId Loc = P.Referent;
    // (a) It writes every known value there.
    for (PairId VId : pairsAtInput(N, 2)) {
      const PointsToPair &V = PT.pair(VId);
      flowOut(Out, PT.intern(Paths.appendPath(Loc, V.Path), V.Referent),
              {N, G.producerOf(N, 2), VId, G.producerOf(N, 0), Pair});
    }
    // (b) Store pairs this location does not strongly overwrite pass
    // through (CWZ90 strong updates: a pair blocked by one location is
    // re-examined when other locations arrive).
    for (PairId SId : pairsAtInput(N, 1)) {
      const PointsToPair &S = PT.pair(SId);
      if (!Paths.strongDom(Loc, S.Path)) {
        flowOut(Out, SId,
                {N, G.producerOf(N, 1), SId, G.producerOf(N, 0), Pair});
      } else {
        ++StrongUpdates;
        if (Obs.Events)
          traceStrongUpdate(N, Loc, SId);
      }
    }
    return;
  }
  case 1: {
    // New store pair: passes through if at least one location fails to
    // strongly overwrite it. With no locations yet, it stays blocked; the
    // location rule above replays it later.
    bool Blocked = false;
    PathId BlockingLoc = PathTable::emptyPath();
    for (PairId LId : pairsAtInput(N, 0)) {
      const PointsToPair &L = PT.pair(LId);
      if (L.Path != PathTable::emptyPath())
        continue;
      if (!Paths.strongDom(L.Referent, P.Path)) {
        flowOut(Out, Pair,
                {N, G.producerOf(N, 1), Pair, G.producerOf(N, 0), LId});
        return;
      }
      Blocked = true;
      BlockingLoc = L.Referent;
    }
    if (Blocked) {
      ++StrongUpdates;
      if (Obs.Events)
        traceStrongUpdate(N, BlockingLoc, Pair);
    }
    return;
  }
  case 2: {
    // New value pair: written at every known location.
    for (PairId LId : pairsAtInput(N, 0)) {
      const PointsToPair &L = PT.pair(LId);
      if (L.Path != PathTable::emptyPath())
        continue;
      flowOut(Out,
              PT.intern(Paths.appendPath(L.Referent, P.Path), P.Referent),
              {N, G.producerOf(N, 2), Pair, G.producerOf(N, 0), LId});
    }
    return;
  }
  default:
    assert(false && "update has three inputs");
  }
}

void ContextInsensitiveSolver::flowOffset(NodeId N, PairId Pair) {
  const Node &Node = G.node(N);
  const PointsToPair &P = PT.pair(Pair);
  if (P.Path != PathTable::emptyPath())
    return; // Only pointer values are meaningful here.
  if (Node.OpIsNoop) {
    flowOut(G.outputOf(N), Pair, {N, G.producerOf(N, 0), Pair});
    return;
  }
  PathId NewRef = Paths.append(P.Referent, Node.Op);
  flowOut(G.outputOf(N), PT.intern(PathTable::emptyPath(), NewRef),
          {N, G.producerOf(N, 0), Pair});
}

//===----------------------------------------------------------------------===//
// Calls and returns (treated as jumps, with a discovered call graph)
//===----------------------------------------------------------------------===//

void ContextInsensitiveSolver::registerCallee(NodeId Call,
                                              const FunctionInfo *Info) {
  auto &List = Result.CalleesOf[Call];
  if (std::find(List.begin(), List.end(), Info) != List.end())
    return;
  List.push_back(Info);
  CallersOf[Info->Fn].push_back(Call);
  // Repropagation: everything already sitting on the call's inputs flows
  // into the new callee, and everything at the callee's return flows back.
  propagateActualsToCallee(Call, Info);
  propagateReturnToCaller(Call, Info);
}

void ContextInsensitiveSolver::propagateActualsToCallee(
    NodeId Call, const FunctionInfo *Info) {
  const Node &CallNode = G.node(Call);
  unsigned NumActuals = static_cast<unsigned>(CallNode.Inputs.size()) - 2;
  NodeId Entry = Info->EntryNode;
  unsigned NumFormals = Info->NumParams;

  for (unsigned I = 0; I < std::min(NumActuals, NumFormals); ++I)
    for (PairId Pair : pairsAtInput(Call, I + 1))
      flowOut(G.outputOf(Entry, I), Pair,
              {Call, G.producerOf(Call, I + 1), Pair});

  // Store: the call's last input feeds the entry's store formal.
  unsigned StoreIdx = static_cast<unsigned>(CallNode.Inputs.size()) - 1;
  for (PairId Pair : pairsAtInput(Call, StoreIdx))
    flowOut(G.outputOf(Entry, NumFormals), Pair,
            {Call, G.producerOf(Call, StoreIdx), Pair});
}

void ContextInsensitiveSolver::propagateReturnToCaller(
    NodeId Call, const FunctionInfo *Info) {
  const Node &CallNode = G.node(Call);
  const Node &RetNode = G.node(Info->ReturnNode);

  if (RetNode.HasValue && CallNode.HasResult)
    for (PairId Pair : pairsAtInput(Info->ReturnNode, 0))
      flowOut(G.outputOf(Call, 0), Pair,
              {Call, G.producerOf(Info->ReturnNode, 0), Pair});

  unsigned RetStoreIdx = RetNode.HasValue ? 1 : 0;
  OutputId CallStoreOut = G.outputOf(Call, CallNode.HasResult ? 1 : 0);
  for (PairId Pair : pairsAtInput(Info->ReturnNode, RetStoreIdx))
    flowOut(CallStoreOut, Pair,
            {Call, G.producerOf(Info->ReturnNode, RetStoreIdx), Pair});
}

void ContextInsensitiveSolver::flowCall(NodeId N, unsigned InIdx,
                                        PairId Pair) {
  const Node &CallNode = G.node(N);
  unsigned LastIdx = static_cast<unsigned>(CallNode.Inputs.size()) - 1;
  const PointsToPair &P = PT.pair(Pair);

  if (InIdx == 0) {
    // New function value: extend the call graph.
    if (P.Path != PathTable::emptyPath())
      return;
    if (!Paths.isLocation(P.Referent))
      return;
    const BaseLocation &Base = Paths.base(Paths.baseOf(P.Referent));
    if (Base.Kind != BaseLocKind::Function)
      return; // Calling a non-function value: ignored (runtime error).
    const FunctionInfo *Info = G.functionInfo(Base.Fn);
    if (!Info) {
      // Undefined callee: the call is the identity on the store.
      if (IdentityCalls.insert(N)) {
        OutputId StoreOut =
            G.outputOf(N, CallNode.HasResult ? 1 : 0);
        for (PairId SPair : pairsAtInput(N, LastIdx))
          flowOut(StoreOut, SPair,
                  {N, G.producerOf(N, LastIdx), SPair});
      }
      return;
    }
    registerCallee(N, Info);
    return;
  }

  if (InIdx == LastIdx) {
    // New store pair: flows into every callee's store formal.
    for (const FunctionInfo *Info : Result.callees(N))
      flowOut(G.outputOf(Info->EntryNode, Info->NumParams), Pair,
              {N, G.producerOf(N, InIdx), Pair});
    if (IdentityCalls.contains(N))
      flowOut(G.outputOf(N, CallNode.HasResult ? 1 : 0), Pair,
              {N, G.producerOf(N, InIdx), Pair});
    return;
  }

  // New actual pair: flows into the corresponding formal of every callee.
  unsigned ActualIdx = InIdx - 1;
  for (const FunctionInfo *Info : Result.callees(N))
    if (ActualIdx < Info->NumParams)
      flowOut(G.outputOf(Info->EntryNode, ActualIdx), Pair,
              {N, G.producerOf(N, InIdx), Pair});
}

void ContextInsensitiveSolver::flowReturn(NodeId N, unsigned InIdx,
                                          PairId Pair) {
  const Node &RetNode = G.node(N);
  const FuncDecl *Fn = RetNode.Owner;
  auto It = CallersOf.find(Fn);
  if (It == CallersOf.end())
    return;

  bool IsValue = RetNode.HasValue && InIdx == 0;
  for (NodeId Call : It->second) {
    const Node &CallNode = G.node(Call);
    if (IsValue) {
      if (CallNode.HasResult)
        flowOut(G.outputOf(Call, 0), Pair,
                {Call, G.producerOf(N, InIdx), Pair});
    } else {
      flowOut(G.outputOf(Call, CallNode.HasResult ? 1 : 0), Pair,
              {Call, G.producerOf(N, InIdx), Pair});
    }
  }
}
