//===- pointsto/Statistics.cpp --------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pointsto/Statistics.h"

using namespace vdga;

PairTotals vdga::computePairTotals(const Graph &G, const PointsToResult &R) {
  PairTotals T;
  for (OutputId O = 0; O < G.numOutputs(); ++O) {
    uint64_t N = R.pairs(O).size();
    switch (G.output(O).Kind) {
    case ValueKind::Pointer:
      T.Pointer += N;
      break;
    case ValueKind::Function:
      T.Function += N;
      break;
    case ValueKind::Aggregate:
      T.Aggregate += N;
      break;
    case ValueKind::Store:
      T.Store += N;
      break;
    case ValueKind::Scalar:
      break; // Scalar outputs never carry pairs.
    }
  }
  return T;
}

std::vector<std::pair<NodeId, std::vector<PathId>>>
vdga::indirectOpLocations(const Graph &G, const PointsToResult &R,
                          const PairTable &PT, bool Writes) {
  std::vector<std::pair<NodeId, std::vector<PathId>>> Sites;
  NodeKind Wanted = Writes ? NodeKind::Update : NodeKind::Lookup;
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Kind != Wanted || !Node.IndirectAccess)
      continue;
    OutputId LocOut = G.producerOf(N, 0);
    Sites.emplace_back(N, R.pointerReferents(LocOut, PT));
  }
  return Sites;
}

IndirectOpStats vdga::computeIndirectOpStats(const Graph &G,
                                             const PointsToResult &R,
                                             const PairTable &PT,
                                             bool Writes) {
  IndirectOpStats S;
  uint64_t Sum = 0;
  for (const auto &[Node, Locs] : indirectOpLocations(G, R, PT, Writes)) {
    unsigned N = static_cast<unsigned>(Locs.size());
    if (N == 0) {
      ++S.ZeroRef;
      continue;
    }
    ++S.Total;
    Sum += N;
    S.Max = std::max(S.Max, N);
    if (N == 1)
      ++S.Count1;
    else if (N == 2)
      ++S.Count2;
    else if (N == 3)
      ++S.Count3;
    else
      ++S.Count4Plus;
  }
  S.Avg = S.Total ? static_cast<double>(Sum) / S.Total : 0.0;
  return S;
}

uint64_t PairBreakdown::total() const {
  uint64_t T = 0;
  for (const auto &Row : Counts)
    for (uint64_t C : Row)
      T += C;
  return T;
}

static PairBreakdown::PathClass pathClassOf(StorageClass C) {
  switch (C) {
  case StorageClass::Offset:
    return PairBreakdown::POffset;
  case StorageClass::Local:
    return PairBreakdown::PLocal;
  case StorageClass::Heap:
    return PairBreakdown::PHeap;
  case StorageClass::Global:
  case StorageClass::Function:
    return PairBreakdown::PGlobal;
  }
  return PairBreakdown::PGlobal;
}

static PairBreakdown::RefClass refClassOf(StorageClass C) {
  switch (C) {
  case StorageClass::Function:
    return PairBreakdown::RFunction;
  case StorageClass::Local:
    return PairBreakdown::RLocal;
  case StorageClass::Heap:
    return PairBreakdown::RHeap;
  case StorageClass::Global:
  case StorageClass::Offset:
    return PairBreakdown::RGlobal;
  }
  return PairBreakdown::RGlobal;
}

PointerDepthStats vdga::computePointerDepthStats(const Program &P) {
  PointerDepthStats S;
  auto Consider = [&S](const Type *Ty) {
    const auto *Ptr = dyn_cast<PointerType>(Ty);
    if (!Ptr)
      return;
    ++S.PointerDecls;
    if (Ptr->pointee()->isAliasRelated())
      ++S.MultiLevel;
  };
  for (const VarDecl *G : P.Globals)
    Consider(G->type());
  for (const FuncDecl *Fn : P.Functions) {
    for (const VarDecl *Param : Fn->params())
      Consider(Param->type());
    for (const VarDecl *Local : Fn->locals())
      Consider(Local->type());
  }
  for (const RecordType *Rec : P.Types.records()) {
    if (!Rec->isComplete())
      continue;
    for (const RecordField &F : Rec->fields())
      Consider(F.Ty);
  }
  return S;
}

PairBreakdown vdga::computePairBreakdown(const Graph &G,
                                         const PointsToResult &R,
                                         const PairTable &PT,
                                         const PathTable &Paths,
                                         const LocationTable &Locs) {
  PairBreakdown B;
  for (OutputId O = 0; O < G.numOutputs(); ++O) {
    for (PairId Id : R.pairs(O)) {
      const PointsToPair &P = PT.pair(Id);
      auto PC = pathClassOf(Locs.classify(P.Path, Paths));
      auto RC = refClassOf(Locs.classify(P.Referent, Paths));
      ++B.Counts[PC][RC];
    }
  }
  return B;
}
