//===- pointsto/Solver.h - Context-insensitive analysis --------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's context-insensitive points-to analysis (Figure 1,
/// essentially [CWZ90] sections 3/4.2): a worklist of (input, pair) events,
/// monotone per-output pair sets, calls and returns treated as jumps with a
/// dynamically discovered call graph, and strong updates through the
/// delayed/reprocessed store-pair behaviour of CWZ90's dual worklist.
///
/// Work counters mirror the paper's: *transfer functions* are flow-in
/// applications (worklist pops), *meet operations* are flow-out
/// applications (attempted pair insertions at outputs). Section 4.3 of the
/// paper compares these across the CI and CS analyses.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_POINTSTO_SOLVER_H
#define VDGA_POINTSTO_SOLVER_H

#include "pointsto/PointsToPair.h"
#include "support/Budget.h"
#include "support/DenseBitSet.h"
#include "support/Observability.h"
#include "support/SCC.h"
#include "vdg/Graph.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace vdga {

/// Worklist scheduling strategies. Figure 1's algorithm converges to the
/// same solution under any of them (a property the test suite checks).
enum class WorklistOrder : uint8_t { FIFO, LIFO };

/// Solver engine strategies. All three compute the same fixed point (the
/// fuzz oracle stack and the strategy equivalence suite enforce it):
///
///   Basic — the reference engine: one (input, pair) worklist event per
///           propagation, exactly Figure 1 as written.
///   Wave  — delta-set difference propagation: each output accumulates a
///           `Delta` bitset of pairs added since its last dequeue, and the
///           worklist drains outputs in topological-rank waves (an online
///           SCC condensation of the value-flow graph orders them), so a
///           whole batch of pairs flows through each consumer's transfer
///           function at once.
///   Deep  — Wave plus representative collapse of copy cycles: outputs
///           connected by cycles of pair-preserving edges (merge /
///           pointer-arithmetic identities, call/return value plumbing)
///           provably converge to identical sets, so they share one
///           representative set instead of converging by re-propagation.
enum class SolverStrategy : uint8_t { Basic, Wave, Deep };

const char *solverStrategyName(SolverStrategy S);

/// Parses "basic" / "wave" / "deep"; returns false on anything else.
bool parseSolverStrategy(const char *Text, SolverStrategy &Out);

/// Work counters for one solver run.
struct SolveStats {
  uint64_t TransferFns = 0; ///< flow-in applications.
  uint64_t MeetOps = 0;     ///< flow-out applications.
  uint64_t PairsInserted = 0;
  /// Enqueues skipped because the (input, pair) event was already queued.
  uint64_t DedupedEvents = 0;
};

/// Provenance of one derived pair instance: the node whose transfer
/// function introduced it and up to two predecessor (output, pair)
/// instances — e.g. a lookup result combines a store pair (primary, the
/// content that flowed) with a location pair (secondary, the gate).
/// Instances from Figure 1's initialization carry the seeding ConstPath
/// node and no predecessors, terminating every derivation chain. First
/// derivations only: predecessors were always inserted strictly earlier,
/// so chains are acyclic.
struct Derivation {
  NodeId Node = InvalidId;      ///< Deriving node (seed: the ConstPath).
  OutputId PredOut = InvalidId; ///< Primary predecessor instance.
  PairId PredPair = 0;
  OutputId PredOut2 = InvalidId; ///< Secondary predecessor, if any.
  PairId PredPair2 = 0;

  bool isSeed() const { return PredOut == InvalidId; }
};

/// The solution: per-output points-to pair sets plus the discovered call
/// graph.
class PointsToResult {
public:
  explicit PointsToResult(size_t NumOutputs)
      : PairsByOutput(NumOutputs), SetsByOutput(NumOutputs) {}

  /// Inserts \p Pair into \p Out's set; returns true if it was new. When
  /// provenance is enabled, \p D is recorded for new instances (first
  /// derivation wins).
  bool insert(OutputId Out, PairId Pair, const Derivation &D = {}) {
    if (!SetsByOutput[Out].insert(Pair))
      return false;
    PairsByOutput[Out].push_back(Pair);
    if (RecordProvenance)
      Derivations[Out].push_back(D);
    return true;
  }

  /// Turns on derivation recording; call before the first insert.
  void enableProvenance() {
    RecordProvenance = true;
    Derivations.resize(PairsByOutput.size());
  }
  bool provenanceEnabled() const { return RecordProvenance; }

  /// The recorded first derivation of \p Pair at \p Out, or null when the
  /// instance is absent or provenance was not enabled.
  const Derivation *derivation(OutputId Out, PairId Pair) const;

  bool contains(OutputId Out, PairId Pair) const {
    return SetsByOutput[Out].contains(Pair);
  }

  /// Pairs on \p Out in arrival order (deterministic given the schedule).
  const std::vector<PairId> &pairs(OutputId Out) const {
    return PairsByOutput[Out];
  }

  /// Distinct referents of the empty-path (pointer-valued) pairs on \p Out
  /// — the "locations referenced/modified" of Figure 4 when \p Out is a
  /// lookup/update location input's producer.
  std::vector<PathId> pointerReferents(OutputId Out,
                                       const PairTable &PT) const;

  /// Total number of (output, pair) instances, the unit Figures 3/6 count.
  uint64_t totalPairInstances() const;

  /// The callees discovered for a call node (empty when none).
  const std::vector<const FunctionInfo *> &callees(NodeId Call) const;

  SolveStats Stats;
  /// How the solve ended. Anything other than Complete means the pair
  /// sets are a partial (under-approximate) prefix of the fixed point and
  /// MUST NOT be served as an analysis result — the governance ladder
  /// (driver/Governance.h) substitutes a coarser complete tier instead.
  SolveStatus Status = SolveStatus::Complete;
  BudgetTrip Trip = BudgetTrip::None;
  bool complete() const { return Status == SolveStatus::Complete; }

private:
  friend class ContextInsensitiveSolver;
  std::vector<std::vector<PairId>> PairsByOutput;
  /// Membership index: pair ids are dense interner output, so one bit per
  /// pair beats a hash-set node on every meet operation.
  std::vector<DenseBitSet> SetsByOutput;
  /// Parallel to PairsByOutput when provenance is enabled, else empty.
  std::vector<std::vector<Derivation>> Derivations;
  bool RecordProvenance = false;
  std::unordered_map<NodeId, std::vector<const FunctionInfo *>> CalleesOf;
  static const std::vector<const FunctionInfo *> NoCallees;
};

/// Runs Figure 1 over a built graph.
class ContextInsensitiveSolver {
public:
  ContextInsensitiveSolver(const Graph &G, PathTable &Paths, PairTable &PT,
                           WorklistOrder Order = WorklistOrder::FIFO,
                           SolverObserver Obs = {},
                           const ResourceBudget &Budget = {},
                           SolverStrategy Strategy = SolverStrategy::Basic)
      : G(G), Paths(Paths), PT(PT), Order(Order), Strategy(Strategy),
        Obs(Obs), Budget(Budget), Result(G.numOutputs()) {
    if (Obs.RecordProvenance)
      Result.enableProvenance();
  }

  /// Seeds every ConstPath node and iterates to a fixed point.
  PointsToResult solve();

private:
  void runBasic();
  void runWave();
  /// All worklist pushes funnel through here so every producer of events
  /// honors the configured WorklistOrder, and so an (input, pair) event
  /// already sitting in the queue is not enqueued a second time.
  void enqueue(InputId In, PairId Pair);
  std::pair<InputId, PairId> dequeue();

  void flowOut(OutputId Out, PairId Pair, const Derivation &D = {});
  void flowIn(InputId In, PairId Pair);

  /// Trace helpers; single null check when tracing is disabled.
  void tracePair(OutputId Out, PairId Pair);
  void traceStrongUpdate(NodeId N, PathId Loc, PairId Killed);

  void flowLookup(NodeId N, unsigned InIdx, PairId Pair);
  void flowUpdate(NodeId N, unsigned InIdx, PairId Pair);
  void flowOffset(NodeId N, PairId Pair);
  void flowCall(NodeId N, unsigned InIdx, PairId Pair);
  void flowReturn(NodeId N, unsigned InIdx, PairId Pair);

  void registerCallee(NodeId Call, const FunctionInfo *Info);
  void propagateActualsToCallee(NodeId Call, const FunctionInfo *Info);
  void propagateReturnToCaller(NodeId Call, const FunctionInfo *Info);

  /// Representative output whose set stores \p Out's pairs: identity
  /// under Basic/Wave, the copy-component representative under Deep.
  OutputId rep(OutputId Out) const {
    return Copies ? Copies->find(Out) : Out;
  }

  /// The pairs currently on the producer of input \p Index of node \p N.
  const std::vector<PairId> &pairsAtInput(NodeId N, unsigned Index) const {
    return Result.pairs(rep(G.producerOf(N, Index)));
  }

  // Wave/Deep machinery (see runWave in Solver.cpp).
  void buildFlowGraphs();
  void addDynamicEdge(OutputId From, OutputId To, bool Copy);
  void addDynamicCallEdges(NodeId Call, const FunctionInfo *Info);
  void scheduleOutput(OutputId Rep);
  void deliverBatch(InputId In, OutputId SrcRep,
                    const std::vector<PairId> &Batch);
  void reconcileMerge(OutputId Winner, OutputId Loser);
  void finalizeCollapse();

  const Graph &G;
  PathTable &Paths;
  PairTable &PT;
  WorklistOrder Order;
  SolverStrategy Strategy;
  SolverObserver Obs;
  ResourceBudget Budget;
  PointsToResult Result;
  /// Store pairs killed by a strong update (published as a metric).
  uint64_t StrongUpdates = 0;

  std::deque<std::pair<InputId, PairId>> Worklist;
  /// Per-input membership of queued-but-unprocessed events, for dedup.
  std::vector<DenseBitSet> Queued;
  /// Call nodes whose function input produced an undefined callee: the
  /// store passes through unchanged (identity), soundly modeling calls to
  /// prototypes without bodies.
  DenseBitSet IdentityCalls;
  /// Callers of each function, for return propagation. Looked up by key
  /// only (never iterated), so hashing on the pointer stays deterministic.
  std::unordered_map<const FuncDecl *, std::vector<NodeId>> CallersOf;

  //===--------------------------------------------------------------------===
  // Wave/Deep state (null / empty under Basic)
  //===--------------------------------------------------------------------===

  /// Topological rank of each output in the condensed value-flow graph;
  /// orders the output worklist into waves. Flattened out of a throwaway
  /// OnlineSCC at buildFlowGraphs() time — the ranks are a scheduling
  /// heuristic and never change afterwards (see addDynamicEdge).
  std::vector<uint32_t> FlowRank;
  /// Deep only: condensation of the pair-preserving (copy) subgraph; its
  /// components share one representative pair set.
  std::unique_ptr<OnlineSCC> Copies;
  /// Per-representative pairs inserted since that output's last flush.
  std::vector<DenseBitSet> Delta;
  /// Min-heap of (flow rank, output) with std::push_heap/pop_heap;
  /// entries whose QueuedOut bit is clear are stale and skipped.
  std::vector<std::pair<uint32_t, OutputId>> OutHeap;
  DenseBitSet QueuedOut;
  /// Deep only: consumers inherited from collapsed-away member outputs
  /// (each output's own consumers stay in the graph).
  std::vector<std::vector<InputId>> ExtraConsumers;
  /// Deep only: deferred targeted deliveries from reconcileMerge — the
  /// winner-side difference owed to exactly the loser's consumers. A
  /// merge fires inside OnlineSCC's OnMerge callback, which must not
  /// re-enter the condensation, so the delivery (which can discover
  /// callees and insert new copy edges) waits for the runWave loop.
  struct MergeDelivery {
    std::vector<InputId> Consumers;
    std::vector<PairId> Batch;
    OutputId Rep;
  };
  std::vector<MergeDelivery> PendingMerges;
  size_t PendingMergeHead = 0;
  /// New *.delta_pairs_flowed / *.scc_collapsed metric feeds.
  uint64_t DeltaPairsFlowed = 0;
  uint64_t SccCollapsed = 0;
};

} // namespace vdga

#endif // VDGA_POINTSTO_SOLVER_H
