//===- pointsto/Statistics.h - Paper statistics ----------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collectors for the measurements the paper reports:
///   Figure 2 — program sizes (source lines, VDG nodes, alias-related
///              outputs);
///   Figure 3/6 — points-to pair instances grouped by the kind of the
///              output they appear on;
///   Figure 4 — per indirect read/write, the number of distinct locations
///              the operation may reference/modify;
///   Figure 7 — pair instances broken down by path class x referent class.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_POINTSTO_STATISTICS_H
#define VDGA_POINTSTO_STATISTICS_H

#include "memory/LocationTable.h"
#include "pointsto/Solver.h"

#include <array>
#include <cstdint>

namespace vdga {

/// Figure 3 / Figure 6 row: pair instances by output kind.
struct PairTotals {
  uint64_t Pointer = 0;
  uint64_t Function = 0;
  uint64_t Aggregate = 0;
  uint64_t Store = 0;

  uint64_t total() const { return Pointer + Function + Aggregate + Store; }
};

/// Counts pair instances on alias-related outputs, grouped by output kind.
PairTotals computePairTotals(const Graph &G, const PointsToResult &R);

/// Figure 4 row: histogram of locations referenced per indirect memory
/// operation. Operations whose location input carries no referents at all
/// (dead or null-only code) are tallied separately, matching the paper's
/// footnote about backprop/bc.
struct IndirectOpStats {
  unsigned Total = 0;      ///< Indirect ops with >= 1 referent.
  unsigned ZeroRef = 0;    ///< Indirect ops with no referents.
  unsigned Count1 = 0;
  unsigned Count2 = 0;
  unsigned Count3 = 0;
  unsigned Count4Plus = 0;
  unsigned Max = 0;
  double Avg = 0.0;
};

/// Computes Figure 4 statistics over all indirect lookups (reads) or
/// updates (writes).
IndirectOpStats computeIndirectOpStats(const Graph &G,
                                       const PointsToResult &R,
                                       const PairTable &PT, bool Writes);

/// The per-site location sets behind Figure 4: for every indirect
/// lookup/update node, the distinct referent paths on its location input.
std::vector<std::pair<NodeId, std::vector<PathId>>>
indirectOpLocations(const Graph &G, const PointsToResult &R,
                    const PairTable &PT, bool Writes);

/// Figure 7 matrix: pair instances classified by path class (rows:
/// offset, local, global, heap) x referent class (columns: function,
/// local, global, heap).
struct PairBreakdown {
  // Indexed [pathClass][referentClass] with the enums below.
  enum PathClass { POffset = 0, PLocal, PGlobal, PHeap, NumPathClasses };
  enum RefClass { RFunction = 0, RLocal, RGlobal, RHeap, NumRefClasses };
  std::array<std::array<uint64_t, NumRefClasses>, NumPathClasses> Counts{};

  uint64_t total() const;
};

PairBreakdown computePairBreakdown(const Graph &G, const PointsToResult &R,
                                   const PairTable &PT,
                                   const PathTable &Paths,
                                   const LocationTable &Locs);

/// Section 5.1.2's structural claim: "the vast majority of pointers are
/// single-level (they reference scalar datatypes)". Counts pointer-typed
/// declarations (globals, locals, parameters, record fields) and how many
/// are multi-level — their pointee type itself contains pointers.
struct PointerDepthStats {
  unsigned PointerDecls = 0;
  unsigned MultiLevel = 0;

  double singleLevelFraction() const {
    return PointerDecls
               ? 1.0 - static_cast<double>(MultiLevel) / PointerDecls
               : 1.0;
  }
};

PointerDepthStats computePointerDepthStats(const Program &P);

} // namespace vdga

#endif // VDGA_POINTSTO_STATISTICS_H
