//===- pointsto/PointsToPair.cpp ------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pointsto/PointsToPair.h"

using namespace vdga;

PairId PairTable::intern(PathId Path, PathId Referent) {
  uint64_t Key = (uint64_t(index(Path)) << 32) | index(Referent);
  auto [It, Inserted] =
      Index.emplace(Key, static_cast<PairId>(Pairs.size()));
  if (Inserted)
    Pairs.push_back({Path, Referent});
  return It->second;
}

std::string PairTable::str(PairId Id, const PathTable &Paths,
                           const StringInterner &Names) const {
  const PointsToPair &P = Pairs[Id];
  return "(" + Paths.str(P.Path, Names) + " -> " +
         Paths.str(P.Referent, Names) + ")";
}
