//===- pointsto/PointsToPair.cpp ------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pointsto/PointsToPair.h"

using namespace vdga;

PairId PairTable::intern(PathId Path, PathId Referent) {
  auto Key = std::make_pair(index(Path), index(Referent));
  auto It = Index.find(Key);
  if (It != Index.end())
    return It->second;
  auto Id = static_cast<PairId>(Pairs.size());
  Pairs.push_back({Path, Referent});
  Index.emplace(Key, Id);
  return Id;
}

std::string PairTable::str(PairId Id, const PathTable &Paths,
                           const StringInterner &Names) const {
  const PointsToPair &P = Pairs[Id];
  return "(" + Paths.str(P.Path, Names) + " -> " +
         Paths.str(P.Referent, Names) + ")";
}
