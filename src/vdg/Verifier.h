//===- vdg/Verifier.h - Structural VDG checks ------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural invariants of a built VDG: node arities, fully wired inputs,
/// store-kind agreement on store edges, entry/return registration for every
/// defined function. Run by tests and by the pipeline in debug builds.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_VDG_VERIFIER_H
#define VDGA_VDG_VERIFIER_H

#include "support/Diagnostics.h"
#include "vdg/Graph.h"

namespace vdga {

/// Checks structural invariants; reports violations to \p Diags. Returns
/// true when the graph is well-formed.
bool verifyGraph(const Graph &G, const Program &P, DiagnosticEngine &Diags);

} // namespace vdga

#endif // VDGA_VDG_VERIFIER_H
