//===- vdg/Printer.cpp ----------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vdg/Printer.h"

#include <sstream>

using namespace vdga;

static std::string nodeLabel(const Graph &G, NodeId N, const Program &P,
                             const PathTable &Paths) {
  const Node &Node = G.node(N);
  std::ostringstream OS;
  OS << nodeKindName(Node.Kind);
  if (Node.Kind == NodeKind::ConstPath)
    OS << ' ' << Paths.str(Node.Path, P.Names);
  if (Node.Kind == NodeKind::Offset) {
    if (Node.OpIsNoop) {
      OS << " (union)";
    } else {
      const AccessOp &Op = Paths.op(Node.Op);
      if (Op.K == AccessOp::Kind::ArrayElem)
        OS << " [*]";
      else
        OS << " ." << P.Names.text(Op.Record->fields()[Op.FieldIndex].Name);
    }
  }
  if ((Node.Kind == NodeKind::Lookup || Node.Kind == NodeKind::Update) &&
      Node.IndirectAccess)
    OS << " (indirect)";
  return OS.str();
}

std::string vdga::printGraph(const Graph &G, const Program &P,
                             const PathTable &Paths) {
  std::ostringstream OS;
  const FuncDecl *LastOwner = reinterpret_cast<const FuncDecl *>(-1);
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Owner != LastOwner) {
      LastOwner = Node.Owner;
      OS << "; "
         << (Node.Owner ? P.Names.text(Node.Owner->name()) : "<bootstrap>")
         << "\n";
    }
    OS << "  n" << N << " = " << nodeLabel(G, N, P, Paths) << '(';
    for (size_t I = 0; I < Node.Inputs.size(); ++I) {
      if (I)
        OS << ", ";
      OutputId Producer = G.input(Node.Inputs[I]).Producer;
      if (Producer == InvalidId)
        OS << "<unwired>";
      else
        OS << 'o' << Producer;
    }
    OS << ')';
    if (!Node.Outputs.empty()) {
      OS << " ->";
      for (OutputId O : Node.Outputs)
        OS << " o" << O << ':' << valueKindName(G.output(O).Kind);
    }
    OS << '\n';
  }
  return OS.str();
}

std::string vdga::printGraphDot(const Graph &G, const Program &P,
                                const PathTable &Paths) {
  std::ostringstream OS;
  OS << "digraph vdg {\n  node [shape=box, fontsize=9];\n";
  // Cluster nodes by owner.
  std::map<const FuncDecl *, std::vector<NodeId>> ByOwner;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    ByOwner[G.node(N).Owner].push_back(N);
  unsigned Cluster = 0;
  for (const auto &[Owner, Nodes] : ByOwner) {
    OS << "  subgraph cluster_" << Cluster++ << " {\n    label=\""
       << (Owner ? P.Names.text(Owner->name()) : "<bootstrap>") << "\";\n";
    for (NodeId N : Nodes)
      OS << "    n" << N << " [label=\"n" << N << " "
         << nodeLabel(G, N, P, Paths) << "\"];\n";
    OS << "  }\n";
  }
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    for (InputId In : G.node(N).Inputs) {
      OutputId Producer = G.input(In).Producer;
      if (Producer == InvalidId)
        continue;
      OS << "  n" << G.output(Producer).Node << " -> n" << N;
      if (G.output(Producer).Kind == ValueKind::Store)
        OS << " [style=dashed]";
      OS << ";\n";
    }
  }
  OS << "}\n";
  return OS.str();
}
