//===- vdg/Verifier.cpp ---------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vdg/Verifier.h"

#include <sstream>

using namespace vdga;

namespace {
class Verifier {
public:
  Verifier(const Graph &G, const Program &P, DiagnosticEngine &Diags)
      : G(G), P(P), Diags(Diags) {}

  bool run();

private:
  void check(bool Cond, NodeId N, const char *Message) {
    if (Cond)
      return;
    std::ostringstream OS;
    OS << "vdg verifier: node " << N << " (" << nodeKindName(G.node(N).Kind)
       << "): " << Message;
    Diags.error(G.node(N).Loc, OS.str());
  }

  /// Kind of the producer feeding input \p Index; Scalar when the input
  /// is unwired (that is reported separately).
  ValueKind inputKind(NodeId N, unsigned Index) const {
    OutputId Producer = G.producerOf(N, Index);
    if (Producer == InvalidId)
      return ValueKind::Scalar;
    return G.output(Producer).Kind;
  }

  const Graph &G;
  const Program &P;
  DiagnosticEngine &Diags;
};
} // namespace

bool Verifier::run() {
  unsigned Before = Diags.errorCount();

  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);

    // All inputs wired and within bounds.
    for (InputId In : Node.Inputs) {
      const InputInfo &Info = G.input(In);
      check(Info.Node == N, N, "input back-reference mismatch");
      check(Info.Producer != InvalidId, N, "unwired input");
    }

    switch (Node.Kind) {
    case NodeKind::ConstScalar:
    case NodeKind::ConstPath:
      check(Node.Inputs.empty(), N, "constants take no inputs");
      check(Node.Outputs.size() == 1, N, "constants produce one output");
      break;
    case NodeKind::Lookup:
      check(Node.Inputs.size() == 2, N, "lookup takes [loc, store]");
      if (Node.Inputs.size() == 2)
        check(inputKind(N, 1) == ValueKind::Store, N,
              "lookup input 1 must be a store");
      check(Node.Outputs.size() == 1, N, "lookup produces one value");
      break;
    case NodeKind::Update:
      check(Node.Inputs.size() == 3, N, "update takes [loc, store, value]");
      if (Node.Inputs.size() == 3)
        check(inputKind(N, 1) == ValueKind::Store, N,
              "update input 1 must be a store");
      check(Node.Outputs.size() == 1 &&
                G.output(Node.Outputs[0]).Kind == ValueKind::Store,
            N, "update produces one store");
      break;
    case NodeKind::Offset:
      check(Node.Inputs.size() == 1, N, "offset takes one value");
      check(Node.Outputs.size() == 1, N, "offset produces one value");
      break;
    case NodeKind::Merge: {
      check(Node.Outputs.size() == 1, N, "merge produces one output");
      ValueKind K = G.output(Node.Outputs[0]).Kind;
      for (size_t I = 0; I < Node.Inputs.size(); ++I) {
        ValueKind InK = inputKind(N, static_cast<unsigned>(I));
        // Scalar/pointer mixing is tolerated (null constants, undef), but
        // stores never mix with non-stores.
        check((InK == ValueKind::Store) == (K == ValueKind::Store), N,
              "merge mixes store and non-store inputs");
      }
      break;
    }
    case NodeKind::PtrArith:
      check(!Node.Inputs.empty(), N, "ptrarith takes at least one input");
      check(Node.Outputs.size() == 1, N, "ptrarith produces one value");
      break;
    case NodeKind::ScalarOp:
      check(Node.Outputs.size() == 1, N, "scalarop produces one value");
      break;
    case NodeKind::Call: {
      check(Node.Inputs.size() >= 2, N,
            "call takes at least [function, store]");
      if (!Node.Inputs.empty())
        check(inputKind(N, static_cast<unsigned>(Node.Inputs.size() - 1)) ==
                  ValueKind::Store,
              N, "call's last input must be a store");
      size_t ExpectedOuts = Node.HasResult ? 2 : 1;
      check(Node.Outputs.size() == ExpectedOuts, N,
            "call output arity mismatch");
      check(G.output(Node.Outputs.back()).Kind == ValueKind::Store, N,
            "call's last output must be a store");
      break;
    }
    case NodeKind::Entry:
      check(Node.Inputs.empty(), N, "entry takes no inputs");
      check(!Node.Outputs.empty() &&
                G.output(Node.Outputs.back()).Kind == ValueKind::Store,
            N, "entry's last output must be the store formal");
      break;
    case NodeKind::Return: {
      size_t Expected = Node.HasValue ? 2 : 1;
      check(Node.Inputs.size() == Expected, N, "return arity mismatch");
      check(Node.Outputs.empty(), N, "return produces no outputs");
      if (Node.Inputs.size() == Expected)
        check(inputKind(N, static_cast<unsigned>(Expected - 1)) ==
                  ValueKind::Store,
              N, "return's last input must be a store");
      break;
    }
    case NodeKind::InitStore:
      check(Node.Inputs.empty() && Node.Outputs.size() == 1 &&
                G.output(Node.Outputs[0]).Kind == ValueKind::Store,
            N, "initstore produces exactly one store");
      break;
    }
  }

  // Every defined function is registered with valid entry/return nodes.
  for (const FuncDecl *Fn : P.Functions) {
    if (!Fn->isDefined())
      continue;
    const FunctionInfo *Info = G.functionInfo(Fn);
    if (!Info) {
      Diags.error(Fn->loc(), "vdg verifier: defined function '" +
                                 P.Names.text(Fn->name()) +
                                 "' has no graph registration");
      continue;
    }
    if (G.node(Info->EntryNode).Kind != NodeKind::Entry ||
        G.node(Info->ReturnNode).Kind != NodeKind::Return)
      Diags.error(Fn->loc(), "vdg verifier: function '" +
                                 P.Names.text(Fn->name()) +
                                 "' has malformed entry/return nodes");
  }

  return Diags.errorCount() == Before;
}

bool vdga::verifyGraph(const Graph &G, const Program &P,
                       DiagnosticEngine &Diags) {
  return Verifier(G, P, Diags).run();
}
