//===- vdg/Graph.h - Value dependence graph IR -----------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse, VDG-style program representation (Section 2, [WCES94]): nodes
/// consume input values and produce output values of scalar, pointer,
/// function, aggregate or store type. All memory traffic is expressed as
/// `lookup` / `update` nodes threading explicit store values; control joins
/// and loop headers are `merge` nodes that union their inputs ("values from
/// both branches propagate; the predicate is ignored"); calls and returns
/// are wired dynamically by the solvers through per-function entry/return
/// nodes, exactly as in Figure 1.
///
/// Node inputs and outputs carry program-wide dense ids so solver state is
/// plain arrays. Merge inputs may be added after node creation (loop back
/// edges).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_VDG_GRAPH_H
#define VDGA_VDG_GRAPH_H

#include "frontend/AST.h"
#include "memory/AccessPath.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vdga {

/// Node kinds. The transfer functions live in the solvers; the graph only
/// fixes arities and payloads.
enum class NodeKind : uint8_t {
  /// A scalar constant or undefined value; carries no points-to pairs.
  /// (A null pointer is a ConstScalar of pointer type: no referents.)
  ConstScalar,
  /// A location- or function-valued constant: `&x`, a string literal, a
  /// function reference, or a heap allocation site's result. Seeds the
  /// analysis with the pair (empty, Path), per Figure 1's initialization.
  ConstPath,
  /// Memory read: inputs [loc, store], output [value].
  Lookup,
  /// Memory write: inputs [loc, store, value], output [store].
  Update,
  /// Appends one access operator to a pointer value: `&p->f`, `&a[i]`.
  /// Inputs [value], output [value]. For union members the operator is
  /// empty and the node is the identity.
  Offset,
  /// Control-flow join or loop header: unions any number of same-kind
  /// inputs into one output. Inputs may be wired late (back edges).
  Merge,
  /// Identity on points-to pairs with extra scalar operands consumed:
  /// pointer arithmetic `p + i`, and builtins returning their first
  /// argument (strcpy). Inputs [value, rest...], output [value].
  PtrArith,
  /// A scalar primitive over its inputs; output carries no pairs.
  /// Inputs [operands...], output [value].
  ScalarOp,
  /// A call: inputs [function, actual..., store]; outputs [result?, store].
  /// Callees are discovered by the solvers from the function input's pairs.
  Call,
  /// Function entry: no inputs; outputs [formal..., store].
  Entry,
  /// Function return: inputs [value?, store]; no outputs.
  Return,
  /// The program's initial (empty) store: no inputs, outputs [store].
  InitStore,
};

/// Classification of an output's values; drives the Figure 2/3 statistics.
enum class ValueKind : uint8_t { Scalar, Pointer, Function, Aggregate, Store };

const char *nodeKindName(NodeKind K);
const char *valueKindName(ValueKind K);

/// Returns the ValueKind corresponding to a MiniC type used as a value.
ValueKind valueKindFor(const Type *Ty);

/// Program-wide dense ids.
using NodeId = uint32_t;
using OutputId = uint32_t;
using InputId = uint32_t;
inline constexpr uint32_t InvalidId = UINT32_MAX;

/// One VDG node.
struct Node {
  NodeKind Kind = NodeKind::ConstScalar;
  /// Enclosing function; null only for the bootstrap region that runs
  /// global initializers and calls main.
  const FuncDecl *Owner = nullptr;
  SourceLoc Loc;

  std::vector<InputId> Inputs;
  std::vector<OutputId> Outputs;

  // Kind-specific payload.
  PathId Path = PathId::EmptyOffset; ///< ConstPath: the seeded location.
  AccessOpId Op{0};                  ///< Offset: operator to append.
  bool OpIsNoop = false;             ///< Offset: union-member identity.
  bool HasResult = false;            ///< Call: has a non-void result.
  bool HasValue = false;             ///< Return: returns a value.

  /// Lookup/Update only: true when the location input is computed from a
  /// pointer value rather than rooted at a constant path. Figure 4 counts
  /// exactly these "indirect memory operations".
  bool IndirectAccess = false;
  /// Lookup/Update only: the source expression this access implements.
  /// Links analysis sites to the concrete interpreter's trace (soundness
  /// oracle) and to diagnostics.
  const Expr *Origin = nullptr;
};

/// Where an output lives and who consumes it.
struct OutputInfo {
  NodeId Node = InvalidId;
  uint16_t Index = 0;
  ValueKind Kind = ValueKind::Scalar;
  std::vector<InputId> Consumers;
};

/// Where an input lives and which output feeds it.
struct InputInfo {
  NodeId Node = InvalidId;
  uint16_t Index = 0;
  OutputId Producer = InvalidId;
};

/// Per-function interface registration.
struct FunctionInfo {
  const FuncDecl *Fn = nullptr;
  NodeId EntryNode = InvalidId;
  NodeId ReturnNode = InvalidId;
  /// Formal value outputs (excluding the store formal).
  unsigned NumParams = 0;
};

/// The whole-program graph.
class Graph {
public:
  Graph() = default;
  Graph(const Graph &) = delete;
  Graph &operator=(const Graph &) = delete;

  //===--------------------------------------------------------------------===
  // Construction
  //===--------------------------------------------------------------------===

  /// Creates a node with \p OutputKinds outputs and no inputs yet.
  NodeId addNode(NodeKind Kind, const FuncDecl *Owner, SourceLoc Loc,
                 std::vector<ValueKind> OutputKinds);

  /// Appends an input to \p N fed by \p Producer (which may be InvalidId
  /// for late wiring). Returns the new input's id.
  InputId addInput(NodeId N, OutputId Producer);

  /// Wires a previously unwired input (loop back edges).
  void wireInput(InputId In, OutputId Producer);

  void registerFunction(FunctionInfo Info);

  //===--------------------------------------------------------------------===
  // Access
  //===--------------------------------------------------------------------===

  Node &node(NodeId N) { return Nodes[N]; }
  const Node &node(NodeId N) const { return Nodes[N]; }
  size_t numNodes() const { return Nodes.size(); }

  const OutputInfo &output(OutputId O) const { return Outputs[O]; }
  size_t numOutputs() const { return Outputs.size(); }

  const InputInfo &input(InputId I) const { return Inputs[I]; }
  size_t numInputs() const { return Inputs.size(); }

  /// Output \p Index of node \p N.
  OutputId outputOf(NodeId N, unsigned Index = 0) const {
    return Nodes[N].Outputs[Index];
  }
  /// Input \p Index of node \p N.
  InputId inputOf(NodeId N, unsigned Index) const {
    return Nodes[N].Inputs[Index];
  }
  /// The output feeding input \p Index of node \p N.
  OutputId producerOf(NodeId N, unsigned Index) const {
    return Inputs[Nodes[N].Inputs[Index]].Producer;
  }

  const FunctionInfo *functionInfo(const FuncDecl *Fn) const;
  const std::vector<FunctionInfo> &functions() const { return Functions; }

  /// Records the value output the builder produced for \p E. Every rvalue
  /// expression is built exactly once, so the map is a bijection onto the
  /// built outputs; clients (the lint engine) use it to ask any solver for
  /// the referents of an arbitrary source expression — e.g. free(p)'s
  /// argument, which is not otherwise an Origin-carrying access site.
  void noteExprValue(const Expr *E, OutputId O) { ExprValues[E] = O; }
  /// The value output built for \p E, or InvalidId when \p E was never
  /// built as an rvalue (dead code, pure lvalue positions).
  OutputId exprValue(const Expr *E) const {
    auto It = ExprValues.find(E);
    return It == ExprValues.end() ? InvalidId : It->second;
  }

  /// Number of outputs whose kind is pointer, function, aggregate or store
  /// — the paper's "alias-related outputs" (Figure 2).
  unsigned countAliasRelatedOutputs() const;

private:
  std::vector<Node> Nodes;
  std::vector<OutputInfo> Outputs;
  std::vector<InputInfo> Inputs;
  std::vector<FunctionInfo> Functions;
  std::map<const FuncDecl *, size_t> FunctionIndex;
  std::map<const Expr *, OutputId> ExprValues;
};

} // namespace vdga

#endif // VDGA_VDG_GRAPH_H
