//===- vdg/Printer.h - VDG text and dot dumps ------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Debug renderings of the VDG: a line-per-node text dump and a Graphviz
/// dot export (used by the vdg_dump example).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_VDG_PRINTER_H
#define VDGA_VDG_PRINTER_H

#include "vdg/Graph.h"

#include <string>

namespace vdga {

/// Renders every node as "n12 = lookup(o3, o7) -> o15:pointer [f]".
std::string printGraph(const Graph &G, const Program &P,
                       const PathTable &Paths);

/// Renders the graph in Graphviz dot syntax, clustered by function.
std::string printGraphDot(const Graph &G, const Program &P,
                          const PathTable &Paths);

} // namespace vdga

#endif // VDGA_VDG_PRINTER_H
