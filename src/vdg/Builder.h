//===- vdg/Builder.h - AST to VDG translation ------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates a checked MiniC Program into the VDG. The translation threads
/// an explicit store value through every statement; non-addressed scalar
/// locals flow along value edges instead (the paper's SSA-like store
/// scalarization), so the store stays sparse. Control joins and loop
/// headers become Merge nodes; breaks/continues merge their states into the
/// corresponding join. A bootstrap region (owner = null) runs global
/// initializers on the initial empty store and then calls main.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_VDG_BUILDER_H
#define VDGA_VDG_BUILDER_H

#include "memory/LocationTable.h"
#include "vdg/Graph.h"

#include <map>
#include <optional>
#include <vector>

namespace vdga {

/// Builds the whole-program VDG.
class Builder {
public:
  Builder(const Program &P, PathTable &Paths, const LocationTable &Locs,
          Graph &G)
      : P(P), Paths(Paths), Locs(Locs), G(G) {}

  /// Translates every defined function plus the bootstrap region.
  void build();

private:
  /// The dataflow state at one program point: the current store value and
  /// the current value of each scalarized local.
  struct Env {
    std::map<const VarDecl *, OutputId, DeclOrder> Vars;
    OutputId Store = InvalidId;
  };

  /// A translated lvalue: either a scalarized variable or a memory
  /// location described by a pointer-valued output.
  struct LValue {
    bool InMemory = false;
    const VarDecl *Var = nullptr; ///< Scalarized variable.
    OutputId Loc = InvalidId;     ///< Memory location (pointer value).
    /// True when Loc is rooted at a constant path (a direct access).
    bool StaticLoc = false;
  };

  struct LoopCtx {
    std::vector<Env> BreakEnvs;
    std::vector<Env> ContinueEnvs;
  };

  // Function-level driving.
  void buildBootstrap();
  void buildFunction(const FuncDecl *Fn);

  // Statements. Returns false when control cannot fall through.
  bool buildStmt(const Stmt *S);
  bool buildIf(const IfStmt *S);
  bool buildWhile(const WhileStmt *S);
  bool buildDoWhile(const DoWhileStmt *S);
  bool buildFor(const ForStmt *S);
  void buildLocalDecl(const VarDecl *Var);

  // Loop skeleton shared by while/do-while/for. See Builder.cpp.
  struct LoopMerges {
    std::map<const VarDecl *, NodeId, DeclOrder> VarMerges;
    NodeId StoreMerge = InvalidId;
  };
  LoopMerges openLoopHeader(SourceLoc Loc);
  void closeLoopBackedge(const LoopMerges &Merges, const Env &BackEnv);

  // Expressions. buildExpr records each expression's value output in the
  // graph (Graph::exprValue) and dispatches to buildExprImpl.
  OutputId buildExpr(const Expr *E);
  OutputId buildExprImpl(const Expr *E);
  LValue buildLValue(const Expr *E);
  OutputId loadLValue(const LValue &LV, const Type *Ty, const Expr *Origin);
  void storeLValue(const LValue &LV, OutputId Value, const Expr *Origin);
  OutputId addressOf(const LValue &LV);
  OutputId buildCall(const CallExpr *E);
  OutputId buildBuiltinCall(const CallExpr *E);
  OutputId buildAssign(const AssignExpr *E);
  OutputId buildUnary(const UnaryExpr *E);
  OutputId buildBinary(const BinaryExpr *E);

  // Node helpers.
  OutputId constScalar(ValueKind K, SourceLoc Loc);
  OutputId constPath(PathId Path, ValueKind K, SourceLoc Loc);
  OutputId offset(OutputId Base, const RecordType *Rec, unsigned FieldIdx,
                  SourceLoc Loc);
  OutputId offsetArray(OutputId Base, SourceLoc Loc);
  OutputId scalarOp(std::vector<OutputId> Operands, ValueKind K,
                    SourceLoc Loc);
  OutputId ptrArith(OutputId PtrVal, std::vector<OutputId> Scalars,
                    SourceLoc Loc);
  /// Merges values into one output. \p Kind overrides the output kind;
  /// pass Scalar to infer it as the join of the input kinds (a null
  /// literal flowing into a pointer merge must not demote the output).
  OutputId mergeValues(const std::vector<OutputId> &Vals, SourceLoc Loc,
                       ValueKind Kind = ValueKind::Scalar);
  Env mergeEnvs(std::vector<Env> Envs, SourceLoc Loc);
  OutputId undefValue(ValueKind K, SourceLoc Loc);

  /// Decayed rvalue of an array-typed lvalue: a pointer to the element
  /// summary.
  OutputId decayArray(const LValue &LV, SourceLoc Loc);

  const Program &P;
  PathTable &Paths;
  const LocationTable &Locs;
  Graph &G;

  const FuncDecl *CurFn = nullptr; ///< Null in the bootstrap region.
  Env Cur;
  bool Reachable = true;
  std::vector<LoopCtx> Loops;
  /// Collected (value, store) pairs at return sites of the current
  /// function; value is InvalidId for void returns.
  std::vector<std::pair<OutputId, OutputId>> Returns;
};

} // namespace vdga

#endif // VDGA_VDG_BUILDER_H
