//===- vdg/Graph.cpp ------------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vdg/Graph.h"

#include <cassert>

using namespace vdga;

const char *vdga::nodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::ConstScalar:
    return "const";
  case NodeKind::ConstPath:
    return "constpath";
  case NodeKind::Lookup:
    return "lookup";
  case NodeKind::Update:
    return "update";
  case NodeKind::Offset:
    return "offset";
  case NodeKind::Merge:
    return "merge";
  case NodeKind::PtrArith:
    return "ptrarith";
  case NodeKind::ScalarOp:
    return "scalarop";
  case NodeKind::Call:
    return "call";
  case NodeKind::Entry:
    return "entry";
  case NodeKind::Return:
    return "return";
  case NodeKind::InitStore:
    return "initstore";
  }
  return "?";
}

const char *vdga::valueKindName(ValueKind K) {
  switch (K) {
  case ValueKind::Scalar:
    return "scalar";
  case ValueKind::Pointer:
    return "pointer";
  case ValueKind::Function:
    return "function";
  case ValueKind::Aggregate:
    return "aggregate";
  case ValueKind::Store:
    return "store";
  }
  return "?";
}

ValueKind vdga::valueKindFor(const Type *Ty) {
  if (!Ty)
    return ValueKind::Scalar;
  if (const auto *Ptr = dyn_cast<PointerType>(Ty))
    return Ptr->pointee()->isFunction() ? ValueKind::Function
                                        : ValueKind::Pointer;
  if (Ty->isFunction())
    return ValueKind::Function;
  if (Ty->isAggregate())
    return ValueKind::Aggregate;
  return ValueKind::Scalar;
}

NodeId Graph::addNode(NodeKind Kind, const FuncDecl *Owner, SourceLoc Loc,
                      std::vector<ValueKind> OutputKinds) {
  auto Id = static_cast<NodeId>(Nodes.size());
  Node N;
  N.Kind = Kind;
  N.Owner = Owner;
  N.Loc = Loc;
  for (size_t I = 0; I < OutputKinds.size(); ++I) {
    OutputInfo O;
    O.Node = Id;
    O.Index = static_cast<uint16_t>(I);
    O.Kind = OutputKinds[I];
    N.Outputs.push_back(static_cast<OutputId>(Outputs.size()));
    Outputs.push_back(std::move(O));
  }
  Nodes.push_back(std::move(N));
  return Id;
}

InputId Graph::addInput(NodeId N, OutputId Producer) {
  auto Id = static_cast<InputId>(Inputs.size());
  InputInfo In;
  In.Node = N;
  In.Index = static_cast<uint16_t>(Nodes[N].Inputs.size());
  In.Producer = InvalidId;
  Inputs.push_back(In);
  Nodes[N].Inputs.push_back(Id);
  if (Producer != InvalidId)
    wireInput(Id, Producer);
  return Id;
}

void Graph::wireInput(InputId In, OutputId Producer) {
  assert(Inputs[In].Producer == InvalidId && "input wired twice");
  assert(Producer < Outputs.size() && "wiring to an unknown output");
  Inputs[In].Producer = Producer;
  Outputs[Producer].Consumers.push_back(In);
}

void Graph::registerFunction(FunctionInfo Info) {
  FunctionIndex.emplace(Info.Fn, Functions.size());
  Functions.push_back(Info);
}

const FunctionInfo *Graph::functionInfo(const FuncDecl *Fn) const {
  auto It = FunctionIndex.find(Fn);
  return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
}

unsigned Graph::countAliasRelatedOutputs() const {
  unsigned Count = 0;
  for (const OutputInfo &O : Outputs)
    if (O.Kind != ValueKind::Scalar)
      ++Count;
  return Count;
}
