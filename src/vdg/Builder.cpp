//===- vdg/Builder.cpp ----------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vdg/Builder.h"

#include <algorithm>
#include <cassert>

using namespace vdga;

//===----------------------------------------------------------------------===//
// Node helpers
//===----------------------------------------------------------------------===//

OutputId Builder::constScalar(ValueKind K, SourceLoc Loc) {
  NodeId N = G.addNode(NodeKind::ConstScalar, CurFn, Loc, {K});
  return G.outputOf(N);
}

OutputId Builder::undefValue(ValueKind K, SourceLoc Loc) {
  return constScalar(K, Loc);
}

OutputId Builder::constPath(PathId Path, ValueKind K, SourceLoc Loc) {
  NodeId N = G.addNode(NodeKind::ConstPath, CurFn, Loc, {K});
  G.node(N).Path = Path;
  return G.outputOf(N);
}

OutputId Builder::offset(OutputId Base, const RecordType *Rec,
                         unsigned FieldIdx, SourceLoc Loc) {
  NodeId N = G.addNode(NodeKind::Offset, CurFn, Loc, {ValueKind::Pointer});
  if (Rec->isUnion()) {
    // Union members share the union's path: the node is the identity.
    G.node(N).OpIsNoop = true;
  } else {
    G.node(N).Op = Paths.fieldOp(Rec, FieldIdx);
  }
  G.addInput(N, Base);
  return G.outputOf(N);
}

OutputId Builder::offsetArray(OutputId Base, SourceLoc Loc) {
  NodeId N = G.addNode(NodeKind::Offset, CurFn, Loc, {ValueKind::Pointer});
  G.node(N).Op = Paths.arrayOp();
  G.addInput(N, Base);
  return G.outputOf(N);
}

OutputId Builder::scalarOp(std::vector<OutputId> Operands, ValueKind K,
                           SourceLoc Loc) {
  NodeId N = G.addNode(NodeKind::ScalarOp, CurFn, Loc, {K});
  for (OutputId Op : Operands)
    G.addInput(N, Op);
  return G.outputOf(N);
}

OutputId Builder::ptrArith(OutputId PtrVal, std::vector<OutputId> Scalars,
                           SourceLoc Loc) {
  NodeId N = G.addNode(NodeKind::PtrArith, CurFn, Loc, {ValueKind::Pointer});
  G.addInput(N, PtrVal);
  for (OutputId Op : Scalars)
    G.addInput(N, Op);
  return G.outputOf(N);
}

OutputId Builder::mergeValues(const std::vector<OutputId> &Vals,
                              SourceLoc Loc, ValueKind Kind) {
  assert(!Vals.empty() && "merging no values");
  bool AllSame = std::all_of(Vals.begin(), Vals.end(),
                             [&](OutputId V) { return V == Vals[0]; });
  if (AllSame)
    return Vals[0];
  ValueKind K = Kind;
  if (K == ValueKind::Scalar)
    for (OutputId V : Vals)
      if (G.output(V).Kind != ValueKind::Scalar) {
        K = G.output(V).Kind;
        break;
      }
  NodeId N = G.addNode(NodeKind::Merge, CurFn, Loc, {K});
  for (OutputId V : Vals)
    G.addInput(N, V);
  return G.outputOf(N);
}

Builder::Env Builder::mergeEnvs(std::vector<Env> Envs, SourceLoc Loc) {
  assert(!Envs.empty() && "merging no environments");
  if (Envs.size() == 1)
    return Envs[0];
  Env Result;
  // Store.
  std::vector<OutputId> Stores;
  for (const Env &E : Envs)
    Stores.push_back(E.Store);
  Result.Store = mergeValues(Stores, Loc);
  // Variables present in every branch (a variable missing from some branch
  // went out of scope and is dead afterwards).
  for (const auto &[Var, Val] : Envs[0].Vars) {
    std::vector<OutputId> Vals{Val};
    bool Everywhere = true;
    for (size_t I = 1; I < Envs.size(); ++I) {
      auto It = Envs[I].Vars.find(Var);
      if (It == Envs[I].Vars.end()) {
        Everywhere = false;
        break;
      }
      Vals.push_back(It->second);
    }
    if (Everywhere)
      Result.Vars.emplace(Var,
                          mergeValues(Vals, Loc, valueKindFor(Var->type())));
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// LValues
//===----------------------------------------------------------------------===//

Builder::LValue Builder::buildLValue(const Expr *E) {
  LValue LV;
  switch (E->kind()) {
  case ExprKind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    const auto *Var = cast<VarDecl>(Ref->decl());
    if (!LocationTable::isStoreResident(Var)) {
      LV.Var = Var;
      return LV;
    }
    LV.InMemory = true;
    LV.StaticLoc = true;
    LV.Loc = constPath(Paths.basePath(Locs.varBase(Var)),
                       ValueKind::Pointer, E->loc());
    return LV;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    assert(U->op() == UnaryOp::Deref && "not an lvalue unary expression");
    LV.InMemory = true;
    LV.StaticLoc = false;
    LV.Loc = buildExpr(U->operand());
    return LV;
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    const Type *BaseTy = I->base()->type();
    if (BaseTy->isArray()) {
      LValue Base = buildLValue(I->base());
      assert(Base.InMemory && "arrays are always store-resident");
      buildExpr(I->index()); // Effects only.
      LV.InMemory = true;
      LV.StaticLoc = Base.StaticLoc;
      LV.Loc = offsetArray(Base.Loc, E->loc());
      return LV;
    }
    // Pointer subscripts: p[i] is *(p + i); the element summary is the
    // pointer's own referent.
    OutputId Ptr = buildExpr(I->base());
    buildExpr(I->index());
    LV.InMemory = true;
    LV.StaticLoc = false;
    LV.Loc = Ptr;
    return LV;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    OutputId Base;
    bool Static = false;
    if (M->isArrow()) {
      Base = buildExpr(M->base());
    } else {
      LValue BaseLV = buildLValue(M->base());
      assert(BaseLV.InMemory && "records are always store-resident");
      Base = BaseLV.Loc;
      Static = BaseLV.StaticLoc;
    }
    LV.InMemory = true;
    LV.StaticLoc = Static;
    LV.Loc = offset(Base, M->record(), M->fieldIndex(), E->loc());
    return LV;
  }
  default:
    assert(false && "expression is not an lvalue");
    LV.Var = nullptr;
    return LV;
  }
}

OutputId Builder::loadLValue(const LValue &LV, const Type *Ty,
                             const Expr *Origin) {
  if (!LV.InMemory) {
    auto It = Cur.Vars.find(LV.Var);
    if (It != Cur.Vars.end())
      return It->second;
    // Use before initialization: bind an undefined value.
    OutputId Undef = undefValue(valueKindFor(LV.Var->type()), LV.Var->loc());
    Cur.Vars.emplace(LV.Var, Undef);
    return Undef;
  }
  NodeId N = G.addNode(NodeKind::Lookup, CurFn,
                       Origin ? Origin->loc() : SourceLoc(),
                       {valueKindFor(Ty)});
  G.node(N).IndirectAccess = !LV.StaticLoc;
  G.node(N).Origin = Origin;
  G.addInput(N, LV.Loc);
  G.addInput(N, Cur.Store);
  return G.outputOf(N);
}

void Builder::storeLValue(const LValue &LV, OutputId Value,
                          const Expr *Origin) {
  if (!LV.InMemory) {
    Cur.Vars[LV.Var] = Value;
    return;
  }
  NodeId N = G.addNode(NodeKind::Update, CurFn,
                       Origin ? Origin->loc() : SourceLoc(),
                       {ValueKind::Store});
  G.node(N).IndirectAccess = !LV.StaticLoc;
  G.node(N).Origin = Origin;
  G.addInput(N, LV.Loc);
  G.addInput(N, Cur.Store);
  G.addInput(N, Value);
  Cur.Store = G.outputOf(N);
}

OutputId Builder::addressOf(const LValue &LV) {
  assert(LV.InMemory && "taking the address of a scalarized variable");
  return LV.Loc;
}

OutputId Builder::decayArray(const LValue &LV, SourceLoc Loc) {
  assert(LV.InMemory && "arrays are always store-resident");
  return offsetArray(LV.Loc, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

OutputId Builder::buildExpr(const Expr *E) {
  OutputId V = buildExprImpl(E);
  if (V != InvalidId)
    G.noteExprValue(E, V);
  return V;
}

OutputId Builder::buildExprImpl(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLiteral:
  case ExprKind::FloatLiteral:
  case ExprKind::SizeOf:
    return constScalar(valueKindFor(E->type()), E->loc());
  case ExprKind::StringLiteral: {
    const auto *S = cast<StringLiteralExpr>(E);
    PathId Path = Paths.basePath(Locs.stringBase(S->literalId()));
    return constPath(Path, ValueKind::Pointer, E->loc());
  }
  case ExprKind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    if (const auto *Fn = dyn_cast<FuncDecl>(Ref->decl()))
      return constPath(Paths.basePath(Locs.functionBase(Fn)),
                       ValueKind::Function, E->loc());
    const auto *Var = cast<VarDecl>(Ref->decl());
    if (Var->type()->isArray()) {
      // Array-to-pointer decay: constant element-summary path.
      PathId Elem = Paths.appendArray(Paths.basePath(Locs.varBase(Var)));
      return constPath(Elem, ValueKind::Pointer, E->loc());
    }
    LValue LV = buildLValue(E);
    return loadLValue(LV, Var->type(), E);
  }
  case ExprKind::Unary:
    return buildUnary(cast<UnaryExpr>(E));
  case ExprKind::Binary:
    return buildBinary(cast<BinaryExpr>(E));
  case ExprKind::Assign:
    return buildAssign(cast<AssignExpr>(E));
  case ExprKind::Call:
    return buildCall(cast<CallExpr>(E));
  case ExprKind::Index:
  case ExprKind::Member: {
    LValue LV = buildLValue(E);
    if (E->type()->isArray())
      return decayArray(LV, E->loc());
    return loadLValue(LV, E->type(), E);
  }
  case ExprKind::Cast: {
    // Pointer-to-pointer and arithmetic casts are transparent to the
    // analysis; reuse the operand's value.
    const auto *C = cast<CastExpr>(E);
    return buildExpr(C->operand());
  }
  case ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    buildExpr(C->cond());
    Env Base = Cur;
    OutputId ThenV = buildExpr(C->thenExpr());
    Env ThenEnv = Cur;
    Cur = Base;
    OutputId ElseV = buildExpr(C->elseExpr());
    Env ElseEnv = Cur;
    Cur = mergeEnvs({ThenEnv, ElseEnv}, E->loc());
    return mergeValues({ThenV, ElseV}, E->loc(), valueKindFor(E->type()));
  }
  }
  assert(false && "unhandled expression kind");
  return InvalidId;
}

OutputId Builder::buildUnary(const UnaryExpr *E) {
  switch (E->op()) {
  case UnaryOp::Neg:
  case UnaryOp::Not:
  case UnaryOp::BitNot:
    return scalarOp({buildExpr(E->operand())}, valueKindFor(E->type()),
                    E->loc());
  case UnaryOp::AddrOf: {
    const Expr *Operand = E->operand();
    // &function is the function value itself.
    if (const auto *Ref = dyn_cast<DeclRefExpr>(Operand))
      if (const auto *Fn = dyn_cast<FuncDecl>(Ref->decl()))
        return constPath(Paths.basePath(Locs.functionBase(Fn)),
                         ValueKind::Function, E->loc());
    LValue LV = buildLValue(Operand);
    return addressOf(LV);
  }
  case UnaryOp::Deref: {
    // Dereferencing a function pointer yields the function value itself.
    const Type *OpTy = E->operand()->type();
    if (const auto *Ptr = dyn_cast<PointerType>(OpTy))
      if (Ptr->pointee()->isFunction())
        return buildExpr(E->operand());
    LValue LV = buildLValue(E);
    if (E->type()->isArray())
      return decayArray(LV, E->loc());
    return loadLValue(LV, E->type(), E);
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    LValue LV = buildLValue(E->operand());
    OutputId Old = loadLValue(LV, E->operand()->type(), E->operand());
    OutputId One = constScalar(ValueKind::Scalar, E->loc());
    OutputId New;
    if (E->operand()->type()->isPointer())
      New = ptrArith(Old, {One}, E->loc());
    else
      New = scalarOp({Old, One}, valueKindFor(E->type()), E->loc());
    storeLValue(LV, New, E);
    bool IsPre = E->op() == UnaryOp::PreInc || E->op() == UnaryOp::PreDec;
    return IsPre ? New : Old;
  }
  }
  assert(false && "unhandled unary operator");
  return InvalidId;
}

OutputId Builder::buildBinary(const BinaryExpr *E) {
  if (E->op() == BinaryOp::LogAnd || E->op() == BinaryOp::LogOr) {
    // Short-circuit evaluation: the RHS's effects are conditional.
    OutputId L = buildExpr(E->lhs());
    Env Base = Cur;
    OutputId R = buildExpr(E->rhs());
    Env RhsEnv = Cur;
    Cur = mergeEnvs({Base, RhsEnv}, E->loc());
    return scalarOp({L, R}, ValueKind::Scalar, E->loc());
  }

  const Type *LT = E->lhs()->type();
  const Type *RT = E->rhs()->type();
  bool LPtr = LT->isPointer() || LT->isArray();
  bool RPtr = RT->isPointer() || RT->isArray();

  if (E->op() == BinaryOp::Add || E->op() == BinaryOp::Sub) {
    if (LPtr && !RPtr) {
      OutputId L = buildExpr(E->lhs());
      OutputId R = buildExpr(E->rhs());
      return ptrArith(L, {R}, E->loc());
    }
    if (!LPtr && RPtr && E->op() == BinaryOp::Add) {
      OutputId L = buildExpr(E->lhs());
      OutputId R = buildExpr(E->rhs());
      return ptrArith(R, {L}, E->loc());
    }
  }
  OutputId L = buildExpr(E->lhs());
  OutputId R = buildExpr(E->rhs());
  return scalarOp({L, R}, valueKindFor(E->type()), E->loc());
}

OutputId Builder::buildAssign(const AssignExpr *E) {
  if (E->op() == AssignOp::Assign) {
    OutputId V = buildExpr(E->value());
    LValue LV = buildLValue(E->target());
    storeLValue(LV, V, E);
    return V;
  }
  // Compound assignment: read-modify-write.
  OutputId V = buildExpr(E->value());
  LValue LV = buildLValue(E->target());
  OutputId Old = loadLValue(LV, E->target()->type(), E->target());
  OutputId New;
  if (E->target()->type()->isPointer())
    New = ptrArith(Old, {V}, E->loc());
  else
    New = scalarOp({Old, V}, valueKindFor(E->type()), E->loc());
  storeLValue(LV, New, E);
  return New;
}

OutputId Builder::buildBuiltinCall(const CallExpr *E) {
  std::vector<OutputId> Args;
  Args.reserve(E->args().size());
  for (const Expr *Arg : E->args())
    Args.push_back(buildExpr(Arg));

  switch (E->builtin()) {
  case BuiltinKind::Malloc:
  case BuiltinKind::Calloc: {
    PathId Heap = Paths.basePath(Locs.heapBase(E->allocSiteId()));
    return constPath(Heap, ValueKind::Pointer, E->loc());
  }
  case BuiltinKind::Strcpy:
  case BuiltinKind::Strcat:
  case BuiltinKind::Memset:
    // Returns its first argument; writes only character data, so it is the
    // identity on points-to facts (the paper's library model).
    return ptrArith(Args[0], {}, E->loc());
  default:
    // All other builtins produce a fresh scalar and do not affect the
    // store's points-to contents.
    return scalarOp(std::move(Args), valueKindFor(E->type()), E->loc());
  }
}

OutputId Builder::buildCall(const CallExpr *E) {
  if (E->builtin() != BuiltinKind::None)
    return buildBuiltinCall(E);

  // Callee value: a constant function path for direct calls, a computed
  // function value otherwise.
  OutputId FnVal;
  if (const FuncDecl *Direct = E->directCallee())
    FnVal = constPath(Paths.basePath(Locs.functionBase(Direct)),
                      ValueKind::Function, E->loc());
  else
    FnVal = buildExpr(E->callee());

  std::vector<OutputId> Args;
  Args.reserve(E->args().size());
  for (const Expr *Arg : E->args())
    Args.push_back(buildExpr(Arg));

  bool HasResult = !E->type()->isVoid();
  std::vector<ValueKind> Outs;
  if (HasResult)
    Outs.push_back(valueKindFor(E->type()));
  Outs.push_back(ValueKind::Store);

  NodeId N = G.addNode(NodeKind::Call, CurFn, E->loc(), std::move(Outs));
  G.node(N).HasResult = HasResult;
  G.addInput(N, FnVal);
  for (OutputId A : Args)
    G.addInput(N, A);
  G.addInput(N, Cur.Store);

  Cur.Store = G.outputOf(N, HasResult ? 1 : 0);
  return HasResult ? G.outputOf(N, 0)
                   : constScalar(ValueKind::Scalar, E->loc());
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Builder::buildLocalDecl(const VarDecl *Var) {
  if (!LocationTable::isStoreResident(Var)) {
    OutputId V = Var->init() ? buildExpr(Var->init())
                             : undefValue(valueKindFor(Var->type()),
                                          Var->loc());
    Cur.Vars[Var] = V;
    return;
  }
  if (const Expr *Init = Var->init()) {
    OutputId V = buildExpr(Init);
    LValue LV;
    LV.InMemory = true;
    LV.StaticLoc = true;
    LV.Loc = constPath(Paths.basePath(Locs.varBase(Var)),
                       ValueKind::Pointer, Var->loc());
    storeLValue(LV, V, Init);
  }
}

bool Builder::buildStmt(const Stmt *S) {
  if (!S)
    return true;
  switch (S->kind()) {
  case StmtKind::Compound: {
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      if (!buildStmt(Child))
        return false;
    return true;
  }
  case StmtKind::Expr:
    buildExpr(cast<ExprStmt>(S)->expr());
    return true;
  case StmtKind::Decl:
    buildLocalDecl(cast<DeclStmt>(S)->var());
    return true;
  case StmtKind::If:
    return buildIf(cast<IfStmt>(S));
  case StmtKind::While:
    return buildWhile(cast<WhileStmt>(S));
  case StmtKind::DoWhile:
    return buildDoWhile(cast<DoWhileStmt>(S));
  case StmtKind::For:
    return buildFor(cast<ForStmt>(S));
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    OutputId V = InvalidId;
    if (R->value())
      V = buildExpr(R->value());
    Returns.emplace_back(V, Cur.Store);
    return false;
  }
  case StmtKind::Break: {
    assert(!Loops.empty() && "break outside of a loop");
    Loops.back().BreakEnvs.push_back(Cur);
    return false;
  }
  case StmtKind::Continue: {
    assert(!Loops.empty() && "continue outside of a loop");
    Loops.back().ContinueEnvs.push_back(Cur);
    return false;
  }
  }
  return true;
}

bool Builder::buildIf(const IfStmt *S) {
  buildExpr(S->cond());
  Env Base = Cur;

  bool ThenFalls = buildStmt(S->thenStmt());
  Env ThenEnv = Cur;

  Cur = Base;
  bool ElseFalls = true;
  Env ElseEnv = Base;
  if (S->elseStmt()) {
    ElseFalls = buildStmt(S->elseStmt());
    ElseEnv = Cur;
  }

  std::vector<Env> Falls;
  if (ThenFalls)
    Falls.push_back(ThenEnv);
  if (ElseFalls)
    Falls.push_back(ElseEnv);
  if (Falls.empty())
    return false;
  Cur = mergeEnvs(std::move(Falls), S->loc());
  return true;
}

Builder::LoopMerges Builder::openLoopHeader(SourceLoc Loc) {
  LoopMerges Merges;
  // One merge per live scalarized variable plus the store; the incoming
  // value is the first input, back edges are wired when the loop closes.
  {
    NodeId N = G.addNode(NodeKind::Merge, CurFn, Loc, {ValueKind::Store});
    G.addInput(N, Cur.Store);
    Merges.StoreMerge = N;
    Cur.Store = G.outputOf(N);
  }
  for (auto &[Var, Val] : Cur.Vars) {
    NodeId N = G.addNode(NodeKind::Merge, CurFn, Loc,
                         {valueKindFor(Var->type())});
    G.addInput(N, Val);
    Merges.VarMerges.emplace(Var, N);
    Val = G.outputOf(N);
  }
  return Merges;
}

void Builder::closeLoopBackedge(const LoopMerges &Merges, const Env &BackEnv) {
  G.addInput(Merges.StoreMerge, BackEnv.Store);
  for (const auto &[Var, MergeNode] : Merges.VarMerges) {
    auto It = BackEnv.Vars.find(Var);
    if (It != BackEnv.Vars.end())
      G.addInput(MergeNode, It->second);
  }
}

bool Builder::buildWhile(const WhileStmt *S) {
  LoopMerges Merges = openLoopHeader(S->loc());
  buildExpr(S->cond());
  Env ExitEnv = Cur; // Loop may exit right after testing the condition.

  Loops.emplace_back();
  bool BodyFalls = buildStmt(S->body());
  LoopCtx Ctx = std::move(Loops.back());
  Loops.pop_back();

  // Back edge: normal body end plus continues.
  std::vector<Env> BackEnvs = std::move(Ctx.ContinueEnvs);
  if (BodyFalls)
    BackEnvs.push_back(Cur);
  if (!BackEnvs.empty())
    closeLoopBackedge(Merges, mergeEnvs(std::move(BackEnvs), S->loc()));

  // Exit: the condition-false path plus breaks.
  std::vector<Env> Exits = std::move(Ctx.BreakEnvs);
  Exits.push_back(ExitEnv);
  Cur = mergeEnvs(std::move(Exits), S->loc());
  return true;
}

bool Builder::buildDoWhile(const DoWhileStmt *S) {
  LoopMerges Merges = openLoopHeader(S->loc());

  Loops.emplace_back();
  bool BodyFalls = buildStmt(S->body());
  LoopCtx Ctx = std::move(Loops.back());
  Loops.pop_back();

  // The condition runs after the body (and after continues).
  std::vector<Env> CondEnvs = std::move(Ctx.ContinueEnvs);
  if (BodyFalls)
    CondEnvs.push_back(Cur);

  bool CondReachable = !CondEnvs.empty();
  Env AfterCond;
  if (CondReachable) {
    Cur = mergeEnvs(std::move(CondEnvs), S->loc());
    buildExpr(S->cond());
    AfterCond = Cur;
    closeLoopBackedge(Merges, AfterCond);
  }

  std::vector<Env> Exits = std::move(Ctx.BreakEnvs);
  if (CondReachable)
    Exits.push_back(AfterCond);
  if (Exits.empty())
    return false;
  Cur = mergeEnvs(std::move(Exits), S->loc());
  return true;
}

bool Builder::buildFor(const ForStmt *S) {
  if (S->init())
    buildStmt(S->init());
  LoopMerges Merges = openLoopHeader(S->loc());
  if (S->cond())
    buildExpr(S->cond());
  Env ExitEnv = Cur;

  Loops.emplace_back();
  bool BodyFalls = buildStmt(S->body());
  LoopCtx Ctx = std::move(Loops.back());
  Loops.pop_back();

  // Continues re-enter before the step expression.
  std::vector<Env> StepEnvs = std::move(Ctx.ContinueEnvs);
  if (BodyFalls)
    StepEnvs.push_back(Cur);
  if (!StepEnvs.empty()) {
    Cur = mergeEnvs(std::move(StepEnvs), S->loc());
    if (S->step())
      buildExpr(S->step());
    closeLoopBackedge(Merges, Cur);
  }

  std::vector<Env> Exits = std::move(Ctx.BreakEnvs);
  if (S->cond())
    Exits.push_back(ExitEnv);
  if (Exits.empty())
    return false; // `for (;;)` with no break never falls through.
  Cur = mergeEnvs(std::move(Exits), S->loc());
  return true;
}

//===----------------------------------------------------------------------===//
// Functions and bootstrap
//===----------------------------------------------------------------------===//

void Builder::buildFunction(const FuncDecl *Fn) {
  CurFn = Fn;
  Cur = Env();
  Returns.clear();
  Reachable = true;

  // Entry node: one output per parameter plus the store formal.
  std::vector<ValueKind> Outs;
  for (const VarDecl *Param : Fn->params())
    Outs.push_back(valueKindFor(Param->type()));
  Outs.push_back(ValueKind::Store);
  NodeId EntryN = G.addNode(NodeKind::Entry, Fn, Fn->loc(), std::move(Outs));
  Cur.Store = G.outputOf(EntryN, Fn->params().size());

  // Bind parameters: scalarized ones live in the environment; resident
  // ones are spilled into the store at entry.
  for (size_t I = 0; I < Fn->params().size(); ++I) {
    const VarDecl *Param = Fn->params()[I];
    OutputId Incoming = G.outputOf(EntryN, I);
    if (!LocationTable::isStoreResident(Param)) {
      Cur.Vars.emplace(Param, Incoming);
      continue;
    }
    LValue LV;
    LV.InMemory = true;
    LV.StaticLoc = true;
    LV.Loc = constPath(Paths.basePath(Locs.varBase(Param)),
                       ValueKind::Pointer, Param->loc());
    storeLValue(LV, Incoming, nullptr);
  }

  bool Falls = buildStmt(Fn->body());
  bool HasValue = !Fn->functionType()->returnType()->isVoid();
  if (Falls) {
    OutputId V = InvalidId;
    if (HasValue)
      V = undefValue(valueKindFor(Fn->functionType()->returnType()),
                     Fn->loc());
    Returns.emplace_back(V, Cur.Store);
  }

  NodeId ReturnN = G.addNode(NodeKind::Return, Fn, Fn->loc(), {});
  G.node(ReturnN).HasValue = HasValue;
  if (!Returns.empty()) {
    if (HasValue) {
      std::vector<OutputId> Vals;
      for (auto &[V, Store] : Returns)
        Vals.push_back(V != InvalidId
                           ? V
                           : undefValue(valueKindFor(
                                            Fn->functionType()->returnType()),
                                        Fn->loc()));
      G.addInput(ReturnN,
                 mergeValues(Vals, Fn->loc(),
                             valueKindFor(
                                 Fn->functionType()->returnType())));
    }
    std::vector<OutputId> Stores;
    for (auto &[V, Store] : Returns)
      Stores.push_back(Store);
    G.addInput(ReturnN, mergeValues(Stores, Fn->loc()));
  } else {
    // The function never returns (infinite loop): give the return node
    // empty merge inputs so its arity stays uniform.
    if (HasValue) {
      NodeId EmptyV = G.addNode(NodeKind::Merge, Fn, Fn->loc(),
                                {valueKindFor(
                                    Fn->functionType()->returnType())});
      G.addInput(ReturnN, G.outputOf(EmptyV));
    }
    NodeId EmptyS =
        G.addNode(NodeKind::Merge, Fn, Fn->loc(), {ValueKind::Store});
    G.addInput(ReturnN, G.outputOf(EmptyS));
  }

  FunctionInfo Info;
  Info.Fn = Fn;
  Info.EntryNode = EntryN;
  Info.ReturnNode = ReturnN;
  Info.NumParams = static_cast<unsigned>(Fn->params().size());
  G.registerFunction(Info);
}

void Builder::buildBootstrap() {
  CurFn = nullptr;
  Cur = Env();
  NodeId Init = G.addNode(NodeKind::InitStore, nullptr, SourceLoc(),
                          {ValueKind::Store});
  Cur.Store = G.outputOf(Init);

  // Global initializers, in declaration order.
  for (const VarDecl *Global : P.Globals) {
    if (const Expr *InitE = Global->init()) {
      OutputId V = buildExpr(InitE);
      LValue LV;
      LV.InMemory = true;
      LV.StaticLoc = true;
      LV.Loc = constPath(Paths.basePath(Locs.varBase(Global)),
                         ValueKind::Pointer, Global->loc());
      storeLValue(LV, V, InitE);
    }
    if (!Global->initList().empty()) {
      // Array element initializers all write the element-summary path.
      PathId Elem =
          Paths.appendArray(Paths.basePath(Locs.varBase(Global)));
      for (const Expr *ElemE : Global->initList()) {
        OutputId V = buildExpr(ElemE);
        LValue LV;
        LV.InMemory = true;
        LV.StaticLoc = true;
        LV.Loc = constPath(Elem, ValueKind::Pointer, Global->loc());
        storeLValue(LV, V, ElemE);
      }
    }
  }

  // Call main on the initialized store.
  const FuncDecl *Main = P.findFunction("main");
  if (!Main || !Main->isDefined())
    return;
  OutputId FnVal = constPath(Paths.basePath(Locs.functionBase(Main)),
                             ValueKind::Function, Main->loc());
  bool HasResult = !Main->functionType()->returnType()->isVoid();
  std::vector<ValueKind> Outs;
  if (HasResult)
    Outs.push_back(valueKindFor(Main->functionType()->returnType()));
  Outs.push_back(ValueKind::Store);
  NodeId CallN =
      G.addNode(NodeKind::Call, nullptr, Main->loc(), std::move(Outs));
  G.node(CallN).HasResult = HasResult;
  G.addInput(CallN, FnVal);
  for (const VarDecl *Param : Main->params())
    G.addInput(CallN, undefValue(valueKindFor(Param->type()), Main->loc()));
  G.addInput(CallN, Cur.Store);
}

void Builder::build() {
  buildBootstrap();
  for (const FuncDecl *Fn : P.Functions)
    if (Fn->isDefined())
      buildFunction(Fn);
}
