//===- lint/Engine.cpp - The runLint entry point --------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles everything the passes consume — the requested alias tier via
/// the governance ladder, the per-function statement CFGs, the client
/// analyses — and runs the pass battery. The engine owns the tier policy:
/// a degraded rung self-skips with an explanatory Note rather than linting
/// against facts coarser than asked for (a "cs" report computed from CI
/// facts would silently misstate the precision matrix).
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "corpus/Corpus.h"
#include "driver/Pipeline.h"
#include "lint/Passes.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <future>
#include <optional>

using namespace vdga;

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Appends the engine-level Note explaining a tier self-skip.
void noteDegraded(LintReport &R, const std::string &Why) {
  LintFinding F;
  F.Pass = "lint";
  F.Severity = FindingSeverity::Note;
  F.Message = Why;
  R.Findings.push_back(std::move(F));
  R.Degraded = true;
}

/// Resolves the passes' pending provenance requests against the complete
/// CI result (the only solve that records derivations; sound for the CS
/// tier too by containment).
void attachProvenance(LintReport &R, const Graph &G, const PointsToResult &CI,
                      const PairTable &PT, const PathTable &Paths,
                      const StringInterner &Names) {
  for (LintFinding &F : R.Findings) {
    if (F.ProvOut == InvalidId)
      continue;
    for (PairId Pair : CI.pairs(F.ProvOut)) {
      PointsToPair PP = PT.pair(Pair);
      if (PP.Path != PathId::EmptyOffset || PP.Referent != F.ProvReferent)
        continue;
      F.Provenance =
          renderDerivationChain(G, CI, PT, Paths, Names, F.ProvOut, Pair);
      break;
    }
  }
}

} // namespace

LintReport vdga::runLint(AnalyzedProgram &AP, const LintOptions &Opts) {
  LintReport R;
  R.Tier = lintTierName(Opts.Tier);

  const Program &P = AP.program();
  const Graph &G = AP.G;

  // --- Load the requested alias tier. -----------------------------------
  auto SolveStart = std::chrono::steady_clock::now();
  std::optional<GovernedAnalysis> GA;
  std::optional<SteensgaardResult> SteensR;
  // The facts the oracle and the clients consume (CI, or CS with its
  // assumption sets stripped — storage for the latter lives here).
  const PointsToResult *Facts = nullptr;
  std::optional<PointsToResult> StrippedCS;

  if (Opts.Tier == LintTier::Steensgaard) {
    SteensR = AP.runSteensgaard(Opts.Policy.solverBudget());
    if (!SteensR->complete() || SteensR->IsTop) {
      noteDegraded(R, "lint self-skipped: Steensgaard solve exhausted its "
                      "budget (only the conservative top result exists)");
      return R;
    }
  } else {
    bool WantCS = Opts.Tier == LintTier::ContextSens;
    GA = AP.runGoverned(Opts.Policy, WantCS, {}, WorklistOrder::FIFO,
                        Opts.RecordProvenance);
    if (WantCS) {
      const ContextSensResult *CS = GA->completeCS();
      if (!CS) {
        noteDegraded(R, "lint self-skipped: context-sensitive tier degraded "
                        "(" +
                            GA->Degradation.summary() + ")");
        return R;
      }
      StrippedCS = CS->stripAssumptions();
      Facts = &*StrippedCS;
    } else {
      Facts = GA->completeCI();
      if (!Facts) {
        noteDegraded(R, "lint self-skipped: context-insensitive tier "
                        "degraded (" +
                            GA->Degradation.summary() + ")");
        return R;
      }
    }
  }
  R.PassMillis["solve"] = millisSince(SolveStart);

  // --- Assemble the shared pass inputs. ---------------------------------
  auto BuildStart = std::chrono::steady_clock::now();
  OriginSites Sites(G);
  std::set<const FuncDecl *> MayFreeFns =
      computeMayFreeFunctions(P, AP.callGraph());

  std::vector<LintCFG> CFGs;
  for (const FuncDecl *Fn : P.Functions)
    if (Fn->isDefined())
      CFGs.push_back(LintCFG::build(Fn, Sites, MayFreeFns));

  std::vector<LintEvent> BootstrapEvents;
  for (const VarDecl *GV : P.Globals) {
    if (GV->init())
      LintCFG::linearizeInto(BootstrapEvents, GV->init(), Sites, MayFreeFns);
    for (const Expr *E : GV->initList())
      LintCFG::linearizeInto(BootstrapEvents, E, Sites, MayFreeFns);
  }

  // The oracle: referent queries against the tier, reachability from the
  // matching call graph.
  std::optional<AliasOracle> Oracle;
  if (Facts) {
    // The callee index always comes from the complete CI result: the CS
    // tier requires one (it prunes against CI), and stripAssumptions
    // drops the index, so CI's over-approximation serves both.
    const PointsToResult *CalleeSource = GA->completeCI();
    Oracle.emplace(G, AP.Paths, AP.PT, *Facts, *CalleeSource);
  } else {
    Oracle.emplace(G, AP.Paths, AP.PT, *SteensR, AP.callGraph(), P);
  }

  // Clients need pair-level facts; the Steensgaard tier runs without them
  // (the dead-store pass then keeps every escaped local live at calls).
  std::optional<DefUseInfo> DU;
  std::optional<ModRefInfo> MR;
  if (Facts) {
    DU = computeDefUse(G, *Facts, AP.PT, AP.Paths);
    MR = computeModRef(G, *Facts, AP.PT, AP.Paths);
  }
  R.PassMillis["build"] = millisSince(BuildStart);

  LintPassContext Ctx{P,
                      G,
                      AP.Paths,
                      AP.PT,
                      AP.locations(),
                      *Oracle,
                      Sites,
                      CFGs,
                      BootstrapEvents,
                      DU ? &*DU : nullptr,
                      MR ? &*MR : nullptr,
                      R.Findings};

  // --- The pass battery. -------------------------------------------------
  auto Timed = [&R, &Ctx](const char *Name, void (*Pass)(LintPassContext &)) {
    auto Start = std::chrono::steady_clock::now();
    Pass(Ctx);
    R.PassMillis[Name] = millisSince(Start);
  };
  Timed("heap", runHeapPass);
  Timed("null", runNullPass);
  Timed("dead-store", runDeadStorePass);
  Timed("leak", runLeakPass);

  if (Opts.RecordProvenance && GA && GA->completeCI())
    attachProvenance(R, G, *GA->completeCI(), AP.PT, AP.Paths, P.Names);

  // The oracle hook: one concrete run refutes wrong must claims. The
  // trace of a truncated or failed run is still valid evidence, so the
  // result status is deliberately ignored.
  if (Opts.RefuteWithInterpreter &&
      R.countConfidence(LintConfidence::Must) != 0) {
    auto InterpStart = std::chrono::steady_clock::now();
    RunResult RR = AP.interpret(Opts.InterpreterInput);
    refuteLintFindings(R, RR.Trace);
    R.PassMillis["interp"] = millisSince(InterpStart);
  }

  R.sortFindings();
  applyLintBaseline(R, Opts.BaselineText);
  return R;
}

std::vector<ProgramLintReport> vdga::lintCorpus(const LintOptions &Opts,
                                                unsigned Jobs) {
  const std::vector<CorpusProgram> &Programs = corpus();
  if (Jobs == 0)
    Jobs = ThreadPool::defaultJobs();
  if (Jobs > Programs.size())
    Jobs = static_cast<unsigned>(Programs.size());

  ThreadPool Pool(Jobs);
  std::vector<std::future<ProgramLintReport>> Futures;
  Futures.reserve(Programs.size());
  for (const CorpusProgram &P : Programs)
    Futures.push_back(Pool.submit([&P, &Opts] {
      ProgramLintReport R;
      R.Name = P.Name;
      R.Report.Tier = lintTierName(Opts.Tier);
      std::string Error;
      auto AP = AnalyzedProgram::create(P.Source, &Error);
      if (!AP) {
        LintFinding F;
        F.Pass = "frontend";
        F.Severity = FindingSeverity::Error;
        F.Message = "frontend error: " + Error;
        R.Report.Findings.push_back(std::move(F));
        return R;
      }
      R.Report = runLint(*AP, Opts);
      return R;
    }));

  std::vector<ProgramLintReport> Reports;
  Reports.reserve(Programs.size());
  for (std::future<ProgramLintReport> &F : Futures)
    Reports.push_back(F.get());
  return Reports;
}
