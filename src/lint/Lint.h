//===- lint/Lint.h - Alias-powered memory-safety lint engine ----*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint engine's public surface: the precision-tier selector, the
/// structured `LintFinding`/`LintReport` types with their `vdga-lint-v1`
/// renderings, the suppression-baseline mechanism, and the `runLint`
/// entry point.
///
/// The engine is the project's answer to Ruf's client-level methodology
/// at scale: a flow-sensitive intraprocedural dataflow framework
/// (lint/Dataflow.h) over per-function statement CFGs (lint/CFG.h) whose
/// transfer functions consume whichever alias tier the governance ladder
/// produced — Steensgaard, context-insensitive, or context-sensitive —
/// through one uniform facade (lint/AliasOracle.h). Every pass therefore
/// runs identically against all three tiers, and the per-tier finding
/// counts measure what extra precision buys a real client.
///
/// Findings carry a confidence: `may` findings are advisory; `must`
/// findings claim every execution reaching the site misbehaves, and the
/// interpreter trace can *refute* them (`refuteLintFindings`) — a refuted
/// must finding is promoted to a hard Error, which the corpus gate, the
/// fuzz stack and `bench_diff.py` all treat as an analysis bug.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_LINT_LINT_H
#define VDGA_LINT_LINT_H

#include "checker/Checker.h"
#include "driver/Governance.h"
#include "support/SourceLoc.h"

#include <map>
#include <string>
#include <vector>

namespace vdga {

class AnalyzedProgram;
struct AccessTrace;

/// Which alias tier the passes consume. Mirrors the governance ladder's
/// complete rungs (Top never serves lint: it would make every referent
/// set universal and every finding noise).
enum class LintTier : uint8_t { Steensgaard, ContextInsens, ContextSens };

const char *lintTierName(LintTier T);
bool parseLintTier(std::string_view Name, LintTier &Out);

/// How strong a finding's claim is. `Must` means "every execution
/// reaching this site misbehaves" — exactly the claim one interpreter
/// run can refute by executing the site successfully.
enum class LintConfidence : uint8_t { May, Must };

const char *lintConfidenceName(LintConfidence C);

/// One structured finding from a lint pass.
struct LintFinding {
  /// Emitting pass: "use-after-free", "double-free", "memory-leak",
  /// "dead-store", "null-deref", or "lint" for engine-level notes.
  std::string Pass;
  LintConfidence Confidence = LintConfidence::May;
  /// Warning normally; Error when a must finding was refuted by the
  /// interpreter trace; Note for engine-level skips.
  FindingSeverity Severity = FindingSeverity::Warning;
  SourceLoc Loc;
  std::string Message;
  /// Rendered access path involved, when applicable.
  std::string Path;
  /// Enclosing function name ("" for program-wide findings).
  std::string Function;
  /// Rendered CI derivation chain when provenance was recorded.
  std::vector<std::string> Provenance;

  /// The source site, for interpreter refutation. Not serialized.
  const Expr *Site = nullptr;
  /// Pending provenance request resolved by the engine after the passes
  /// run: the (output, referent) whose derivation chain to attach.
  OutputId ProvOut = InvalidId;
  PathId ProvReferent = PathId::EmptyOffset;

  /// The stable suppression-baseline key (no message text, so rewording
  /// a diagnostic does not invalidate baselines).
  std::string baselineKey() const;
};

/// Everything one linted program produced. Renderings contain no timings
/// and are bit-identical across job counts, worklist schedules and
/// solver strategies (asserted by the determinism tests).
struct LintReport {
  std::vector<LintFinding> Findings;
  /// The tier the passes consumed ("steens", "ci", "cs").
  std::string Tier;
  /// True when the requested tier's solve degraded under budget: the
  /// engine then self-skips (a Note explains why) rather than linting
  /// against facts of a different precision than asked for.
  bool Degraded = false;
  /// Findings dropped by the suppression baseline.
  unsigned SuppressedCount = 0;
  /// Wall-clock per pass, for the bench artifact only — never rendered
  /// into the report itself.
  std::map<std::string, double> PassMillis;

  unsigned countPass(const std::string &Pass) const;
  unsigned countConfidence(LintConfidence C) const;
  unsigned errorCount() const;
  bool clean() const { return errorCount() == 0; }

  /// Orders findings by (line, column, pass, confidence, message, path)
  /// so reports are bit-identical across schedules and job counts.
  void sortFindings();

  std::string renderText() const;
  /// One JSON object, schema "vdga-lint-v1".
  std::string renderJson() const;
};

/// Options threaded through `runLint`.
struct LintOptions {
  LintTier Tier = LintTier::ContextInsens;
  /// Budgets for the tier's solves; a rung trip degrades the report.
  GovernancePolicy Policy;
  /// Record CI derivations and attach rendered chains to findings.
  bool RecordProvenance = false;
  /// Suppression baseline file contents ("" = none): one baselineKey()
  /// per line, '#' comments and blank lines ignored.
  std::string BaselineText;
  /// The oracle hook: when must findings exist, run the interpreter once
  /// on InterpreterInput and refute them against the access trace
  /// (refuted musts become hard Errors).
  bool RefuteWithInterpreter = false;
  std::string InterpreterInput;
};

/// Runs the five lint passes against \p Opts.Tier's alias facts.
LintReport runLint(AnalyzedProgram &AP, const LintOptions &Opts);

/// Cross-checks must-confidence findings against one concrete run's
/// access trace: a site the trace proves executed successfully refutes
/// the must claim, promoting the finding to Error. The trace prefix of a
/// truncated or failed run is valid evidence (the interpreter records an
/// access only after it succeeded). Returns the number of refutations.
unsigned refuteLintFindings(LintReport &R, const AccessTrace &Trace);

/// Drops findings whose baselineKey() appears in \p BaselineText,
/// counting them in SuppressedCount. Returns the number suppressed.
unsigned applyLintBaseline(LintReport &R, const std::string &BaselineText);

/// Renders the report's finding keys as a baseline file (sorted, unique,
/// with a header comment).
std::string renderLintBaseline(const LintReport &R);

/// One corpus program's lint outcome.
struct ProgramLintReport {
  std::string Name;
  LintReport Report;
};

/// Lints every corpus program in parallel (same \p Jobs semantics as
/// analyzeCorpus). Reports come back in corpus order; their renderings
/// are bit-identical across job counts and solver strategies.
std::vector<ProgramLintReport> lintCorpus(const LintOptions &Opts,
                                          unsigned Jobs = 0);

} // namespace vdga

#endif // VDGA_LINT_LINT_H
