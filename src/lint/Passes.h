//===- lint/Passes.h - The five lint passes ---------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass battery the engine (Engine.cpp) runs over the per-function
/// CFGs, all parameterized by the loaded alias tier via `AliasOracle`:
///
///   heap pass       -> "use-after-free" + "double-free" findings
///                      (forward; per-variable dangling states plus
///                      per-allocation-site liveness states)
///   null pass       -> "null-deref" findings (forward; per-variable
///                      nullness with branch refinement, plus the
///                      alias-level empty-referent must check that
///                      subsumes the old one-shot null-write pass)
///   dead-store pass -> "dead-store" findings (backward; liveness of
///                      local access paths, filtered through the DefUse
///                      client and call-site ModRef when available)
///   leak pass       -> "memory-leak" findings (whole-program,
///                      path-insensitive: allocation sites no reachable
///                      free may ever release)
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_LINT_PASSES_H
#define VDGA_LINT_PASSES_H

#include "clients/DefUse.h"
#include "clients/ModRef.h"
#include "lint/AliasOracle.h"
#include "lint/CFG.h"
#include "lint/Lint.h"
#include "memory/LocationTable.h"

#include <vector>

namespace vdga {

/// Everything a pass consumes, assembled once by the engine.
struct LintPassContext {
  const Program &P;
  const Graph &G;
  const PathTable &Paths;
  const PairTable &PT;
  const LocationTable &Locs;
  const AliasOracle &Oracle;
  const OriginSites &Sites;
  /// CFGs of every defined function (passes skip unreachable ones).
  const std::vector<LintCFG> &CFGs;
  /// Linearized global-initializer events (the bootstrap region).
  const std::vector<LintEvent> &BootstrapEvents;
  /// Null for the Steensgaard tier (both clients need a PointsToResult).
  const DefUseInfo *DU = nullptr;
  const ModRefInfo *MR = nullptr;
  std::vector<LintFinding> &Findings;
};

void runHeapPass(LintPassContext &Ctx);
void runNullPass(LintPassContext &Ctx);
void runDeadStorePass(LintPassContext &Ctx);
void runLeakPass(LintPassContext &Ctx);

} // namespace vdga

#endif // VDGA_LINT_PASSES_H
