//===- lint/Passes.cpp ----------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/Passes.h"

#include "lint/Dataflow.h"

#include <algorithm>
#include <set>

using namespace vdga;

namespace {

const Expr *stripCasts(const Expr *E) {
  while (const auto *C = dyn_cast<CastExpr>(E))
    E = C->operand();
  return E;
}

/// The tracked variable an expression names, if any (same predicate the
/// CFG lowering used to emit AssignVar events).
const VarDecl *trackedVar(const Expr *E) {
  if (!E)
    return nullptr;
  const auto *Ref = dyn_cast<DeclRefExpr>(stripCasts(E));
  if (!Ref)
    return nullptr;
  const auto *Var = dyn_cast<VarDecl>(Ref->decl());
  if (!Var || Var->isGlobal() || Var->isAddressTaken() ||
      !Var->type()->isPointer())
    return nullptr;
  return Var;
}

/// Findings helper shared by the passes: builds, dedupes (per pass /
/// site / message) and registers findings.
class FindingSink {
public:
  FindingSink(LintPassContext &Ctx, const char *Pass) : Ctx(Ctx), Pass(Pass) {}

  LintFinding *add(const Expr *Site, SourceLoc Loc, LintConfidence Conf,
                   std::string Message, const FuncDecl *Fn,
                   PathId Referent = PathId::EmptyOffset,
                   bool HasReferent = false) {
    std::string PathStr =
        HasReferent ? Ctx.Paths.str(Referent, Ctx.P.Names) : std::string();
    std::string Key = std::to_string(Loc.Line) + ':' +
                      std::to_string(Loc.Column) + ':' + Message + ':' +
                      PathStr;
    if (!Seen.insert(Key).second)
      return nullptr;
    LintFinding F;
    F.Pass = Pass;
    F.Confidence = Conf;
    F.Severity = FindingSeverity::Warning;
    F.Loc = Loc;
    F.Message = std::move(Message);
    F.Path = std::move(PathStr);
    if (Fn)
      F.Function = Ctx.P.Names.text(Fn->name());
    F.Site = Site;
    Ctx.Findings.push_back(std::move(F));
    return &Ctx.Findings.back();
  }

private:
  LintPassContext &Ctx;
  const char *Pass;
  std::set<std::string> Seen;
};

bool isHeapPath(const LintPassContext &Ctx, PathId P) {
  return Ctx.Paths.isLocation(P) &&
         Ctx.Paths.base(Ctx.Paths.baseOf(P)).Kind == BaseLocKind::Heap;
}

bool isLocalPath(const LintPassContext &Ctx, PathId P) {
  return Ctx.Paths.isLocation(P) &&
         Ctx.Paths.base(Ctx.Paths.baseOf(P)).Kind == BaseLocKind::Local;
}

//===----------------------------------------------------------------------===//
// Heap pass: use-after-free and double-free
//===----------------------------------------------------------------------===//

/// Per tracked variable: does it hold a pointer whose object was freed?
enum class Dang : uint8_t { No, Yes, Maybe };

/// Per allocation site: may the most recent reasoning consider it freed?
enum class SiteSt : uint8_t { Live, Freed, MaybeFreed };

Dang joinDang(Dang A, Dang B) { return A == B ? A : Dang::Maybe; }
SiteSt joinSite(SiteSt A, SiteSt B) {
  return A == B ? A : SiteSt::MaybeFreed;
}

struct HeapLattice {
  const LintPassContext &Ctx;

  struct State {
    /// Absent variable = No (params and fresh values are live on entry).
    std::map<const VarDecl *, Dang, DeclOrder> Vars;
    /// Absent site = Live (intraprocedural: assume the caller handed us
    /// live memory; missed interprocedural frees are false negatives,
    /// never wrong must-claims).
    std::map<BaseLocId, SiteSt> Sites;
  };

  State boundaryState() const { return {}; }

  bool mergeInto(State &Dst, const State &Src) const {
    bool Changed = false;
    for (const auto &[Var, S] : Src.Vars) {
      auto It = Dst.Vars.find(Var);
      Dang Old = It == Dst.Vars.end() ? Dang::No : It->second;
      Dang New = joinDang(Old, S);
      if (New != Old) {
        Dst.Vars[Var] = New;
        Changed = true;
      }
    }
    for (const auto &[Var, S] : Dst.Vars) {
      if (!Src.Vars.count(Var) && S != Dang::No) {
        Dang New = joinDang(S, Dang::No);
        if (New != S) {
          Dst.Vars[Var] = New;
          Changed = true;
        }
      }
    }
    for (const auto &[Site, S] : Src.Sites) {
      auto It = Dst.Sites.find(Site);
      SiteSt Old = It == Dst.Sites.end() ? SiteSt::Live : It->second;
      SiteSt New = joinSite(Old, S);
      if (New != Old) {
        Dst.Sites[Site] = New;
        Changed = true;
      }
    }
    for (const auto &[Site, S] : Dst.Sites) {
      if (!Src.Sites.count(Site) && S != SiteSt::Live) {
        SiteSt New = joinSite(S, SiteSt::Live);
        if (New != S) {
          Dst.Sites[Site] = New;
          Changed = true;
        }
      }
    }
    return Changed;
  }

  std::vector<BaseLocId> freedBases(const LintEvent &E) const {
    std::vector<BaseLocId> H;
    if (!E.Ptr)
      return H;
    bool Known = false;
    for (PathId R : Ctx.Oracle.valueReferents(E.Ptr, Known))
      if (isHeapPath(Ctx, R))
        H.push_back(Ctx.Paths.baseOf(R));
    std::sort(H.begin(), H.end(), [](BaseLocId A, BaseLocId B) {
      return index(A) < index(B);
    });
    H.erase(std::unique(H.begin(), H.end()), H.end());
    return H;
  }

  void transfer(State &S, const LintEvent &E) const {
    switch (E.K) {
    case LintEvent::Kind::Alloc:
      S.Sites[Ctx.Locs.heapBase(E.AllocSite)] = SiteSt::Live;
      return;
    case LintEvent::Kind::Free: {
      std::vector<BaseLocId> H = freedBases(E);
      if (H.size() == 1) {
        S.Sites[H[0]] = SiteSt::Freed;
      } else {
        for (BaseLocId B : H) {
          auto It = S.Sites.find(B);
          SiteSt Old = It == S.Sites.end() ? SiteSt::Live : It->second;
          S.Sites[B] = joinSite(Old, SiteSt::Freed);
        }
      }
      // Only a free that released something marks the variable dangling:
      // free(NULL) is a no-op however often it runs.
      if (const VarDecl *V = trackedVar(E.Ptr))
        S.Vars[V] = H.empty() ? Dang::No : Dang::Yes;
      return;
    }
    case LintEvent::Kind::AssignVar:
      if (E.SrcKind == LintEvent::Src::Copy && E.SrcVar) {
        auto It = S.Vars.find(E.SrcVar);
        S.Vars[E.Var] = It == S.Vars.end() ? Dang::No : It->second;
      } else {
        // Null, fresh, address-of and unknown sources are all treated as
        // not-dangling: a wrong guess here could only suppress a must
        // claim, never fabricate one.
        S.Vars[E.Var] = Dang::No;
      }
      return;
    case LintEvent::Kind::Call:
      // A callee may free objects that escaped to it; tracking that
      // would need an interprocedural escape summary. Leaving states
      // untouched loses those frees (false negatives) but keeps every
      // must claim grounded in a free() this function executed.
      return;
    case LintEvent::Kind::Read:
    case LintEvent::Kind::Write:
      return;
    }
  }

  void refine(State &, const Expr *, bool) const {
    // Dangling-ness is not testable in the source language (comparing a
    // freed pointer is itself suspect), so branches refine nothing.
  }
};

void checkHeapAccess(LintPassContext &Ctx, FindingSink &UAF,
                     const HeapLattice::State &S, const LintEvent &E,
                     const FuncDecl *Fn) {
  if (const VarDecl *V = trackedVar(E.Ptr)) {
    auto It = S.Vars.find(V);
    Dang D = It == S.Vars.end() ? Dang::No : It->second;
    if (D == Dang::Yes) {
      UAF.add(E.Site, E.Site->loc(), LintConfidence::Must,
              "use of " + Ctx.P.Names.text(V->name()) +
                  " after the object it points to was freed",
              Fn);
      return;
    }
    if (D == Dang::Maybe) {
      UAF.add(E.Site, E.Site->loc(), LintConfidence::May,
              "possible use of " + Ctx.P.Names.text(V->name()) +
                  " after free",
              Fn);
      return;
    }
  }
  // Alias-level: the access may touch an allocation site this function
  // definitely freed on some path. Site states summarize all instances
  // of a site, so this is only ever a may claim.
  for (const std::vector<NodeId> *Nodes :
       {Ctx.Sites.Lookups.count(E.Site)
            ? &Ctx.Sites.Lookups.at(E.Site)
            : nullptr,
        Ctx.Sites.Updates.count(E.Site) ? &Ctx.Sites.Updates.at(E.Site)
                                        : nullptr}) {
    if (!Nodes)
      continue;
    for (NodeId N : *Nodes) {
      for (PathId R : Ctx.Oracle.accessReferents(N)) {
        if (!isHeapPath(Ctx, R))
          continue;
        BaseLocId B = Ctx.Paths.baseOf(R);
        auto It = S.Sites.find(B);
        if (It != S.Sites.end() && It->second == SiteSt::Freed) {
          LintFinding *F = UAF.add(
              E.Site, E.Site->loc(), LintConfidence::May,
              "may access memory from an allocation that was already freed",
              Fn, Ctx.Paths.basePath(B), /*HasReferent=*/true);
          if (F) {
            F->ProvOut = Ctx.G.producerOf(N, 0);
            F->ProvReferent = R;
          }
        }
      }
    }
  }
}

void runHeapPassOn(LintPassContext &Ctx, const LintCFG &C) {
  HeapLattice Lat{Ctx};
  DataflowRunner<HeapLattice> Runner(C, Lat, DataflowDir::Forward);
  Runner.solve();
  FindingSink UAF(Ctx, "use-after-free");
  FindingSink DF(Ctx, "double-free");
  Runner.visit([&](const HeapLattice::State &S, const LintEvent &E) {
    switch (E.K) {
    case LintEvent::Kind::Read:
    case LintEvent::Kind::Write:
      checkHeapAccess(Ctx, UAF, S, E, C.Fn);
      return;
    case LintEvent::Kind::Free: {
      if (const VarDecl *V = trackedVar(E.Ptr)) {
        auto It = S.Vars.find(V);
        Dang D = It == S.Vars.end() ? Dang::No : It->second;
        if (D == Dang::Yes) {
          DF.add(E.Site, E.Site->loc(), LintConfidence::Must,
                 "double free of " + Ctx.P.Names.text(V->name()), C.Fn);
          return;
        }
        if (D == Dang::Maybe) {
          DF.add(E.Site, E.Site->loc(), LintConfidence::May,
                 "possible double free of " + Ctx.P.Names.text(V->name()),
                 C.Fn);
          return;
        }
      }
      for (BaseLocId B : Lat.freedBases(E)) {
        auto It = S.Sites.find(B);
        if (It != S.Sites.end() && It->second == SiteSt::Freed)
          DF.add(E.Site, E.Site->loc(), LintConfidence::May,
                 "allocation may already have been freed when freed again",
                 C.Fn, Ctx.Paths.basePath(B), /*HasReferent=*/true);
      }
      return;
    }
    default:
      return;
    }
  });
}

//===----------------------------------------------------------------------===//
// Null pass: flow-aware null-dereference
//===----------------------------------------------------------------------===//

/// Nullness of a tracked pointer variable. `Unknown` carries no evidence
/// (quiet); `Maybe` records a null assignment on at least one path.
enum class Nullness : uint8_t { Unknown, Null, NonNull, Maybe };

Nullness joinNullness(Nullness A, Nullness B) {
  if (A == B)
    return A;
  // Any path carrying definite or possible null makes the join Maybe;
  // otherwise no evidence survives.
  bool ANull = A == Nullness::Null || A == Nullness::Maybe;
  bool BNull = B == Nullness::Null || B == Nullness::Maybe;
  return (ANull || BNull) ? Nullness::Maybe : Nullness::Unknown;
}

bool isNullLiteral(const Expr *E) {
  const auto *I = dyn_cast<IntLiteralExpr>(stripCasts(E));
  return I && I->value() == 0;
}

struct NullLattice {
  const LintPassContext &Ctx;

  struct State {
    std::map<const VarDecl *, Nullness, DeclOrder> Vars; ///< Absent=Unknown.
  };

  State boundaryState() const { return {}; }

  bool mergeInto(State &Dst, const State &Src) const {
    bool Changed = false;
    for (const auto &[Var, N] : Src.Vars) {
      auto It = Dst.Vars.find(Var);
      Nullness Old = It == Dst.Vars.end() ? Nullness::Unknown : It->second;
      Nullness New = joinNullness(Old, N);
      if (New != Old) {
        Dst.Vars[Var] = New;
        Changed = true;
      }
    }
    for (const auto &[Var, N] : Dst.Vars) {
      if (!Src.Vars.count(Var) && N != Nullness::Unknown) {
        Nullness New = joinNullness(N, Nullness::Unknown);
        if (New != N) {
          Dst.Vars[Var] = New;
          Changed = true;
        }
      }
    }
    return Changed;
  }

  void transfer(State &S, const LintEvent &E) const {
    if (E.K != LintEvent::Kind::AssignVar)
      return;
    switch (E.SrcKind) {
    case LintEvent::Src::Null:
      S.Vars[E.Var] = Nullness::Null;
      return;
    case LintEvent::Src::Fresh:
      // The concrete interpreter's malloc never fails, so a fresh
      // allocation is non-null — matching the runtime the oracle
      // refutes against.
    case LintEvent::Src::Addr:
      S.Vars[E.Var] = Nullness::NonNull;
      return;
    case LintEvent::Src::Copy: {
      auto It = S.Vars.find(E.SrcVar);
      S.Vars[E.Var] =
          It == S.Vars.end() ? Nullness::Unknown : It->second;
      return;
    }
    case LintEvent::Src::Unknown:
      S.Vars[E.Var] = Nullness::Unknown;
      return;
    }
  }

  void refine(State &S, const Expr *Cond, bool AssumeTrue) const {
    Cond = stripCasts(Cond);
    if (const VarDecl *V = trackedVar(Cond)) {
      S.Vars[V] = AssumeTrue ? Nullness::NonNull : Nullness::Null;
      return;
    }
    if (const auto *U = dyn_cast<UnaryExpr>(Cond)) {
      if (U->op() == UnaryOp::Not)
        refine(S, U->operand(), !AssumeTrue);
      return;
    }
    const auto *B = dyn_cast<BinaryExpr>(Cond);
    if (!B)
      return;
    switch (B->op()) {
    case BinaryOp::LogAnd:
      if (AssumeTrue) {
        refine(S, B->lhs(), true);
        refine(S, B->rhs(), true);
      }
      return;
    case BinaryOp::LogOr:
      if (!AssumeTrue) {
        refine(S, B->lhs(), false);
        refine(S, B->rhs(), false);
      }
      return;
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      const Expr *VarSide = nullptr;
      if (isNullLiteral(B->rhs()))
        VarSide = B->lhs();
      else if (isNullLiteral(B->lhs()))
        VarSide = B->rhs();
      if (!VarSide)
        return;
      const VarDecl *V = trackedVar(VarSide);
      if (!V)
        return;
      bool IsNull = (B->op() == BinaryOp::Eq) == AssumeTrue;
      S.Vars[V] = IsNull ? Nullness::Null : Nullness::NonNull;
      return;
    }
    default:
      return;
    }
  }
};

void runNullPassOn(LintPassContext &Ctx, const LintCFG &C) {
  NullLattice Lat{Ctx};
  DataflowRunner<NullLattice> Runner(C, Lat, DataflowDir::Forward);
  Runner.solve();
  FindingSink Sink(Ctx, "null-deref");
  Runner.visit([&](const NullLattice::State &S, const LintEvent &E) {
    if (E.K != LintEvent::Kind::Read && E.K != LintEvent::Kind::Write)
      return;
    if (const VarDecl *V = trackedVar(E.Ptr)) {
      auto It = S.Vars.find(V);
      Nullness N = It == S.Vars.end() ? Nullness::Unknown : It->second;
      if (N == Nullness::Null) {
        Sink.add(E.Site, E.Site->loc(), LintConfidence::Must,
                 "null pointer dereference of " +
                     Ctx.P.Names.text(V->name()),
                 C.Fn);
        return;
      }
      if (N == Nullness::Maybe)
        Sink.add(E.Site, E.Site->loc(), LintConfidence::May,
                 "possible null pointer dereference of " +
                     Ctx.P.Names.text(V->name()),
                 C.Fn);
    }
    // Alias-level must check (the upgraded null-write pass, extended to
    // reads): an indirect access whose location pointer has no referents
    // under a complete tier dereferences null or undefined on every
    // execution.
    auto Check = [&](const std::vector<NodeId> &Nodes, const char *What) {
      for (NodeId N : Nodes) {
        if (!Ctx.Oracle.isIndirect(N))
          continue;
        if (Ctx.Oracle.accessReferents(N).empty())
          Sink.add(E.Site, E.Site->loc(), LintConfidence::Must,
                   std::string(What) +
                       " through a pointer that is null or undefined on "
                       "every path",
                   C.Fn);
      }
    };
    if (E.K == LintEvent::Kind::Read) {
      if (auto It = Ctx.Sites.Lookups.find(E.Site);
          It != Ctx.Sites.Lookups.end())
        Check(It->second, "read");
    } else {
      if (auto It = Ctx.Sites.Updates.find(E.Site);
          It != Ctx.Sites.Updates.end())
        Check(It->second, "write");
    }
  });
}

//===----------------------------------------------------------------------===//
// Dead-store pass (backward liveness of local paths)
//===----------------------------------------------------------------------===//

struct LiveLattice {
  const LintPassContext &Ctx;
  /// Address-taken locals of the current function, as base paths: what a
  /// callee could read through a pointer when ModRef cannot narrow it.
  const std::vector<PathId> &EscapedLocals;

  struct State {
    std::set<PathId> Live; ///< Local access paths that may still be read.
  };

  State boundaryState() const { return {}; } // Locals die at exit.

  bool mergeInto(State &Dst, const State &Src) const {
    bool Changed = false;
    for (PathId P : Src.Live)
      Changed |= Dst.Live.insert(P).second;
    return Changed;
  }

  void addAccessPaths(State &S, const LintEvent &E,
                      const std::map<const Expr *, std::vector<NodeId>>
                          &SiteMap) const {
    auto It = SiteMap.find(E.Site);
    if (It == SiteMap.end())
      return;
    for (NodeId N : It->second)
      for (PathId R : Ctx.Oracle.accessReferents(N))
        if (isLocalPath(Ctx, R))
          S.Live.insert(R);
  }

  void transfer(State &S, const LintEvent &E) const {
    switch (E.K) {
    case LintEvent::Kind::Read:
      addAccessPaths(S, E, Ctx.Sites.Lookups);
      return;
    case LintEvent::Kind::Write: {
      // A compound assignment's read half arrives as its own Read event;
      // here only the kill applies. Strong kill: single referent, single
      // runtime instance — and only at field-sensitive tiers, where one
      // referent path is one storage location. The Steensgaard backing
      // answers with whole base objects, so `arr[1] = ...` comes back as
      // the single path `arr` and a strong kill there would wrongly erase
      // the liveness of every other element.
      if (!Ctx.Oracle.fieldSensitive())
        return;
      auto It = Ctx.Sites.Updates.find(E.Site);
      if (It == Ctx.Sites.Updates.end())
        return;
      for (NodeId N : It->second) {
        std::vector<PathId> W = Ctx.Oracle.accessReferents(N);
        if (W.size() != 1 || !Ctx.Paths.isLocation(W[0]))
          continue;
        const BaseLocation &B = Ctx.Paths.base(Ctx.Paths.baseOf(W[0]));
        if (!B.SingleInstance)
          continue;
        // Writing path w overwrites w and everything below it.
        for (auto LI = S.Live.begin(); LI != S.Live.end();)
          if (Ctx.Paths.dom(W[0], *LI))
            LI = S.Live.erase(LI);
          else
            ++LI;
      }
      return;
    }
    case LintEvent::Kind::Call: {
      // The callee may read any local whose address escaped; ModRef
      // narrows that to the locations the callee transitively refs.
      for (PathId P : EscapedLocals) {
        if (Ctx.MR && E.Callee) {
          if (!Ctx.MR->mayRef(E.Callee, P, Ctx.Paths))
            continue;
        }
        S.Live.insert(P);
      }
      return;
    }
    case LintEvent::Kind::Free:
    case LintEvent::Kind::Alloc:
    case LintEvent::Kind::AssignVar:
      return;
    }
  }

  void refine(State &, const Expr *, bool) const {}
};

void runDeadStorePassOn(LintPassContext &Ctx, const LintCFG &C) {
  std::vector<PathId> EscapedLocals;
  for (const VarDecl *V : C.Fn->locals())
    if (V->isAddressTaken())
      EscapedLocals.push_back(
          Ctx.Paths.basePath(Ctx.Locs.varBase(V)));
  for (const VarDecl *V : C.Fn->params())
    if (V->isAddressTaken())
      EscapedLocals.push_back(
          Ctx.Paths.basePath(Ctx.Locs.varBase(V)));

  LiveLattice Lat{Ctx, EscapedLocals};
  DataflowRunner<LiveLattice> Runner(C, Lat, DataflowDir::Backward);
  Runner.solve();
  FindingSink Sink(Ctx, "dead-store");
  Runner.visit([&](const LiveLattice::State &S, const LintEvent &E) {
    if (E.K != LintEvent::Kind::Write)
      return;
    auto It = Ctx.Sites.Updates.find(E.Site);
    if (It == Ctx.Sites.Updates.end())
      return;
    for (NodeId N : It->second) {
      std::vector<PathId> W = Ctx.Oracle.accessReferents(N);
      if (W.empty())
        continue; // The null pass owns referent-free writes.
      bool AllLocal = true;
      for (PathId P : W)
        if (!isLocalPath(Ctx, P))
          AllLocal = false;
      if (!AllLocal)
        continue; // Globals/heap outlive the function; stay quiet.
      bool Observed = false;
      for (PathId P : W)
        for (PathId L : S.Live)
          if (Ctx.Paths.dom(P, L) || Ctx.Paths.dom(L, P))
            Observed = true;
      if (Observed)
        continue;
      // Cross-check against the interprocedural DefUse client when the
      // tier provides one: a store whose value some lookup anywhere may
      // observe is not dead, whatever local liveness says.
      if (Ctx.DU && !Ctx.DU->usesFor(N).empty())
        continue;
      Sink.add(E.Site, E.Site->loc(), LintConfidence::May,
               "store is never read", C.Fn, W[0], /*HasReferent=*/true);
    }
  });
}

//===----------------------------------------------------------------------===//
// Leak pass (whole-program, path-insensitive)
//===----------------------------------------------------------------------===//

void collectLeakEvents(LintPassContext &Ctx, const std::vector<LintEvent> &Evs,
                       const FuncDecl *Fn,
                       std::vector<std::pair<const Expr *, unsigned>> &Allocs,
                       std::set<BaseLocId> &FreedBases,
                       std::map<const Expr *, const FuncDecl *> &AllocOwner) {
  for (const LintEvent &E : Evs) {
    if (E.K == LintEvent::Kind::Alloc) {
      Allocs.push_back({E.Site, E.AllocSite});
      AllocOwner[E.Site] = Fn;
    } else if (E.K == LintEvent::Kind::Free && E.Ptr) {
      bool Known = false;
      for (PathId R : Ctx.Oracle.valueReferents(E.Ptr, Known))
        if (isHeapPath(Ctx, R))
          FreedBases.insert(Ctx.Paths.baseOf(R));
    }
  }
}

} // namespace

void vdga::runHeapPass(LintPassContext &Ctx) {
  for (const LintCFG &C : Ctx.CFGs)
    if (Ctx.Oracle.reachable(C.Fn))
      runHeapPassOn(Ctx, C);
}

void vdga::runNullPass(LintPassContext &Ctx) {
  for (const LintCFG &C : Ctx.CFGs)
    if (Ctx.Oracle.reachable(C.Fn))
      runNullPassOn(Ctx, C);
}

void vdga::runDeadStorePass(LintPassContext &Ctx) {
  for (const LintCFG &C : Ctx.CFGs)
    if (Ctx.Oracle.reachable(C.Fn))
      runDeadStorePassOn(Ctx, C);
}

void vdga::runLeakPass(LintPassContext &Ctx) {
  // Union the frees every reachable function (and the bootstrap region)
  // may execute; any reachable allocation site no free's referent set
  // covers can never be released.
  std::vector<std::pair<const Expr *, unsigned>> Allocs;
  std::map<const Expr *, const FuncDecl *> AllocOwner;
  std::set<BaseLocId> FreedBases;
  collectLeakEvents(Ctx, Ctx.BootstrapEvents, nullptr, Allocs, FreedBases,
                    AllocOwner);
  for (const LintCFG &C : Ctx.CFGs) {
    if (!Ctx.Oracle.reachable(C.Fn))
      continue;
    for (const LintBlock &B : C.Blocks)
      collectLeakEvents(Ctx, B.Events, C.Fn, Allocs, FreedBases, AllocOwner);
  }
  FindingSink Sink(Ctx, "memory-leak");
  for (const auto &[Site, SiteId] : Allocs) {
    BaseLocId B = Ctx.Locs.heapBase(SiteId);
    if (FreedBases.count(B))
      continue;
    Sink.add(Site, Site->loc(), LintConfidence::May,
             "allocation is never freed on any path", AllocOwner[Site],
             Ctx.Paths.basePath(B), /*HasReferent=*/true);
  }
}
