//===- lint/Dataflow.h - Worklist dataflow over LintCFGs --------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint engine's pluggable dataflow framework: a deterministic
/// forward/backward worklist to fixpoint over one function's `LintCFG`,
/// parameterized by an abstract-state lattice. A lattice provides:
///
///   using State = ...;
///   State boundaryState() const;            // entry (fwd) / exit (bwd)
///   bool mergeInto(State &Dst, const State &Src) const; // true = changed
///   void transfer(State &S, const LintEvent &E) const;
///   void refine(State &S, const Expr *Cond, bool AssumeTrue) const;
///
/// The runner owns the two soundness conventions the CFG lowering relies
/// on: `Conditional` events apply *weakly* (transfer a refined copy, then
/// merge it back — a guarded free can never manufacture a must-fact), and
/// forward propagation along a branch's polarized edges refines the state
/// with the branch condition first. After `solve()`, `visit()` replays
/// the transfers and hands each event's incoming (and, for guarded
/// events, refined) state to a callback — that is where passes emit
/// findings. The worklist is an ordered set of block ids and block states
/// merge pointwise, so the fixpoint and the visit order are identical
/// across runs, job counts and solver strategies.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_LINT_DATAFLOW_H
#define VDGA_LINT_DATAFLOW_H

#include "lint/CFG.h"

#include <set>
#include <vector>

namespace vdga {

enum class DataflowDir : uint8_t { Forward, Backward };

template <typename Lattice> class DataflowRunner {
public:
  using State = typename Lattice::State;

  DataflowRunner(const LintCFG &C, const Lattice &Lat, DataflowDir Dir)
      : C(C), Lat(Lat), Dir(Dir), In(C.Blocks.size()),
        Reached(C.Blocks.size(), false) {}

  void solve() {
    unsigned Start = Dir == DataflowDir::Forward
                         ? LintCFG::EntryBlock
                         : LintCFG::ExitBlock;
    In[Start] = Lat.boundaryState();
    Reached[Start] = true;
    std::set<unsigned> Worklist = {Start};
    // A generous guard against a non-converging lattice; real lattices
    // here are finite-height and converge in a handful of sweeps.
    uint64_t Budget = uint64_t(C.Blocks.size() + 1) * 4096;
    while (!Worklist.empty() && Budget--) {
      unsigned B = *Worklist.begin();
      Worklist.erase(Worklist.begin());
      State S = In[B];
      applyBlock(B, S, static_cast<void (*)(const State &, const LintEvent &)>(
                           nullptr));
      propagate(B, S, Worklist);
    }
  }

  /// Replays each reached block's transfers, invoking
  /// `CB(state, event)` with the state the event's transfer observes
  /// (refined by the guard for conditional events).
  template <typename F> void visit(F &&CB) {
    for (unsigned B = 0; B < C.Blocks.size(); ++B) {
      if (!Reached[B])
        continue;
      State S = In[B];
      applyBlock(B, S, &CB);
    }
  }

  bool reached(unsigned Block) const { return Reached[Block]; }
  const State &inState(unsigned Block) const { return In[Block]; }

private:
  const LintCFG &C;
  const Lattice &Lat;
  DataflowDir Dir;
  std::vector<State> In;
  std::vector<bool> Reached;

  template <typename F>
  void applyEvent(State &S, const LintEvent &E, F *CB) {
    if (E.Conditional) {
      State T = S;
      if (E.Guard)
        Lat.refine(T, E.Guard, E.GuardTrue);
      if (CB)
        (*CB)(static_cast<const State &>(T), E);
      Lat.transfer(T, E);
      Lat.mergeInto(S, T);
    } else {
      if (CB)
        (*CB)(static_cast<const State &>(S), E);
      Lat.transfer(S, E);
    }
  }

  template <typename F> void applyBlock(unsigned B, State &S, F *CB) {
    const std::vector<LintEvent> &Events = C.Blocks[B].Events;
    if (Dir == DataflowDir::Forward) {
      for (const LintEvent &E : Events)
        applyEvent(S, E, CB);
    } else {
      for (auto It = Events.rbegin(); It != Events.rend(); ++It)
        applyEvent(S, *It, CB);
    }
  }

  void propagate(unsigned B, const State &S, std::set<unsigned> &Worklist) {
    const LintBlock &Blk = C.Blocks[B];
    if (Dir == DataflowDir::Forward) {
      for (unsigned Succ : Blk.Succs) {
        State Out = S;
        if (Blk.BranchCond) {
          if (Succ == Blk.TrueSucc)
            Lat.refine(Out, Blk.BranchCond, /*AssumeTrue=*/true);
          else if (Succ == Blk.FalseSucc)
            Lat.refine(Out, Blk.BranchCond, /*AssumeTrue=*/false);
        }
        mergeTo(Succ, Out, Worklist);
      }
    } else {
      for (unsigned Pred : Blk.Preds)
        mergeTo(Pred, S, Worklist);
    }
  }

  void mergeTo(unsigned Block, const State &S, std::set<unsigned> &Worklist) {
    if (!Reached[Block]) {
      In[Block] = S;
      Reached[Block] = true;
      Worklist.insert(Block);
    } else if (Lat.mergeInto(In[Block], S)) {
      Worklist.insert(Block);
    }
  }
};

} // namespace vdga

#endif // VDGA_LINT_DATAFLOW_H
