//===- lint/Lint.cpp ------------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "interp/Interpreter.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace vdga;

const char *vdga::lintTierName(LintTier T) {
  switch (T) {
  case LintTier::Steensgaard:
    return "steens";
  case LintTier::ContextInsens:
    return "ci";
  case LintTier::ContextSens:
    return "cs";
  }
  return "?";
}

bool vdga::parseLintTier(std::string_view Name, LintTier &Out) {
  if (Name == "steens") {
    Out = LintTier::Steensgaard;
    return true;
  }
  if (Name == "ci") {
    Out = LintTier::ContextInsens;
    return true;
  }
  if (Name == "cs") {
    Out = LintTier::ContextSens;
    return true;
  }
  return false;
}

const char *vdga::lintConfidenceName(LintConfidence C) {
  return C == LintConfidence::Must ? "must" : "may";
}

std::string LintFinding::baselineKey() const {
  std::ostringstream OS;
  OS << Pass << ':' << Loc.Line << ':' << Loc.Column << ':' << Path;
  return OS.str();
}

unsigned LintReport::countPass(const std::string &Pass) const {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (F.Pass == Pass)
      ++N;
  return N;
}

unsigned LintReport::countConfidence(LintConfidence C) const {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (F.Confidence == C && F.Severity != FindingSeverity::Note)
      ++N;
  return N;
}

unsigned LintReport::errorCount() const {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (F.Severity == FindingSeverity::Error)
      ++N;
  return N;
}

void LintReport::sortFindings() {
  std::stable_sort(
      Findings.begin(), Findings.end(),
      [](const LintFinding &A, const LintFinding &B) {
        return std::tie(A.Loc.Line, A.Loc.Column, A.Pass, A.Confidence,
                        A.Message, A.Path) <
               std::tie(B.Loc.Line, B.Loc.Column, B.Pass, B.Confidence,
                        B.Message, B.Path);
      });
}

std::string LintReport::renderText() const {
  std::ostringstream OS;
  for (const LintFinding &F : Findings) {
    if (F.Loc.isValid())
      OS << F.Loc.Line << ':' << F.Loc.Column << ": ";
    OS << findingSeverityName(F.Severity) << " [" << F.Pass << '/'
       << lintConfidenceName(F.Confidence) << "] " << F.Message;
    if (!F.Path.empty())
      OS << " (path " << F.Path << ')';
    if (!F.Function.empty())
      OS << " {in " << F.Function << '}';
    OS << '\n';
    for (const std::string &Line : F.Provenance)
      OS << "    " << Line << '\n';
  }
  OS << "lint: tier=" << Tier << " findings=" << Findings.size()
     << " must=" << countConfidence(LintConfidence::Must)
     << " errors=" << errorCount() << " suppressed=" << SuppressedCount;
  if (Degraded)
    OS << " degraded=1";
  OS << '\n';
  return OS.str();
}

namespace {
void jsonEscape(std::ostringstream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}
} // namespace

std::string LintReport::renderJson() const {
  std::ostringstream OS;
  OS << "{\"schema\":\"vdga-lint-v1\",\"tier\":\"" << Tier << "\""
     << ",\"degraded\":" << (Degraded ? "true" : "false")
     << ",\"suppressed\":" << SuppressedCount;
  // Stable per-pass counts (all five passes, zero included, so diffs of
  // reports are structural).
  static const char *const PassNames[] = {"use-after-free", "double-free",
                                          "memory-leak", "dead-store",
                                          "null-deref"};
  OS << ",\"counts\":{";
  bool FirstCount = true;
  for (const char *P : PassNames) {
    if (!FirstCount)
      OS << ',';
    FirstCount = false;
    OS << '"' << P << "\":" << countPass(P);
  }
  OS << ",\"must\":" << countConfidence(LintConfidence::Must)
     << ",\"errors\":" << errorCount() << '}';
  OS << ",\"findings\":[";
  bool First = true;
  for (const LintFinding &F : Findings) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"pass\":";
    jsonEscape(OS, F.Pass);
    OS << ",\"confidence\":\"" << lintConfidenceName(F.Confidence) << "\""
       << ",\"severity\":\"" << findingSeverityName(F.Severity) << "\""
       << ",\"line\":" << F.Loc.Line << ",\"col\":" << F.Loc.Column
       << ",\"message\":";
    jsonEscape(OS, F.Message);
    OS << ",\"path\":";
    jsonEscape(OS, F.Path);
    OS << ",\"function\":";
    jsonEscape(OS, F.Function);
    if (!F.Provenance.empty()) {
      OS << ",\"provenance\":[";
      bool FirstP = true;
      for (const std::string &Line : F.Provenance) {
        if (!FirstP)
          OS << ',';
        FirstP = false;
        jsonEscape(OS, Line);
      }
      OS << ']';
    }
    OS << '}';
  }
  OS << "]}";
  return OS.str();
}

unsigned vdga::refuteLintFindings(LintReport &R, const AccessTrace &Trace) {
  unsigned Refuted = 0;
  for (LintFinding &F : R.Findings) {
    if (F.Confidence != LintConfidence::Must || !F.Site ||
        F.Severity == FindingSeverity::Note)
      continue;
    bool Executed = false;
    if (F.Pass == "double-free") {
      // A recorded entry in Frees means this site released a live object
      // at least once — directly contradicting "every execution here
      // double-frees".
      Executed = Trace.Frees.count(F.Site) != 0;
    } else if (F.Pass == "use-after-free" || F.Pass == "null-deref") {
      // The interpreter records an access only after it succeeded (the
      // failure path returns first), so presence proves a well-defined
      // execution of the site.
      Executed = Trace.Reads.count(F.Site) != 0 ||
                 Trace.Writes.count(F.Site) != 0;
    }
    if (!Executed)
      continue;
    F.Severity = FindingSeverity::Error;
    F.Message += " [refuted by interpreter trace]";
    ++Refuted;
  }
  return Refuted;
}

namespace {
std::set<std::string> parseBaseline(const std::string &Text) {
  std::set<std::string> Keys;
  std::istringstream IS(Text);
  std::string Line;
  while (std::getline(IS, Line)) {
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.erase(Hash);
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    Keys.insert(Line.substr(B, E - B + 1));
  }
  return Keys;
}
} // namespace

unsigned vdga::applyLintBaseline(LintReport &R,
                                 const std::string &BaselineText) {
  if (BaselineText.empty())
    return 0;
  std::set<std::string> Keys = parseBaseline(BaselineText);
  if (Keys.empty())
    return 0;
  unsigned Suppressed = 0;
  std::vector<LintFinding> Kept;
  Kept.reserve(R.Findings.size());
  for (LintFinding &F : R.Findings) {
    // Errors (refuted musts) are never suppressible: they indicate an
    // analysis bug, not a known program defect.
    if (F.Severity != FindingSeverity::Error &&
        Keys.count(F.baselineKey())) {
      ++Suppressed;
      continue;
    }
    Kept.push_back(std::move(F));
  }
  R.Findings = std::move(Kept);
  R.SuppressedCount += Suppressed;
  return Suppressed;
}

std::string vdga::renderLintBaseline(const LintReport &R) {
  std::set<std::string> Keys;
  for (const LintFinding &F : R.Findings)
    if (F.Severity != FindingSeverity::Note)
      Keys.insert(F.baselineKey());
  std::ostringstream OS;
  OS << "# vdga-lint baseline: one suppression key per line\n"
     << "# (pass:line:col:path); '#' starts a comment\n";
  for (const std::string &K : Keys)
    OS << K << '\n';
  return OS.str();
}
