//===- lint/CFG.cpp -------------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/CFG.h"

#include "frontend/CallGraphAST.h"

using namespace vdga;

OriginSites::OriginSites(const Graph &G) {
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Nd = G.node(N);
    if (!Nd.Origin)
      continue;
    if (Nd.Kind == NodeKind::Lookup)
      Lookups[Nd.Origin].push_back(N);
    else if (Nd.Kind == NodeKind::Update)
      Updates[Nd.Origin].push_back(N);
  }
}

namespace {

const Expr *stripCasts(const Expr *E) {
  while (const auto *C = dyn_cast<CastExpr>(E))
    E = C->operand();
  return E;
}

/// A local scalar pointer variable the forward passes can track: never
/// address-taken (so no call or indirect write can change it behind the
/// CFG's back) and not store-resident.
const VarDecl *trackedVar(const Expr *E) {
  const auto *Ref = dyn_cast<DeclRefExpr>(stripCasts(E));
  if (!Ref)
    return nullptr;
  const auto *Var = dyn_cast<VarDecl>(Ref->decl());
  if (!Var || Var->isGlobal() || Var->isAddressTaken())
    return nullptr;
  if (!Var->type()->isPointer())
    return nullptr;
  return Var;
}

/// The pointer expression an access site dereferences, or null for
/// direct accesses.
const Expr *pointerOperand(const Expr *E) {
  E = stripCasts(E);
  switch (E->kind()) {
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() == UnaryOp::Deref)
      return stripCasts(U->operand());
    if (U->op() == UnaryOp::PreInc || U->op() == UnaryOp::PreDec ||
        U->op() == UnaryOp::PostInc || U->op() == UnaryOp::PostDec)
      return pointerOperand(U->operand());
    return nullptr;
  }
  case ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    return M->isArrow() ? stripCasts(M->base()) : pointerOperand(M->base());
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    const Type *BaseTy = I->base()->type();
    return BaseTy && BaseTy->isPointer() ? stripCasts(I->base()) : nullptr;
  }
  case ExprKind::Assign:
    return pointerOperand(cast<AssignExpr>(E)->target());
  default:
    return nullptr;
  }
}

LintEvent::Src classifyAssignSource(const Expr *RHS, const VarDecl *&SrcVar) {
  SrcVar = nullptr;
  RHS = stripCasts(RHS);
  switch (RHS->kind()) {
  case ExprKind::IntLiteral:
    return cast<IntLiteralExpr>(RHS)->value() == 0 ? LintEvent::Src::Null
                                                   : LintEvent::Src::Unknown;
  case ExprKind::StringLiteral:
    return LintEvent::Src::Addr;
  case ExprKind::Call: {
    BuiltinKind B = cast<CallExpr>(RHS)->builtin();
    if (B == BuiltinKind::Malloc || B == BuiltinKind::Calloc)
      return LintEvent::Src::Fresh;
    return LintEvent::Src::Unknown;
  }
  case ExprKind::Unary:
    if (cast<UnaryExpr>(RHS)->op() == UnaryOp::AddrOf)
      return LintEvent::Src::Addr;
    return LintEvent::Src::Unknown;
  case ExprKind::DeclRef:
    if (const VarDecl *V = trackedVar(RHS)) {
      SrcVar = V;
      return LintEvent::Src::Copy;
    }
    // Array decay yields the array's address: non-null.
    if (const auto *Var = dyn_cast<VarDecl>(cast<DeclRefExpr>(RHS)->decl()))
      if (Var->type()->isArray())
        return LintEvent::Src::Addr;
    return LintEvent::Src::Unknown;
  default:
    return LintEvent::Src::Unknown;
  }
}

/// Shared linearizer: walks an expression in evaluation order, emitting
/// access events for every Origin-bearing subexpression plus the
/// alloc/free/call/assign events the passes consume.
class Linearizer {
public:
  Linearizer(std::vector<LintEvent> &Out, const OriginSites &Sites,
             const std::set<const FuncDecl *> &MayFreeFns)
      : Out(Out), Sites(Sites), MayFreeFns(MayFreeFns) {}

  void emitExpr(const Expr *E, bool Cond, const Expr *Guard, bool GuardTrue) {
    switch (E->kind()) {
    case ExprKind::IntLiteral:
    case ExprKind::FloatLiteral:
    case ExprKind::StringLiteral:
    case ExprKind::SizeOf:
    case ExprKind::DeclRef:
      break;
    case ExprKind::Unary:
      emitExpr(cast<UnaryExpr>(E)->operand(), Cond, Guard, GuardTrue);
      break;
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      emitExpr(B->lhs(), Cond, Guard, GuardTrue);
      // Short-circuit RHS: conditional, guarded by the LHS's outcome.
      // Nesting keeps only the innermost guard; the Conditional flag
      // still forces weak application, so this loses precision, never
      // soundness.
      if (B->op() == BinaryOp::LogAnd)
        emitExpr(B->rhs(), /*Cond=*/true, B->lhs(), /*GuardTrue=*/true);
      else if (B->op() == BinaryOp::LogOr)
        emitExpr(B->rhs(), /*Cond=*/true, B->lhs(), /*GuardTrue=*/false);
      else
        emitExpr(B->rhs(), Cond, Guard, GuardTrue);
      break;
    }
    case ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      emitExpr(A->value(), Cond, Guard, GuardTrue);
      emitLValueChildren(A->target(), Cond, Guard, GuardTrue);
      break;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      emitExpr(C->callee(), Cond, Guard, GuardTrue);
      for (const Expr *Arg : C->args())
        emitExpr(Arg, Cond, Guard, GuardTrue);
      break;
    }
    case ExprKind::Index: {
      const auto *I = cast<IndexExpr>(E);
      emitExpr(I->base(), Cond, Guard, GuardTrue);
      emitExpr(I->index(), Cond, Guard, GuardTrue);
      break;
    }
    case ExprKind::Member: {
      const auto *M = cast<MemberExpr>(E);
      if (M->isArrow())
        emitExpr(M->base(), Cond, Guard, GuardTrue);
      else
        emitLValueChildren(M->base(), Cond, Guard, GuardTrue);
      break;
    }
    case ExprKind::Cast:
      emitExpr(cast<CastExpr>(E)->operand(), Cond, Guard, GuardTrue);
      // The cast shares the operand's events; emit none of its own.
      return;
    case ExprKind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      emitExpr(C->cond(), Cond, Guard, GuardTrue);
      emitExpr(C->thenExpr(), /*Cond=*/true, C->cond(), /*GuardTrue=*/true);
      emitExpr(C->elseExpr(), /*Cond=*/true, C->cond(), /*GuardTrue=*/false);
      break;
    }
    }
    emitAccesses(E, Cond, Guard, GuardTrue);
    emitSpecial(E, Cond, Guard, GuardTrue);
  }

  /// Emits an AssignVar event for a declaration with an initializer.
  void emitDeclInit(const VarDecl *Var, const Expr *Init, bool Cond) {
    emitExpr(Init, Cond, nullptr, false);
    if (Var->isGlobal() || Var->isAddressTaken() || !Var->type()->isPointer())
      return;
    LintEvent Ev = base(LintEvent::Kind::AssignVar, Init, Cond, nullptr,
                        false);
    Ev.Var = Var;
    Ev.SrcKind = classifyAssignSource(Init, Ev.SrcVar);
    Out.push_back(Ev);
  }

private:
  std::vector<LintEvent> &Out;
  const OriginSites &Sites;
  const std::set<const FuncDecl *> &MayFreeFns;

  LintEvent base(LintEvent::Kind K, const Expr *Site, bool Cond,
                 const Expr *Guard, bool GuardTrue) const {
    LintEvent Ev;
    Ev.K = K;
    Ev.Site = Site;
    Ev.Conditional = Cond;
    Ev.Guard = Cond ? Guard : nullptr;
    Ev.GuardTrue = GuardTrue;
    return Ev;
  }

  /// Walks only the subexpressions an lvalue position evaluates (the
  /// location computation), without treating the lvalue itself as a read.
  void emitLValueChildren(const Expr *E, bool Cond, const Expr *Guard,
                          bool GuardTrue) {
    E = stripCasts(E);
    switch (E->kind()) {
    case ExprKind::DeclRef:
      break;
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->op() == UnaryOp::Deref)
        emitExpr(U->operand(), Cond, Guard, GuardTrue);
      break;
    }
    case ExprKind::Index: {
      const auto *I = cast<IndexExpr>(E);
      emitExpr(I->base(), Cond, Guard, GuardTrue);
      emitExpr(I->index(), Cond, Guard, GuardTrue);
      break;
    }
    case ExprKind::Member: {
      const auto *M = cast<MemberExpr>(E);
      if (M->isArrow())
        emitExpr(M->base(), Cond, Guard, GuardTrue);
      else
        emitLValueChildren(M->base(), Cond, Guard, GuardTrue);
      break;
    }
    default:
      break;
    }
  }

  void emitAccesses(const Expr *E, bool Cond, const Expr *Guard,
                    bool GuardTrue) {
    if (Sites.Lookups.count(E)) {
      LintEvent Ev = base(LintEvent::Kind::Read, E, Cond, Guard, GuardTrue);
      Ev.Ptr = pointerOperand(E);
      Out.push_back(Ev);
    }
    if (Sites.Updates.count(E)) {
      LintEvent Ev = base(LintEvent::Kind::Write, E, Cond, Guard, GuardTrue);
      Ev.Ptr = pointerOperand(E);
      Out.push_back(Ev);
    }
  }

  void emitSpecial(const Expr *E, bool Cond, const Expr *Guard,
                   bool GuardTrue) {
    if (const auto *A = dyn_cast<AssignExpr>(E)) {
      if (const VarDecl *Var = trackedVar(A->target())) {
        LintEvent Ev =
            base(LintEvent::Kind::AssignVar, E, Cond, Guard, GuardTrue);
        Ev.Var = Var;
        if (A->op() == AssignOp::Assign)
          Ev.SrcKind = classifyAssignSource(A->value(), Ev.SrcVar);
        else
          Ev.SrcKind = LintEvent::Src::Unknown;
        Out.push_back(Ev);
      }
      return;
    }
    // Pointer increment/decrement reassigns a tracked variable.
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      if (U->op() == UnaryOp::PreInc || U->op() == UnaryOp::PreDec ||
          U->op() == UnaryOp::PostInc || U->op() == UnaryOp::PostDec) {
        if (const VarDecl *Var = trackedVar(U->operand())) {
          LintEvent Ev =
              base(LintEvent::Kind::AssignVar, E, Cond, Guard, GuardTrue);
          Ev.Var = Var;
          Ev.SrcKind = LintEvent::Src::Unknown;
          Out.push_back(Ev);
        }
      }
      return;
    }
    const auto *C = dyn_cast<CallExpr>(E);
    if (!C)
      return;
    switch (C->builtin()) {
    case BuiltinKind::Malloc:
    case BuiltinKind::Calloc: {
      LintEvent Ev = base(LintEvent::Kind::Alloc, E, Cond, Guard, GuardTrue);
      Ev.AllocSite = C->allocSiteId();
      Out.push_back(Ev);
      return;
    }
    case BuiltinKind::Free: {
      LintEvent Ev = base(LintEvent::Kind::Free, E, Cond, Guard, GuardTrue);
      Ev.Ptr = C->args().empty() ? nullptr : stripCasts(C->args()[0]);
      Out.push_back(Ev);
      return;
    }
    case BuiltinKind::None: {
      LintEvent Ev = base(LintEvent::Kind::Call, E, Cond, Guard, GuardTrue);
      Ev.Callee = C->directCallee();
      if (Ev.Callee)
        Ev.MayFree = MayFreeFns.count(Ev.Callee) != 0;
      else
        // Indirect call: conservatively may-free if any address-taken
        // function does (the set already closed over those).
        Ev.MayFree = !MayFreeFns.empty();
      Out.push_back(Ev);
      return;
    }
    default:
      return; // Other builtins neither allocate, free, nor call back.
    }
  }
};

/// Recursive-descent CFG construction with break/continue stacks.
class CFGBuilder {
public:
  CFGBuilder(LintCFG &C, const OriginSites &Sites,
             const std::set<const FuncDecl *> &MayFreeFns)
      : C(C), Sites(Sites), MayFreeFns(MayFreeFns) {}

  void run(const FuncDecl *Fn) {
    C.Fn = Fn;
    C.Blocks.resize(2); // entry, exit
    Cur = LintCFG::EntryBlock;
    buildStmt(Fn->body());
    edge(Cur, LintCFG::ExitBlock);
  }

private:
  LintCFG &C;
  const OriginSites &Sites;
  const std::set<const FuncDecl *> &MayFreeFns;
  unsigned Cur = 0;
  std::vector<unsigned> BreakTargets;
  std::vector<unsigned> ContinueTargets;

  unsigned newBlock() {
    C.Blocks.emplace_back();
    return static_cast<unsigned>(C.Blocks.size() - 1);
  }

  void edge(unsigned From, unsigned To) {
    C.Blocks[From].Succs.push_back(To);
    C.Blocks[To].Preds.push_back(From);
  }

  void branch(unsigned From, const Expr *Cond, unsigned TrueTo,
              unsigned FalseTo) {
    C.Blocks[From].BranchCond = Cond;
    C.Blocks[From].TrueSucc = TrueTo;
    C.Blocks[From].FalseSucc = FalseTo;
    edge(From, TrueTo);
    edge(From, FalseTo);
  }

  void emit(const Expr *E) {
    Linearizer L(C.Blocks[Cur].Events, Sites, MayFreeFns);
    L.emitExpr(E, /*Cond=*/false, nullptr, false);
  }

  void buildStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Compound:
      for (const Stmt *Child : cast<CompoundStmt>(S)->body())
        buildStmt(Child);
      return;
    case StmtKind::Expr:
      emit(cast<ExprStmt>(S)->expr());
      return;
    case StmtKind::Decl: {
      const VarDecl *Var = cast<DeclStmt>(S)->var();
      if (Var->init()) {
        Linearizer L(C.Blocks[Cur].Events, Sites, MayFreeFns);
        L.emitDeclInit(Var, Var->init(), /*Cond=*/false);
      }
      return;
    }
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      emit(If->cond());
      unsigned Then = newBlock();
      unsigned Else = If->elseStmt() ? newBlock() : ~0u;
      unsigned Join = newBlock();
      branch(Cur, If->cond(), Then, Else != ~0u ? Else : Join);
      Cur = Then;
      buildStmt(If->thenStmt());
      edge(Cur, Join);
      if (If->elseStmt()) {
        Cur = Else;
        buildStmt(If->elseStmt());
        edge(Cur, Join);
      }
      Cur = Join;
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      unsigned Header = newBlock();
      edge(Cur, Header);
      Cur = Header;
      emit(W->cond());
      unsigned Body = newBlock();
      unsigned Exit = newBlock();
      branch(Header, W->cond(), Body, Exit);
      BreakTargets.push_back(Exit);
      ContinueTargets.push_back(Header);
      Cur = Body;
      buildStmt(W->body());
      edge(Cur, Header);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = Exit;
      return;
    }
    case StmtKind::DoWhile: {
      const auto *D = cast<DoWhileStmt>(S);
      unsigned Body = newBlock();
      unsigned CondBlk = newBlock();
      unsigned Exit = newBlock();
      edge(Cur, Body);
      BreakTargets.push_back(Exit);
      ContinueTargets.push_back(CondBlk);
      Cur = Body;
      buildStmt(D->body());
      edge(Cur, CondBlk);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = CondBlk;
      emit(D->cond());
      branch(CondBlk, D->cond(), Body, Exit);
      Cur = Exit;
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(S);
      if (F->init())
        buildStmt(F->init());
      unsigned Header = newBlock();
      edge(Cur, Header);
      Cur = Header;
      unsigned Body = newBlock();
      unsigned Step = newBlock();
      unsigned Exit = newBlock();
      if (F->cond()) {
        emit(F->cond());
        branch(Header, F->cond(), Body, Exit);
      } else {
        edge(Header, Body);
      }
      BreakTargets.push_back(Exit);
      ContinueTargets.push_back(Step);
      Cur = Body;
      buildStmt(F->body());
      edge(Cur, Step);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = Step;
      if (F->step())
        emit(F->step());
      edge(Step, Header);
      Cur = Exit;
      return;
    }
    case StmtKind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->value())
        emit(R->value());
      edge(Cur, LintCFG::ExitBlock);
      Cur = newBlock(); // unreachable continuation
      return;
    }
    case StmtKind::Break:
      if (!BreakTargets.empty()) {
        edge(Cur, BreakTargets.back());
        Cur = newBlock();
      }
      return;
    case StmtKind::Continue:
      if (!ContinueTargets.empty()) {
        edge(Cur, ContinueTargets.back());
        Cur = newBlock();
      }
      return;
    }
  }
};

} // namespace

LintCFG LintCFG::build(const FuncDecl *Fn, const OriginSites &Sites,
                       const std::set<const FuncDecl *> &MayFreeFns) {
  LintCFG C;
  CFGBuilder(C, Sites, MayFreeFns).run(Fn);
  return C;
}

void LintCFG::linearizeInto(std::vector<LintEvent> &Out, const Expr *E,
                            const OriginSites &Sites,
                            const std::set<const FuncDecl *> &MayFreeFns) {
  Linearizer L(Out, Sites, MayFreeFns);
  L.emitExpr(E, /*Cond=*/false, nullptr, false);
}

std::set<const FuncDecl *>
vdga::computeMayFreeFunctions(const Program &P, const CallGraphAST &CG) {
  // Functions whose own body contains a free() call...
  std::set<const FuncDecl *> Direct;
  for (const FuncDecl *Fn : P.Functions) {
    if (!Fn->isDefined())
      continue;
    // A body-only scan: reuse the linearizer's traversal by walking the
    // statement tree manually (no origin map needed for this question).
    struct Scan {
      bool Found = false;
      void stmt(const Stmt *S) {
        switch (S->kind()) {
        case StmtKind::Compound:
          for (const Stmt *C : cast<CompoundStmt>(S)->body())
            stmt(C);
          return;
        case StmtKind::Expr:
          expr(cast<ExprStmt>(S)->expr());
          return;
        case StmtKind::Decl:
          if (const Expr *I = cast<DeclStmt>(S)->var()->init())
            expr(I);
          return;
        case StmtKind::If: {
          const auto *If = cast<IfStmt>(S);
          expr(If->cond());
          stmt(If->thenStmt());
          if (If->elseStmt())
            stmt(If->elseStmt());
          return;
        }
        case StmtKind::While: {
          const auto *W = cast<WhileStmt>(S);
          expr(W->cond());
          stmt(W->body());
          return;
        }
        case StmtKind::DoWhile: {
          const auto *D = cast<DoWhileStmt>(S);
          stmt(D->body());
          expr(D->cond());
          return;
        }
        case StmtKind::For: {
          const auto *F = cast<ForStmt>(S);
          if (F->init())
            stmt(F->init());
          if (F->cond())
            expr(F->cond());
          if (F->step())
            expr(F->step());
          stmt(F->body());
          return;
        }
        case StmtKind::Return:
          if (const Expr *V = cast<ReturnStmt>(S)->value())
            expr(V);
          return;
        case StmtKind::Break:
        case StmtKind::Continue:
          return;
        }
      }
      void expr(const Expr *E) {
        switch (E->kind()) {
        case ExprKind::Call: {
          const auto *C = cast<CallExpr>(E);
          if (C->builtin() == BuiltinKind::Free)
            Found = true;
          expr(C->callee());
          for (const Expr *A : C->args())
            expr(A);
          return;
        }
        case ExprKind::Unary:
          expr(cast<UnaryExpr>(E)->operand());
          return;
        case ExprKind::Binary:
          expr(cast<BinaryExpr>(E)->lhs());
          expr(cast<BinaryExpr>(E)->rhs());
          return;
        case ExprKind::Assign:
          expr(cast<AssignExpr>(E)->target());
          expr(cast<AssignExpr>(E)->value());
          return;
        case ExprKind::Index:
          expr(cast<IndexExpr>(E)->base());
          expr(cast<IndexExpr>(E)->index());
          return;
        case ExprKind::Member:
          expr(cast<MemberExpr>(E)->base());
          return;
        case ExprKind::Cast:
          expr(cast<CastExpr>(E)->operand());
          return;
        case ExprKind::Conditional:
          expr(cast<ConditionalExpr>(E)->cond());
          expr(cast<ConditionalExpr>(E)->thenExpr());
          expr(cast<ConditionalExpr>(E)->elseExpr());
          return;
        default:
          return;
        }
      }
    } S;
    S.stmt(Fn->body());
    if (S.Found)
      Direct.insert(Fn);
  }
  // ...plus everything that may (transitively) call one of them. The AST
  // call graph's callees() is already transitive.
  std::set<const FuncDecl *> Result = Direct;
  for (const FuncDecl *Fn : P.Functions) {
    if (!Fn->isDefined() || Result.count(Fn))
      continue;
    for (const FuncDecl *Callee : CG.callees(Fn))
      if (Direct.count(Callee)) {
        Result.insert(Fn);
        break;
      }
  }
  return Result;
}
