//===- lint/AliasOracle.cpp -----------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/AliasOracle.h"

#include <algorithm>

using namespace vdga;

AliasOracle::AliasOracle(const Graph &G, const PathTable &Paths,
                         const PairTable &PT, const PointsToResult &Facts,
                         const PointsToResult &CalleeSource)
    : G(G), Paths(Paths), PT(PT), Facts(&Facts) {
  computeReachableFromSolver(CalleeSource);
}

AliasOracle::AliasOracle(const Graph &G, const PathTable &Paths,
                         const PairTable &PT, const SteensgaardResult &Steens,
                         const CallGraphAST &CG, const Program &P)
    : G(G), Paths(Paths), PT(PT), Steens(&Steens) {
  computeReachableFromAST(CG, P);
}

std::vector<PathId> AliasOracle::outputReferents(OutputId Out) const {
  std::vector<PathId> R;
  if (Facts) {
    R = Facts->pointerReferents(Out, PT);
  } else {
    for (BaseLocId B : Steens->pointees(Out))
      R.push_back(Paths.basePath(B));
  }
  std::sort(R.begin(), R.end(),
            [](PathId A, PathId B) { return index(A) < index(B); });
  R.erase(std::unique(R.begin(), R.end()), R.end());
  return R;
}

std::vector<PathId> AliasOracle::valueReferents(const Expr *E,
                                                bool &Known) const {
  OutputId Out = G.exprValue(E);
  if (Out == InvalidId) {
    Known = false;
    return {};
  }
  Known = true;
  return outputReferents(Out);
}

std::vector<PathId> AliasOracle::accessReferents(NodeId N) const {
  return outputReferents(G.producerOf(N, 0));
}

void AliasOracle::computeReachableFromSolver(
    const PointsToResult &CalleeSource) {
  // Fixpoint from the bootstrap region (Owner == null, always executed)
  // over the solver-discovered call graph; mirrors the diagnostics pass.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      const Node &Nd = G.node(N);
      if (Nd.Kind != NodeKind::Call || !reachable(Nd.Owner))
        continue;
      for (const FunctionInfo *FI : CalleeSource.callees(N))
        if (FI->Fn && Reachable.insert(FI->Fn).second)
          Changed = true;
    }
  }
}

void AliasOracle::computeReachableFromAST(const CallGraphAST &CG,
                                          const Program &P) {
  // Without a solver call graph, reach from main via the conservative
  // AST relation (callees() is transitive and routes indirect calls to
  // every address-taken function). A program without main is treated as
  // a library: everything is reachable.
  const FuncDecl *Main = P.findFunction("main");
  if (!Main) {
    for (const FuncDecl *Fn : P.Functions)
      Reachable.insert(Fn);
    return;
  }
  Reachable.insert(Main);
  for (const FuncDecl *Callee : CG.callees(Main))
    Reachable.insert(Callee);
}
