//===- lint/CFG.h - Per-function statement CFG for lint passes --*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint engine's control-flow representation. The VDG deliberately
/// erases predicates (Section 2: "values from both branches propagate"),
/// which is exactly right for the alias analyses but too coarse for
/// flow-sensitive linting — so each function body is lowered once into a
/// statement CFG whose blocks carry *lint events*: the allocation, free,
/// call, memory-access and pointer-assignment facts the passes' transfer
/// functions consume, in evaluation order.
///
/// Memory accesses are not re-derived from the AST: the builder links
/// every Lookup/Update node to its source expression (`Node::Origin`),
/// and `OriginSites` inverts that map, so an access event's referent sets
/// come straight from whichever alias tier is loaded — the same sites the
/// solvers and the soundness oracle reason about.
///
/// Short-circuit RHS operands and conditional-expression arms execute
/// under a guard the statement CFG does not split into blocks; their
/// events carry `Conditional` (the dataflow runner applies them weakly)
/// plus the guarding condition, so passes can still refine (`p && p->f`
/// does not warn) while linearization can never manufacture a wrong
/// must-fact.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_LINT_CFG_H
#define VDGA_LINT_CFG_H

#include "frontend/AST.h"
#include "vdg/Graph.h"

#include <map>
#include <set>
#include <vector>

namespace vdga {

class CallGraphAST;

/// Origin-indexed access sites: for each source expression, the VDG
/// Lookup (read) and Update (write) nodes implementing it, in node-id
/// order. One expression can own several (a compound assignment has a
/// read and a write; builtin string operations have both).
struct OriginSites {
  std::map<const Expr *, std::vector<NodeId>> Lookups;
  std::map<const Expr *, std::vector<NodeId>> Updates;

  explicit OriginSites(const Graph &G);
};

/// One abstract-machine step a lint pass can observe.
struct LintEvent {
  enum class Kind : uint8_t {
    Alloc,     ///< malloc/calloc; Site is the CallExpr.
    Free,      ///< free(Ptr); Site is the CallExpr.
    Call,      ///< Non-builtin call; Callee when direct, MayFree when any
               ///< possible callee transitively frees.
    Read,      ///< Memory read at Site (has Lookup nodes); Ptr is the
               ///< dereferenced pointer expression, null when direct.
    Write,     ///< Memory write at Site (has Update nodes); Ptr as above.
    AssignVar, ///< Var = <SrcKind>; tracked scalar pointer locals only.
  };

  /// How an AssignVar's right-hand side classifies.
  enum class Src : uint8_t {
    Null,    ///< Literal 0 (possibly cast).
    Fresh,   ///< malloc/calloc result.
    Addr,    ///< &lvalue or a string literal: definitely non-null.
    Copy,    ///< Another tracked variable (SrcVar).
    Unknown, ///< Anything else.
  };

  Kind K = Kind::Read;
  const Expr *Site = nullptr;
  const Expr *Ptr = nullptr;
  const VarDecl *Var = nullptr;
  const VarDecl *SrcVar = nullptr;
  const FuncDecl *Callee = nullptr; ///< Call: direct callee, else null.
  Src SrcKind = Src::Unknown;
  unsigned AllocSite = 0; ///< Alloc: the allocation-site ordinal.
  bool MayFree = false;   ///< Call: some possible callee may free.
  /// True when the event executes under a short-circuit guard or a ?:
  /// arm: the dataflow runner applies its transfer weakly (merged with
  /// the unguarded state) so no wrong must-fact can arise.
  bool Conditional = false;
  /// When Conditional: the dominating condition and the polarity under
  /// which the event runs, for lattice refinement.
  const Expr *Guard = nullptr;
  bool GuardTrue = false;
};

/// One basic block: events in evaluation order plus ordered edges. A
/// block ending in a branch records the condition and its polarized
/// successors so forward passes can refine along the edges.
struct LintBlock {
  std::vector<LintEvent> Events;
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
  const Expr *BranchCond = nullptr;
  unsigned TrueSucc = ~0u;
  unsigned FalseSucc = ~0u;
};

/// The statement CFG of one defined function. Block 0 is the entry,
/// block 1 the exit; every return/fallthrough edge targets the exit.
class LintCFG {
public:
  static constexpr unsigned EntryBlock = 0;
  static constexpr unsigned ExitBlock = 1;

  const FuncDecl *Fn = nullptr;
  std::vector<LintBlock> Blocks;

  /// Lowers \p Fn's body. \p MayFreeFns marks functions that may
  /// (transitively) call free, for Call events' MayFree flag.
  static LintCFG build(const FuncDecl *Fn, const OriginSites &Sites,
                       const std::set<const FuncDecl *> &MayFreeFns);

  /// Linearizes one expression outside any function (global
  /// initializers): the bootstrap event list the whole-program passes
  /// fold in.
  static void linearizeInto(std::vector<LintEvent> &Out, const Expr *E,
                            const OriginSites &Sites,
                            const std::set<const FuncDecl *> &MayFreeFns);
};

/// Functions whose execution may (transitively, via the AST call graph's
/// conservative indirect-call edges) reach a free(). Deterministic: keyed
/// by declaration order.
std::set<const FuncDecl *> computeMayFreeFunctions(const Program &P,
                                                   const CallGraphAST &CG);

} // namespace vdga

#endif // VDGA_LINT_CFG_H
