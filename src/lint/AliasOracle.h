//===- lint/AliasOracle.h - Uniform alias-tier facade -----------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One interface over the three precision tiers the governance ladder can
/// serve, so every lint pass is written once and parameterized by the
/// tier — the paper's client-level methodology made literal. Backed
/// either by a `PointsToResult` (the CI solution, or the CS solution with
/// assumption sets stripped — sound, since stripping only widens) or by a
/// `SteensgaardResult` (field-insensitive: pointees come back as whole
/// base objects, rendered as base paths).
///
/// Referent vectors are returned sorted by path id: pair arrival order is
/// schedule-dependent, and the determinism contract (identical findings
/// across strategies and job counts) must not lean on it.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_LINT_ALIASORACLE_H
#define VDGA_LINT_ALIASORACLE_H

#include "baseline/SteensgaardAnalysis.h"
#include "frontend/CallGraphAST.h"
#include "pointsto/Solver.h"

#include <set>
#include <vector>

namespace vdga {

class AliasOracle {
public:
  /// CI or stripped-CS backing. \p Facts answers referent queries;
  /// \p CalleeSource supplies the discovered call graph (always the
  /// complete CI result — for the CS tier too, since stripAssumptions
  /// drops the callee index and CI's callees over-approximate CS's).
  AliasOracle(const Graph &G, const PathTable &Paths, const PairTable &PT,
              const PointsToResult &Facts,
              const PointsToResult &CalleeSource);

  /// Steensgaard backing; reachability comes from the conservative AST
  /// call graph instead of solver-discovered callees.
  AliasOracle(const Graph &G, const PathTable &Paths, const PairTable &PT,
              const SteensgaardResult &Steens, const CallGraphAST &CG,
              const Program &P);

  /// Referents (empty-offset pairs) of the value built for \p E.
  /// \p Known is false when \p E never produced a value output.
  std::vector<PathId> valueReferents(const Expr *E, bool &Known) const;

  /// Referents of the location input of access node \p N (a Lookup or
  /// Update).
  std::vector<PathId> accessReferents(NodeId N) const;

  bool isIndirect(NodeId N) const {
    const Node &Nd = G.node(N);
    return Nd.IndirectAccess;
  }

  /// True when \p Fn may execute (null = the bootstrap region, always).
  bool reachable(const FuncDecl *Fn) const {
    return Fn == nullptr || Reachable.count(Fn) != 0;
  }

  /// True when referent paths distinguish fields and elements. The
  /// Steensgaard backing collapses every referent to its whole base
  /// object, so a single-referent answer there does NOT mean a single
  /// storage location — passes must not strong-update on it (an
  /// element write would wrongly kill its siblings' liveness).
  bool fieldSensitive() const { return Facts != nullptr; }

private:
  const Graph &G;
  const PathTable &Paths;
  const PairTable &PT;
  const PointsToResult *Facts = nullptr;
  const SteensgaardResult *Steens = nullptr;
  std::set<const FuncDecl *> Reachable;

  std::vector<PathId> outputReferents(OutputId Out) const;
  void computeReachableFromSolver(const PointsToResult &CalleeSource);
  void computeReachableFromAST(const CallGraphAST &CG, const Program &P);
};

} // namespace vdga

#endif // VDGA_LINT_ALIASORACLE_H
