//===- clients/DefUse.h - Store def/use client ------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's other canonical client (Section 3.2): def/use chains
/// through memory. For every lookup (memory read), which updates (memory
/// writes) may have produced the value it observes?
///
/// Two ingredients combine:
///   * *reachability* — the update's store output flows into the lookup's
///     store input along VDG store edges (through merges, calls and
///     returns, using the call graph the solver discovered), and
///   * *aliasing* — some location the update may write overlaps (`dom` in
///     either direction) some location the lookup may read.
///
/// The result is a may def/use relation: exactly what a dependence-based
/// optimizer consumes, and precisely the client whose quality Figure 4's
/// per-operation location counts determine.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CLIENTS_DEFUSE_H
#define VDGA_CLIENTS_DEFUSE_H

#include "pointsto/Solver.h"

#include <map>
#include <vector>

namespace vdga {

/// May def/use chains over one points-to solution.
class DefUseInfo {
public:
  /// Update nodes that may define a value observed by lookup \p Read.
  const std::vector<NodeId> &defsFor(NodeId Read) const {
    auto It = Defs.find(Read);
    return It == Defs.end() ? Empty : It->second;
  }

  /// Lookup nodes that may observe the value written by \p Write.
  const std::vector<NodeId> &usesFor(NodeId Write) const {
    auto It = Uses.find(Write);
    return It == Uses.end() ? Empty : It->second;
  }

  uint64_t totalEdges() const { return Edges; }

private:
  friend DefUseInfo computeDefUse(const Graph &, const PointsToResult &,
                                  const PairTable &, const PathTable &);
  std::map<NodeId, std::vector<NodeId>> Defs;
  std::map<NodeId, std::vector<NodeId>> Uses;
  uint64_t Edges = 0;
  static const std::vector<NodeId> Empty;
};

/// Computes the may def/use relation for every lookup in the graph.
DefUseInfo computeDefUse(const Graph &G, const PointsToResult &R,
                         const PairTable &PT, const PathTable &Paths);

} // namespace vdga

#endif // VDGA_CLIENTS_DEFUSE_H
