//===- clients/ModRef.h - Mod/ref client analysis ---------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kind of client the paper evaluates its analyses through (Section
/// 3.2): interprocedural mod/ref — for every function, the set of abstract
/// locations it (or anything it calls) may read or write through memory
/// operations. Built on top of a points-to solution and the call graph the
/// solver discovered; the precision of the location sets at lookup/update
/// nodes feeds straight through, which is why Figure 4's statistics are
/// the paper's headline.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CLIENTS_MODREF_H
#define VDGA_CLIENTS_MODREF_H

#include "pointsto/Solver.h"

#include <map>
#include <set>

namespace vdga {

/// Per-function transitive mod/ref location sets.
struct ModRefInfo {
  std::map<const FuncDecl *, std::set<PathId>> Mod;
  std::map<const FuncDecl *, std::set<PathId>> Ref;

  bool mayMod(const FuncDecl *Fn, PathId Loc, const PathTable &Paths) const;
  bool mayRef(const FuncDecl *Fn, PathId Loc, const PathTable &Paths) const;
};

/// Computes transitive mod/ref sets from a points-to solution, iterating
/// over the solver-discovered call graph to a fixed point (handles
/// recursion).
ModRefInfo computeModRef(const Graph &G, const PointsToResult &R,
                         const PairTable &PT, const PathTable &Paths);

} // namespace vdga

#endif // VDGA_CLIENTS_MODREF_H
