//===- clients/ModRef.cpp --------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "clients/ModRef.h"

using namespace vdga;

bool ModRefInfo::mayMod(const FuncDecl *Fn, PathId Loc,
                        const PathTable &Paths) const {
  auto It = Mod.find(Fn);
  if (It == Mod.end())
    return false;
  for (PathId W : It->second)
    if (Paths.dom(W, Loc) || Paths.dom(Loc, W))
      return true;
  return false;
}

bool ModRefInfo::mayRef(const FuncDecl *Fn, PathId Loc,
                        const PathTable &Paths) const {
  auto It = Ref.find(Fn);
  if (It == Ref.end())
    return false;
  for (PathId R : It->second)
    if (Paths.dom(R, Loc) || Paths.dom(Loc, R))
      return true;
  return false;
}

ModRefInfo vdga::computeModRef(const Graph &G, const PointsToResult &R,
                               const PairTable &PT, const PathTable &Paths) {
  (void)Paths; // Kept for signature symmetry with the query methods.
  ModRefInfo Info;

  // Direct effects: locations referenced by each function's own memory
  // operations.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Node = G.node(N);
    if (Node.Kind != NodeKind::Lookup && Node.Kind != NodeKind::Update)
      continue;
    if (!Node.Owner)
      continue; // Bootstrap effects are not attributed to a function.
    auto Locs = R.pointerReferents(G.producerOf(N, 0), PT);
    auto &Set = Node.Kind == NodeKind::Update ? Info.Mod[Node.Owner]
                                              : Info.Ref[Node.Owner];
    Set.insert(Locs.begin(), Locs.end());
  }

  // Transitive closure over the discovered call graph.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      const Node &Node = G.node(N);
      if (Node.Kind != NodeKind::Call || !Node.Owner)
        continue;
      for (const FunctionInfo *Callee : R.callees(N)) {
        for (PathId Loc : Info.Mod[Callee->Fn])
          if (Info.Mod[Node.Owner].insert(Loc).second)
            Changed = true;
        for (PathId Loc : Info.Ref[Callee->Fn])
          if (Info.Ref[Node.Owner].insert(Loc).second)
            Changed = true;
      }
    }
  }
  return Info;
}
