//===- clients/DefUse.cpp --------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "clients/DefUse.h"

#include <set>

using namespace vdga;

const std::vector<NodeId> DefUseInfo::Empty;

namespace {

/// Fixed-point propagation of "which update nodes flowed into this store
/// output", along intraprocedural store edges plus the discovered call
/// graph (call store -> entry formal; return store -> call store output).
class StoreReach {
public:
  StoreReach(const Graph &G, const PointsToResult &R) : G(G), R(R) {
    Reach.resize(G.numOutputs());
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (NodeId N = 0; N < G.numNodes(); ++N)
        Changed |= transfer(N);
    }
  }

  const std::set<NodeId> &at(OutputId O) const { return Reach[O]; }

private:
  bool mergeInto(OutputId Dst, const std::set<NodeId> &Src) {
    size_t Before = Reach[Dst].size();
    Reach[Dst].insert(Src.begin(), Src.end());
    return Reach[Dst].size() != Before;
  }

  bool transfer(NodeId N) {
    const Node &Node = G.node(N);
    switch (Node.Kind) {
    case NodeKind::Update: {
      OutputId Out = G.outputOf(N);
      bool Changed = mergeInto(Out, Reach[G.producerOf(N, 1)]);
      if (Reach[Out].insert(N).second)
        Changed = true;
      return Changed;
    }
    case NodeKind::Merge: {
      OutputId Out = G.outputOf(N);
      if (G.output(Out).Kind != ValueKind::Store)
        return false;
      bool Changed = false;
      for (size_t I = 0; I < Node.Inputs.size(); ++I) {
        OutputId In = G.producerOf(N, static_cast<unsigned>(I));
        if (In != InvalidId)
          Changed |= mergeInto(Out, Reach[In]);
      }
      return Changed;
    }
    case NodeKind::Call: {
      unsigned StoreIn = static_cast<unsigned>(Node.Inputs.size()) - 1;
      OutputId StoreOut = G.outputOf(N, Node.HasResult ? 1 : 0);
      const auto &Callees = R.callees(N);
      bool Changed = false;
      if (Callees.empty()) {
        // Unknown or undefined callee: the store passes through.
        Changed |= mergeInto(StoreOut, Reach[G.producerOf(N, StoreIn)]);
        return Changed;
      }
      for (const FunctionInfo *Info : Callees) {
        // Caller store flows into the callee's store formal...
        OutputId Formal = G.outputOf(Info->EntryNode, Info->NumParams);
        Changed |= mergeInto(Formal, Reach[G.producerOf(N, StoreIn)]);
        // ...and the callee's return store flows back to this call.
        const auto &Ret = G.node(Info->ReturnNode);
        unsigned RetStoreIdx = Ret.HasValue ? 1 : 0;
        if (RetStoreIdx < Ret.Inputs.size())
          Changed |= mergeInto(
              StoreOut,
              Reach[G.producerOf(Info->ReturnNode, RetStoreIdx)]);
      }
      return Changed;
    }
    default:
      return false;
    }
  }

  const Graph &G;
  const PointsToResult &R;
  std::vector<std::set<NodeId>> Reach;
};

} // namespace

DefUseInfo vdga::computeDefUse(const Graph &G, const PointsToResult &R,
                               const PairTable &PT, const PathTable &Paths) {
  StoreReach Reach(G, R);
  DefUseInfo Info;

  // Cache each update's write set.
  std::map<NodeId, std::vector<PathId>> WriteLocs;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    if (G.node(N).Kind == NodeKind::Update)
      WriteLocs.emplace(N, R.pointerReferents(G.producerOf(N, 0), PT));

  for (NodeId L = 0; L < G.numNodes(); ++L) {
    if (G.node(L).Kind != NodeKind::Lookup)
      continue;
    std::vector<PathId> ReadLocs =
        R.pointerReferents(G.producerOf(L, 0), PT);
    if (ReadLocs.empty())
      continue;
    for (NodeId U : Reach.at(G.producerOf(L, 1))) {
      const auto &Writes = WriteLocs[U];
      bool Overlap = false;
      for (PathId RL : ReadLocs) {
        for (PathId WL : Writes)
          if (Paths.dom(RL, WL) || Paths.dom(WL, RL)) {
            Overlap = true;
            break;
          }
        if (Overlap)
          break;
      }
      if (!Overlap)
        continue;
      Info.Defs[L].push_back(U);
      Info.Uses[U].push_back(L);
      ++Info.Edges;
    }
  }
  return Info;
}
