//===- fuzz/Generator.cpp -------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"
#include "fuzz/Rng.h"

#include <algorithm>
#include <cassert>

using namespace vdga;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

void renderStmt(const GenStmt &S, unsigned Indent, std::string &Out) {
  std::string Pad(2 * Indent, ' ');
  if (!S.isBlock()) {
    Out += Pad + S.Line + "\n";
    return;
  }
  Out += Pad + S.Head + "\n";
  for (const GenStmt &C : S.Body)
    renderStmt(C, Indent + 1, Out);
  Out += Pad + "}\n";
}

} // namespace

std::string GenProgram::render() const {
  std::string Out;
  for (const std::string &L : Prologue)
    Out += L + "\n";
  for (const GenFunc &F : Funcs) {
    Out += "\n" + F.Header + "\n";
    for (const std::string &L : F.Prologue)
      Out += "  " + L + "\n";
    for (const GenStmt &S : F.Body)
      renderStmt(S, 1, Out);
    if (!F.Epilogue.empty())
      Out += "  " + F.Epilogue + "\n";
    Out += "}\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Program generation
//===----------------------------------------------------------------------===//

namespace {

/// What one function body can name. Type-correct generation only ever
/// combines entries of the matching list.
struct Env {
  std::vector<std::string> Ints;       ///< Assignable int variables.
  std::vector<std::string> Ptrs;       ///< int* variables.
  std::vector<std::string> PtrPtrs;    ///< int** variables.
  std::vector<std::string> Structs;    ///< struct S0 values.
  std::vector<std::string> StructPtrs; ///< struct S0* variables.
  std::vector<std::string> Arrays;     ///< int[4] variables.
  std::vector<std::string> FnPtrs;     ///< int (*)(int) variables.
  std::vector<std::string> LoopVars;   ///< Read-only loop counters.
  std::vector<std::string> SimpleFns;  ///< Callable int f(int).
  std::vector<std::string> PtrFns;     ///< Callable int g(int *, int).
  std::string SelfName;                ///< Own name when self-calls are ok.
  bool HasParamN = false;              ///< "n" bounds self-recursion.
};

class Generator {
public:
  Generator(const FuzzOptions &O) : O(O), R(O.Seed) {}

  GenProgram run();

private:
  const std::string &pick(const std::vector<std::string> &V) {
    assert(!V.empty());
    return V[R.below(V.size())];
  }

  std::string intConst();
  std::string intLValue(const Env &E);
  std::string intExpr(const Env &E, unsigned Depth);
  std::string ptrExpr(const Env &E);
  std::string structPtrExpr(const Env &E);
  std::string callExpr(const Env &E, unsigned Depth);
  std::string heapInitLine(const Env &E, const std::string &Target);

  GenStmt leaf(std::string Line) {
    GenStmt S;
    S.Line = std::move(Line);
    return S;
  }
  GenStmt stmt(const Env &E, unsigned BlockDepth);
  std::vector<GenStmt> block(const Env &E, unsigned BlockDepth);

  GenFunc makeHelper(unsigned Index);
  GenFunc makeMain();
  Env baseEnv() const;
  void declareLocals(Env &E, GenFunc &F);

  FuzzOptions O;
  Rng R;
  std::vector<std::string> SimpleFns;
  std::vector<std::string> PtrFns;
};

std::string Generator::intConst() {
  // Mostly small values; occasionally large magnitudes to exercise the
  // wrapping arithmetic paths.
  if (R.chance(10))
    return std::to_string(R.range(100000, 2000000000));
  return std::to_string(R.range(-8, 9));
}

Env Generator::baseEnv() const {
  Env E;
  // Globals are zero-initialized value types, so reads are always defined.
  E.Ints = {"g0", "g1"};
  E.Arrays = {"garr"};
  E.SimpleFns = SimpleFns;
  E.PtrFns = PtrFns;
  return E;
}

std::string Generator::intLValue(const Env &E) {
  // Collect the forms the env affords, then pick one uniformly.
  std::vector<std::string> Forms = E.Ints;
  for (const std::string &P : E.Ptrs)
    Forms.push_back("*" + P);
  for (const std::string &PP : E.PtrPtrs)
    Forms.push_back("**" + PP);
  for (const std::string &S : E.Structs) {
    Forms.push_back(S + ".a");
    Forms.push_back(S + ".b");
    Forms.push_back("*" + S + ".p");
  }
  for (const std::string &SP : E.StructPtrs) {
    Forms.push_back(SP + "->a");
    Forms.push_back(SP + "->b");
    Forms.push_back("*" + SP + "->p");
    Forms.push_back(SP + "->next->" + (R.chance(50) ? "a" : "b"));
  }
  for (const std::string &A : E.Arrays)
    Forms.push_back(A + "[" + std::to_string(R.below(3)) + "]");
  return pick(Forms);
}

std::string Generator::intExpr(const Env &E, unsigned Depth) {
  if (Depth == 0 || R.chance(35)) {
    // Leaves: constants, variables, loop counters.
    unsigned Which = static_cast<unsigned>(R.below(3));
    if (Which == 0 || (E.Ints.empty() && E.LoopVars.empty()))
      return intConst();
    if (Which == 1 && !E.LoopVars.empty())
      return pick(E.LoopVars);
    return intLValue(E);
  }
  unsigned Which = static_cast<unsigned>(R.below(10));
  std::string A = intExpr(E, Depth - 1);
  std::string B = intExpr(E, Depth - 1);
  switch (Which) {
  case 0:
  case 1:
    return "(" + A + " + " + B + ")";
  case 2:
    return "(" + A + " - " + B + ")";
  case 3:
    return "(" + A + " * " + std::to_string(R.range(-5, 5)) + ")";
  case 4:
    // Nonzero constant divisors keep division well-defined.
    return "(" + A + " / " + std::to_string(R.range(2, 9)) + ")";
  case 5:
    return "(" + A + " % " + std::to_string(R.range(2, 9)) + ")";
  case 6:
    return "(" + A + " < " + B + ")";
  case 7:
    return "(" + A + " == " + B + ")";
  case 8:
    if (!E.SimpleFns.empty() || !E.FnPtrs.empty())
      return callExpr(E, Depth - 1);
    return "(" + A + " + " + B + ")";
  default:
    return "(" + A + " > " + B + " ? " + A + " : " + B + ")";
  }
}

std::string Generator::callExpr(const Env &E, unsigned Depth) {
  std::string Arg = intExpr(E, Depth);
  bool ViaPtr = !E.FnPtrs.empty() && (E.SimpleFns.empty() || R.chance(40));
  if (ViaPtr) {
    const std::string &FP = pick(E.FnPtrs);
    return (R.chance(50) ? FP : "(*" + FP + ")") + "(" + Arg + ")";
  }
  return pick(E.SimpleFns) + "(" + Arg + ")";
}

std::string Generator::ptrExpr(const Env &E) {
  std::vector<std::string> Forms;
  for (const std::string &I : E.Ints)
    Forms.push_back("&" + I);
  for (const std::string &P : E.Ptrs)
    Forms.push_back(P);
  for (const std::string &PP : E.PtrPtrs)
    Forms.push_back("*" + PP);
  for (const std::string &S : E.Structs)
    Forms.push_back(S + ".p");
  for (const std::string &SP : E.StructPtrs)
    Forms.push_back(SP + "->p");
  assert(!Forms.empty());
  return pick(Forms);
}

std::string Generator::structPtrExpr(const Env &E) {
  std::vector<std::string> Forms;
  for (const std::string &S : E.Structs)
    Forms.push_back("&" + S);
  for (const std::string &SP : E.StructPtrs) {
    Forms.push_back(SP);
    Forms.push_back(SP + "->next");
  }
  for (const std::string &S : E.Structs)
    Forms.push_back(S + ".next");
  assert(!Forms.empty());
  return pick(Forms);
}

std::string Generator::heapInitLine(const Env &E, const std::string &Target) {
  // Allocation plus full field initialization as one atomic line, so the
  // reducer cannot strand an uninitialized heap object. The initializers
  // must not read through Target itself: its fields are undefined until
  // this line completes ("sp0->p = sp0->p" was a fuzzer-found generator
  // bug).
  Env Src = E;
  Src.StructPtrs.erase(
      std::remove(Src.StructPtrs.begin(), Src.StructPtrs.end(), Target),
      Src.StructPtrs.end());
  std::string L = Target + " = (struct S0 *) malloc(sizeof(struct S0)); ";
  L += Target + "->a = " + intConst() + "; ";
  L += Target + "->b = " + intConst() + "; ";
  L += Target + "->p = " + ptrExpr(Src) + "; ";
  L += Target + "->next = " + (R.chance(60) && !E.StructPtrs.empty()
                                   ? pick(E.StructPtrs)
                                   : Target) +
       ";";
  return L;
}

GenStmt Generator::stmt(const Env &E, unsigned BlockDepth) {
  // Weighted statement-kind choice; block kinds only below the nesting
  // budget, feature kinds only when the env affords them.
  for (;;) {
    switch (R.below(12)) {
    case 0:
    case 1: { // Integer assignment, sometimes compound.
      std::string LHS = intLValue(E);
      std::string RHS = intExpr(E, O.MaxExprDepth);
      static const char *Ops[] = {"=", "+=", "-=", "*=", "/="};
      const char *Op = R.chance(25) ? Ops[1 + R.below(4)] : Ops[0];
      if (Op[0] == '/')
        RHS = std::to_string(R.range(2, 9));
      return leaf(LHS + " " + Op + " " + RHS + ";");
    }
    case 2: { // Pointer reassignment.
      if (!O.Pointers || (E.Ptrs.empty() && E.Structs.empty() &&
                          E.StructPtrs.empty()))
        continue;
      std::vector<std::string> Targets = E.Ptrs;
      for (const std::string &S : E.Structs)
        Targets.push_back(S + ".p");
      for (const std::string &SP : E.StructPtrs)
        Targets.push_back(SP + "->p");
      if (Targets.empty())
        continue;
      return leaf(pick(Targets) + " = " + ptrExpr(E) + ";");
    }
    case 3: { // Pointer-to-pointer reassignment.
      if (!O.Pointers || E.PtrPtrs.empty() || E.Ptrs.empty())
        continue;
      return leaf(pick(E.PtrPtrs) + " = &" + pick(E.Ptrs) + ";");
    }
    case 4: { // Struct-pointer reassignment.
      if (!O.Aggregates || (E.StructPtrs.empty() && E.Structs.empty()))
        continue;
      std::vector<std::string> Targets = E.StructPtrs;
      for (const std::string &S : E.Structs)
        Targets.push_back(S + ".next");
      for (const std::string &SP : E.StructPtrs)
        Targets.push_back(SP + "->next");
      if (Targets.empty())
        continue;
      return leaf(pick(Targets) + " = " + structPtrExpr(E) + ";");
    }
    case 5: { // Fresh heap object into an existing struct pointer.
      if (!O.Heap || !O.Aggregates || E.StructPtrs.empty())
        continue;
      return leaf(heapInitLine(E, pick(E.StructPtrs)));
    }
    case 6: { // Function-pointer retarget.
      if (!O.FunctionPointers || E.FnPtrs.empty() || E.SimpleFns.empty())
        continue;
      return leaf(pick(E.FnPtrs) + " = " + pick(E.SimpleFns) + ";");
    }
    case 7: { // Call statement (direct, by pointer, or via a pointer arg).
      if (!E.PtrFns.empty() && !E.Ptrs.empty() && R.chance(40))
        return leaf(intLValue(E) + " = " + pick(E.PtrFns) + "(" +
                    ptrExpr(E) + ", " + intExpr(E, 1) + ");");
      if (E.SimpleFns.empty() && E.FnPtrs.empty())
        continue;
      return leaf(intLValue(E) + " = " + callExpr(E, 1) + ";");
    }
    case 8: // Observable output.
      return leaf("printf(\"%d\\n\", " + intExpr(E, 2) + ");");
    case 9: { // if / if-else.
      if (BlockDepth >= O.MaxBlockDepth)
        continue;
      GenStmt S;
      S.Head = "if (" + intExpr(E, 2) + " < " + intExpr(E, 2) + ") {";
      S.Body = block(E, BlockDepth + 1);
      return S;
    }
    case 10: { // Counter-bounded for loop.
      if (BlockDepth >= O.MaxBlockDepth)
        continue;
      std::string LV = "lv" + std::to_string(BlockDepth);
      GenStmt S;
      S.Head = "for (" + LV + " = 0; " + LV + " < " +
               std::to_string(R.range(2, 6)) + "; " + LV + " = " + LV +
               " + 1) {";
      Env Inner = E;
      Inner.LoopVars.push_back(LV);
      S.Body = block(Inner, BlockDepth + 1);
      return S;
    }
    default: { // Counter-bounded while loop.
      if (BlockDepth >= O.MaxBlockDepth)
        continue;
      std::string LV = "lv" + std::to_string(BlockDepth);
      GenStmt S;
      S.Head = "while (" + LV + " < " + std::to_string(R.range(2, 5)) +
               ") {";
      Env Inner = E;
      Inner.LoopVars.push_back(LV);
      S.Body = block(Inner, BlockDepth + 1);
      S.Body.push_back(leaf(LV + " = " + LV + " + 1;"));
      // The counter must be reset before entry, as one atomic pair.
      GenStmt Wrap;
      Wrap.Head = "if (1) {";
      Wrap.Body.push_back(leaf(LV + " = 0;"));
      Wrap.Body.push_back(std::move(S));
      return Wrap;
    }
    }
  }
}

std::vector<GenStmt> Generator::block(const Env &E, unsigned BlockDepth) {
  std::vector<GenStmt> Out;
  unsigned N = 1 + static_cast<unsigned>(R.below(O.MaxStmtsPerBlock));
  for (unsigned I = 0; I < N; ++I)
    Out.push_back(stmt(E, BlockDepth));
  return Out;
}

void Generator::declareLocals(Env &E, GenFunc &F) {
  // Every local is declared and fully initialized up front, so any read
  // the body generates is defined.
  unsigned NInts = 2 + static_cast<unsigned>(R.below(2));
  for (unsigned I = 0; I < NInts; ++I) {
    std::string Name = "i" + std::to_string(I);
    F.Prologue.push_back("int " + Name + " = " + intConst() + ";");
    E.Ints.push_back(Name);
  }
  for (unsigned I = 0; I <= O.MaxBlockDepth; ++I) {
    std::string LV = "lv" + std::to_string(I);
    F.Prologue.push_back("int " + LV + " = 0;");
  }
  if (O.Aggregates) {
    F.Prologue.push_back("int arr0[4];");
    F.Prologue.push_back(
        "arr0[0] = 0; arr0[1] = 1; arr0[2] = 2; arr0[3] = 3;");
    E.Arrays.push_back("arr0");
  }
  if (O.Pointers) {
    F.Prologue.push_back("int *q0 = &" + pick(E.Ints) + ";");
    E.Ptrs.push_back("q0");
    if (R.chance(70)) {
      F.Prologue.push_back("int *q1 = &" + pick(E.Ints) + ";");
      E.Ptrs.push_back("q1");
    }
    F.Prologue.push_back("int **qq0 = &" + pick(E.Ptrs) + ";");
    E.PtrPtrs.push_back("qq0");
  }
  if (O.Aggregates && O.Pointers) {
    F.Prologue.push_back("struct S0 s0;");
    F.Prologue.push_back("s0.a = " + intConst() + "; s0.b = " + intConst() +
                         "; s0.p = &" + pick(E.Ints) +
                         "; s0.next = &s0;");
    E.Structs.push_back("s0");
    F.Prologue.push_back("struct S0 *sp0 = &s0;");
    E.StructPtrs.push_back("sp0");
    if (O.Heap) {
      F.Prologue.push_back("struct S0 *hp0 = &s0;");
      E.StructPtrs.push_back("hp0");
      F.Prologue.push_back(heapInitLine(E, "hp0"));
    }
  }
  if (O.FunctionPointers && !E.SimpleFns.empty()) {
    F.Prologue.push_back("int (*fp0)(int);");
    F.Prologue.push_back("fp0 = " + pick(E.SimpleFns) + ";");
    E.FnPtrs.push_back("fp0");
  }
}

GenFunc Generator::makeHelper(unsigned Index) {
  GenFunc F;
  F.Name = "f" + std::to_string(Index);
  bool PtrParam = O.Pointers && R.chance(35);
  Env E = baseEnv();
  if (PtrParam) {
    F.Header = "int " + F.Name + "(int *p, int n) {";
    E.Ptrs.push_back("p");
  } else {
    F.Header = "int " + F.Name + "(int n) {";
  }
  E.Ints.push_back("n");
  E.HasParamN = true;
  declareLocals(E, F);

  // Parameter-bounded self-recursion, inserted as one atomic guard so the
  // reducer keeps it terminating.
  if (O.Recursion && !PtrParam && R.chance(55)) {
    std::string Call = F.Name + "(n - 1)";
    F.Body.push_back(
        leaf("if (n > 0) { i0 = " + Call + " + " + intConst() + "; }"));
  }
  for (GenStmt &S : block(E, 0))
    F.Body.push_back(std::move(S));
  F.Epilogue = "return i0 + " + (PtrParam ? "*p" : std::string("n")) + ";";
  return F;
}

GenFunc Generator::makeMain() {
  GenFunc F;
  F.Name = "main";
  F.Header = "int main() {";
  Env E = baseEnv();
  declareLocals(E, F);
  F.Body = block(E, 0);
  // Print the final state so differential runs compare real dataflow.
  for (const std::string &I : E.Ints)
    F.Body.push_back(leaf("printf(\"%d\\n\", " + I + ");"));
  if (!E.Structs.empty())
    F.Body.push_back(leaf("printf(\"%d\\n\", s0.a + s0.b);"));
  if (!E.Ptrs.empty())
    F.Body.push_back(leaf("printf(\"%d\\n\", *q0);"));
  F.Epilogue = "return 0;";
  return F;
}

GenProgram Generator::run() {
  GenProgram P;
  if (O.Aggregates)
    P.Prologue.push_back(
        "struct S0 { int a; int b; int *p; struct S0 *next; };");
  P.Prologue.push_back("int g0;");
  P.Prologue.push_back("int g1;");
  P.Prologue.push_back("int garr[3];");

  unsigned NFuncs = O.MaxFunctions == 0
                        ? 0
                        : static_cast<unsigned>(R.below(O.MaxFunctions + 1));
  for (unsigned I = 0; I < NFuncs; ++I) {
    GenFunc F = makeHelper(I);
    // Helpers only call previously defined helpers (and themselves), so
    // the call graph is well-defined bottom-up.
    if (F.Header.find("int *p") == std::string::npos)
      SimpleFns.push_back(F.Name);
    else
      PtrFns.push_back(F.Name);
    P.Funcs.push_back(std::move(F));
  }
  P.Funcs.push_back(makeMain());
  return P;
}

} // namespace

GenProgram vdga::generateProgram(const FuzzOptions &Opts) {
  Generator G(Opts);
  return G.run();
}

//===----------------------------------------------------------------------===//
// Raw-byte mutation
//===----------------------------------------------------------------------===//

std::string vdga::mutateSource(const std::string &Source, uint64_t Seed) {
  Rng R(Seed);
  std::string S = Source;
  // Characters the lexer/parser care about, plus raw bytes.
  static const char Alphabet[] =
      "(){}[]*&;,->.\"'\\0123456789abcxyz \n\t_=+<>!%/#$@`~\x01\x7f";
  unsigned NMutations = 1 + static_cast<unsigned>(R.below(8));
  for (unsigned I = 0; I < NMutations && !S.empty(); ++I) {
    switch (R.below(5)) {
    case 0: // Flip one byte.
      S[R.below(S.size())] = Alphabet[R.below(sizeof(Alphabet) - 1)];
      break;
    case 1: { // Delete a span.
      size_t At = R.below(S.size());
      size_t Len = 1 + R.below(16);
      S.erase(At, Len);
      break;
    }
    case 2: { // Duplicate a span somewhere else.
      size_t At = R.below(S.size());
      size_t Len = 1 + R.below(24);
      std::string Piece = S.substr(At, Len);
      S.insert(R.below(S.size() + 1), Piece);
      break;
    }
    case 3: { // Insert fresh noise (often unbalanced brackets/quotes).
      std::string Noise;
      size_t Len = 1 + R.below(12);
      for (size_t J = 0; J < Len; ++J)
        Noise += Alphabet[R.below(sizeof(Alphabet) - 1)];
      S.insert(R.below(S.size() + 1), Noise);
      break;
    }
    default: // Truncate (stresses at-EOF recovery paths).
      S.resize(R.below(S.size() + 1));
      break;
    }
  }
  return S;
}
