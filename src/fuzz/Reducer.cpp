//===- fuzz/Reducer.cpp ---------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <sstream>
#include <vector>

using namespace vdga;

namespace {

/// One bottom-up pass over a statement list: try deleting each statement,
/// then hoisting block bodies into their parent, then recursing into
/// surviving blocks. Returns true if anything was removed.
bool reduceStmts(std::vector<GenStmt> &Stmts, GenProgram &P,
                 const Interesting &Pred) {
  bool Changed = false;
  for (size_t I = Stmts.size(); I > 0; --I) {
    size_t Idx = I - 1;
    // Whole-subtree deletion.
    GenStmt Removed = std::move(Stmts[Idx]);
    Stmts.erase(Stmts.begin() + Idx);
    if (Pred(P.render())) {
      Changed = true;
      continue;
    }
    Stmts.insert(Stmts.begin() + Idx, std::move(Removed));
    // Block unwrapping: replace "if (..) { body }" with just the body.
    if (Stmts[Idx].isBlock()) {
      GenStmt Saved = Stmts[Idx];
      std::vector<GenStmt> Body = std::move(Stmts[Idx].Body);
      Stmts.erase(Stmts.begin() + Idx);
      Stmts.insert(Stmts.begin() + Idx,
                   std::make_move_iterator(Body.begin()),
                   std::make_move_iterator(Body.end()));
      if (Pred(P.render())) {
        Changed = true;
        // Re-examine from the same position next pass.
        continue;
      }
      Stmts.erase(Stmts.begin() + Idx, Stmts.begin() + Idx + Saved.Body.size());
      Stmts.insert(Stmts.begin() + Idx, std::move(Saved));
      if (reduceStmts(Stmts[Idx].Body, P, Pred))
        Changed = true;
    }
  }
  return Changed;
}

/// Tries deleting individual lines of a string list. Returns true on any
/// removal.
bool reduceLines(std::vector<std::string> &Lines, GenProgram &P,
                 const Interesting &Pred) {
  bool Changed = false;
  for (size_t I = Lines.size(); I > 0; --I) {
    size_t Idx = I - 1;
    std::string Removed = std::move(Lines[Idx]);
    Lines.erase(Lines.begin() + Idx);
    if (Pred(P.render())) {
      Changed = true;
      continue;
    }
    Lines.insert(Lines.begin() + Idx, std::move(Removed));
  }
  return Changed;
}

} // namespace

GenProgram vdga::reduceProgram(GenProgram P, const Interesting &Pred) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Drop whole helper functions first (main stays — a program without
    // main is diagnosed, which would change the failure).
    for (size_t I = P.Funcs.size(); I > 1; --I) {
      size_t Idx = I - 2; // Never index the trailing main.
      if (P.Funcs[Idx].Name == "main")
        continue;
      GenFunc Removed = std::move(P.Funcs[Idx]);
      P.Funcs.erase(P.Funcs.begin() + Idx);
      if (Pred(P.render())) {
        Changed = true;
        continue;
      }
      P.Funcs.insert(P.Funcs.begin() + Idx, std::move(Removed));
    }
    for (GenFunc &F : P.Funcs) {
      if (reduceStmts(F.Body, P, Pred))
        Changed = true;
      if (reduceLines(F.Prologue, P, Pred))
        Changed = true;
    }
    if (reduceLines(P.Prologue, P, Pred))
      Changed = true;
  }
  return P;
}

std::string vdga::reduceText(std::string Source, const Interesting &Pred) {
  // Split into lines once; chunk size halves to a single line, ddmin-style.
  std::vector<std::string> Lines;
  {
    std::istringstream In(Source);
    std::string L;
    while (std::getline(In, L))
      Lines.push_back(L);
  }
  auto Render = [&Lines]() {
    std::string S;
    for (const std::string &L : Lines)
      S += L + "\n";
    return S;
  };
  for (size_t Chunk = Lines.size() / 2; Chunk >= 1;) {
    bool Changed = false;
    for (size_t At = 0; At + Chunk <= Lines.size();) {
      std::vector<std::string> Saved(Lines.begin() + At,
                                     Lines.begin() + At + Chunk);
      Lines.erase(Lines.begin() + At, Lines.begin() + At + Chunk);
      if (Pred(Render())) {
        Changed = true;
        // Same position now holds the next chunk.
      } else {
        Lines.insert(Lines.begin() + At, Saved.begin(), Saved.end());
        At += Chunk;
      }
    }
    if (!Changed) {
      if (Chunk == 1)
        break;
      Chunk /= 2;
    }
  }
  return Render();
}
