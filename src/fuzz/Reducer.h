//===- fuzz/Reducer.h - Greedy AST-level test-case reduction ----*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy minimization of a failing generated program: repeatedly try to
/// delete whole functions, statement subtrees and prologue lines, keeping
/// a deletion whenever the caller's predicate says the reduced program is
/// still "interesting" (same oracle failure). Works on the GenProgram
/// statement tree so every candidate stays structurally well-formed; a
/// line-based fallback handles raw byte-mutated sources.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FUZZ_REDUCER_H
#define VDGA_FUZZ_REDUCER_H

#include "fuzz/Generator.h"

#include <functional>
#include <string>

namespace vdga {

/// True when the candidate source still reproduces the failure being
/// minimized.
using Interesting = std::function<bool(const std::string &Source)>;

/// Reduces a generated program to a local minimum under \p Pred. The
/// returned program still satisfies the predicate (the input must).
GenProgram reduceProgram(GenProgram P, const Interesting &Pred);

/// Line/chunk-deletion fallback for sources without a statement tree
/// (byte-mutated inputs). Returns a local minimum under \p Pred.
std::string reduceText(std::string Source, const Interesting &Pred);

} // namespace vdga

#endif // VDGA_FUZZ_REDUCER_H
