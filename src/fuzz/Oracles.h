//===- fuzz/Oracles.h - Differential oracle stack ---------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle stack one fuzzed program is pushed through:
///
///   1. frontend   — lex/parse/sema either build a program or diagnose;
///                   crashing is the finding.
///   2. verifier   — VdgVerifier accepts every graph the builder emits.
///   3. schedule   — FIFO and LIFO worklist orders reach the same
///                   points-to solution (Figure 1 order-independence).
///   4. soundness  — the interpreter's access trace is covered by the
///                   CI, CS, Weihl and Steensgaard solutions (budget
///                   truncation checks the executed prefix).
///   5. containment— the stripped context-sensitive solution is a subset
///                   of the context-insensitive one at every output.
///   6. strategy   — the wave and deep solver engines reach the exact
///                   fixed point of the basic engine: identical CI pair
///                   sets and identical CS assumption antichains.
///
/// Each outcome carries a digest of everything observable so a batch can
/// be compared bit-for-bit between jobs=1 and jobs=N runs.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FUZZ_ORACLES_H
#define VDGA_FUZZ_ORACLES_H

#include <cstdint>
#include <string>

namespace vdga {

struct OracleOptions {
  uint64_t MaxSteps = 2'000'000;   ///< Interpreter step budget.
  /// Interpreter frame budget. Each guest frame costs several host C++
  /// frames (evalCall/evalExpr/evalBinary), which sanitizer builds
  /// inflate further; 512 was observed to overflow an 8 MiB host stack
  /// under ASan before the guest budget triggered, so the fuzzing
  /// default stays well below that.
  unsigned MaxCallDepth = 192;
  bool RunCS = true;               ///< Include the context-sensitive legs.
  std::string Input;               ///< stdin for the interpreter run.
  /// Per-solve worklist-iteration budget; 0 = ungoverned. Iteration caps
  /// (not wall-clock) keep budgeted fuzz runs deterministic across
  /// machines and job counts. A solve that trips is *degraded* down the
  /// sound ladder, not failed: the soundness oracle skips the coverage
  /// assertion of partial solves (the served Steensgaard/top tier is
  /// still asserted), the FIFO-vs-LIFO schedule stage is skipped when
  /// either capped solve is partial (partial sets are legitimately
  /// schedule-dependent), containment is asserted per completed rung, and
  /// the tier each client ends up served by lands in the digest.
  uint64_t BudgetIterations = 0;
};

struct OracleOutcome {
  /// The frontend accepted the program (false means it was diagnosed,
  /// which for adversarial inputs is itself a pass).
  bool FrontendOk = false;
  /// Every applicable oracle held.
  bool Passed = false;
  /// First failing stage: "verifier", "schedule", "strategy",
  /// "soundness", "containment", "cs-incomplete" or "interp". Empty when
  /// Passed.
  std::string FailStage;
  /// Human-readable description of the failure.
  std::string Detail;
  /// Deterministic fingerprint of all observable results (analysis pair
  /// sets, interpreter output, findings). Empty when !FrontendOk.
  std::string Digest;
};

/// Runs the full oracle stack over one source buffer.
OracleOutcome runOracleStack(const std::string &Source,
                             const OracleOptions &Opts);

/// Frontend-only oracle for byte-mutated (usually ill-formed) inputs: the
/// pipeline must diagnose or accept, and any graph it does build must
/// verify. The interpreter legs are skipped — mutants may legitimately
/// fault at runtime.
OracleOutcome runFrontendOracle(const std::string &Source);

} // namespace vdga

#endif // VDGA_FUZZ_ORACLES_H
