//===- fuzz/Oracles.cpp ---------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "driver/Pipeline.h"
#include "lint/Lint.h"
#include "support/Digest.h"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

using namespace vdga;

namespace {

/// Canonical per-output pair listing: rendered paths, sorted, so the
/// digest is independent of interning and arrival order.
void addPairs(Fnv64 &D, AnalyzedProgram &AP, const PointsToResult &R,
              const char *Tag) {
  const StringInterner &Names = AP.program().Names;
  D.add(Tag);
  for (OutputId O = 0; O < AP.G.numOutputs(); ++O) {
    const std::vector<PairId> &Pairs = R.pairs(O);
    if (Pairs.empty())
      continue;
    std::vector<std::string> Rendered;
    Rendered.reserve(Pairs.size());
    for (PairId Pair : Pairs)
      Rendered.push_back(AP.PT.str(Pair, AP.Paths, Names));
    std::sort(Rendered.begin(), Rendered.end());
    D.add("out" + std::to_string(O));
    for (const std::string &S : Rendered)
      D.add(S);
  }
}

/// Set-equality of two solutions over the same pair table.
bool samePairSets(const Graph &G, const PointsToResult &A,
                  const PointsToResult &B, OutputId *WhereOut) {
  for (OutputId O = 0; O < G.numOutputs(); ++O) {
    std::vector<PairId> PA = A.pairs(O), PB = B.pairs(O);
    std::sort(PA.begin(), PA.end());
    std::sort(PB.begin(), PB.end());
    if (PA != PB) {
      if (WhereOut)
        *WhereOut = O;
      return false;
    }
  }
  return true;
}

/// Equality of two context-sensitive solutions over the same pair and
/// assumption-set tables: identical pair keys and identical assumption
/// antichains per (output, pair). Ids are content-addressed within one
/// AnalyzedProgram, so id comparison is exact; only the antichain order
/// is schedule-dependent, hence the sort.
bool sameQualifiedSets(const Graph &G, const ContextSensResult &A,
                       const ContextSensResult &B, OutputId *WhereOut) {
  for (OutputId O = 0; O < G.numOutputs(); ++O) {
    const auto &QA = A.qualified(O);
    const auto &QB = B.qualified(O);
    if (QA.size() != QB.size()) {
      if (WhereOut)
        *WhereOut = O;
      return false;
    }
    auto IB = QB.begin();
    for (auto IA = QA.begin(); IA != QA.end(); ++IA, ++IB) {
      std::vector<AssumSetId> SA = IA->second, SB = IB->second;
      std::sort(SA.begin(), SA.end());
      std::sort(SB.begin(), SB.end());
      if (IA->first != IB->first || SA != SB) {
        if (WhereOut)
          *WhereOut = O;
        return false;
      }
    }
  }
  return true;
}

} // namespace

OracleOutcome vdga::runOracleStack(const std::string &Source,
                                   const OracleOptions &Opts) {
  OracleOutcome Out;
  std::string Error;
  auto AP = AnalyzedProgram::create(Source, &Error);
  if (!AP) {
    // Diagnosed, not crashed: that is the frontend oracle passing.
    Out.Passed = true;
    Out.Detail = Error;
    return Out;
  }
  Out.FrontendOk = true;

  // An iteration budget turns this into a governed run: every solve is
  // capped, trips degrade down the sound ladder instead of failing.
  bool Governed = Opts.BudgetIterations != 0;
  ResourceBudget B;
  if (Governed)
    B = ResourceBudget::maxIterations(Opts.BudgetIterations);

  // Stages 2 + 4: the checker subsystem runs the VDG verifier, then the
  // interpreter-backed soundness oracle over CI/CS/Weihl/Steensgaard.
  // Under a budget the checker excludes degraded solves from coverage
  // (notes, not errors) while still asserting every complete one — and
  // Steensgaard always, since a tripped Steensgaard solve degrades
  // internally to the sound conservative top.
  CheckOptions CO;
  CO.Level = CheckLevel::Oracle;
  CO.OracleInput = Opts.Input;
  CO.OracleMaxSteps = Opts.MaxSteps;
  CO.OracleMaxCallDepth = Opts.MaxCallDepth;
  CO.SolverBudget = B;
  CheckReport Report = AP->runChecks(CO);
  Report.sortFindings();

  // Stage 3: schedule independence of the CI solution. Only meaningful
  // between two *complete* solves: a capped partial solve is legitimately
  // schedule-dependent (the fixed point is order-independent, prefixes of
  // it are not).
  PointsToResult CI = AP->runContextInsensitive(WorklistOrder::FIFO,
                                                /*RecordProvenance=*/false,
                                                B);
  OutputId Where = 0;
  bool SchedulesAgree = true;
  if (CI.complete()) {
    PointsToResult CILifo = AP->runContextInsensitive(
        WorklistOrder::LIFO, /*RecordProvenance=*/false, B);
    if (CILifo.complete())
      SchedulesAgree = samePairSets(AP->G, CI, CILifo, &Where);
  }

  // Stage 5: CS refines CI, so its stripped pairs must be contained.
  // The rung is only runnable over a complete CI solution (the Section
  // 4.2 prunings assume one); under a budget a missing or tripped rung is
  // a recorded degradation, not a failure.
  bool CSComplete = true;
  bool Contained = true;
  std::string ContainDetail;
  PointsToResult Stripped(0);
  std::optional<ContextSensResult> CSBasic;
  PrecisionTier CITier = PrecisionTier::ContextInsens;
  PrecisionTier CSTier = PrecisionTier::ContextSens;
  if (!CI.complete()) {
    // CI clients are served by the Steensgaard rung (or top); its
    // soundness against the trace was already asserted by the checker.
    SteensgaardResult Steens = AP->runSteensgaard(B);
    CITier = Steens.IsTop ? PrecisionTier::Top : PrecisionTier::Steensgaard;
    CSTier = CITier;
    CSComplete = false;
  } else if (Opts.RunCS) {
    ContextSensOptions CSO;
    CSO.Budget = B;
    CSBasic = AP->runContextSensitive(CI, CSO);
    const ContextSensResult &CS = *CSBasic;
    CSComplete = CS.complete();
    if (CSComplete) {
      Stripped = CS.stripAssumptions();
      for (OutputId O = 0; O < AP->G.numOutputs() && Contained; ++O)
        for (PairId Pair : Stripped.pairs(O))
          if (!CI.contains(O, Pair)) {
            Contained = false;
            ContainDetail =
                "pair " +
                AP->PT.str(Pair, AP->Paths, AP->program().Names) +
                " at output " + std::to_string(O) +
                " is context-sensitive but not context-insensitive";
            break;
          }
    } else {
      // The ladder's first rung: CS clients fall back to the complete CI
      // solution, which trivially satisfies containment.
      CSTier = PrecisionTier::ContextInsens;
    }
  }

  // Stage 6: strategy independence — the wave and deep engines must land
  // on the bit-identical fixed point the basic engine does: equal CI pair
  // sets and equal CS assumption antichains. Partial (tripped) solves are
  // excluded — the engines account work differently, so their prefixes
  // legitimately differ under a shared cap.
  bool StrategiesAgree = true;
  std::string StrategyDetail;
  if (CI.complete()) {
    for (SolverStrategy S : {SolverStrategy::Wave, SolverStrategy::Deep}) {
      PointsToResult AltCI = AP->runContextInsensitive(
          WorklistOrder::FIFO, /*RecordProvenance=*/false, B, S);
      OutputId W = 0;
      if (AltCI.complete() && !samePairSets(AP->G, CI, AltCI, &W)) {
        StrategiesAgree = false;
        StrategyDetail = std::string("ci ") + solverStrategyName(S) +
                         " engine disagrees with basic at output " +
                         std::to_string(W);
        break;
      }
      if (CSBasic && CSBasic->complete()) {
        ContextSensOptions AltCSO;
        AltCSO.Budget = B;
        AltCSO.Strategy = S;
        ContextSensResult AltCS = AP->runContextSensitive(CI, AltCSO);
        if (AltCS.complete() &&
            !sameQualifiedSets(AP->G, *CSBasic, AltCS, &W)) {
          StrategiesAgree = false;
          StrategyDetail = std::string("cs ") + solverStrategyName(S) +
                           " engine disagrees with basic at output " +
                           std::to_string(W);
          break;
        }
      }
    }
  }

  // Interpreter leg for the digest (deterministic re-run; genuine runtime
  // errors were already turned into checker findings above).
  RunResult RR = AP->interpret(Opts.Input, Opts.MaxSteps, Opts.MaxCallDepth);

  // Stage 7: the lint engine at the CI tier, with its must findings
  // cross-checked against the trace just recorded — a refuted must is an
  // analysis bug, same class as a soundness-oracle miss. Skipped when CI
  // degraded (the engine would self-skip anyway).
  std::optional<LintReport> LintR;
  if (CI.complete()) {
    LintOptions LO;
    LO.Policy.MaxIterations = Opts.BudgetIterations;
    LintR = runLint(*AP, LO);
    if (!LintR->Degraded)
      refuteLintFindings(*LintR, RR.Trace);
  }

  Fnv64 D;
  if (CI.complete())
    addPairs(D, *AP, CI, "ci");
  else
    D.add(std::string("ci:degraded->") + precisionTierName(CITier));
  if (Opts.RunCS && CI.complete() && CSComplete)
    addPairs(D, *AP, Stripped, "cs");
  else if (Opts.RunCS && Governed)
    D.add(std::string("cs:degraded->") + precisionTierName(CSTier));
  else
    D.add("cs:skipped");
  D.add("report");
  D.add(Report.renderText());
  D.add("lint");
  if (LintR && !LintR->Degraded)
    D.add(LintR->renderText());
  else
    D.add("lint:skipped");
  D.add("run");
  D.add(RR.Output);
  D.add(std::to_string(RR.ExitCode));
  D.add(RR.Truncated ? "truncated" : "complete");
  Out.Digest = D.hex();

  // Classify the first failure, most fundamental stage first.
  auto FirstError = [&Report](const char *Pass,
                              const char *MsgPrefix) -> const Finding * {
    for (const Finding &F : Report.Findings) {
      if (F.Severity != FindingSeverity::Error || F.Pass != Pass)
        continue;
      if (MsgPrefix && F.Message.rfind(MsgPrefix, 0) != 0)
        continue;
      return &F;
    }
    return nullptr;
  };
  if (const Finding *F = FirstError("verifier", nullptr)) {
    Out.FailStage = "verifier";
    Out.Detail = F->Message;
  } else if (!SchedulesAgree) {
    Out.FailStage = "schedule";
    Out.Detail = "FIFO and LIFO worklists disagree at output " +
                 std::to_string(Where);
  } else if (!StrategiesAgree) {
    Out.FailStage = "strategy";
    Out.Detail = StrategyDetail;
  } else if (const Finding *F =
                 FirstError("oracle", "concrete execution failed")) {
    Out.FailStage = "interp";
    Out.Detail = F->Message;
  } else if (const Finding *F = FirstError("oracle", nullptr)) {
    Out.FailStage = "soundness";
    Out.Detail = F->Message;
  } else if (Opts.RunCS && !CSComplete && !Governed) {
    // Under a budget an incomplete CS solve is a recorded degradation
    // served by the CI rung, not an oracle failure.
    Out.FailStage = "cs-incomplete";
    Out.Detail = "context-sensitive solver hit its work cap";
  } else if (!Contained) {
    Out.FailStage = "containment";
    Out.Detail = ContainDetail;
  } else if (LintR && LintR->errorCount() != 0) {
    Out.FailStage = "lint";
    for (const LintFinding &F : LintR->Findings)
      if (F.Severity == FindingSeverity::Error) {
        Out.Detail = F.Message;
        break;
      }
  }
  Out.Passed = Out.FailStage.empty();
  return Out;
}

OracleOutcome vdga::runFrontendOracle(const std::string &Source) {
  OracleOutcome Out;
  std::string Error;
  auto AP = AnalyzedProgram::create(Source, &Error);
  if (!AP) {
    Out.Passed = true;
    Out.Detail = Error;
    return Out;
  }
  Out.FrontendOk = true;
  // Whatever graph the frontend accepted must at least verify.
  CheckOptions CO;
  CO.Level = CheckLevel::Verify;
  CheckReport Report = AP->runChecks(CO);
  if (!Report.clean()) {
    Report.sortFindings();
    Out.FailStage = "verifier";
    for (const Finding &F : Report.Findings)
      if (F.Severity == FindingSeverity::Error) {
        Out.Detail = F.Message;
        break;
      }
  }
  Out.Passed = Out.FailStage.empty();
  return Out;
}
