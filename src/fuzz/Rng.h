//===- fuzz/Rng.h - Deterministic fuzzing PRNG ------------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small splitmix64-seeded xorshift generator. The fuzzer must be
/// bit-reproducible from a seed across platforms and standard-library
/// versions, so it cannot use <random> distributions.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FUZZ_RNG_H
#define VDGA_FUZZ_RNG_H

#include <cstdint>

namespace vdga {

class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // splitmix64 scrambles small/sequential seeds into good state.
    uint64_t Z = Seed + 0x9E3779B97F4A7C15ULL;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    State = Z ^ (Z >> 31);
    if (State == 0)
      State = 0x2545F4914F6CDD1DULL;
  }

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

  /// Uniform value in [0, Bound). Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

} // namespace vdga

#endif // VDGA_FUZZ_RNG_H
