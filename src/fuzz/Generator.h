//===- fuzz/Generator.h - Random MiniC program generator --------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, grammar-directed random program generation over the frontend's
/// MiniC subset. Programs are built as a small statement tree (not raw
/// text) so the reducer can delete subtrees while preserving
/// well-formedness, and are type-correct by construction: every local is
/// initialized at declaration, every pointer always targets live storage,
/// loops are counter-bounded, and recursion decreases a parameter — so a
/// generated program's only legitimate fates are normal termination or a
/// clean budget truncation, and any interpreter error is an oracle
/// finding.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_FUZZ_GENERATOR_H
#define VDGA_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace vdga {

/// Size and feature knobs for one generated program.
struct FuzzOptions {
  uint64_t Seed = 0;
  unsigned MaxFunctions = 4;     ///< Helper functions besides main.
  unsigned MaxStmtsPerBlock = 6;
  unsigned MaxBlockDepth = 3;    ///< if/loop nesting.
  unsigned MaxExprDepth = 3;
  bool Pointers = true;          ///< int* / int** locals and stores.
  bool Aggregates = true;        ///< struct S0 with pointer fields, arrays.
  bool FunctionPointers = true;  ///< int (*fp)(int) variables and calls.
  bool Recursion = true;         ///< Parameter-bounded self-calls.
  bool Heap = true;              ///< malloc'ed struct instances.
};

/// One statement in the generated tree: either a leaf line ("x = y + 1;")
/// or a block with a header ("if (x < y) {"), nested statements and an
/// implicit closing brace.
struct GenStmt {
  std::string Line;           ///< Leaf text; empty for blocks.
  std::string Head;           ///< Block header; empty for leaves.
  std::vector<GenStmt> Body;  ///< Block children.

  bool isBlock() const { return !Head.empty(); }
};

/// One generated function: fixed header/locals prologue plus a reducible
/// statement list.
struct GenFunc {
  std::string Name;
  std::string Header;                 ///< "int f0(int n) {"
  std::vector<std::string> Prologue;  ///< Declarations + initialization.
  std::vector<GenStmt> Body;
  std::string Epilogue;               ///< Final return statement.
};

/// A whole generated program, renderable to MiniC source.
struct GenProgram {
  std::vector<std::string> Prologue;  ///< Struct defs + globals.
  std::vector<GenFunc> Funcs;         ///< Helpers first, main last.

  std::string render() const;
};

/// Generates one program from the option knobs (deterministic in
/// Opts.Seed).
GenProgram generateProgram(const FuzzOptions &Opts);

/// Byte-level mutation of existing source (bit flips, splices, truncation,
/// token duplication) for lexer/parser robustness fuzzing. The result is
/// usually ill-formed; the only oracle for it is "the frontend diagnoses
/// rather than crashes". Deterministic in Seed.
std::string mutateSource(const std::string &Source, uint64_t Seed);

} // namespace vdga

#endif // VDGA_FUZZ_GENERATOR_H
