//===- memory/AccessPath.cpp ----------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "memory/AccessPath.h"

#include <algorithm>

using namespace vdga;

PathTable::PathTable() {
  // Path 0 is the empty offset path.
  PathNode Root;
  Root.Base = -1;
  Root.Parent = 0;
  Root.StronglyUpdateable = false;
  Nodes.push_back(Root);
}

BaseLocId PathTable::addBaseLocation(BaseLocation Base) {
  auto Id = static_cast<BaseLocId>(Bases.size());
  bool Single = Base.SingleInstance;
  Bases.push_back(std::move(Base));
  BaseRoots.push_back(makeRoot(static_cast<int32_t>(index(Id)), Single));
  return Id;
}

PathId PathTable::makeRoot(int32_t Base, bool SingleInstance) {
  PathNode Root;
  Root.Base = Base;
  Root.Parent = static_cast<uint32_t>(Nodes.size());
  Root.StronglyUpdateable = SingleInstance;
  Nodes.push_back(Root);
  return static_cast<PathId>(Nodes.size() - 1);
}

AccessOpId PathTable::fieldOp(const RecordType *Record, uint32_t FieldIndex) {
  assert(Record && !Record->isUnion() &&
         "union members do not get their own access operators");
  auto Key = std::make_pair(Record, FieldIndex);
  auto It = FieldOps.find(Key);
  if (It != FieldOps.end())
    return It->second;
  AccessOp Op;
  Op.K = AccessOp::Kind::Field;
  Op.Record = Record;
  Op.FieldIndex = FieldIndex;
  auto Id = static_cast<AccessOpId>(Ops.size());
  Ops.push_back(Op);
  FieldOps.emplace(Key, Id);
  return Id;
}

AccessOpId PathTable::arrayOp() {
  if (ArrayOpCreated)
    return ArrayOpId;
  AccessOp Op;
  Op.K = AccessOp::Kind::ArrayElem;
  ArrayOpId = static_cast<AccessOpId>(Ops.size());
  Ops.push_back(Op);
  ArrayOpCreated = true;
  return ArrayOpId;
}

PathId PathTable::append(PathId Parent, AccessOpId Op) {
  auto Key = std::make_pair(index(Parent), index(Op));
  auto It = Children.find(Key);
  if (It != Children.end())
    return It->second;

  const PathNode &ParentNode = Nodes[index(Parent)];
  PathNode Node;
  Node.Base = ParentNode.Base;
  Node.Parent = index(Parent);
  Node.Op = index(Op);
  Node.Depth = static_cast<uint16_t>(ParentNode.Depth + 1);
  Node.HasArrayOp =
      ParentNode.HasArrayOp || op(Op).K == AccessOp::Kind::ArrayElem;
  Node.StronglyUpdateable = ParentNode.StronglyUpdateable &&
                            op(Op).K == AccessOp::Kind::Field;
  auto Id = static_cast<PathId>(Nodes.size());
  Nodes.push_back(Node);
  Children.emplace(Key, Id);
  return Id;
}

PathId PathTable::appendField(PathId Parent, const RecordType *Record,
                              uint32_t FieldIndex) {
  // Union members share the union's own path so that any two members
  // must-alias through the prefix rule.
  if (Record->isUnion())
    return Parent;
  return append(Parent, fieldOp(Record, FieldIndex));
}

PathId PathTable::appendArray(PathId Parent) {
  return append(Parent, arrayOp());
}

namespace {
/// Operator chain buffer: inline storage for the common shallow case, a
/// heap fallback for adversarially deep paths (depth is bounded only by
/// uint16_t, so a fixed 64-slot array would be a buffer overflow waiting
/// for a fuzzer to find it).
struct OpChain {
  uint32_t Inline[64];
  std::vector<uint32_t> Heap;
  uint32_t *Data = Inline;

  explicit OpChain(unsigned Capacity) {
    if (Capacity > 64) {
      Heap.resize(Capacity);
      Data = Heap.data();
    }
  }
};
} // namespace

PathId PathTable::appendPath(PathId Base, PathId Offset) {
  assert(!isLocation(Offset) && "appendPath requires an offset suffix");
  if (Offset == emptyPath())
    return Base;
  // Gather Offset's operators top-down, then replay them onto Base.
  OpChain Chain(depth(Offset));
  unsigned Count = 0;
  uint32_t Cur = index(Offset);
  while (Nodes[Cur].Op != UINT32_MAX) {
    Chain.Data[Count++] = Nodes[Cur].Op;
    Cur = Nodes[Cur].Parent;
  }
  PathId Result = Base;
  for (unsigned I = Count; I > 0; --I)
    Result = append(Result, static_cast<AccessOpId>(Chain.Data[I - 1]));
  return Result;
}

std::optional<PathId> PathTable::subtractPrefix(PathId Whole,
                                                PathId Prefix) const {
  // The subtraction is undefined unless Prefix dom Whole; checking here
  // (rather than trusting callers) turns a release-mode unsigned
  // underflow and out-of-bounds write into a clean sentinel.
  if (!dom(Prefix, Whole))
    return std::nullopt;
  // Collect the operators of Whole below Prefix.
  unsigned Steps = depth(Whole) - depth(Prefix);
  OpChain Chain(Steps);
  unsigned Count = 0;
  uint32_t Cur = index(Whole);
  for (unsigned I = 0; I < Steps; ++I) {
    Chain.Data[Count++] = Nodes[Cur].Op;
    Cur = Nodes[Cur].Parent;
  }
  // Rebuild bottom-up from the empty offset. The children map is mutated,
  // so we need non-const access; PathTable exposes subtractPrefix as const
  // for callers, with internal mutation confined to interning.
  auto *Self = const_cast<PathTable *>(this);
  PathId Result = emptyPath();
  for (unsigned I = Count; I > 0; --I)
    Result = Self->append(Result, static_cast<AccessOpId>(Chain.Data[I - 1]));
  return Result;
}

bool PathTable::dom(PathId A, PathId B) const {
  const PathNode &NA = Nodes[index(A)];
  const PathNode &NB = Nodes[index(B)];
  if (NA.Base != NB.Base || NA.Depth > NB.Depth)
    return false;
  uint32_t Cur = index(B);
  for (unsigned I = NB.Depth; I > NA.Depth; --I)
    Cur = Nodes[Cur].Parent;
  return Cur == index(A);
}

bool PathTable::strongDom(PathId A, PathId B) const {
  return Nodes[index(A)].StronglyUpdateable && dom(A, B);
}

std::string PathTable::str(PathId P, const StringInterner &Names) const {
  // Collect operators bottom-up.
  std::vector<uint32_t> Chain;
  uint32_t Cur = index(P);
  while (Nodes[Cur].Op != UINT32_MAX) {
    Chain.push_back(Nodes[Cur].Op);
    Cur = Nodes[Cur].Parent;
  }
  std::string S;
  if (Nodes[Cur].Base >= 0)
    S = Bases[Nodes[Cur].Base].Name;
  else
    S = "<offset>";
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    const AccessOp &O = Ops[*It];
    if (O.K == AccessOp::Kind::ArrayElem) {
      S += "[*]";
    } else {
      S += ".";
      S += Names.text(O.Record->fields()[O.FieldIndex].Name);
    }
  }
  return S;
}
