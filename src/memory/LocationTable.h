//===- memory/LocationTable.h - Program base locations ---------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the base locations of one program: one per store-resident
/// variable, one per static heap-allocation site (Section 2's treatment of
/// malloc), one per function (the referents of function pointers) and one
/// per string literal.
///
/// Store residency mirrors the paper's program representation: an SSA-like
/// transformation keeps non-addressed scalars out of the store, so only
/// globals, address-taken locals/params and aggregates get base locations.
/// Address-taken locals of (conservatively) recursive procedures get
/// weakly-updateable bases — the paper's second scheme from footnote 4.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_MEMORY_LOCATIONTABLE_H
#define VDGA_MEMORY_LOCATIONTABLE_H

#include "frontend/AST.h"
#include "memory/AccessPath.h"

#include <map>

namespace vdga {

/// Storage classification used by the Figure 7 breakdown.
enum class StorageClass : uint8_t { Offset, Function, Local, Global, Heap };

/// Returns the table-header name of a storage class.
const char *storageClassName(StorageClass C);

/// Creates and indexes the base locations of a Program.
class LocationTable {
public:
  /// Populates \p Paths with every base location of \p P. Requires
  /// recursion flags to be annotated (CallGraphAST::annotate) first.
  LocationTable(const Program &P, PathTable &Paths);

  /// True if \p Var's storage lives in the store (has a base location)
  /// rather than flowing along value edges.
  static bool isStoreResident(const VarDecl *Var) {
    return Var->isGlobal() || Var->isAddressTaken() ||
           Var->type()->isAggregate();
  }

  bool hasVarBase(const VarDecl *Var) const {
    return VarBases.count(Var) != 0;
  }
  BaseLocId varBase(const VarDecl *Var) const;
  BaseLocId heapBase(unsigned SiteId) const;
  BaseLocId functionBase(const FuncDecl *Fn) const;
  BaseLocId stringBase(unsigned LiteralId) const;

  /// Figure 7 classification of a path by its base location.
  StorageClass classify(PathId P, const PathTable &Paths) const;

private:
  std::map<const VarDecl *, BaseLocId> VarBases;
  std::vector<BaseLocId> HeapBases;
  std::map<const FuncDecl *, BaseLocId> FunctionBases;
  std::vector<BaseLocId> StringBases;
};

} // namespace vdga

#endif // VDGA_MEMORY_LOCATIONTABLE_H
