//===- memory/AccessPath.h - Interned access paths -------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's access-path machinery (Section 2): a finite set of
/// base-locations names allocation sites (one per variable, one per static
/// heap allocation site, plus functions and string literals); an access path
/// is an optional base-location followed by a sequence of interned access
/// operators (struct member or array element). Paths with a base-location
/// are *locations*; paths with none are *offsets* into aggregate values.
///
/// Paths are interned as a tree keyed by (parent, operator): pointer-free
/// 32-bit ids, O(depth) prefix tests, O(1) single-operator append. The
/// `dom` relation is "is a prefix of"; `strong-dom` additionally requires
/// the prefix to be strongly updateable (single-instance base, no array
/// operators). Union members deliberately share their parent path, so a
/// union access aliases every other member through the prefix rule — the
/// paper's "careful interning" for C unions.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_MEMORY_ACCESSPATH_H
#define VDGA_MEMORY_ACCESSPATH_H

#include "frontend/Type.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vdga {

/// Dense id of a base location.
enum class BaseLocId : uint32_t {};
/// Dense id of an access operator.
enum class AccessOpId : uint32_t {};
/// Dense id of an interned access path. Id 0 is the empty offset path.
enum class PathId : uint32_t { EmptyOffset = 0 };

inline uint32_t index(BaseLocId Id) { return static_cast<uint32_t>(Id); }
inline uint32_t index(AccessOpId Id) { return static_cast<uint32_t>(Id); }
inline uint32_t index(PathId Id) { return static_cast<uint32_t>(Id); }

/// What a base location names; drives the Figure 7 path/referent
/// classification (string literals count as global storage, as in the
/// paper).
enum class BaseLocKind : uint8_t {
  Global,
  Local, ///< Locals and parameters.
  Heap,
  Function,
  StringLit,
};

class VarDecl;
class FuncDecl;

/// One named allocation site.
struct BaseLocation {
  BaseLocKind Kind = BaseLocKind::Global;
  /// Display name ("x", "f.buf", "heap@3", "fn:main", "str#0").
  std::string Name;
  /// The object type when known (null for functions).
  const Type *Ty = nullptr;
  /// True if this base names at most one runtime location, making strong
  /// updates legal (Section 2). Heap bases and address-taken locals of
  /// recursive procedures are multi-instance.
  bool SingleInstance = true;
  /// Back-pointers for clients (null when not applicable).
  const VarDecl *Var = nullptr;
  const FuncDecl *Fn = nullptr;
  /// Allocation-site or string-literal ordinal when applicable.
  unsigned SiteId = 0;
};

/// An access operator: one struct/union member step or one array-element
/// summary step.
struct AccessOp {
  enum class Kind : uint8_t { Field, ArrayElem } K = Kind::ArrayElem;
  const RecordType *Record = nullptr; ///< Field ops only.
  uint32_t FieldIndex = 0;            ///< Field ops only.
};

/// Interns base locations, access operators and access paths for one
/// program. All ids are dense and handed out in creation order.
class PathTable {
public:
  PathTable();

  //===--------------------------------------------------------------------===
  // Base locations and operators
  //===--------------------------------------------------------------------===

  BaseLocId addBaseLocation(BaseLocation Base);
  const BaseLocation &base(BaseLocId Id) const {
    return Bases[index(Id)];
  }
  size_t numBases() const { return Bases.size(); }

  AccessOpId fieldOp(const RecordType *Record, uint32_t FieldIndex);
  AccessOpId arrayOp();
  const AccessOp &op(AccessOpId Id) const { return Ops[index(Id)]; }

  //===--------------------------------------------------------------------===
  // Paths
  //===--------------------------------------------------------------------===

  /// The empty offset path (no base, no operators).
  static PathId emptyPath() { return PathId::EmptyOffset; }

  /// The root location path of a base.
  PathId basePath(BaseLocId Base) const {
    return BaseRoots[index(Base)];
  }

  /// Appends one access operator. For union members this is the identity
  /// (see file comment).
  PathId append(PathId Parent, AccessOpId Op);

  /// Appends a member access, collapsing union members onto their parent.
  PathId appendField(PathId Parent, const RecordType *Record,
                     uint32_t FieldIndex);

  /// Appends an array-element summary step.
  PathId appendArray(PathId Parent);

  /// The paper's `+`: appends offset path \p Offset to \p Base.
  PathId appendPath(PathId Base, PathId Offset);

  /// The paper's `-`: returns the offset path such that
  /// `Prefix + offset == Whole`. The subtraction is only defined when
  /// `Prefix dom Whole`; otherwise std::nullopt is returned, so callers
  /// that cannot establish dominance up front fail gracefully instead of
  /// hitting undefined behaviour. Callers that have just checked `dom`
  /// can dereference the result with `.value()`.
  std::optional<PathId> subtractPrefix(PathId Whole, PathId Prefix) const;

  /// The paper's `dom`: true if \p A is a prefix of \p B (a read/write of A
  /// may observe/modify a value written to B). Total over all interned
  /// paths: unrelated bases, deeper prefixes and offset/location mixes all
  /// simply return false.
  bool dom(PathId A, PathId B) const;

  /// The paper's `strong-dom`: \p A dom \p B and A is strongly updateable.
  /// Total over all interned paths, like `dom`.
  bool strongDom(PathId A, PathId B) const;

  /// True if a write to this path definitely overwrites exactly one
  /// runtime location: single-instance base and no array operators.
  bool stronglyUpdateable(PathId P) const {
    return Nodes[index(P)].StronglyUpdateable;
  }

  /// True if the path has a base location (is a *location*, not an offset).
  bool isLocation(PathId P) const { return Nodes[index(P)].Base >= 0; }

  /// The base location of a location path.
  BaseLocId baseOf(PathId P) const {
    assert(isLocation(P) && "offset paths have no base");
    return static_cast<BaseLocId>(Nodes[index(P)].Base);
  }

  /// Number of access operators in the path.
  unsigned depth(PathId P) const { return Nodes[index(P)].Depth; }

  size_t numPaths() const { return Nodes.size(); }

  /// Renders "base.field[*].field" or "<offset>.field" for diagnostics.
  std::string str(PathId P, const StringInterner &Names) const;

private:
  struct PathNode {
    int32_t Base = -1;           ///< Base location id, or -1 for offsets.
    uint32_t Parent = 0;         ///< Parent path (self for roots).
    uint32_t Op = UINT32_MAX;    ///< Operator from parent (none for roots).
    uint16_t Depth = 0;          ///< Number of operators.
    bool StronglyUpdateable = false;
    bool HasArrayOp = false;
  };

  PathId makeRoot(int32_t Base, bool SingleInstance);

  std::vector<BaseLocation> Bases;
  std::vector<AccessOp> Ops;
  std::map<std::pair<const RecordType *, uint32_t>, AccessOpId> FieldOps;
  AccessOpId ArrayOpId{0};
  bool ArrayOpCreated = false;

  std::vector<PathNode> Nodes;
  std::vector<PathId> BaseRoots;
  std::map<std::pair<uint32_t, uint32_t>, PathId> Children;
};

} // namespace vdga

#endif // VDGA_MEMORY_ACCESSPATH_H
