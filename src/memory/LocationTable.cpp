//===- memory/LocationTable.cpp -------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "memory/LocationTable.h"

using namespace vdga;

const char *vdga::storageClassName(StorageClass C) {
  switch (C) {
  case StorageClass::Offset:
    return "offset";
  case StorageClass::Function:
    return "function";
  case StorageClass::Local:
    return "local";
  case StorageClass::Global:
    return "global";
  case StorageClass::Heap:
    return "heap";
  }
  return "?";
}

LocationTable::LocationTable(const Program &P, PathTable &Paths) {
  // Globals first, in declaration order.
  for (const VarDecl *G : P.Globals) {
    BaseLocation B;
    B.Kind = BaseLocKind::Global;
    B.Name = P.Names.text(G->name());
    B.Ty = G->type();
    B.SingleInstance = true;
    B.Var = G;
    VarBases.emplace(G, Paths.addBaseLocation(std::move(B)));
  }

  // String literals (global storage, per the paper's Figure 7 note).
  for (const StringLiteralExpr *S : P.StringLiterals) {
    BaseLocation B;
    B.Kind = BaseLocKind::StringLit;
    B.Name = "str#" + std::to_string(S->literalId());
    B.Ty = nullptr;
    B.SingleInstance = true;
    B.SiteId = S->literalId();
    StringBases.push_back(Paths.addBaseLocation(std::move(B)));
  }

  // Heap allocation sites.
  for (unsigned Site = 0; Site < P.NumAllocSites; ++Site) {
    BaseLocation B;
    B.Kind = BaseLocKind::Heap;
    B.Name = "heap@" + std::to_string(Site);
    B.SingleInstance = false; // Heap summaries are never strongly updated.
    B.SiteId = Site;
    HeapBases.push_back(Paths.addBaseLocation(std::move(B)));
  }

  // Functions (referents of function values).
  for (const FuncDecl *Fn : P.Functions) {
    BaseLocation B;
    B.Kind = BaseLocKind::Function;
    B.Name = "fn:" + P.Names.text(Fn->name());
    B.Ty = Fn->type();
    B.SingleInstance = true;
    B.Fn = Fn;
    FunctionBases.emplace(Fn, Paths.addBaseLocation(std::move(B)));
  }

  // Store-resident locals and parameters, per function in declaration
  // order. Locals of recursive procedures may have several simultaneously
  // live instances, so they are weakly updateable (footnote 4, scheme 2).
  for (const FuncDecl *Fn : P.Functions) {
    if (!Fn->isDefined())
      continue;
    auto AddVar = [&](const VarDecl *V) {
      if (!isStoreResident(V))
        return;
      BaseLocation B;
      B.Kind = BaseLocKind::Local;
      B.Name = P.Names.text(Fn->name()) + "." + P.Names.text(V->name());
      B.Ty = V->type();
      B.SingleInstance = !Fn->isRecursive();
      B.Var = V;
      VarBases.emplace(V, Paths.addBaseLocation(std::move(B)));
    };
    for (const VarDecl *Param : Fn->params())
      AddVar(Param);
    for (const VarDecl *Local : Fn->locals())
      AddVar(Local);
  }
}

BaseLocId LocationTable::varBase(const VarDecl *Var) const {
  auto It = VarBases.find(Var);
  assert(It != VarBases.end() && "variable is not store-resident");
  return It->second;
}

BaseLocId LocationTable::heapBase(unsigned SiteId) const {
  assert(SiteId < HeapBases.size() && "unknown allocation site");
  return HeapBases[SiteId];
}

BaseLocId LocationTable::functionBase(const FuncDecl *Fn) const {
  auto It = FunctionBases.find(Fn);
  assert(It != FunctionBases.end() && "unknown function");
  return It->second;
}

BaseLocId LocationTable::stringBase(unsigned LiteralId) const {
  assert(LiteralId < StringBases.size() && "unknown string literal");
  return StringBases[LiteralId];
}

StorageClass LocationTable::classify(PathId P, const PathTable &Paths) const {
  if (!Paths.isLocation(P))
    return StorageClass::Offset;
  switch (Paths.base(Paths.baseOf(P)).Kind) {
  case BaseLocKind::Global:
  case BaseLocKind::StringLit:
    return StorageClass::Global;
  case BaseLocKind::Local:
    return StorageClass::Local;
  case BaseLocKind::Heap:
    return StorageClass::Heap;
  case BaseLocKind::Function:
    return StorageClass::Function;
  }
  return StorageClass::Global;
}
