//===- checker/Diagnostics.cpp --------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/Diagnostics.h"

#include <set>

using namespace vdga;

namespace {

class DiagCtx {
public:
  DiagCtx(const Graph &G, const Program &P, const PathTable &Paths,
          const PairTable &PT, const PointsToResult &CI,
          const ModRefInfo &MR, const DefUseInfo &DU)
      : G(G), P(P), Paths(Paths), PT(PT), CI(CI), MR(MR), DU(DU) {}

  std::vector<Finding> run() {
    computeReachable();
    checkDanglingEscapes();
    checkUninitReads();
    checkNullWrites();
    return std::move(Findings);
  }

private:
  const Graph &G;
  const Program &P;
  const PathTable &Paths;
  const PairTable &PT;
  const PointsToResult &CI;
  const ModRefInfo &MR;
  const DefUseInfo &DU;
  std::vector<Finding> Findings;
  /// Functions reachable from the bootstrap region along the
  /// solver-discovered call graph; dead functions stay quiet.
  std::set<const FuncDecl *> Reachable;

  void computeReachable() {
    // The bootstrap region (Owner == null) always executes; grow the set
    // through the callees the CI solver discovered until fixpoint (the
    // call graph is small, so the quadratic loop is fine).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (NodeId N = 0; N < G.numNodes(); ++N) {
        const Node &Nd = G.node(N);
        if (Nd.Kind != NodeKind::Call || !reachable(Nd.Owner))
          continue;
        for (const FunctionInfo *FI : CI.callees(N))
          if (FI->Fn && Reachable.insert(FI->Fn).second)
            Changed = true;
      }
    }
  }

  bool reachable(const FuncDecl *Fn) const {
    return Fn == nullptr || Reachable.count(Fn) != 0;
  }

  BaseLocKind kindOf(PathId Loc) const {
    return Paths.base(Paths.baseOf(Loc)).Kind;
  }

  Finding &add(const char *Pass, NodeId N, std::string Msg) {
    Finding F;
    F.Pass = Pass;
    F.Severity = FindingSeverity::Warning;
    F.Node = N;
    if (N != InvalidId)
      F.Loc = G.node(N).Loc;
    F.Message = std::move(Msg);
    Findings.push_back(std::move(F));
    return Findings.back();
  }

  void attachProvenance(Finding &F, OutputId Out, PairId Pair) {
    F.Provenance = renderDerivationChain(G, CI, PT, Paths, P.Names, Out, Pair);
  }

  void checkDanglingEscapes();
  void checkUninitReads();
  void checkNullWrites();
};

void DiagCtx::checkDanglingEscapes() {
  // A function returning the address of one of its own locals.
  for (const FunctionInfo &FI : G.functions()) {
    const Node &Ret = G.node(FI.ReturnNode);
    if (Ret.Kind != NodeKind::Return || !Ret.HasValue)
      continue;
    OutputId ValOut = G.producerOf(FI.ReturnNode, 0);
    for (PairId Pair : CI.pairs(ValOut)) {
      const PointsToPair &PP = PT.pair(Pair);
      if (PP.Path != PathId::EmptyOffset || !Paths.isLocation(PP.Referent))
        continue;
      const BaseLocation &B = Paths.base(Paths.baseOf(PP.Referent));
      if (B.Kind != BaseLocKind::Local || !B.Var || B.Var->owner() != FI.Fn)
        continue;
      Finding &F =
          add("dangling-escape", FI.ReturnNode,
              P.Names.text(FI.Fn->name()) +
                  " may return the address of its own local " + B.Name);
      F.Path = Paths.str(PP.Referent, P.Names);
      attachProvenance(F, ValOut, Pair);
    }
  }

  // The address of a local written into global- or heap-based storage,
  // where it outlives the frame.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Nd = G.node(N);
    if (Nd.Kind != NodeKind::Update || !reachable(Nd.Owner))
      continue;
    bool DurableTarget = false;
    for (PathId Loc : CI.pointerReferents(G.producerOf(N, 0), PT)) {
      BaseLocKind K = kindOf(Loc);
      if (K == BaseLocKind::Global || K == BaseLocKind::Heap)
        DurableTarget = true;
    }
    if (!DurableTarget)
      continue;
    OutputId ValOut = G.producerOf(N, 2);
    for (PairId Pair : CI.pairs(ValOut)) {
      const PointsToPair &PP = PT.pair(Pair);
      if (PP.Path != PathId::EmptyOffset || !Paths.isLocation(PP.Referent))
        continue;
      const BaseLocation &B = Paths.base(Paths.baseOf(PP.Referent));
      if (B.Kind != BaseLocKind::Local)
        continue;
      Finding &F = add("dangling-escape", N,
                       "address of local " + B.Name +
                           " may be stored into global or heap memory");
      F.Path = Paths.str(PP.Referent, P.Names);
      attachProvenance(F, ValOut, Pair);
    }
  }
}

void DiagCtx::checkUninitReads() {
  // Per-site: a read no update may have defined, over uninitialized
  // storage (locals and heap; globals and string literals start zeroed).
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Nd = G.node(N);
    if (Nd.Kind != NodeKind::Lookup || !reachable(Nd.Owner))
      continue;
    if (!DU.defsFor(N).empty())
      continue;
    for (PathId Loc : CI.pointerReferents(G.producerOf(N, 0), PT)) {
      BaseLocKind K = kindOf(Loc);
      if (K != BaseLocKind::Local && K != BaseLocKind::Heap)
        continue;
      Finding &F = add("uninit-read", N,
                       "read with no reaching write may observe "
                       "uninitialized storage");
      F.Path = Paths.str(Loc, P.Names);
    }
  }

  // Whole-program: local/heap storage the entry point transitively reads
  // but nothing ever writes. The mod/ref client makes this a one-line
  // query per referenced location.
  const FuncDecl *Entry = P.findFunction("main");
  if (!Entry)
    return;
  auto It = MR.Ref.find(Entry);
  if (It == MR.Ref.end())
    return;
  for (PathId Loc : It->second) {
    BaseLocKind K = kindOf(Loc);
    if (K != BaseLocKind::Local && K != BaseLocKind::Heap)
      continue;
    if (MR.mayMod(Entry, Loc, Paths))
      continue;
    Finding &F = add("uninit-read", InvalidId,
                     "location is read during execution but never written");
    F.Path = Paths.str(Loc, P.Names);
  }
}

void DiagCtx::checkNullWrites() {
  // An indirect write whose location pointer has no referents on any
  // path: every execution reaching it dereferences null or an undefined
  // pointer. Direct writes root at a ConstPath and can never fire.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Nd = G.node(N);
    if (Nd.Kind != NodeKind::Update || !Nd.IndirectAccess ||
        !reachable(Nd.Owner))
      continue;
    if (!CI.pointerReferents(G.producerOf(N, 0), PT).empty())
      continue;
    add("null-write", N,
        "write through a pointer that is null or undefined on every path");
  }
}

} // namespace

std::vector<Finding> vdga::runDiagnostics(const Graph &G, const Program &P,
                                          const PathTable &Paths,
                                          const PairTable &PT,
                                          const PointsToResult &CI,
                                          const ModRefInfo &MR,
                                          const DefUseInfo &DU) {
  return DiagCtx(G, P, Paths, PT, CI, MR, DU).run();
}
