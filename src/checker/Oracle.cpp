//===- checker/Oracle.cpp -------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/Oracle.h"

#include <map>
#include <set>

using namespace vdga;

namespace {

/// The location-producing outputs feeding each access expression's
/// lookup (read) or update (write) nodes. One expression can compile to
/// several nodes (loop bodies are not duplicated, but struct copies
/// fan out per field), so sites union over all of them.
struct SiteNodes {
  std::vector<NodeId> Nodes;
};

std::map<const Expr *, SiteNodes> collectSites(const Graph &G, bool Writes) {
  std::map<const Expr *, SiteNodes> Out;
  NodeKind Wanted = Writes ? NodeKind::Update : NodeKind::Lookup;
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const Node &Nd = G.node(N);
    if (Nd.Kind == Wanted && Nd.Origin)
      Out[Nd.Origin].Nodes.push_back(N);
  }
  return Out;
}

} // namespace

OracleResult vdga::runSoundnessOracle(const Graph &G, const PathTable &Paths,
                                      const PairTable &PT,
                                      const StringInterner &Names,
                                      const AccessTrace &Trace,
                                      const OracleAnalyses &A) {
  OracleResult R;

  for (bool Writes : {false, true}) {
    auto Sites = collectSites(G, Writes);
    const auto &Observed = Writes ? Trace.Writes : Trace.Reads;
    const char *Dir = Writes ? "write" : "read";

    for (const auto &[Site, DynamicPaths] : Observed) {
      auto It = Sites.find(Site);
      if (It == Sites.end())
        continue; // Site compiled to a scalarized access; nothing to check.
      ++R.Sites;

      // Union each solution's prediction over the site's nodes, lazily
      // per analysis. The location input is input 0 of both node kinds.
      auto Predicted = [&](auto &&Referents) {
        std::set<PathId> S;
        for (NodeId N : It->second.Nodes) {
          auto Locs = Referents(G.producerOf(N, 0));
          S.insert(Locs.begin(), Locs.end());
        }
        return S;
      };
      std::map<std::string, std::set<PathId>> Solutions;
      if (A.CI)
        Solutions["ci"] =
            Predicted([&](OutputId O) { return A.CI->pointerReferents(O, PT); });
      if (A.CS)
        Solutions["cs"] =
            Predicted([&](OutputId O) { return A.CS->pointerReferents(O, PT); });
      if (A.Weihl)
        Solutions["weihl"] = Predicted(
            [&](OutputId O) { return A.Weihl->pointerReferents(O, PT); });
      std::set<BaseLocId> SteensBases;
      if (A.Steens)
        for (NodeId N : It->second.Nodes) {
          const auto &Ptees = A.Steens->pointees(G.producerOf(N, 0));
          SteensBases.insert(Ptees.begin(), Ptees.end());
        }

      for (PathId Dyn : DynamicPaths) {
        auto Miss = [&](const std::string &Analysis) {
          Finding F;
          F.Pass = "oracle";
          F.Severity = FindingSeverity::Error;
          F.Loc = Site->loc();
          F.Node = It->second.Nodes.front();
          F.Analysis = Analysis;
          F.Path = Paths.str(Dyn, Names);
          F.Message = std::string("concrete ") + Dir + " target missed by " +
                      Analysis + " analysis";
          R.Findings.push_back(std::move(F));
        };
        for (const auto &[Name, Paths_] : Solutions) {
          ++R.Checks;
          if (!Paths_.count(Dyn))
            Miss(Name);
        }
        if (A.Steens) {
          ++R.Checks;
          if (!SteensBases.count(Paths.baseOf(Dyn)))
            Miss("steens");
        }
      }
    }
  }
  return R;
}
