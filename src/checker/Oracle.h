//===- checker/Oracle.h - Interpreter-backed soundness oracle --*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The soundness oracle: cross-checks the static points-to solutions
/// against a concrete execution. The interpreter records every abstract
/// location actually read or written at each memory-access expression
/// (AccessTrace, keyed by the same Origin expressions the VDG builder
/// stamps on lookup/update nodes); the oracle asserts each observed
/// referent is covered by every solution it is handed — CI, stripped CS,
/// and the Weihl and Steensgaard baselines. A miss means the analysis
/// dropped a true pair, which would void the paper's precision comparison,
/// so misses are Error findings carrying the access path, program point
/// and the analysis that missed it.
///
/// Steensgaard is field-insensitive (one equivalence class per base), so
/// its coverage obligation is the observed path's base location rather
/// than the exact path.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CHECKER_ORACLE_H
#define VDGA_CHECKER_ORACLE_H

#include "baseline/SteensgaardAnalysis.h"
#include "baseline/WeihlAnalysis.h"
#include "checker/Checker.h"
#include "interp/Interpreter.h"

namespace vdga {

/// The solutions one oracle run checks. Null entries are skipped (the
/// oracle checks whatever it is handed; the driver passes all four).
struct OracleAnalyses {
  const PointsToResult *CI = nullptr;
  /// The stripped context-sensitive solution.
  const PointsToResult *CS = nullptr;
  const WeihlResult *Weihl = nullptr;
  const SteensgaardResult *Steens = nullptr;
};

/// What one oracle run produced.
struct OracleResult {
  std::vector<Finding> Findings;
  /// Distinct (expression, direction) access sites cross-checked.
  uint64_t Sites = 0;
  /// (site, observed path, analysis) coverage obligations evaluated.
  uint64_t Checks = 0;

  bool ok() const { return Findings.empty(); }
};

/// Checks every observed access in \p Trace against the solutions in
/// \p A. The caller runs the interpreter (AnalyzedProgram::interpret) and
/// hands over the trace, so tests can also feed synthetic traces or
/// deliberately crippled solutions.
OracleResult runSoundnessOracle(const Graph &G, const PathTable &Paths,
                                const PairTable &PT,
                                const StringInterner &Names,
                                const AccessTrace &Trace,
                                const OracleAnalyses &A);

} // namespace vdga

#endif // VDGA_CHECKER_ORACLE_H
