//===- checker/Diagnostics.h - Alias-driven bug finding --------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic client passes over the context-insensitive solution plus the
/// mod/ref and def/use clients — the "real consumer" use of the paper's
/// analyses. Three may-analysis passes emit Warning findings about the
/// analyzed program:
///
///   * dangling-escape — the address of a stack local escapes its frame:
///     returned from its own function, or written into a global- or
///     heap-based location;
///   * uninit-read — a memory read with no def/use predecessor whose
///     possible referents include local or heap storage (globals and
///     string literals are initialized);
///   * null-write — an indirect write whose location pointer has no
///     referents on any execution path: definitely null or undefined.
///
/// Passes only report on analysis-reachable nodes (the store input carries
/// at least one pair), so dead code stays quiet. When the CI solution
/// recorded provenance, findings carry the derivation chain of the
/// offending pair back to its Figure 1 seed.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CHECKER_DIAGNOSTICS_H
#define VDGA_CHECKER_DIAGNOSTICS_H

#include "checker/Checker.h"
#include "clients/DefUse.h"
#include "clients/ModRef.h"
#include "memory/LocationTable.h"

namespace vdga {

/// Runs the three diagnostic passes and returns their findings (sorted by
/// the caller as part of the CheckReport).
std::vector<Finding> runDiagnostics(const Graph &G, const Program &P,
                                    const PathTable &Paths,
                                    const PairTable &PT,
                                    const PointsToResult &CI,
                                    const ModRefInfo &MR,
                                    const DefUseInfo &DU);

} // namespace vdga

#endif // VDGA_CHECKER_DIAGNOSTICS_H
