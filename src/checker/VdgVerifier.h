//===- checker/VdgVerifier.h - Deep IR well-formedness checks --*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker subsystem's IR verifier. The build-time verifier
/// (vdg/Verifier.h) checks node arities as the graph is constructed; this
/// pass re-proves the whole-program invariants every solver leans on and
/// that a refactor could silently break:
///
///   * edge consistency — inputs/outputs carry correct back-references and
///     the producer/consumer lists mirror each other exactly;
///   * typed wiring — store inputs are fed by store outputs, store outputs
///     are produced only by store-carrying node kinds, value inputs are
///     never fed stores;
///   * single-threaded stores — following a store value backwards through
///     non-merge producers never cycles (loop back edges enter only
///     through Merge nodes), so every `lookup`/`update` chain is rooted at
///     an Entry or InitStore;
///   * call/return wiring — every defined function registers Entry/Return
///     nodes owned by it, with formal count matching the declaration and
///     the store formal in the last slot;
///   * interned-path algebra — `dom`/`strong-dom`/`stronglyUpdateable`
///     consistency, append/subtract round-trips, and LocationTable
///     registration for every store-resident variable (Section 2's
///     access-path laws, which strong updates depend on).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CHECKER_VDGVERIFIER_H
#define VDGA_CHECKER_VDGVERIFIER_H

#include "checker/Checker.h"
#include "memory/LocationTable.h"
#include "vdg/Graph.h"

namespace vdga {

/// What one verifier run produced.
struct VerifierResult {
  std::vector<Finding> Findings;
  /// Invariants evaluated (published as checker.verifier.checks).
  uint64_t Checks = 0;

  bool ok() const { return Findings.empty(); }
};

/// Runs every check in the file comment over a fronted program.
VerifierResult verifyAnalyzedGraph(const Graph &G, const Program &P,
                                   const PathTable &Paths,
                                   const LocationTable &Locs);

} // namespace vdga

#endif // VDGA_CHECKER_VDGVERIFIER_H
