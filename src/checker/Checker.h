//===- checker/Checker.h - Checking & diagnostics subsystem ----*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker subsystem's shared vocabulary: check levels, structured
/// findings, and the per-program CheckReport the three passes fill in.
///
/// Three cooperating passes guard the analyses (the paper's argument rests
/// on their soundness — a CI/CS comparison is vacuous if either solver
/// drops true pairs):
///   * the VDG verifier (VdgVerifier.h) re-proves IR well-formedness over
///     a fronted program: typed node wiring, store threading, call/return
///     registration, interned-path algebra;
///   * the soundness oracle (Oracle.h) runs the concrete interpreter and
///     asserts every observed pointer target is covered by the CI, CS,
///     Weihl and Steensgaard solutions;
///   * the diagnostic client passes (Diagnostics.h) turn the CI solution
///     plus the mod/ref and def/use clients into bug findings
///     (dangling-stack escapes, possibly-uninitialized reads,
///     possibly-null writes) with derivation-chain provenance.
///
/// Findings pre-render their paths and provenance, so a CheckReport is
/// self-contained, bit-comparable across runs, and serializable without
/// the program's interning tables.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_CHECKER_CHECKER_H
#define VDGA_CHECKER_CHECKER_H

#include "pointsto/Solver.h"
#include "support/Budget.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace vdga {

/// How much checking the pipeline performs. Levels are cumulative: each
/// one runs everything below it.
enum class CheckLevel : uint8_t {
  None = 0,     ///< No checking (the default pipeline).
  Verify = 1,   ///< VDG verifier only.
  Oracle = 2,   ///< Verifier + interpreter-backed soundness oracle.
  Diagnose = 3, ///< Verifier + oracle + alias-driven diagnostics.
};

const char *checkLevelName(CheckLevel L);

/// Options threaded through `runChecks` / `checkCorpus`.
struct CheckOptions {
  CheckLevel Level = CheckLevel::Verify;
  /// Worklist schedule for the solver runs the oracle checks against.
  /// Findings are schedule-independent (asserted by the determinism
  /// tests), matching Figure 1's order-independence.
  WorklistOrder Order = WorklistOrder::FIFO;
  /// stdin contents for the oracle's interpreter run.
  std::string OracleInput;
  /// Step cap for the oracle's interpreter run. Exceeding it truncates
  /// the run (the oracle then checks the trace prefix) instead of
  /// reporting a spurious execution failure.
  uint64_t OracleMaxSteps = 50'000'000;
  /// Call-depth cap for the oracle's interpreter run; same truncation
  /// semantics as OracleMaxSteps.
  unsigned OracleMaxCallDepth = 1024;
  /// Budget for the solver runs the oracle checks against. An analysis
  /// that trips it is *degraded*, not broken: its coverage assertion is
  /// skipped with a Note finding (a partial solve legitimately misses
  /// pairs), while the analyses that completed are still held to full
  /// coverage. Default: unlimited.
  ResourceBudget SolverBudget;
};

/// Severity of one finding. Verifier violations and oracle misses are
/// errors (the analysis infrastructure itself is broken); diagnostics are
/// may-analysis warnings about the analyzed program.
enum class FindingSeverity : uint8_t { Note, Warning, Error };

const char *findingSeverityName(FindingSeverity S);

/// One structured finding from any checker pass.
struct Finding {
  /// Emitting pass: "verifier", "oracle", "dangling-escape",
  /// "uninit-read" or "null-write".
  std::string Pass;
  FindingSeverity Severity = FindingSeverity::Warning;
  /// Program point the finding anchors to (invalid when program-wide).
  SourceLoc Loc;
  /// VDG node involved, or InvalidId.
  NodeId Node = InvalidId;
  std::string Message;
  /// Rendered access path involved, when applicable.
  std::string Path;
  /// Oracle findings: the analysis that missed the pair ("ci", "cs",
  /// "weihl", "steens").
  std::string Analysis;
  /// Rendered derivation chain (one line per step, outermost first) from
  /// the Derivation provenance machinery, when recorded.
  std::vector<std::string> Provenance;
};

/// Everything one checked program produced.
struct CheckReport {
  std::vector<Finding> Findings;

  bool VerifierRan = false;
  bool OracleRan = false;
  bool DiagnoseRan = false;

  /// Invariants the verifier evaluated.
  uint64_t VerifierChecks = 0;
  /// Memory-access sites the oracle cross-checked.
  uint64_t OracleSites = 0;
  /// (site, path, analysis) coverage checks the oracle performed.
  uint64_t OracleChecks = 0;
  /// Steps the oracle's interpreter run executed.
  uint64_t OracleSteps = 0;
  /// Analyses whose solves degraded under CheckOptions::SolverBudget and
  /// were therefore excluded from oracle coverage (each also leaves a
  /// Note finding).
  unsigned DegradedAnalyses = 0;

  unsigned countSeverity(FindingSeverity S) const;
  unsigned errorCount() const { return countSeverity(FindingSeverity::Error); }

  /// True when no pass reported an Error-severity finding.
  bool clean() const { return errorCount() == 0; }

  /// Orders findings by (line, column, pass, message) so reports are
  /// bit-identical across worklist schedules and job counts.
  void sortFindings();

  /// Human-readable rendering; contains no timings, so two deterministic
  /// runs render byte-identically.
  std::string renderText() const;

  /// JSON rendering (one object: counters + findings array), same
  /// determinism contract as renderText.
  std::string renderJson() const;
};

/// Renders the recorded CI derivation chain of (Out, Pair) as display
/// lines, outermost instance first, ending at the Figure 1 seed. Empty
/// when provenance was not recorded for the instance.
std::vector<std::string>
renderDerivationChain(const Graph &G, const PointsToResult &R,
                      const PairTable &PT, const PathTable &Paths,
                      const StringInterner &Names, OutputId Out,
                      PairId Pair);

} // namespace vdga

#endif // VDGA_CHECKER_CHECKER_H
