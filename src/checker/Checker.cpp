//===- checker/Checker.cpp ------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"

#include <algorithm>
#include <sstream>
#include <tuple>

using namespace vdga;

const char *vdga::checkLevelName(CheckLevel L) {
  switch (L) {
  case CheckLevel::None:
    return "none";
  case CheckLevel::Verify:
    return "verify";
  case CheckLevel::Oracle:
    return "oracle";
  case CheckLevel::Diagnose:
    return "diagnose";
  }
  return "?";
}

const char *vdga::findingSeverityName(FindingSeverity S) {
  switch (S) {
  case FindingSeverity::Note:
    return "note";
  case FindingSeverity::Warning:
    return "warning";
  case FindingSeverity::Error:
    return "error";
  }
  return "?";
}

unsigned CheckReport::countSeverity(FindingSeverity S) const {
  unsigned N = 0;
  for (const Finding &F : Findings)
    if (F.Severity == S)
      ++N;
  return N;
}

void CheckReport::sortFindings() {
  auto Key = [](const Finding &F) {
    return std::tie(F.Loc.Line, F.Loc.Column, F.Pass, F.Analysis,
                    F.Message, F.Path);
  };
  std::stable_sort(Findings.begin(), Findings.end(),
                   [&](const Finding &A, const Finding &B) {
                     return Key(A) < Key(B);
                   });
}

std::string CheckReport::renderText() const {
  std::ostringstream OS;
  for (const Finding &F : Findings) {
    if (F.Loc.isValid())
      OS << F.Loc.Line << ':' << F.Loc.Column << ": ";
    OS << findingSeverityName(F.Severity) << " [" << F.Pass;
    if (!F.Analysis.empty())
      OS << '/' << F.Analysis;
    OS << "] " << F.Message;
    if (!F.Path.empty())
      OS << " (path " << F.Path << ')';
    OS << '\n';
    for (const std::string &Line : F.Provenance)
      OS << "    " << Line << '\n';
  }
  OS << "checks:";
  if (VerifierRan)
    OS << " verifier=" << VerifierChecks;
  if (OracleRan)
    OS << " oracle-sites=" << OracleSites
       << " oracle-checks=" << OracleChecks;
  if (DegradedAnalyses)
    OS << " degraded=" << DegradedAnalyses;
  OS << " findings=" << Findings.size() << " errors=" << errorCount()
     << '\n';
  return OS.str();
}

namespace {
void jsonEscape(std::ostringstream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}
} // namespace

std::string CheckReport::renderJson() const {
  std::ostringstream OS;
  OS << "{\"schema\":\"vdga-check-v1\""
     << ",\"verifier_ran\":" << (VerifierRan ? "true" : "false")
     << ",\"oracle_ran\":" << (OracleRan ? "true" : "false")
     << ",\"diagnose_ran\":" << (DiagnoseRan ? "true" : "false")
     << ",\"verifier_checks\":" << VerifierChecks
     << ",\"oracle_sites\":" << OracleSites
     << ",\"oracle_checks\":" << OracleChecks
     << ",\"degraded_analyses\":" << DegradedAnalyses
     << ",\"errors\":" << errorCount() << ",\"findings\":[";
  bool First = true;
  for (const Finding &F : Findings) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"pass\":";
    jsonEscape(OS, F.Pass);
    OS << ",\"severity\":\"" << findingSeverityName(F.Severity) << '"';
    if (F.Loc.isValid())
      OS << ",\"line\":" << F.Loc.Line << ",\"column\":" << F.Loc.Column;
    if (F.Node != InvalidId)
      OS << ",\"node\":" << F.Node;
    OS << ",\"message\":";
    jsonEscape(OS, F.Message);
    if (!F.Path.empty()) {
      OS << ",\"path\":";
      jsonEscape(OS, F.Path);
    }
    if (!F.Analysis.empty()) {
      OS << ",\"analysis\":";
      jsonEscape(OS, F.Analysis);
    }
    if (!F.Provenance.empty()) {
      OS << ",\"provenance\":[";
      for (size_t I = 0; I < F.Provenance.size(); ++I) {
        if (I)
          OS << ',';
        jsonEscape(OS, F.Provenance[I]);
      }
      OS << ']';
    }
    OS << '}';
  }
  OS << "]}";
  return OS.str();
}

std::vector<std::string>
vdga::renderDerivationChain(const Graph &G, const PointsToResult &R,
                            const PairTable &PT, const PathTable &Paths,
                            const StringInterner &Names, OutputId Out,
                            PairId Pair) {
  std::vector<std::string> Lines;
  if (!R.provenanceEnabled())
    return Lines;
  // First-derivation chains are acyclic (predecessors were inserted
  // strictly earlier), so the depth cap is belt-and-braces only.
  for (unsigned Depth = 0; Depth < 100; ++Depth) {
    const Derivation *D = R.derivation(Out, Pair);
    std::ostringstream OS;
    const Node &N = G.node(G.output(Out).Node);
    OS << PT.str(Pair, Paths, Names) << " at " << nodeKindName(N.Kind)
       << " @ " << N.Loc.Line << ':' << N.Loc.Column;
    if (!D) {
      OS << " (no recorded derivation)";
      Lines.push_back(OS.str());
      return Lines;
    }
    if (D->isSeed()) {
      const Node &Seed = G.node(D->Node);
      OS << ", seeded @ " << Seed.Loc.Line << ':' << Seed.Loc.Column;
      Lines.push_back(OS.str());
      return Lines;
    }
    const Node &Via = G.node(D->Node);
    OS << ", via " << nodeKindName(Via.Kind) << " @ " << Via.Loc.Line
       << ':' << Via.Loc.Column;
    Lines.push_back(OS.str());
    Out = D->PredOut;
    Pair = D->PredPair;
  }
  Lines.push_back("... (chain truncated)");
  return Lines;
}
