//===- checker/VdgVerifier.cpp --------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/VdgVerifier.h"

#include <set>
#include <sstream>

using namespace vdga;

namespace {

/// Findings past this cap are dropped (one truncation note is kept); a
/// broken invariant usually fires once per node and would swamp reports.
constexpr size_t MaxFindings = 200;

class VerifierCtx {
public:
  VerifierCtx(const Graph &G, const Program &P, const PathTable &Paths,
              const LocationTable &Locs)
      : G(G), P(P), Paths(Paths), Locs(Locs) {}

  VerifierResult run();

private:
  const Graph &G;
  const Program &P;
  const PathTable &Paths;
  const LocationTable &Locs;
  VerifierResult R;
  bool Truncated = false;

  /// Evaluates one invariant: counts it, and files a finding on failure.
  /// Returns \p Ok so callers can chain dependent checks.
  bool check(bool Ok, NodeId N, const std::string &Msg) {
    ++R.Checks;
    if (Ok)
      return true;
    if (R.Findings.size() >= MaxFindings) {
      if (!Truncated) {
        Truncated = true;
        Finding F;
        F.Pass = "verifier";
        F.Severity = FindingSeverity::Error;
        F.Message = "further verifier findings truncated";
        R.Findings.push_back(std::move(F));
      }
      return false;
    }
    Finding F;
    F.Pass = "verifier";
    F.Severity = FindingSeverity::Error;
    F.Node = N;
    if (N != InvalidId)
      F.Loc = G.node(N).Loc;
    F.Message = Msg;
    R.Findings.push_back(std::move(F));
    return false;
  }

  static std::string at(NodeId N) {
    return "node " + std::to_string(N);
  }

  /// Index of the store input of \p N, or -1 when the kind has none.
  static int storeInputIndex(const Node &N) {
    switch (N.Kind) {
    case NodeKind::Lookup:
    case NodeKind::Update:
      return 1;
    case NodeKind::Call:
    case NodeKind::Return:
      return N.Inputs.empty() ? -1 : static_cast<int>(N.Inputs.size()) - 1;
    default:
      return -1;
    }
  }

  void checkEdges();
  void checkNodeShape(NodeId Id, const Node &N);
  void checkStoreThreading();
  void checkFunctions();
  void checkLocationTable();
  void checkPathAlgebra();
};

void VerifierCtx::checkEdges() {
  // Node -> edge direction: every input/output slot points back at its
  // node, and wired producers mirror their consumer lists.
  for (NodeId Id = 0; Id < G.numNodes(); ++Id) {
    const Node &N = G.node(Id);
    for (size_t I = 0; I < N.Inputs.size(); ++I) {
      InputId In = N.Inputs[I];
      if (!check(In < G.numInputs(), Id, at(Id) + " input id out of range"))
        continue;
      const InputInfo &Info = G.input(In);
      check(Info.Node == Id && Info.Index == I, Id,
            at(Id) + " input " + std::to_string(I) +
                " back-reference mismatch");
      if (!check(Info.Producer != InvalidId, Id,
                 at(Id) + " input " + std::to_string(I) + " is unwired"))
        continue;
      if (!check(Info.Producer < G.numOutputs(), Id,
                 at(Id) + " input " + std::to_string(I) +
                     " producer out of range"))
        continue;
      const OutputInfo &Prod = G.output(Info.Producer);
      bool Mirrored = false;
      for (InputId C : Prod.Consumers)
        if (C == In)
          Mirrored = true;
      check(Mirrored, Id,
            at(Id) + " input " + std::to_string(I) +
                " missing from its producer's consumer list");
    }
    for (size_t O = 0; O < N.Outputs.size(); ++O) {
      OutputId Out = N.Outputs[O];
      if (!check(Out < G.numOutputs(), Id, at(Id) + " output id out of range"))
        continue;
      const OutputInfo &Info = G.output(Out);
      check(Info.Node == Id && Info.Index == O, Id,
            at(Id) + " output " + std::to_string(O) +
                " back-reference mismatch");
      for (InputId C : Info.Consumers) {
        if (!check(C < G.numInputs(), Id,
                   at(Id) + " consumer id out of range"))
          continue;
        check(G.input(C).Producer == Out, Id,
              at(Id) + " output " + std::to_string(O) +
                  " consumer does not point back at it");
      }
    }
  }
  // Edge -> node direction: no orphaned slots.
  for (InputId In = 0; In < G.numInputs(); ++In) {
    const InputInfo &Info = G.input(In);
    bool Owned = Info.Node < G.numNodes() &&
                 Info.Index < G.node(Info.Node).Inputs.size() &&
                 G.node(Info.Node).Inputs[Info.Index] == In;
    check(Owned, Info.Node < G.numNodes() ? Info.Node : InvalidId,
          "input " + std::to_string(In) + " not owned by its node");
  }
  for (OutputId Out = 0; Out < G.numOutputs(); ++Out) {
    const OutputInfo &Info = G.output(Out);
    bool Owned = Info.Node < G.numNodes() &&
                 Info.Index < G.node(Info.Node).Outputs.size() &&
                 G.node(Info.Node).Outputs[Info.Index] == Out;
    check(Owned, Info.Node < G.numNodes() ? Info.Node : InvalidId,
          "output " + std::to_string(Out) + " not owned by its node");
  }
}

void VerifierCtx::checkNodeShape(NodeId Id, const Node &N) {
  auto InKinds = [&](size_t I) {
    OutputId Prod = G.input(N.Inputs[I]).Producer;
    return Prod == InvalidId ? ValueKind::Scalar : G.output(Prod).Kind;
  };
  auto OutKind = [&](size_t O) { return G.output(N.Outputs[O]).Kind; };

  // Store inputs are fed by store outputs and vice versa: a value slot fed
  // a store (or a store slot fed a value) would let the solvers smuggle
  // whole stores through pointer transfer functions.
  int StoreIn = storeInputIndex(N);
  for (size_t I = 0; I < N.Inputs.size(); ++I) {
    if (G.input(N.Inputs[I]).Producer == InvalidId)
      continue; // Flagged by checkEdges.
    bool ExpectStore = static_cast<int>(I) == StoreIn;
    if (N.Kind == NodeKind::Merge)
      ExpectStore = !N.Outputs.empty() && OutKind(0) == ValueKind::Store;
    check((InKinds(I) == ValueKind::Store) == ExpectStore, Id,
          at(Id) + " (" + nodeKindName(N.Kind) + ") input " +
              std::to_string(I) +
              (ExpectStore ? " must be fed a store" : " fed a store value"));
  }

  switch (N.Kind) {
  case NodeKind::ConstScalar:
    check(N.Inputs.empty() && N.Outputs.size() == 1 &&
              OutKind(0) != ValueKind::Store,
          Id, at(Id) + " const-scalar arity/kind");
    break;
  case NodeKind::ConstPath:
    check(N.Inputs.empty() && N.Outputs.size() == 1 &&
              (OutKind(0) == ValueKind::Pointer ||
               OutKind(0) == ValueKind::Function),
          Id, at(Id) + " const-path arity/kind");
    if (check(index(N.Path) < Paths.numPaths(), Id,
              at(Id) + " const-path payload out of range") &&
        check(Paths.isLocation(N.Path), Id,
              at(Id) + " const-path payload is an offset, not a location"))
      check(index(Paths.baseOf(N.Path)) < Paths.numBases(), Id,
            at(Id) + " const-path base out of range");
    break;
  case NodeKind::Lookup:
    check(N.Inputs.size() == 2 && N.Outputs.size() == 1 &&
              OutKind(0) != ValueKind::Store,
          Id, at(Id) + " lookup arity/kind");
    break;
  case NodeKind::Update:
    check(N.Inputs.size() == 3 && N.Outputs.size() == 1 &&
              OutKind(0) == ValueKind::Store,
          Id, at(Id) + " update arity/kind");
    break;
  case NodeKind::Offset:
  case NodeKind::PtrArith:
    check(!N.Inputs.empty() && N.Outputs.size() == 1 &&
              OutKind(0) != ValueKind::Store,
          Id, at(Id) + " offset/ptr-arith arity/kind");
    break;
  case NodeKind::Merge:
    if (check(N.Outputs.size() == 1, Id, at(Id) + " merge output arity"))
      for (size_t I = 0; I < N.Inputs.size(); ++I) {
        OutputId Prod = G.input(N.Inputs[I]).Producer;
        if (Prod == InvalidId)
          continue;
        // Scalar constants are kind-polymorphic (a literal 0 merges into
        // pointer values as null): they carry no pairs, so uniting them
        // into any non-store merge is sound.
        bool NullConst =
            InKinds(I) == ValueKind::Scalar &&
            G.node(G.output(Prod).Node).Kind == NodeKind::ConstScalar &&
            OutKind(0) != ValueKind::Store;
        check(NullConst || InKinds(I) == OutKind(0), Id,
              at(Id) + " merge input " + std::to_string(I) +
                  " kind differs from its output");
      }
    break;
  case NodeKind::ScalarOp:
    check(N.Outputs.size() == 1 && OutKind(0) != ValueKind::Store, Id,
          at(Id) + " scalar-op arity/kind");
    break;
  case NodeKind::Call: {
    size_t WantOuts = N.HasResult ? 2 : 1;
    if (check(N.Inputs.size() >= 2 && N.Outputs.size() == WantOuts, Id,
              at(Id) + " call arity")) {
      check(OutKind(WantOuts - 1) == ValueKind::Store, Id,
            at(Id) + " call store output kind");
      if (N.HasResult)
        check(OutKind(0) != ValueKind::Store, Id,
              at(Id) + " call result output kind");
    }
    break;
  }
  case NodeKind::Entry:
    if (check(N.Inputs.empty() && !N.Outputs.empty(), Id,
              at(Id) + " entry arity"))
      check(OutKind(N.Outputs.size() - 1) == ValueKind::Store, Id,
            at(Id) + " entry store formal must be last");
    break;
  case NodeKind::Return: {
    size_t WantIns = N.HasValue ? 2 : 1;
    check(N.Inputs.size() == WantIns && N.Outputs.empty(), Id,
          at(Id) + " return arity");
    break;
  }
  case NodeKind::InitStore:
    check(N.Inputs.empty() && N.Outputs.size() == 1 &&
              OutKind(0) == ValueKind::Store,
          Id, at(Id) + " init-store arity/kind");
    break;
  }

  // Store outputs come only from store-carrying kinds.
  bool MayProduceStore =
      N.Kind == NodeKind::Update || N.Kind == NodeKind::Call ||
      N.Kind == NodeKind::Entry || N.Kind == NodeKind::InitStore ||
      N.Kind == NodeKind::Merge;
  for (size_t O = 0; O < N.Outputs.size(); ++O)
    if (OutKind(O) == ValueKind::Store)
      check(MayProduceStore, Id,
            at(Id) + " (" + nodeKindName(N.Kind) +
                ") must not produce a store output");

  if (N.Kind == NodeKind::Lookup || N.Kind == NodeKind::Update)
    check(!N.IndirectAccess || N.Origin != nullptr, Id,
          at(Id) + " indirect access without an origin expression");
}

void VerifierCtx::checkStoreThreading() {
  // Every store chain followed backwards through non-merge producers must
  // reach an Entry, InitStore or Merge in finitely many steps: loop back
  // edges enter only through merges, so a cycle of Update/Call store
  // threading would make the solvers' store transfer functions unsound.
  enum : uint8_t { Unknown, Visiting, Done };
  std::vector<uint8_t> State(G.numNodes(), Unknown);
  for (NodeId Start = 0; Start < G.numNodes(); ++Start) {
    if (State[Start] != Unknown || storeInputIndex(G.node(Start)) < 0)
      continue;
    std::vector<NodeId> Stack{Start};
    while (!Stack.empty()) {
      NodeId Cur = Stack.back();
      const Node &N = G.node(Cur);
      int SI = storeInputIndex(N);
      NodeId Pred = InvalidId;
      if (SI >= 0 && static_cast<size_t>(SI) < N.Inputs.size()) {
        OutputId Prod = G.input(N.Inputs[SI]).Producer;
        if (Prod != InvalidId)
          Pred = G.output(Prod).Node;
      }
      if (State[Cur] == Done) {
        Stack.pop_back();
        continue;
      }
      ++R.Checks;
      bool Terminal =
          Pred == InvalidId || N.Kind == NodeKind::Merge ||
          N.Kind == NodeKind::Entry || N.Kind == NodeKind::InitStore;
      if (!Terminal) {
        const Node &PredN = G.node(Pred);
        Terminal = PredN.Kind == NodeKind::Merge ||
                   PredN.Kind == NodeKind::Entry ||
                   PredN.Kind == NodeKind::InitStore ||
                   storeInputIndex(PredN) < 0;
      }
      if (Terminal || State[Pred] == Done) {
        State[Cur] = Done;
        Stack.pop_back();
        continue;
      }
      if (State[Pred] == Visiting) {
        check(false, Cur,
              at(Cur) + " store chain cycles without passing a merge");
        State[Cur] = Done;
        Stack.pop_back();
        continue;
      }
      State[Cur] = Visiting;
      Stack.push_back(Pred);
    }
  }
}

void VerifierCtx::checkFunctions() {
  std::set<const FuncDecl *> Defined;
  for (const FuncDecl *Fn : P.Functions)
    if (Fn->isDefined())
      Defined.insert(Fn);

  for (NodeId Id = 0; Id < G.numNodes(); ++Id) {
    const Node &N = G.node(Id);
    check(N.Owner == nullptr || Defined.count(N.Owner) != 0, Id,
          at(Id) + " owner is not a defined function");
  }

  std::set<const FuncDecl *> Registered;
  for (const FunctionInfo &FI : G.functions()) {
    if (!check(FI.Fn != nullptr, InvalidId,
               "function registration without a declaration"))
      continue;
    Registered.insert(FI.Fn);
    std::string Name = P.Names.text(FI.Fn->name());
    if (!check(FI.EntryNode < G.numNodes() && FI.ReturnNode < G.numNodes(),
               InvalidId, "function " + Name + " entry/return out of range"))
      continue;
    const Node &E = G.node(FI.EntryNode);
    const Node &Ret = G.node(FI.ReturnNode);
    check(E.Kind == NodeKind::Entry, FI.EntryNode,
          "function " + Name + " entry node has wrong kind");
    check(Ret.Kind == NodeKind::Return, FI.ReturnNode,
          "function " + Name + " return node has wrong kind");
    check(E.Owner == FI.Fn && Ret.Owner == FI.Fn, FI.EntryNode,
          "function " + Name + " entry/return owned by another function");
    check(FI.NumParams == FI.Fn->params().size(), FI.EntryNode,
          "function " + Name + " formal count differs from declaration");
    check(E.Kind != NodeKind::Entry ||
              E.Outputs.size() == FI.NumParams + 1,
          FI.EntryNode,
          "function " + Name + " entry outputs != formals + store");
    check(Ret.Kind != NodeKind::Return ||
              Ret.HasValue ==
                  !FI.Fn->functionType()->returnType()->isVoid(),
          FI.ReturnNode,
          "function " + Name + " return value presence differs from type");
  }

  for (const FuncDecl *Fn : Defined)
    check(Registered.count(Fn) != 0, InvalidId,
          "defined function " + P.Names.text(Fn->name()) +
              " has no entry/return registration");
}

void VerifierCtx::checkLocationTable() {
  auto CheckVar = [&](const VarDecl *V, const FuncDecl *Fn) {
    if (!LocationTable::isStoreResident(V)) {
      ++R.Checks;
      return;
    }
    std::string Name = P.Names.text(V->name());
    if (!check(Locs.hasVarBase(V), InvalidId,
               "store-resident variable " + Name + " has no base location"))
      return;
    const BaseLocation &B = Paths.base(Locs.varBase(V));
    check(B.Var == V, InvalidId,
          "base location of " + Name + " names another variable");
    check(B.Kind == (Fn ? BaseLocKind::Local : BaseLocKind::Global),
          InvalidId, "base location of " + Name + " has wrong storage kind");
    if (Fn)
      check(B.SingleInstance == !Fn->isRecursive(), InvalidId,
            "local " + Name + " instance count disagrees with recursion");
  };

  for (const VarDecl *V : P.Globals)
    CheckVar(V, nullptr);
  for (const FuncDecl *Fn : P.Functions) {
    if (!Fn->isDefined())
      continue;
    for (const VarDecl *Param : Fn->params())
      CheckVar(Param, Fn);
    for (const VarDecl *Local : Fn->locals())
      CheckVar(Local, Fn);
  }

  for (const FuncDecl *Fn : P.Functions) {
    const BaseLocation &B = Paths.base(Locs.functionBase(Fn));
    check(B.Kind == BaseLocKind::Function && B.Fn == Fn, InvalidId,
          "function base of " + P.Names.text(Fn->name()) + " malformed");
  }
  for (unsigned Site = 0; Site < P.NumAllocSites; ++Site) {
    const BaseLocation &B = Paths.base(Locs.heapBase(Site));
    check(B.Kind == BaseLocKind::Heap && !B.SingleInstance, InvalidId,
          "heap base " + std::to_string(Site) + " malformed");
  }
}

void VerifierCtx::checkPathAlgebra() {
  // Per-path laws.
  std::vector<std::vector<PathId>> ByBase(Paths.numBases());
  for (uint32_t I = 0; I < Paths.numPaths(); ++I) {
    PathId Pi = static_cast<PathId>(I);
    check(Paths.dom(Pi, Pi), InvalidId,
          "path " + std::to_string(I) + " does not dominate itself");
    check(Paths.strongDom(Pi, Pi) == Paths.stronglyUpdateable(Pi),
          InvalidId,
          "path " + std::to_string(I) + " strong-dom(self) inconsistent");
    if (!Paths.isLocation(Pi)) {
      ++R.Checks;
      continue;
    }
    BaseLocId Base = Paths.baseOf(Pi);
    if (!check(index(Base) < Paths.numBases(), InvalidId,
               "path " + std::to_string(I) + " base out of range"))
      continue;
    PathId Root = Paths.basePath(Base);
    if (check(Paths.dom(Root, Pi), InvalidId,
              "base root does not dominate path " + std::to_string(I))) {
      PathId Off = Paths.subtractPrefix(Pi, Root).value();
      check(!Paths.isLocation(Off) && Paths.depth(Off) == Paths.depth(Pi),
            InvalidId,
            "root subtraction of path " + std::to_string(I) +
                " is not a same-depth offset");
    }
    check(!Paths.stronglyUpdateable(Pi) ||
              Paths.base(Base).SingleInstance,
          InvalidId,
          "path " + std::to_string(I) +
              " strongly updateable over a multi-instance base");
    if (ByBase[index(Base)].size() < 64)
      ByBase[index(Base)].push_back(Pi);
  }

  // Pairwise laws within a base (capped at 64 paths per base).
  auto CheckPair = [&](PathId A, PathId B) {
    bool Dom = Paths.dom(A, B);
    check(Paths.strongDom(A, B) == (Dom && Paths.stronglyUpdateable(A)),
          InvalidId, "strong-dom disagrees with dom + strong-updateability");
    if (!Dom) {
      ++R.Checks;
      return;
    }
    check(Paths.depth(A) <= Paths.depth(B), InvalidId,
          "dominating path is deeper than the dominated one");
    PathId Off = Paths.subtractPrefix(B, A).value();
    check(Paths.depth(Off) == Paths.depth(B) - Paths.depth(A), InvalidId,
          "prefix subtraction depth mismatch");
    if (A != B && Paths.dom(B, A))
      check(false, InvalidId,
            "distinct interned paths dominate each other");
    else
      ++R.Checks;
  };
  for (const std::vector<PathId> &Group : ByBase)
    for (PathId A : Group)
      for (PathId B : Group)
        CheckPair(A, B);

  // Paths over different bases never dominate each other (sampled: the
  // first path of each base against the next base's first path).
  for (size_t I = 0; I + 1 < ByBase.size(); ++I) {
    if (ByBase[I].empty() || ByBase[I + 1].empty())
      continue;
    check(!Paths.dom(ByBase[I].front(), ByBase[I + 1].front()) &&
              !Paths.dom(ByBase[I + 1].front(), ByBase[I].front()),
          InvalidId, "paths of distinct bases dominate each other");
  }
}

VerifierResult VerifierCtx::run() {
  checkEdges();
  for (NodeId Id = 0; Id < G.numNodes(); ++Id)
    checkNodeShape(Id, G.node(Id));
  checkStoreThreading();
  checkFunctions();
  checkLocationTable();
  checkPathAlgebra();
  return std::move(R);
}

} // namespace

VerifierResult vdga::verifyAnalyzedGraph(const Graph &G, const Program &P,
                                         const PathTable &Paths,
                                         const LocationTable &Locs) {
  return VerifierCtx(G, P, Paths, Locs).run();
}
