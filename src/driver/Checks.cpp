//===- driver/Checks.cpp - Pipeline entry into the checker ----------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/Diagnostics.h"
#include "checker/Oracle.h"
#include "checker/VdgVerifier.h"
#include "driver/Pipeline.h"

using namespace vdga;

CheckReport AnalyzedProgram::runChecks(const CheckOptions &Opts) {
  CheckReport Report;
  if (Opts.Level == CheckLevel::None)
    return Report;

  {
    MetricsRegistry::ScopedTimer T = Metrics.time("checker.verifier.ms");
    VerifierResult VR = verifyAnalyzedGraph(G, *Prog, Paths, *Locs);
    Report.VerifierRan = true;
    Report.VerifierChecks = VR.Checks;
    for (Finding &F : VR.Findings)
      Report.Findings.push_back(std::move(F));
  }

  if (Opts.Level >= CheckLevel::Oracle) {
    // Fresh solver runs under the requested schedule and budget;
    // provenance is only recorded when the diagnostics will render it.
    // An analysis that trips the budget is excluded from oracle coverage
    // with a Note — a partial solve legitimately misses pairs, so holding
    // it to full coverage would manufacture false Errors — while every
    // analysis that completed is still fully asserted.
    bool WantProvenance = Opts.Level >= CheckLevel::Diagnose;
    const ResourceBudget &B = Opts.SolverBudget;
    auto NoteDegraded = [&](const char *Analysis, BudgetTrip Trip) {
      ++Report.DegradedAnalyses;
      Finding F;
      F.Pass = "oracle";
      F.Severity = FindingSeverity::Note;
      F.Analysis = Analysis;
      F.Message = std::string("analysis degraded under budget (") +
                  budgetTripName(Trip) +
                  "); skipping its coverage assertion";
      Report.Findings.push_back(std::move(F));
    };

    PointsToResult CI =
        runContextInsensitive(Opts.Order, WantProvenance, B);
    if (!CI.complete())
      NoteDegraded("ci", CI.Trip);
    // The CS prunings require a complete CI solution; without one the CS
    // leg is skipped outright (it would be unsound, not just partial).
    ContextSensOptions CSO;
    CSO.Budget = B;
    ContextSensResult CS =
        CI.complete() ? runContextSensitive(CI, CSO)
                      : ContextSensResult(0);
    if (!CI.complete())
      NoteDegraded("cs", CI.Trip); // prerequisite degraded; leg skipped.
    else if (!CS.complete())
      NoteDegraded("cs", CS.Trip);
    WeihlResult Weihl = runWeihl(B);
    if (!Weihl.complete())
      NoteDegraded("weihl", Weihl.Trip);
    // Steensgaard degrades internally to the sound top result, which
    // trivially passes coverage — note it, but keep it in the oracle.
    SteensgaardResult Steens = runSteensgaard(B);
    if (!Steens.complete())
      NoteDegraded("steens", Steens.Trip);
    PointsToResult Stripped = CI.complete() && CS.complete()
                                  ? CS.stripAssumptions()
                                  : PointsToResult(0);

    {
      MetricsRegistry::ScopedTimer T = Metrics.time("checker.oracle.ms");
      RunResult RR = interpret(Opts.OracleInput, Opts.OracleMaxSteps,
                               Opts.OracleMaxCallDepth);
      Report.OracleRan = true;
      Report.OracleSteps = RR.StepsExecuted;
      if (!RR.Ok) {
        Finding F;
        F.Pass = "oracle";
        F.Severity = FindingSeverity::Error;
        F.Message = "concrete execution failed: " + RR.Error;
        Report.Findings.push_back(std::move(F));
      } else {
        if (RR.Truncated) {
          // A budget-truncated run is not a failure: every access in the
          // prefix trace is still a valid soundness obligation, so note
          // the truncation and check the prefix.
          Finding F;
          F.Pass = "oracle";
          F.Severity = FindingSeverity::Note;
          F.Message = "concrete execution truncated: " + RR.TruncationReason +
                      "; checking the executed prefix";
          Report.Findings.push_back(std::move(F));
        }
        OracleAnalyses A;
        A.CI = CI.complete() ? &CI : nullptr;
        A.CS = CI.complete() && CS.complete() ? &Stripped : nullptr;
        A.Weihl = Weihl.complete() ? &Weihl : nullptr;
        // Steensgaard is always servable: a tripped solve came back as
        // the conservative top result.
        A.Steens = &Steens;
        OracleResult OR = runSoundnessOracle(G, Paths, PT, Prog->Names,
                                             RR.Trace, A);
        Report.OracleSites = OR.Sites;
        Report.OracleChecks = OR.Checks;
        for (Finding &F : OR.Findings)
          Report.Findings.push_back(std::move(F));
      }
    }

    if (Opts.Level >= CheckLevel::Diagnose) {
      if (!CI.complete()) {
        // Diagnostics consume the CI solution; a partial one would
        // produce schedule-dependent findings (e.g. phantom uninit
        // reads from missing pairs).
        Finding F;
        F.Pass = "diagnostics";
        F.Severity = FindingSeverity::Note;
        F.Message = "skipped: context-insensitive analysis degraded "
                    "under budget";
        Report.Findings.push_back(std::move(F));
      } else {
        MetricsRegistry::ScopedTimer T =
            Metrics.time("checker.diagnose.ms");
        ModRefInfo MR = computeModRef(G, CI, PT, Paths);
        DefUseInfo DU = computeDefUse(G, CI, PT, Paths);
        for (Finding &F : runDiagnostics(G, *Prog, Paths, PT, CI, MR, DU))
          Report.Findings.push_back(std::move(F));
        Report.DiagnoseRan = true;
      }
    }
  }

  Report.sortFindings();
  Metrics.set("checker.verifier.checks", Report.VerifierChecks);
  if (Report.OracleRan) {
    Metrics.set("checker.oracle.sites", Report.OracleSites);
    Metrics.set("checker.oracle.checks", Report.OracleChecks);
  }
  Metrics.set("checker.findings", Report.Findings.size());
  Metrics.set("checker.errors", Report.errorCount());
  if (Report.DegradedAnalyses)
    Metrics.set("checker.degraded", Report.DegradedAnalyses);
  return Report;
}
