//===- driver/Checks.cpp - Pipeline entry into the checker ----------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/Diagnostics.h"
#include "checker/Oracle.h"
#include "checker/VdgVerifier.h"
#include "driver/Pipeline.h"

using namespace vdga;

CheckReport AnalyzedProgram::runChecks(const CheckOptions &Opts) {
  CheckReport Report;
  if (Opts.Level == CheckLevel::None)
    return Report;

  {
    MetricsRegistry::ScopedTimer T = Metrics.time("checker.verifier.ms");
    VerifierResult VR = verifyAnalyzedGraph(G, *Prog, Paths, *Locs);
    Report.VerifierRan = true;
    Report.VerifierChecks = VR.Checks;
    for (Finding &F : VR.Findings)
      Report.Findings.push_back(std::move(F));
  }

  if (Opts.Level >= CheckLevel::Oracle) {
    // Fresh solver runs under the requested schedule; provenance is only
    // recorded when the diagnostics will render it.
    bool WantProvenance = Opts.Level >= CheckLevel::Diagnose;
    PointsToResult CI = runContextInsensitive(Opts.Order, WantProvenance);
    ContextSensResult CS = runContextSensitive(CI);
    WeihlResult Weihl = runWeihl();
    SteensgaardResult Steens = runSteensgaard();
    PointsToResult Stripped =
        CS.Completed ? CS.stripAssumptions() : PointsToResult(0);

    {
      MetricsRegistry::ScopedTimer T = Metrics.time("checker.oracle.ms");
      RunResult RR = interpret(Opts.OracleInput, Opts.OracleMaxSteps,
                               Opts.OracleMaxCallDepth);
      Report.OracleRan = true;
      Report.OracleSteps = RR.StepsExecuted;
      if (!RR.Ok) {
        Finding F;
        F.Pass = "oracle";
        F.Severity = FindingSeverity::Error;
        F.Message = "concrete execution failed: " + RR.Error;
        Report.Findings.push_back(std::move(F));
      } else {
        if (RR.Truncated) {
          // A budget-truncated run is not a failure: every access in the
          // prefix trace is still a valid soundness obligation, so note
          // the truncation and check the prefix.
          Finding F;
          F.Pass = "oracle";
          F.Severity = FindingSeverity::Note;
          F.Message = "concrete execution truncated: " + RR.TruncationReason +
                      "; checking the executed prefix";
          Report.Findings.push_back(std::move(F));
        }
        OracleAnalyses A;
        A.CI = &CI;
        A.CS = CS.Completed ? &Stripped : nullptr;
        A.Weihl = &Weihl;
        A.Steens = &Steens;
        OracleResult OR = runSoundnessOracle(G, Paths, PT, Prog->Names,
                                             RR.Trace, A);
        Report.OracleSites = OR.Sites;
        Report.OracleChecks = OR.Checks;
        for (Finding &F : OR.Findings)
          Report.Findings.push_back(std::move(F));
      }
    }

    if (Opts.Level >= CheckLevel::Diagnose) {
      MetricsRegistry::ScopedTimer T = Metrics.time("checker.diagnose.ms");
      ModRefInfo MR = computeModRef(G, CI, PT, Paths);
      DefUseInfo DU = computeDefUse(G, CI, PT, Paths);
      for (Finding &F : runDiagnostics(G, *Prog, Paths, PT, CI, MR, DU))
        Report.Findings.push_back(std::move(F));
      Report.DiagnoseRan = true;
    }
  }

  Report.sortFindings();
  Metrics.set("checker.verifier.checks", Report.VerifierChecks);
  if (Report.OracleRan) {
    Metrics.set("checker.oracle.sites", Report.OracleSites);
    Metrics.set("checker.oracle.checks", Report.OracleChecks);
  }
  Metrics.set("checker.findings", Report.Findings.size());
  Metrics.set("checker.errors", Report.errorCount());
  return Report;
}
