//===- driver/Governance.cpp ----------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Governance.h"

#include "driver/Pipeline.h"
#include "support/Trace.h"

#include <chrono>

using namespace vdga;

const char *vdga::precisionTierName(PrecisionTier T) {
  switch (T) {
  case PrecisionTier::ContextSens:
    return "cs";
  case PrecisionTier::ContextInsens:
    return "ci";
  case PrecisionTier::Steensgaard:
    return "steens";
  case PrecisionTier::Top:
    return "top";
  }
  return "unknown";
}

std::string DegradationReport::summary() const {
  std::string S;
  for (const DegradationStep &Step : Steps) {
    if (!S.empty())
      S += ", ";
    S += Step.Solver;
    S += "->";
    S += precisionTierName(Step.FellBackTo);
    S += "(";
    S += budgetTripName(Step.Trip);
    S += ")";
  }
  return S;
}

static double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

GovernedAnalysis AnalyzedProgram::runGoverned(const GovernancePolicy &Policy,
                                              bool RunCS,
                                              ContextSensOptions CSOptions,
                                              WorklistOrder Order,
                                              bool RecordProvenance) {
  ResourceBudget B = Policy.solverBudget();

  auto RecordStep = [&](DegradationReport &Rep, const char *Solver,
                        SolveStatus Status, BudgetTrip Trip,
                        PrecisionTier FellBackTo, const SolveStats &Stats) {
    DegradationStep Step;
    Step.Solver = Solver;
    Step.Status = Status;
    Step.Trip = Trip;
    Step.FellBackTo = FellBackTo;
    Step.PartialStats = Stats;
    Rep.Steps.push_back(std::move(Step));
    Metrics.add(std::string(Solver) + ".degraded", 1);
    if (TraceSink)
      TraceSink->event("degraded")
          .field("solver", Solver)
          .field("trip", budgetTripName(Trip))
          .field("fell_back_to", precisionTierName(FellBackTo));
  };

  auto T0 = std::chrono::steady_clock::now();
  GovernedAnalysis GA(
      runContextInsensitive(Order, RecordProvenance, B, Policy.Strategy));
  GA.CIMillis = millisSince(T0);
  GA.RanCS = RunCS;

  if (!GA.CI.complete()) {
    // CI blew its budget: its partial pair sets under-approximate the
    // fixed point, so CI clients are served by the Steensgaard rung. On
    // cancellation no further solving is attempted — top is free.
    if (GA.CI.Status == SolveStatus::Cancelled) {
      GA.Steens = SteensgaardResult::top(Paths);
      GA.Steens->Status = SolveStatus::Cancelled;
      GA.Steens->Trip = BudgetTrip::Cancelled;
      GA.Degradation.CITier = PrecisionTier::Top;
      RecordStep(GA.Degradation, "ci", GA.CI.Status, GA.CI.Trip,
                 PrecisionTier::Top, GA.CI.Stats);
    } else {
      auto TS = std::chrono::steady_clock::now();
      GA.Steens = runSteensgaard(B);
      GA.SteensMillis = millisSince(TS);
      // A tripped Steensgaard solve already degraded itself to top.
      GA.Degradation.CITier = GA.Steens->IsTop ? PrecisionTier::Top
                                               : PrecisionTier::Steensgaard;
      RecordStep(GA.Degradation, "ci", GA.CI.Status, GA.CI.Trip,
                 GA.Degradation.CITier, GA.CI.Stats);
      if (!GA.Steens->complete())
        RecordStep(GA.Degradation, "steens", GA.Steens->Status,
                   GA.Steens->Trip, PrecisionTier::Top, SolveStats{});
    }
  }

  if (!RunCS)
    return GA;

  if (!GA.CI.complete()) {
    // Both CS prerequisites are gone: the Section 4.2 prunings and the
    // CS->CI fallback both require a *complete* CI solution. CS clients
    // are served by whatever tier CI clients got.
    GA.Degradation.CSTier = GA.Degradation.CITier;
    RecordStep(GA.Degradation, "cs", GA.CI.Status, GA.CI.Trip,
               GA.Degradation.CSTier, SolveStats{});
    return GA;
  }

  ContextSensOptions GovernedOpts = CSOptions;
  GovernedOpts.Budget = B;
  GovernedOpts.Strategy = Policy.Strategy;
  auto T1 = std::chrono::steady_clock::now();
  GA.CS = runContextSensitive(GA.CI, GovernedOpts, RecordProvenance);
  GA.CSMillis = millisSince(T1);
  if (!GA.CS->complete()) {
    // The paper's containment guarantee (CS subset-of CI at every output)
    // makes the already-computed CI result a sound stand-in.
    GA.Degradation.CSTier = PrecisionTier::ContextInsens;
    RecordStep(GA.Degradation, "cs", GA.CS->Status, GA.CS->Trip,
               PrecisionTier::ContextInsens, GA.CS->Stats);
  }
  return GA;
}
