//===- driver/Pipeline.cpp ------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "vdg/Builder.h"
#include "vdg/Verifier.h"

using namespace vdga;

std::unique_ptr<AnalyzedProgram>
AnalyzedProgram::create(std::string_view Source, std::string *Error) {
  auto AP = std::unique_ptr<AnalyzedProgram>(new AnalyzedProgram());
  AP->TraceSink = Trace::fromEnv();
  MetricsRegistry::ScopedTimer T = AP->Metrics.time("frontend.ms");
  AP->Prog = std::make_unique<Program>();
  Program &P = *AP->Prog;
  P.SourceLines = Lexer::countCodeLines(Source);

  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  Parser Parse(std::move(Tokens), P, Diags);
  bool ParsedOk = Parse.parseProgram();
  if (!ParsedOk || Diags.hasErrors()) {
    if (Error)
      *Error = Diags.render();
    return nullptr;
  }

  Sema S(P, Diags);
  if (!S.run()) {
    if (Error)
      *Error = Diags.render();
    return nullptr;
  }

  AP->CG = std::make_unique<CallGraphAST>(P);
  AP->CG->annotate(P);
  AP->Locs = std::make_unique<LocationTable>(P, AP->Paths);

  Builder B(P, AP->Paths, *AP->Locs, AP->G);
  B.build();

  if (!verifyGraph(AP->G, P, Diags)) {
    if (Error)
      *Error = Diags.render();
    return nullptr;
  }
  return AP;
}
