//===- driver/Governance.h - Sound degradation ladder ----------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance for the analysis pipeline. The paper's own result
/// — the context-sensitive solution is contained in the context-
/// insensitive one (Section 4.1, fuzz-verified here) — generalizes into a
/// runtime policy: when a solver blows its budget, serve the next coarser
/// *complete* result instead of stalling or dying. The ladder:
///
///     context-sensitive  --budget trip-->  context-insensitive
///     context-insensitive --budget trip--> Steensgaard
///     Steensgaard         --budget trip--> top (all base locations)
///
/// Every rung is sound for may-alias clients: each coarser tier
/// over-approximates the finer one, and top covers any execution at all.
/// Partial worklist results are never served — a monotone solver stopped
/// early has a *subset* of the true facts, which for may-analyses is the
/// unsound direction.
///
/// A `GovernancePolicy` describes the budgets; `AnalyzedProgram::
/// runGoverned` walks the ladder and returns a `GovernedAnalysis` whose
/// `DegradationReport` records each step for metrics (`*.degraded`,
/// `*.budget_trips`), the JSONL trace, the bench artifact and the CLI.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_DRIVER_GOVERNANCE_H
#define VDGA_DRIVER_GOVERNANCE_H

#include "baseline/SteensgaardAnalysis.h"
#include "contextsens/Solver.h"
#include "support/Budget.h"

#include <optional>
#include <string>
#include <vector>

namespace vdga {

/// The precision tiers the ladder can serve, finest first.
enum class PrecisionTier : uint8_t {
  ContextSens,
  ContextInsens,
  Steensgaard,
  Top,
};

const char *precisionTierName(PrecisionTier T);

/// Budget knobs for one governed pipeline run. Every limit applies to
/// each solver run individually (the ladder's whole point is that a rung
/// that trips is replaced, not that the pipeline shares one meter); the
/// absolute `Deadline` and the `Cancel` token are shared so a corpus
/// watchdog can bound the whole run. All-defaults means ungoverned:
/// `runGoverned` then produces bit-identical results to the plain `run*`
/// calls at one extra branch per worklist dequeue.
struct GovernancePolicy {
  /// Per-solve wall-clock budget, milliseconds. 0 = unlimited.
  double SolveMs = 0;
  /// Whole-corpus wall-clock budget, milliseconds; consumed by
  /// `analyzeCorpus`, which turns it into the shared `Deadline` plus a
  /// cancellation watchdog. Ignored by per-program runs. 0 = unlimited.
  double CorpusMs = 0;
  /// Absolute deadline shared by every solve of this run (set by the
  /// corpus watchdog; earlier of this and SolveMs wins per solve).
  std::chrono::steady_clock::time_point Deadline{};
  uint64_t MaxPairs = 0;      ///< Per-solve pair-insertion cap.
  uint64_t MaxAssumSets = 0;  ///< CS assumption-set table cap.
  uint64_t MaxIterations = 0; ///< Per-solve worklist dequeue cap.
  const CancellationToken *Cancel = nullptr; ///< Not owned.
  /// Solver engine for both the CI and CS legs (the policy owns the
  /// engine choice: it overrides any ContextSensOptions::Strategy handed
  /// to runGoverned). All strategies produce identical results, so this
  /// is purely a performance knob; see pointsto/Solver.h.
  SolverStrategy Strategy = SolverStrategy::Basic;

  /// The per-solve budget this policy hands each solver.
  ResourceBudget solverBudget() const {
    ResourceBudget B;
    B.SoftMs = SolveMs;
    B.Deadline = Deadline;
    B.MaxPairs = MaxPairs;
    B.MaxAssumSets = MaxAssumSets;
    B.MaxIterations = MaxIterations;
    B.Cancel = Cancel;
    return B;
  }

  bool unlimited() const { return solverBudget().unlimited() && CorpusMs == 0; }
};

/// One rung walked down the ladder.
struct DegradationStep {
  std::string Solver; ///< "cs", "ci" or "steens" — the rung that tripped.
  BudgetTrip Trip = BudgetTrip::None;
  SolveStatus Status = SolveStatus::BudgetExceeded;
  PrecisionTier FellBackTo = PrecisionTier::Top;
  /// Work done before the trip. Schedule-dependent for partial solves —
  /// informational only, excluded from determinism-compared renderings.
  SolveStats PartialStats;
};

/// Everything a client needs to know about how (and whether) one
/// program's analysis degraded.
struct DegradationReport {
  std::vector<DegradationStep> Steps;
  /// The tier actually serving context-insensitive clients.
  PrecisionTier CITier = PrecisionTier::ContextInsens;
  /// The tier actually serving context-sensitive clients (only
  /// meaningful when the run included the CS leg).
  PrecisionTier CSTier = PrecisionTier::ContextSens;

  bool degraded() const { return !Steps.empty(); }

  /// Compact, schedule-independent rendering for figure annotations and
  /// logs, e.g. "cs->ci(iterations), ci->steens(deadline)". Partial
  /// stats are deliberately excluded (see DegradationStep::PartialStats).
  std::string summary() const;
};

/// The bundle `AnalyzedProgram::runGoverned` returns: per ladder rung,
/// the finest *complete* result that fit the budget, plus the report.
struct GovernedAnalysis {
  explicit GovernedAnalysis(PointsToResult CI) : CI(std::move(CI)) {}

  /// The context-insensitive solve. Complete iff
  /// `Degradation.CITier == ContextInsens`; otherwise a partial result
  /// kept only for its stats — never serve it.
  PointsToResult CI;
  /// The context-sensitive solve, present when the run included the CS
  /// leg and a complete CI existed to prune it. Complete iff
  /// `Degradation.CSTier == ContextSens`.
  std::optional<ContextSensResult> CS;
  /// Populated when CI degraded: the Steensgaard result serving CI
  /// clients — the conservative top result if that rung tripped too.
  std::optional<SteensgaardResult> Steens;

  DegradationReport Degradation;

  double CIMillis = 0.0;
  double CSMillis = 0.0;
  double SteensMillis = 0.0;

  bool RanCS = false;

  bool degraded() const { return Degradation.degraded(); }

  /// The complete CI result, or null when that rung degraded.
  const PointsToResult *completeCI() const {
    return Degradation.CITier == PrecisionTier::ContextInsens ? &CI
                                                              : nullptr;
  }
  /// The complete CS result, or null when that rung degraded (clients
  /// should then fall back to `completeCI()`, the ladder's next rung).
  const ContextSensResult *completeCS() const {
    return Degradation.CSTier == PrecisionTier::ContextSens && CS
               ? &*CS
               : nullptr;
  }
};

} // namespace vdga

#endif // VDGA_DRIVER_GOVERNANCE_H
