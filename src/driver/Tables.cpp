//===- driver/Tables.cpp --------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Tables.h"

#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace vdga;

static double millisSince(
    std::chrono::steady_clock::time_point Start) {
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

BenchmarkReport vdga::analyzeBenchmark(const CorpusProgram &Prog, bool RunCS,
                                       ContextSensOptions CSOptions,
                                       CheckLevel Checks,
                                       const GovernancePolicy &Policy) {
  BenchmarkReport R;
  R.Name = Prog.Name;

  // Fault-injection probe for the containment regression tests: the
  // streaming corpus driver must turn this throw into a recorded Failed
  // slot, never a dead corpus run.
  if (faultPoint("driver.throw", Prog.Name))
    throw std::runtime_error("injected fault: driver.throw");

  // Checker runs (and their metrics) ride along on every exit path.
  auto Finish = [&](AnalyzedProgram &AP) {
    if (Checks != CheckLevel::None) {
      CheckOptions CO;
      CO.Level = Checks;
      CO.SolverBudget = Policy.solverBudget();
      R.Check = AP.runChecks(CO);
    }
    R.Metrics = AP.Metrics.metrics();
  };

  std::string Error;
  auto TFront = std::chrono::steady_clock::now();
  auto AP = AnalyzedProgram::create(Prog.Source, &Error);
  R.FrontendMillis = millisSince(TFront);
  if (!AP) {
    R.Name += " (frontend error: " + Error + ")";
    R.Failed = true;
    R.FailureReason = "frontend error: " + Error;
    return R;
  }

  R.SourceLines = AP->program().SourceLines;
  R.VdgNodes = static_cast<unsigned>(AP->G.numNodes());
  R.AliasOutputs = AP->G.countAliasRelatedOutputs();

  GovernedAnalysis GA = AP->runGoverned(Policy, RunCS, CSOptions);
  R.Degradation = GA.Degradation;
  R.CIMillis = GA.CIMillis;
  if (const PointsToResult *CI = GA.completeCI()) {
    R.CIStats = CI->Stats;
    auto TStats = std::chrono::steady_clock::now();
    R.CI = computePairTotals(AP->G, *CI);
    R.ReadsCI =
        computeIndirectOpStats(AP->G, *CI, AP->PT, /*Writes=*/false);
    R.WritesCI =
        computeIndirectOpStats(AP->G, *CI, AP->PT, /*Writes=*/true);
    R.AllBreakdown = computePairBreakdown(AP->G, *CI, AP->PT, AP->Paths,
                                          AP->locations());
    R.StatsMillis = millisSince(TStats);
    AP->Metrics.addTime("stats.ms", R.StatsMillis);
  }
  // CI degraded: the partial solve's figures stay zeroed (renderers
  // annotate the row) — partial CI counters are schedule-dependent and
  // must not leak into determinism-compared output.

  if (!RunCS) {
    Finish(*AP);
    return R;
  }

  R.RanCS = true;
  R.CSMillis = GA.CSMillis;
  if (GA.CS)
    R.CSStats = GA.CS->Stats;
  const ContextSensResult *CS = GA.completeCS();
  R.CSCompleted = CS != nullptr;
  if (!CS) {
    Finish(*AP);
    return R;
  }

  auto TStats2 = std::chrono::steady_clock::now();
  PointsToResult Stripped = CS->stripAssumptions();
  SpuriousStats S = computeSpuriousStats(AP->G, GA.CI, Stripped, AP->PT,
                                         AP->Paths, AP->locations());
  R.CS = S.CSTotals;
  R.SpuriousTotal = S.SpuriousTotal;
  R.SpuriousPercent = S.SpuriousPercent;
  R.ContainmentViolations = S.ContainmentViolations;
  R.SpuriousBreakdown = S.SpuriousBreakdown;
  R.IndirectOpsWhereCSWins =
      countIndirectOpsWhereCSWins(AP->G, GA.CI, Stripped, AP->PT);
  double CSStatsMillis = millisSince(TStats2);
  R.StatsMillis += CSStatsMillis;
  AP->Metrics.addTime("stats.ms", CSStatsMillis);
  Finish(*AP);
  return R;
}

std::vector<CorpusJob> vdga::corpusJobs() {
  std::vector<CorpusJob> Work;
  for (const CorpusProgram &P : corpus())
    Work.push_back({P.Name, P.Source, P.SmallEnoughForUnoptimizedCS});
  return Work;
}

/// Runs one job's pipeline with exception containment: whatever the
/// pipeline throws (injected faults, bad_alloc from a pathological
/// program, frontend assertions surfaced as exceptions) becomes a
/// recorded Failed slot instead of escaping into the driver loop.
static BenchmarkReport analyzeContained(const CorpusJob &Job, bool RunCS,
                                        const ContextSensOptions &Opts,
                                        CheckLevel Checks,
                                        const GovernancePolicy &Policy) {
  CorpusProgram P;
  P.Name = Job.Name.c_str();
  P.Description = "";
  P.Source = Job.Source.c_str();
  P.SmallEnoughForUnoptimizedCS = Job.SmallEnoughForUnoptimizedCS;
  try {
    return analyzeBenchmark(P, RunCS, Opts, Checks, Policy);
  } catch (const std::exception &E) {
    BenchmarkReport R;
    R.Name = Job.Name;
    R.Failed = true;
    R.FailureReason = E.what();
    return R;
  } catch (...) {
    BenchmarkReport R;
    R.Name = Job.Name;
    R.Failed = true;
    R.FailureReason = "unknown exception";
    return R;
  }
}

size_t vdga::analyzeCorpusStreaming(
    const std::vector<CorpusJob> &Work, bool RunCS,
    ContextSensOptions CSOptions, unsigned Jobs, CheckLevel Checks,
    const GovernancePolicy &Policy,
    const std::function<void(size_t, BenchmarkReport &&)> &Sink,
    const CancellationToken *Interrupt,
    const std::function<void(size_t)> &OnStart) {
  if (Jobs == 0)
    Jobs = ThreadPool::defaultJobs();
  if (Work.size() < Jobs && !Work.empty())
    Jobs = static_cast<unsigned>(Work.size());
  if (Jobs == 0)
    Jobs = 1;

  // Jobs == 1 runs strictly serially on this thread — no pool. This is a
  // correctness property, not just an optimization: the shard worker's
  // crash attribution needs `OnStart(I) -> analyze(I) -> Sink(I)` to be
  // totally ordered, so that at any crash exactly one program is between
  // its journal `begin` and `done`. A 1-thread pool would still overlap
  // Sink(I) on this thread with OnStart(I+1) on the pool thread.
  if (Jobs == 1) {
    size_t Delivered = 0;
    for (size_t I = 0; I < Work.size(); ++I) {
      if (Interrupt && Interrupt->cancelled())
        break;
      if (OnStart)
        OnStart(I);
      BenchmarkReport R =
          analyzeContained(Work[I], RunCS, CSOptions, Checks, Policy);
      Sink(Delivered, std::move(R));
      ++Delivered;
    }
    return Delivered;
  }
  ThreadPool Pool(Jobs);

  // Bounded window: at most ~2x Jobs programs exist concurrently (their
  // AnalyzedProgram tables die inside the task; only the report crosses
  // the future), so corpus memory is flat in the corpus size. Draining
  // the oldest future first makes delivery order == submission order
  // regardless of completion order.
  const size_t Window = 2 * static_cast<size_t>(Jobs);
  std::deque<std::future<BenchmarkReport>> InFlight;
  size_t Next = 0;
  size_t Delivered = 0;
  while (true) {
    while (Next < Work.size() && InFlight.size() < Window &&
           !(Interrupt && Interrupt->cancelled())) {
      const CorpusJob &Job = Work[Next];
      size_t Index = Next;
      InFlight.push_back(Pool.submit(
          [&Job, Index, RunCS, CSOptions, Checks, &Policy, &OnStart] {
            if (OnStart)
              OnStart(Index);
            return analyzeContained(Job, RunCS, CSOptions, Checks, Policy);
          }));
      ++Next;
    }
    if (InFlight.empty())
      break; // Done, or interrupted with nothing left in flight.
    BenchmarkReport R = InFlight.front().get();
    InFlight.pop_front();
    Sink(Delivered, std::move(R));
    ++Delivered;
  }
  return Delivered;
}

std::vector<BenchmarkReport> vdga::analyzeCorpus(bool RunCS,
                                                 ContextSensOptions Opts,
                                                 unsigned Jobs,
                                                 CheckLevel Checks,
                                                 const GovernancePolicy &Policy) {
  const std::vector<CorpusProgram> &Programs = corpus();
  if (Jobs == 0)
    Jobs = ThreadPool::defaultJobs();
  if (Jobs > Programs.size())
    Jobs = static_cast<unsigned>(Programs.size());

  // Corpus watchdog: a corpus-level wall budget becomes one absolute
  // deadline shared by every program's solver budget, so in-flight
  // solves trip within one polling interval of it passing and programs
  // not yet started degrade immediately. A cancellation token fired a
  // grace period after the deadline backstops work between poll points
  // (and is how stragglers are stopped at shutdown).
  GovernancePolicy Effective = Policy;
  CancellationToken WatchdogCancel;
  std::thread Watchdog;
  std::mutex WatchdogMutex;
  std::condition_variable WatchdogCV;
  bool RunDone = false;
  if (Policy.CorpusMs > 0) {
    auto Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(Policy.CorpusMs));
    if (Effective.Deadline == std::chrono::steady_clock::time_point{} ||
        Deadline < Effective.Deadline)
      Effective.Deadline = Deadline;
    if (!Effective.Cancel) {
      Effective.Cancel = &WatchdogCancel;
      auto Grace = Deadline + std::chrono::milliseconds(100);
      Watchdog = std::thread([&WatchdogCancel, &WatchdogMutex, &WatchdogCV,
                              &RunDone, Grace] {
        std::unique_lock<std::mutex> Lock(WatchdogMutex);
        WatchdogCV.wait_until(Lock, Grace, [&RunDone] { return RunDone; });
        if (!RunDone)
          WatchdogCancel.cancel();
      });
    }
  }

  // Each task builds its own AnalyzedProgram (private interning tables),
  // so the programs are embarrassingly parallel; the streaming driver
  // delivers reports in corpus order, keeping the report vector
  // bit-identical to a serial run, and contains a throwing program to an
  // annotated Failed slot instead of killing the whole corpus run.
  // Degraded programs return annotated reports in their usual slot.
  std::vector<BenchmarkReport> Reports;
  Reports.reserve(Programs.size());
  analyzeCorpusStreaming(corpusJobs(), RunCS, Opts, Jobs, Checks, Effective,
                         [&Reports](size_t, BenchmarkReport &&R) {
                           Reports.push_back(std::move(R));
                         });

  if (Watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(WatchdogMutex);
      RunDone = true;
    }
    WatchdogCV.notify_all();
    Watchdog.join();
  }
  return Reports;
}

std::vector<ProgramCheckReport> vdga::checkCorpus(const CheckOptions &Opts,
                                                  unsigned Jobs) {
  const std::vector<CorpusProgram> &Programs = corpus();
  if (Jobs == 0)
    Jobs = ThreadPool::defaultJobs();
  if (Jobs > Programs.size())
    Jobs = static_cast<unsigned>(Programs.size());

  ThreadPool Pool(Jobs);
  std::vector<std::future<ProgramCheckReport>> Futures;
  Futures.reserve(Programs.size());
  for (const CorpusProgram &P : Programs)
    Futures.push_back(Pool.submit([&P, Opts] {
      ProgramCheckReport R;
      R.Name = P.Name;
      std::string Error;
      auto AP = AnalyzedProgram::create(P.Source, &Error);
      if (!AP) {
        Finding F;
        F.Pass = "frontend";
        F.Severity = FindingSeverity::Error;
        F.Message = "frontend error: " + Error;
        R.Report.Findings.push_back(std::move(F));
        return R;
      }
      R.Report = AP->runChecks(Opts);
      return R;
    }));

  std::vector<ProgramCheckReport> Reports;
  Reports.reserve(Programs.size());
  for (std::future<ProgramCheckReport> &F : Futures)
    Reports.push_back(F.get());
  return Reports;
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

namespace {
/// Minimal fixed-width row formatter.
class Table {
public:
  explicit Table(std::vector<int> Widths) : Widths(std::move(Widths)) {}

  Table &cell(const std::string &Text) {
    Row.push_back(Text);
    return *this;
  }
  Table &cell(uint64_t V) { return cell(std::to_string(V)); }
  Table &cell(unsigned V) { return cell(std::to_string(V)); }
  Table &cell(double V, int Precision = 2) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
    return cell(std::string(Buf));
  }
  void endRow() {
    for (size_t I = 0; I < Row.size(); ++I) {
      int W = I < Widths.size() ? Widths[I] : 10;
      std::string Text = Row[I];
      if (static_cast<int>(Text.size()) < W) {
        // First column left-aligned, the rest right-aligned.
        if (I == 0)
          Text += std::string(W - Text.size(), ' ');
        else
          Text = std::string(W - Text.size(), ' ') + Text;
      }
      OS << Text << (I + 1 == Row.size() ? "" : "  ");
    }
    OS << '\n';
    Row.clear();
  }
  void rule() {
    int Total = 0;
    for (int W : Widths)
      Total += W + 2;
    OS << std::string(static_cast<size_t>(Total), '-') << '\n';
  }
  std::string str() const { return OS.str(); }

private:
  std::vector<int> Widths;
  std::vector<std::string> Row;
  std::ostringstream OS;
};
} // namespace

std::string vdga::renderFig2(const std::vector<BenchmarkReport> &Reports) {
  Table T({12, 8, 8, 14});
  T.cell("name").cell("source").cell("VDG").cell("alias-related");
  T.endRow();
  T.cell("").cell("lines").cell("nodes").cell("outputs");
  T.endRow();
  T.rule();
  for (const BenchmarkReport &R : Reports) {
    if (R.Failed) {
      T.cell(R.Name).cell("(failed: " + R.FailureReason + ")").endRow();
      continue;
    }
    T.cell(R.Name)
        .cell(R.SourceLines)
        .cell(R.VdgNodes)
        .cell(R.AliasOutputs)
        .endRow();
  }
  return "Figure 2: benchmark programs and their sizes\n" + T.str();
}

std::string vdga::renderFig3(const std::vector<BenchmarkReport> &Reports) {
  Table T({12, 9, 9, 10, 10, 10});
  T.cell("name")
      .cell("pointer")
      .cell("function")
      .cell("aggregate")
      .cell("store")
      .cell("total")
      .endRow();
  T.rule();
  PairTotals Sum;
  for (const BenchmarkReport &R : Reports) {
    if (R.Failed) {
      T.cell(R.Name).cell("(failed: " + R.FailureReason + ")").endRow();
      continue;
    }
    if (R.Degradation.CITier != PrecisionTier::ContextInsens) {
      T.cell(R.Name)
          .cell("(degraded: " + R.Degradation.summary() + ")")
          .endRow();
      continue;
    }
    T.cell(R.Name)
        .cell(R.CI.Pointer)
        .cell(R.CI.Function)
        .cell(R.CI.Aggregate)
        .cell(R.CI.Store)
        .cell(R.CI.total())
        .endRow();
    Sum.Pointer += R.CI.Pointer;
    Sum.Function += R.CI.Function;
    Sum.Aggregate += R.CI.Aggregate;
    Sum.Store += R.CI.Store;
  }
  T.rule();
  T.cell("TOTAL")
      .cell(Sum.Pointer)
      .cell(Sum.Function)
      .cell(Sum.Aggregate)
      .cell(Sum.Store)
      .cell(Sum.total())
      .endRow();
  return "Figure 3: total points-to relationships "
         "(context-insensitive)\n" +
         T.str();
}

static void fig4Row(Table &T, const std::string &Name, const char *Kind,
                    const IndirectOpStats &S) {
  T.cell(Name)
      .cell(Kind)
      .cell(S.Total)
      .cell(S.Count1)
      .cell(S.Count2)
      .cell(S.Count3)
      .cell(S.Count4Plus)
      .cell(S.Max)
      .cell(S.Avg)
      .endRow();
}

std::string vdga::renderFig4(const std::vector<BenchmarkReport> &Reports) {
  Table T({12, 6, 6, 5, 5, 5, 5, 5, 6});
  T.cell("name")
      .cell("type")
      .cell("total")
      .cell("1")
      .cell("2")
      .cell("3")
      .cell(">=4")
      .cell("max")
      .cell("avg")
      .endRow();
  T.rule();
  IndirectOpStats SumR, SumW;
  uint64_t SumRRefs = 0, SumWRefs = 0;
  for (const BenchmarkReport &R : Reports) {
    if (R.Failed) {
      T.cell(R.Name).cell("(failed: " + R.FailureReason + ")").endRow();
      continue;
    }
    if (R.Degradation.CITier != PrecisionTier::ContextInsens) {
      T.cell(R.Name)
          .cell("(degraded: " + R.Degradation.summary() + ")")
          .endRow();
      continue;
    }
    fig4Row(T, R.Name, "read", R.ReadsCI);
    fig4Row(T, R.Name, "write", R.WritesCI);
    auto Fold = [](IndirectOpStats &Acc, const IndirectOpStats &S,
                   uint64_t &Refs) {
      Acc.Total += S.Total;
      Acc.ZeroRef += S.ZeroRef;
      Acc.Count1 += S.Count1;
      Acc.Count2 += S.Count2;
      Acc.Count3 += S.Count3;
      Acc.Count4Plus += S.Count4Plus;
      Acc.Max = std::max(Acc.Max, S.Max);
      Refs += static_cast<uint64_t>(S.Avg * S.Total + 0.5);
    };
    Fold(SumR, R.ReadsCI, SumRRefs);
    Fold(SumW, R.WritesCI, SumWRefs);
  }
  SumR.Avg = SumR.Total ? static_cast<double>(SumRRefs) / SumR.Total : 0.0;
  SumW.Avg = SumW.Total ? static_cast<double>(SumWRefs) / SumW.Total : 0.0;
  T.rule();
  fig4Row(T, "TOTAL", "read", SumR);
  fig4Row(T, "TOTAL", "write", SumW);
  std::ostringstream Extra;
  if (SumR.ZeroRef || SumW.ZeroRef)
    Extra << "(" << SumR.ZeroRef << " reads / " << SumW.ZeroRef
          << " writes reference only the null pointer value and are "
             "excluded, as in the paper)\n";
  return "Figure 4: points-to statistics for indirect memory reads and "
         "writes (context-insensitive)\n" +
         T.str() + Extra.str();
}

std::string vdga::renderFig6(const std::vector<BenchmarkReport> &Reports) {
  Table T({12, 9, 9, 10, 10, 10, 12, 9});
  T.cell("name")
      .cell("pointer")
      .cell("function")
      .cell("aggregate")
      .cell("store")
      .cell("total")
      .cell("total(insens)")
      .cell("%spur")
      .endRow();
  T.rule();
  PairTotals SumCS;
  uint64_t SumCI = 0, SumSpur = 0;
  for (const BenchmarkReport &R : Reports) {
    if (R.Failed) {
      T.cell(R.Name).cell("(failed: " + R.FailureReason + ")").endRow();
      continue;
    }
    if (!R.RanCS || !R.CSCompleted) {
      if (R.Degradation.degraded())
        T.cell(R.Name)
            .cell("(degraded: " + R.Degradation.summary() + ")")
            .endRow();
      else
        T.cell(R.Name).cell("(context-sensitive run skipped)").endRow();
      continue;
    }
    T.cell(R.Name)
        .cell(R.CS.Pointer)
        .cell(R.CS.Function)
        .cell(R.CS.Aggregate)
        .cell(R.CS.Store)
        .cell(R.CS.total())
        .cell(R.CI.total())
        .cell(R.SpuriousPercent, 1)
        .endRow();
    SumCS.Pointer += R.CS.Pointer;
    SumCS.Function += R.CS.Function;
    SumCS.Aggregate += R.CS.Aggregate;
    SumCS.Store += R.CS.Store;
    SumCI += R.CI.total();
    SumSpur += R.SpuriousTotal;
  }
  T.rule();
  T.cell("TOTAL")
      .cell(SumCS.Pointer)
      .cell(SumCS.Function)
      .cell(SumCS.Aggregate)
      .cell(SumCS.Store)
      .cell(SumCS.total())
      .cell(SumCI)
      .cell(SumCI ? 100.0 * SumSpur / SumCI : 0.0, 1)
      .endRow();
  return "Figure 6: points-to relationships (context-sensitive), with the "
         "context-insensitive total and the percentage proven spurious\n" +
         T.str();
}

static std::string renderBreakdown(const PairBreakdown &B,
                                   const char *Title) {
  static const char *PathNames[] = {"offset", "local", "global", "heap"};
  static const char *RefNames[] = {"function", "local", "global", "heap"};
  uint64_t Total = B.total();
  Table T({10, 10, 10, 10, 10});
  T.cell("path\\ref")
      .cell(RefNames[0])
      .cell(RefNames[1])
      .cell(RefNames[2])
      .cell(RefNames[3])
      .endRow();
  T.rule();
  for (int P = 0; P < PairBreakdown::NumPathClasses; ++P) {
    T.cell(PathNames[P]);
    for (int R = 0; R < PairBreakdown::NumRefClasses; ++R) {
      double Pct = Total ? 100.0 * B.Counts[P][R] / Total : 0.0;
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.1f%%", Pct);
      T.cell(std::string(Buf));
    }
    T.endRow();
  }
  return std::string(Title) + "\n" + T.str();
}

std::string vdga::renderFig7(const std::vector<BenchmarkReport> &Reports) {
  PairBreakdown All, Spur;
  for (const BenchmarkReport &R : Reports) {
    for (int P = 0; P < PairBreakdown::NumPathClasses; ++P)
      for (int C = 0; C < PairBreakdown::NumRefClasses; ++C) {
        All.Counts[P][C] += R.AllBreakdown.Counts[P][C];
        Spur.Counts[P][C] += R.SpuriousBreakdown.Counts[P][C];
      }
  }
  return "Figure 7: pairs broken down by path and referent storage "
         "class\n" +
         renderBreakdown(All, "All points-to pairs (context-insensitive)") +
         renderBreakdown(Spur, "Spurious points-to pairs only");
}

std::string
vdga::renderPerfComparison(const std::vector<BenchmarkReport> &Reports) {
  Table T({12, 12, 12, 8, 12, 12, 8, 10});
  T.cell("name")
      .cell("CI xfer")
      .cell("CS xfer")
      .cell("ratio")
      .cell("CI meets")
      .cell("CS meets")
      .cell("ratio")
      .cell("CS/CI time")
      .endRow();
  T.rule();
  for (const BenchmarkReport &R : Reports) {
    // Degraded and failed runs have no comparable work ratios (partial
    // counters are schedule-dependent); their story is told by the
    // degradation/failure rows.
    if (R.Failed || !R.RanCS || R.Degradation.degraded())
      continue;
    double XferRatio =
        R.CIStats.TransferFns
            ? static_cast<double>(R.CSStats.TransferFns) /
                  R.CIStats.TransferFns
            : 0.0;
    double MeetRatio = R.CIStats.MeetOps
                           ? static_cast<double>(R.CSStats.MeetOps) /
                                 R.CIStats.MeetOps
                           : 0.0;
    double TimeRatio =
        R.CIMillis > 0 ? R.CSMillis / R.CIMillis : 0.0;
    T.cell(R.Name)
        .cell(R.CIStats.TransferFns)
        .cell(R.CSStats.TransferFns)
        .cell(XferRatio, 2)
        .cell(R.CIStats.MeetOps)
        .cell(R.CSStats.MeetOps)
        .cell(MeetRatio, 1)
        .cell(TimeRatio, 1)
        .endRow();
  }
  return "Section 4.2/4.3: work comparison between the context-insensitive "
         "and context-sensitive analyses\n" +
         T.str();
}

//===----------------------------------------------------------------------===//
// Machine-readable bench artifact (BENCH_*.json)
//===----------------------------------------------------------------------===//

namespace {
/// Minimal JSON writer: just enough structure for the bench artifact.
class Json {
public:
  Json &key(const char *K) {
    comma();
    OS << '"' << K << "\":";
    Sep = false;
    return *this;
  }
  Json &value(const std::string &S) {
    comma();
    OS << '"';
    for (char C : S) {
      if (C == '"' || C == '\\')
        OS << '\\';
      OS << C;
    }
    OS << '"';
    return *this;
  }
  Json &value(uint64_t V) {
    comma();
    OS << V;
    return *this;
  }
  Json &value(unsigned V) { return value(uint64_t(V)); }
  Json &value(bool V) {
    comma();
    OS << (V ? "true" : "false");
    return *this;
  }
  Json &value(double V) {
    comma();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    OS << Buf;
    return *this;
  }
  Json &open(char Bracket) {
    comma();
    OS << Bracket;
    Sep = false;
    return *this;
  }
  Json &close(char Bracket) {
    OS << Bracket;
    Sep = true;
    return *this;
  }
  std::string str() const { return OS.str(); }

private:
  void comma() {
    if (Sep)
      OS << ',';
    Sep = true;
  }
  std::ostringstream OS;
  bool Sep = false;
};

void emitSolveStats(Json &J, const SolveStats &S) {
  J.open('{');
  J.key("transfer_fns").value(S.TransferFns);
  J.key("meet_ops").value(S.MeetOps);
  J.key("pairs_inserted").value(S.PairsInserted);
  J.key("deduped_events").value(S.DedupedEvents);
  J.close('}');
}

void emitPairTotals(Json &J, const PairTotals &T) {
  J.open('{');
  J.key("pointer").value(T.Pointer);
  J.key("function").value(T.Function);
  J.key("aggregate").value(T.Aggregate);
  J.key("store").value(T.Store);
  J.key("total").value(T.total());
  J.close('}');
}
} // namespace

std::string vdga::renderBenchJson(const std::vector<BenchmarkReport> &Reports,
                                  const CorpusTiming &Timing,
                                  const QueryBenchSection *Query,
                                  const LintBenchSection *Lint) {
  Json J;
  J.open('{');
  J.key("schema").value(std::string("vdga-bench-v1"));

  J.key("corpus").open('{');
  J.key("programs").value(uint64_t(Reports.size()));
  J.key("solver_strategy").value(std::string(solverStrategyName(Timing.Strategy)));
  J.key("serial_ms").value(Timing.SerialMillis);
  J.key("parallel_ms").value(Timing.ParallelMillis);
  J.key("parallel_jobs").value(Timing.ParallelJobs);
  J.key("hardware_threads").value(Timing.HardwareThreads);
  J.key("speedup").value(Timing.ParallelMillis > 0.0
                             ? Timing.SerialMillis / Timing.ParallelMillis
                             : 0.0);
  J.close('}');

  J.key("programs").open('[');
  for (const BenchmarkReport &R : Reports) {
    J.open('{');
    J.key("name").value(R.Name);
    if (R.Failed) {
      // A contained per-program failure: status + reason, no analysis
      // fields (they are all zero). bench_diff.py hard-fails when a
      // program is failed here but healthy in the baseline artifact.
      J.key("failed").value(true);
      J.key("failure_reason").value(R.FailureReason);
      J.close('}');
      continue;
    }
    J.key("source_lines").value(R.SourceLines);
    J.key("vdg_nodes").value(R.VdgNodes);
    J.key("alias_outputs").value(R.AliasOutputs);
    J.key("frontend_ms").value(R.FrontendMillis);
    J.key("ci_ms").value(R.CIMillis);
    J.key("stats_ms").value(R.StatsMillis);
    J.key("ci_stats");
    emitSolveStats(J, R.CIStats);
    J.key("ci_pairs");
    emitPairTotals(J, R.CI);
    if (R.RanCS) {
      J.key("cs_ms").value(R.CSMillis);
      J.key("cs_completed").value(R.CSCompleted);
      J.key("cs_stats");
      emitSolveStats(J, R.CSStats);
      if (R.CSCompleted) {
        J.key("cs_pairs");
        emitPairTotals(J, R.CS);
        J.key("spurious_total").value(R.SpuriousTotal);
        J.key("spurious_percent").value(R.SpuriousPercent);
        J.key("cs_wins").value(R.IndirectOpsWhereCSWins);
        J.key("containment_violations").value(R.ContainmentViolations);
      }
    }
    J.key("degradation").open('{');
    J.key("degraded").value(R.Degradation.degraded());
    J.key("ci_tier").value(
        std::string(precisionTierName(R.Degradation.CITier)));
    if (R.RanCS)
      J.key("cs_tier").value(
          std::string(precisionTierName(R.Degradation.CSTier)));
    if (!R.Degradation.Steps.empty()) {
      J.key("steps").open('[');
      for (const DegradationStep &S : R.Degradation.Steps) {
        J.open('{');
        J.key("solver").value(S.Solver);
        J.key("trip").value(std::string(budgetTripName(S.Trip)));
        J.key("status").value(std::string(solveStatusName(S.Status)));
        J.key("fell_back_to")
            .value(std::string(precisionTierName(S.FellBackTo)));
        J.close('}');
      }
      J.close(']');
    }
    J.close('}');
    if (!R.Metrics.empty()) {
      J.key("metrics").open('{');
      for (const Metric &M : R.Metrics) {
        J.key(M.Name.c_str());
        if (M.IsTimer)
          J.value(M.Millis);
        else
          J.value(M.Count);
      }
      J.close('}');
    }
    J.close('}');
  }
  J.close(']');

  if (Query) {
    J.key("query").open('{');
    J.key("program").value(Query->Program);
    J.key("threads").value(Query->Threads);
    J.key("queries").value(Query->Queries);
    J.key("errors").value(Query->Errors);
    J.key("mean_us").value(Query->MeanUs);
    J.key("p50_us").value(Query->P50Us);
    J.key("p99_us").value(Query->P99Us);
    J.key("cache_hits").value(Query->CacheHits);
    J.key("cache_misses").value(Query->CacheMisses);
    J.key("hit_rate").value(Query->HitRate);
    J.close('}');
  }

  if (Lint) {
    J.key("lint").open('{');
    J.key("tiers").open('[');
    for (const LintBenchSection::Tier &T : Lint->Tiers) {
      J.open('{');
      J.key("tier").value(T.Name);
      J.key("findings").value(T.Findings);
      J.key("must").value(T.Must);
      J.key("errors").value(T.Errors);
      J.key("degraded_programs").value(T.Degraded);
      J.key("passes").open('{');
      for (const auto &[Pass, Count] : T.PassCounts)
        J.key(Pass.c_str()).value(Count);
      J.close('}');
      J.key("pass_ms").open('{');
      for (const auto &[Phase, Ms] : T.PassMillis)
        J.key(Phase.c_str()).value(Ms);
      J.close('}');
      J.close('}');
    }
    J.close(']');
    J.close('}');
  }

  J.close('}');
  return J.str() + "\n";
}
