//===- driver/Tables.h - Paper table rendering -----------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full pipeline over corpus programs and renders the paper's
/// figures in their original row/column layout. The bench binaries are
/// thin wrappers around these functions, so the same reports are testable.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_DRIVER_TABLES_H
#define VDGA_DRIVER_TABLES_H

#include "contextsens/Spurious.h"
#include "corpus/Corpus.h"
#include "driver/Governance.h"
#include "driver/Pipeline.h"
#include "pointsto/Statistics.h"
#include "support/Metrics.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace vdga {

/// Everything the figures need for one benchmark.
struct BenchmarkReport {
  std::string Name;

  /// Set when this program's pipeline did not produce a result at all —
  /// a frontend rejection or an exception thrown mid-analysis. A failed
  /// program keeps its corpus-order slot (figures annotate the row, the
  /// bench artifact records status + reason); it never aborts the corpus
  /// run. All analysis fields below stay zeroed.
  bool Failed = false;
  std::string FailureReason;

  // Figure 2.
  unsigned SourceLines = 0;
  unsigned VdgNodes = 0;
  unsigned AliasOutputs = 0;

  // Per-phase wall clock. Every phase of the pipeline is timed the same
  // way so BENCH_*.json artifacts can track the trajectory per phase.
  double FrontendMillis = 0.0;
  double StatsMillis = 0.0; ///< Figure statistics over the solutions.

  // Figures 3/4 (context-insensitive).
  PairTotals CI;
  IndirectOpStats ReadsCI;
  IndirectOpStats WritesCI;
  SolveStats CIStats;
  double CIMillis = 0.0;

  // Figures 6/7 and the headline comparison (context-sensitive).
  bool RanCS = false;
  bool CSCompleted = false;
  PairTotals CS;
  uint64_t SpuriousTotal = 0;
  double SpuriousPercent = 0.0;
  unsigned IndirectOpsWhereCSWins = 0;
  uint64_t ContainmentViolations = 0;
  PairBreakdown AllBreakdown;
  PairBreakdown SpuriousBreakdown;
  SolveStats CSStats;
  double CSMillis = 0.0;

  /// How (and whether) this program's analyses degraded under the
  /// governance policy. Degraded programs keep their slot in the corpus
  /// report — annotated, never dropped — so figures stay order-preserving.
  /// When CI degraded, the CI-derived figure fields above are zeroed (the
  /// partial solve is schedule-dependent and must not leak into
  /// determinism-compared renderings); `Degradation.CITier` says which
  /// tier served instead.
  DegradationReport Degradation;

  /// Checker subsystem report when analyzeBenchmark ran with a CheckLevel
  /// above None (checker.* metrics land in Metrics either way).
  CheckReport Check;

  /// Snapshot of the program's MetricsRegistry after all phases ran;
  /// exported as the "metrics" section of the JSON bench artifact.
  std::vector<Metric> Metrics;
};

/// Runs CI (and optionally CS) over one corpus program. \p Checks runs the
/// checker subsystem afterwards (verifier / oracle / diagnostics per the
/// level) so its timers and counters appear in the metrics snapshot.
BenchmarkReport analyzeBenchmark(const CorpusProgram &Prog, bool RunCS,
                                 ContextSensOptions CSOptions = {},
                                 CheckLevel Checks = CheckLevel::None,
                                 const GovernancePolicy &Policy = {});

/// One unit of corpus work for the streaming driver: a named source
/// program. The built-in corpus and the shard pipeline's fuzz-generated
/// manifests both lower to this, so both run through the same contained
/// streaming loop.
struct CorpusJob {
  std::string Name;
  std::string Source;
  /// Mirrors CorpusProgram::SmallEnoughForUnoptimizedCS: CS runs in
  /// unoptimized checking mode only when set.
  bool SmallEnoughForUnoptimizedCS = true;
};

/// The built-in corpus lowered to streaming jobs.
std::vector<CorpusJob> corpusJobs();

/// Streaming corpus driver: analyzes \p Work with a bounded number of
/// programs in flight (at most ~2x \p Jobs outstanding, so memory stays
/// flat in the corpus size) and hands each finished report to \p Sink in
/// job order — report I is always delivered before report I+1, whatever
/// order the pool finishes them in. Exceptions thrown by one program's
/// pipeline are contained: the slot is delivered as a `Failed` report
/// carrying the exception text and the run continues. Returns the number
/// of jobs delivered; this is short of Work.size() only when \p Interrupt
/// fired, in which case undelivered jobs were never started (in-flight
/// ones still drain through the sink so checkpoints stay truthful).
/// \p Jobs semantics match analyzeCorpus. \p OnStart, when set, runs on
/// the worker thread immediately before job I's pipeline — the shard
/// worker's checkpoint `begin` hook (and fault-probe site), so a crash
/// mid-program always has a begin on record.
size_t analyzeCorpusStreaming(
    const std::vector<CorpusJob> &Work, bool RunCS,
    ContextSensOptions CSOptions, unsigned Jobs, CheckLevel Checks,
    const GovernancePolicy &Policy,
    const std::function<void(size_t, BenchmarkReport &&)> &Sink,
    const CancellationToken *Interrupt = nullptr,
    const std::function<void(size_t)> &OnStart = nullptr);

/// Runs over the whole corpus. Each program's pipeline is independent
/// (per-AnalyzedProgram tables), so programs are analyzed concurrently on
/// \p Jobs threads; reports come back in corpus order and are
/// bit-identical to the serial run. \p Jobs semantics: 0 picks the
/// VDGA_JOBS environment override or else the hardware thread count; 1
/// runs serially on the calling thread.
/// \p Policy governs every program's solves. Policy.CorpusMs additionally
/// arms the corpus watchdog: an absolute deadline shared by every
/// program's budget (so stragglers trip within one polling interval of
/// the corpus budget expiring) plus a cancellation token fired shortly
/// after the deadline as a backstop for work between poll points.
/// Degraded programs keep their corpus-order slot, annotated.
std::vector<BenchmarkReport> analyzeCorpus(bool RunCS,
                                           ContextSensOptions CSOptions = {},
                                           unsigned Jobs = 0,
                                           CheckLevel Checks = CheckLevel::None,
                                           const GovernancePolicy &Policy = {});

/// One corpus program's checker outcome.
struct ProgramCheckReport {
  std::string Name;
  CheckReport Report;
};

/// Runs the checker subsystem over every corpus program, in parallel like
/// analyzeCorpus (same \p Jobs semantics). Reports come back in corpus
/// order; their renderings are bit-identical across job counts and
/// worklist schedules (asserted by the determinism tests).
std::vector<ProgramCheckReport> checkCorpus(const CheckOptions &Opts,
                                            unsigned Jobs = 0);

/// Corpus-level timing recorded into the JSON bench artifact.
struct CorpusTiming {
  double SerialMillis = 0.0;   ///< analyzeCorpus wall clock, Jobs = 1.
  double ParallelMillis = 0.0; ///< analyzeCorpus wall clock, Jobs below.
  unsigned ParallelJobs = 0;
  unsigned HardwareThreads = 0;
  /// Worklist engine every solve in the artifact ran under; emitted as
  /// corpus.solver_strategy so bench_diff.py can refuse cross-strategy
  /// comparisons.
  SolverStrategy Strategy = SolverStrategy::Basic;
};

/// Query-service load-generator results for the artifact's `query`
/// section (docs/BENCH_FORMAT.md). Plain data so the driver layer does
/// not depend on vdga_query; bench/perf_ci_vs_cs.cpp fills it from a
/// `QueryLoadReport`.
struct QueryBenchSection {
  std::string Program; ///< Corpus benchmark the load ran against.
  unsigned Threads = 0;
  uint64_t Queries = 0;
  uint64_t Errors = 0;
  double MeanUs = 0.0;
  double P50Us = 0.0;
  double P99Us = 0.0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  double HitRate = 0.0;
};

/// Lint-engine results for the artifact's `lint` section
/// (docs/BENCH_FORMAT.md): one entry per alias tier the pass battery ran
/// against, with corpus-wide finding counts and aggregate pass timings.
/// Plain data so the driver layer does not depend on vdga_lint;
/// bench/perf_ci_vs_cs.cpp fills it from `lintCorpus` runs.
struct LintBenchSection {
  struct Tier {
    std::string Name;       ///< "steens", "ci" or "cs".
    uint64_t Findings = 0;  ///< All findings across the corpus (incl. Notes).
    uint64_t Must = 0;      ///< Must-confidence findings.
    uint64_t Errors = 0;    ///< Error-severity findings (refuted musts).
    uint64_t Degraded = 0;  ///< Programs whose solve self-skipped passes.
    /// Corpus-wide finding count per pass name.
    std::map<std::string, uint64_t> PassCounts;
    /// Corpus-wide wall clock per phase ("solve", "build", pass names,
    /// "interp"), summed over programs.
    std::map<std::string, double> PassMillis;
  };
  std::vector<Tier> Tiers;
};

/// Renders the machine-readable BENCH_*.json artifact: schema
/// "vdga-bench-v1", one object per program with per-phase wall-clock and
/// work counters, plus the corpus-level serial/parallel timing and — when
/// \p Query / \p Lint are non-null — the query-service load and lint
/// sections. Diff two artifacts with tools/bench_diff.py.
std::string renderBenchJson(const std::vector<BenchmarkReport> &Reports,
                            const CorpusTiming &Timing,
                            const QueryBenchSection *Query = nullptr,
                            const LintBenchSection *Lint = nullptr);

// Renderers, one per figure.
std::string renderFig2(const std::vector<BenchmarkReport> &Reports);
std::string renderFig3(const std::vector<BenchmarkReport> &Reports);
std::string renderFig4(const std::vector<BenchmarkReport> &Reports);
std::string renderFig6(const std::vector<BenchmarkReport> &Reports);
std::string renderFig7(const std::vector<BenchmarkReport> &Reports);
/// The Section 4.2/4.3 work comparison (transfer functions, meets, time).
std::string renderPerfComparison(const std::vector<BenchmarkReport> &Reports);

} // namespace vdga

#endif // VDGA_DRIVER_TABLES_H
