//===- driver/Pipeline.h - One-call analysis pipeline ----------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door: parse and check a MiniC source buffer, build
/// its VDG, then run any of the analyses (context-insensitive,
/// context-sensitive, Weihl, Steensgaard) or the concrete interpreter over
/// the shared tables. See examples/quickstart.cpp for typical use.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_DRIVER_PIPELINE_H
#define VDGA_DRIVER_PIPELINE_H

#include "baseline/SteensgaardAnalysis.h"
#include "baseline/WeihlAnalysis.h"
#include "checker/Checker.h"
#include "contextsens/Solver.h"
#include "driver/Governance.h"
#include "contextsens/Spurious.h"
#include "frontend/CallGraphAST.h"
#include "interp/Interpreter.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "vdg/Graph.h"

#include <memory>
#include <string>

namespace vdga {

/// A fully fronted program: AST, base locations, VDG and the shared
/// interning tables every analysis reads and extends.
class AnalyzedProgram {
public:
  /// Runs lexer, parser, sema, recursion annotation, location-table
  /// construction, VDG building and verification. Returns null and fills
  /// \p Error (rendered diagnostics) on failure.
  static std::unique_ptr<AnalyzedProgram> create(std::string_view Source,
                                                 std::string *Error);

  /// Context-insensitive analysis (Figure 1). \p RecordProvenance keeps a
  /// Derivation per pair instance (for `vdga-analyze --explain`).
  /// \p Budget governs the solve; check `Status` on the result, or use
  /// runGoverned() to get the degradation ladder handled for you.
  PointsToResult runContextInsensitive(
      WorklistOrder Order = WorklistOrder::FIFO,
      bool RecordProvenance = false, const ResourceBudget &Budget = {},
      SolverStrategy Strategy = SolverStrategy::Basic) {
    MetricsRegistry::ScopedTimer T = Metrics.time("ci.solve.ms");
    return ContextInsensitiveSolver(G, Paths, PT, Order,
                                    observer(RecordProvenance), Budget,
                                    Strategy)
        .solve();
  }

  /// Context-sensitive analysis (Figure 5). \p CI supplies the pruning
  /// facts of Section 4.2.
  ContextSensResult runContextSensitive(const PointsToResult &CI,
                                        ContextSensOptions Options = {},
                                        bool RecordProvenance = false) {
    MetricsRegistry::ScopedTimer T = Metrics.time("cs.solve.ms");
    return ContextSensSolver(G, Paths, PT, Assums, CI, Options,
                             observer(RecordProvenance))
        .solve();
  }

  /// Weihl-style program-wide flow-insensitive baseline.
  WeihlResult runWeihl(const ResourceBudget &Budget = {}) {
    MetricsRegistry::ScopedTimer T = Metrics.time("weihl.solve.ms");
    return WeihlSolver(G, Paths, PT, observer(), Budget).solve();
  }

  /// Steensgaard-style unification baseline. Never returns an unsound
  /// result: a budget trip yields the conservative top result with the
  /// trip recorded on it.
  SteensgaardResult runSteensgaard(const ResourceBudget &Budget = {}) {
    MetricsRegistry::ScopedTimer T = Metrics.time("steens.solve.ms");
    return SteensgaardSolver(G, Paths, observer(), Budget).solve();
  }

  /// Runs the analyses under \p Policy's budgets, walking the sound
  /// degradation ladder (CS -> CI -> Steensgaard -> top) whenever a rung
  /// trips; see driver/Governance.h. With an unlimited policy this is
  /// exactly runContextInsensitive + runContextSensitive.
  GovernedAnalysis runGoverned(const GovernancePolicy &Policy,
                               bool RunCS = false,
                               ContextSensOptions CSOptions = {},
                               WorklistOrder Order = WorklistOrder::FIFO,
                               bool RecordProvenance = false);

  /// Overrides the event sink (create() seeds it from `VDGA_TRACE`). Pass
  /// null to disable tracing for this program.
  void setTrace(Trace *T) { TraceSink = T; }

  /// The observability hooks the run* methods hand their solver: this
  /// program's registry, the configured trace sink, and the caller's
  /// provenance switch.
  SolverObserver observer(bool RecordProvenance = false) {
    return {&Metrics, TraceSink, RecordProvenance};
  }

  /// Counters and timers published by every analysis run on this program.
  /// One registry per program keeps the parallel corpus driver race-free
  /// (each worker owns its AnalyzedProgram).
  MetricsRegistry Metrics;

  /// Runs the checker subsystem (driver/Checks.cpp): the VDG verifier,
  /// then — per Opts.Level — the interpreter-backed soundness oracle over
  /// fresh CI/CS/Weihl/Steensgaard runs, then the diagnostic client
  /// passes. Publishes checker.* metrics into this program's registry.
  CheckReport runChecks(const CheckOptions &Opts = {});

  /// Executes the program in the concrete interpreter. Runs that exhaust
  /// a budget come back Ok with RunResult::Truncated set and a valid
  /// trace prefix.
  RunResult interpret(std::string Input = "",
                      uint64_t MaxSteps = 50'000'000,
                      unsigned MaxCallDepth = 1024) {
    Interpreter I(*Prog, Paths, *Locs);
    I.setInput(std::move(Input));
    I.setMaxSteps(MaxSteps);
    I.setMaxCallDepth(MaxCallDepth);
    return I.run();
  }

  Program &program() { return *Prog; }
  const Program &program() const { return *Prog; }
  const LocationTable &locations() const { return *Locs; }
  const CallGraphAST &callGraph() const { return *CG; }

  PathTable Paths;
  PairTable PT;
  AssumptionSetTable Assums;
  Graph G;

private:
  AnalyzedProgram() = default;

  std::unique_ptr<Program> Prog;
  std::unique_ptr<CallGraphAST> CG;
  std::unique_ptr<LocationTable> Locs;
  /// Event sink shared with the solvers; null means tracing disabled.
  Trace *TraceSink = nullptr;
};

} // namespace vdga

#endif // VDGA_DRIVER_PIPELINE_H
