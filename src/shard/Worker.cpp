//===- shard/Worker.cpp ---------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/Worker.h"

#include "driver/Tables.h"
#include "shard/Checkpoint.h"
#include "shard/ResultStore.h"
#include "support/FaultInjection.h"
#include "support/Interrupt.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>
#include <unordered_set>

using namespace vdga;

int vdga::runShardWorker(const WorkerOptions &Opts) {
  if (Opts.Shards == 0 || Opts.Shard >= Opts.Shards) {
    std::fprintf(stderr, "vdga-analyze: --shard index out of range\n");
    return 2;
  }
  std::error_code EC;
  std::filesystem::create_directories(Opts.Dir, EC);
  if (EC) {
    std::fprintf(stderr, "vdga-analyze: cannot create %s: %s\n",
                 Opts.Dir.c_str(), EC.message().c_str());
    return 1;
  }

  std::vector<ManifestEntry> Entries = buildManifest(Opts.Spec);
  std::vector<size_t> Slice =
      shardSlice(Entries.size(), Opts.Shard, Opts.Shards);
  ResultStore Store(Opts.Dir);

  std::unordered_set<std::string> Black;
  for (const BlacklistEntry &E : loadBlacklist(blacklistPath(Opts.Dir)))
    Black.insert(E.Digest);

  // Resume filter: the result store is the source of truth — a digest
  // with a parseable record is finished whatever the journal says, and a
  // torn record (crash mid-save) parses as absent, so the program reruns.
  std::vector<CorpusJob> Work;
  std::vector<const ManifestEntry *> WorkEntries;
  for (size_t I : Slice) {
    const ManifestEntry &E = Entries[I];
    if (Black.count(E.Digest) || Store.load(E.Digest))
      continue;
    Work.push_back({E.Name, E.Source, E.SmallEnoughForUnoptimizedCS});
    WorkEntries.push_back(&E);
  }

  std::string JPath = journalPath(Opts.Dir, Opts.Shard);
  // Mark this incarnation's start: on replay it clears the in-flight set,
  // so a crash is attributed only to begins from the process that died.
  appendJournal(JPath, "start " +
                           std::to_string(FaultInjection::instance().epoch()));
  std::mutex JournalMutex;
  std::atomic<bool> IOFailed{false};
  std::string IOError;
  std::mutex IOErrorMutex;
  // Canceling this token stops the streaming loop from *submitting* more
  // programs; in-flight ones drain through the sink (unsaved).
  CancellationToken Stop;

  // Wire the interrupt latch into every solve's budget so SIGINT stops
  // an in-flight fixed-point promptly, not at convergence.
  GovernancePolicy Policy = Opts.Policy;
  if (!Policy.Cancel)
    Policy.Cancel = interruptToken();

  auto OnStart = [&](size_t I) {
    const ManifestEntry &E = *WorkEntries[I];
    {
      std::lock_guard<std::mutex> Lock(JournalMutex);
      appendJournal(JPath, "begin " + E.Digest + " " + E.Name);
    }
    // The crash-family probes sit *after* the begin append on purpose:
    // a fired fault must leave the victim attributable in the journal.
    if (faultPoint("worker.crash", E.Digest))
      std::abort();
    if (faultPoint("worker.stall", E.Digest)) {
      // Stall well past any sane progress timeout; the supervisor's
      // stall detector SIGKILLs us. Chunked so the sleep itself never
      // outlives the test harness if detection is disabled.
      for (int S = 0; S < 600 && !interruptRequested(); ++S)
        std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    if (faultPoint("worker.sigint", E.Digest))
      simulateInterruptForTest(SIGINT);
  };

  auto Sink = [&](size_t I, BenchmarkReport &&R) {
    if (interruptRequested() || IOFailed.load()) {
      // Do not persist results delivered after an interrupt: a solve cut
      // short by the cancellation token is schedule-dependent, and a
      // record written now would wrongly mark the program finished.
      Stop.cancel();
      return;
    }
    const ManifestEntry &E = *WorkEntries[I];
    ProgramResult PR = resultFromReport(R, E.Digest);
    std::string Err;
    if (!Store.save(PR, &Err)) {
      {
        std::lock_guard<std::mutex> Lock(IOErrorMutex);
        IOError = Err;
      }
      IOFailed.store(true);
      Stop.cancel();
      return;
    }
    std::lock_guard<std::mutex> Lock(JournalMutex);
    appendJournal(JPath, PR.ok() ? "done " + E.Digest
                                 : "fail " + E.Digest + " " + PR.Reason);
  };

  ContextSensOptions CSOpts;
  analyzeCorpusStreaming(Work, Opts.RunCS, CSOpts, Opts.Jobs,
                         CheckLevel::None, Policy, Sink, &Stop, OnStart);

  if (IOFailed.load()) {
    std::lock_guard<std::mutex> Lock(IOErrorMutex);
    std::fprintf(stderr, "vdga-analyze: shard %u/%u: %s\n", Opts.Shard,
                 Opts.Shards, IOError.c_str());
    return 1;
  }
  if (interruptRequested()) {
    std::fprintf(stderr,
                 "vdga-analyze: shard %u/%u interrupted by signal %d; "
                 "journal and finished results flushed\n",
                 Opts.Shard, Opts.Shards, interruptSignal());
    return ExitInterrupted;
  }
  return 0;
}
