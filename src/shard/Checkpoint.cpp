//===- shard/Checkpoint.cpp -----------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/Checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vdga;

std::string vdga::journalPath(const std::string &Dir, unsigned Shard) {
  std::filesystem::path P(Dir);
  P /= "journal-" + std::to_string(Shard) + ".log";
  return P.string();
}

bool vdga::appendJournal(const std::string &Path, const std::string &Line,
                         std::string *Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::app);
  if (!Out) {
    if (Error)
      *Error = "cannot open journal " + Path + " for append";
    return false;
  }
  Out << Line << '\n';
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "short append to journal " + Path;
    return false;
  }
  return true;
}

JournalState vdga::loadJournal(const std::string &Path) {
  JournalState State;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return State;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  // Drop a torn final line: a worker killed mid-append leaves bytes with
  // no trailing newline, and those bytes are not a record.
  size_t End = Text.rfind('\n');
  if (End == std::string::npos)
    return State;
  Text.resize(End + 1);

  // (digest, name) in begin order; erased when resolved.
  std::vector<std::pair<std::string, std::string>> Open;
  std::istringstream Lines(Text);
  std::string Line;
  auto Resolve = [&Open](const std::string &Digest) {
    Open.erase(std::remove_if(Open.begin(), Open.end(),
                              [&Digest](const auto &P) {
                                return P.first == Digest;
                              }),
               Open.end());
  };
  while (std::getline(Lines, Line)) {
    std::istringstream T(Line);
    std::string Tag, Digest;
    if (!(T >> Tag >> Digest))
      continue;
    if (Tag == "begin") {
      std::string Name;
      T >> Name;
      // A re-begin (the program is being retried) supersedes any older
      // open entry for the same digest; one program is one suspect.
      Resolve(Digest);
      Open.emplace_back(Digest, Name);
    } else if (Tag == "start") {
      // A fresh worker incarnation: every older `begin` belonged to a
      // process that is now dead, so nothing older is *in flight*. This
      // is what makes crash attribution exact — suspects are only the
      // begins of the incarnation that just died.
      Open.clear();
    } else if (Tag == "done") {
      State.Done.push_back(Digest);
      Resolve(Digest);
    } else if (Tag == "fail") {
      std::string Reason;
      std::getline(T, Reason);
      if (!Reason.empty() && Reason.front() == ' ')
        Reason.erase(Reason.begin());
      State.Failed[Digest] = Reason;
      Resolve(Digest);
    }
    // Unknown tags: skipped, not fatal (see header).
  }
  State.Outstanding = std::move(Open);
  return State;
}

//===----------------------------------------------------------------------===//
// Blacklist / attempts snapshots
//===----------------------------------------------------------------------===//

std::string vdga::blacklistPath(const std::string &Dir) {
  return (std::filesystem::path(Dir) / "blacklist.txt").string();
}

std::string vdga::attemptsPath(const std::string &Dir) {
  return (std::filesystem::path(Dir) / "attempts.txt").string();
}

static bool writeSnapshot(const std::string &Path, const std::string &Body,
                          std::string *Error) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      if (Error)
        *Error = "cannot open " + Tmp + " for writing";
      return false;
    }
    Out << Body;
    if (!Out) {
      if (Error)
        *Error = "short write to " + Tmp;
      return false;
    }
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC) {
    if (Error)
      *Error = "cannot rename " + Tmp + ": " + EC.message();
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

bool vdga::saveBlacklist(const std::string &Path,
                         const std::vector<BlacklistEntry> &Entries,
                         std::string *Error) {
  std::ostringstream OS;
  for (const BlacklistEntry &E : Entries)
    OS << E.Digest << ' ' << E.Name << ' ' << E.Attempts << ' ' << E.Reason
       << '\n';
  return writeSnapshot(Path, OS.str(), Error);
}

std::vector<BlacklistEntry> vdga::loadBlacklist(const std::string &Path) {
  std::vector<BlacklistEntry> Entries;
  std::ifstream In(Path, std::ios::binary);
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream T(Line);
    BlacklistEntry E;
    if (!(T >> E.Digest >> E.Name >> E.Attempts))
      continue;
    std::getline(T, E.Reason);
    if (!E.Reason.empty() && E.Reason.front() == ' ')
      E.Reason.erase(E.Reason.begin());
    Entries.push_back(std::move(E));
  }
  return Entries;
}

bool vdga::saveAttempts(const std::string &Path,
                        const std::map<std::string, unsigned> &Attempts,
                        std::string *Error) {
  std::ostringstream OS;
  for (const auto &[Digest, Count] : Attempts)
    OS << Digest << ' ' << Count << '\n';
  return writeSnapshot(Path, OS.str(), Error);
}

std::map<std::string, unsigned> vdga::loadAttempts(const std::string &Path) {
  std::map<std::string, unsigned> Attempts;
  std::ifstream In(Path, std::ios::binary);
  std::string Digest;
  unsigned Count = 0;
  while (In >> Digest >> Count)
    Attempts[Digest] = Count;
  return Attempts;
}
