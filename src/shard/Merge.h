//===- shard/Merge.h - Deterministic shard-report merging ------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds per-program result records back into one corpus artifact
/// (`vdga-corpus-v1` JSON) in manifest order. Every field in the artifact
/// is schedule-independent — program records carry no wall-clock — so the
/// merged report of a sharded run is byte-identical to a serial run's
/// whenever the same programs succeeded, whatever the shard count, job
/// count, retry history or interleaving. That identity is the pipeline's
/// central correctness check (docs/BENCH_FORMAT.md).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SHARD_MERGE_H
#define VDGA_SHARD_MERGE_H

#include "shard/Checkpoint.h"
#include "shard/Manifest.h"
#include "shard/ResultStore.h"

#include <string>
#include <vector>

namespace vdga {

/// Merge outcome: the artifact plus the status census the caller gates
/// its exit code (and bench_diff.py its verdict) on.
struct MergeReport {
  std::string Json;
  unsigned Ok = 0;
  unsigned Failed = 0;      ///< Contained failures + abandoned programs.
  unsigned Blacklisted = 0;
};

/// Renders the merged artifact for \p Entries. Per entry, precedence:
/// blacklist entry -> `blacklisted` record; parseable store record -> as
/// recorded (`ok` or `failed`); otherwise a synthesized `failed` record
/// with reason "shard-abandoned" (its shard died for good before
/// reaching it). \p SolverStrategy is stamped into the corpus header so
/// bench_diff.py refuses cross-strategy comparisons.
MergeReport mergeShardResults(const std::vector<ManifestEntry> &Entries,
                              const ResultStore &Store,
                              const std::vector<BlacklistEntry> &Blacklist,
                              const std::string &SolverStrategy);

} // namespace vdga

#endif // VDGA_SHARD_MERGE_H
