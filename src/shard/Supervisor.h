//===- shard/Supervisor.h - Fault-isolated shard supervision ---*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus pipeline's fault boundary: `vdga-shard` forks one
/// `vdga-analyze --shard i/N` worker per shard and supervises them, so a
/// segfault, OOM kill, stall or injected crash takes down one shard's
/// process — never the run. Per shard the supervisor is a small state
/// machine:
///
///     Pending -> Running -> Done
///        ^          |
///        |          v (worker exit != 0 / signal / stall SIGKILL)
///        +--- crash handling: attribute via the journal, back off,
///             respawn with a bumped fault epoch -- or Abandon after
///             MaxRespawns.
///
/// Crash attribution: the dead shard's journal is replayed; `begin`
/// entries without a matching `done`/`fail` were in flight. With exactly
/// one suspect the crash is *attributed* — its attempt counter rises and
/// at MaxAttempts the program is blacklisted (persisted via snapshot, so
/// workers skip it and the merge records it). With several suspects
/// (parallel in-worker jobs) no one is blamed; the shard respawns in
/// *safe mode* (--jobs 1) where the next crash has exactly one suspect.
///
/// Stall containment: a Running shard whose journal stops growing for
/// StallTimeoutMs is SIGKILLed and handled like any other crash.
///
/// When every shard is Done the per-program records merge into the
/// `vdga-corpus-v1` artifact (shard/Merge.h) — byte-identical to a
/// serial run's on the surviving set. Exit codes: 0 = report written
/// (blacklisted programs are *recorded*, not hidden; bench_diff.py turns
/// new ones into failures), 1 = a shard was abandoned or I/O failed,
/// 5 = interrupted (workers SIGTERMed, checkpoints flushed).
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SHARD_SUPERVISOR_H
#define VDGA_SHARD_SUPERVISOR_H

#include "pointsto/Solver.h"
#include "shard/Manifest.h"
#include "shard/Merge.h"

#include <string>

namespace vdga {

struct SupervisorOptions {
  std::string WorkerPath; ///< The vdga-analyze binary to exec.
  ManifestSpec Spec;
  unsigned Shards = 1;
  unsigned Jobs = 1; ///< Per-worker in-process jobs.
  bool RunCS = false;
  SolverStrategy Strategy = SolverStrategy::Basic;
  std::string Dir;     ///< Checkpoint directory (journals, records, report).
  bool Resume = false; ///< Keep existing records; otherwise start fresh.
  unsigned MaxAttempts = 2;  ///< Crash attributions before blacklisting.
  unsigned MaxRespawns = 8;  ///< Per-shard respawn cap before abandoning.
  unsigned StallTimeoutMs = 30000; ///< Journal-growth timeout.
  unsigned BackoffBaseMs = 50;     ///< Respawn backoff: base * 2^retries.
  std::string ReportPath; ///< Merged artifact; default <Dir>/corpus-report.json.
  bool Quiet = false;     ///< Suppress progress lines on stderr.
};

/// Runs the whole supervised pipeline; returns the process exit code
/// (see file comment). \p Merge, when non-null, receives the merge
/// census for the caller's own reporting.
int runSupervisor(const SupervisorOptions &Opts, MergeReport *Merge = nullptr);

} // namespace vdga

#endif // VDGA_SHARD_SUPERVISOR_H
