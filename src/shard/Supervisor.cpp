//===- shard/Supervisor.cpp -----------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/Supervisor.h"

#include "shard/Checkpoint.h"
#include "shard/ResultStore.h"
#include "support/Interrupt.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define VDGA_HAVE_FORK 1
#endif

using namespace vdga;

#ifndef VDGA_HAVE_FORK

int vdga::runSupervisor(const SupervisorOptions &, MergeReport *) {
  std::fprintf(stderr,
               "vdga-shard: process supervision requires a POSIX host\n");
  return 1;
}

#else

namespace {

using Clock = std::chrono::steady_clock;

struct ShardState {
  unsigned Index = 0;
  enum Phase { Pending, Running, Done, Abandoned } St = Pending;
  pid_t Pid = -1;
  unsigned Respawns = 0; ///< Spawn attempts so far (first spawn = 0).
  bool SafeMode = false; ///< Respawn with --jobs 1 for attribution.
  bool StallKilled = false;
  Clock::time_point NextSpawn = Clock::time_point{}; ///< Backoff gate.
  Clock::time_point LastProgress;
  uintmax_t LastJournalSize = 0;
};

uintmax_t journalSize(const std::string &Path) {
  std::error_code EC;
  uintmax_t Size = std::filesystem::file_size(Path, EC);
  return EC ? 0 : Size;
}

std::string describeExit(int Status) {
  if (WIFSIGNALED(Status))
    return "signal " + std::to_string(WTERMSIG(Status));
  if (WIFEXITED(Status))
    return "exit " + std::to_string(WEXITSTATUS(Status));
  return "status " + std::to_string(Status);
}

/// The supervisor's view of one run; owns the mutable recovery state.
class Run {
public:
  Run(const SupervisorOptions &Opts) : Opts(Opts), Store(Opts.Dir) {}

  int run(MergeReport *MergeOut);

private:
  void note(const char *Fmt, ...);
  bool freshStart();
  bool spawn(ShardState &S);
  void handleExit(ShardState &S, int Status);
  void killAll(int Sig);
  int finish(MergeReport *MergeOut, bool Interrupted);
  bool persistRecoveryState();

  const SupervisorOptions &Opts;
  ResultStore Store;
  std::vector<ShardState> Shards;
  std::map<std::string, unsigned> Attempts;     // digest -> attributions
  std::vector<BlacklistEntry> Blacklist;
  std::map<std::string, std::string> EntryName; // digest -> manifest name
};

void Run::note(const char *Fmt, ...) {
  if (Opts.Quiet)
    return;
  va_list Args;
  va_start(Args, Fmt);
  std::fprintf(stderr, "vdga-shard: ");
  std::vfprintf(stderr, Fmt, Args);
  std::fprintf(stderr, "\n");
  va_end(Args);
}

/// A non-resume run must not inherit stale journals, records or
/// blacklists; only files this pipeline owns are removed.
bool Run::freshStart() {
  std::error_code EC;
  std::filesystem::directory_iterator It(Opts.Dir, EC), End;
  if (EC)
    return true; // Directory does not exist yet; workers create it.
  for (; It != End; It.increment(EC)) {
    if (EC)
      break;
    const std::filesystem::path &P = It->path();
    std::string Name = P.filename().string();
    bool Ours = P.extension() == ".vdga-result" ||
                (Name.rfind("journal-", 0) == 0) || Name == "blacklist.txt" ||
                Name == "attempts.txt" || Name == "corpus-report.json" ||
                P.extension() == ".tmp";
    if (!Ours)
      continue;
    std::error_code RmEC;
    std::filesystem::remove(P, RmEC);
  }
  return true;
}

bool Run::persistRecoveryState() {
  std::string Error;
  if (!saveAttempts(attemptsPath(Opts.Dir), Attempts, &Error) ||
      !saveBlacklist(blacklistPath(Opts.Dir), Blacklist, &Error)) {
    std::fprintf(stderr, "vdga-shard: %s\n", Error.c_str());
    return false;
  }
  return true;
}

bool Run::spawn(ShardState &S) {
  std::vector<std::string> Args;
  Args.push_back(Opts.WorkerPath);
  Args.push_back("--shard");
  Args.push_back(std::to_string(S.Index) + "/" +
                 std::to_string(Opts.Shards));
  Args.push_back("--checkpoint-dir");
  Args.push_back(Opts.Dir);
  Args.push_back("--jobs");
  Args.push_back(std::to_string(S.SafeMode ? 1 : Opts.Jobs));
  if (Opts.Spec.UseCorpus)
    Args.push_back("--shard-corpus");
  if (Opts.Spec.FuzzCount > 0) {
    Args.push_back("--fuzz-count");
    Args.push_back(std::to_string(Opts.Spec.FuzzCount));
    Args.push_back("--fuzz-seed");
    Args.push_back(std::to_string(Opts.Spec.FuzzSeed));
  }
  if (Opts.RunCS)
    Args.push_back("--cs");
  Args.push_back("--solver");
  Args.push_back(solverStrategyName(Opts.Strategy));

  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  pid_t Pid = fork();
  if (Pid < 0) {
    std::fprintf(stderr, "vdga-shard: fork failed\n");
    return false;
  }
  if (Pid == 0) {
    // Child. The fault epoch is the shard's respawn generation: a
    // non-sticky injected fault that fired last attempt decides
    // differently this attempt — transient faults heal on retry.
    std::string Epoch = std::to_string(S.Respawns);
    setenv("VDGA_FAULT_EPOCH", Epoch.c_str(), 1);
    execv(Opts.WorkerPath.c_str(), Argv.data());
    std::fprintf(stderr, "vdga-shard: cannot exec %s\n",
                 Opts.WorkerPath.c_str());
    _exit(127);
  }
  S.Pid = Pid;
  S.St = ShardState::Running;
  S.StallKilled = false;
  S.LastProgress = Clock::now();
  S.LastJournalSize = journalSize(journalPath(Opts.Dir, S.Index));
  return true;
}

void Run::handleExit(ShardState &S, int Status) {
  S.Pid = -1;
  if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0) {
    S.St = ShardState::Done;
    note("shard %u done", S.Index);
    return;
  }
  if (WIFEXITED(Status) &&
      (WEXITSTATUS(Status) == 2 || WEXITSTATUS(Status) == 127)) {
    // Usage/exec errors are configuration bugs, not transient faults:
    // retrying the same command line can only fail the same way.
    note("shard %u failed permanently (%s)", S.Index,
         describeExit(Status).c_str());
    S.St = ShardState::Abandoned;
    return;
  }

  std::string How =
      S.StallKilled ? "stalled (no journal progress)" : describeExit(Status);

  // Crash attribution: replay the journal; in-flight programs are the
  // `begin`s without a `done`/`fail`.
  JournalState J = loadJournal(journalPath(Opts.Dir, S.Index));
  if (J.Outstanding.size() == 1) {
    const auto &[Digest, Name] = J.Outstanding.front();
    unsigned N = ++Attempts[Digest];
    note("shard %u crashed (%s) while analyzing %s (attempt %u)", S.Index,
         How.c_str(), Name.c_str(), N);
    if (N >= Opts.MaxAttempts) {
      BlacklistEntry B;
      B.Digest = Digest;
      B.Name = Name.empty() ? EntryName[Digest] : Name;
      B.Attempts = N;
      B.Reason = "crashed worker " + std::to_string(N) + "x (last: " + How +
                 ")";
      Blacklist.push_back(std::move(B));
      note("blacklisting %s after %u attempts", Name.c_str(), N);
    }
    persistRecoveryState();
  } else if (J.Outstanding.size() > 1) {
    // Several programs were in flight; nobody can be blamed. Safe mode
    // (one in-process job) makes the next crash attributable.
    note("shard %u crashed (%s) with %zu programs in flight; "
         "respawning in safe mode",
         S.Index, How.c_str(), J.Outstanding.size());
    S.SafeMode = true;
  } else {
    note("shard %u crashed (%s) between programs", S.Index, How.c_str());
  }

  ++S.Respawns;
  if (S.Respawns > Opts.MaxRespawns) {
    note("shard %u abandoned after %u respawns", S.Index, S.Respawns - 1);
    S.St = ShardState::Abandoned;
    return;
  }
  unsigned Shift = S.Respawns > 6 ? 6 : S.Respawns - 1;
  unsigned Backoff = Opts.BackoffBaseMs * (1u << Shift);
  if (Backoff > 2000)
    Backoff = 2000;
  S.NextSpawn = Clock::now() + std::chrono::milliseconds(Backoff);
  S.St = ShardState::Pending;
  note("shard %u retrying in %u ms (respawn %u, epoch %u%s)", S.Index,
       Backoff, S.Respawns, S.Respawns, S.SafeMode ? ", safe mode" : "");
}

void Run::killAll(int Sig) {
  for (ShardState &S : Shards)
    if (S.St == ShardState::Running && S.Pid > 0)
      kill(S.Pid, Sig);
}

int Run::finish(MergeReport *MergeOut, bool Interrupted) {
  persistRecoveryState();
  if (Interrupted) {
    std::fprintf(stderr,
                 "vdga-shard: interrupted by signal %d; workers stopped, "
                 "checkpoints flushed (resume with --resume)\n",
                 interruptSignal());
    return ExitInterrupted;
  }

  std::vector<ManifestEntry> Entries = buildManifest(Opts.Spec);
  MergeReport Merge = mergeShardResults(
      Entries, Store, Blacklist, solverStrategyName(Opts.Strategy));
  std::string ReportPath =
      Opts.ReportPath.empty()
          ? (std::filesystem::path(Opts.Dir) / "corpus-report.json").string()
          : Opts.ReportPath;
  {
    std::string Tmp = ReportPath + ".tmp";
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    Out << Merge.Json;
    Out.flush();
    std::error_code EC;
    if (!Out)
      EC = std::make_error_code(std::errc::io_error);
    else
      std::filesystem::rename(Tmp, ReportPath, EC);
    if (EC) {
      std::fprintf(stderr, "vdga-shard: cannot write %s\n",
                   ReportPath.c_str());
      return 1;
    }
  }
  note("merged %u ok / %u failed / %u blacklisted -> %s", Merge.Ok,
       Merge.Failed, Merge.Blacklisted, ReportPath.c_str());
  if (MergeOut)
    *MergeOut = std::move(Merge);

  for (const ShardState &S : Shards)
    if (S.St == ShardState::Abandoned)
      return 1;
  return 0;
}

int Run::run(MergeReport *MergeOut) {
  std::error_code EC;
  std::filesystem::create_directories(Opts.Dir, EC);
  if (EC) {
    std::fprintf(stderr, "vdga-shard: cannot create %s: %s\n",
                 Opts.Dir.c_str(), EC.message().c_str());
    return 1;
  }
  if (!Opts.Resume)
    freshStart();
  else {
    // Torn records (a worker died mid-save) parse as absent anyway;
    // removing them keeps the store clean and the rerun visible here.
    ResultStore::FsckReport F = Store.fsck(/*Remove=*/true);
    if (!F.Corrupt.empty())
      note("resume fsck: removed %u torn record(s)", F.Removed);
    Attempts = loadAttempts(attemptsPath(Opts.Dir));
    Blacklist = loadBlacklist(blacklistPath(Opts.Dir));
  }

  for (const ManifestEntry &E : buildManifest(Opts.Spec))
    EntryName[E.Digest] = E.Name;

  Shards.resize(Opts.Shards);
  for (unsigned I = 0; I < Opts.Shards; ++I)
    Shards[I].Index = I;

  while (true) {
    if (interruptRequested()) {
      killAll(SIGTERM);
      // Give workers a moment to flush, then reap whatever remains.
      for (ShardState &S : Shards) {
        if (S.Pid <= 0)
          continue;
        int Status = 0;
        waitpid(S.Pid, &Status, 0);
        S.Pid = -1;
      }
      return finish(MergeOut, /*Interrupted=*/true);
    }

    bool AnyRunning = false, AnyPending = false;
    Clock::time_point Now = Clock::now();
    for (ShardState &S : Shards) {
      if (S.St == ShardState::Pending) {
        if (Now >= S.NextSpawn) {
          if (!spawn(S))
            S.St = ShardState::Abandoned;
          else
            AnyRunning = true;
        } else {
          AnyPending = true;
        }
      } else if (S.St == ShardState::Running) {
        AnyRunning = true;
        // Stall detection: progress is journal growth. A worker wedged
        // inside one program appends nothing, and after the timeout it
        // is SIGKILLed and handled exactly like a crash.
        uintmax_t Size = journalSize(journalPath(Opts.Dir, S.Index));
        if (Size != S.LastJournalSize) {
          S.LastJournalSize = Size;
          S.LastProgress = Now;
        } else if (Now - S.LastProgress >
                   std::chrono::milliseconds(Opts.StallTimeoutMs)) {
          note("shard %u stalled for %u ms; killing pid %d", S.Index,
               Opts.StallTimeoutMs, static_cast<int>(S.Pid));
          S.StallKilled = true;
          kill(S.Pid, SIGKILL);
          S.LastProgress = Now; // Don't re-kill while the exit drains.
        }
      }
    }
    if (!AnyRunning && !AnyPending)
      break;

    int Status = 0;
    pid_t Pid = waitpid(-1, &Status, WNOHANG);
    if (Pid > 0) {
      for (ShardState &S : Shards)
        if (S.Pid == Pid)
          handleExit(S, Status);
      continue; // Reap eagerly before sleeping again.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  return finish(MergeOut, /*Interrupted=*/false);
}

} // namespace

int vdga::runSupervisor(const SupervisorOptions &Opts, MergeReport *Merge) {
  if (Opts.Shards == 0 || Opts.WorkerPath.empty()) {
    std::fprintf(stderr, "vdga-shard: invalid supervisor configuration\n");
    return 2;
  }
  Run R(Opts);
  return R.run(Merge);
}

#endif // VDGA_HAVE_FORK
