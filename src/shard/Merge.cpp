//===- shard/Merge.cpp ----------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/Merge.h"

#include <cstdio>
#include <map>
#include <sstream>

using namespace vdga;

namespace {
/// Minimal JSON writer, same shape as the bench artifact's.
class Json {
public:
  Json &key(const char *K) {
    comma();
    OS << '"' << K << "\":";
    Sep = false;
    return *this;
  }
  Json &value(const std::string &S) {
    comma();
    OS << '"';
    for (char C : S) {
      if (C == '"' || C == '\\')
        OS << '\\';
      OS << C;
    }
    OS << '"';
    return *this;
  }
  Json &value(uint64_t V) {
    comma();
    OS << V;
    return *this;
  }
  Json &value(unsigned V) { return value(uint64_t(V)); }
  Json &value(double V) {
    comma();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    OS << Buf;
    return *this;
  }
  Json &open(char Bracket) {
    comma();
    OS << Bracket;
    Sep = false;
    return *this;
  }
  Json &close(char Bracket) {
    OS << Bracket;
    Sep = true;
    return *this;
  }
  std::string str() const { return OS.str(); }

private:
  void comma() {
    if (Sep)
      OS << ',';
    Sep = true;
  }
  std::ostringstream OS;
  bool Sep = false;
};

void emitPairs(Json &J, const char *Key, const PairTotals &T) {
  J.key(Key).open('{');
  J.key("pointer").value(T.Pointer);
  J.key("function").value(T.Function);
  J.key("aggregate").value(T.Aggregate);
  J.key("store").value(T.Store);
  J.key("total").value(T.total());
  J.close('}');
}

void emitStats(Json &J, const char *Key, const SolveStats &S) {
  J.key(Key).open('{');
  J.key("transfer_fns").value(S.TransferFns);
  J.key("meet_ops").value(S.MeetOps);
  J.key("pairs_inserted").value(S.PairsInserted);
  J.key("deduped_events").value(S.DedupedEvents);
  J.close('}');
}

void emitOps(Json &J, const char *Key, const IndirectOpStats &S) {
  J.key(Key).open('{');
  J.key("total").value(S.Total);
  J.key("zero_ref").value(S.ZeroRef);
  J.key("count1").value(S.Count1);
  J.key("count2").value(S.Count2);
  J.key("count3").value(S.Count3);
  J.key("count4_plus").value(S.Count4Plus);
  J.key("max").value(S.Max);
  J.key("avg").value(S.Avg);
  J.close('}');
}
} // namespace

MergeReport
vdga::mergeShardResults(const std::vector<ManifestEntry> &Entries,
                        const ResultStore &Store,
                        const std::vector<BlacklistEntry> &Blacklist,
                        const std::string &SolverStrategy) {
  std::map<std::string, const BlacklistEntry *> Black;
  for (const BlacklistEntry &E : Blacklist)
    Black[E.Digest] = &E;

  // Resolve every slot first so the census can go into the header.
  std::vector<ProgramResult> Resolved;
  Resolved.reserve(Entries.size());
  MergeReport Rep;
  for (const ManifestEntry &E : Entries) {
    ProgramResult R;
    if (auto It = Black.find(E.Digest); It != Black.end()) {
      R.Name = E.Name;
      R.Digest = E.Digest;
      R.Status = "blacklisted";
      R.Reason = It->second->Reason;
      ++Rep.Blacklisted;
    } else if (auto Loaded = Store.load(E.Digest)) {
      R = std::move(*Loaded);
      if (R.ok())
        ++Rep.Ok;
      else
        ++Rep.Failed;
    } else {
      R.Name = E.Name;
      R.Digest = E.Digest;
      R.Status = "failed";
      R.Reason = "shard-abandoned";
      ++Rep.Failed;
    }
    Resolved.push_back(std::move(R));
  }

  Json J;
  J.open('{');
  J.key("schema").value(std::string("vdga-corpus-v1"));
  J.key("corpus").open('{');
  J.key("programs").value(uint64_t(Resolved.size()));
  J.key("ok").value(Rep.Ok);
  J.key("failed").value(Rep.Failed);
  J.key("blacklisted").value(Rep.Blacklisted);
  J.key("solver_strategy").value(SolverStrategy);
  J.close('}');

  J.key("programs").open('[');
  for (const ProgramResult &R : Resolved) {
    J.open('{');
    J.key("name").value(R.Name);
    J.key("digest").value(R.Digest);
    J.key("status").value(R.Status);
    if (!R.ok()) {
      J.key("reason").value(R.Reason);
      J.close('}');
      continue;
    }
    J.key("source_lines").value(R.SourceLines);
    J.key("vdg_nodes").value(R.VdgNodes);
    J.key("alias_outputs").value(R.AliasOutputs);
    emitPairs(J, "ci_pairs", R.CI);
    emitStats(J, "ci_stats", R.CIStats);
    emitOps(J, "reads", R.ReadsCI);
    emitOps(J, "writes", R.WritesCI);
    if (R.RanCS) {
      J.key("cs_completed").value(uint64_t(R.CSCompleted ? 1 : 0));
      if (R.CSCompleted) {
        emitPairs(J, "cs_pairs", R.CS);
        emitStats(J, "cs_stats", R.CSStats);
        J.key("spurious_total").value(R.SpuriousTotal);
        J.key("spurious_percent").value(R.SpuriousPercent);
        J.key("cs_wins").value(R.IndirectOpsWhereCSWins);
      }
    }
    J.close('}');
  }
  J.close(']');
  J.close('}');
  Rep.Json = J.str() + "\n";
  return Rep;
}
