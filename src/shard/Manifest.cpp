//===- shard/Manifest.cpp -------------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/Manifest.h"

#include "corpus/Corpus.h"
#include "fuzz/Generator.h"
#include "support/Digest.h"

#include <unordered_set>

using namespace vdga;

std::vector<ManifestEntry> vdga::buildManifest(const ManifestSpec &Spec) {
  std::vector<ManifestEntry> Entries;
  std::unordered_set<std::string> Seen;
  auto Push = [&](std::string Name, std::string Source, bool SmallCS) {
    ManifestEntry E;
    E.Name = std::move(Name);
    E.Digest = sourceDigest(Source);
    E.Source = std::move(Source);
    E.SmallEnoughForUnoptimizedCS = SmallCS;
    // The digest is the checkpoint/store key; a duplicate source would
    // make two slots fight over one record, so only the first slot runs.
    if (Seen.insert(E.Digest).second)
      Entries.push_back(std::move(E));
  };

  if (Spec.UseCorpus)
    for (const CorpusProgram &P : corpus())
      Push(P.Name, P.Source, P.SmallEnoughForUnoptimizedCS);

  for (unsigned I = 0; I < Spec.FuzzCount; ++I) {
    FuzzOptions FO;
    FO.Seed = Spec.FuzzSeed + I;
    std::string Source = generateProgram(FO).render();
    Push("fuzz-" + std::to_string(Spec.FuzzSeed) + "-" + std::to_string(I),
         std::move(Source), /*SmallCS=*/true);
  }
  return Entries;
}

std::vector<size_t> vdga::shardSlice(size_t Entries, unsigned Shard,
                                     unsigned Shards) {
  std::vector<size_t> Slice;
  if (Shards == 0)
    return Slice;
  for (size_t I = Shard; I < Entries; I += Shards)
    Slice.push_back(I);
  return Slice;
}
