//===- shard/Worker.h - One shard's worker process -------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process body of `vdga-analyze --shard i/N`: rebuild the
/// manifest, take slice i, skip programs the result store already has (or
/// the blacklist forbids), and stream the rest through the contained
/// corpus driver — journaling `begin` before and `done`/`fail` after each
/// program, persisting each result record as it lands and releasing the
/// program immediately (flat memory). The worker never retries and never
/// judges crashes; that is the supervisor's job. It just makes every
/// outcome externally observable through the journal and the store.
///
/// Exit codes: 0 = slice fully drained (contained per-program failures
/// included), 1 = an I/O error stopped progress, 5 = interrupted
/// (SIGINT/SIGTERM) after flushing what was finished.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SHARD_WORKER_H
#define VDGA_SHARD_WORKER_H

#include "driver/Governance.h"
#include "shard/Manifest.h"

#include <string>

namespace vdga {

struct WorkerOptions {
  ManifestSpec Spec;
  unsigned Shard = 0;
  unsigned Shards = 1;
  std::string Dir;   ///< Checkpoint directory (journals + result store).
  unsigned Jobs = 1; ///< In-process parallelism inside the shard.
  bool RunCS = false;
  GovernancePolicy Policy; ///< Carries the solver strategy.
};

/// Runs one shard to completion; returns the process exit code (see file
/// comment). Errors are reported on stderr.
int runShardWorker(const WorkerOptions &Opts);

} // namespace vdga

#endif // VDGA_SHARD_WORKER_H
