//===- shard/Manifest.h - Sharded corpus work set --------------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work set a sharded corpus run agrees on. Every process in the run
/// — the supervisor and each worker — rebuilds the manifest independently
/// from the same parameters (built-in corpus, or fuzz seed + count) and
/// must arrive at the identical entry list: entry order defines merge
/// order, entry digests key the checkpoint journal and the result store,
/// and the shard slice `I % Shards == Shard` partitions the entries
/// without any cross-process coordination.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SHARD_MANIFEST_H
#define VDGA_SHARD_MANIFEST_H

#include <cstdint>
#include <string>
#include <vector>

namespace vdga {

/// One program in the sharded work set.
struct ManifestEntry {
  std::string Name;
  std::string Digest; ///< sourceDigest(Source) — the checkpoint/store key.
  std::string Source;
  bool SmallEnoughForUnoptimizedCS = true;
};

/// Parameters every process derives the manifest from. Exactly one of
/// `UseCorpus` / `FuzzCount > 0` describes the work set.
struct ManifestSpec {
  bool UseCorpus = false;  ///< The built-in Figure 2 corpus.
  unsigned FuzzCount = 0;  ///< Number of fuzz-generated programs.
  uint64_t FuzzSeed = 0;   ///< Base seed; program I uses FuzzSeed + I.
};

/// Builds the manifest for \p Spec. Deterministic: same spec, same
/// entries, in every process. Digest collisions between distinct entries
/// are de-duplicated (first occurrence wins) so one digest never names
/// two slots.
std::vector<ManifestEntry> buildManifest(const ManifestSpec &Spec);

/// The entry indices shard \p Shard of \p Shards owns (round-robin, so
/// slices stay balanced whatever the corpus size).
std::vector<size_t> shardSlice(size_t Entries, unsigned Shard,
                               unsigned Shards);

} // namespace vdga

#endif // VDGA_SHARD_MANIFEST_H
