//===- shard/Checkpoint.h - Crash-safe progress journal --------*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-shard progress journals plus the supervisor's blacklist snapshot.
///
/// A journal (`journal-<shard>.log`) is append-only, one line per event,
/// flushed per line:
///
///     start <epoch>
///     begin <digest> <name>
///     done <digest>
///     fail <digest> <reason...>
///
/// The format is deliberately crash-tolerant instead of atomic: a worker
/// dying mid-append leaves at most one final line without a trailing
/// newline, which the loader drops. What the journal buys the supervisor:
/// a `begin` without a matching `done`/`fail` after a worker crash names
/// the program(s) that were in flight — with one worker job, *the*
/// guilty program, which is what crash attribution and blacklisting key
/// on. Each worker incarnation opens with a `start` line, which resets
/// the in-flight set on replay: begins from an earlier (dead) incarnation
/// are not suspects of the current crash. What the journal buys resume:
/// `done` digests (confirmed against the result store) are never
/// re-analyzed.
///
/// The blacklist (`blacklist.txt`) and attempt counters (`attempts.txt`)
/// are small supervisor-owned snapshots rewritten via tmp + rename.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SHARD_CHECKPOINT_H
#define VDGA_SHARD_CHECKPOINT_H

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vdga {

/// `<dir>/journal-<shard>.log`.
std::string journalPath(const std::string &Dir, unsigned Shard);

/// Appends one journal line (newline added) and flushes. False on I/O
/// failure.
bool appendJournal(const std::string &Path, const std::string &Line,
                   std::string *Error = nullptr);

/// Everything a journal replay yields.
struct JournalState {
  /// Digests with a `done` line.
  std::vector<std::string> Done;
  /// Digest -> reason for `fail` lines (contained per-program failures).
  std::map<std::string, std::string> Failed;
  /// `begin` entries with no matching `done`/`fail`, in begin order:
  /// (digest, name). After a crash these are the in-flight suspects.
  std::vector<std::pair<std::string, std::string>> Outstanding;
};

/// Replays \p Path. A missing file is an empty state; a torn final line
/// (no trailing newline) is dropped; otherwise-malformed lines are
/// skipped rather than fatal — the journal is advisory, the result store
/// is the source of truth for completed work.
JournalState loadJournal(const std::string &Path);

/// One blacklisted program.
struct BlacklistEntry {
  std::string Digest;
  std::string Name;
  unsigned Attempts = 0;
  std::string Reason;
};

std::string blacklistPath(const std::string &Dir);
std::string attemptsPath(const std::string &Dir);

/// Snapshot writers (tmp + rename) and loaders. Attempts maps digest to
/// crash-attribution count.
bool saveBlacklist(const std::string &Path,
                   const std::vector<BlacklistEntry> &Entries,
                   std::string *Error = nullptr);
std::vector<BlacklistEntry> loadBlacklist(const std::string &Path);
bool saveAttempts(const std::string &Path,
                  const std::map<std::string, unsigned> &Attempts,
                  std::string *Error = nullptr);
std::map<std::string, unsigned> loadAttempts(const std::string &Path);

} // namespace vdga

#endif // VDGA_SHARD_CHECKPOINT_H
