//===- shard/ResultStore.cpp ----------------------------------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/ResultStore.h"

#include "support/Digest.h"
#include "support/FaultInjection.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vdga;

//===----------------------------------------------------------------------===//
// vdga-result-v1 text format
//===----------------------------------------------------------------------===//

static void emitOpStats(std::ostringstream &OS, const char *Tag,
                        const IndirectOpStats &S) {
  char Avg[32];
  std::snprintf(Avg, sizeof(Avg), "%.6f", S.Avg);
  OS << Tag << ' ' << S.Total << ' ' << S.ZeroRef << ' ' << S.Count1 << ' '
     << S.Count2 << ' ' << S.Count3 << ' ' << S.Count4Plus << ' ' << S.Max
     << ' ' << Avg << '\n';
}

std::string ProgramResult::serialize() const {
  std::ostringstream OS;
  OS << "vdga-result-v1\n";
  OS << "name " << Name << '\n';
  OS << "digest " << Digest << '\n';
  OS << "status " << Status << '\n';
  if (!Reason.empty())
    OS << "reason " << Reason << '\n';
  if (ok()) {
    OS << "sizes " << SourceLines << ' ' << VdgNodes << ' ' << AliasOutputs
       << '\n';
    OS << "ci_pairs " << CI.Pointer << ' ' << CI.Function << ' '
       << CI.Aggregate << ' ' << CI.Store << '\n';
    OS << "ci_stats " << CIStats.TransferFns << ' ' << CIStats.MeetOps << ' '
       << CIStats.PairsInserted << ' ' << CIStats.DedupedEvents << '\n';
    emitOpStats(OS, "reads", ReadsCI);
    emitOpStats(OS, "writes", WritesCI);
    OS << "cs " << (RanCS ? 1 : 0) << ' ' << (CSCompleted ? 1 : 0) << '\n';
    if (CSCompleted) {
      OS << "cs_pairs " << CS.Pointer << ' ' << CS.Function << ' '
         << CS.Aggregate << ' ' << CS.Store << '\n';
      OS << "cs_stats " << CSStats.TransferFns << ' ' << CSStats.MeetOps
         << ' ' << CSStats.PairsInserted << ' ' << CSStats.DedupedEvents
         << '\n';
      char Pct[32];
      std::snprintf(Pct, sizeof(Pct), "%.6f", SpuriousPercent);
      OS << "spurious " << SpuriousTotal << ' ' << Pct << ' '
         << IndirectOpsWhereCSWins << '\n';
    }
  }
  // Integrity trailer over every byte above: a torn write (truncated
  // record, partially flushed page) never parses as a healthy record.
  std::string Body = OS.str();
  Fnv64 H;
  H.add(Body);
  return Body + "end " + H.hex() + "\n";
}

namespace {
/// Whitespace-token reader over one record line.
struct LineTok {
  std::istringstream In;
  explicit LineTok(const std::string &Line) : In(Line) {}
  bool u64(uint64_t &V) { return static_cast<bool>(In >> V); }
  bool u32(unsigned &V) { return static_cast<bool>(In >> V); }
  bool f64(double &V) { return static_cast<bool>(In >> V); }
};

bool parseOpStats(LineTok &T, IndirectOpStats &S) {
  return T.u32(S.Total) && T.u32(S.ZeroRef) && T.u32(S.Count1) &&
         T.u32(S.Count2) && T.u32(S.Count3) && T.u32(S.Count4Plus) &&
         T.u32(S.Max) && T.f64(S.Avg);
}
} // namespace

bool ProgramResult::parse(const std::string &Text, ProgramResult &Out) {
  // Split off and verify the integrity trailer first; everything about a
  // torn file fails here without field-level heuristics.
  size_t EndLine = Text.rfind("end ");
  if (EndLine == std::string::npos || Text.empty() || Text.back() != '\n')
    return false;
  if (EndLine != 0 && Text[EndLine - 1] != '\n')
    return false;
  std::string Body = Text.substr(0, EndLine);
  std::string Trailer = Text.substr(EndLine + 4);
  if (!Trailer.empty() && Trailer.back() == '\n')
    Trailer.pop_back();
  Fnv64 H;
  H.add(Body);
  if (Trailer != H.hex())
    return false;

  ProgramResult R;
  std::istringstream In(Body);
  std::string Line;
  if (!std::getline(In, Line) || Line != "vdga-result-v1")
    return false;
  bool SawStatus = false;
  while (std::getline(In, Line)) {
    size_t Sp = Line.find(' ');
    std::string Tag = Line.substr(0, Sp);
    std::string Rest = Sp == std::string::npos ? "" : Line.substr(Sp + 1);
    LineTok T(Rest);
    if (Tag == "name") {
      R.Name = Rest;
    } else if (Tag == "digest") {
      R.Digest = Rest;
    } else if (Tag == "status") {
      R.Status = Rest;
      SawStatus = true;
    } else if (Tag == "reason") {
      R.Reason = Rest;
    } else if (Tag == "sizes") {
      if (!T.u32(R.SourceLines) || !T.u32(R.VdgNodes) ||
          !T.u32(R.AliasOutputs))
        return false;
    } else if (Tag == "ci_pairs") {
      if (!T.u64(R.CI.Pointer) || !T.u64(R.CI.Function) ||
          !T.u64(R.CI.Aggregate) || !T.u64(R.CI.Store))
        return false;
    } else if (Tag == "ci_stats") {
      if (!T.u64(R.CIStats.TransferFns) || !T.u64(R.CIStats.MeetOps) ||
          !T.u64(R.CIStats.PairsInserted) || !T.u64(R.CIStats.DedupedEvents))
        return false;
    } else if (Tag == "reads") {
      if (!parseOpStats(T, R.ReadsCI))
        return false;
    } else if (Tag == "writes") {
      if (!parseOpStats(T, R.WritesCI))
        return false;
    } else if (Tag == "cs") {
      unsigned Ran = 0, Done = 0;
      if (!T.u32(Ran) || !T.u32(Done))
        return false;
      R.RanCS = Ran != 0;
      R.CSCompleted = Done != 0;
    } else if (Tag == "cs_pairs") {
      if (!T.u64(R.CS.Pointer) || !T.u64(R.CS.Function) ||
          !T.u64(R.CS.Aggregate) || !T.u64(R.CS.Store))
        return false;
    } else if (Tag == "cs_stats") {
      if (!T.u64(R.CSStats.TransferFns) || !T.u64(R.CSStats.MeetOps) ||
          !T.u64(R.CSStats.PairsInserted) || !T.u64(R.CSStats.DedupedEvents))
        return false;
    } else if (Tag == "spurious") {
      if (!T.u64(R.SpuriousTotal) || !T.f64(R.SpuriousPercent) ||
          !T.u32(R.IndirectOpsWhereCSWins))
        return false;
    } else {
      return false; // Unknown tag: not this schema version.
    }
  }
  if (R.Name.empty() || R.Digest.empty() || !SawStatus)
    return false;
  Out = std::move(R);
  return true;
}

ProgramResult vdga::resultFromReport(const BenchmarkReport &R,
                                     const std::string &Digest) {
  ProgramResult P;
  P.Name = R.Name;
  P.Digest = Digest;
  if (R.Failed) {
    P.Status = "failed";
    P.Reason = R.FailureReason;
    return P;
  }
  P.SourceLines = R.SourceLines;
  P.VdgNodes = R.VdgNodes;
  P.AliasOutputs = R.AliasOutputs;
  P.CI = R.CI;
  P.CIStats = R.CIStats;
  P.ReadsCI = R.ReadsCI;
  P.WritesCI = R.WritesCI;
  P.RanCS = R.RanCS;
  P.CSCompleted = R.CSCompleted;
  P.CS = R.CS;
  P.CSStats = R.CSStats;
  P.SpuriousTotal = R.SpuriousTotal;
  P.SpuriousPercent = R.SpuriousPercent;
  P.IndirectOpsWhereCSWins = R.IndirectOpsWhereCSWins;
  return P;
}

//===----------------------------------------------------------------------===//
// ResultStore
//===----------------------------------------------------------------------===//

std::string ResultStore::pathFor(const std::string &Digest) const {
  std::filesystem::path P(Directory);
  P /= Digest + ".vdga-result";
  return P.string();
}

std::optional<ProgramResult>
ResultStore::load(const std::string &Digest) const {
  std::ifstream In(pathFor(Digest), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Text;
  Text << In.rdbuf();
  ProgramResult R;
  if (!ProgramResult::parse(Text.str(), R) || R.Digest != Digest)
    return std::nullopt;
  return R;
}

bool ResultStore::save(const ProgramResult &R, std::string *Error) const {
  std::error_code EC;
  std::filesystem::create_directories(Directory, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create result directory " + Directory + ": " +
               EC.message();
    return false;
  }
  std::string Payload = R.serialize();

  if (faultPoint("store.enospc", R.Digest)) {
    if (Error)
      *Error = "injected fault: store.enospc writing " + pathFor(R.Digest);
    return false;
  }
  if (faultPoint("store.torn", R.Digest)) {
    // Model a crash mid-write: half the record lands at the *final* path
    // (no tmp + rename discipline survives a dying machine that already
    // renamed) and the process dies. The integrity trailer is what makes
    // this safe: the torn record can never parse, so resume re-analyzes.
    std::ofstream Out(pathFor(R.Digest), std::ios::binary | std::ios::trunc);
    Out.write(Payload.data(),
              static_cast<std::streamsize>(Payload.size() / 2));
    Out.flush();
    std::abort();
  }

  std::string Final = pathFor(R.Digest);
  std::string Tmp = Final + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      if (Error)
        *Error = "cannot open " + Tmp + " for writing";
      return false;
    }
    Out << Payload;
    if (!Out) {
      if (Error)
        *Error = "short write to " + Tmp;
      return false;
    }
  }
  std::filesystem::rename(Tmp, Final, EC);
  if (EC) {
    if (Error)
      *Error = "cannot rename " + Tmp + ": " + EC.message();
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

ResultStore::FsckReport ResultStore::fsck(bool Remove) const {
  FsckReport Rep;
  std::error_code EC;
  std::filesystem::directory_iterator It(Directory, EC), End;
  if (EC)
    return Rep;
  for (; It != End; It.increment(EC)) {
    if (EC)
      break;
    const std::filesystem::path &P = It->path();
    if (P.extension() != ".vdga-result")
      continue;
    ++Rep.Scanned;
    std::string Digest = P.stem().string();
    if (load(Digest)) {
      ++Rep.Healthy;
      continue;
    }
    Rep.Corrupt.push_back(P.string());
    if (Remove) {
      std::error_code RmEC;
      if (std::filesystem::remove(P, RmEC))
        ++Rep.Removed;
    }
  }
  return Rep;
}
