//===- shard/ResultStore.h - Digest-keyed per-program results --*- C++ -*-===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded pipeline's persistent unit of progress: one
/// `<digest>.vdga-result` file per analyzed program, in the checkpoint
/// directory, holding the schedule-independent subset of a
/// `BenchmarkReport` (no wall-clock fields — that is what lets a merged
/// sharded report be byte-identical to a serial one). The text format
/// (`vdga-result-v1`) ends with an `end <fnv>` integrity line over every
/// preceding byte, so a torn write — a worker killed mid-save, a full
/// disk — is always detected at load and treated as a miss: the program
/// is simply re-analyzed on resume, never merged as garbage.
///
/// Writes go through the same tmp + rename discipline as the query
/// service's ArtifactStore, and carry the `store.torn` / `store.enospc`
/// fault probes the recovery tests drive.
///
//===----------------------------------------------------------------------===//

#ifndef VDGA_SHARD_RESULTSTORE_H
#define VDGA_SHARD_RESULTSTORE_H

#include "driver/Tables.h"

#include <optional>
#include <string>
#include <vector>

namespace vdga {

/// The deterministic, mergeable outcome of one program's analysis.
struct ProgramResult {
  std::string Name;
  std::string Digest;

  /// "ok", "failed" (contained pipeline failure; Reason says why) or
  /// "blacklisted" (the supervisor gave up after repeated crashes).
  std::string Status = "ok";
  std::string Reason;

  unsigned SourceLines = 0;
  unsigned VdgNodes = 0;
  unsigned AliasOutputs = 0;

  PairTotals CI;
  SolveStats CIStats;
  IndirectOpStats ReadsCI;
  IndirectOpStats WritesCI;

  bool RanCS = false;
  bool CSCompleted = false;
  PairTotals CS;
  SolveStats CSStats;
  uint64_t SpuriousTotal = 0;
  double SpuriousPercent = 0.0;
  unsigned IndirectOpsWhereCSWins = 0;

  bool ok() const { return Status == "ok"; }

  /// Renders the vdga-result-v1 text record, `end` line included.
  std::string serialize() const;

  /// Strict parse; false on any malformed line, wrong schema, or `end`
  /// digest mismatch (the torn-write case).
  static bool parse(const std::string &Text, ProgramResult &Out);
};

/// Projects the schedule-independent fields out of a BenchmarkReport.
ProgramResult resultFromReport(const BenchmarkReport &R,
                               const std::string &Digest);

/// Filesystem store of ProgramResult records; see file comment.
class ResultStore {
public:
  explicit ResultStore(std::string Directory)
      : Directory(std::move(Directory)) {}

  std::string pathFor(const std::string &Digest) const;

  /// Parsed record on a hit; nullopt when absent, unreadable, torn, or
  /// keyed under the wrong digest.
  std::optional<ProgramResult> load(const std::string &Digest) const;

  /// tmp + rename persist. Carries the store fault probes: `store.torn`
  /// leaves a truncated record at the final path and kills the process
  /// (modeling a mid-write crash); `store.enospc` fails the save cleanly.
  bool save(const ProgramResult &R, std::string *Error = nullptr) const;

  /// Scan outcome for fsck().
  struct FsckReport {
    unsigned Scanned = 0;
    unsigned Healthy = 0;
    unsigned Removed = 0;
    std::vector<std::string> Corrupt; ///< Paths that failed to parse.
  };

  /// Verifies every record in the store; with \p Remove, deletes the
  /// corrupt ones so resume re-analyzes those programs.
  FsckReport fsck(bool Remove) const;

private:
  std::string Directory;
};

} // namespace vdga

#endif // VDGA_SHARD_RESULTSTORE_H
