//===- bench/fig7_breakdown.cpp - Figure 7 reproduction --------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// Regenerates Figure 7: context-insensitive and spurious points-to pairs
// broken down by path and referent storage classes. The paper's shape:
// spurious pairs skew toward local paths and heap referents.
//
//===----------------------------------------------------------------------===//

#include "driver/Tables.h"

#include <cstdio>

using namespace vdga;

int main() {
  std::vector<BenchmarkReport> Reports = analyzeCorpus(/*RunCS=*/true);
  std::fputs(renderFig7(Reports).c_str(), stdout);
  return 0;
}
