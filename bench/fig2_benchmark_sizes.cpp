//===- bench/fig2_benchmark_sizes.cpp - Figure 2 reproduction --------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// Regenerates Figure 2: benchmark programs and their sizes in source and
// VDG form, plus the call-graph structure metrics Section 5.1.2 quotes
// (average callers per procedure, fraction with a single caller).
//
//===----------------------------------------------------------------------===//

#include "driver/Tables.h"

#include <cstdio>

using namespace vdga;

int main() {
  std::vector<BenchmarkReport> Reports = analyzeCorpus(/*RunCS=*/false);
  std::fputs(renderFig2(Reports).c_str(), stdout);

  // Section 5.1.2's structural claims about the suite.
  double CallerSum = 0;
  double SingleSum = 0;
  unsigned N = 0;
  PointerDepthStats Depth;
  for (const CorpusProgram &P : corpus()) {
    std::string Error;
    auto AP = AnalyzedProgram::create(P.Source, &Error);
    if (!AP)
      continue;
    CallerSum += AP->callGraph().averageCallers();
    SingleSum += AP->callGraph().singleCallerFraction();
    PointerDepthStats D = computePointerDepthStats(AP->program());
    Depth.PointerDecls += D.PointerDecls;
    Depth.MultiLevel += D.MultiLevel;
    ++N;
  }
  if (N)
    std::printf("\ncall-graph structure (Section 5.1.2): procedures "
                "average %.1f callers; %.0f%% of procedures have one "
                "caller\npointer nesting (Section 5.1.2): %u pointer "
                "declarations, %.0f%% single-level\n",
                CallerSum / N, 100.0 * SingleSum / N, Depth.PointerDecls,
                100.0 * Depth.singleLevelFraction());
  return 0;
}
