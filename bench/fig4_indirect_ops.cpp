//===- bench/fig4_indirect_ops.cpp - Figure 4 reproduction -----------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// Regenerates Figure 4: per benchmark, how many locations each indirect
// memory read/write may reference — the statistic whose CI/CS agreement
// is the paper's headline result.
//
//===----------------------------------------------------------------------===//

#include "driver/Tables.h"

#include <cstdio>

using namespace vdga;

int main() {
  std::vector<BenchmarkReport> Reports = analyzeCorpus(/*RunCS=*/false);
  std::fputs(renderFig4(Reports).c_str(), stdout);

  // Section 3.2's observation: which programs have no multi-location ops?
  std::printf("\nprograms with no indirect operation referencing more than "
              "one location:");
  for (const BenchmarkReport &R : Reports)
    if (R.ReadsCI.Count2 + R.ReadsCI.Count3 + R.ReadsCI.Count4Plus +
            R.WritesCI.Count2 + R.WritesCI.Count3 +
            R.WritesCI.Count4Plus ==
        0)
      std::printf(" %s", R.Name.c_str());
  std::printf("\n");
  return 0;
}
