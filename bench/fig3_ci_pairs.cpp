//===- bench/fig3_ci_pairs.cpp - Figure 3 reproduction ---------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// Regenerates Figure 3: total points-to relationships computed by the
// context-insensitive analysis, grouped by the kind of output they
// appear on.
//
//===----------------------------------------------------------------------===//

#include "driver/Tables.h"

#include <cstdio>

using namespace vdga;

int main() {
  std::vector<BenchmarkReport> Reports = analyzeCorpus(/*RunCS=*/false);
  std::fputs(renderFig3(Reports).c_str(), stdout);
  return 0;
}
