//===- bench/baseline_comparison.cpp - Precision spectrum ------------------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// The paper's introduction orders analyses by precision: Weihl-style
// program-wide flow-insensitive analysis is much coarser than the
// program-point-specific CI analysis, which (the paper's result) matches
// the CS analysis at indirect operations. Steensgaard-style unification
// anchors the fast/coarse end. This bench prints, per benchmark, the
// average number of locations each indirect memory operation may touch
// under all four analyses.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/Pipeline.h"
#include "pointsto/Statistics.h"

#include <cstdio>

using namespace vdga;

namespace {
struct Row {
  const char *Name;
  double Steens = 0, Weihl = 0, CI = 0, CS = 0;
};

double averageLocs(const Graph &G, const PairTable &PT,
                   const std::vector<std::pair<NodeId, std::vector<PathId>>>
                       &Sites) {
  (void)G;
  (void)PT;
  uint64_t Sum = 0;
  unsigned N = 0;
  for (const auto &[Node, Locs] : Sites) {
    if (Locs.empty())
      continue;
    Sum += Locs.size();
    ++N;
  }
  return N ? static_cast<double>(Sum) / N : 0.0;
}
} // namespace

int main() {
  std::printf("average locations per indirect memory operation\n");
  std::printf("%-12s  %12s  %10s  %10s  %10s\n", "name", "steensgaard",
              "weihl", "CI", "CS");
  std::printf("--------------------------------------------------------------\n");

  for (const CorpusProgram &Prog : corpus()) {
    std::string Error;
    auto AP = AnalyzedProgram::create(Prog.Source, &Error);
    if (!AP) {
      std::fprintf(stderr, "%s: %s\n", Prog.Name, Error.c_str());
      continue;
    }

    Row R;
    R.Name = Prog.Name;

    PointsToResult CI = AP->runContextInsensitive();
    {
      auto Reads = indirectOpLocations(AP->G, CI, AP->PT, false);
      auto Writes = indirectOpLocations(AP->G, CI, AP->PT, true);
      Reads.insert(Reads.end(), Writes.begin(), Writes.end());
      R.CI = averageLocs(AP->G, AP->PT, Reads);
    }

    ContextSensResult CS = AP->runContextSensitive(CI);
    PointsToResult Stripped = CS.stripAssumptions();
    {
      auto Reads = indirectOpLocations(AP->G, Stripped, AP->PT, false);
      auto Writes = indirectOpLocations(AP->G, Stripped, AP->PT, true);
      Reads.insert(Reads.end(), Writes.begin(), Writes.end());
      R.CS = averageLocs(AP->G, AP->PT, Reads);
    }

    WeihlResult W = AP->runWeihl();
    {
      uint64_t Sum = 0;
      unsigned N = 0;
      for (NodeId Node = 0; Node < AP->G.numNodes(); ++Node) {
        const auto &NN = AP->G.node(Node);
        if ((NN.Kind != NodeKind::Lookup && NN.Kind != NodeKind::Update) ||
            !NN.IndirectAccess)
          continue;
        auto Locs = W.pointerReferents(AP->G.producerOf(Node, 0), AP->PT);
        if (Locs.empty())
          continue;
        Sum += Locs.size();
        ++N;
      }
      R.Weihl = N ? static_cast<double>(Sum) / N : 0.0;
    }

    SteensgaardResult St = AP->runSteensgaard();
    {
      uint64_t Sum = 0;
      unsigned N = 0;
      for (NodeId Node = 0; Node < AP->G.numNodes(); ++Node) {
        const auto &NN = AP->G.node(Node);
        if ((NN.Kind != NodeKind::Lookup && NN.Kind != NodeKind::Update) ||
            !NN.IndirectAccess)
          continue;
        const auto &Ptees = St.pointees(AP->G.producerOf(Node, 0));
        if (Ptees.empty())
          continue;
        Sum += Ptees.size();
        ++N;
      }
      R.Steens = N ? static_cast<double>(Sum) / N : 0.0;
    }

    std::printf("%-12s  %12.2f  %10.2f  %10.2f  %10.2f\n", R.Name,
                R.Steens, R.Weihl, R.CI, R.CS);
  }
  std::printf("\nexpected shape: steensgaard >= weihl >= CI = CS "
              "(paper: CI equals CS at every indirect operation)\n");
  return 0;
}
