//===- bench/perf_ci_vs_cs.cpp - Section 4.2/4.3 work comparison -----------===//
//
// Part of the vdg-alias project (Ruf, PLDI 1995 reproduction).
// Reproduces the paper's performance observations: the optimized CS
// analysis executes only slightly more transfer functions than CI but up
// to two orders of magnitude more meet operations, making it orders of
// magnitude slower on the larger benchmarks. Timings via
// google-benchmark; work counters printed as a table afterwards.
//
//===----------------------------------------------------------------------===//

#include "driver/Tables.h"

#include "corpus/Corpus.h"
#include "driver/Pipeline.h"
#include "lint/Lint.h"
#include "query/Loadgen.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace vdga;

/// --solver=basic|wave|deep: worklist engine every solve below runs under
/// (timing loops and the --json artifact alike). The artifact records it
/// as corpus.solver_strategy so bench_diff.py only compares like runs.
static SolverStrategy BenchStrategy = SolverStrategy::Basic;

static void BM_ContextInsensitive(benchmark::State &State,
                                  const CorpusProgram *Prog) {
  std::string Error;
  auto AP = AnalyzedProgram::create(Prog->Source, &Error);
  if (!AP) {
    State.SkipWithError(Error.c_str());
    return;
  }
  for (auto _ : State) {
    PointsToResult R = AP->runContextInsensitive(
        WorklistOrder::FIFO, /*RecordProvenance=*/false, {}, BenchStrategy);
    benchmark::DoNotOptimize(R.totalPairInstances());
  }
}

static void BM_ContextSensitive(benchmark::State &State,
                                const CorpusProgram *Prog) {
  std::string Error;
  auto AP = AnalyzedProgram::create(Prog->Source, &Error);
  if (!AP) {
    State.SkipWithError(Error.c_str());
    return;
  }
  PointsToResult CI = AP->runContextInsensitive(
      WorklistOrder::FIFO, /*RecordProvenance=*/false, {}, BenchStrategy);
  ContextSensOptions CSO;
  CSO.Strategy = BenchStrategy;
  for (auto _ : State) {
    ContextSensResult R = AP->runContextSensitive(CI, CSO);
    benchmark::DoNotOptimize(R.Stats.MeetOps);
  }
}

static void BM_Frontend(benchmark::State &State, const CorpusProgram *Prog) {
  for (auto _ : State) {
    std::string Error;
    auto AP = AnalyzedProgram::create(Prog->Source, &Error);
    benchmark::DoNotOptimize(AP.get());
  }
}

/// --json[=path]: skip google-benchmark's timing loop and emit the
/// machine-readable BENCH_ci_vs_cs.json artifact instead. Runs the corpus
/// once serially and once on the default job count, so the artifact
/// records both the per-phase times and the parallel-driver speedup; a
/// third pass over fresh programs runs the checker subsystem so checker.*
/// timers and counters (and any soundness errors) are tracked across PRs
/// without inflating the solver timers above.
static int runJsonMode(const std::string &Path) {
  CorpusTiming Timing;
  Timing.HardwareThreads = std::thread::hardware_concurrency();
  Timing.ParallelJobs = ThreadPool::defaultJobs();

  // The artifact runs governed with a deliberately generous per-solve
  // deadline: normal runs never come near it (the degradation section
  // stays empty and every figure is bit-identical to an ungoverned run),
  // but a catastrophic solver regression trips the budget instead of
  // hanging CI, and bench_diff.py hard-fails on the resulting
  // degradation entry. Override with VDGA_BENCH_BUDGET_MS.
  Timing.Strategy = BenchStrategy;

  GovernancePolicy Policy;
  Policy.Strategy = BenchStrategy;
  Policy.SolveMs = 60'000;
  if (const char *Env = std::getenv("VDGA_BENCH_BUDGET_MS"))
    Policy.SolveMs = std::strtod(Env, nullptr);

  auto T0 = std::chrono::steady_clock::now();
  std::vector<BenchmarkReport> Serial =
      analyzeCorpus(/*RunCS=*/true, {}, /*Jobs=*/1, CheckLevel::None,
                    Policy);
  Timing.SerialMillis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - T0)
          .count();

  auto T1 = std::chrono::steady_clock::now();
  std::vector<BenchmarkReport> Parallel = analyzeCorpus(
      /*RunCS=*/true, {}, Timing.ParallelJobs, CheckLevel::None, Policy);
  Timing.ParallelMillis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - T1)
          .count();
  (void)Parallel; // Same reports as Serial; timed for the speedup field.

  // Checker pass on fresh AnalyzedPrograms: runChecks re-runs the solvers
  // internally, so grafting only its checker.* metrics into the timed
  // reports keeps every pre-existing field comparable across artifacts.
  std::vector<BenchmarkReport> Checked =
      analyzeCorpus(/*RunCS=*/false, {}, Timing.ParallelJobs,
                    CheckLevel::Diagnose, Policy);
  for (size_t I = 0; I < Serial.size() && I < Checked.size(); ++I) {
    Serial[I].Check = Checked[I].Check;
    for (const Metric &M : Checked[I].Metrics)
      if (M.Name.rfind("checker.", 0) == 0)
        Serial[I].Metrics.push_back(M);
  }

  // Query-service load: a fixed-seed mixed-query replay against one
  // mid-size benchmark, so cache hit rate and per-query latency are
  // tracked across PRs (bench_diff.py warns on regressions).
  QueryBenchSection QuerySec;
  {
    const CorpusProgram *Prog = findCorpusProgram("bc");
    std::string Error;
    auto AP = AnalyzedProgram::create(Prog->Source, &Error);
    if (!AP) {
      std::fprintf(stderr, "query load: %s failed to load: %s\n", Prog->Name,
                   Error.c_str());
      return 1;
    }
    AliasSummary Summary = buildAliasSummary(*AP, Prog->Source, Policy);
    LoadgenOptions LO;
    // Fixed thread count, NOT Timing.ParallelJobs: each client thread is
    // its own session with its own cold caches, so the cache counters
    // depend on the thread count — pinning it keeps the artifact
    // identical across VDGA_JOBS values (modulo timing fields).
    LO.Threads = 4;
    LO.Queries = 200'000;
    LO.Seed = 20260808;
    QueryLoadReport QR = runQueryLoad(Summary, LO);
    QuerySec.Program = Prog->Name;
    QuerySec.Threads = LO.Threads;
    QuerySec.Queries = QR.Queries;
    QuerySec.Errors = QR.Errors;
    QuerySec.MeanUs = QR.MeanUs;
    QuerySec.P50Us = QR.P50Us;
    QuerySec.P99Us = QR.P99Us;
    QuerySec.CacheHits = QR.CacheHits;
    QuerySec.CacheMisses = QR.CacheMisses;
    QuerySec.HitRate = QR.HitRate;
  }

  // Lint section: the full pass battery over the corpus, once per alias
  // tier, so finding counts and pass timings are tracked across PRs.
  // Interpreter refutation is on — a sound analysis keeps `errors` at 0,
  // and bench_diff.py hard-fails on any increase. Counts are
  // deterministic (provenance off, findings sorted); timings are advisory.
  LintBenchSection LintSec;
  for (LintTier Tier :
       {LintTier::Steensgaard, LintTier::ContextInsens, LintTier::ContextSens}) {
    LintOptions LO;
    LO.Tier = Tier;
    LO.Policy = Policy;
    LO.RefuteWithInterpreter = true;
    std::vector<ProgramLintReport> Reports =
        lintCorpus(LO, Timing.ParallelJobs);
    LintBenchSection::Tier T;
    T.Name = lintTierName(Tier);
    for (const ProgramLintReport &PR : Reports) {
      T.Findings += PR.Report.Findings.size();
      T.Must += PR.Report.countConfidence(LintConfidence::Must);
      T.Errors += PR.Report.errorCount();
      T.Degraded += PR.Report.Degraded ? 1 : 0;
      for (const char *Pass : {"use-after-free", "double-free", "memory-leak",
                               "dead-store", "null-deref"})
        T.PassCounts[Pass] += PR.Report.countPass(Pass);
      for (const auto &[Phase, Ms] : PR.Report.PassMillis)
        T.PassMillis[Phase] += Ms;
    }
    LintSec.Tiers.push_back(std::move(T));
  }

  std::string Json = renderBenchJson(Serial, Timing, &QuerySec, &LintSec);
  if (Path == "-") {
    // Keep stdout pure JSON; the human-readable table goes to stderr.
    std::fputs(Json.c_str(), stdout);
    std::fputs(renderPerfComparison(Serial).c_str(), stderr);
    return 0;
  }
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot open %s for writing\n", Path.c_str());
      return 1;
    }
    std::fputs(Json.c_str(), F);
    std::fclose(F);
    std::fprintf(stderr, "wrote %s (serial %.1f ms, %u jobs %.1f ms)\n",
                 Path.c_str(), Timing.SerialMillis, Timing.ParallelJobs,
                 Timing.ParallelMillis);
  }
  std::fputs(renderPerfComparison(Serial).c_str(), stdout);
  return 0;
}

int main(int argc, char **argv) {
  // Strip --solver before google-benchmark sees (and rejects) it.
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    const char *Name = nullptr;
    if (std::strncmp(argv[I], "--solver=", 9) == 0)
      Name = argv[I] + 9;
    else if (std::strcmp(argv[I], "--solver") == 0 && I + 1 < argc)
      Name = argv[++I];
    if (Name) {
      if (!parseSolverStrategy(Name, BenchStrategy)) {
        std::fprintf(stderr,
                     "invalid solver strategy '%s' (expected basic, wave "
                     "or deep)\n",
                     Name);
        return 2;
      }
      continue;
    }
    argv[Kept++] = argv[I];
  }
  argc = Kept;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      return runJsonMode("BENCH_ci_vs_cs.json");
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      return runJsonMode(argv[I] + 7);
  }

  for (const CorpusProgram &Prog : corpus()) {
    benchmark::RegisterBenchmark(
        (std::string("frontend/") + Prog.Name).c_str(), BM_Frontend,
        &Prog);
    benchmark::RegisterBenchmark(
        (std::string("ci/") + Prog.Name).c_str(), BM_ContextInsensitive,
        &Prog);
    benchmark::RegisterBenchmark(
        (std::string("cs/") + Prog.Name).c_str(), BM_ContextSensitive,
        &Prog);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The paper's work counters (Section 4.2: ~1.1x transfer functions,
  // up to ~100x meets; Section 4.3: 2-3 orders of magnitude slower).
  GovernancePolicy Policy;
  Policy.Strategy = BenchStrategy;
  std::vector<BenchmarkReport> Reports =
      analyzeCorpus(/*RunCS=*/true, {}, /*Jobs=*/0, CheckLevel::None, Policy);
  std::fputs(renderPerfComparison(Reports).c_str(), stdout);
  return 0;
}
